//! Cross-solver integration tests: symPACK-rs, the right-looking baseline
//! and a dense oracle must agree on identical inputs.

use sympack::{SolverOptions, SymPack};
use sympack_baseline::{baseline_factor_and_solve, BaselineOptions};
use sympack_dense::Mat;
use sympack_sparse::gen;
use sympack_sparse::vecops::{max_abs_diff, test_rhs};
use sympack_sparse::SparseSym;

/// Dense Cholesky oracle: solve via `sympack-dense` on the full matrix.
fn dense_solve(a: &SparseSym, b: &[f64]) -> Vec<f64> {
    let n = a.n();
    let mut m = Mat::zeros(n, n);
    for c in 0..n {
        for r in 0..n {
            m[(r, c)] = a.get(r, c);
        }
    }
    sympack_dense::potrf(&mut m).expect("oracle requires SPD");
    m.zero_upper();
    let mut rhs = b.to_vec();
    sympack::trisolve::forward_subst(&m, &mut rhs);
    sympack::trisolve::backward_subst(&m, &mut rhs);
    rhs
}

#[test]
fn three_way_agreement_on_random_spd() {
    for seed in [1u64, 2, 3] {
        let a = gen::random_spd(90, 5, seed);
        let b = test_rhs(90);
        let oracle = dense_solve(&a, &b);
        let sp = SymPack::factor_and_solve(&a, &b, &SolverOptions::default());
        let bl = baseline_factor_and_solve(&a, &b, &BaselineOptions::default());
        let scale = oracle.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        assert!(max_abs_diff(&sp.x, &oracle) / scale < 1e-9, "seed {seed}: symPACK vs oracle");
        assert!(max_abs_diff(&bl.x, &oracle) / scale < 1e-9, "seed {seed}: baseline vs oracle");
    }
}

#[test]
fn three_way_agreement_on_structured_problems() {
    for a in [gen::laplacian_2d(8, 9), gen::flan_like(4, 3, 3), gen::bone_like(3, 3, 2)] {
        let b = test_rhs(a.n());
        let oracle = dense_solve(&a, &b);
        let sp = SymPack::factor_and_solve(&a, &b, &SolverOptions::default());
        let bl = baseline_factor_and_solve(&a, &b, &BaselineOptions::default());
        let scale = oracle.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        assert!(max_abs_diff(&sp.x, &oracle) / scale < 1e-9);
        assert!(max_abs_diff(&bl.x, &oracle) / scale < 1e-9);
    }
}

#[test]
fn solver_reports_same_structure_counts() {
    // Both solvers run the identical analysis, so their total kernel call
    // counts must match exactly (same supernodes, same blocks, same tasks).
    let a = gen::laplacian_2d(10, 10);
    let b = test_rhs(a.n());
    let sp = SymPack::factor_and_solve(
        &a,
        &b,
        &SolverOptions { n_nodes: 2, ranks_per_node: 2, ..Default::default() },
    );
    let bl = baseline_factor_and_solve(
        &a,
        &b,
        &BaselineOptions { n_nodes: 2, ranks_per_node: 2, ..Default::default() },
    );
    let total = |counts: &[sympack_gpu::OpCounts]| {
        let mut t = sympack_gpu::OpCounts::default();
        for c in counts {
            t.merge(c);
        }
        // Compare cpu+gpu totals per op (placement may differ; volume not).
        sympack_gpu::Op::ALL.map(|op| {
            let (c, g) = t.get(op);
            c + g
        })
    };
    // symPACK's op_counts cover the factorization only; the baseline's too.
    assert_eq!(total(&sp.op_counts), total(&bl.op_counts));
}

#[test]
fn symPACK_beats_baseline_on_modeled_time_at_scale() {
    // The paper's headline claim, at reproduction scale: on a 3D problem
    // with several nodes, the fan-out solver's modeled makespan beats the
    // right-looking 1D baseline by a clear margin.
    let a = gen::flan_like(8, 8, 8);
    let b = test_rhs(a.n());
    let sp = SymPack::factor_and_solve(
        &a,
        &b,
        &SolverOptions { n_nodes: 4, ranks_per_node: 2, ..Default::default() },
    );
    let bl = baseline_factor_and_solve(
        &a,
        &b,
        &BaselineOptions { n_nodes: 4, ranks_per_node: 2, ..Default::default() },
    );
    assert!(
        sp.factor_time < bl.factor_time,
        "symPACK {} vs baseline {}",
        sp.factor_time,
        bl.factor_time
    );
    assert!(sp.solve_time < bl.solve_time);
}

#[allow(non_snake_case)]
fn _naming_note() {}
