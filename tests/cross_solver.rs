//! Cross-solver integration tests: symPACK-rs, the right-looking baseline
//! and a dense oracle must agree on identical inputs.

use sympack::{SolverOptions, SymPack};
use sympack_baseline::{baseline_factor_and_solve, BaselineOptions};
use sympack_dense::Mat;
use sympack_sparse::gen;
use sympack_sparse::vecops::{max_abs_diff, test_rhs};
use sympack_sparse::SparseSym;

/// Dense Cholesky oracle: solve via `sympack-dense` on the full matrix.
fn dense_solve(a: &SparseSym, b: &[f64]) -> Vec<f64> {
    let n = a.n();
    let mut m = Mat::zeros(n, n);
    for c in 0..n {
        for r in 0..n {
            m[(r, c)] = a.get(r, c);
        }
    }
    sympack_dense::potrf(&mut m).expect("oracle requires SPD");
    m.zero_upper();
    let mut rhs = b.to_vec();
    sympack::trisolve::forward_subst(&m, &mut rhs);
    sympack::trisolve::backward_subst(&m, &mut rhs);
    rhs
}

#[test]
fn three_way_agreement_on_random_spd() {
    for seed in [1u64, 2, 3] {
        let a = gen::random_spd(90, 5, seed);
        let b = test_rhs(90);
        let oracle = dense_solve(&a, &b);
        let sp = SymPack::factor_and_solve(&a, &b, &SolverOptions::default());
        let bl = baseline_factor_and_solve(&a, &b, &BaselineOptions::default());
        let scale = oracle.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        assert!(
            max_abs_diff(&sp.x, &oracle) / scale < 1e-9,
            "seed {seed}: symPACK vs oracle"
        );
        assert!(
            max_abs_diff(&bl.x, &oracle) / scale < 1e-9,
            "seed {seed}: baseline vs oracle"
        );
    }
}

#[test]
fn three_way_agreement_on_structured_problems() {
    for a in [
        gen::laplacian_2d(8, 9),
        gen::flan_like(4, 3, 3),
        gen::bone_like(3, 3, 2),
    ] {
        let b = test_rhs(a.n());
        let oracle = dense_solve(&a, &b);
        let sp = SymPack::factor_and_solve(&a, &b, &SolverOptions::default());
        let bl = baseline_factor_and_solve(&a, &b, &BaselineOptions::default());
        let scale = oracle.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        assert!(max_abs_diff(&sp.x, &oracle) / scale < 1e-9);
        assert!(max_abs_diff(&bl.x, &oracle) / scale < 1e-9);
    }
}

#[test]
fn solver_reports_same_structure_counts() {
    // Both solvers run the identical analysis, so their total kernel call
    // counts must match exactly (same supernodes, same blocks, same tasks).
    let a = gen::laplacian_2d(10, 10);
    let b = test_rhs(a.n());
    let sp = SymPack::factor_and_solve(
        &a,
        &b,
        &SolverOptions {
            n_nodes: 2,
            ranks_per_node: 2,
            ..Default::default()
        },
    );
    let bl = baseline_factor_and_solve(
        &a,
        &b,
        &BaselineOptions {
            n_nodes: 2,
            ranks_per_node: 2,
            ..Default::default()
        },
    );
    let total = |counts: &[sympack_gpu::OpCounts]| {
        let mut t = sympack_gpu::OpCounts::default();
        for c in counts {
            t.merge(c);
        }
        // Compare cpu+gpu totals per op (placement may differ; volume not).
        sympack_gpu::Op::ALL.map(|op| {
            let (c, g) = t.get(op);
            c + g
        })
    };
    // symPACK's op_counts cover the factorization only; the baseline's too.
    assert_eq!(total(&sp.op_counts), total(&bl.op_counts));
}

#[test]
#[allow(non_snake_case)] // keep the paper's capitalization in the test name
fn symPACK_beats_baseline_on_modeled_time_at_scale() {
    // The paper's headline claim, at reproduction scale: on a 3D problem
    // with several nodes, the fan-out solver's modeled makespan beats the
    // right-looking 1D baseline by a clear margin.
    let a = gen::flan_like(8, 8, 8);
    let b = test_rhs(a.n());
    let sp = SymPack::factor_and_solve(
        &a,
        &b,
        &SolverOptions {
            n_nodes: 4,
            ranks_per_node: 2,
            ..Default::default()
        },
    );
    let bl = baseline_factor_and_solve(
        &a,
        &b,
        &BaselineOptions {
            n_nodes: 4,
            ranks_per_node: 2,
            ..Default::default()
        },
    );
    assert!(
        sp.factor_time < bl.factor_time,
        "symPACK {} vs baseline {}",
        sp.factor_time,
        bl.factor_time
    );
    assert!(sp.solve_time < bl.solve_time);
}

#[test]
fn all_engines_agree_across_ranks_and_rtq_policies() {
    // The shared task runtime makes the RTQ policy a parameter of every
    // engine. Whatever the policy and rank count: (a) every solver family
    // returns the right answer, and (b) the per-kind executed-task totals
    // are schedule-invariant — the policy reorders work, it must never
    // change what work exists.
    use std::collections::BTreeMap;
    use sympack::RtqPolicy;

    let a = gen::laplacian_2d(9, 9);
    let b = test_rhs(a.n());
    type Counts = BTreeMap<String, u64>;
    let to_map = |v: &[(String, u64)]| -> Counts { v.iter().cloned().collect() };

    // (engine, P) -> counts under the first policy, for invariance checks.
    let mut reference: BTreeMap<(&str, usize), Counts> = BTreeMap::new();
    for (n_nodes, ranks_per_node) in [(1, 1), (1, 2), (2, 2)] {
        let p = n_nodes * ranks_per_node;
        for policy in [RtqPolicy::Lifo, RtqPolicy::Fifo, RtqPolicy::CriticalPath] {
            let sp = SymPack::factor_and_solve(
                &a,
                &b,
                &SolverOptions {
                    n_nodes,
                    ranks_per_node,
                    rtq_policy: policy,
                    ..Default::default()
                },
            );
            let bopts = BaselineOptions {
                n_nodes,
                ranks_per_node,
                rtq_policy: policy,
                ..Default::default()
            };
            let rl = baseline_factor_and_solve(&a, &b, &bopts);
            let fi = sympack_baseline::fanin_factor_and_solve(&a, &b, &bopts);
            let fb = sympack_baseline::fanboth_factor_and_solve(&a, &b, &bopts);
            let runs: [(&str, f64, Counts); 4] = [
                ("fan-out", sp.relative_residual, to_map(&sp.task_counts)),
                (
                    "right-looking",
                    rl.relative_residual,
                    to_map(&rl.task_counts),
                ),
                ("fan-in", fi.relative_residual, to_map(&fi.task_counts)),
                ("fan-both", fb.relative_residual, to_map(&fb.task_counts)),
            ];
            for (name, residual, counts) in runs {
                assert!(
                    residual <= 1e-8,
                    "{name} P={p} {policy:?}: residual {residual}"
                );
                assert!(
                    !counts.is_empty(),
                    "{name} P={p} {policy:?}: no task counts"
                );
                let entry = reference.entry((name, p)).or_insert_with(|| counts.clone());
                assert_eq!(
                    *entry, counts,
                    "{name} P={p} {policy:?}: task counts changed with the RTQ policy"
                );
            }
        }
    }
    // Task totals are also rank-count-invariant for the engines whose task
    // graph is owner-partitioned (fan-out, fan-in, fan-both). The
    // right-looking baseline replicates panel applications per rank, so
    // only its factor-task count is P-invariant.
    for name in ["fan-out", "fan-in", "fan-both"] {
        let one = reference[&(name, 1)].clone();
        for p in [2, 4] {
            assert_eq!(
                one,
                reference[&(name, p)],
                "{name}: task totals changed between P=1 and P={p}"
            );
        }
    }
    for p in [2, 4] {
        assert_eq!(
            reference[&("right-looking", 1)]["factor_panel"],
            reference[&("right-looking", p)]["factor_panel"],
            "right-looking: factor task count changed with P"
        );
    }
}

#[allow(non_snake_case)]
fn _naming_note() {}
