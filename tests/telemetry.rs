//! Telemetry-plane integration tests: snapshot determinism across solver
//! and fleet layers, clock invariance (instruments never move a virtual
//! clock), and the health watchdog — an injected network stall must raise
//! a typed `Stalled` health event *before* the engine's own quiescence
//! abort fires, and an impossible latency objective must raise `SloBurn`.

use sympack::{SolverError, SolverOptions, SymPack};
use sympack_fleet::{Fleet, FleetConfig};
use sympack_pgas::FaultPlan;
use sympack_service::{Server, ServerConfig, Session};
use sympack_sparse::gen;
use sympack_sparse::vecops::test_rhs;
use sympack_trace::health::HealthKind;
use sympack_trace::telemetry::SloPolicy;

fn opts(p: usize, telemetry: bool) -> SolverOptions {
    SolverOptions {
        n_nodes: 1,
        ranks_per_node: p,
        deterministic: true,
        telemetry,
        ..Default::default()
    }
}

fn rhs(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i + 1) as f64 * 0.23).cos()).collect()
}

/// A seeded fleet mix at P ranks; returns its telemetry document.
fn fleet_doc(p: usize) -> String {
    let config = FleetConfig {
        shards: 2,
        factor_budget_bytes: 0,
        max_pending_per_tenant: 16,
        max_batch: 4,
        quantum: 2.0,
    };
    let mut fleet = Fleet::new(&opts(p, false), config);
    let a = gen::laplacian_2d(8, 8);
    let small = gen::laplacian_2d(6, 6);
    let mut ids = Vec::new();
    for (i, m) in [&a, &small, &a].iter().enumerate() {
        let id = fleet
            .admit(&format!("tenant{i}"), m, 1.0 + i as f64)
            .expect("admit");
        fleet.set_slo(id, SloPolicy::new(1.0, 0.99));
        ids.push((id, m.n()));
    }
    for round in 0..3 {
        for (t, &(id, n)) in ids.iter().enumerate() {
            let at = round as f64 * 0.03 + t as f64 * 0.0001;
            fleet.submit_at(id, rhs(n), at).expect("submit");
        }
        fleet.step().expect("step");
    }
    fleet.drain().expect("drain");
    fleet.telemetry_json()
}

#[test]
fn solver_snapshots_are_byte_identical_across_reruns() {
    let a = gen::laplacian_2d(12, 12);
    let b = vec![test_rhs(a.n())];
    for p in [1, 2, 4] {
        let run = || {
            let (result, tel) = SymPack::try_factor_and_solve_observed(&a, &b, &opts(p, true));
            let report = result.unwrap_or_else(|e| panic!("P={p}: solve failed: {e}"));
            (report, tel.expect("telemetry requested").to_json())
        };
        let (r1, doc1) = run();
        let (r2, doc2) = run();
        assert_eq!(doc1, doc2, "P={p}: snapshot JSON not byte-identical");
        assert_eq!(r1.factor_time.to_bits(), r2.factor_time.to_bits());
        // Instruments never touch a virtual clock: the untelemetered twin
        // has a bit-equal makespan.
        let base = SymPack::try_factor_and_solve_multi(&a, &b, &opts(p, false)).expect("baseline");
        assert_eq!(
            base.factor_time.to_bits(),
            r1.factor_time.to_bits(),
            "P={p}: telemetry changed the factor makespan"
        );
        assert!(doc1.contains("\"kind\":\"solver\""), "P={p}");
        assert!(doc1.contains("sympack_sched_tasks_total"), "P={p}");
        assert!(doc1.contains("sympack_pgas_bytes_sent_total"), "P={p}");
    }
}

#[test]
fn fleet_documents_are_byte_identical_across_reruns() {
    for p in [1, 2, 4] {
        let doc1 = fleet_doc(p);
        let doc2 = fleet_doc(p);
        assert_eq!(doc1, doc2, "P={p}: fleet telemetry not byte-identical");
        assert!(doc1.contains("\"kind\":\"fleet\""), "P={p}");
        assert!(
            doc1.contains("sympack_fleet_jobs_served_total"),
            "P={p}: per-tenant serving counters missing"
        );
    }
}

#[test]
fn watchdog_raises_stalled_before_quiescence_abort() {
    // Sweep drop plans until one stalls the solver; the watchdog trips at
    // a fraction of the engine's quiescence-abort threshold, so every
    // diagnosed stall must carry a typed `Stalled` health event raised
    // strictly before the abort time.
    let a = gen::laplacian_2d(6, 6);
    let b = vec![test_rhs(a.n())];
    let mut stalls = 0;
    for seed in 0..400u64 {
        let o = SolverOptions {
            faults: Some(FaultPlan::drops(seed)),
            refine_steps: 0,
            ..opts(2, true)
        };
        let (result, tel) = SymPack::try_factor_and_solve_observed(&a, &b, &o);
        match result {
            Ok(_) | Err(SolverError::FetchTimeout { .. }) => continue,
            Err(SolverError::Stalled { .. }) => {
                let tel = tel.expect("telemetry report present even on failure");
                assert!(
                    tel.health.iter().any(|h| h.kind == HealthKind::Stalled),
                    "seed {seed}: stalled run carries no Stalled health event"
                );
                stalls += 1;
                if stalls >= 3 {
                    return;
                }
            }
            Err(e) => panic!("seed {seed}: undiagnosed failure {e}"),
        }
    }
    assert!(stalls > 0, "no drop seed in 0..400 produced a stall");
}

#[test]
fn fleet_watchdog_raises_slo_burn_for_impossible_objective() {
    let config = FleetConfig {
        shards: 1,
        factor_budget_bytes: 0,
        max_pending_per_tenant: 8,
        max_batch: 4,
        quantum: 2.0,
    };
    let mut fleet = Fleet::new(&opts(2, false), config);
    let a = gen::laplacian_2d(6, 6);
    let id = fleet.admit("burner", &a, 1.0).expect("admit");
    fleet.set_slo(id, SloPolicy::new(1e-12, 0.99));
    for k in 0..4 {
        fleet
            .submit_at(id, rhs(a.n()), k as f64 * 0.001)
            .expect("submit");
    }
    fleet.step().expect("step");
    fleet.drain().expect("drain");
    assert!(
        fleet
            .health_events()
            .iter()
            .any(|h| h.kind == HealthKind::SloBurn && h.subject == "burner"),
        "impossible objective must burn the error budget: {:?}",
        fleet.health_events()
    );
    let doc = fleet.telemetry_json();
    assert!(doc.contains("\"slo_burn\""), "event missing from document");
}

#[test]
fn session_solves_feed_service_telemetry() {
    // The serving-layer instruments accumulate across session solves and
    // render in the Prometheus exposition (spot checks only — the byte
    // gates live in the snapshot tests above).
    let a = gen::laplacian_2d(8, 8);
    let session = Session::new(&a, &opts(2, false)).expect("session");
    let mut server = Server::new(session, ServerConfig::default());
    for k in 0..5 {
        server
            .submit_at(rhs(a.n()), k as f64 * 0.001)
            .expect("submit");
    }
    server.drain().expect("drain");
    let text = server.telemetry().telemetry().render_text();
    assert!(text.contains("sympack_service_jobs_submitted_total 5"));
    assert!(text.contains("sympack_service_jobs_served_total 5"));
    assert!(text.contains("sympack_service_batch_size"));
    assert!(text.contains("sympack_service_latency_seconds"));
}
