//! Deterministic schedule-fuzzing and network fault-injection harness.
//!
//! Sweeps seeds × fault plans × engines × rank counts × comm topologies
//! through the shared task runtime in deterministic lockstep mode,
//! asserting that
//!
//! * with faults disabled, a run is bit-reproducible (identical virtual
//!   makespans and per-kind task counts across repeats);
//! * delay and duplication plans never change the numerical result
//!   (residual ≤ 1e-8) — the inbox deduplicates, the schedule just shifts;
//! * drop plans either complete with the correct result (the dropped
//!   message was redundant or a duplicate survived) or surface a
//!   *diagnosed* failure ([`SolverError::Stalled`] /
//!   [`SolverError::FetchTimeout`]) — never a hang.
//!
//! Every run exercises the triangular-solve engine on top of the selected
//! factorization engine, so the sweep covers all five engines on the shared
//! runtime (fan-out, right-looking, fan-in, fan-both, solve).
//!
//! The `tree` topology runs the full communication-aggregation layer —
//! per-destination signal coalescing plus (for the fan-out engine) the
//! hierarchical node-group broadcast over a two-node split — so fault
//! injection lands on coalesced frames and tree-relay hops too: a dropped
//! frame loses every sub-frame in it, and a dropped relay starves a whole
//! subtree, both of which must surface as a diagnosed stall, never a hang
//! or a wrong answer.
//!
//! A failing case panics with a one-line repro command of the form
//! `CHAOS_SEED=<n> CHAOS_PLAN=<p> CHAOS_ENGINE=<e> CHAOS_RANKS=<r>
//! CHAOS_TOPO=<t> cargo test -p sympack-integration --test chaos -- repro
//! --nocapture` and is appended to `target/chaos-failures.txt` for CI
//! artifact upload.
//!
//! `CHAOS_SEED_BUDGET` scales the number of seeds per (plan, engine, ranks)
//! combination (default 2 → ≥ 100 fuzz runs across the two sweep tests).

use sympack::{BcastTopology, CoalesceConfig, SolverError, SolverOptions, SymPack};
use sympack_baseline::{
    try_baseline_factor_and_solve, try_fanboth_factor_and_solve, try_fanin_factor_and_solve,
    BaselineOptions,
};
use sympack_fleet::{Fleet, FleetConfig};
use sympack_pgas::FaultPlan;
use sympack_service::Session;
use sympack_sparse::gen;
use sympack_sparse::vecops::test_rhs;

const ENGINES: [&str; 4] = ["fanout", "rightlooking", "fanin", "fanboth"];
const RANK_COUNTS: [usize; 4] = [1, 2, 4, 8];
const TOPOLOGIES: [&str; 2] = ["flat", "tree"];
const RESIDUAL_TOL: f64 = 1e-8;

/// Node split for a topology: `tree` spreads the ranks over two virtual
/// nodes (so node-group relays actually cross the network), `flat` keeps
/// the historical single-node layout.
fn nodes_of(topo: &str, ranks: usize) -> (usize, usize) {
    match topo {
        "tree" if ranks >= 2 => (2, ranks / 2),
        _ => (1, ranks),
    }
}

/// Seeds per (plan, engine, ranks) combination.
fn seed_budget() -> u64 {
    std::env::var("CHAOS_SEED_BUDGET")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2)
}

/// Build the named fault plan for `seed`. `none` disables injection.
fn plan_of(name: &str, seed: u64) -> Option<FaultPlan> {
    match name {
        "none" => None,
        "delays" => Some(FaultPlan::delays_only(seed)),
        "dup" => Some(FaultPlan::duplication(seed)),
        "drops" => Some(FaultPlan::drops(seed)),
        "chaos" => Some(FaultPlan::chaos(seed)),
        other => panic!("unknown fault plan {other:?}"),
    }
}

/// What one fuzz run reports: virtual makespans, per-kind task counts and
/// the relative residual.
struct RunOutcome {
    factor_time: f64,
    solve_time: f64,
    task_counts: Vec<(String, u64)>,
    residual: f64,
}

/// One factor+solve run of `engine` under `plan_name`/`seed` at `ranks`
/// ranks and `topo` comm topology, in deterministic lockstep mode.
fn run_one(
    engine: &str,
    plan_name: &str,
    seed: u64,
    ranks: usize,
    topo: &str,
) -> Result<RunOutcome, SolverError> {
    let a = gen::laplacian_2d(6, 6);
    let b = test_rhs(a.n());
    let faults = plan_of(plan_name, seed);
    let (n_nodes, ranks_per_node) = nodes_of(topo, ranks);
    let tree = topo == "tree";
    // Under `tree` the full aggregation layer is on: signal coalescing for
    // every engine, plus the node-group broadcast tree (arity 2, so even
    // tiny rank counts form relay chains) for the fan-out engine.
    let bcast = if tree {
        BcastTopology::Tree { arity: 2 }
    } else {
        BcastTopology::Flat
    };
    let coalesce = tree.then(CoalesceConfig::default);
    if engine == "fanout" {
        let opts = SolverOptions {
            n_nodes,
            ranks_per_node,
            faults,
            deterministic: true,
            refine_steps: 0,
            bcast,
            coalesce,
            ..Default::default()
        };
        let r = SymPack::try_factor_and_solve(&a, &b, &opts)?;
        return Ok(RunOutcome {
            factor_time: r.factor_time,
            solve_time: r.solve_time,
            task_counts: r.task_counts,
            residual: r.relative_residual,
        });
    }
    let opts = BaselineOptions {
        n_nodes,
        ranks_per_node,
        faults,
        deterministic: true,
        bcast,
        coalesce,
        ..Default::default()
    };
    let run = match engine {
        "rightlooking" => try_baseline_factor_and_solve,
        "fanin" => try_fanin_factor_and_solve,
        "fanboth" => try_fanboth_factor_and_solve,
        other => panic!("unknown engine {other:?}"),
    };
    let r = run(&a, &b, &opts)?;
    Ok(RunOutcome {
        factor_time: r.factor_time,
        solve_time: r.solve_time,
        task_counts: r.task_counts,
        residual: r.relative_residual,
    })
}

/// One-line command reproducing a failing case.
fn repro_cmd(engine: &str, plan: &str, seed: u64, ranks: usize, topo: &str) -> String {
    format!(
        "CHAOS_SEED={seed} CHAOS_PLAN={plan} CHAOS_ENGINE={engine} CHAOS_RANKS={ranks} \
         CHAOS_TOPO={topo} cargo test -p sympack-integration --test chaos -- repro --nocapture"
    )
}

/// Append a failing case to `target/chaos-failures.txt` (CI artifact).
fn record_failure(line: &str) {
    use std::io::Write;
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/chaos-failures.txt");
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = writeln!(f, "{line}");
    }
}

/// Fail the sweep with a repro command, recording it for artifact upload.
fn fail_case(engine: &str, plan: &str, seed: u64, ranks: usize, topo: &str, why: &str) -> ! {
    let cmd = repro_cmd(engine, plan, seed, ranks, topo);
    record_failure(&format!("{why} :: {cmd}"));
    panic!("{why}\nrepro: {cmd}");
}

#[test]
fn fault_free_runs_are_bit_deterministic() {
    for topo in TOPOLOGIES {
        for engine in ENGINES {
            for ranks in [2, 4] {
                let first = run_one(engine, "none", 0, ranks, topo).unwrap_or_else(|e| {
                    panic!("{engine}/{topo} P={ranks}: fault-free run failed: {e}")
                });
                let second = run_one(engine, "none", 0, ranks, topo).unwrap_or_else(|e| {
                    panic!("{engine}/{topo} P={ranks}: fault-free rerun failed: {e}")
                });
                assert_eq!(
                    first.factor_time.to_bits(),
                    second.factor_time.to_bits(),
                    "{engine}/{topo} P={ranks}: factor makespan not bit-reproducible \
                     ({} vs {})",
                    first.factor_time,
                    second.factor_time
                );
                assert_eq!(
                    first.solve_time.to_bits(),
                    second.solve_time.to_bits(),
                    "{engine}/{topo} P={ranks}: solve makespan not bit-reproducible \
                     ({} vs {})",
                    first.solve_time,
                    second.solve_time
                );
                assert_eq!(
                    first.task_counts, second.task_counts,
                    "{engine}/{topo} P={ranks}: task counts not reproducible"
                );
                assert!(first.residual < RESIDUAL_TOL);
            }
        }
    }
}

#[test]
fn delay_plans_shift_schedules_without_changing_results() {
    // Delays reorder message arrival but lose nothing: every seed must
    // complete with the correct result, and per-kind task counts must match
    // the fault-free schedule (a schedule invariant).
    let budget = seed_budget();
    for topo in TOPOLOGIES {
        for engine in ENGINES {
            for &ranks in &RANK_COUNTS {
                let baseline = run_one(engine, "none", 0, ranks, topo).unwrap_or_else(|e| {
                    panic!("{engine}/{topo} P={ranks}: fault-free run failed: {e}")
                });
                for seed in 0..budget {
                    match run_one(engine, "delays", seed, ranks, topo) {
                        Ok(out) => {
                            if out.residual >= RESIDUAL_TOL {
                                fail_case(
                                    engine,
                                    "delays",
                                    seed,
                                    ranks,
                                    topo,
                                    &format!("residual {} exceeds {RESIDUAL_TOL}", out.residual),
                                );
                            }
                            if out.task_counts != baseline.task_counts {
                                fail_case(
                                    engine,
                                    "delays",
                                    seed,
                                    ranks,
                                    topo,
                                    "per-kind task counts diverge from the fault-free schedule",
                                );
                            }
                        }
                        Err(e) => fail_case(
                            engine,
                            "delays",
                            seed,
                            ranks,
                            topo,
                            &format!("delay-only plan must complete, got {e}"),
                        ),
                    }
                }
            }
        }
    }
}

#[test]
fn duplication_plans_are_absorbed_by_the_idempotent_inbox() {
    let budget = seed_budget();
    for topo in TOPOLOGIES {
        for engine in ENGINES {
            for &ranks in &RANK_COUNTS {
                for seed in 0..budget {
                    match run_one(engine, "dup", seed, ranks, topo) {
                        Ok(out) => {
                            if out.residual >= RESIDUAL_TOL {
                                fail_case(
                                    engine,
                                    "dup",
                                    seed,
                                    ranks,
                                    topo,
                                    &format!(
                                        "duplicate delivery changed the result \
                                         (residual {})",
                                        out.residual
                                    ),
                                );
                            }
                        }
                        Err(e) => fail_case(
                            engine,
                            "dup",
                            seed,
                            ranks,
                            topo,
                            &format!("duplication plan must complete, got {e}"),
                        ),
                    }
                }
            }
        }
    }
}

#[test]
fn drop_plans_complete_or_diagnose_a_stall_never_hang() {
    let budget = seed_budget();
    let (mut completed, mut diagnosed) = (0u64, 0u64);
    for topo in TOPOLOGIES {
        for plan in ["drops", "chaos"] {
            for engine in ENGINES {
                for &ranks in &RANK_COUNTS {
                    for seed in 0..budget {
                        match run_one(engine, plan, seed, ranks, topo) {
                            Ok(out) => {
                                completed += 1;
                                if out.residual >= RESIDUAL_TOL {
                                    fail_case(
                                        engine,
                                        plan,
                                        seed,
                                        ranks,
                                        topo,
                                        &format!(
                                            "completed with wrong result \
                                             (residual {})",
                                            out.residual
                                        ),
                                    );
                                }
                            }
                            // The two diagnosed failure modes of a lossy
                            // network: the quiescence detector named the
                            // stall, or the rget retry budget ran out.
                            // Reaching here at all means the run terminated
                            // (no hang) — including frame drops (all subs
                            // lost at once) and relay drops (a starved
                            // subtree) under the tree topology.
                            Err(SolverError::Stalled { .. })
                            | Err(SolverError::FetchTimeout { .. }) => {
                                diagnosed += 1;
                            }
                            Err(e) => fail_case(
                                engine,
                                plan,
                                seed,
                                ranks,
                                topo,
                                &format!("undiagnosed failure mode: {e}"),
                            ),
                        }
                    }
                }
            }
        }
    }
    eprintln!("drop sweep: {completed} completed, {diagnosed} diagnosed stalls");
    assert!(
        completed + diagnosed > 0,
        "sweep executed no cases — budget misconfigured?"
    );
}

#[test]
fn eviction_under_faults_rematerializes_correctly() {
    // LRU churn under message chaos: three single-shard tenants behind a
    // two-factor budget keep evicting each other, so every scheduling round
    // re-factorizes an evicted tenant *while* the fault plan delays or
    // duplicates its messages. Lossless plans must stay invisible to the
    // serving layer: every answer correct, the budget held, and the churn
    // counters actually moving.
    let budget = seed_budget();
    let a = gen::laplacian_2d(6, 6);
    let base = SolverOptions {
        n_nodes: 1,
        ranks_per_node: 2,
        deterministic: true,
        refine_steps: 0,
        ..Default::default()
    };
    let one = Session::new(&a, &base)
        .expect("probe factorization")
        .factor_bytes();
    let config = FleetConfig {
        shards: 1,
        factor_budget_bytes: 2 * one + one / 2,
        max_pending_per_tenant: 16,
        max_batch: 1,
        quantum: 1.0,
    };
    for plan in ["delays", "dup"] {
        for seed in 0..budget {
            let opts = SolverOptions {
                faults: plan_of(plan, seed),
                ..base.clone()
            };
            let mut fleet = Fleet::new(&opts, config);
            let tenants: Vec<_> = ["alice", "bob", "carol"]
                .iter()
                .map(|name| {
                    fleet.admit(name, &a, 1.0).unwrap_or_else(|e| {
                        panic!("{plan}/seed={seed}: admit {name} under faults: {e}")
                    })
                })
                .collect();
            let b = test_rhs(a.n());
            for round in 0..3 {
                for &t in &tenants {
                    fleet.submit_at(t, b.clone(), round as f64 * 0.1).unwrap();
                }
            }
            let done = fleet
                .drain()
                .unwrap_or_else(|e| panic!("{plan}/seed={seed}: fleet drain under faults: {e}"));
            assert_eq!(done.len(), 9, "{plan}/seed={seed}: all jobs complete");
            for c in &done {
                let res = a.relative_residual(&c.x, &b);
                assert!(
                    res < RESIDUAL_TOL,
                    "{plan}/seed={seed}: tenant {} job {} re-factorized wrong under \
                     faults (residual {res})",
                    c.tenant.0,
                    c.id
                );
            }
            let cm = fleet.cache_metrics();
            assert!(
                cm.factor_evictions >= 1,
                "{plan}/seed={seed}: budget never forced an eviction"
            );
            assert!(
                cm.rematerializations >= 1,
                "{plan}/seed={seed}: no evicted tenant was re-factorized"
            );
            assert!(
                cm.resident_high_water_bytes <= config.factor_budget_bytes,
                "{plan}/seed={seed}: high-water {} over budget {}",
                cm.resident_high_water_bytes,
                config.factor_budget_bytes
            );
        }
    }
}

/// Re-run a single failing case from its environment description:
/// `CHAOS_SEED=<n> CHAOS_PLAN=<p> CHAOS_ENGINE=<e> CHAOS_RANKS=<r>
/// CHAOS_TOPO=<t> cargo test -p sympack-integration --test chaos -- repro
/// --nocapture`. `CHAOS_TOPO` defaults to `flat`, so pre-existing repro
/// lines keep reproducing the same runs.
#[test]
fn repro() {
    let Ok(seed) = std::env::var("CHAOS_SEED") else {
        return; // not invoked as a repro; nothing to do
    };
    let seed: u64 = seed.parse().expect("CHAOS_SEED must be an integer");
    let plan = std::env::var("CHAOS_PLAN").unwrap_or_else(|_| "chaos".into());
    let engine = std::env::var("CHAOS_ENGINE").unwrap_or_else(|_| "fanout".into());
    let ranks: usize = std::env::var("CHAOS_RANKS")
        .unwrap_or_else(|_| "4".into())
        .parse()
        .expect("CHAOS_RANKS must be an integer");
    let topo = std::env::var("CHAOS_TOPO").unwrap_or_else(|_| "flat".into());
    match run_one(&engine, &plan, seed, ranks, &topo) {
        Ok(out) => eprintln!(
            "repro {engine}/{plan}/{topo}/seed={seed}/P={ranks}: completed, \
             residual {} factor {}s solve {}s",
            out.residual, out.factor_time, out.solve_time
        ),
        Err(e) => eprintln!("repro {engine}/{plan}/{topo}/seed={seed}/P={ranks}: failed with {e}"),
    }
}

#[test]
fn blr_mode_under_faults_stays_accurate_and_never_hangs() {
    // Compressed publications ride the same signal/rget machinery as dense
    // ones — a low-rank `[U|V]` payload dropped, delayed or duplicated must
    // behave exactly like a dense block would: lossless plans (delays, dup)
    // complete with the residual inside the BLR tolerance budget, and drop
    // plans either complete correctly or surface a diagnosed stall, never a
    // hang and never a silently wrong answer.
    let budget = seed_budget();
    let a = gen::bone_like(6, 6, 5);
    let b = test_rhs(a.n());
    let opts_for = |ranks: usize, faults: Option<FaultPlan>| {
        let (n_nodes, ranks_per_node) = nodes_of("tree", ranks);
        SolverOptions {
            n_nodes,
            ranks_per_node,
            faults,
            deterministic: true,
            // tol=1e-6 with two refinement steps: the factorization is
            // approximate, the refined solution is not (≪ RESIDUAL_TOL).
            refine_steps: 2,
            blr: sympack::BlrConfig {
                tol: 1e-6,
                min_block: 8,
                max_rank: usize::MAX,
            },
            ..Default::default()
        }
    };
    for ranks in [2usize, 4] {
        // The fault-free baseline must actually exercise the compressed
        // path — otherwise the sweep tests nothing.
        let base = SymPack::try_factor_and_solve(&a, &b, &opts_for(ranks, None))
            .unwrap_or_else(|e| panic!("P={ranks}: fault-free BLR run failed: {e}"));
        let compressed: u64 = base.blr_counts.iter().map(|c| c.compressed).sum();
        assert!(compressed > 0, "P={ranks}: BLR chaos case never compressed");
        assert!(base.relative_residual < RESIDUAL_TOL);
        for plan in ["delays", "dup", "drops"] {
            for seed in 0..budget {
                let opts = opts_for(ranks, plan_of(plan, seed));
                match SymPack::try_factor_and_solve(&a, &b, &opts) {
                    Ok(r) => {
                        if r.relative_residual >= RESIDUAL_TOL {
                            fail_case(
                                "fanout-blr",
                                plan,
                                seed,
                                ranks,
                                "tree",
                                &format!(
                                    "BLR run completed with wrong result \
                                     (residual {})",
                                    r.relative_residual
                                ),
                            );
                        }
                    }
                    Err(SolverError::Stalled { .. } | SolverError::FetchTimeout { .. })
                        if plan == "drops" => {} // diagnosed, not hung
                    Err(e) => fail_case(
                        "fanout-blr",
                        plan,
                        seed,
                        ranks,
                        "tree",
                        &format!("{plan} plan must complete or diagnose, got {e}"),
                    ),
                }
            }
        }
    }
}
