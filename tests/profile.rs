//! Flight-recorder integration tests: every engine on the shared runtime
//! yields a structurally sound profile at P = 4, the diff gate flags
//! regressions past its thresholds, profiles survive the JSON codec, and
//! span recording is free — a deterministic run with tracing on reproduces
//! the trace-off virtual clocks bit-identically.

use sympack::{SolverOptions, SymPack};
use sympack_baseline::{
    baseline_factor_and_solve, fanboth_factor_and_solve, fanin_factor_and_solve, BaselineOptions,
};
use sympack_sparse::gen;
use sympack_sparse::vecops::test_rhs;
use sympack_trace::profile::{check_invariants, diff, DiffThresholds, Profile};
use sympack_trace::{SpanKind, TraceCat};

fn matrix() -> sympack_sparse::SparseSym {
    gen::random_spd(120, 5, 42)
}

fn fanout_opts() -> SolverOptions {
    SolverOptions {
        n_nodes: 2,
        ranks_per_node: 2,
        trace: true,
        deterministic: true,
        ..Default::default()
    }
}

fn baseline_opts() -> BaselineOptions {
    BaselineOptions {
        n_nodes: 2,
        ranks_per_node: 2,
        trace: true,
        deterministic: true,
        ..Default::default()
    }
}

/// Run every engine traced at P = 4 and hand back its profile.
fn all_profiles() -> Vec<Profile> {
    let a = matrix();
    let b = test_rhs(a.n());
    let fanout = SymPack::factor_and_solve(&a, &b, &fanout_opts())
        .profile
        .expect("fanout profile");
    let rl = baseline_factor_and_solve(&a, &b, &baseline_opts())
        .profile
        .expect("rightlooking profile");
    let fi = fanin_factor_and_solve(&a, &b, &baseline_opts())
        .profile
        .expect("fanin profile");
    let fb = fanboth_factor_and_solve(&a, &b, &baseline_opts())
        .profile
        .expect("fanboth profile");
    vec![fanout, rl, fi, fb]
}

#[test]
fn every_engine_profile_upholds_invariants_at_p4() {
    for p in all_profiles() {
        check_invariants(&p).unwrap_or_else(|e| panic!("{}: {e}", p.engine));
        assert_eq!(p.n_ranks, 4, "{}", p.engine);
        assert!(p.makespan > 0.0, "{}", p.engine);
        assert!(!p.crit.is_empty(), "{}", p.engine);
        assert!(p.crit_len > 0.0 && p.crit_len <= p.makespan, "{}", p.engine);
        // Rich span fields flow through: exec spans with kernel/ready data,
        // comm spans with peers and bytes, and a populated comm matrix.
        assert!(
            p.spans.iter().any(|e| e.kind == SpanKind::Exec),
            "{}: no exec spans",
            p.engine
        );
        assert!(
            p.spans
                .iter()
                .any(|e| e.kind != SpanKind::Exec && e.peer.is_some()),
            "{}: no comm spans",
            p.engine
        );
        assert!(p.comm.n == 4, "{}", p.engine);
        assert!(p.comm.total_msgs() > 0, "{}: empty comm matrix", p.engine);
        // The report renders every advertised section.
        let report = p.render_report(5);
        for section in [
            "critical path",
            "per-rank time attribution",
            "imbalance",
            "comm matrix",
        ] {
            assert!(report.contains(section), "{}: missing {section}", p.engine);
        }
        // At least one dependency edge on the critical path; all engines
        // record pred labels through dec_from.
        assert!(
            p.crit
                .iter()
                .any(|t| t.edge == sympack_trace::profile::CritEdge::Dep),
            "{}: no dep edges on the critical path",
            p.engine
        );
    }
}

#[test]
fn fanout_profile_covers_the_solve_engine_too() {
    // The triangular-solve engine runs inside the fan-out driver; its spans
    // (fifth engine on the shared runtime) must appear in the same profile.
    let profiles = all_profiles();
    let fanout = &profiles[0];
    assert_eq!(fanout.engine, "fanout");
    assert!(
        fanout
            .spans
            .iter()
            .any(|e| e.kind == SpanKind::Exec && e.cat == TraceCat::Solve),
        "no solve-engine exec spans in the fan-out profile"
    );
    assert!(
        fanout
            .spans
            .iter()
            .any(|e| e.kind == SpanKind::Exec && e.cat == TraceCat::Potrf),
        "no factorization exec spans in the fan-out profile"
    );
    // Engines are distinct per profile.
    let names: Vec<&str> = profiles.iter().map(|p| p.engine.as_str()).collect();
    assert_eq!(names, ["fanout", "rightlooking", "fanin", "fanboth"]);
}

#[test]
fn engine_profiles_roundtrip_through_json() {
    for p in all_profiles() {
        let doc = p.to_json();
        let p2 = Profile::from_json(&doc).unwrap_or_else(|e| panic!("{}: {e}", p.engine));
        assert_eq!(doc, p2.to_json(), "{}: unstable roundtrip", p.engine);
        check_invariants(&p2).unwrap_or_else(|e| panic!("{} reparsed: {e}", p.engine));
    }
}

#[test]
fn diff_gate_flags_regressions_past_threshold() {
    let a = matrix();
    let b = test_rhs(a.n());
    let base = SymPack::factor_and_solve(&a, &b, &fanout_opts())
        .profile
        .expect("profile");
    // Identical profiles: within thresholds.
    let same = diff(&base, &base, &DiffThresholds::default());
    assert!(!same.regressed, "{}", same.report);
    // A 10% slower makespan regresses at the default 5% threshold…
    let mut slow = base.clone();
    slow.makespan *= 1.10;
    let d = diff(&base, &slow, &DiffThresholds::default());
    assert!(d.regressed, "{}", d.report);
    assert!(d.report.contains("REGRESSED"));
    // …but passes a loosened gate (the CLI's --makespan-pct knob).
    let loose = DiffThresholds {
        makespan_pct: 25.0,
        crit_pct: 25.0,
        ..Default::default()
    };
    assert!(!diff(&base, &slow, &loose).regressed);
    // Critical-path growth alone also trips the gate.
    let mut crit = base.clone();
    crit.crit_len *= 1.10;
    assert!(diff(&base, &crit, &DiffThresholds::default()).regressed);
}

#[test]
fn tracing_does_not_perturb_deterministic_clocks() {
    let a = matrix();
    let b = test_rhs(a.n());
    let run = |trace: bool| {
        let opts = SolverOptions {
            trace,
            ..fanout_opts()
        };
        SymPack::factor_and_solve(&a, &b, &opts)
    };
    let traced = run(true);
    let plain = run(false);
    assert_eq!(
        traced.factor_time.to_bits(),
        plain.factor_time.to_bits(),
        "recording spans changed the factorization makespan"
    );
    assert_eq!(
        traced.solve_time.to_bits(),
        plain.solve_time.to_bits(),
        "recording spans changed the solve makespan"
    );
    assert!(plain.trace.is_empty() && plain.profile.is_none());
    assert!(!traced.trace.is_empty() && traced.profile.is_some());

    // Baselines inherit the same guarantee through the shared runtime.
    let brun = |trace: bool| {
        let opts = BaselineOptions {
            trace,
            ..baseline_opts()
        };
        baseline_factor_and_solve(&a, &b, &opts)
    };
    let btraced = brun(true);
    let bplain = brun(false);
    assert_eq!(btraced.factor_time.to_bits(), bplain.factor_time.to_bits());
    assert_eq!(btraced.solve_time.to_bits(), bplain.solve_time.to_bits());
}

#[test]
fn blr_runs_carry_publication_accounting_in_the_profile() {
    // A traced BLR run must attach the per-rank publication section (dense
    // vs low-rank bytes), render the compression summary, survive the JSON
    // codec, and trip the diff gate on published-byte growth; a dense run's
    // document stays byte-identical to the pre-BLR schema (no `blr` key).
    let a = gen::bone_like(6, 6, 5);
    let b = test_rhs(a.n());
    let dense = SymPack::factor_and_solve(&a, &b, &fanout_opts())
        .profile
        .expect("dense profile");
    assert!(dense.blr.is_empty());
    assert!(!dense.to_json().contains("\"blr\""));
    let opts = SolverOptions {
        blr: sympack::BlrConfig {
            tol: 1e-6,
            min_block: 8,
            max_rank: usize::MAX,
        },
        refine_steps: 2,
        ..fanout_opts()
    };
    let r = SymPack::factor_and_solve(&a, &b, &opts);
    let p = r.profile.expect("blr profile");
    assert_eq!(p.blr.len(), 4, "one entry per rank");
    let lr_blocks: u64 = p.blr.iter().map(|x| x.lr_blocks).sum();
    assert!(lr_blocks > 0, "BLR run published no compressed blocks");
    let published: u64 = p.blr.iter().map(|x| x.published()).sum();
    let dense_equiv: u64 = p.blr.iter().map(|x| x.dense_equiv()).sum();
    assert!(
        published < dense_equiv,
        "compression must shrink publications"
    );
    // Profile section must agree with the report's own accounting.
    let report_published: u64 = r.publish.iter().map(|s| s.published_bytes()).sum();
    assert_eq!(published, report_published);
    let q = Profile::from_json(&p.to_json()).expect("codec");
    assert_eq!(q.blr, p.blr);
    assert!(p.render_report(5).contains("block publications"));
    // Doubling the published bytes regresses past the default 10% gate.
    let mut worse = p.clone();
    for x in &mut worse.blr {
        x.lr_bytes *= 2;
    }
    let d = diff(&p, &worse, &DiffThresholds::default());
    assert!(d.regressed, "{}", d.report);
}
