//! Randomized integration tests: the solver must produce small residuals
//! for *arbitrary* SPD matrices, rank layouts, orderings and supernode
//! configurations — and the distributed answer must match the single-rank
//! answer bit-for-bit up to floating-point reduction order. Cases are
//! drawn from a seeded deterministic stream.

use sympack::{SolverOptions, SymPack};
use sympack_ordering::OrderingKind;
use sympack_sparse::gen::random_spd;
use sympack_sparse::vecops::{max_abs_diff, norm_inf};
use sympack_symbolic::AnalyzeOptions;

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1)
    }
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545F4914F6CDD1D)
    }
    fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() % (hi - lo) as u64) as usize
    }
    fn pick<T: Copy>(&mut self, options: &[T]) -> T {
        options[(self.next() % options.len() as u64) as usize]
    }
}

#[test]
fn random_spd_systems_solve_to_tolerance() {
    for case in 0..24u64 {
        let mut rng = Rng::new(case);
        let n = rng.usize_in(10, 120);
        let degree = rng.usize_in(2, 7);
        let seed = rng.next() % 1000;
        let nodes = rng.usize_in(1, 4);
        let ppn = rng.usize_in(1, 3);
        let ordering = rng.pick(&[
            OrderingKind::Natural,
            OrderingKind::Rcm,
            OrderingKind::MinDegree,
            OrderingKind::NestedDissection,
        ]);
        let max_sn_width = rng.pick(&[2usize, 8, 32, 128]);
        let amalgamation = rng.pick(&[0.0f64, 0.15, 0.4]);
        let a = random_spd(n, degree, seed);
        let b: Vec<f64> = (0..n).map(|i| ((i * 7 + 3) % 13) as f64 - 6.0).collect();
        let opts = SolverOptions {
            ordering,
            analyze: AnalyzeOptions {
                max_sn_width,
                amalgamation_ratio: amalgamation,
            },
            n_nodes: nodes,
            ranks_per_node: ppn,
            ..Default::default()
        };
        let r = SymPack::factor_and_solve(&a, &b, &opts);
        assert!(
            r.relative_residual < 1e-9,
            "residual {} (n={n}, seed={seed}, {ordering:?})",
            r.relative_residual
        );
    }
}

#[test]
fn distributed_matches_serial() {
    for case in 0..24u64 {
        let mut rng = Rng::new(case.wrapping_add(1000));
        let n = rng.usize_in(20, 100);
        let seed = rng.next() % 500;
        let nodes = rng.usize_in(2, 5);
        let a = random_spd(n, 4, seed);
        let b: Vec<f64> = (0..n).map(|i| (i % 5) as f64 - 2.0).collect();
        let serial = SymPack::factor_and_solve(
            &a,
            &b,
            &SolverOptions {
                n_nodes: 1,
                ranks_per_node: 1,
                ..Default::default()
            },
        );
        let dist = SymPack::factor_and_solve(
            &a,
            &b,
            &SolverOptions {
                n_nodes: nodes,
                ranks_per_node: 2,
                ..Default::default()
            },
        );
        let scale = norm_inf(&serial.x).max(1.0);
        assert!(
            max_abs_diff(&serial.x, &dist.x) / scale < 1e-8,
            "serial and distributed answers diverge (n={n}, seed={seed}, nodes={nodes})"
        );
    }
}

#[test]
fn factor_structure_counts_are_ordering_invariants() {
    for case in 0..24u64 {
        let mut rng = Rng::new(case.wrapping_add(2000));
        let n = rng.usize_in(20, 90);
        let seed = rng.next() % 300;
        // nnz(L) from the analysis must match what the ordering crate's
        // independent count predicts for the same permutation.
        let a = random_spd(n, 4, seed);
        let opts = SolverOptions::default();
        let sf = SymPack::analyze_only(&a, &opts);
        let perm = sympack_ordering::Permutation::from_vec(sf.perm.as_slice().to_vec());
        let expect = sympack_ordering::metrics::factor_nnz(&a, &perm);
        // Without amalgamation the counts must agree exactly; with it the
        // symbolic count can only grow (explicit zeros).
        assert!(sf.l_nnz >= expect, "analysis lost structure");
        let no_amalg = SymPack::analyze_only(
            &a,
            &SolverOptions {
                analyze: AnalyzeOptions {
                    amalgamation_ratio: 0.0,
                    ..Default::default()
                },
                ..opts
            },
        );
        assert_eq!(no_amalg.l_nnz, expect, "exact count mismatch");
    }
}

#[test]
fn multi_rhs_matches_individual_solves() {
    let a = random_spd(80, 5, 42);
    let bs: Vec<Vec<f64>> = (0..3)
        .map(|k| {
            (0..80)
                .map(|i| ((i * (k + 2) + 1) % 9) as f64 - 4.0)
                .collect()
        })
        .collect();
    let opts = SolverOptions {
        n_nodes: 2,
        ranks_per_node: 2,
        ..Default::default()
    };
    let multi = SymPack::try_factor_and_solve_multi(&a, &bs, &opts).unwrap();
    assert_eq!(multi.xs.len(), 3);
    assert_eq!(multi.solve_times.len(), 3);
    for (k, b) in bs.iter().enumerate() {
        assert!(multi.relative_residuals[k] < 1e-10);
        let single = SymPack::factor_and_solve(&a, b, &opts);
        let d = max_abs_diff(&multi.xs[k], &single.x);
        assert!(d < 1e-9, "rhs {k}: multi vs single diverge by {d}");
    }
}

#[test]
fn iterative_refinement_improves_or_holds_residual() {
    // Mildly ill-conditioned problem: refinement must not hurt and usually
    // tightens the residual.
    let a = random_spd(100, 5, 9);
    let b: Vec<f64> = (0..100)
        .map(|i| ((i * 11 + 5) % 23) as f64 - 11.0)
        .collect();
    let base = SymPack::factor_and_solve(
        &a,
        &b,
        &SolverOptions {
            n_nodes: 2,
            ranks_per_node: 2,
            ..Default::default()
        },
    );
    let refined = SymPack::factor_and_solve(
        &a,
        &b,
        &SolverOptions {
            n_nodes: 2,
            ranks_per_node: 2,
            refine_steps: 2,
            ..Default::default()
        },
    );
    assert!(refined.relative_residual <= base.relative_residual * 10.0);
    assert!(refined.relative_residual < 1e-12);
    // Refinement costs extra solve time.
    assert!(refined.solve_time > base.solve_time);
}
