//! Property-based integration tests: the solver must produce small
//! residuals for *arbitrary* SPD matrices, rank layouts, orderings and
//! supernode configurations — and the distributed answer must match the
//! single-rank answer bit-for-bit up to floating-point reduction order.

use proptest::prelude::*;
use sympack::{SolverOptions, SymPack};
use sympack_ordering::OrderingKind;
use sympack_sparse::gen::random_spd;
use sympack_sparse::vecops::{max_abs_diff, norm_inf};
use sympack_symbolic::AnalyzeOptions;

fn ordering_strategy() -> impl Strategy<Value = OrderingKind> {
    prop_oneof![
        Just(OrderingKind::Natural),
        Just(OrderingKind::Rcm),
        Just(OrderingKind::MinDegree),
        Just(OrderingKind::NestedDissection),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_spd_systems_solve_to_tolerance(
        n in 10usize..120,
        degree in 2usize..7,
        seed in 0u64..1000,
        nodes in 1usize..4,
        ppn in 1usize..3,
        ordering in ordering_strategy(),
        max_sn_width in prop_oneof![Just(2usize), Just(8), Just(32), Just(128)],
        amalgamation in prop_oneof![Just(0.0f64), Just(0.15), Just(0.4)],
    ) {
        let a = random_spd(n, degree, seed);
        let b: Vec<f64> = (0..n).map(|i| ((i * 7 + 3) % 13) as f64 - 6.0).collect();
        let opts = SolverOptions {
            ordering,
            analyze: AnalyzeOptions { max_sn_width, amalgamation_ratio: amalgamation },
            n_nodes: nodes,
            ranks_per_node: ppn,
            ..Default::default()
        };
        let r = SymPack::factor_and_solve(&a, &b, &opts);
        prop_assert!(
            r.relative_residual < 1e-9,
            "residual {} (n={n}, seed={seed}, {ordering:?})",
            r.relative_residual
        );
    }

    #[test]
    fn distributed_matches_serial(
        n in 20usize..100,
        seed in 0u64..500,
        nodes in 2usize..5,
    ) {
        let a = random_spd(n, 4, seed);
        let b: Vec<f64> = (0..n).map(|i| (i % 5) as f64 - 2.0).collect();
        let serial = SymPack::factor_and_solve(
            &a, &b,
            &SolverOptions { n_nodes: 1, ranks_per_node: 1, ..Default::default() },
        );
        let dist = SymPack::factor_and_solve(
            &a, &b,
            &SolverOptions { n_nodes: nodes, ranks_per_node: 2, ..Default::default() },
        );
        let scale = norm_inf(&serial.x).max(1.0);
        prop_assert!(
            max_abs_diff(&serial.x, &dist.x) / scale < 1e-8,
            "serial and distributed answers diverge (n={n}, seed={seed}, nodes={nodes})"
        );
    }

    #[test]
    fn factor_structure_counts_are_ordering_invariants(
        n in 20usize..90,
        seed in 0u64..300,
    ) {
        // nnz(L) from the analysis must match what the ordering crate's
        // independent count predicts for the same permutation.
        let a = random_spd(n, 4, seed);
        let opts = SolverOptions::default();
        let sf = SymPack::analyze_only(&a, &opts);
        let perm = sympack_ordering::Permutation::from_vec(sf.perm.as_slice().to_vec());
        let expect = sympack_ordering::metrics::factor_nnz(&a, &perm);
        // Without amalgamation the counts must agree exactly; with it the
        // symbolic count can only grow (explicit zeros).
        prop_assert!(sf.l_nnz >= expect, "analysis lost structure");
        let no_amalg = SymPack::analyze_only(
            &a,
            &SolverOptions {
                analyze: AnalyzeOptions { amalgamation_ratio: 0.0, ..Default::default() },
                ..opts
            },
        );
        prop_assert_eq!(no_amalg.l_nnz, expect, "exact count mismatch");
    }
}

#[test]
fn multi_rhs_matches_individual_solves() {
    let a = random_spd(80, 5, 42);
    let bs: Vec<Vec<f64>> = (0..3)
        .map(|k| (0..80).map(|i| ((i * (k + 2) + 1) % 9) as f64 - 4.0).collect())
        .collect();
    let opts = SolverOptions { n_nodes: 2, ranks_per_node: 2, ..Default::default() };
    let multi = SymPack::try_factor_and_solve_multi(&a, &bs, &opts).unwrap();
    assert_eq!(multi.xs.len(), 3);
    assert_eq!(multi.solve_times.len(), 3);
    for (k, b) in bs.iter().enumerate() {
        assert!(multi.relative_residuals[k] < 1e-10);
        let single = SymPack::factor_and_solve(&a, b, &opts);
        let d = max_abs_diff(&multi.xs[k], &single.x);
        assert!(d < 1e-9, "rhs {k}: multi vs single diverge by {d}");
    }
}

#[test]
fn iterative_refinement_improves_or_holds_residual() {
    // Mildly ill-conditioned problem: refinement must not hurt and usually
    // tightens the residual.
    let a = random_spd(100, 5, 9);
    let b: Vec<f64> = (0..100).map(|i| ((i * 11 + 5) % 23) as f64 - 11.0).collect();
    let base = SymPack::factor_and_solve(
        &a,
        &b,
        &SolverOptions { n_nodes: 2, ranks_per_node: 2, ..Default::default() },
    );
    let refined = SymPack::factor_and_solve(
        &a,
        &b,
        &SolverOptions { n_nodes: 2, ranks_per_node: 2, refine_steps: 2, ..Default::default() },
    );
    assert!(refined.relative_residual <= base.relative_residual * 10.0);
    assert!(refined.relative_residual < 1e-12);
    // Refinement costs extra solve time.
    assert!(refined.solve_time > base.solve_time);
}
