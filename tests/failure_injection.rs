//! Failure-injection integration tests: non-SPD inputs, device memory
//! exhaustion under both fallback policies (§4.2) — for the fan-out solver
//! and for every baseline engine — and malformed files.

#![allow(non_snake_case)]

use sympack::{SolverError, SolverOptions, SymPack};
use sympack_baseline::{
    try_baseline_factor_and_solve, try_fanboth_factor_and_solve, try_fanin_factor_and_solve,
    BaselineOptions, BaselineReport,
};
use sympack_gpu::OomPolicy;
use sympack_sparse::gen;
use sympack_sparse::vecops::test_rhs;
use sympack_sparse::{Coo, SparseSym};

/// All three baseline engines behind one fallible signature.
type BaselineFn = fn(&SparseSym, &[f64], &BaselineOptions) -> Result<BaselineReport, SolverError>;

const BASELINES: [(&str, BaselineFn); 3] = [
    ("right-looking", try_baseline_factor_and_solve),
    ("fan-in", try_fanin_factor_and_solve),
    ("fan-both", try_fanboth_factor_and_solve),
];

/// Flip the sign of diagonal entry `k` of a SPD matrix.
fn break_spd(a: &SparseSym, k: usize) -> SparseSym {
    let n = a.n();
    let mut coo = Coo::new(n, n);
    for c in 0..n {
        for (&r, &v) in a.col_rows(c).iter().zip(a.col_values(c)) {
            let v = if r == k && c == k { -v } else { v };
            coo.push(r, c, v).unwrap();
        }
    }
    coo.to_csc().to_lower_sym()
}

#[test]
fn indefinite_matrix_fails_cleanly_on_every_rank_count() {
    let good = gen::laplacian_2d(8, 8);
    let bad = break_spd(&good, 30);
    let b = test_rhs(bad.n());
    for (nodes, ppn) in [(1, 1), (2, 2), (4, 2)] {
        let opts = SolverOptions {
            n_nodes: nodes,
            ranks_per_node: ppn,
            ..Default::default()
        };
        match SymPack::try_factor_and_solve(&bad, &b, &opts) {
            Err(SolverError::NotPositiveDefinite { .. }) => {}
            other => panic!("nodes={nodes} ppn={ppn}: expected failure, got {other:?}"),
        }
    }
}

#[test]
fn indefinite_failure_position_is_plausible() {
    // A semidefinite matrix (rank-deficient) must also fail; the reported
    // column is in the permuted ordering so we only check the range.
    let mut coo = Coo::new(20, 20);
    for i in 0..20 {
        coo.push(i, i, 1.0).unwrap();
    }
    // Two identical coupled rows -> singular 2x2 principal minor somewhere.
    coo.push_sym(11, 10, 1.0).unwrap();
    let a = coo.to_csc().to_lower_sym();
    match SymPack::try_factor_and_solve(&a, &test_rhs(20), &SolverOptions::default()) {
        Err(SolverError::NotPositiveDefinite { column }) => assert!(column < 20),
        other => panic!("expected NotPositiveDefinite, got {other:?}"),
    }
}

#[test]
fn device_oom_cpu_fallback_still_solves() {
    let a = gen::flan_like(6, 6, 6);
    let b = test_rhs(a.n());
    let mut opts = SolverOptions {
        n_nodes: 2,
        ranks_per_node: 2,
        ..Default::default()
    };
    opts.device_quota = 8 << 10; // far below the biggest block
    opts.oom_policy = OomPolicy::CpuFallback;
    let r = SymPack::try_factor_and_solve(&a, &b, &opts).expect("fallback must complete");
    assert!(r.relative_residual < 1e-9);
}

#[test]
fn device_oom_abort_policy_raises() {
    // Needs a problem big enough that some fanned-out block crosses the
    // device-copy threshold (64x64 elements).
    let a = gen::flan_like(12, 12, 12);
    let b = test_rhs(a.n());
    let mut opts = SolverOptions {
        n_nodes: 2,
        ranks_per_node: 2,
        ..Default::default()
    };
    opts.device_quota = 8 << 10;
    opts.oom_policy = OomPolicy::Abort;
    match SymPack::try_factor_and_solve(&a, &b, &opts) {
        Err(SolverError::DeviceOom {
            requested,
            available,
            context,
        }) => {
            assert!(requested > available);
            // The error names the block whose fetch overflowed the device.
            assert!(
                context.contains("L("),
                "error should name the failing block, got context {context:?}"
            );
        }
        other => panic!("expected DeviceOom, got {other:?}"),
    }
}

#[test]
fn device_oom_cpu_fallback_covers_baseline_engines() {
    let a = gen::flan_like(6, 6, 6);
    let b = test_rhs(a.n());
    let mut opts = BaselineOptions {
        n_nodes: 2,
        ranks_per_node: 2,
        ..Default::default()
    };
    opts.device_quota = 8 << 10; // far below the biggest panel
    opts.oom_policy = OomPolicy::CpuFallback;
    for (name, run) in BASELINES {
        let r = run(&a, &b, &opts)
            .unwrap_or_else(|e| panic!("{name}: fallback must complete, got {e}"));
        assert!(r.relative_residual < 1e-9, "{name}");
    }
}

#[test]
fn device_oom_abort_names_the_failing_fetch_in_baselines() {
    // Big enough that some shipped panel/aggregate crosses the device-copy
    // threshold (64x64 elements) and overflows the tiny quota.
    let a = gen::flan_like(12, 12, 12);
    let b = test_rhs(a.n());
    let mut opts = BaselineOptions {
        n_nodes: 2,
        ranks_per_node: 2,
        ..Default::default()
    };
    opts.device_quota = 8 << 10;
    opts.oom_policy = OomPolicy::Abort;
    for (name, run) in BASELINES {
        match run(&a, &b, &opts) {
            Err(SolverError::DeviceOom {
                requested,
                available,
                context,
            }) => {
                assert!(requested > available, "{name}");
                assert!(
                    !context.is_empty(),
                    "{name}: error should name the failing panel/aggregate"
                );
            }
            other => panic!("{name}: expected DeviceOom, got {other:?}"),
        }
    }
}

#[test]
fn unlimited_quota_never_oomss() {
    let a = gen::flan_like(5, 5, 5);
    let b = test_rhs(a.n());
    let mut opts = SolverOptions {
        n_nodes: 2,
        ranks_per_node: 1,
        ..Default::default()
    };
    opts.oom_policy = OomPolicy::Abort; // would fail loudly if quota hit
    let r = SymPack::try_factor_and_solve(&a, &b, &opts).expect("no quota, no OOM");
    assert!(r.relative_residual < 1e-9);
}

#[test]
fn malformed_matrix_files_are_rejected_not_panicked() {
    use sympack_sparse::io::{mm, rb};
    // Matrix Market failures.
    for text in [
        "",                                                                   // empty
        "%%MatrixMarket matrix coordinate real general\n",                    // no size
        "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 5.0\n",    // 0-based index
        "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 5.0\n",    // out of range
        "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n", // complex
    ] {
        assert!(mm::read(text.as_bytes()).is_err(), "accepted: {text:?}");
    }
    // Rutherford-Boeing failures.
    for text in [
        "",                                      // empty
        "t\n1 1 1 1\n",                          // truncated header
        "t\n1 1 1 1\nrua 2 2 1 0\nfmt\n",        // unsymmetric type
        "t\n1 1 1 1\nrsa 2 2 9 0\nfmt\n1 2 3\n", // token shortfall
    ] {
        assert!(rb::read(text.as_bytes()).is_err(), "accepted: {text:?}");
    }
}
