//! Solver-session integration tests: the factor-once serving layer must
//! agree with every one-shot engine, survive fault injection, and reject
//! pattern-mismatched re-factorizations with a typed error.
//!
//! * [`session_batch_matches_every_engine_per_rhs`] cross-checks one
//!   `Session::solve_batch` panel against per-RHS solutions from all five
//!   engines on the shared runtime — fan-out (`SymPack`), right-looking,
//!   fan-in, fan-both, and the triangular-solve engine driven both in panel
//!   mode (by the session) and vector mode (by every one-shot driver) — at
//!   P ∈ {1, 2, 4}.
//! * [`chaos_refactorize_then_solve_completes_under_faults`] runs the
//!   `tests/chaos.rs` sweep shape (seeded fault plans, deterministic
//!   lockstep) through a refactorize-then-solve session lifecycle: delay and
//!   duplication plans must never change the numerical result.
//! * [`refactorize_rejections_are_typed_errors`] pins the
//!   `SolverError::PatternMismatch` contract: wrong-length values and
//!   structure-mismatched matrices are rejected with expected/actual nnz,
//!   and the session keeps serving from its previous factor.

use sympack::{SolverError, SolverOptions, SymPack};
use sympack_baseline::{
    try_baseline_factor_and_solve, try_fanboth_factor_and_solve, try_fanin_factor_and_solve,
    BaselineOptions,
};
use sympack_pgas::FaultPlan;
use sympack_service::{RhsPanel, Session};
use sympack_sparse::gen;
use sympack_sparse::vecops::max_abs_diff;
use sympack_sparse::SparseSym;

const RESIDUAL_TOL: f64 = 1e-8;

fn rhs_columns(n: usize, nrhs: usize) -> Vec<Vec<f64>> {
    (0..nrhs)
        .map(|k| {
            (0..n)
                .map(|i| ((i + 1) as f64 * 0.17 + k as f64 * 0.9).sin())
                .collect()
        })
        .collect()
}

/// Lower-triangle values of `a` scaled by `s`, in the session's
/// `refactorize` layout.
fn scaled_values(a: &SparseSym, s: f64) -> Vec<f64> {
    let mut v = Vec::with_capacity(a.nnz());
    for c in 0..a.n() {
        v.extend(a.col_values(c).iter().map(|x| x * s));
    }
    v
}

/// The same matrix with its values scaled by `s` (structure unchanged).
fn scaled_matrix(a: &SparseSym, s: f64) -> SparseSym {
    let mut row_idx = Vec::with_capacity(a.nnz());
    for c in 0..a.n() {
        row_idx.extend_from_slice(a.col_rows(c));
    }
    SparseSym::from_parts(a.n(), a.col_ptr().to_vec(), row_idx, scaled_values(a, s))
}

#[test]
fn session_batch_matches_every_engine_per_rhs() {
    let a = gen::laplacian_2d(7, 6);
    let n = a.n();
    let bs = rhs_columns(n, 4);
    for p in [1usize, 2, 4] {
        let opts = SolverOptions {
            n_nodes: 1,
            ranks_per_node: p,
            ..Default::default()
        };
        let session = Session::new(&a, &opts).unwrap_or_else(|e| panic!("P={p}: session: {e}"));
        let batch = session
            .solve_batch(&[RhsPanel::from_columns(&bs)])
            .unwrap_or_else(|e| panic!("P={p}: solve_batch: {e}"));
        assert_eq!(batch.nrhs, bs.len());
        let bl_opts = BaselineOptions {
            n_nodes: 1,
            ranks_per_node: p,
            ..Default::default()
        };
        for (k, b) in bs.iter().enumerate() {
            let x = batch.panels[0].column(k);
            let res = a.relative_residual(x, b);
            assert!(res < RESIDUAL_TOL, "P={p} rhs {k}: panel residual {res}");
            let scale = x.iter().fold(1.0f64, |m, v| m.max(v.abs()));
            // Fan-out engine (one-shot driver, vector solve path).
            let sp = SymPack::try_factor_and_solve(&a, b, &opts)
                .unwrap_or_else(|e| panic!("P={p} rhs {k}: fanout: {e}"));
            assert!(sp.relative_residual < RESIDUAL_TOL);
            assert!(
                max_abs_diff(x, &sp.x) / scale < 1e-9,
                "P={p} rhs {k}: session panel vs fanout per-RHS solution"
            );
            // The three baseline factorization engines.
            for (name, run) in [
                (
                    "rightlooking",
                    try_baseline_factor_and_solve as fn(_, _, _) -> _,
                ),
                ("fanin", try_fanin_factor_and_solve),
                ("fanboth", try_fanboth_factor_and_solve),
            ] {
                let bl =
                    run(&a, b, &bl_opts).unwrap_or_else(|e| panic!("P={p} rhs {k}: {name}: {e}"));
                assert!(bl.relative_residual < RESIDUAL_TOL);
                assert!(
                    max_abs_diff(x, &bl.x) / scale < 1e-9,
                    "P={p} rhs {k}: session panel vs {name} per-RHS solution"
                );
            }
        }
    }
}

#[test]
fn chaos_refactorize_then_solve_completes_under_faults() {
    // The chaos.rs contract, applied to the session lifecycle: under delay
    // and duplication plans in deterministic lockstep, create → refactorize
    // (rescaled values) → batched solve must complete with the correct
    // result for every seed. Both the factorization runs and the panel
    // solve execute under the fault plan.
    let a = gen::laplacian_2d(6, 6);
    let scale = 3.0;
    let a_scaled = scaled_matrix(&a, scale);
    let bs = rhs_columns(a.n(), 3);
    for plan in ["delays", "dup"] {
        for seed in 0..3u64 {
            let faults = match plan {
                "delays" => FaultPlan::delays_only(seed),
                "dup" => FaultPlan::duplication(seed),
                other => unreachable!("{other}"),
            };
            let opts = SolverOptions {
                n_nodes: 1,
                ranks_per_node: 4,
                faults: Some(faults),
                deterministic: true,
                ..Default::default()
            };
            let mut session = Session::new(&a, &opts)
                .unwrap_or_else(|e| panic!("{plan}/seed={seed}: session: {e}"));
            session
                .refactorize(&scaled_values(&a, scale))
                .unwrap_or_else(|e| panic!("{plan}/seed={seed}: refactorize: {e}"));
            let batch = session
                .solve_batch(&[RhsPanel::from_columns(&bs)])
                .unwrap_or_else(|e| panic!("{plan}/seed={seed}: solve_batch: {e}"));
            for (k, b) in bs.iter().enumerate() {
                let res = a_scaled.relative_residual(batch.panels[0].column(k), b);
                assert!(
                    res < RESIDUAL_TOL,
                    "{plan}/seed={seed} rhs {k}: residual {res} after \
                     refactorize-then-solve under faults"
                );
            }
        }
    }
}

#[test]
fn deterministic_sessions_are_bit_reproducible() {
    let a = gen::laplacian_2d(6, 6);
    let opts = SolverOptions {
        n_nodes: 1,
        ranks_per_node: 4,
        deterministic: true,
        ..Default::default()
    };
    let bs = rhs_columns(a.n(), 2);
    let run = || {
        let s = Session::new(&a, &opts).expect("SPD");
        let batch = s
            .solve_batch(&[RhsPanel::from_columns(&bs)])
            .expect("solve");
        (s.factor_time(), batch.solve_time)
    };
    let (f1, s1) = run();
    let (f2, s2) = run();
    assert_eq!(
        f1.to_bits(),
        f2.to_bits(),
        "factor makespan not reproducible"
    );
    assert_eq!(
        s1.to_bits(),
        s2.to_bits(),
        "solve makespan not reproducible"
    );
}

#[test]
fn refactorize_rejections_are_typed_errors() {
    let a = gen::laplacian_2d(6, 5);
    let opts = SolverOptions {
        n_nodes: 1,
        ranks_per_node: 2,
        ..Default::default()
    };
    let mut session = Session::new(&a, &opts).expect("SPD");
    let expected = session.pattern_nnz();

    // Wrong-length value array: typed rejection with both counts.
    match session.refactorize(&vec![1.0; expected - 1]) {
        Err(SolverError::PatternMismatch {
            expected_nnz,
            actual_nnz,
            ..
        }) => {
            assert_eq!(expected_nnz, expected);
            assert_eq!(actual_nnz, expected - 1);
        }
        other => panic!("short values: expected PatternMismatch, got {other:?}"),
    }

    // Structure mismatch (same order, different sparsity): typed rejection.
    let different = gen::random_spd(a.n(), 3, 11);
    match session.refactorize_matrix(&different) {
        Err(SolverError::PatternMismatch { expected_nnz, .. }) => {
            assert_eq!(expected_nnz, expected);
        }
        other => panic!("wrong structure: expected PatternMismatch, got {other:?}"),
    }

    // The error message names both counts for operators.
    let msg = session
        .refactorize(&vec![0.0; expected + 7])
        .unwrap_err()
        .to_string();
    assert!(msg.contains(&expected.to_string()) && msg.contains(&(expected + 7).to_string()));

    // After every rejection the original factor still serves solves.
    let b = rhs_columns(a.n(), 1).remove(0);
    let x = session.solve(&b).expect("previous factor intact");
    assert!(a.relative_residual(&x, &b) < RESIDUAL_TOL);
}
