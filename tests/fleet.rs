//! Fleet integration tests: plan-cache reuse must be invisible to the
//! numerics, across every engine.
//!
//! * [`cached_plan_is_bit_identical_across_engines`] pins the tentpole
//!   contract of the pattern-keyed plan cache: a factorization built from a
//!   cached `SymbolicPlan` produces byte-identical factor blocks and solve
//!   results vs. a fresh analyze, for all five engines on the shared
//!   runtime — fan-out + panel triangular solve (through `Session`), and
//!   the right-looking / fan-in / fan-both baselines (through
//!   `BaselineOptions::symbolic`) — at P ∈ {1, 2, 4}.
//! * [`fleet_amortizes_analysis_across_tenants`] drives a small multi-tenant
//!   mix end to end: repeated-pattern tenants admit as plan-cache hits
//!   (analyze wall time exactly 0), every tenant's solutions stay correct,
//!   and the LRU keeps residency under the configured byte budget.

use std::sync::Arc;

use sympack::{SolverOptions, SymbolicPlan};
use sympack_baseline::{
    try_baseline_factor_and_solve, try_fanboth_factor_and_solve, try_fanin_factor_and_solve,
    BaselineOptions, BaselineReport,
};
use sympack_fleet::{Fleet, FleetConfig};
use sympack_ordering::compute_ordering;
use sympack_service::Session;
use sympack_sparse::gen;
use sympack_sparse::SparseSym;
use sympack_symbolic::analyze;

fn rhs(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i + 1) as f64 * 0.23).sin()).collect()
}

fn assert_bits_eq(label: &str, xs: &[f64], ys: &[f64]) {
    assert_eq!(xs.len(), ys.len(), "{label}: length");
    for (i, (u, v)) in xs.iter().zip(ys.iter()).enumerate() {
        assert_eq!(u.to_bits(), v.to_bits(), "{label}: element {i}");
    }
}

fn assert_factors_bit_identical(label: &str, fresh: &Session, cached: &Session) {
    let s1 = fresh.factor_stores().expect("fresh factor resident");
    let s2 = cached.factor_stores().expect("cached factor resident");
    assert_eq!(s1.len(), s2.len(), "{label}: rank count");
    for (r, (a, b)) in s1.iter().zip(s2.iter()).enumerate() {
        let mut keys: Vec<_> = a.iter().map(|(k, _)| *k).collect();
        keys.sort_unstable();
        let mut keys_b: Vec<_> = b.iter().map(|(k, _)| *k).collect();
        keys_b.sort_unstable();
        assert_eq!(keys, keys_b, "{label}: rank {r} block keys");
        for k in keys {
            let m1 = a.get(k).unwrap().to_dense();
            let m2 = b.get(k).unwrap().to_dense();
            assert_bits_eq(
                &format!("{label}: rank {r} block {k:?}"),
                m1.as_slice(),
                m2.as_slice(),
            );
        }
    }
}

fn assert_baseline_bits_eq(label: &str, fresh: &BaselineReport, shared: &BaselineReport) {
    assert_bits_eq(&format!("{label}: x"), &fresh.x, &shared.x);
    assert_eq!(
        fresh.factor_time.to_bits(),
        shared.factor_time.to_bits(),
        "{label}: factor_time"
    );
    assert_eq!(
        fresh.solve_time.to_bits(),
        shared.solve_time.to_bits(),
        "{label}: solve_time"
    );
}

#[test]
fn cached_plan_is_bit_identical_across_engines() {
    let a = gen::laplacian_2d(7, 6);
    let b = rhs(a.n());
    for p in [1usize, 2, 4] {
        // Fan-out factorization + panel triangular solve via Session: the
        // cached-plan session must reproduce the fresh session bit for bit.
        let opts = SolverOptions {
            n_nodes: 1,
            ranks_per_node: p,
            deterministic: true,
            ..Default::default()
        };
        let fresh = Session::new(&a, &opts).unwrap_or_else(|e| panic!("P={p}: fresh: {e}"));
        let plan: Arc<SymbolicPlan> = fresh.symbolic_plan();
        let cached = Session::with_plan(&a, Arc::clone(&plan), &opts)
            .unwrap_or_else(|e| panic!("P={p}: cached: {e}"));
        assert_eq!(cached.analyze_wall_ms(), 0.0, "P={p}: hit skips analysis");
        assert_eq!(
            fresh.factor_time().to_bits(),
            cached.factor_time().to_bits(),
            "P={p}: fan-out factor_time"
        );
        assert_factors_bit_identical(&format!("P={p} fan-out"), &fresh, &cached);
        let xf = fresh.solve(&b).unwrap();
        let xc = cached.solve(&b).unwrap();
        assert_bits_eq(&format!("P={p} trisolve"), &xf, &xc);
        assert!(a.relative_residual(&xc, &b) < 1e-8, "P={p}: residual");

        // The three baselines: a shared symbolic factor handed through
        // BaselineOptions::symbolic must change nothing vs. re-analyzing.
        let bl = BaselineOptions {
            n_nodes: 1,
            ranks_per_node: p,
            deterministic: true,
            ..Default::default()
        };
        let ordering = compute_ordering(&a, bl.ordering);
        let sf = Arc::new(analyze(&a, &ordering, &bl.analyze));
        let shared_opts = BaselineOptions {
            symbolic: Some(Arc::clone(&sf)),
            ..bl.clone()
        };
        for (name, run) in [
            (
                "right-looking",
                &try_baseline_factor_and_solve
                    as &dyn Fn(&SparseSym, &[f64], &BaselineOptions) -> _,
            ),
            ("fan-in", &try_fanin_factor_and_solve),
            ("fan-both", &try_fanboth_factor_and_solve),
        ] {
            let fresh = run(&a, &b, &bl).unwrap_or_else(|e| panic!("P={p} {name} fresh: {e}"));
            let shared =
                run(&a, &b, &shared_opts).unwrap_or_else(|e| panic!("P={p} {name} shared: {e}"));
            assert_baseline_bits_eq(&format!("P={p} {name}"), &fresh, &shared);
            assert!(shared.relative_residual < 1e-8, "P={p} {name}: residual");
        }
    }
}

#[test]
fn fleet_amortizes_analysis_across_tenants() {
    let patterns = [gen::laplacian_2d(7, 7), gen::laplacian_2d(6, 6)];
    for p in [1usize, 2, 4] {
        let opts = SolverOptions {
            n_nodes: 1,
            ranks_per_node: p,
            deterministic: true,
            ..Default::default()
        };
        // Budget sized from a probe factor so the third tenant forces LRU
        // eviction (two distinct patterns, five tenants).
        let probe = Session::new(&patterns[0], &opts).unwrap();
        let budget = 2 * probe.factor_bytes();
        let config = FleetConfig {
            shards: 2,
            factor_budget_bytes: budget,
            max_pending_per_tenant: 16,
            max_batch: 4,
            quantum: 2.0,
        };
        let mut fleet = Fleet::new(&opts, config);
        let names = ["t0", "t1", "t2", "t3", "t4"];
        let ids: Vec<_> = names
            .iter()
            .enumerate()
            .map(|(i, name)| {
                fleet
                    .admit(name, &patterns[i % patterns.len()], 1.0)
                    .unwrap_or_else(|e| panic!("P={p}: admit {name}: {e}"))
            })
            .collect();
        // Two patterns → two misses, three hits; hits pay zero analysis.
        let cache = fleet.cache_metrics();
        assert_eq!(cache.plan_misses, 2, "P={p}");
        assert_eq!(cache.plan_hits, 3, "P={p}");
        for (i, &id) in ids.iter().enumerate() {
            if i < patterns.len() {
                assert!(
                    fleet.tenant_analyze_wall_ms(id) > 0.0,
                    "P={p} t{i}: first sight"
                );
            } else {
                assert_eq!(
                    fleet.tenant_analyze_wall_ms(id),
                    0.0,
                    "P={p} t{i}: cache hit"
                );
            }
        }
        // Serve a burst from every tenant; all answers correct, residency
        // bounded by the budget throughout.
        for (i, &id) in ids.iter().enumerate() {
            let n = fleet.session(id).n();
            for j in 0..3 {
                fleet
                    .submit_at(id, rhs(n), (i * 3 + j) as f64 * 0.05)
                    .unwrap();
            }
        }
        let done = fleet.drain().unwrap();
        assert_eq!(done.len(), 15, "P={p}");
        for c in &done {
            let n = c.x.len();
            let a = &patterns[c.tenant.0 % patterns.len()];
            assert_eq!(a.n(), n);
            assert!(a.relative_residual(&c.x, &rhs(n)) < 1e-8, "P={p} job");
        }
        let cache = fleet.cache_metrics();
        assert!(cache.factor_evictions >= 1, "P={p}: budget forces eviction");
        assert!(
            cache.resident_high_water_bytes <= budget,
            "P={p}: high-water"
        );
        // Request spans name their tenants for the flight recorder.
        assert_eq!(fleet.request_spans().len(), 15, "P={p}");
        assert!(fleet
            .request_spans()
            .iter()
            .all(|s| s.name.contains("/job-")));
    }
}
