//! End-to-end pipeline integration tests: generate → order → analyze →
//! factorize → solve, across problem classes, rank counts, orderings, GPU
//! modes and block sizes — verified against the original matrix every time.

use sympack::{ProcGrid, RtqPolicy, SolverOptions, SymPack};
use sympack_ordering::OrderingKind;
use sympack_sparse::gen;
use sympack_sparse::vecops::test_rhs;
use sympack_symbolic::AnalyzeOptions;

fn solve_and_check(a: &sympack_sparse::SparseSym, opts: &SolverOptions) {
    let b = test_rhs(a.n());
    let r = SymPack::factor_and_solve(a, &b, opts);
    assert!(
        r.relative_residual < 1e-9,
        "residual {} with {opts:?}",
        r.relative_residual
    );
}

#[test]
fn all_problem_classes_solve() {
    for a in [
        gen::laplacian_2d(12, 11),
        gen::laplacian_3d(6, 5, 4),
        gen::flan_like(5, 5, 5),
        gen::bone_like(4, 4, 3),
        gen::thermal_like(15, 14, 0.3, 5),
        gen::random_spd(150, 6, 44),
    ] {
        solve_and_check(&a, &SolverOptions::default());
    }
}

#[test]
fn rank_counts_sweep() {
    let a = gen::laplacian_2d(14, 14);
    for (nodes, ppn) in [(1, 1), (1, 3), (2, 2), (3, 2), (2, 4), (8, 1)] {
        solve_and_check(
            &a,
            &SolverOptions {
                n_nodes: nodes,
                ranks_per_node: ppn,
                ..Default::default()
            },
        );
    }
}

#[test]
fn orderings_sweep() {
    let a = gen::thermal_like(13, 13, 0.4, 9);
    for kind in [
        OrderingKind::Natural,
        OrderingKind::Rcm,
        OrderingKind::MinDegree,
        OrderingKind::NestedDissection,
    ] {
        solve_and_check(
            &a,
            &SolverOptions {
                ordering: kind,
                ..Default::default()
            },
        );
    }
}

#[test]
fn supernode_width_and_amalgamation_sweep() {
    let a = gen::laplacian_3d(5, 5, 5);
    for max_sn_width in [1, 4, 16, 128] {
        for amalgamation_ratio in [0.0, 0.2, 0.5] {
            solve_and_check(
                &a,
                &SolverOptions {
                    analyze: AnalyzeOptions {
                        max_sn_width,
                        amalgamation_ratio,
                    },
                    ..Default::default()
                },
            );
        }
    }
}

#[test]
fn degenerate_shapes() {
    // 1x1 matrix.
    let mut coo = sympack_sparse::Coo::new(1, 1);
    coo.push(0, 0, 4.0).unwrap();
    let a = coo.to_csc().to_lower_sym();
    solve_and_check(&a, &SolverOptions::default());
    // Diagonal matrix (no off-diagonal structure at all).
    let mut coo = sympack_sparse::Coo::new(9, 9);
    for i in 0..9 {
        coo.push(i, i, (i + 1) as f64).unwrap();
    }
    solve_and_check(&coo.to_csc().to_lower_sym(), &SolverOptions::default());
    // More ranks than supernodes.
    let mut coo = sympack_sparse::Coo::new(3, 3);
    for i in 0..3 {
        coo.push(i, i, 2.0).unwrap();
    }
    solve_and_check(
        &coo.to_csc().to_lower_sym(),
        &SolverOptions {
            n_nodes: 4,
            ranks_per_node: 2,
            ..Default::default()
        },
    );
}

#[test]
fn grid_shapes_and_policies() {
    let a = gen::random_spd(120, 5, 77);
    for grid in [
        ProcGrid::new(1, 6),
        ProcGrid::new(6, 1),
        ProcGrid::new(2, 3),
        ProcGrid::new(3, 2),
    ] {
        for policy in [RtqPolicy::Lifo, RtqPolicy::Fifo, RtqPolicy::CriticalPath] {
            solve_and_check(
                &a,
                &SolverOptions {
                    n_nodes: 3,
                    ranks_per_node: 2,
                    grid: Some(grid),
                    rtq_policy: policy,
                    ..Default::default()
                },
            );
        }
    }
}

#[test]
fn memory_kinds_modes_agree_numerically() {
    let a = gen::flan_like(4, 4, 4);
    let b = test_rhs(a.n());
    let mut native = SolverOptions {
        n_nodes: 2,
        ranks_per_node: 2,
        ..Default::default()
    };
    native.net.mode = sympack_pgas::MemKindsMode::Native;
    let mut reference = native.clone();
    reference.net.mode = sympack_pgas::MemKindsMode::Reference;
    let rn = SymPack::factor_and_solve(&a, &b, &native);
    let rr = SymPack::factor_and_solve(&a, &b, &reference);
    assert!(rn.relative_residual < 1e-10);
    assert!(rr.relative_residual < 1e-10);
    let d = sympack_sparse::vecops::max_abs_diff(&rn.x, &rr.x);
    assert!(d < 1e-9, "memory-kinds mode changed the numerics: {d}");
}

#[test]
fn io_roundtrip_through_rutherford_boeing_solves() {
    // Write the matrix out in the paper's symPACK input format, read it
    // back, and solve — the full user path for SuiteSparse downloads.
    let a = gen::laplacian_2d(9, 9);
    let mut buf = Vec::new();
    sympack_sparse::io::rb::write(&mut buf, &a, "laplacian 9x9").unwrap();
    let back = sympack_sparse::io::rb::read(&buf[..]).unwrap();
    assert_eq!(back, a);
    solve_and_check(&back, &SolverOptions::default());
}

#[test]
fn io_roundtrip_through_matrix_market_solves() {
    // The baseline (PaStiX) input format.
    let a = gen::random_spd(60, 4, 3);
    let mut buf = Vec::new();
    sympack_sparse::io::mm::write_sym(&mut buf, &a).unwrap();
    let back = sympack_sparse::io::mm::read(&buf[..])
        .unwrap()
        .to_lower_sym();
    solve_and_check(&back, &SolverOptions::default());
}
