//! Integration tests for the extension features: selected inversion,
//! condition estimation, multi-RHS, tracing, analysis statistics, the
//! multifrontal solver and the taxonomy variants — all on shared inputs so
//! the pieces are exercised together the way a downstream user would.

use sympack::{SolverOptions, SymPack};
use sympack_sparse::gen::{laplacian_2d, random_spd};
use sympack_sparse::vecops::{max_abs_diff, test_rhs};

#[test]
fn trace_covers_every_task_of_the_factorization() {
    let a = laplacian_2d(10, 10);
    let b = test_rhs(a.n());
    let opts = SolverOptions {
        n_nodes: 2,
        ranks_per_node: 2,
        trace: true,
        ..Default::default()
    };
    let r = SymPack::factor_and_solve(&a, &b, &opts);
    assert!(r.relative_residual < 1e-10);
    // One execution span per factorization task: D + F + U counts from the
    // analysis. The trace also carries the solve sweep (category `Solve`)
    // and the comm-layer spans (kind != Exec), counted separately.
    let sf = SymPack::analyze_only(&a, &opts);
    let mut expected = sf.n_supernodes(); // diagonals
    for j in 0..sf.n_supernodes() {
        let m = sf.layout.blocks_of(j).len();
        expected += m; // panels
        expected += m * (m + 1) / 2; // updates
    }
    let is_exec = |e: &&sympack_trace::TraceEvent| e.kind == sympack_trace::SpanKind::Exec;
    let facto_events = r
        .trace
        .iter()
        .filter(is_exec)
        .filter(|e| !matches!(e.cat, sympack_trace::TraceCat::Solve))
        .count();
    assert_eq!(
        facto_events, expected,
        "trace must cover every task exactly once"
    );
    let solve_events = r
        .trace
        .iter()
        .filter(is_exec)
        .filter(|e| matches!(e.cat, sympack_trace::TraceCat::Solve))
        .count();
    assert!(solve_events > 0, "solve sweep must be traced too");
    let comm_spans = r.trace.iter().filter(|e| !is_exec(e)).count();
    assert!(comm_spans > 0, "comm layer must be traced too");
    // Task executions never overlap on a single rank (comm spans may — a
    // blocking fetch runs inside the dependency gap of the next task).
    let mut by_rank: std::collections::HashMap<usize, Vec<(f64, f64)>> = Default::default();
    for e in r.trace.iter().filter(is_exec) {
        by_rank
            .entry(e.rank)
            .or_default()
            .push((e.start, e.start + e.dur));
    }
    for (rank, mut iv) in by_rank {
        iv.sort_by(|a, b| a.0.total_cmp(&b.0));
        for w in iv.windows(2) {
            assert!(
                w[1].0 >= w[0].1 - 1e-12,
                "rank {rank}: overlapping task intervals {w:?}"
            );
        }
    }
}

#[test]
fn untraced_runs_return_no_events() {
    let a = laplacian_2d(6, 6);
    let r = SymPack::factor_and_solve(&a, &test_rhs(36), &SolverOptions::default());
    assert!(r.trace.is_empty());
}

#[test]
fn selinv_diagonal_vs_condest_machinery() {
    // diag(A^-1) from selected inversion must match per-column solves done
    // through the gathered-factor path used by condest.
    let a = random_spd(45, 4, 99);
    let opts = SolverOptions::default();
    let s = sympack::selected_inverse(&a, &opts).unwrap();
    let g = SymPack::factor_gather(&a, &opts).unwrap();
    for i in (0..45).step_by(7) {
        let mut e = vec![0.0; 45];
        e[i] = 1.0;
        let col = sympack::condest::solve_with_factor(&g, &e);
        assert!((s.diagonal()[i] - col[i]).abs() < 1e-9);
    }
}

#[test]
fn condest_never_underestimates_observed_amplification() {
    // κ₁ ≥ the amplification we can directly exhibit with any vector.
    let a = random_spd(60, 5, 7);
    let opts = SolverOptions::default();
    let k = sympack::condest(&a, &opts).unwrap();
    let g = SymPack::factor_gather(&a, &opts).unwrap();
    let norm_a = sympack::condest::norm1(&a);
    // Amplification of a specific probe through A^{-1}.
    let probe: Vec<f64> = (0..60).map(|i| if i == 3 { 1.0 } else { 0.0 }).collect();
    let y = sympack::condest::solve_with_factor(&g, &probe);
    let amp = y.iter().map(|v| v.abs()).sum::<f64>() * norm_a;
    assert!(k + 1e-9 >= amp, "condest {k} below exhibited bound {amp}");
}

#[test]
fn all_five_solver_families_agree() {
    let a = random_spd(75, 5, 2024);
    let b = test_rhs(75);
    let opts = SolverOptions {
        n_nodes: 2,
        ranks_per_node: 2,
        ..Default::default()
    };
    let bopts = sympack_baseline::BaselineOptions {
        n_nodes: 2,
        ranks_per_node: 2,
        ..Default::default()
    };
    let fan_out = SymPack::factor_and_solve(&a, &b, &opts).x;
    let right_looking = sympack_baseline::baseline_factor_and_solve(&a, &b, &bopts).x;
    let fan_in = sympack_baseline::fanin_factor_and_solve(&a, &b, &bopts).x;
    let fan_both = sympack_baseline::fanboth_factor_and_solve(&a, &b, &bopts).x;
    let multifrontal = sympack_multifrontal::multifrontal_solve(
        &a,
        &b,
        &sympack_multifrontal::MfOptions::default(),
    )
    .unwrap();
    for (name, x) in [
        ("right-looking", &right_looking),
        ("fan-in", &fan_in),
        ("fan-both", &fan_both),
        ("multifrontal", &multifrontal),
    ] {
        let d = max_abs_diff(&fan_out, x);
        assert!(d < 1e-8, "{name} diverges from fan-out by {d}");
    }
}

#[test]
fn analysis_stats_track_problem_structure() {
    use sympack_symbolic::analysis_stats;
    let dense3d = sympack_sparse::gen::flan_like(6, 6, 6);
    let sparse2d = sympack_sparse::gen::thermal_like(15, 15, 0.35, 1);
    let opts = SolverOptions::default();
    let st3 = analysis_stats(&SymPack::analyze_only(&dense3d, &opts));
    let st2 = analysis_stats(&SymPack::analyze_only(&sparse2d, &opts));
    // The denser 3D problem must have wider supernodes on average and
    // more fill relative to n.
    assert!(st3.sn_width.1 > st2.sn_width.1);
    assert!((st3.l_nnz as f64 / st3.n as f64) > (st2.l_nnz as f64 / st2.n as f64));
}

#[test]
fn gathered_factor_reconstructs_the_matrix() {
    // L·Lᵀ (on the permuted matrix) must reproduce A_perm on its pattern.
    let a = random_spd(40, 4, 11);
    let g = SymPack::factor_gather(&a, &SolverOptions::default()).unwrap();
    let l = &g.l_permuted;
    let ap = a.permute(g.perm.as_slice());
    let n = l.n();
    for c in 0..n {
        for (&r, &v) in ap.col_rows(c).iter().zip(ap.col_values(c)) {
            // (L L^T)(r, c) = sum_k L(r,k) L(c,k), k <= min(r, c) = c.
            let mut s = 0.0;
            for k in 0..=c {
                let (lr, lc) = (l.get(r, k), l.get(c, k));
                if lr != 0.0 && lc != 0.0 {
                    s += lr * lc;
                }
            }
            assert!((s - v).abs() < 1e-8 * v.abs().max(1.0), "entry ({r},{c})");
        }
    }
}

#[test]
fn vendor_gpu_presets_change_modeled_times_not_answers() {
    let a = sympack_sparse::gen::flan_like(6, 6, 6);
    let b = test_rhs(a.n());
    let mut opts = SolverOptions {
        n_nodes: 1,
        ranks_per_node: 2,
        ..Default::default()
    };
    let nvidia = SymPack::factor_and_solve(&a, &b, &opts);
    // Swap the cost model via analytical thresholds for an AMD-class device.
    let amd_cost = sympack_gpu::CostModel::amd_mi250x();
    opts.thresholds = Some(sympack_gpu::analytical_thresholds(&amd_cost));
    let amd = SymPack::factor_and_solve(&a, &b, &opts);
    assert!(nvidia.relative_residual < 1e-10);
    assert!(amd.relative_residual < 1e-10);
    let d = max_abs_diff(&nvidia.x, &amd.x);
    assert!(d < 1e-9, "hardware preset changed numerics: {d}");
}
