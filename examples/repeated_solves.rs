//! Factor once, solve many — the access pattern of the applications the
//! paper names in §5.3 (Sakurai-Sugiura eigensolvers, PEXSI selected
//! inversion): one expensive factorization amortized over many right-hand
//! sides, served through a persistent [`Session`].
//!
//! The session keeps the analyzed plan and the distributed factor alive, so
//! the whole batch is one `solve_batch` call — a single distributed *panel*
//! triangular solve that moves all eight columns with the same message and
//! task count as a one-vector solve.
//!
//! ```text
//! cargo run --release -p sympack-apps --example repeated_solves
//! ```

use sympack::SolverOptions;
use sympack_service::{RhsPanel, Session};
use sympack_sparse::gen::laplacian_3d;

fn main() {
    let a = laplacian_3d(10, 10, 10);
    println!("matrix: n = {}, nnz = {}", a.n(), a.nnz_full());

    // A batch of right-hand sides, e.g. quadrature points of a contour
    // integral eigensolver.
    let nrhs = 8;
    let bs: Vec<Vec<f64>> = (0..nrhs)
        .map(|k| {
            (0..a.n())
                .map(|i| ((i as f64) * 0.1 + k as f64).sin())
                .collect()
        })
        .collect();

    let opts = SolverOptions {
        n_nodes: 2,
        ranks_per_node: 2,
        ..Default::default()
    };
    let session = Session::new(&a, &opts).expect("SPD input");
    println!(
        "factorization (once): {:.3} ms (modeled), analysis {:.1} ms (wall)",
        session.factor_time() * 1e3,
        session.analyze_wall_ms()
    );

    // One panel solve serves the whole batch.
    let batch = session
        .solve_batch(&[RhsPanel::from_columns(&bs)])
        .expect("solve");
    let xs = &batch.panels[0];
    for (k, b) in bs.iter().enumerate() {
        let res = a.relative_residual(xs.column(k), b);
        println!("  rhs {k}: residual {res:.1e}");
        assert!(res < 1e-10);
    }
    println!(
        "panel solve for all {nrhs} rhs: {:.3} ms (modeled)",
        batch.solve_time * 1e3
    );

    // Against the naive alternative: one vector solve per rhs (same factor),
    // and nrhs full factor+solve rounds.
    let one = session
        .solve_batch(&[RhsPanel::from_vector(&bs[0])])
        .expect("solve");
    let per_vector = one.solve_time * nrhs as f64;
    let naive = (session.factor_time() + one.solve_time) * nrhs as f64;
    println!(
        "\namortization: the panel solve costs {:.3} ms vs {:.3} ms for {nrhs}\n\
         per-vector solves ({:.1}x) and {:.3} ms for {nrhs} naive factor+solve\n\
         rounds ({:.1}x saved by the session).",
        batch.solve_time * 1e3,
        per_vector * 1e3,
        per_vector / batch.solve_time,
        naive * 1e3,
        naive / (session.factor_time() + batch.solve_time)
    );
}
