//! Factor once, solve many — the access pattern of the applications the
//! paper names in §5.3 (Sakurai-Sugiura eigensolvers, PEXSI selected
//! inversion): one expensive factorization amortized over many right-hand
//! sides.
//!
//! ```text
//! cargo run --release -p sympack-apps --example repeated_solves
//! ```

use sympack::{SolverOptions, SymPack};
use sympack_sparse::gen::laplacian_3d;

fn main() {
    let a = laplacian_3d(10, 10, 10);
    println!("matrix: n = {}, nnz = {}", a.n(), a.nnz_full());

    // A batch of right-hand sides, e.g. quadrature points of a contour
    // integral eigensolver.
    let nrhs = 8;
    let bs: Vec<Vec<f64>> = (0..nrhs)
        .map(|k| {
            (0..a.n())
                .map(|i| ((i as f64) * 0.1 + k as f64).sin())
                .collect()
        })
        .collect();

    let opts = SolverOptions {
        n_nodes: 2,
        ranks_per_node: 2,
        ..Default::default()
    };
    let r = SymPack::try_factor_and_solve_multi(&a, &bs, &opts).expect("SPD input");

    println!(
        "factorization (once): {:.3} ms (modeled)",
        r.factor_time * 1e3
    );
    let total_solve: f64 = r.solve_times.iter().sum();
    for (k, (t, res)) in r.solve_times.iter().zip(&r.relative_residuals).enumerate() {
        println!("  solve {k}: {:.3} ms, residual {:.1e}", t * 1e3, res);
        assert!(*res < 1e-10);
    }
    println!(
        "\namortization: {nrhs} solves cost {:.3} ms total vs {:.3} ms for\n{nrhs} naive factor+solve rounds — {:.1}x saved by factoring once.",
        total_solve * 1e3,
        (r.factor_time + r.solve_times[0]) * nrhs as f64 * 1e3,
        (r.factor_time + r.solve_times[0]) * nrhs as f64 / (r.factor_time + total_solve)
    );
}
