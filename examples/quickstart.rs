//! Quickstart: factor and solve a small SPD system with symPACK-rs.
//!
//! ```text
//! cargo run --release -p sympack-apps --example quickstart
//! ```

use sympack::{SolverOptions, SymPack};
use sympack_sparse::gen::laplacian_2d;

fn main() {
    // 1. Build (or load) a sparse symmetric positive definite matrix.
    //    Here: the 5-point Laplacian on a 40x40 grid. To load your own,
    //    see `sympack_sparse::io::rb::read` (Rutherford-Boeing) and
    //    `sympack_sparse::io::mm::read` (Matrix Market).
    let a = laplacian_2d(40, 40);
    println!("matrix: n = {}, nnz = {}", a.n(), a.nnz_full());

    // 2. Pick a right-hand side.
    let x_true: Vec<f64> = (0..a.n()).map(|i| (i % 7) as f64 - 3.0).collect();
    let b = a.spmv(&x_true);

    // 3. Factor and solve. The defaults mirror the paper's setup: nested
    //    dissection ordering, 2D block-cyclic distribution, fan-out task
    //    scheduling, GPU offload with tuned per-op thresholds.
    let opts = SolverOptions::default();
    let report = SymPack::factor_and_solve(&a, &b, &opts);

    // 4. Inspect the results.
    println!("supernodes:        {}", report.n_supernodes);
    println!("factor nonzeros:   {}", report.l_nnz);
    println!("factor flops:      {:.2e}", report.flops as f64);
    println!("relative residual: {:.2e}", report.relative_residual);
    println!(
        "modeled factorization time: {:.3} ms",
        report.factor_time * 1e3
    );
    println!(
        "modeled solve time:         {:.3} ms",
        report.solve_time * 1e3
    );
    let err = x_true
        .iter()
        .zip(&report.x)
        .map(|(t, g)| (t - g).abs())
        .fold(0.0f64, f64::max);
    println!("max |x - x_true| = {err:.2e}");
    assert!(report.relative_residual < 1e-10);
    println!("OK");
}
