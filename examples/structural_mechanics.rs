//! Structural-mechanics style workload: repeated factorizations of a 3D
//! elasticity-like stiffness matrix, as in the eigenvalue and PEXSI
//! applications the paper's §5.3 motivates ("for an application that needs
//! multiple factorizations in succession, the overall benefit imparted by
//! symPACK could be substantial").
//!
//! Simulates a shift-and-solve loop: for each shift σ, factor `A + σ·I` and
//! solve against a block of load vectors, comparing symPACK-rs against the
//! right-looking baseline.
//!
//! ```text
//! cargo run --release -p sympack-apps --example structural_mechanics
//! ```

use sympack::{SolverOptions, SymPack};
use sympack_baseline::{baseline_factor_and_solve, BaselineOptions};
use sympack_sparse::gen::bone_like;
use sympack_sparse::{Coo, SparseSym};

/// `A + sigma·I` (the shifted operator of a shift-invert eigensolver step).
fn shifted(a: &SparseSym, sigma: f64) -> SparseSym {
    let n = a.n();
    let mut coo = Coo::new(n, n);
    for c in 0..n {
        for (&r, &v) in a.col_rows(c).iter().zip(a.col_values(c)) {
            let v = if r == c { v + sigma } else { v };
            coo.push(r, c, v).unwrap();
        }
    }
    coo.to_csc().to_lower_sym()
}

fn main() {
    // A 3-dof-per-node elasticity-like operator (the boneS10 analogue).
    let a = bone_like(8, 8, 8);
    println!(
        "stiffness matrix: n = {} ({} nodes x 3 dof), nnz = {}",
        a.n(),
        a.n() / 3,
        a.nnz_full()
    );
    let shifts = [0.0, 1.5, 4.0];
    let b: Vec<f64> = (0..a.n()).map(|i| ((i * 13) % 11) as f64 - 5.0).collect();
    let opts = SolverOptions {
        n_nodes: 2,
        ranks_per_node: 2,
        ..Default::default()
    };
    let bopts = BaselineOptions {
        n_nodes: 2,
        ranks_per_node: 2,
        ..Default::default()
    };
    let mut total_sp = 0.0;
    let mut total_bl = 0.0;
    for &sigma in &shifts {
        let shifted_a = shifted(&a, sigma);
        let sp = SymPack::factor_and_solve(&shifted_a, &b, &opts);
        let bl = baseline_factor_and_solve(&shifted_a, &b, &bopts);
        assert!(sp.relative_residual < 1e-10);
        assert!(bl.relative_residual < 1e-10);
        println!(
            "shift σ={sigma:>4}: symPACK facto+solve {:>8.3} ms | baseline {:>8.3} ms | residual {:.1e}",
            (sp.factor_time + sp.solve_time) * 1e3,
            (bl.factor_time + bl.solve_time) * 1e3,
            sp.relative_residual,
        );
        total_sp += sp.factor_time + sp.solve_time;
        total_bl += bl.factor_time + bl.solve_time;
    }
    println!(
        "\nshift loop total: symPACK {:.3} ms vs baseline {:.3} ms ({:.2}x) — the gap\ncompounds across repeated factorizations, the paper's §5.3 point.",
        total_sp * 1e3,
        total_bl * 1e3,
        total_bl / total_sp
    );
}
