//! Steady-state heat conduction on an irregular domain — the `thermal2`
//! workload class. Demonstrates the end-to-end pipeline on a very sparse,
//! irregular problem and shows why fill-reducing ordering matters there:
//! the example compares factor fill and modeled time across orderings.
//!
//! ```text
//! cargo run --release -p sympack-apps --example heat_steady_state
//! ```

use sympack::{SolverOptions, SymPack};
use sympack_ordering::OrderingKind;
use sympack_sparse::gen::thermal_like;

fn main() {
    // Irregular conduction problem: 2D grid plus random long-range couplings
    // (thermal bridges), ~7 nonzeros per row like thermal2.
    let a = thermal_like(60, 60, 0.35, 7);
    println!(
        "thermal matrix: n = {}, nnz = {} ({:.1} nnz/row)",
        a.n(),
        a.nnz_full(),
        a.nnz_full() as f64 / a.n() as f64
    );

    // Heat sources along one edge, sinks along the other.
    let n = a.n();
    let mut b = vec![0.0; n];
    for i in 0..60 {
        b[i] = 1.0; // bottom edge heated
        b[n - 1 - i] = -1.0; // top edge cooled
    }

    println!("\nordering comparison (the reason the paper runs Scotch nested dissection):");
    println!(
        "{:<22} {:>12} {:>14} {:>12} {:>12}",
        "ordering", "nnz(L)", "flops", "facto", "residual"
    );
    for (name, kind) in [
        ("natural", OrderingKind::Natural),
        ("RCM", OrderingKind::Rcm),
        ("minimum degree", OrderingKind::MinDegree),
        ("nested dissection", OrderingKind::NestedDissection),
    ] {
        let opts = SolverOptions {
            ordering: kind,
            ..Default::default()
        };
        let r = SymPack::factor_and_solve(&a, &b, &opts);
        assert!(
            r.relative_residual < 1e-8,
            "{name}: residual {}",
            r.relative_residual
        );
        println!(
            "{:<22} {:>12} {:>14.3e} {:>9.3} ms {:>12.2e}",
            name,
            r.l_nnz,
            r.flops as f64,
            r.factor_time * 1e3,
            r.relative_residual
        );
    }

    // Solve once more with the default (nested dissection) and report the
    // temperature extremes — the physical sanity check.
    let r = SymPack::factor_and_solve(&a, &b, &SolverOptions::default());
    let tmax = r.x.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let tmin = r.x.iter().cloned().fold(f64::INFINITY, f64::min);
    println!("\nsteady-state temperature range: [{tmin:.4}, {tmax:.4}]");
    assert!(
        tmax > 0.0 && tmin < 0.0,
        "heated and cooled regions must differ in sign"
    );
    println!("OK");
}
