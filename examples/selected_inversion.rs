//! Selected inversion — the PEXSI use case the paper cites in §5.3:
//! "evaluating specific elements of a matrix inverse without explicitly
//! inverting the matrix", the kernel of pole-expansion electronic-structure
//! methods (which need diag(A⁻¹)-like quantities at many shifted matrices,
//! each requiring a fresh factorization — exactly where a faster sparse
//! Cholesky pays off).
//!
//! ```text
//! cargo run --release -p sympack-apps --example selected_inversion
//! ```

use sympack::{selected_inverse, SolverOptions};
use sympack_service::{RhsPanel, Session};
use sympack_sparse::gen::laplacian_2d;

fn main() {
    // A discretized Hamiltonian stand-in.
    let a = laplacian_2d(24, 24);
    let n = a.n();
    println!("matrix: n = {n}, nnz = {}", a.nnz_full());

    let opts = SolverOptions {
        n_nodes: 2,
        ranks_per_node: 2,
        ..Default::default()
    };
    let s = selected_inverse(&a, &opts).expect("SPD input");
    println!(
        "selected entries of A^-1: {} (vs {} for the dense inverse, {:.1}%)",
        s.n_selected(),
        n * (n + 1) / 2,
        100.0 * s.n_selected() as f64 / (n * (n + 1) / 2) as f64
    );

    // The PEXSI-style quantity: the diagonal of the inverse ("local density
    // of states" analogue). Verify a few entries against direct solves of
    // A x = e_i — through one Session, so the verification factors once and
    // serves every unit vector from a single panel solve instead of paying a
    // fresh factorization per entry.
    let session = Session::new(&a, &opts).expect("SPD input");
    let probes = [0usize, n / 3, n / 2, n - 1];
    let unit_vectors: Vec<Vec<f64>> = probes
        .iter()
        .map(|&i| {
            let mut e = vec![0.0; n];
            e[i] = 1.0;
            e
        })
        .collect();
    let batch = session
        .solve_batch(&[RhsPanel::from_columns(&unit_vectors)])
        .expect("solve");
    let diag = s.diagonal();
    let mut worst = 0.0f64;
    for (k, &i) in probes.iter().enumerate() {
        let direct = batch.panels[0].column(k)[i];
        let err = (direct - diag[i]).abs();
        worst = worst.max(err);
        println!(
            "diag(A^-1)[{i:>4}] = {:.6}  (direct solve: {:.6})",
            diag[i], direct
        );
    }
    assert!(
        worst < 1e-10,
        "selected inversion disagrees with direct solves"
    );

    // Off-diagonal selected entries are available too; entries outside the
    // factor pattern are not computed (that is the point of *selected*).
    let inside = s.get(1, 0);
    println!("\nA^-1(1,0) = {:?} (inside the selected pattern)", inside);
    let mut outside_count = 0;
    for i in 0..n {
        if s.get(i, 0).is_none() {
            outside_count += 1;
        }
    }
    println!("column 0 has {outside_count} entries outside the selected pattern (not computed)");
    println!("OK");
}
