//! GPU offload-threshold tuning, the knob §4.2 exposes: "symPACK also
//! allows the user to specify each threshold manually".
//!
//! Sweeps a scale factor over the default per-op thresholds on a 3D problem
//! and prints the modeled factorization time and the CPU/GPU call split at
//! each point — a miniature of the brute-force tuning the authors describe,
//! and of the analytical-threshold future work of §6. Also exercises the
//! device-OOM fallback options.
//!
//! ```text
//! cargo run --release -p sympack-apps --example gpu_offload_tuning
//! ```

use sympack::{SolverError, SolverOptions, SymPack};
use sympack_gpu::{OffloadThresholds, OomPolicy, Op};
use sympack_sparse::gen::flan_like;
use sympack_sparse::vecops::test_rhs;

fn main() {
    let a = flan_like(14, 14, 14);
    let b = test_rhs(a.n());
    println!(
        "tuning on a 3D 27-point brick: n = {}, nnz = {}\n",
        a.n(),
        a.nnz_full()
    );
    println!(
        "{:>18} {:>12} {:>10} {:>10}",
        "threshold scale", "facto", "GPU calls", "CPU calls"
    );
    let base = OffloadThresholds::default();
    let mut best = (f64::INFINITY, 0.0);
    for scale in [0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0] {
        let t = OffloadThresholds {
            potrf: (base.potrf as f64 * scale) as usize,
            trsm: (base.trsm as f64 * scale) as usize,
            syrk: (base.syrk as f64 * scale) as usize,
            gemm: (base.gemm as f64 * scale) as usize,
        };
        let opts = SolverOptions {
            n_nodes: 1,
            ranks_per_node: 4,
            thresholds: Some(t),
            ..Default::default()
        };
        let r = SymPack::factor_and_solve(&a, &b, &opts);
        assert!(r.relative_residual < 1e-10);
        let (mut gpu, mut cpu) = (0u64, 0u64);
        for c in &r.op_counts {
            for op in Op::ALL {
                let (cc, gg) = c.get(op);
                cpu += cc;
                gpu += gg;
            }
        }
        println!(
            "{:>17}x {:>9.3} ms {:>10} {:>10}",
            scale,
            r.factor_time * 1e3,
            gpu,
            cpu
        );
        if r.factor_time < best.0 {
            best = (r.factor_time, scale);
        }
    }
    println!(
        "\nbest scale: {}x — too-low thresholds drown in kernel-launch overhead,\ntoo-high ones leave the GPU idle (the §4.2 trade-off).",
        best.1
    );

    // Device-OOM fallbacks (§4.2): tiny quota forces the paths.
    println!("\ndevice-OOM fallback options with a 16 KiB per-rank quota:");
    let mut opts = SolverOptions {
        ranks_per_node: 2,
        ..Default::default()
    };
    opts.device_quota = 16 << 10;
    opts.oom_policy = OomPolicy::CpuFallback;
    let r = SymPack::try_factor_and_solve(&a, &b, &opts).expect("CpuFallback must succeed");
    println!(
        "  CpuFallback: completed, residual {:.1e}",
        r.relative_residual
    );
    opts.oom_policy = OomPolicy::Abort;
    match SymPack::try_factor_and_solve(&a, &b, &opts) {
        Err(SolverError::DeviceOom { requested, available, context }) => println!(
            "  Abort: factorization terminated fetching {context} (requested {requested} B, {available} B free) — rerun with more device memory"
        ),
        Ok(_) => println!("  Abort: quota was never exceeded on this problem"),
        Err(e) => panic!("unexpected error: {e}"),
    }
}
