//! Analysis statistics: the structural quantities that predict how well a
//! problem will run — supernode widths (BLAS-3 efficiency), block counts
//! (task granularity and message counts), elimination-tree height and width
//! (available parallelism), and the critical-path flops (strong-scaling
//! limit). The `analysis_stats` bench binary prints these for the paper's
//! three problems.

use crate::SymbolicFactor;

/// Summary statistics of a symbolic factorization.
#[derive(Debug, Clone)]
pub struct AnalysisStats {
    /// Matrix order.
    pub n: usize,
    /// Supernode count.
    pub n_supernodes: usize,
    /// Factor nonzeros (incl. diagonal).
    pub l_nnz: usize,
    /// Structure-implied factorization flops.
    pub flops: u64,
    /// Widths: (min, average, max) supernode column counts.
    pub sn_width: (usize, f64, usize),
    /// Off-diagonal block count.
    pub n_blocks: usize,
    /// Block heights: (min, average, max) rows per off-diagonal block.
    pub block_rows: (usize, f64, usize),
    /// Height of the supernodal elimination forest (edges on longest path).
    pub tree_height: usize,
    /// Supernodes per tree level, root level last — the parallelism profile.
    pub level_widths: Vec<usize>,
    /// Flops along the heaviest root-to-leaf path: no schedule on any
    /// machine can beat `critical_path_flops / rate`.
    pub critical_path_flops: u64,
}

/// Per-supernode flop count (the same formula `analyze` totals).
fn sn_flops(sf: &SymbolicFactor, s: usize) -> u64 {
    let w = sf.partition.width(s) as u64;
    let h = sf.patterns[s].len() as u64;
    let cc = h + w;
    (0..w).map(|j| (cc - j) * (cc - j)).sum()
}

/// Compute the statistics of a symbolic factor.
pub fn analysis_stats(sf: &SymbolicFactor) -> AnalysisStats {
    let ns = sf.n_supernodes();
    let mut wmin = usize::MAX;
    let mut wmax = 0usize;
    let mut wsum = 0usize;
    for s in 0..ns {
        let w = sf.partition.width(s);
        wmin = wmin.min(w);
        wmax = wmax.max(w);
        wsum += w;
    }
    let mut n_blocks = 0usize;
    let (mut bmin, mut bmax, mut bsum) = (usize::MAX, 0usize, 0usize);
    for s in 0..ns {
        for b in sf.layout.blocks_of(s) {
            n_blocks += 1;
            bmin = bmin.min(b.n_rows);
            bmax = bmax.max(b.n_rows);
            bsum += b.n_rows;
        }
    }
    if n_blocks == 0 {
        bmin = 0;
    }
    // Depth = distance from root; compute bottom-up over the parent array
    // (children have smaller indices, so a reverse sweep sees parents first).
    let mut depth = vec![0usize; ns];
    let mut height = 0usize;
    for s in (0..ns).rev() {
        let p = sf.sn_parent[s];
        if p != usize::MAX {
            depth[s] = depth[p] + 1;
            height = height.max(depth[s]);
        }
    }
    let mut level_widths = vec![0usize; height + 1];
    for s in 0..ns {
        // Root level last: invert depth.
        level_widths[height - depth[s]] += 1;
    }
    // Critical path: heaviest flops path from any leaf to its root.
    let mut path = vec![0u64; ns];
    let mut critical = 0u64;
    for s in 0..ns {
        // Children precede parents, so path[s] already includes the best child.
        path[s] += sn_flops(sf, s);
        critical = critical.max(path[s]);
        let p = sf.sn_parent[s];
        if p != usize::MAX {
            path[p] = path[p].max(path[s]);
        }
    }
    AnalysisStats {
        n: sf.n(),
        n_supernodes: ns,
        l_nnz: sf.l_nnz,
        flops: sf.flops,
        sn_width: (wmin, wsum as f64 / ns.max(1) as f64, wmax),
        n_blocks,
        block_rows: (
            bmin,
            if n_blocks > 0 {
                bsum as f64 / n_blocks as f64
            } else {
                0.0
            },
            bmax,
        ),
        tree_height: height,
        level_widths,
        critical_path_flops: critical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze, AnalyzeOptions};
    use sympack_ordering::{compute_ordering, OrderingKind};
    use sympack_sparse::gen::{laplacian_2d, random_spd};
    use sympack_sparse::{Coo, SparseSym};

    fn analyzed(a: &SparseSym) -> SymbolicFactor {
        let ord = compute_ordering(a, OrderingKind::NestedDissection);
        analyze(a, &ord, &AnalyzeOptions::default())
    }

    #[test]
    fn stats_are_internally_consistent() {
        let a = laplacian_2d(12, 12);
        let sf = analyzed(&a);
        let st = analysis_stats(&sf);
        assert_eq!(st.n, 144);
        assert_eq!(st.n_supernodes, sf.n_supernodes());
        assert_eq!(st.level_widths.iter().sum::<usize>(), st.n_supernodes);
        assert!(st.sn_width.0 >= 1);
        assert!(st.sn_width.0 as f64 <= st.sn_width.1);
        assert!(st.sn_width.1 <= st.sn_width.2 as f64);
        assert!(st.critical_path_flops <= st.flops);
        assert!(st.critical_path_flops > 0);
        assert_eq!(st.tree_height + 1, st.level_widths.len());
    }

    #[test]
    fn diagonal_matrix_is_flat_forest() {
        let mut c = Coo::new(6, 6);
        for i in 0..6 {
            c.push(i, i, 2.0).unwrap();
        }
        let sf = analyzed(&c.to_csc().to_lower_sym());
        let st = analysis_stats(&sf);
        assert_eq!(st.tree_height, 0);
        assert_eq!(st.n_blocks, 0);
        assert_eq!(st.block_rows.0, 0);
    }

    #[test]
    fn tridiagonal_critical_path_is_total_flops() {
        // A path-shaped tree has no parallelism: critical path == total.
        let mut c = Coo::new(10, 10);
        for i in 0..10 {
            c.push(i, i, 4.0).unwrap();
            if i + 1 < 10 {
                c.push_sym(i + 1, i, -1.0).unwrap();
            }
        }
        let a = c.to_csc().to_lower_sym();
        let ord = sympack_ordering::Permutation::identity(10);
        let sf = analyze(
            &a,
            &ord,
            &AnalyzeOptions {
                amalgamation_ratio: 0.0,
                ..Default::default()
            },
        );
        let st = analysis_stats(&sf);
        assert_eq!(st.critical_path_flops, st.flops);
    }

    #[test]
    fn parallel_profile_narrows_toward_the_root() {
        // Nested dissection trees end in a single root separator.
        let a = random_spd(150, 5, 3);
        let sf = analyzed(&a);
        let st = analysis_stats(&sf);
        // The root level holds the tree roots only (few), while some deeper
        // level must expose real parallelism.
        let root_level = *st.level_widths.last().unwrap();
        let max_w = st.level_widths.iter().copied().max().unwrap();
        assert!(root_level >= 1);
        assert!(
            max_w > root_level,
            "no parallelism: profile {:?}",
            st.level_widths
        );
    }
}
