//! Factor structure: column counts and supernodal row patterns.

use crate::supernodes::SupernodePartition;
use sympack_sparse::SparseSym;

/// Per-column nonzero counts of `L` (diagonal included), by the row-subtree
/// counting argument on the elimination tree `parent`.
pub fn col_counts(a: &SparseSym, parent: &[usize]) -> Vec<usize> {
    let n = a.n();
    let mut counts = vec![1usize; n];
    // Row lists: columns k < r whose pattern contains row r.
    let mut row_lists: Vec<Vec<usize>> = vec![Vec::new(); n];
    for k in 0..n {
        for &r in &a.col_rows(k)[1..] {
            row_lists[r].push(k);
        }
    }
    let mut mark = vec![usize::MAX; n];
    for (i, row) in row_lists.iter().enumerate() {
        mark[i] = i;
        for &k in row {
            let mut v = k;
            while mark[v] != i {
                mark[v] = i;
                counts[v] += 1;
                v = parent[v];
                if v == usize::MAX {
                    break;
                }
            }
        }
    }
    counts
}

/// Below-diagonal row patterns of every supernode.
///
/// For each supernode `s`, the returned vector holds the sorted global row
/// indices of the nonzero rows of `L` strictly below the supernode's last
/// column. These are the rows of the paper's off-diagonal blocks `B(·,s)`.
///
/// The standard supernodal symbolic recursion: the pattern of `s` is the
/// union of (a) the original-matrix rows of its columns and (b) the patterns
/// of its children in the supernodal elimination tree, both restricted to
/// rows past the supernode.
pub fn sn_patterns(a: &SparseSym, partition: &SupernodePartition) -> Vec<Vec<usize>> {
    let n = a.n();
    let ns = partition.n_supernodes();
    let mut patterns: Vec<Vec<usize>> = Vec::with_capacity(ns);
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); ns];
    let mut mark = vec![usize::MAX; n];
    for s in 0..ns {
        let last = partition.last_col(s);
        let mut pat = Vec::new();
        for c in partition.cols(s) {
            for &r in &a.col_rows(c)[1..] {
                if r > last && mark[r] != s {
                    mark[r] = s;
                    pat.push(r);
                }
            }
        }
        for &t in &children[s] {
            for &r in &patterns[t] {
                if r > last && mark[r] != s {
                    mark[r] = s;
                    pat.push(r);
                }
            }
        }
        pat.sort_unstable();
        if let Some(&first) = pat.first() {
            let parent_sn = partition.supno(first);
            debug_assert!(parent_sn > s);
            children[parent_sn].push(s);
        }
        patterns.push(pat);
    }
    patterns
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::etree::{etree, postorder};
    use crate::supernodes::supernodes;
    use sympack_sparse::gen::random_spd;
    use sympack_sparse::SparseSym;

    /// Brute-force symbolic factorization: full column patterns of L.
    fn naive_patterns(a: &SparseSym) -> Vec<std::collections::BTreeSet<usize>> {
        let n = a.n();
        let mut pattern: Vec<std::collections::BTreeSet<usize>> = (0..n)
            .map(|c| a.col_rows(c).iter().copied().collect())
            .collect();
        for j in 0..n {
            let below: Vec<usize> = pattern[j].iter().copied().filter(|&r| r > j).collect();
            if let Some(&p) = below.first() {
                for &r in &below {
                    if r != p {
                        pattern[p].insert(r);
                    }
                }
            }
        }
        pattern
    }

    fn postordered(a: &SparseSym) -> SparseSym {
        let parent = etree(a);
        let post = postorder(&parent);
        a.permute(post.as_slice())
    }

    #[test]
    fn col_counts_match_naive() {
        let a = postordered(&random_spd(50, 4, 33));
        let parent = etree(&a);
        let counts = col_counts(&a, &parent);
        let naive = naive_patterns(&a);
        for j in 0..a.n() {
            let expect = naive[j].iter().filter(|&&r| r >= j).count();
            assert_eq!(counts[j], expect, "column {j}");
        }
    }

    #[test]
    fn sn_patterns_match_naive_per_column() {
        let a = postordered(&random_spd(60, 5, 7));
        let parent = etree(&a);
        let counts = col_counts(&a, &parent);
        let part = supernodes(&parent, &counts, 64);
        let pats = sn_patterns(&a, &part);
        let naive = naive_patterns(&a);
        for s in 0..part.n_supernodes() {
            let last = part.last_col(s);
            // The supernodal pattern must equal the below-supernode rows of
            // the *last* column of the supernode (fundamental supernodes all
            // share it).
            let expect: Vec<usize> = naive[last].iter().copied().filter(|&r| r > last).collect();
            assert_eq!(pats[s], expect, "supernode {s}");
            // And every member column's below-supernode pattern matches too.
            for c in part.cols(s) {
                let col_pat: Vec<usize> = naive[c].iter().copied().filter(|&r| r > last).collect();
                assert_eq!(col_pat, pats[s], "column {c} of supernode {s}");
            }
        }
    }
}
