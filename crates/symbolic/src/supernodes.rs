//! Supernode detection.
//!
//! A supernode (paper §2.2) is a run of consecutive columns of `L` sharing
//! the same below-diagonal structure; its diagonal block is dense. On a
//! postordered matrix, column `j+1` extends the supernode of column `j`
//! exactly when `parent[j] == j+1` and `count[j] == count[j+1] + 1` — the
//! classical fundamental-supernode test. Wide supernodes are split at
//! `max_width` so the 2D block-cyclic distribution has enough granularity.

/// Partition of the columns `0..n` into supernodes of consecutive columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupernodePartition {
    /// `sn_start[s]..sn_start[s+1]` are the columns of supernode `s`.
    sn_start: Vec<usize>,
    /// Column → supernode index.
    supno: Vec<usize>,
}

impl SupernodePartition {
    /// Build from supernode start columns (must begin at 0, be strictly
    /// increasing and end at `n`).
    pub fn from_starts(sn_start: Vec<usize>, n: usize) -> Self {
        assert!(!sn_start.is_empty() && sn_start[0] == 0);
        assert_eq!(*sn_start.last().unwrap(), n);
        for w in sn_start.windows(2) {
            assert!(w[0] < w[1], "empty supernode");
        }
        let mut supno = vec![0usize; n];
        for s in 0..sn_start.len() - 1 {
            for c in sn_start[s]..sn_start[s + 1] {
                supno[c] = s;
            }
        }
        SupernodePartition { sn_start, supno }
    }

    /// Number of supernodes.
    pub fn n_supernodes(&self) -> usize {
        self.sn_start.len() - 1
    }

    /// Matrix order.
    pub fn n(&self) -> usize {
        self.supno.len()
    }

    /// Supernode containing column `c`.
    pub fn supno(&self, c: usize) -> usize {
        self.supno[c]
    }

    /// First column of supernode `s`.
    pub fn first_col(&self, s: usize) -> usize {
        self.sn_start[s]
    }

    /// Last column of supernode `s` (inclusive).
    pub fn last_col(&self, s: usize) -> usize {
        self.sn_start[s + 1] - 1
    }

    /// Width (number of columns) of supernode `s`.
    pub fn width(&self, s: usize) -> usize {
        self.sn_start[s + 1] - self.sn_start[s]
    }

    /// Columns of supernode `s`.
    pub fn cols(&self, s: usize) -> std::ops::Range<usize> {
        self.sn_start[s]..self.sn_start[s + 1]
    }

    /// The start array (length `n_supernodes + 1`).
    pub fn starts(&self) -> &[usize] {
        &self.sn_start
    }
}

/// Detect fundamental supernodes from the elimination tree and column
/// counts of a postordered matrix, splitting at `max_width` columns.
pub fn supernodes(parent: &[usize], counts: &[usize], max_width: usize) -> SupernodePartition {
    let n = parent.len();
    assert_eq!(counts.len(), n);
    assert!(max_width >= 1);
    let mut starts = vec![0usize];
    let mut width = 1usize;
    for j in 0..n.saturating_sub(1) {
        let extends = parent[j] == j + 1 && counts[j] == counts[j + 1] + 1 && width < max_width;
        if !extends {
            starts.push(j + 1);
            width = 1;
        } else {
            width += 1;
        }
    }
    if n > 0 {
        starts.push(n);
    } else {
        starts = vec![0];
    }
    SupernodePartition::from_starts(starts, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::etree::{etree, postorder};
    use crate::structure::col_counts;
    use sympack_sparse::gen::laplacian_2d;
    use sympack_sparse::{Coo, SparseSym};

    fn dense_spd(n: usize) -> SparseSym {
        let mut c = Coo::new(n, n);
        for i in 0..n {
            c.push(i, i, n as f64 + 1.0).unwrap();
            for j in 0..i {
                c.push_sym(i, j, -0.5).unwrap();
            }
        }
        c.to_csc().to_lower_sym()
    }

    #[test]
    fn dense_matrix_is_one_supernode() {
        let a = dense_spd(7);
        let parent = etree(&a);
        let counts = col_counts(&a, &parent);
        let p = supernodes(&parent, &counts, 128);
        assert_eq!(p.n_supernodes(), 1);
        assert_eq!(p.width(0), 7);
    }

    #[test]
    fn max_width_splits_dense_supernode() {
        let a = dense_spd(10);
        let parent = etree(&a);
        let counts = col_counts(&a, &parent);
        let p = supernodes(&parent, &counts, 4);
        assert_eq!(p.n_supernodes(), 3); // widths 4, 4, 2
        assert_eq!(p.width(0), 4);
        assert_eq!(p.width(2), 2);
    }

    #[test]
    fn diagonal_matrix_is_all_singletons() {
        let mut c = Coo::new(5, 5);
        for i in 0..5 {
            c.push(i, i, 1.0).unwrap();
        }
        let a = c.to_csc().to_lower_sym();
        let parent = etree(&a);
        let counts = col_counts(&a, &parent);
        let p = supernodes(&parent, &counts, 128);
        assert_eq!(p.n_supernodes(), 5);
    }

    #[test]
    fn supno_is_consistent_with_ranges() {
        let a = laplacian_2d(6, 6);
        let post = postorder(&etree(&a));
        let ap = a.permute(post.as_slice());
        let parent = etree(&ap);
        let counts = col_counts(&ap, &parent);
        let p = supernodes(&parent, &counts, 16);
        for s in 0..p.n_supernodes() {
            for c in p.cols(s) {
                assert_eq!(p.supno(c), s);
            }
            assert_eq!(p.last_col(s) + 1 - p.first_col(s), p.width(s));
        }
    }

    #[test]
    fn supernode_columns_share_structure() {
        // Verify the defining property on a real example via naive symbolic.
        let a = laplacian_2d(5, 5);
        let post = postorder(&etree(&a));
        let ap = a.permute(post.as_slice());
        let parent = etree(&ap);
        let counts = col_counts(&ap, &parent);
        let p = supernodes(&parent, &counts, 128);
        // Naive fill patterns.
        let n = ap.n();
        let mut pattern: Vec<std::collections::BTreeSet<usize>> = (0..n)
            .map(|c| ap.col_rows(c).iter().copied().collect())
            .collect();
        for j in 0..n {
            let below: Vec<usize> = pattern[j].iter().copied().filter(|&r| r > j).collect();
            if let Some(&pp) = below.first() {
                for &r in &below {
                    if r != pp {
                        pattern[pp].insert(r);
                    }
                }
            }
        }
        for s in 0..p.n_supernodes() {
            let last = p.last_col(s);
            let base: Vec<usize> = pattern[last]
                .iter()
                .copied()
                .filter(|&r| r > last)
                .collect();
            for c in p.cols(s) {
                let below: Vec<usize> = pattern[c].iter().copied().filter(|&r| r > last).collect();
                assert_eq!(below, base, "column {c} differs in supernode {s}");
                // Dense inside the supernode: all rows c..=last present.
                for r in c..=last {
                    assert!(pattern[c].contains(&r), "missing ({r},{c})");
                }
            }
        }
    }
}
