//! Relaxed supernode amalgamation.
//!
//! Fundamental supernodes on very sparse matrices (the paper's `thermal2`)
//! can be tiny, which makes blocks too small to amortize BLAS-3 and task
//! overheads. Relaxed amalgamation merges a supernode into the next one
//! when the merged supernode would waste at most a bounded fraction of
//! explicit zeros — trading a little extra storage/flops for much larger
//! dense blocks. Only *adjacent* supernodes where the first's parent (in
//! the supernodal elimination tree) is the second can merge, so supernode
//! columns stay consecutive and the factorization stays correct (the merged
//! pattern is the union, a superset of every member column's true pattern).

use crate::supernodes::SupernodePartition;

/// Greedily merge chains of supernodes left-to-right.
///
/// Returns the new partition and the matching merged patterns. `ratio` is
/// the maximum tolerated fraction of explicit-zero entries in a merged
/// supernode; `max_width` caps merged supernode width.
pub fn amalgamate(
    partition: &SupernodePartition,
    patterns: &[Vec<usize>],
    ratio: f64,
    max_width: usize,
) -> (SupernodePartition, Vec<Vec<usize>>) {
    let ns = partition.n_supernodes();
    let n = partition.n();
    let mut new_starts: Vec<usize> = vec![0];
    let mut new_patterns: Vec<Vec<usize>> = Vec::new();
    let mut s = 0;
    while s < ns {
        // Current group state: columns [group_first, group_last_col], pattern.
        let mut width = partition.width(s);
        let mut pat: Vec<usize> = patterns[s].clone();
        let mut nnz_members = width * (width + 1) / 2 + width * patterns[s].len();
        let mut t = s + 1;
        while t < ns {
            // Structural requirement: the group's parent supernode must be
            // exactly `t` (its first pattern row in t's columns) so merged
            // columns are consecutive AND the merge is useful.
            match pat.first() {
                Some(&first) if partition.supno(first) == t => {}
                _ => break,
            }
            let wt = partition.width(t);
            if width + wt > max_width {
                break;
            }
            // Merged pattern: (pat \ cols(t)) ∪ patterns[t].
            let t_last = partition.last_col(t);
            let mut merged: Vec<usize> = Vec::with_capacity(pat.len() + patterns[t].len());
            let tail: Vec<usize> = pat.iter().copied().filter(|&r| r > t_last).collect();
            // Union of two sorted lists.
            let (mut i, mut j) = (0, 0);
            while i < tail.len() || j < patterns[t].len() {
                let a = tail.get(i).copied().unwrap_or(usize::MAX);
                let b = patterns[t].get(j).copied().unwrap_or(usize::MAX);
                match a.cmp(&b) {
                    std::cmp::Ordering::Less => {
                        merged.push(a);
                        i += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        merged.push(b);
                        j += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        merged.push(a);
                        i += 1;
                        j += 1;
                    }
                }
            }
            let new_width = width + wt;
            let new_nnz = new_width * (new_width + 1) / 2 + new_width * merged.len();
            let old_nnz = nnz_members + wt * (wt + 1) / 2 + wt * patterns[t].len();
            let zeros = new_nnz.saturating_sub(old_nnz);
            if (zeros as f64) > ratio * (new_nnz as f64) {
                break;
            }
            // Accept the merge.
            width = new_width;
            pat = merged;
            nnz_members = old_nnz; // real entries carried forward
            t += 1;
        }
        new_starts.push(partition.first_col(s) + width);
        new_patterns.push(pat);
        s = t;
    }
    debug_assert_eq!(*new_starts.last().unwrap(), n);
    (SupernodePartition::from_starts(new_starts, n), new_patterns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::etree::{etree, postorder};
    use crate::structure::{col_counts, sn_patterns};
    use crate::supernodes::supernodes;
    use sympack_sparse::{Coo, SparseSym};

    fn tridiag(n: usize) -> SparseSym {
        let mut c = Coo::new(n, n);
        for i in 0..n {
            c.push(i, i, 4.0).unwrap();
            if i + 1 < n {
                c.push_sym(i + 1, i, -1.0).unwrap();
            }
        }
        c.to_csc().to_lower_sym()
    }

    #[test]
    fn tridiagonal_chain_merges_fully_with_generous_ratio() {
        // A tridiagonal matrix has all-singleton fundamental supernodes in a
        // parent chain; generous relaxation merges them into wide supernodes.
        let a = tridiag(12);
        let post = postorder(&etree(&a));
        let ap = a.permute(post.as_slice());
        let parent = etree(&ap);
        let counts = col_counts(&ap, &parent);
        let part = supernodes(&parent, &counts, 128);
        // Columns 0..10 are singletons; the final two columns share their
        // (empty) below-diagonal structure and fuse into one fundamental
        // supernode, leaving 11.
        assert_eq!(part.n_supernodes(), 11);
        let pats = sn_patterns(&ap, &part);
        let (merged, mpats) = amalgamate(&part, &pats, 0.9, 6);
        assert!(merged.n_supernodes() <= 3, "got {}", merged.n_supernodes());
        // Patterns must still link each supernode to a later one (or be empty).
        for s in 0..merged.n_supernodes() {
            if let Some(&first) = mpats[s].first() {
                assert!(merged.supno(first) > s);
            }
        }
    }

    #[test]
    fn zero_ratio_changes_nothing_unless_free() {
        let a = tridiag(8);
        let post = postorder(&etree(&a));
        let ap = a.permute(post.as_slice());
        let parent = etree(&ap);
        let counts = col_counts(&ap, &parent);
        let part = supernodes(&parent, &counts, 128);
        let pats = sn_patterns(&ap, &part);
        let (merged, _) = amalgamate(&part, &pats, 0.0, 128);
        // Tridiagonal merges are never free (each merge wastes one zero per
        // extra column), so nothing merges at ratio 0.
        assert_eq!(merged.n_supernodes(), part.n_supernodes());
    }

    #[test]
    fn max_width_caps_merging() {
        let a = tridiag(20);
        let post = postorder(&etree(&a));
        let ap = a.permute(post.as_slice());
        let parent = etree(&ap);
        let counts = col_counts(&ap, &parent);
        let part = supernodes(&parent, &counts, 128);
        let pats = sn_patterns(&ap, &part);
        let (merged, _) = amalgamate(&part, &pats, 0.99, 4);
        for s in 0..merged.n_supernodes() {
            assert!(merged.width(s) <= 4);
        }
    }

    #[test]
    fn merged_pattern_is_superset_of_member_tails() {
        let a = sympack_sparse::gen::random_spd(40, 4, 5);
        let post = postorder(&etree(&a));
        let ap = a.permute(post.as_slice());
        let parent = etree(&ap);
        let counts = col_counts(&ap, &parent);
        let part = supernodes(&parent, &counts, 128);
        let pats = sn_patterns(&ap, &part);
        let (merged, mpats) = amalgamate(&part, &pats, 0.4, 32);
        // For every original supernode, its pattern rows past the merged
        // supernode's last column must appear in the merged pattern.
        for s0 in 0..part.n_supernodes() {
            let first_col = part.first_col(s0);
            let ms = merged.supno(first_col);
            let mlast = merged.last_col(ms);
            let mset: std::collections::HashSet<usize> = mpats[ms].iter().copied().collect();
            for &r in &pats[s0] {
                if r > mlast {
                    assert!(mset.contains(&r), "row {r} of sn {s0} lost in merge");
                }
            }
        }
    }
}
