//! Elimination tree and postordering.
//!
//! The elimination tree (paper §2.2) encodes the column dependencies of the
//! factorization: `parent[j]` is the row of the first off-diagonal nonzero
//! of column `j` of `L`. Supernode detection requires the matrix to be
//! postordered — children numbered before parents, subtrees contiguous — so
//! [`postorder`] produces the reordering that the analysis composes with the
//! fill-reducing permutation.

use sympack_ordering::Permutation;
use sympack_sparse::SparseSym;

/// Elimination tree by Liu's algorithm with path compression.
/// `parent[v] == usize::MAX` marks a root.
pub fn etree(a: &SparseSym) -> Vec<usize> {
    let n = a.n();
    let mut parent = vec![usize::MAX; n];
    let mut ancestor = vec![usize::MAX; n];
    // Liu's algorithm must see rows in increasing order. Column k of the
    // lower triangle stores rows r > k, so first bucket the entries by row.
    let mut row_lists: Vec<Vec<usize>> = vec![Vec::new(); n];
    for k in 0..n {
        for &r in &a.col_rows(k)[1..] {
            row_lists[r].push(k);
        }
    }
    for (i, row) in row_lists.iter().enumerate() {
        for &k in row {
            let mut v = k;
            while ancestor[v] != usize::MAX && ancestor[v] != i {
                let next = ancestor[v];
                ancestor[v] = i;
                v = next;
            }
            if ancestor[v] == usize::MAX {
                ancestor[v] = i;
                parent[v] = i;
            }
        }
    }
    parent
}

/// Children lists of a parent array (children sorted ascending).
pub fn children_lists(parent: &[usize]) -> Vec<Vec<usize>> {
    let n = parent.len();
    let mut children = vec![Vec::new(); n];
    for v in 0..n {
        let p = parent[v];
        if p != usize::MAX {
            children[p].push(v);
        }
    }
    children
}

/// Depth-first postorder of the forest. Returns a [`Permutation`] with
/// `perm[new] = old`, i.e. `perm` lists vertices in postorder.
pub fn postorder(parent: &[usize]) -> Permutation {
    let n = parent.len();
    let children = children_lists(parent);
    let mut order = Vec::with_capacity(n);
    let mut stack: Vec<(usize, usize)> = Vec::new(); // (vertex, next child index)
    for root in 0..n {
        if parent[root] != usize::MAX {
            continue;
        }
        stack.push((root, 0));
        while let Some(&mut (v, ref mut ci)) = stack.last_mut() {
            if *ci < children[v].len() {
                let c = children[v][*ci];
                *ci += 1;
                stack.push((c, 0));
            } else {
                order.push(v);
                stack.pop();
            }
        }
    }
    debug_assert_eq!(order.len(), n);
    Permutation::from_vec(order)
}

/// Depth of each vertex (roots have depth 0).
pub fn depths(parent: &[usize]) -> Vec<usize> {
    let n = parent.len();
    let mut depth = vec![usize::MAX; n];
    for v in 0..n {
        if depth[v] != usize::MAX {
            continue;
        }
        // Walk up to a known depth or a root, then unwind.
        let mut path = vec![v];
        let mut u = v;
        while parent[u] != usize::MAX && depth[parent[u]] == usize::MAX {
            u = parent[u];
            path.push(u);
        }
        let base = if parent[u] == usize::MAX {
            0
        } else {
            depth[parent[u]] + 1
        };
        for (d, &w) in path.iter().rev().enumerate() {
            depth[w] = base + d;
        }
    }
    // Roots got depth 0 via the unwind (path ends at root).
    depth
}

#[cfg(test)]
mod tests {
    use super::*;
    use sympack_sparse::{Coo, SparseSym};

    fn tridiag(n: usize) -> SparseSym {
        let mut c = Coo::new(n, n);
        for i in 0..n {
            c.push(i, i, 4.0).unwrap();
            if i + 1 < n {
                c.push_sym(i + 1, i, -1.0).unwrap();
            }
        }
        c.to_csc().to_lower_sym()
    }

    #[test]
    fn etree_of_tridiagonal_is_path() {
        let p = etree(&tridiag(5));
        assert_eq!(p, vec![1, 2, 3, 4, usize::MAX]);
    }

    #[test]
    fn etree_matches_ordering_crate() {
        let a = sympack_sparse::gen::random_spd(50, 5, 21);
        assert_eq!(etree(&a), sympack_ordering::metrics::etree(&a));
    }

    #[test]
    fn postorder_puts_children_before_parents() {
        let a = sympack_sparse::gen::laplacian_2d(6, 6);
        let parent = etree(&a);
        let post = postorder(&parent);
        let inv = post.inverse();
        for v in 0..parent.len() {
            if parent[v] != usize::MAX {
                assert!(
                    inv.old_of(v) < inv.old_of(parent[v]),
                    "child {v} not before parent {}",
                    parent[v]
                );
            }
        }
    }

    #[test]
    fn postorder_subtrees_are_contiguous() {
        let a = sympack_sparse::gen::random_spd(40, 4, 9);
        let parent = etree(&a);
        let post = postorder(&parent);
        let inv = post.inverse();
        // Size of each subtree.
        let mut size = vec![1usize; parent.len()];
        for &v in post.as_slice() {
            if parent[v] != usize::MAX {
                size[parent[v]] += size[v];
            }
        }
        // In a postorder, vertex v occupies positions
        // [pos(v) - size(v) + 1, pos(v)] for its whole subtree.
        for v in 0..parent.len() {
            let pos = inv.old_of(v);
            assert!(pos + 1 >= size[v]);
        }
    }

    #[test]
    fn depths_of_path() {
        let parent = vec![1, 2, 3, usize::MAX];
        assert_eq!(depths(&parent), vec![3, 2, 1, 0]);
    }

    #[test]
    fn children_lists_inverse_of_parent() {
        let parent = vec![2, 2, 4, 4, usize::MAX];
        let ch = children_lists(&parent);
        assert_eq!(ch[2], vec![0, 1]);
        assert_eq!(ch[4], vec![2, 3]);
        assert!(ch[0].is_empty());
    }
}
