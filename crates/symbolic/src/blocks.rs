//! Dense-block partitioning — the paper's Algorithm 2.
//!
//! Each supernode `j`'s below-diagonal rows are grouped by the supernode
//! that owns them: the run of pattern rows falling inside supernode `i`'s
//! column range forms the dense block `B(i,j)`. Together with the diagonal
//! block `B(j,j)` these are the units the solver's tasks operate on and the
//! objects mapped 2D-block-cyclically onto processes.
//!
//! Because the pattern rows are sorted and supernodes are ranges of
//! consecutive indices, each block is a contiguous slice of the pattern
//! array — a [`BlockInfo`] only stores the target supernode and that slice's
//! offset/length.

use crate::supernodes::SupernodePartition;

/// Identity of a block: `B(target, owner)` in the paper's `B(i,j)` notation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId {
    /// Supernode whose diagonal owns the block's rows (the paper's `i`).
    pub target: usize,
    /// Supernode the block lives in, i.e. whose columns it spans (`j`).
    pub owner: usize,
}

/// One off-diagonal dense block of a supernode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockInfo {
    /// Supernode owning the block's rows (the paper's `i` in `B(i,j)`).
    pub target: usize,
    /// Offset of the block's first row within the owner's pattern array.
    pub row_offset: usize,
    /// Number of pattern rows in the block.
    pub n_rows: usize,
}

/// The full block layout of the factor: per supernode, its off-diagonal
/// blocks in ascending target order (the diagonal block is implicit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockLayout {
    per_sn: Vec<Vec<BlockInfo>>,
}

impl BlockLayout {
    /// Off-diagonal blocks of supernode `j`, ascending by target supernode.
    pub fn blocks_of(&self, j: usize) -> &[BlockInfo] {
        &self.per_sn[j]
    }

    /// Find the block of supernode `j` targeting supernode `i`, if any.
    pub fn find(&self, i: usize, j: usize) -> Option<&BlockInfo> {
        let v = &self.per_sn[j];
        v.binary_search_by_key(&i, |b| b.target).ok().map(|k| &v[k])
    }

    /// Total number of off-diagonal blocks.
    pub fn n_off_diagonal(&self) -> usize {
        self.per_sn.iter().map(|v| v.len()).sum()
    }

    /// Number of supernodes covered.
    pub fn n_supernodes(&self) -> usize {
        self.per_sn.len()
    }
}

/// Group every supernode's pattern rows into blocks (Algorithm 2).
pub fn build_layout(partition: &SupernodePartition, patterns: &[Vec<usize>]) -> BlockLayout {
    let ns = partition.n_supernodes();
    assert_eq!(patterns.len(), ns);
    let mut per_sn = Vec::with_capacity(ns);
    for pat in patterns {
        let mut blocks = Vec::new();
        let mut k = 0;
        while k < pat.len() {
            let target = partition.supno(pat[k]);
            let start = k;
            let last_col = partition.last_col(target);
            while k < pat.len() && pat[k] <= last_col {
                k += 1;
            }
            blocks.push(BlockInfo {
                target,
                row_offset: start,
                n_rows: k - start,
            });
        }
        per_sn.push(blocks);
    }
    BlockLayout { per_sn }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn partition(starts: Vec<usize>, n: usize) -> SupernodePartition {
        SupernodePartition::from_starts(starts, n)
    }

    #[test]
    fn groups_pattern_rows_by_supernode() {
        // Supernodes: [0,1], [2,3], [4,5,6]. Pattern of sn 0: rows 2,3,5.
        let p = partition(vec![0, 2, 4, 7], 7);
        let pats = vec![vec![2, 3, 5], vec![4, 6], vec![]];
        let layout = build_layout(&p, &pats);
        let b0 = layout.blocks_of(0);
        assert_eq!(b0.len(), 2);
        assert_eq!(
            b0[0],
            BlockInfo {
                target: 1,
                row_offset: 0,
                n_rows: 2
            }
        );
        assert_eq!(
            b0[1],
            BlockInfo {
                target: 2,
                row_offset: 2,
                n_rows: 1
            }
        );
        let b1 = layout.blocks_of(1);
        assert_eq!(b1.len(), 1);
        assert_eq!(
            b1[0],
            BlockInfo {
                target: 2,
                row_offset: 0,
                n_rows: 2
            }
        );
        assert!(layout.blocks_of(2).is_empty());
        assert_eq!(layout.n_off_diagonal(), 3);
    }

    #[test]
    fn find_locates_blocks() {
        let p = partition(vec![0, 2, 4, 7], 7);
        let pats = vec![vec![2, 3, 5], vec![4, 6], vec![]];
        let layout = build_layout(&p, &pats);
        assert!(layout.find(1, 0).is_some());
        assert!(layout.find(2, 0).is_some());
        assert!(layout.find(2, 1).is_some());
        assert!(layout.find(1, 1).is_none());
    }

    #[test]
    fn non_contiguous_rows_within_target_stay_one_block() {
        // Pattern rows 4 and 6 inside supernode [4..7): one block, 2 rows,
        // row 5 absent — blocks are index lists, not row intervals.
        let p = partition(vec![0, 4, 7], 7);
        let pats = vec![vec![4, 6], vec![]];
        let layout = build_layout(&p, &pats);
        assert_eq!(
            layout.blocks_of(0),
            &[BlockInfo {
                target: 1,
                row_offset: 0,
                n_rows: 2
            }]
        );
    }
}
