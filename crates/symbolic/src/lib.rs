//! Symbolic factorization for symPACK-rs.
//!
//! Everything the paper's §3.1 does before any floating-point work:
//!
//! 1. [`etree::etree`] — elimination tree of the permuted matrix, plus
//!    [`etree::postorder`] so that supernodes occupy consecutive columns,
//! 2. [`structure::col_counts`] — per-column factor nonzero counts,
//! 3. [`supernodes::supernodes`] — fundamental supernode detection with
//!    optional relaxed amalgamation,
//! 4. [`structure::sn_patterns`] — the supernodal row patterns of `L`,
//! 5. [`blocks`] — the paper's Algorithm 2: partition each supernode's rows
//!    into dense blocks `B(i,j)` indexed by (target supernode `i`, owning
//!    supernode `j`), the unit on which the solver's tasks operate,
//! 6. [`analyze`] — the one-call driver producing a [`SymbolicFactor`].

pub mod amalgamate;
pub mod blocks;
pub mod etree;
pub mod stats;
pub mod structure;
pub mod supernodes;

pub use blocks::{BlockId, BlockInfo, BlockLayout};
pub use stats::{analysis_stats, AnalysisStats};
pub use structure::col_counts;
pub use supernodes::{supernodes, SupernodePartition};

use sympack_ordering::Permutation;
use sympack_sparse::SparseSym;

/// Options controlling the analysis phase.
#[derive(Debug, Clone)]
pub struct AnalyzeOptions {
    /// Upper bound on supernode width (columns); wide supernodes are split
    /// so the 2D block-cyclic distribution has enough blocks to balance.
    pub max_sn_width: usize,
    /// Relaxed amalgamation: merge a child supernode into its parent when
    /// the merged supernode wastes at most this fraction of explicit zeros.
    /// `0.0` disables amalgamation (fundamental supernodes only).
    pub amalgamation_ratio: f64,
}

impl Default for AnalyzeOptions {
    fn default() -> Self {
        AnalyzeOptions {
            max_sn_width: 128,
            amalgamation_ratio: 0.1,
        }
    }
}

/// The complete output of the analysis phase, consumed by the numeric
/// factorization of `sympack` (and the baseline solver).
#[derive(Debug, Clone)]
pub struct SymbolicFactor {
    /// The composite permutation actually applied to the matrix
    /// (fill-reducing ordering composed with the etree postorder);
    /// `perm[new] = old` relative to the *original* matrix.
    pub perm: Permutation,
    /// Supernode partition of the permuted matrix's columns.
    pub partition: SupernodePartition,
    /// Supernodal elimination tree: `sn_parent[s]` or `usize::MAX` for roots.
    pub sn_parent: Vec<usize>,
    /// Below-diagonal row pattern of each supernode (global rows, sorted).
    pub patterns: Vec<Vec<usize>>,
    /// Dense-block layout (Algorithm 2).
    pub layout: BlockLayout,
    /// Total nonzeros of `L` including the diagonal.
    pub l_nnz: usize,
    /// Factorization flops (multiply-adds) implied by the structure.
    pub flops: u64,
}

impl SymbolicFactor {
    /// Number of supernodes.
    pub fn n_supernodes(&self) -> usize {
        self.partition.n_supernodes()
    }

    /// Matrix order.
    pub fn n(&self) -> usize {
        self.partition.n()
    }
}

/// Run the full analysis: permute by `ordering`, postorder the elimination
/// tree, detect (and optionally amalgamate) supernodes, compute row patterns
/// and the Algorithm-2 block layout.
///
/// Returns the symbolic factor; the composite permutation it contains must be
/// used to permute the numeric values before factorization.
pub fn analyze(a: &SparseSym, ordering: &Permutation, opts: &AnalyzeOptions) -> SymbolicFactor {
    // 1. Apply the fill-reducing ordering.
    let a1 = a.permute(ordering.as_slice());
    // 2. Postorder the elimination tree and compose the permutations.
    let parent = etree::etree(&a1);
    let post = etree::postorder(&parent);
    let perm = post.compose(ordering);
    let ap = a1.permute(post.as_slice());
    // 3. Column counts and supernodes on the postordered matrix.
    let parent2 = etree::etree(&ap);
    let counts = structure::col_counts(&ap, &parent2);
    let mut partition = supernodes::supernodes(&parent2, &counts, opts.max_sn_width);
    // 4. Supernodal patterns (needed before amalgamation decides fill).
    let mut patterns = structure::sn_patterns(&ap, &partition);
    if opts.amalgamation_ratio > 0.0 {
        let (new_partition, new_patterns) = amalgamate::amalgamate(
            &partition,
            &patterns,
            opts.amalgamation_ratio,
            opts.max_sn_width,
        );
        partition = new_partition;
        patterns = new_patterns;
    }
    // 5. Supernodal elimination tree: parent supernode = supernode of the
    // first below-diagonal pattern row.
    let ns = partition.n_supernodes();
    let mut sn_parent = vec![usize::MAX; ns];
    for s in 0..ns {
        if let Some(&first) = patterns[s].first() {
            sn_parent[s] = partition.supno(first);
        }
    }
    // 6. Blocks (Algorithm 2) + cost totals.
    let layout = blocks::build_layout(&partition, &patterns);
    let mut l_nnz = 0usize;
    let mut flops = 0u64;
    for s in 0..ns {
        let w = partition.width(s);
        let h = patterns[s].len();
        l_nnz += w * (w + 1) / 2 + h * w;
        let cc = (h + w) as u64;
        // sum over the w columns: each column j (local) has (w - j + h)
        // entries below+including diagonal; flops ~ sum of squares.
        for j in 0..w as u64 {
            let len = cc - j;
            flops += len * len;
        }
    }
    SymbolicFactor {
        perm,
        partition,
        sn_parent,
        patterns,
        layout,
        l_nnz,
        flops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sympack_ordering::{compute_ordering, OrderingKind};
    use sympack_sparse::gen::{laplacian_2d, random_spd};

    #[test]
    fn analyze_produces_consistent_structure() {
        let a = laplacian_2d(8, 8);
        let ord = compute_ordering(&a, OrderingKind::NestedDissection);
        let sf = analyze(&a, &ord, &AnalyzeOptions::default());
        sf.perm.validate().unwrap();
        assert_eq!(sf.n(), 64);
        // Every column belongs to exactly one supernode.
        let mut seen = 0;
        for s in 0..sf.n_supernodes() {
            seen += sf.partition.width(s);
        }
        assert_eq!(seen, 64);
        // Patterns contain only rows strictly below the supernode.
        for s in 0..sf.n_supernodes() {
            let last_col = sf.partition.last_col(s);
            for &r in &sf.patterns[s] {
                assert!(r > last_col);
            }
        }
        assert!(sf.l_nnz >= a.nnz());
        assert!(sf.flops > 0);
    }

    #[test]
    fn supernodal_parents_follow_patterns() {
        let a = random_spd(60, 5, 11);
        let ord = compute_ordering(&a, OrderingKind::MinDegree);
        let sf = analyze(&a, &ord, &AnalyzeOptions::default());
        for s in 0..sf.n_supernodes() {
            match sf.patterns[s].first() {
                Some(&first) => assert_eq!(sf.sn_parent[s], sf.partition.supno(first)),
                None => assert_eq!(sf.sn_parent[s], usize::MAX),
            }
        }
    }

    #[test]
    fn amalgamation_never_increases_supernode_count() {
        let a = laplacian_2d(10, 10);
        let ord = compute_ordering(&a, OrderingKind::NestedDissection);
        let none = analyze(
            &a,
            &ord,
            &AnalyzeOptions {
                amalgamation_ratio: 0.0,
                ..Default::default()
            },
        );
        let some = analyze(
            &a,
            &ord,
            &AnalyzeOptions {
                amalgamation_ratio: 0.3,
                ..Default::default()
            },
        );
        assert!(some.n_supernodes() <= none.n_supernodes());
        // Amalgamation may add explicit zeros but never loses structure.
        assert!(some.l_nnz >= none.l_nnz);
    }
}
