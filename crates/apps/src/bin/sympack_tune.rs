//! `sympack-tune` — kernel calibration front-end.
//!
//! ```text
//! sympack-tune calibrate [--quick] [--out profile.json]   sweep, print, save
//! sympack-tune show <profile.json>                        print a saved profile
//! sympack-tune diff <old.json> <new.json> [--rate-pct X]  exit 1 on regression
//! sympack-tune check <BENCH_tuning.json> [--min-speedup X]
//! ```
//!
//! `calibrate` runs the `sympack_tune::calibrate` sweep (full budget, or
//! the CI smoke budget with `--quick`), prints the chosen configuration and
//! measured machine constants as a table, and writes the profile JSON
//! (format documented in the `sympack-tune` crate). Load it back into a
//! solver with `KernelProfile::load` → `SolverOptions::kernel_config` /
//! `CostModel`.
//!
//! `diff` compares two profiles of the *same machine* and exits nonzero
//! when any measured per-op rate or the memory bandwidth regressed by more
//! than `--rate-pct` percent (default 10) — the guard against committing a
//! profile measured on a loaded host.
//!
//! `check` gates the `kernel_roofline --compare` report: exit nonzero when
//! the candidate config is slower than the default by more than the margin
//! (`--min-speedup`, default 0.9) on any shape.

use std::path::Path;
use std::process::ExitCode;
use sympack_trace::json::{parse, JsonValue};
use sympack_tune::{calibrate, KernelProfile, TuneBudget};

const USAGE: &str = "usage:
  sympack-tune calibrate [--quick] [--out <profile.json>]
  sympack-tune show <profile.json>
  sympack-tune diff <old.json> <new.json> [--rate-pct X]
  sympack-tune check <BENCH_tuning.json> [--min-speedup X]";

/// Parse `--flag value` from `argv`, removing both tokens when present.
fn take_flag(argv: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    match argv.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => {
            if i + 1 >= argv.len() {
                return Err(format!("{flag} needs a value"));
            }
            let v = argv.remove(i + 1);
            argv.remove(i);
            Ok(Some(v))
        }
    }
}

fn print_profile(p: &KernelProfile) {
    println!("machine:");
    println!("  isa             {}", p.isa);
    println!("  worker budget   {}", p.threads);
    println!("  mem bandwidth   {:.2} GB/s", p.mem_bandwidth / 1e9);
    println!("rates (sustained, sequential):");
    for (name, rate) in [
        ("gemm", p.gemm_rate),
        ("syrk", p.syrk_rate),
        ("trsm", p.trsm_rate),
        ("potrf", p.potrf_rate),
    ] {
        println!("  {name:6}          {:.2} GF/s", rate / 1e9);
    }
    println!("config:");
    let default = sympack::KernelConfig::default();
    for ((name, v), (_, d)) in p.config.fields().iter().zip(default.fields()) {
        if *v == d {
            println!("  {name:20} {v}");
        } else {
            println!("  {name:20} {v}   (default {d})");
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        return Err(USAGE.into());
    }
    let cmd = argv.remove(0);
    match cmd.as_str() {
        "calibrate" => {
            let quick = if let Some(i) = argv.iter().position(|a| a == "--quick") {
                argv.remove(i);
                true
            } else {
                false
            };
            let out = take_flag(&mut argv, "--out")?.unwrap_or_else(|| "profile.json".into());
            if !argv.is_empty() {
                return Err(USAGE.into());
            }
            let budget = if quick {
                TuneBudget::quick()
            } else {
                TuneBudget::full()
            };
            let p = calibrate(&budget);
            print_profile(&p);
            p.save(Path::new(&out)).map_err(|e| e.to_string())?;
            println!("\nwrote {out}");
            Ok(ExitCode::SUCCESS)
        }
        "show" => {
            let [path] = argv.as_slice() else {
                return Err(USAGE.into());
            };
            let p = KernelProfile::load(Path::new(path)).map_err(|e| e.to_string())?;
            print_profile(&p);
            Ok(ExitCode::SUCCESS)
        }
        "diff" => {
            let pct: f64 = match take_flag(&mut argv, "--rate-pct")? {
                Some(v) => v.parse().map_err(|_| "bad --rate-pct".to_string())?,
                None => 10.0,
            };
            let [old, new] = argv.as_slice() else {
                return Err(USAGE.into());
            };
            let po = KernelProfile::load(Path::new(old)).map_err(|e| e.to_string())?;
            let pn = KernelProfile::load(Path::new(new)).map_err(|e| e.to_string())?;
            let mut regressed = false;
            for (name, o, n) in [
                ("gemm", po.gemm_rate, pn.gemm_rate),
                ("syrk", po.syrk_rate, pn.syrk_rate),
                ("trsm", po.trsm_rate, pn.trsm_rate),
                ("potrf", po.potrf_rate, pn.potrf_rate),
                ("mem_bandwidth", po.mem_bandwidth, pn.mem_bandwidth),
            ] {
                let delta = 100.0 * (n - o) / o;
                let flag = if delta < -pct {
                    regressed = true;
                    "  <-- regression"
                } else {
                    ""
                };
                println!("{name:14} {:.3e} -> {:.3e}  ({delta:+.1}%){flag}", o, n);
            }
            Ok(if regressed {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            })
        }
        "check" => {
            let min: f64 = match take_flag(&mut argv, "--min-speedup")? {
                Some(v) => v.parse().map_err(|_| "bad --min-speedup".to_string())?,
                None => 0.9,
            };
            let [path] = argv.as_slice() else {
                return Err(USAGE.into());
            };
            let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
            let doc = parse(&text).map_err(|e| format!("parse {path}: {e}"))?;
            let schema = doc.get("schema").and_then(JsonValue::as_str).unwrap_or("");
            if schema != "sympack-tuning-compare-v1" {
                return Err(format!(
                    "{path}: not a tuning comparison (schema `{schema}`)"
                ));
            }
            let shapes = doc
                .get("shapes")
                .and_then(JsonValue::as_array)
                .ok_or_else(|| format!("{path}: missing `shapes`"))?;
            let mut failed = false;
            for s in shapes {
                let num = |k: &str| s.get(k).and_then(JsonValue::as_f64).unwrap_or(f64::NAN);
                let (m, n, k) = (num("m") as usize, num("n") as usize, num("k") as usize);
                let speedup = num("speedup");
                let flag = if speedup.is_nan() || speedup < min {
                    failed = true;
                    "  <-- below threshold"
                } else {
                    ""
                };
                println!("m={m:5} n={n:5} k={k:5}  speedup {speedup:4.2} (min {min:4.2}){flag}");
            }
            Ok(if failed {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            })
        }
        _ => Err(USAGE.into()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}
