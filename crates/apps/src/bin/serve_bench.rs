//! `serve_bench` — exercise the solver-session serving layer on a fixed,
//! reproducible request mix and report its metrics.
//!
//! ```text
//! serve_bench [--nx N] [--ny N] [--nodes N] [--ppn N] [--jobs N]
//!             [--max-batch N] [--max-pending N] [--refactor-every N]
//!             [--seed S] [--metrics-json <path>]
//! ```
//!
//! Builds a 2D Laplacian, creates one [`Session`], fronts it with a
//! [`Server`], and replays a bursty arrival pattern: jobs arrive in bursts
//! (so the server has something to coalesce) separated by idle gaps, with a
//! numeric re-factorization every `--refactor-every` jobs. Every completed
//! job's residual is checked against the right-hand side it was submitted
//! with.
//!
//! Exit status is non-zero when the run is unhealthy: any residual above
//! `1e-8`, or zero coalesced jobs (batching never combined two requests —
//! the serving layer's reason to exist). `--metrics-json` writes the
//! session's [`ServiceMetrics`] JSON for CI artifact upload.

use std::process::ExitCode;
use sympack::SolverOptions;
use sympack_service::{Server, ServerConfig, ServiceError, Session};
use sympack_sparse::gen::{laplacian_2d, XorShift64};

struct Args {
    nx: usize,
    ny: usize,
    nodes: usize,
    ppn: usize,
    jobs: usize,
    max_batch: usize,
    max_pending: usize,
    refactor_every: usize,
    seed: u64,
    metrics_json: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        nx: 16,
        ny: 16,
        nodes: 2,
        ppn: 2,
        jobs: 48,
        max_batch: 8,
        max_pending: 32,
        refactor_every: 16,
        seed: 20230,
        metrics_json: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let need = |i: usize| -> Result<String, String> {
            argv.get(i + 1)
                .cloned()
                .ok_or_else(|| format!("{} needs a value", argv[i]))
        };
        let parse = |v: String, flag: &str| -> Result<usize, String> {
            v.parse().map_err(|_| format!("bad {flag}"))
        };
        match argv[i].as_str() {
            "--nx" => args.nx = parse(need(i)?, "--nx")?,
            "--ny" => args.ny = parse(need(i)?, "--ny")?,
            "--nodes" => args.nodes = parse(need(i)?, "--nodes")?,
            "--ppn" => args.ppn = parse(need(i)?, "--ppn")?,
            "--jobs" => args.jobs = parse(need(i)?, "--jobs")?,
            "--max-batch" => args.max_batch = parse(need(i)?, "--max-batch")?,
            "--max-pending" => args.max_pending = parse(need(i)?, "--max-pending")?,
            "--refactor-every" => args.refactor_every = parse(need(i)?, "--refactor-every")?,
            "--seed" => args.seed = need(i)?.parse().map_err(|_| "bad --seed".to_string())?,
            "--metrics-json" => args.metrics_json = Some(need(i)?),
            other => return Err(format!("unknown argument {other}")),
        }
        i += 2;
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: serve_bench [--nx N] [--ny N] [--nodes N] [--ppn N] [--jobs N] \
                 [--max-batch N] [--max-pending N] [--refactor-every N] [--seed S] \
                 [--metrics-json <path>]"
            );
            return ExitCode::FAILURE;
        }
    };
    let a = laplacian_2d(args.nx, args.ny);
    let n = a.n();
    println!(
        "matrix: {}x{} Laplacian, n = {n}, nnz = {}",
        args.nx,
        args.ny,
        a.nnz_full()
    );
    let opts = SolverOptions {
        n_nodes: args.nodes,
        ranks_per_node: args.ppn,
        ..Default::default()
    };
    let session = match Session::new(&a, &opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("session creation failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "session: {} ranks, analyze {:.1} ms (wall), first factor {:.6} s (virtual)",
        args.nodes * args.ppn,
        session.analyze_wall_ms(),
        session.first_factor_time()
    );
    let mut server = Server::new(
        session,
        ServerConfig {
            max_pending: args.max_pending,
            max_batch: args.max_batch,
        },
    );

    // Fixed request mix: bursts of up to max_batch jobs in a tight window,
    // then an idle gap long enough that the server drains between bursts.
    let mut rng = XorShift64::new(args.seed);
    let mut clock = 0.0f64;
    let mut submitted = 0usize;
    let mut outstanding: Vec<(u64, Vec<f64>)> = Vec::new();
    let mut worst_residual = 0.0f64;
    let mut served = 0usize;
    while submitted < args.jobs {
        let burst = 2 + rng.next_below(args.max_batch);
        for _ in 0..burst.min(args.jobs - submitted) {
            let rhs: Vec<f64> = (0..n).map(|_| rng.next_f64() * 2.0 - 1.0).collect();
            clock += rng.next_f64() * 1e-5;
            match server.submit_at(rhs.clone(), clock) {
                Ok(id) => outstanding.push((id, rhs)),
                Err(ServiceError::QueueFull { .. }) => {
                    // Admission pushed back; serve a batch, then retry once.
                    if drain_and_check(
                        &mut server,
                        &a,
                        &mut outstanding,
                        &mut worst_residual,
                        &mut served,
                    )
                    .is_err()
                    {
                        return ExitCode::FAILURE;
                    }
                    match server.submit_at(rhs.clone(), clock) {
                        Ok(id) => outstanding.push((id, rhs)),
                        Err(e) => {
                            eprintln!("resubmission failed: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                }
                Err(e) => {
                    eprintln!("submission failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
            submitted += 1;
            if args.refactor_every > 0 && submitted.is_multiple_of(args.refactor_every) {
                // Re-factor on the same pattern with rescaled values (a
                // time-stepping matrix update).
                let scale = 1.0 + 0.25 * rng.next_f64();
                let mut values = Vec::new();
                for c in 0..a.n() {
                    values.extend(a.col_values(c).iter().map(|v| v * scale));
                }
                // Serve what is queued against the current factor first —
                // refactorize changes the operator under pending solves.
                if drain_and_check(
                    &mut server,
                    &a,
                    &mut outstanding,
                    &mut worst_residual,
                    &mut served,
                )
                .is_err()
                {
                    return ExitCode::FAILURE;
                }
                if let Err(e) = server.refactorize(&values) {
                    eprintln!("refactorize failed: {e}");
                    return ExitCode::FAILURE;
                }
                // Subsequent residual checks are against the rescaled matrix:
                // b and x both scale, so checking vs A with b/scale still
                // holds; simplest is to check vs the scaled operator by
                // rescaling the recorded rhs. We instead reset the matrix to
                // the original values right away, keeping one ground truth.
                let mut orig = Vec::new();
                for c in 0..a.n() {
                    orig.extend_from_slice(a.col_values(c));
                }
                if let Err(e) = server.refactorize(&orig) {
                    eprintln!("refactorize (restore) failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        // Idle gap after the burst: the server catches up.
        clock += 1.0;
        if drain_and_check(
            &mut server,
            &a,
            &mut outstanding,
            &mut worst_residual,
            &mut served,
        )
        .is_err()
        {
            return ExitCode::FAILURE;
        }
    }
    if drain_and_check(
        &mut server,
        &a,
        &mut outstanding,
        &mut worst_residual,
        &mut served,
    )
    .is_err()
    {
        return ExitCode::FAILURE;
    }

    let m = server.metrics();
    println!(
        "jobs: submitted {}, served {served}, rejected-then-retried {}",
        m.jobs_submitted, m.jobs_rejected
    );
    println!(
        "batches: {} ({} coalesced jobs, mean batch {:.2}, max {})",
        m.batches,
        m.coalesced_jobs,
        m.batch_sizes.mean(),
        m.batch_sizes.max() as usize
    );
    println!(
        "latency (virtual): p50 {:.6} s, p99 {:.6} s",
        m.latency.p50(),
        m.latency.p99()
    );
    println!("refactorizations: {}", m.refactorizations);
    println!(
        "amortized cost/job {:.6} s vs one-shot {:.6} s ({:.1}x cheaper)",
        m.amortized_cost_per_job(),
        m.one_shot_cost_per_job(),
        m.one_shot_cost_per_job() / m.amortized_cost_per_job().max(1e-30)
    );
    println!("worst residual: {worst_residual:.3e}");

    if let Some(path) = &args.metrics_json {
        if let Err(e) = std::fs::write(path, m.to_json()) {
            eprintln!("writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("metrics written to {path}");
    }
    if m.coalesced_jobs == 0 {
        eprintln!("FAIL: batching never coalesced two jobs into one panel solve");
        return ExitCode::FAILURE;
    }
    if worst_residual > 1e-8 {
        eprintln!("FAIL: residual {worst_residual:.3e} above 1e-8");
        return ExitCode::FAILURE;
    }
    println!("OK");
    ExitCode::SUCCESS
}

/// Drain the server and verify every completed job against its recorded
/// right-hand side. Returns `Err(())` after printing the failure.
fn drain_and_check(
    server: &mut Server,
    a: &sympack_sparse::SparseSym,
    outstanding: &mut Vec<(u64, Vec<f64>)>,
    worst: &mut f64,
    served: &mut usize,
) -> Result<(), ()> {
    let done = match server.drain() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("solve failed: {e}");
            return Err(());
        }
    };
    for job in done {
        let idx = outstanding
            .iter()
            .position(|(id, _)| *id == job.id)
            .expect("completed job was submitted");
        let (_, rhs) = outstanding.swap_remove(idx);
        let r = a.relative_residual(&job.x, &rhs);
        if r > *worst {
            *worst = r;
        }
        *served += 1;
    }
    Ok(())
}
