//! `run_sympack2d` — the CLI driver, mirroring the benchmarking program of
//! the paper's artifact (`driver/run_sympack2D`):
//!
//! ```text
//! run_sympack2d -in <matrix.rb|matrix.mtx> -nrhs 1 -ordering SCOTCH \
//!               -nodes 4 -ppn 2 [-nogpu] [-baseline] [-gen flan|bone|thermal[:scale]]
//! ```
//!
//! Reads a Rutherford-Boeing (`.rb`/`.rsa`) or Matrix Market (`.mtx`) file —
//! the two formats the artifact uses — or generates one of the paper's
//! stand-in problems, then factors and solves, printing the same summary the
//! paper's driver reports (ordering, structure, factorization time, solve
//! time, residual). `-ordering SCOTCH` maps to this workspace's
//! nested-dissection implementation (the algorithm Scotch provides).

use std::process::ExitCode;
use sympack::{SolverOptions, SymPack};
use sympack_baseline::{baseline_factor_and_solve, BaselineOptions};
use sympack_ordering::OrderingKind;
use sympack_sparse::{gen, SparseSym};

struct Args {
    input: Option<String>,
    generate: Option<String>,
    nrhs: usize,
    ordering: OrderingKind,
    nodes: usize,
    ppn: usize,
    gpu: bool,
    baseline: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        input: None,
        generate: None,
        nrhs: 1,
        ordering: OrderingKind::NestedDissection,
        nodes: 1,
        ppn: 2,
        gpu: true,
        baseline: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let need = |i: usize| -> Result<String, String> {
            argv.get(i + 1)
                .cloned()
                .ok_or_else(|| format!("{} needs a value", argv[i]))
        };
        match argv[i].as_str() {
            "-in" => {
                args.input = Some(need(i)?);
                i += 2;
            }
            "-gen" => {
                args.generate = Some(need(i)?);
                i += 2;
            }
            "-nrhs" => {
                args.nrhs = need(i)?.parse().map_err(|_| "bad -nrhs".to_string())?;
                i += 2;
            }
            "-ordering" => {
                args.ordering = match need(i)?.to_ascii_uppercase().as_str() {
                    "SCOTCH" | "ND" | "NESTED_DISSECTION" => OrderingKind::NestedDissection,
                    "MMD" | "AMD" | "MD" => OrderingKind::MinDegree,
                    "RCM" => OrderingKind::Rcm,
                    "NATURAL" | "NONE" => OrderingKind::Natural,
                    other => return Err(format!("unknown ordering {other}")),
                };
                i += 2;
            }
            "-nodes" => {
                args.nodes = need(i)?.parse().map_err(|_| "bad -nodes".to_string())?;
                i += 2;
            }
            "-ppn" => {
                args.ppn = need(i)?.parse().map_err(|_| "bad -ppn".to_string())?;
                i += 2;
            }
            "-nogpu" => {
                args.gpu = false;
                i += 1;
            }
            "-baseline" => {
                args.baseline = true;
                i += 1;
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    if args.input.is_none() && args.generate.is_none() {
        return Err("one of -in <file> or -gen <problem> is required".into());
    }
    Ok(args)
}

fn load_matrix(args: &Args) -> Result<SparseSym, String> {
    if let Some(path) = &args.input {
        let file = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
        if path.ends_with(".mtx") {
            let m = sympack_sparse::io::mm::read(file).map_err(|e| e.to_string())?;
            if !m.is_symmetric() {
                return Err("matrix is not symmetric".into());
            }
            Ok(m.to_lower_sym())
        } else {
            sympack_sparse::io::rb::read(file).map_err(|e| e.to_string())
        }
    } else {
        let spec = args.generate.as_deref().expect("checked");
        let (name, scale) = match spec.split_once(':') {
            Some((n, s)) => (n, s.parse::<usize>().map_err(|_| "bad scale")?),
            None => (spec, 12),
        };
        match name {
            "flan" => Ok(gen::flan_like(scale, scale, scale)),
            "bone" => Ok(gen::bone_like(scale, scale, scale)),
            "thermal" => Ok(gen::thermal_like(scale * 6, scale * 6, 0.35, 20230)),
            other => Err(format!("unknown generator {other}")),
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: run_sympack2d (-in <file> | -gen flan|bone|thermal[:scale]) \
                 [-nrhs N] [-ordering SCOTCH|MMD|RCM|NATURAL] [-nodes N] [-ppn N] [-nogpu] [-baseline]"
            );
            return ExitCode::FAILURE;
        }
    };
    let a = match load_matrix(&args) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("matrix: n = {}, nnz = {}", a.n(), a.nnz_full());
    let bs: Vec<Vec<f64>> = (0..args.nrhs)
        .map(|k| {
            (0..a.n())
                .map(|i| ((i * (k + 3) + 1) % 17) as f64 - 8.0)
                .collect()
        })
        .collect();
    if args.baseline {
        let opts = BaselineOptions {
            ordering: args.ordering,
            n_nodes: args.nodes,
            ranks_per_node: args.ppn,
            gpu: args.gpu,
            ..Default::default()
        };
        let r = baseline_factor_and_solve(&a, &bs[0], &opts);
        println!("solver: right-looking baseline (PaStiX-like), 1D mapping");
        println!("factorization time: {:.6} s (modeled)", r.factor_time);
        println!("solve time:         {:.6} s (modeled)", r.solve_time);
        println!("relative residual:  {:.3e}", r.relative_residual);
        return ExitCode::SUCCESS;
    }
    let opts = SolverOptions {
        ordering: args.ordering,
        n_nodes: args.nodes,
        ranks_per_node: args.ppn,
        gpu: args.gpu,
        ..Default::default()
    };
    match SymPack::try_factor_and_solve_multi(&a, &bs, &opts) {
        Ok(r) => {
            println!("solver: symPACK-rs (fan-out, 2D block-cyclic)");
            println!(
                "supernodes: {}, nnz(L) = {}, flops = {:.3e}",
                r.n_supernodes, r.l_nnz, r.flops as f64
            );
            println!("factorization time: {:.6} s (modeled)", r.factor_time);
            for (k, t) in r.solve_times.iter().enumerate() {
                println!(
                    "solve {k}: {:.6} s (modeled), residual {:.3e}",
                    t, r.relative_residuals[k]
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("factorization failed: {e}");
            ExitCode::FAILURE
        }
    }
}
