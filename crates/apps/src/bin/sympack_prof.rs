//! `sympack-prof` — offline analyzer for solver flight-recorder profiles.
//!
//! Consumes the Profile JSON documents the solvers emit when run with
//! tracing on (`SolverOptions::trace` / `BaselineOptions::trace`, or the
//! `timeline` bench's `--profile-json` flag):
//!
//! ```text
//! sympack-prof report profile.json [--top N]       text report to stdout
//! sympack-prof chrome profile.json [-o out.json]   Chrome trace export
//! sympack-prof diff old.json new.json \
//!     [--makespan-pct X] [--crit-pct X] \
//!     [--published-pct X]                          exit 1 on regression
//! ```
//!
//! `report` prints the makespan, critical path (top-k tasks), per-rank wait
//! attribution, imbalance and communication hotspots, and verifies the
//! profile's structural invariants. `diff` compares two profiles and exits
//! nonzero when the new makespan or critical path grew past the thresholds
//! (percent growth, default 5) — CI's regression gate.

use std::process::ExitCode;
use sympack_trace::profile::{check_invariants, diff, DiffThresholds, Profile};

const USAGE: &str = "usage:
  sympack-prof report <profile.json> [--top N]
  sympack-prof chrome <profile.json> [-o <out.json>]
  sympack-prof diff <old.json> <new.json> [--makespan-pct X] [--crit-pct X] [--published-pct X]";

fn load(path: &str) -> Result<Profile, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    Profile::from_json(&text).map_err(|e| format!("parse {path}: {e}"))
}

/// Parse `--flag value` from `argv`, removing both tokens when present.
fn take_flag(argv: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    match argv.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => {
            if i + 1 >= argv.len() {
                return Err(format!("{flag} needs a value"));
            }
            let v = argv.remove(i + 1);
            argv.remove(i);
            Ok(Some(v))
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        return Err(USAGE.into());
    }
    let cmd = argv.remove(0);
    match cmd.as_str() {
        "report" => {
            let top: usize = match take_flag(&mut argv, "--top")? {
                Some(v) => v.parse().map_err(|_| "bad --top".to_string())?,
                None => 10,
            };
            let [path] = argv.as_slice() else {
                return Err(USAGE.into());
            };
            let p = load(path)?;
            print!("{}", p.render_report(top));
            if let Err(e) = check_invariants(&p) {
                eprintln!("warning: profile invariant violated: {e}");
            }
            Ok(ExitCode::SUCCESS)
        }
        "chrome" => {
            let out = take_flag(&mut argv, "-o")?;
            let [path] = argv.as_slice() else {
                return Err(USAGE.into());
            };
            let p = load(path)?;
            let json = sympack_trace::to_chrome_json(&p.spans);
            match out {
                Some(dest) => {
                    std::fs::write(&dest, json).map_err(|e| format!("write {dest}: {e}"))?;
                    eprintln!("wrote {} spans to {dest}", p.spans.len());
                }
                None => print!("{json}"),
            }
            Ok(ExitCode::SUCCESS)
        }
        "diff" => {
            let mut thr = DiffThresholds::default();
            if let Some(v) = take_flag(&mut argv, "--makespan-pct")? {
                thr.makespan_pct = v.parse().map_err(|_| "bad --makespan-pct".to_string())?;
            }
            if let Some(v) = take_flag(&mut argv, "--crit-pct")? {
                thr.crit_pct = v.parse().map_err(|_| "bad --crit-pct".to_string())?;
            }
            if let Some(v) = take_flag(&mut argv, "--published-pct")? {
                thr.published_pct = v.parse().map_err(|_| "bad --published-pct".to_string())?;
            }
            let [old_path, new_path] = argv.as_slice() else {
                return Err(USAGE.into());
            };
            let (old, new) = (load(old_path)?, load(new_path)?);
            let d = diff(&old, &new, &thr);
            print!("{}", d.report);
            Ok(if d.regressed {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            })
        }
        other => Err(format!("unknown command {other}\n{USAGE}")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
