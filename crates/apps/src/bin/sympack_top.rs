//! `sympack-top` — a `top(1)`-style view of a solver run or tenant fleet.
//!
//! Reads the deterministic telemetry snapshot documents the stack emits
//! (`Fleet::telemetry_json`, `SymPack::try_factor_and_solve_observed` →
//! `TelemetryReport::to_json`, or the `--telemetry-json` flag of
//! `fleet_bench`) and renders ranks, tenants, queues and health as tables:
//!
//! ```text
//! sympack-top --replay <snapshot.json> [--check] [--against <other.json>]
//! sympack-top --live [--tenants N] [--rounds N] [--json <out.json>]
//! ```
//!
//! `--replay` renders a saved snapshot. With `--check` it validates the
//! document instead (schema header, known kind, nondecreasing series
//! timestamps, writer round-trip) and exits nonzero on any violation —
//! with `--against` it additionally requires the two files to be
//! byte-identical, CI's snapshot-determinism gate. `--live` runs a small
//! seeded in-process fleet and renders its telemetry (optionally dumping
//! the snapshot JSON for a later `--replay`).

use std::process::ExitCode;
use sympack::SolverOptions;
use sympack_fleet::{Fleet, FleetConfig};
use sympack_trace::json::{self, JsonValue};
use sympack_trace::telemetry::SNAPSHOT_SCHEMA;

const USAGE: &str = "usage:
  sympack-top --replay <snapshot.json> [--check] [--against <other.json>]
  sympack-top --live [--tenants N] [--rounds N] [--json <out.json>]";

/// Parse `--flag value` from `argv`, removing both tokens when present.
fn take_flag(argv: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    match argv.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => {
            if i + 1 >= argv.len() {
                return Err(format!("{flag} needs a value"));
            }
            let v = argv.remove(i + 1);
            argv.remove(i);
            Ok(Some(v))
        }
    }
}

/// Remove a boolean `--flag`, reporting whether it was present.
fn take_switch(argv: &mut Vec<String>, flag: &str) -> bool {
    match argv.iter().position(|a| a == flag) {
        Some(i) => {
            argv.remove(i);
            true
        }
        None => false,
    }
}

fn num(v: &JsonValue, key: &str) -> f64 {
    v.get(key).and_then(JsonValue::as_f64).unwrap_or(0.0)
}

fn text<'a>(v: &'a JsonValue, key: &str) -> &'a str {
    v.get(key).and_then(JsonValue::as_str).unwrap_or("")
}

/// Validate one snapshot document; returns the list of violations.
fn check_doc(doc: &str) -> Vec<String> {
    let mut errs = Vec::new();
    let v = match json::parse(doc) {
        Ok(v) => v,
        Err(e) => return vec![format!("malformed JSON: {e:?}")],
    };
    match v.get("schema").and_then(JsonValue::as_str) {
        Some(s) if s == SNAPSHOT_SCHEMA => {}
        Some(s) => errs.push(format!(
            "unknown schema {s:?} (expected {SNAPSHOT_SCHEMA:?})"
        )),
        None => errs.push("missing schema header".into()),
    }
    match v.get("kind").and_then(JsonValue::as_str) {
        Some("fleet") | Some("solver") => {}
        Some(k) => errs.push(format!("unknown document kind {k:?}")),
        None => errs.push("missing document kind".into()),
    }
    if let Some(series) = v
        .get("telemetry")
        .and_then(|t| t.get("series"))
        .and_then(JsonValue::as_array)
    {
        for entry in series {
            let name = text(entry, "name").to_string();
            let Some(pts) = entry.get("points").and_then(JsonValue::as_array) else {
                errs.push(format!("series {name:?} has no points array"));
                continue;
            };
            let mut last = f64::NEG_INFINITY;
            for p in pts {
                let Some(pair) = p.as_array().filter(|a| a.len() == 2) else {
                    errs.push(format!("series {name:?} has a malformed point"));
                    break;
                };
                let t = pair[0].as_f64().unwrap_or(f64::NAN);
                if t.is_nan() || t < last {
                    errs.push(format!(
                        "series {name:?} timestamps go backwards ({last} -> {t})"
                    ));
                    break;
                }
                last = t;
            }
        }
    }
    // Writer round-trip: re-rendering the parsed tree and parsing again
    // must reproduce the same tree (catches nondeterministic emitters).
    if errs.is_empty() {
        match json::parse(&json::write(&v)) {
            Ok(v2) if v2 == v => {}
            Ok(_) => errs.push("writer round-trip changed the document".into()),
            Err(e) => errs.push(format!("re-rendered document failed to parse: {e:?}")),
        }
    }
    errs
}

/// Render the per-tenant table of a `kind: fleet` document.
fn render_fleet(v: &JsonValue) -> String {
    let mut out = String::new();
    let cache = v.get("cache");
    out.push_str(&format!(
        "fleet  makespan {:.6}s  resident {} B (budget {} B, high-water {})  evictions {}  remat {}\n",
        num(v, "makespan"),
        cache.map_or(0.0, |c| num(c, "resident_bytes")),
        cache.map_or(0.0, |c| num(c, "factor_budget_bytes")),
        cache.map_or(0.0, |c| num(c, "resident_high_water_bytes")),
        cache.map_or(0.0, |c| num(c, "factor_evictions")),
        cache.map_or(0.0, |c| num(c, "rematerializations")),
    ));
    out.push_str(&format!(
        "{:<12} {:>5} {:>4} {:>5} {:>7} {:>6} {:>11} {:>11} {:>7} {:>6}\n",
        "TENANT", "SHARD", "RES", "PEND", "SERVED", "EVICT", "P50(s)", "P99(s)", "SLO%", "BURN"
    ));
    if let Some(tenants) = v.get("tenants").and_then(JsonValue::as_array) {
        for t in tenants {
            let lat = t.get("latency");
            let slo = t.get("slo");
            out.push_str(&format!(
                "{:<12} {:>5} {:>4} {:>5} {:>7} {:>6} {:>11.3e} {:>11.3e} {:>7.2} {:>6.2}\n",
                text(t, "tenant"),
                num(t, "shard"),
                if t.get("resident").map(|r| r == &JsonValue::Bool(true)) == Some(true) {
                    "yes"
                } else {
                    "no"
                },
                num(t, "pending"),
                num(t, "jobs_served"),
                num(t, "evictions"),
                lat.map_or(0.0, |l| num(l, "p50")),
                lat.map_or(0.0, |l| num(l, "p99")),
                slo.map_or(100.0, |s| num(s, "compliance") * 100.0),
                slo.map_or(0.0, |s| num(s, "burn_rate")),
            ));
        }
    }
    out
}

/// Render the per-rank table of a `kind: solver` document from its
/// rank-labeled counters and gauges.
fn render_solver(v: &JsonValue) -> String {
    let mut out = String::new();
    let tel = v.get("telemetry");
    // rank label -> (tasks, sent msgs, sent bytes, rtq, inflight msgs)
    let mut ranks: Vec<(String, [f64; 5])> = Vec::new();
    fn slot(ranks: &mut Vec<(String, [f64; 5])>, label: String) -> usize {
        match ranks.iter().position(|(r, _)| *r == label) {
            Some(i) => i,
            None => {
                ranks.push((label, [0.0; 5]));
                ranks.len() - 1
            }
        }
    }
    let column = |name: &str| -> Option<usize> {
        match name {
            "sympack_sched_tasks_total" => Some(0),
            "sympack_pgas_msgs_sent_total" => Some(1),
            "sympack_pgas_bytes_sent_total" => Some(2),
            "sympack_sched_rtq_depth" => Some(3),
            "sympack_pgas_inflight_msgs" => Some(4),
            _ => None,
        }
    };
    for section in ["counters", "gauges"] {
        let Some(entries) = tel
            .and_then(|t| t.get(section))
            .and_then(JsonValue::as_array)
        else {
            continue;
        };
        for e in entries {
            let Some(col) = column(text(e, "name")) else {
                continue;
            };
            let rank = e
                .get("labels")
                .and_then(|l| l.get("rank"))
                .and_then(JsonValue::as_str)
                .unwrap_or("?")
                .to_string();
            let i = slot(&mut ranks, rank);
            ranks[i].1[col] = num(e, "value");
        }
    }
    ranks.sort_by_key(|(r, _)| r.parse::<u64>().unwrap_or(u64::MAX));
    out.push_str(&format!(
        "{:<6} {:>9} {:>10} {:>12} {:>6} {:>9}\n",
        "RANK", "TASKS", "SENT-MSGS", "SENT-BYTES", "RTQ", "INFLIGHT"
    ));
    for (rank, c) in &ranks {
        out.push_str(&format!(
            "{:<6} {:>9} {:>10} {:>12} {:>6} {:>9}\n",
            rank, c[0], c[1], c[2], c[3], c[4]
        ));
    }
    out
}

/// Render the health-event table shared by both document kinds.
fn render_health(v: &JsonValue) -> String {
    let mut out = String::new();
    let events = v.get("health").and_then(JsonValue::as_array);
    match events {
        Some(evs) if !evs.is_empty() => {
            out.push_str(&format!(
                "{:<12} {:<10} {:<14} {:<14} {}\n",
                "T(s)", "SEVERITY", "KIND", "SUBJECT", "DETAIL"
            ));
            for e in evs {
                out.push_str(&format!(
                    "{:<12.6} {:<10} {:<14} {:<14} {}\n",
                    num(e, "at"),
                    text(e, "severity"),
                    text(e, "kind"),
                    text(e, "subject"),
                    text(e, "detail"),
                ));
            }
        }
        _ => out.push_str("health: ok (no events)\n"),
    }
    out
}

fn render(doc: &str) -> Result<String, String> {
    let v = json::parse(doc).map_err(|e| format!("malformed snapshot: {e:?}"))?;
    let mut out = String::new();
    match v.get("kind").and_then(JsonValue::as_str) {
        Some("fleet") => out.push_str(&render_fleet(&v)),
        Some("solver") => out.push_str(&render_solver(&v)),
        other => return Err(format!("unknown document kind {other:?}")),
    }
    out.push('\n');
    out.push_str(&render_health(&v));
    Ok(out)
}

/// `--live`: run a deterministic in-process fleet and render its telemetry.
fn live(tenants: usize, rounds: usize, json_out: Option<String>) -> Result<ExitCode, String> {
    let opts = SolverOptions {
        n_nodes: 1,
        ranks_per_node: 2,
        deterministic: true,
        ..Default::default()
    };
    let config = FleetConfig {
        shards: 2,
        max_batch: 4,
        ..Default::default()
    };
    let mut fleet = Fleet::new(&opts, config);
    let a = sympack_sparse::gen::laplacian_2d(10, 10);
    let mut ids = Vec::new();
    for i in 0..tenants.max(1) {
        let id = fleet
            .admit(&format!("tenant{i}"), &a, 1.0 + (i % 3) as f64)
            .map_err(|e| e.to_string())?;
        fleet.set_slo(
            id,
            sympack_trace::telemetry::SloPolicy::new(5e-3 * (1 + i % 4) as f64, 0.99),
        );
        ids.push(id);
    }
    let b = sympack_sparse::vecops::test_rhs(a.n());
    for round in 0..rounds.max(1) {
        for (i, &id) in ids.iter().enumerate() {
            // A fixed, seedless workload: tenant i submits (i mod 3) + 1
            // jobs per round at staggered virtual arrivals.
            for k in 0..(i % 3) + 1 {
                let at = round as f64 * 0.01 + k as f64 * 0.001;
                fleet
                    .submit_at(id, b.clone(), at)
                    .map_err(|e| e.to_string())?;
            }
        }
        fleet.step().map_err(|e| e.to_string())?;
        print!(
            "\n=== round {round} ===\n{}",
            render(&fleet.telemetry_json())?
        );
    }
    fleet.drain().map_err(|e| e.to_string())?;
    let doc = fleet.telemetry_json();
    print!("\n=== final ===\n{}", render(&doc)?);
    if let Some(path) = json_out {
        std::fs::write(&path, &doc).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("wrote snapshot to {path}");
    }
    Ok(ExitCode::SUCCESS)
}

fn run() -> Result<ExitCode, String> {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if take_switch(&mut argv, "--live") {
        let tenants = match take_flag(&mut argv, "--tenants")? {
            Some(v) => v.parse().map_err(|_| "bad --tenants".to_string())?,
            None => 4,
        };
        let rounds = match take_flag(&mut argv, "--rounds")? {
            Some(v) => v.parse().map_err(|_| "bad --rounds".to_string())?,
            None => 3,
        };
        let json_out = take_flag(&mut argv, "--json")?;
        if !argv.is_empty() {
            return Err(USAGE.into());
        }
        return live(tenants, rounds, json_out);
    }
    let Some(path) = take_flag(&mut argv, "--replay")? else {
        return Err(USAGE.into());
    };
    let check = take_switch(&mut argv, "--check");
    let against = take_flag(&mut argv, "--against")?;
    if !argv.is_empty() {
        return Err(USAGE.into());
    }
    let doc = std::fs::read_to_string(&path).map_err(|e| format!("read {path}: {e}"))?;
    if check {
        let mut errs = check_doc(&doc);
        if let Some(other) = against {
            let doc2 = std::fs::read_to_string(&other).map_err(|e| format!("read {other}: {e}"))?;
            errs.extend(check_doc(&doc2));
            if doc != doc2 {
                errs.push(format!(
                    "snapshots differ: {path} and {other} are not byte-identical"
                ));
            }
        }
        return if errs.is_empty() {
            println!("ok: {path}");
            Ok(ExitCode::SUCCESS)
        } else {
            for e in &errs {
                eprintln!("check failed: {e}");
            }
            Ok(ExitCode::FAILURE)
        };
    }
    print!("{}", render(&doc)?);
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
