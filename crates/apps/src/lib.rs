//! Example binaries live in ../../examples; this library is intentionally empty.
