//! Multi-tenant solver fleet: many concurrent sessions sharing ranks, a
//! pattern-keyed symbolic plan cache, an LRU factor cache under a memory
//! budget, and fair per-tenant admission.
//!
//! The serving layer (`sympack-service`) amortizes analysis for *one*
//! matrix. A [`Fleet`] hosts many tenants at once — the "millions of users"
//! shape, where symPACK's front-loaded cost (ordering + symbolic analysis +
//! mapping dominate the first factorization) is amortized *across* tenants:
//!
//! * **Plan cache** ([`PlanCache`]) — symbolic plans keyed by
//!   [`sympack::pattern_hash`] folded with the analysis/layout options
//!   ([`sympack::plan_cache_key`]). A tenant whose sparsity pattern was
//!   seen before skips ordering, analysis and task-graph construction
//!   entirely: admission is a numeric-only factorization against the shared
//!   `Arc<SymbolicPlan>` (its analyze wall time is ≈ 0).
//! * **Sharding** — tenants are assigned round-robin to `shards`
//!   independent rank gangs; tenants on one shard serialize in that shard's
//!   virtual clock, different shards overlap. The fleet makespan is the
//!   max over shard clocks.
//! * **LRU factor cache** — resident numeric factors are bounded by
//!   [`FleetConfig::factor_budget_bytes`]; the least-recently-served cold
//!   tenants' factors are evicted ([`sympack_service::Session`] keeps the
//!   values and all symbolic state) and re-materialized on demand via a
//!   numeric re-factorization before the next solve.
//! * **Fair admission** — weighted deficit round-robin: each scheduling
//!   round a tenant earns `weight × quantum` service credit and may serve
//!   at most its accumulated credit (capped by the batch bound), so one hot
//!   tenant cannot starve the queue; idle tenants forfeit their credit.
//!
//! All queueing/latency accounting runs in the solver's virtual clocks, so
//! a seeded workload replays exactly; per-tenant [`ServiceMetrics`] and
//! fleet-wide [`FleetCacheMetrics`] export the counters, and per-request
//! `{tenant}/job-{id}` spans feed the flight-recorder profile.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use sympack::{pattern_hash, plan_cache_key, SolverError, SolverOptions, SymbolicPlan};
use sympack_service::{RhsPanel, Session};
use sympack_sparse::SparseSym;
use sympack_trace::health::{HealthEvent, WatchRules, WatchSample, Watchdog};
use sympack_trace::json::{Arr, Obj};
use sympack_trace::metrics::{FleetCacheMetrics, ServiceMetrics};
use sympack_trace::telemetry::{
    CounterId, GaugeId, HistId, SloPolicy, SloTracker, Telemetry, TelemetrySnapshot,
    SNAPSHOT_SCHEMA,
};
use sympack_trace::{SpanKind, TraceCat, TraceEvent};

/// Errors surfaced by the fleet.
#[derive(Debug)]
pub enum FleetError {
    /// A tenant name was admitted twice.
    DuplicateTenant {
        /// The offending name.
        tenant: String,
    },
    /// An operation referenced a tenant the fleet does not host.
    UnknownTenant {
        /// The unknown name.
        tenant: String,
    },
    /// Per-tenant admission control rejected the job: that tenant's pending
    /// queue is at capacity. Other tenants are unaffected.
    QueueFull {
        /// The tenant whose queue is full.
        tenant: String,
        /// The configured per-tenant queue bound.
        capacity: usize,
    },
    /// A distributed phase failed underneath the fleet.
    Solver(SolverError),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::DuplicateTenant { tenant } => {
                write!(f, "tenant {tenant:?} is already admitted")
            }
            FleetError::UnknownTenant { tenant } => {
                write!(f, "unknown tenant {tenant:?}")
            }
            FleetError::QueueFull { tenant, capacity } => {
                write!(
                    f,
                    "job rejected: tenant {tenant:?} queue is full ({capacity} jobs)"
                )
            }
            FleetError::Solver(e) => write!(f, "solver error: {e}"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<SolverError> for FleetError {
    fn from(e: SolverError) -> FleetError {
        FleetError::Solver(e)
    }
}

/// A symbolic plan cache keyed by [`sympack::plan_cache_key`] (pattern hash
/// × analysis/layout options). Hits hand out another `Arc` to the shared
/// plan; misses run the full ordering + analysis + mapping pipeline once.
#[derive(Debug, Default)]
pub struct PlanCache {
    plans: HashMap<u64, Arc<SymbolicPlan>>,
    hits: u64,
    misses: u64,
}

impl PlanCache {
    /// New empty cache.
    pub fn new() -> PlanCache {
        PlanCache::default()
    }

    /// The cached plan for `a` under `opts`, building (and caching) it on a
    /// miss. Returns the plan and whether it was a hit.
    pub fn get_or_build(
        &mut self,
        a: &SparseSym,
        opts: &SolverOptions,
    ) -> (Arc<SymbolicPlan>, bool) {
        let key = plan_cache_key(pattern_hash(a), opts);
        if let Some(plan) = self.plans.get(&key) {
            self.hits += 1;
            return (Arc::clone(plan), true);
        }
        self.misses += 1;
        let plan = Arc::new(SymbolicPlan::build(a, opts));
        self.plans.insert(key, Arc::clone(&plan));
        (plan, false)
    }

    /// Distinct plans cached.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// True when nothing was cached yet.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// Lookups served without analysis.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that ran the full analysis pipeline.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

/// Fleet sizing, budget and fairness policy.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Independent rank gangs. Each admitted tenant is pinned round-robin
    /// to one shard; tenants on a shard serialize in its virtual clock.
    pub shards: usize,
    /// Byte budget for resident numeric factors across all tenants; the
    /// LRU evicts cold tenants' factors to stay under it. 0 = unlimited.
    pub factor_budget_bytes: u64,
    /// Per-tenant pending-queue bound; submissions beyond it are rejected
    /// with [`FleetError::QueueFull`].
    pub max_pending_per_tenant: usize,
    /// Maximum right-hand sides coalesced into one panel solve per tenant
    /// per scheduling round.
    pub max_batch: usize,
    /// Service credit a weight-1.0 tenant earns per scheduling round, in
    /// jobs. A tenant may serve at most its accumulated credit per round.
    pub quantum: f64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            shards: 2,
            factor_budget_bytes: 0,
            max_pending_per_tenant: 64,
            max_batch: 16,
            quantum: 2.0,
        }
    }
}

/// Ticket identifying an admitted tenant (index into admission order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TenantId(pub usize);

/// One queued solve request of one tenant.
#[derive(Debug)]
struct FleetJob {
    id: u64,
    rhs: Vec<f64>,
    arrival: f64,
}

/// A completed fleet solve request.
#[derive(Debug)]
pub struct FleetCompleted {
    /// The tenant the job belongs to.
    pub tenant: TenantId,
    /// Per-tenant job ticket returned by [`Fleet::submit_at`].
    pub id: u64,
    /// The solution vector.
    pub x: Vec<f64>,
    /// Virtual arrival time the job was submitted with.
    pub arrival: f64,
    /// Virtual time (on the tenant's shard clock) the coalesced solve
    /// serving this job finished.
    pub completion: f64,
}

#[derive(Debug)]
struct Tenant {
    name: String,
    session: Session,
    shard: usize,
    weight: f64,
    deficit: f64,
    pending: VecDeque<FleetJob>,
    next_id: u64,
    metrics: ServiceMetrics,
    /// Wall-clock ms of analysis paid at admission (0 on a plan-cache hit).
    analyze_wall_ms: f64,
    /// Bytes of this tenant's factor when resident (recorded at install,
    /// kept across eviction so the LRU can pre-budget re-materialization).
    factor_bytes: u64,
    /// Monotone LRU stamp: bumped every time the tenant is served.
    last_served: u64,
    evictions: u64,
    /// Compliance against this tenant's latency objective (the default
    /// policy has an unbounded objective, so nothing burns until
    /// [`Fleet::set_slo`] tightens it).
    slo: SloTracker,
    /// Handles into the fleet registry, all labeled `tenant="name"`.
    instruments: TenantInstruments,
}

/// Per-tenant instrument handles into the fleet-level registry.
#[derive(Debug, Clone, Copy)]
struct TenantInstruments {
    latency: HistId,
    served: CounterId,
    served_bytes: CounterId,
    evictions: CounterId,
    pending: GaugeId,
}

/// A multi-tenant serving front-end: many [`Session`]s sharded over
/// independent rank gangs behind one plan cache, one factor budget and one
/// fair scheduler. See the crate docs for the architecture.
#[derive(Debug)]
pub struct Fleet {
    opts: SolverOptions,
    config: FleetConfig,
    plans: PlanCache,
    tenants: Vec<Tenant>,
    by_name: HashMap<String, usize>,
    /// One virtual clock per shard.
    clocks: Vec<f64>,
    /// Monotone counter backing the LRU stamps.
    use_counter: u64,
    cache: FleetCacheMetrics,
    request_spans: Vec<TraceEvent>,
    /// The live registry: per-tenant latency/served/eviction instruments
    /// plus fleet-wide residency gauges, sampled on the (monotone) fleet
    /// makespan so every ring's timestamps are nondecreasing.
    tel: Telemetry,
    /// Fleet-wide gauges.
    resident_gauge: GaugeId,
    backlog_gauge: GaugeId,
    /// Health watchdog, evaluated after every scheduling round.
    watchdog: Watchdog,
    /// Monotone sampling clock: the latest virtual time any instrument was
    /// sampled at. Submissions can carry arrivals ahead of the shard
    /// clocks, so rings tick at `max(makespan, last tick, event time)` to
    /// keep every series nondecreasing.
    sample_clock: f64,
}

impl Fleet {
    /// New empty fleet. `opts` is the per-shard solver configuration every
    /// tenant session runs under (rank layout, net model, kernels…); the
    /// fleet's total rank pool is `config.shards ×
    /// (opts.n_nodes × opts.ranks_per_node)`.
    ///
    /// # Panics
    /// Panics when `config.shards == 0`, `config.max_batch == 0` or
    /// `config.quantum <= 0`.
    pub fn new(opts: &SolverOptions, config: FleetConfig) -> Fleet {
        assert!(config.shards > 0, "a fleet has at least one shard");
        assert!(config.max_batch > 0, "max_batch must be positive");
        assert!(config.quantum > 0.0, "quantum must be positive");
        let mut tel = Telemetry::new();
        let resident_gauge = tel.gauge("sympack_fleet_resident_bytes", &[]);
        let backlog_gauge = tel.gauge("sympack_fleet_backlog_jobs", &[]);
        Fleet {
            opts: opts.clone(),
            config,
            plans: PlanCache::new(),
            tenants: Vec::new(),
            by_name: HashMap::new(),
            clocks: vec![0.0; config.shards],
            use_counter: 0,
            cache: FleetCacheMetrics {
                factor_budget_bytes: config.factor_budget_bytes,
                ..FleetCacheMetrics::default()
            },
            request_spans: Vec::new(),
            tel,
            resident_gauge,
            backlog_gauge,
            watchdog: Watchdog::new(WatchRules::default()),
            sample_clock: 0.0,
        }
    }

    /// Sampling tick: push every instrument's current value into its ring
    /// at a monotone virtual time.
    fn tick(&mut self, at: f64) {
        self.sample_clock = self.sample_clock.max(at).max(self.makespan());
        self.tel.sample(self.sample_clock);
    }

    /// Admit a tenant with its matrix and fairness weight: plan-cache
    /// lookup (hit → numeric-only factorization, no analysis), first
    /// factorization charged to the tenant's shard clock, then LRU budget
    /// enforcement. Weight 1.0 is the baseline share; 2.0 earns double
    /// service credit per round.
    ///
    /// # Panics
    /// Panics when `weight <= 0`.
    ///
    /// # Errors
    /// [`FleetError::DuplicateTenant`] on a name collision, otherwise the
    /// factorization failure modes wrapped in [`FleetError::Solver`].
    pub fn admit(
        &mut self,
        name: &str,
        a: &SparseSym,
        weight: f64,
    ) -> Result<TenantId, FleetError> {
        assert!(weight > 0.0, "tenant weight must be positive");
        if self.by_name.contains_key(name) {
            return Err(FleetError::DuplicateTenant {
                tenant: name.to_string(),
            });
        }
        let (plan, hit) = self.plans.get_or_build(a, &self.opts);
        if hit {
            self.cache.plan_hits += 1;
        } else {
            self.cache.plan_misses += 1;
        }
        let analyze_wall_ms = if hit { 0.0 } else { plan.analyze_wall_ms };
        let session = Session::with_plan(a, plan, &self.opts)?;
        let idx = self.tenants.len();
        let shard = idx % self.config.shards;
        self.clocks[shard] += session.first_factor_time();
        let mut metrics = ServiceMetrics::new();
        metrics.one_shot_factor_cost = session.first_factor_time();
        metrics.factor_virtual_total = session.first_factor_time();
        metrics.analyze_wall_ms = analyze_wall_ms;
        let factor_bytes = session.factor_bytes();
        self.use_counter += 1;
        let labels: &[(&str, &str)] = &[("tenant", name)];
        let instruments = TenantInstruments {
            latency: self.tel.histogram("sympack_fleet_latency_seconds", labels),
            served: self.tel.counter("sympack_fleet_jobs_served_total", labels),
            served_bytes: self.tel.counter("sympack_fleet_served_bytes_total", labels),
            evictions: self.tel.counter("sympack_fleet_evictions_total", labels),
            pending: self.tel.gauge("sympack_fleet_pending_jobs", labels),
        };
        self.tenants.push(Tenant {
            name: name.to_string(),
            session,
            shard,
            weight,
            deficit: 0.0,
            pending: VecDeque::new(),
            next_id: 0,
            metrics,
            analyze_wall_ms,
            factor_bytes,
            last_served: self.use_counter,
            evictions: 0,
            slo: SloTracker::new(SloPolicy::default()),
            instruments,
        });
        self.by_name.insert(name.to_string(), idx);
        self.enforce_budget(Some(idx));
        self.sample_residency();
        Ok(TenantId(idx))
    }

    /// Look up an admitted tenant by name.
    pub fn tenant_id(&self, name: &str) -> Option<TenantId> {
        self.by_name.get(name).copied().map(TenantId)
    }

    /// Tenant names in admission order.
    pub fn tenant_names(&self) -> Vec<&str> {
        self.tenants.iter().map(|t| t.name.as_str()).collect()
    }

    /// Submit one right-hand side for `tenant`, arriving at virtual time
    /// `arrival`. Returns a per-tenant job ticket matched by
    /// [`FleetCompleted::id`].
    ///
    /// # Panics
    /// Panics when `rhs` length differs from the tenant's matrix order.
    ///
    /// # Errors
    /// [`FleetError::UnknownTenant`] / [`FleetError::QueueFull`].
    pub fn submit_at(
        &mut self,
        tenant: TenantId,
        rhs: Vec<f64>,
        arrival: f64,
    ) -> Result<u64, FleetError> {
        let t = self
            .tenants
            .get_mut(tenant.0)
            .ok_or_else(|| FleetError::UnknownTenant {
                tenant: format!("#{}", tenant.0),
            })?;
        assert_eq!(
            rhs.len(),
            t.session.n(),
            "rhs length must match the tenant matrix"
        );
        if t.pending.len() >= self.config.max_pending_per_tenant {
            t.metrics.jobs_rejected += 1;
            return Err(FleetError::QueueFull {
                tenant: t.name.clone(),
                capacity: self.config.max_pending_per_tenant,
            });
        }
        let id = t.next_id;
        t.next_id += 1;
        t.metrics.jobs_submitted += 1;
        t.pending.push_back(FleetJob { id, rhs, arrival });
        let (instruments, depth) = (t.instruments, t.pending.len());
        self.tel.set(instruments.pending, depth as f64);
        let backlog: u64 = self.tenants.iter().map(|t| t.pending.len() as u64).sum();
        self.tel.set(self.backlog_gauge, backlog as f64);
        self.tick(arrival);
        Ok(id)
    }

    /// Run one weighted-deficit-round-robin scheduling round: every tenant
    /// (admission order) earns `weight × quantum` service credit; tenants
    /// with pending work serve up to `min(credit, max_batch)` jobs as one
    /// coalesced panel solve on their shard clock, evicted factors are
    /// re-materialized first (LRU pre-budgeted), and idle tenants forfeit
    /// their credit. Returns every job completed this round.
    ///
    /// # Errors
    /// [`FleetError::Solver`] when a distributed phase fails.
    pub fn step(&mut self) -> Result<Vec<FleetCompleted>, FleetError> {
        let mut done = Vec::new();
        for i in 0..self.tenants.len() {
            if self.tenants[i].pending.is_empty() {
                // Standard DRR: an idle tenant must not bank credit.
                self.tenants[i].deficit = 0.0;
                continue;
            }
            self.tenants[i].deficit += self.tenants[i].weight * self.config.quantum;
            let credit = self.tenants[i].deficit.floor() as usize;
            let take = credit
                .min(self.config.max_batch)
                .min(self.tenants[i].pending.len());
            if take == 0 {
                continue;
            }
            done.extend(self.serve(i, take)?);
            self.tenants[i].deficit -= take as f64;
        }
        self.observe_health();
        Ok(done)
    }

    /// Run scheduling rounds until every tenant queue is empty.
    ///
    /// # Errors
    /// [`FleetError::Solver`] when a distributed phase fails.
    pub fn drain(&mut self) -> Result<Vec<FleetCompleted>, FleetError> {
        let mut all = Vec::new();
        while self.tenants.iter().any(|t| !t.pending.is_empty()) {
            all.extend(self.step()?);
        }
        Ok(all)
    }

    /// Serve `take` jobs of tenant `i` as one coalesced panel solve.
    fn serve(&mut self, i: usize, take: usize) -> Result<Vec<FleetCompleted>, FleetError> {
        // Re-materialize an evicted factor first, pre-budgeting its known
        // size so the steady-state resident total never exceeds the budget.
        let mut service_time = 0.0;
        if !self.tenants[i].session.is_resident() {
            self.make_room_for(i);
            let ft = self.tenants[i]
                .session
                .ensure_resident()?
                .expect("factor was evicted");
            service_time += ft;
            self.cache.rematerializations += 1;
            self.tenants[i].metrics.refactorizations += 1;
            self.tenants[i].metrics.factor_virtual_total += ft;
            self.tenants[i].factor_bytes = self.tenants[i].session.factor_bytes();
            self.enforce_budget(Some(i));
        }
        let shard = self.tenants[i].shard;
        let jobs: Vec<FleetJob> = self.tenants[i].pending.drain(..take).collect();
        let mut clock = self.clocks[shard];
        for j in &jobs {
            clock = clock.max(j.arrival);
        }
        let cols: Vec<Vec<f64>> = jobs.iter().map(|j| j.rhs.clone()).collect();
        let batch = self.tenants[i]
            .session
            .solve_batch(&[RhsPanel::from_columns(&cols)])?;
        service_time += batch.solve_time;
        clock += service_time;
        self.clocks[shard] = clock;
        self.use_counter += 1;
        self.tenants[i].last_served = self.use_counter;
        self.tenants[i].metrics.record_batch(take, batch.solve_time);
        let panel = &batch.panels[0];
        let n = self.tenants[i].session.n();
        let mut done = Vec::with_capacity(take);
        let instruments = self.tenants[i].instruments;
        for (k, j) in jobs.into_iter().enumerate() {
            let latency = clock - j.arrival;
            self.tenants[i].metrics.latency.record(latency);
            self.tenants[i].slo.record(latency);
            self.tel.observe(instruments.latency, latency);
            let mut span = TraceEvent::basic(
                shard,
                format!("{}/job-{}", self.tenants[i].name, j.id),
                TraceCat::Solve,
                j.arrival,
                latency,
            );
            span.kind = SpanKind::Request;
            // Service time of the round (re-materialization + coalesced
            // solve); `dur - kernel` is the wait the profile attributes to
            // the tenant.
            span.kernel = service_time.min(latency);
            span.bytes = (n * 8) as u64;
            self.request_spans.push(span);
            done.push(FleetCompleted {
                tenant: TenantId(i),
                id: j.id,
                x: panel.column(k).to_vec(),
                arrival: j.arrival,
                completion: clock,
            });
        }
        self.tel.inc(instruments.served, take as u64);
        self.tel
            .inc(instruments.served_bytes, (take * n * 8) as u64);
        self.tel
            .set_counter_total(instruments.evictions, self.tenants[i].evictions);
        self.tel
            .set(instruments.pending, self.tenants[i].pending.len() as f64);
        self.sample_residency();
        self.tick(clock);
        Ok(done)
    }

    /// Evict least-recently-served tenants (never `keep`) until the
    /// resident total plus tenant `i`'s known factor size fits the budget.
    fn make_room_for(&mut self, i: usize) {
        if self.config.factor_budget_bytes == 0 {
            return;
        }
        let need = self.tenants[i].factor_bytes;
        let budget = self.config.factor_budget_bytes.saturating_sub(need);
        self.evict_down_to(budget, Some(i));
    }

    /// Evict least-recently-served tenants (never `keep`) until the
    /// resident total is within the configured budget.
    fn enforce_budget(&mut self, keep: Option<usize>) {
        if self.config.factor_budget_bytes == 0 {
            return;
        }
        self.evict_down_to(self.config.factor_budget_bytes, keep);
    }

    fn evict_down_to(&mut self, budget: u64, keep: Option<usize>) {
        loop {
            let resident: u64 = self.tenants.iter().map(|t| t.session.factor_bytes()).sum();
            if resident <= budget {
                return;
            }
            // Coldest resident tenant other than `keep`.
            let victim = self
                .tenants
                .iter()
                .enumerate()
                .filter(|(j, t)| Some(*j) != keep && t.session.is_resident())
                .min_by_key(|(_, t)| t.last_served)
                .map(|(j, _)| j);
            let Some(v) = victim else {
                // Nothing evictable (e.g. a single factor larger than the
                // budget): the over-budget residual is visible in the
                // sampled high-water mark.
                return;
            };
            self.tenants[v].session.evict_factor();
            self.tenants[v].evictions += 1;
            self.cache.factor_evictions += 1;
            let ins = self.tenants[v].instruments;
            self.tel
                .set_counter_total(ins.evictions, self.tenants[v].evictions);
        }
    }

    /// Record the current resident total into the cache gauges.
    fn sample_residency(&mut self) {
        let resident: u64 = self.tenants.iter().map(|t| t.session.factor_bytes()).sum();
        self.cache.resident_bytes = resident;
        if resident > self.cache.resident_high_water_bytes {
            self.cache.resident_high_water_bytes = resident;
        }
        self.tel.set(self.resident_gauge, resident as f64);
        let backlog: u64 = self.tenants.iter().map(|t| t.pending.len() as u64).sum();
        self.tel.set(self.backlog_gauge, backlog as f64);
    }

    /// One watchdog evaluation over the fleet's current state: cumulative
    /// served jobs vs backlog (stall), fullest queue fraction (saturation),
    /// cumulative evictions (thrash) and per-tenant SLO burn rates.
    fn observe_health(&mut self) {
        let progress: u64 = self.tenants.iter().map(|t| t.metrics.jobs_served).sum();
        let backlog: u64 = self.tenants.iter().map(|t| t.pending.len() as u64).sum();
        let cap = self.config.max_pending_per_tenant.max(1) as f64;
        let queue_frac = self
            .tenants
            .iter()
            .map(|t| t.pending.len() as f64 / cap)
            .fold(0.0, f64::max);
        let burn: Vec<(&str, f64)> = self
            .tenants
            .iter()
            .map(|t| (t.name.as_str(), t.slo.burn_rate()))
            .collect();
        let now = self.sample_clock.max(self.makespan());
        self.watchdog.observe(&WatchSample {
            now,
            progress,
            backlog,
            queue_frac,
            evictions: self.cache.factor_evictions,
            burn: &burn,
        });
    }

    /// Virtual clock of one shard.
    ///
    /// # Panics
    /// Panics when `shard >= config.shards`.
    pub fn shard_clock(&self, shard: usize) -> f64 {
        self.clocks[shard]
    }

    /// Fleet makespan: the furthest shard clock.
    pub fn makespan(&self) -> f64 {
        self.clocks.iter().fold(0.0, |a, &b| a.max(b))
    }

    /// Fleet-wide cache counters and residency gauges.
    pub fn cache_metrics(&self) -> &FleetCacheMetrics {
        &self.cache
    }

    /// Per-tenant serving metrics.
    ///
    /// # Panics
    /// Panics on an out-of-range id.
    pub fn tenant_metrics(&self, tenant: TenantId) -> &ServiceMetrics {
        &self.tenants[tenant.0].metrics
    }

    /// A tenant's session (matrix order, pattern, residency…).
    ///
    /// # Panics
    /// Panics on an out-of-range id.
    pub fn session(&self, tenant: TenantId) -> &Session {
        &self.tenants[tenant.0].session
    }

    /// Factor evictions a tenant has suffered.
    ///
    /// # Panics
    /// Panics on an out-of-range id.
    pub fn tenant_evictions(&self, tenant: TenantId) -> u64 {
        self.tenants[tenant.0].evictions
    }

    /// Wall-clock ms of analysis the tenant paid at admission — 0 on a
    /// plan-cache hit (the acceptance signal for pattern reuse).
    ///
    /// # Panics
    /// Panics on an out-of-range id.
    pub fn tenant_analyze_wall_ms(&self, tenant: TenantId) -> f64 {
        self.tenants[tenant.0].analyze_wall_ms
    }

    /// Distinct symbolic plans cached.
    pub fn plans_cached(&self) -> usize {
        self.plans.len()
    }

    /// Per-request spans (`{tenant}/job-{id}`, arrival → completion, rank =
    /// shard) accumulated over the fleet's lifetime, for the
    /// flight-recorder profile.
    pub fn request_spans(&self) -> &[TraceEvent] {
        &self.request_spans
    }

    /// Set (or replace) a tenant's latency objective. Replacing the policy
    /// resets the tenant's good/bad tallies — compliance is judged against
    /// one policy at a time. The default policy admitted with the tenant
    /// has an unbounded objective, so nothing burns until this is called.
    ///
    /// # Panics
    /// Panics on an out-of-range id.
    pub fn set_slo(&mut self, tenant: TenantId, policy: SloPolicy) {
        self.tenants[tenant.0].slo = SloTracker::new(policy);
    }

    /// A tenant's SLO tracker (policy, compliance, burn rate).
    ///
    /// # Panics
    /// Panics on an out-of-range id.
    pub fn slo(&self, tenant: TenantId) -> &SloTracker {
        &self.tenants[tenant.0].slo
    }

    /// Health events the fleet watchdog has raised so far.
    pub fn health_events(&self) -> &[HealthEvent] {
        self.watchdog.events()
    }

    /// Immutable snapshot of every live instrument (values + ring series).
    pub fn telemetry_snapshot(&self) -> TelemetrySnapshot {
        self.tel.snapshot()
    }

    /// Prometheus-style text exposition of the live instruments.
    pub fn render_telemetry_text(&self) -> String {
        self.tel.render_text()
    }

    /// The complete live-telemetry document `sympack-top` renders: schema
    /// header, per-tenant serving/SLO state, the instrument snapshot and
    /// the health event stream. Byte-deterministic for a fixed workload:
    /// every figure is a count or a virtual time, collections iterate in
    /// admission or sorted key order, and wall-clock values (the tenants'
    /// `analyze_wall_ms`) are deliberately excluded — those live in
    /// [`Fleet::metrics_json`], which is not replay-compared.
    pub fn telemetry_json(&self) -> String {
        let mut tenants = Arr::new();
        for t in &self.tenants {
            tenants.push(
                Obj::new()
                    .str("tenant", &t.name)
                    .u64("shard", t.shard as u64)
                    .f64("weight", t.weight)
                    .u64("evictions", t.evictions)
                    .u64("pending", t.pending.len() as u64)
                    .bool("resident", t.session.is_resident())
                    .u64("jobs_submitted", t.metrics.jobs_submitted)
                    .u64("jobs_rejected", t.metrics.jobs_rejected)
                    .u64("jobs_served", t.metrics.jobs_served)
                    .u64("batches", t.metrics.batches)
                    .u64("refactorizations", t.metrics.refactorizations)
                    .raw("latency", &t.metrics.latency.to_json())
                    .raw("slo", &t.slo.to_json())
                    .finish(),
            );
        }
        Obj::new()
            .str("schema", SNAPSHOT_SCHEMA)
            .str("kind", "fleet")
            .f64("makespan", self.makespan())
            .raw("cache", &self.cache.to_json())
            .raw("tenants", &tenants.finish())
            .raw("telemetry", &self.telemetry_snapshot().to_json())
            .raw(
                "health",
                &sympack_trace::health::health_events_json(self.watchdog.events()),
            )
            .finish()
    }

    /// Serialize the fleet's metrics: cache counters plus one entry per
    /// tenant (admission order) with its shard, weight, evictions, analyze
    /// wall ms and serving metrics.
    pub fn metrics_json(&self) -> String {
        let mut tenants = Arr::new();
        for t in &self.tenants {
            tenants.push(
                Obj::new()
                    .str("tenant", &t.name)
                    .u64("shard", t.shard as u64)
                    .f64("weight", t.weight)
                    .u64("evictions", t.evictions)
                    .f64("analyze_wall_ms", t.analyze_wall_ms)
                    .raw("metrics", &t.metrics.to_json())
                    .finish(),
            );
        }
        Obj::new()
            .raw("cache", &self.cache.to_json())
            .f64("makespan", self.makespan())
            .raw("tenants", &tenants.finish())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sympack_sparse::gen::laplacian_2d;
    use sympack_sparse::vecops::test_rhs;

    fn opts(p: usize) -> SolverOptions {
        SolverOptions {
            n_nodes: 1,
            ranks_per_node: p,
            deterministic: true,
            ..Default::default()
        }
    }

    fn config() -> FleetConfig {
        FleetConfig {
            shards: 2,
            factor_budget_bytes: 0,
            max_pending_per_tenant: 16,
            max_batch: 4,
            quantum: 2.0,
        }
    }

    #[test]
    fn plan_cache_hits_on_repeated_pattern() {
        let mut fleet = Fleet::new(&opts(2), config());
        let a = laplacian_2d(7, 7);
        let t0 = fleet.admit("alice", &a, 1.0).unwrap();
        let t1 = fleet.admit("bob", &a, 1.0).unwrap();
        let other = laplacian_2d(6, 7);
        let t2 = fleet.admit("carol", &other, 1.0).unwrap();
        let c = fleet.cache_metrics();
        assert_eq!(c.plan_hits, 1);
        assert_eq!(c.plan_misses, 2);
        assert_eq!(fleet.plans_cached(), 2);
        // First sight pays analysis; the repeat does not.
        assert!(fleet.tenant_analyze_wall_ms(t0) > 0.0);
        assert_eq!(fleet.tenant_analyze_wall_ms(t1), 0.0);
        assert!(fleet.tenant_analyze_wall_ms(t2) > 0.0);
        // Shared plan: same pattern, same Arc.
        assert!(Arc::ptr_eq(
            &fleet.session(t0).symbolic_plan(),
            &fleet.session(t1).symbolic_plan()
        ));
    }

    #[test]
    fn duplicate_and_unknown_tenants_are_typed_errors() {
        let mut fleet = Fleet::new(&opts(1), config());
        let a = laplacian_2d(5, 5);
        fleet.admit("alice", &a, 1.0).unwrap();
        match fleet.admit("alice", &a, 1.0) {
            Err(FleetError::DuplicateTenant { tenant }) => assert_eq!(tenant, "alice"),
            other => panic!("expected DuplicateTenant, got {other:?}"),
        }
        match fleet.submit_at(TenantId(9), test_rhs(a.n()), 0.0) {
            Err(FleetError::UnknownTenant { .. }) => {}
            other => panic!("expected UnknownTenant, got {other:?}"),
        }
        assert_eq!(fleet.tenant_id("alice"), Some(TenantId(0)));
        assert_eq!(fleet.tenant_id("bob"), None);
    }

    #[test]
    fn per_tenant_queues_bound_admission_independently() {
        let mut cfg = config();
        cfg.max_pending_per_tenant = 2;
        let mut fleet = Fleet::new(&opts(1), cfg);
        let a = laplacian_2d(5, 5);
        let alice = fleet.admit("alice", &a, 1.0).unwrap();
        let bob = fleet.admit("bob", &a, 1.0).unwrap();
        fleet.submit_at(alice, test_rhs(a.n()), 0.0).unwrap();
        fleet.submit_at(alice, test_rhs(a.n()), 0.1).unwrap();
        match fleet.submit_at(alice, test_rhs(a.n()), 0.2) {
            Err(FleetError::QueueFull { tenant, capacity }) => {
                assert_eq!(tenant, "alice");
                assert_eq!(capacity, 2);
            }
            other => panic!("expected QueueFull, got {other:?}"),
        }
        // A full neighbour queue does not block other tenants.
        fleet.submit_at(bob, test_rhs(a.n()), 0.2).unwrap();
        let done = fleet.drain().unwrap();
        assert_eq!(done.len(), 3);
    }

    #[test]
    fn wdrr_serves_hot_and_cold_tenants_by_weight() {
        let mut cfg = config();
        cfg.shards = 1; // one shard: strict scheduling contention
        cfg.max_batch = 4;
        cfg.quantum = 1.0;
        let mut fleet = Fleet::new(&opts(1), cfg);
        let a = laplacian_2d(6, 6);
        let hot = fleet.admit("hot", &a, 3.0).unwrap();
        let cold = fleet.admit("cold", &a, 1.0).unwrap();
        for i in 0..12 {
            fleet
                .submit_at(hot, test_rhs(a.n()), i as f64 * 0.01)
                .unwrap();
        }
        for i in 0..4 {
            fleet
                .submit_at(cold, test_rhs(a.n()), i as f64 * 0.01)
                .unwrap();
        }
        // Round 1: hot earns 3 credits, cold 1 — no starvation.
        let round = fleet.step().unwrap();
        let hot_served = round.iter().filter(|c| c.tenant == hot).count();
        let cold_served = round.iter().filter(|c| c.tenant == cold).count();
        assert_eq!(hot_served, 3);
        assert_eq!(cold_served, 1);
        // Drain the rest; everyone gets served, ~3:1 per round throughout.
        let rest = fleet.drain().unwrap();
        assert_eq!(round.len() + rest.len(), 16);
        assert_eq!(fleet.tenant_metrics(hot).jobs_served, 12);
        assert_eq!(fleet.tenant_metrics(cold).jobs_served, 4);
        // All solutions are correct.
        let b = test_rhs(a.n());
        for c in round.iter().chain(rest.iter()) {
            assert!(a.relative_residual(&c.x, &b) < 1e-10);
        }
    }

    #[test]
    fn shards_overlap_in_virtual_time() {
        let mut fleet = Fleet::new(&opts(1), config()); // 2 shards
        let a = laplacian_2d(6, 6);
        let alice = fleet.admit("alice", &a, 1.0).unwrap(); // shard 0
        let bob = fleet.admit("bob", &a, 1.0).unwrap(); // shard 1
        for i in 0..4 {
            fleet
                .submit_at(alice, test_rhs(a.n()), i as f64 * 0.01)
                .unwrap();
            fleet
                .submit_at(bob, test_rhs(a.n()), i as f64 * 0.01)
                .unwrap();
        }
        fleet.drain().unwrap();
        // Both shards advanced, and the fleet makespan is the max — less
        // than the serialized sum of both shard clocks.
        let (c0, c1) = (fleet.shard_clock(0), fleet.shard_clock(1));
        assert!(c0 > 0.0 && c1 > 0.0);
        assert_eq!(fleet.makespan(), c0.max(c1));
        assert!(fleet.makespan() < c0 + c1);
    }

    #[test]
    fn lru_eviction_keeps_residency_under_budget_and_rematerializes() {
        let a = laplacian_2d(8, 8);
        // Find one factor's size, then budget for roughly two of three.
        let probe = Session::new(&a, &opts(2)).unwrap();
        let one = probe.factor_bytes();
        assert!(one > 0);
        let mut cfg = config();
        cfg.shards = 1;
        cfg.factor_budget_bytes = 2 * one + one / 2;
        let mut fleet = Fleet::new(&opts(2), cfg);
        let tenants: Vec<TenantId> = ["alice", "bob", "carol"]
            .iter()
            .map(|name| fleet.admit(name, &a, 1.0).unwrap())
            .collect();
        // Three factors cannot all be resident: someone was evicted.
        let c = fleet.cache_metrics();
        assert!(c.factor_evictions >= 1, "evictions: {}", c.factor_evictions);
        assert!(c.resident_bytes <= cfg.factor_budget_bytes);
        assert!(c.resident_high_water_bytes <= cfg.factor_budget_bytes);
        // Serving the evicted tenant re-materializes transparently and the
        // answer is right.
        let b = test_rhs(a.n());
        for &t in &tenants {
            fleet.submit_at(t, b.clone(), 0.0).unwrap();
        }
        let done = fleet.drain().unwrap();
        assert_eq!(done.len(), 3);
        for c in &done {
            assert!(a.relative_residual(&c.x, &b) < 1e-10);
        }
        let c = fleet.cache_metrics();
        assert!(c.rematerializations >= 1);
        assert!(c.resident_bytes <= cfg.factor_budget_bytes);
        assert!(c.resident_high_water_bytes <= cfg.factor_budget_bytes);
        // Metrics JSON is balanced and names every tenant.
        let json = fleet.metrics_json();
        for name in ["alice", "bob", "carol"] {
            assert!(json.contains(&format!("\"tenant\":\"{name}\"")));
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn telemetry_document_tracks_slo_burn_and_health() {
        let mut cfg = config();
        cfg.shards = 1;
        cfg.max_batch = 1;
        cfg.max_pending_per_tenant = 4;
        let mut fleet = Fleet::new(&opts(1), cfg);
        let a = laplacian_2d(6, 6);
        let alice = fleet.admit("alice", &a, 1.0).unwrap();
        // Impossible objective: every served request burns error budget.
        fleet.set_slo(alice, SloPolicy::new(1e-12, 0.99));
        for i in 0..4 {
            fleet
                .submit_at(alice, test_rhs(a.n()), i as f64 * 0.01)
                .unwrap();
        }
        fleet.drain().unwrap();
        assert!(fleet.slo(alice).burn_rate() > 1.0);
        assert!(
            fleet
                .health_events()
                .iter()
                .any(|e| e.kind == sympack_trace::health::HealthKind::SloBurn
                    && e.subject == "alice"),
            "expected an SloBurn event, got {:?}",
            fleet.health_events()
        );
        // The document parses, carries the schema header, and every ring
        // series has nondecreasing timestamps.
        let doc = fleet.telemetry_json();
        let v = sympack_trace::json::parse(&doc).unwrap();
        assert_eq!(
            v.get("schema").and_then(|s| s.as_str()),
            Some("sympack-telemetry-v1")
        );
        assert_eq!(v.get("kind").and_then(|s| s.as_str()), Some("fleet"));
        let series = v
            .get("telemetry")
            .and_then(|t| t.get("series"))
            .and_then(|s| s.as_array())
            .expect("series section");
        assert!(!series.is_empty());
        for entry in series {
            let pts = entry.get("points").and_then(|p| p.as_array()).unwrap();
            let ts: Vec<f64> = pts
                .iter()
                .map(|p| p.as_array().unwrap()[0].as_f64().unwrap())
                .collect();
            assert!(ts.windows(2).all(|w| w[0] <= w[1]), "series went backwards");
        }
        // Text exposition names the per-tenant instruments.
        let text = fleet.render_telemetry_text();
        assert!(text.contains("sympack_fleet_jobs_served_total{tenant=\"alice\"} 4"));
        assert!(text.contains("sympack_fleet_resident_bytes"));
    }

    #[test]
    fn request_spans_carry_tenant_names_and_service_split() {
        let mut fleet = Fleet::new(&opts(1), config());
        let a = laplacian_2d(6, 6);
        let alice = fleet.admit("alice", &a, 1.0).unwrap();
        for i in 0..3 {
            fleet
                .submit_at(alice, test_rhs(a.n()), i as f64 * 0.1)
                .unwrap();
        }
        let done = fleet.drain().unwrap();
        let spans = fleet.request_spans();
        assert_eq!(spans.len(), done.len());
        for (span, job) in spans.iter().zip(&done) {
            assert_eq!(span.kind, SpanKind::Request);
            assert_eq!(span.name, format!("alice/job-{}", job.id));
            assert!(span.kernel <= span.dur + 1e-15, "service ≤ latency");
            assert!(span.kernel > 0.0);
        }
    }
}
