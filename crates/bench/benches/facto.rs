//! Wall-clock benchmarks of the full pipeline: analysis, symPACK
//! factorization+solve, and the right-looking baseline, on reduced
//! instances of the paper's three problems.

use sympack::{SolverOptions, SymPack};
use sympack_baseline::{baseline_factor_and_solve, BaselineOptions};
use sympack_bench::microbench::Sampler;
use sympack_bench::Problem;
use sympack_sparse::vecops::test_rhs;

fn bench_analysis(s: &Sampler) {
    for p in Problem::ALL {
        let a = p.matrix_quick();
        s.run("analysis", p.name(), 0, || {
            SymPack::analyze_only(&a, &SolverOptions::default())
        });
    }
}

fn bench_sympack(s: &Sampler) {
    for p in Problem::ALL {
        let a = p.matrix_quick();
        let b = test_rhs(a.n());
        s.run("sympack_factor_and_solve", p.name(), 0, || {
            SymPack::factor_and_solve(&a, &b, &SolverOptions::default())
        });
    }
}

fn bench_baseline(s: &Sampler) {
    for p in Problem::ALL {
        let a = p.matrix_quick();
        let b = test_rhs(a.n());
        s.run("baseline_factor_and_solve", p.name(), 0, || {
            baseline_factor_and_solve(&a, &b, &BaselineOptions::default())
        });
    }
}

fn main() {
    let s = Sampler {
        samples: 10,
        iters_per_sample: 1,
        warmup: 1,
    };
    bench_analysis(&s);
    bench_sympack(&s);
    bench_baseline(&s);
}
