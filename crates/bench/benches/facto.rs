//! Criterion benchmarks of the full pipeline (wall-clock): analysis,
//! symPACK factorization+solve, and the right-looking baseline, on reduced
//! instances of the paper's three problems.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sympack::{SolverOptions, SymPack};
use sympack_baseline::{baseline_factor_and_solve, BaselineOptions};
use sympack_bench::Problem;
use sympack_sparse::vecops::test_rhs;

fn bench_analysis(c: &mut Criterion) {
    let mut g = c.benchmark_group("analysis");
    g.sample_size(10);
    for p in Problem::ALL {
        let a = p.matrix_quick();
        g.bench_with_input(BenchmarkId::from_parameter(p.name()), &a, |bench, a| {
            bench.iter(|| SymPack::analyze_only(a, &SolverOptions::default()));
        });
    }
    g.finish();
}

fn bench_sympack(c: &mut Criterion) {
    let mut g = c.benchmark_group("sympack_factor_and_solve");
    g.sample_size(10);
    for p in Problem::ALL {
        let a = p.matrix_quick();
        let b = test_rhs(a.n());
        g.bench_with_input(BenchmarkId::from_parameter(p.name()), &a, |bench, a| {
            bench.iter(|| SymPack::factor_and_solve(a, &b, &SolverOptions::default()));
        });
    }
    g.finish();
}

fn bench_baseline(c: &mut Criterion) {
    let mut g = c.benchmark_group("baseline_factor_and_solve");
    g.sample_size(10);
    for p in Problem::ALL {
        let a = p.matrix_quick();
        let b = test_rhs(a.n());
        g.bench_with_input(BenchmarkId::from_parameter(p.name()), &a, |bench, a| {
            bench.iter(|| baseline_factor_and_solve(a, &b, &BaselineOptions::default()));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_analysis, bench_sympack, bench_baseline);
criterion_main!(benches);
