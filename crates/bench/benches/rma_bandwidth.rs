//! Criterion benchmark behind Fig. 5: flood of one-sided gets between two
//! ranks through the real runtime (wall-clock throughput of the substrate)
//! plus the modeled-bandwidth evaluation at the paper's payload points.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sympack_pgas::{GlobalPtr, MemKind, MemKindsMode, NetModel, PgasConfig, Runtime};

/// Drive a window of rgets through the actual runtime (two ranks) and
/// return the payload bytes moved — benches the substrate's real overhead.
fn flood_once(elems: usize, window: usize) -> u64 {
    let report = Runtime::run(PgasConfig::multi_node(2, 1), |rank| {
        if rank.id() == 0 {
            let ptr = rank.alloc(MemKind::Host, elems).unwrap();
            rank.write_local(&ptr, &vec![1.5; elems]);
            rank.rpc(1, move |r| {
                r.with_state::<Vec<GlobalPtr>, _>(|_, v| v.push(ptr));
            });
            rank.barrier();
            rank.barrier();
            0u64
        } else {
            rank.set_state(Vec::<GlobalPtr>::new());
            rank.barrier();
            while rank.progress() == 0 {
                std::thread::yield_now();
            }
            let ptr = rank.take_state::<Vec<GlobalPtr>>()[0];
            let mut bytes = 0u64;
            for _ in 0..window {
                let h = rank.rget(&ptr);
                bytes += h.wait(rank).len() as u64 * 8;
            }
            rank.barrier();
            bytes
        }
    });
    report.results[1]
}

fn bench_runtime_flood(c: &mut Criterion) {
    let mut g = c.benchmark_group("runtime_rget_flood");
    g.sample_size(10);
    for &elems in &[1024usize, 16 * 1024] {
        g.throughput(Throughput::Bytes((elems * 8 * 64) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(elems * 8), &elems, |bench, &elems| {
            bench.iter(|| flood_once(elems, 64));
        });
    }
    g.finish();
}

fn bench_model_eval(c: &mut Criterion) {
    // The cost-model evaluation itself (used millions of times per run).
    let mut g = c.benchmark_group("netmodel_eval");
    g.sample_size(30);
    for mode in [MemKindsMode::Native, MemKindsMode::Reference] {
        let m = NetModel { mode, ..NetModel::default() };
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{mode:?}")),
            &m,
            |bench, m| {
                bench.iter(|| {
                    let mut acc = 0.0;
                    for p in 4..23 {
                        acc += m.flood_bandwidth(
                            1usize << p,
                            64,
                            false,
                            MemKind::Host,
                            MemKind::Device,
                        );
                    }
                    acc
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_runtime_flood, bench_model_eval);
criterion_main!(benches);
