//! Benchmark behind Fig. 5: flood of one-sided gets between two ranks
//! through the real runtime (wall-clock throughput of the substrate) plus
//! the modeled-bandwidth evaluation at the paper's payload points.

use sympack_bench::microbench::Sampler;
use sympack_pgas::{GlobalPtr, MemKind, MemKindsMode, NetModel, PgasConfig, Runtime};

/// Drive a window of rgets through the actual runtime (two ranks) and
/// return the payload bytes moved — benches the substrate's real overhead.
fn flood_once(elems: usize, window: usize) -> u64 {
    let report = Runtime::run(PgasConfig::multi_node(2, 1), |rank| {
        if rank.id() == 0 {
            let ptr = rank.alloc(MemKind::Host, elems).unwrap();
            rank.write_local(&ptr, &vec![1.5; elems]);
            rank.rpc(1, move |r| {
                r.with_state::<Vec<GlobalPtr>, _>(|_, v| v.push(ptr));
            });
            rank.barrier();
            rank.barrier();
            0u64
        } else {
            rank.set_state(Vec::<GlobalPtr>::new());
            rank.barrier();
            while rank.progress() == 0 {
                std::thread::yield_now();
            }
            let ptr = rank.take_state::<Vec<GlobalPtr>>()[0];
            let mut bytes = 0u64;
            for _ in 0..window {
                let h = rank.rget(&ptr);
                bytes += h.wait(rank).len() as u64 * 8;
            }
            rank.barrier();
            bytes
        }
    });
    report.results[1]
}

fn bench_runtime_flood(s: &Sampler) {
    for &elems in &[1024usize, 16 * 1024] {
        s.run(
            "runtime_rget_flood",
            &format!("{}B", elems * 8),
            (elems * 64) as u64,
            || flood_once(elems, 64),
        );
    }
}

fn bench_model_eval(s: &Sampler) {
    // The cost-model evaluation itself (used millions of times per run).
    for mode in [MemKindsMode::Native, MemKindsMode::Reference] {
        let m = NetModel {
            mode,
            ..NetModel::default()
        };
        s.run("netmodel_eval", &format!("{mode:?}"), 0, || {
            let mut acc = 0.0;
            for p in 4..23 {
                acc += m.flood_bandwidth(1usize << p, 64, false, MemKind::Host, MemKind::Device);
            }
            acc
        });
    }
}

fn main() {
    let s = Sampler {
        samples: 10,
        ..Default::default()
    };
    bench_runtime_flood(&s);
    let s = Sampler {
        samples: 30,
        ..Default::default()
    };
    bench_model_eval(&s);
}
