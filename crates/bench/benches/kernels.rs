//! Wall-clock benchmarks of the dense BLAS-3/LAPACK kernels that carry all
//! of the factorization's arithmetic (not modeled time).

use sympack_bench::microbench::Sampler;
use sympack_dense::{flops, gemm_nt, potrf, syrk_lower, trsm_right_lower_trans, Mat};

fn bench_gemm(s: &Sampler) {
    for &n in &[64usize, 128, 256] {
        let a = Mat::from_fn(n, n, |r, c| ((r * 3 + c) % 7) as f64 - 3.0);
        let b = Mat::from_fn(n, n, |r, c| ((r + c * 5) % 11) as f64 - 5.0);
        let c0 = Mat::zeros(n, n);
        s.run("gemm_nt", &n.to_string(), flops::gemm(n, n, n), || {
            let mut cm = c0.clone();
            gemm_nt(&mut cm, &a, &b);
            cm
        });
    }
}

fn bench_syrk(s: &Sampler) {
    for &n in &[64usize, 128, 256] {
        let a = Mat::from_fn(n, n, |r, c| ((r * 3 + c) % 7) as f64 - 3.0);
        let c0 = Mat::zeros(n, n);
        s.run("syrk_lower", &n.to_string(), flops::syrk(n, n), || {
            let mut cm = c0.clone();
            syrk_lower(&mut cm, &a);
            cm
        });
    }
}

fn bench_trsm(s: &Sampler) {
    for &n in &[64usize, 128, 256] {
        let spd = Mat::spd_from(n, |r, c| ((r + 2 * c) % 5) as f64 - 2.0);
        let mut l = spd.clone();
        potrf(&mut l).unwrap();
        let b0 = Mat::from_fn(n, n, |r, c| ((r * 7 + c) % 13) as f64 - 6.0);
        s.run(
            "trsm_right_lower_trans",
            &n.to_string(),
            flops::trsm(n, n),
            || {
                let mut b = b0.clone();
                trsm_right_lower_trans(&mut b, &l);
                b
            },
        );
    }
}

fn bench_potrf(s: &Sampler) {
    for &n in &[64usize, 128, 256] {
        let spd = Mat::spd_from(n, |r, c| ((r * 5 + c * 3) % 9) as f64 - 4.0);
        s.run("potrf", &n.to_string(), flops::potrf(n), || {
            let mut a = spd.clone();
            potrf(&mut a).unwrap();
            a
        });
    }
}

fn main() {
    let s = Sampler {
        samples: 20,
        ..Default::default()
    };
    bench_gemm(&s);
    bench_syrk(&s);
    bench_trsm(&s);
    bench_potrf(&s);
}
