//! Criterion benchmarks of the dense BLAS-3/LAPACK kernels that carry all
//! of the factorization's arithmetic (wall-clock, not modeled time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sympack_dense::{flops, gemm_nt, potrf, syrk_lower, trsm_right_lower_trans, Mat};

fn bench_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm_nt");
    g.sample_size(20);
    for &n in &[64usize, 128, 256] {
        g.throughput(Throughput::Elements(flops::gemm(n, n, n)));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, &n| {
            let a = Mat::from_fn(n, n, |r, c| ((r * 3 + c) % 7) as f64 - 3.0);
            let b = Mat::from_fn(n, n, |r, c| ((r + c * 5) % 11) as f64 - 5.0);
            let c0 = Mat::zeros(n, n);
            bench.iter(|| {
                let mut cm = c0.clone();
                gemm_nt(&mut cm, &a, &b);
                cm
            });
        });
    }
    g.finish();
}

fn bench_syrk(c: &mut Criterion) {
    let mut g = c.benchmark_group("syrk_lower");
    g.sample_size(20);
    for &n in &[64usize, 128, 256] {
        g.throughput(Throughput::Elements(flops::syrk(n, n)));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, &n| {
            let a = Mat::from_fn(n, n, |r, c| ((r * 3 + c) % 7) as f64 - 3.0);
            let c0 = Mat::zeros(n, n);
            bench.iter(|| {
                let mut cm = c0.clone();
                syrk_lower(&mut cm, &a);
                cm
            });
        });
    }
    g.finish();
}

fn bench_trsm(c: &mut Criterion) {
    let mut g = c.benchmark_group("trsm_right_lower_trans");
    g.sample_size(20);
    for &n in &[64usize, 128, 256] {
        g.throughput(Throughput::Elements(flops::trsm(n, n)));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, &n| {
            let spd = Mat::spd_from(n, |r, c| ((r + 2 * c) % 5) as f64 - 2.0);
            let mut l = spd.clone();
            potrf(&mut l).unwrap();
            let b0 = Mat::from_fn(n, n, |r, c| ((r * 7 + c) % 13) as f64 - 6.0);
            bench.iter(|| {
                let mut b = b0.clone();
                trsm_right_lower_trans(&mut b, &l);
                b
            });
        });
    }
    g.finish();
}

fn bench_potrf(c: &mut Criterion) {
    let mut g = c.benchmark_group("potrf");
    g.sample_size(20);
    for &n in &[64usize, 128, 256] {
        g.throughput(Throughput::Elements(flops::potrf(n)));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, &n| {
            let spd = Mat::spd_from(n, |r, c| ((r * 5 + c * 3) % 9) as f64 - 4.0);
            bench.iter(|| {
                let mut a = spd.clone();
                potrf(&mut a).unwrap();
                a
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_gemm, bench_syrk, bench_trsm, bench_potrf);
criterion_main!(benches);
