//! Communication-family comparison (paper §2.3, Ashcraft's taxonomy):
//! fan-out (symPACK, 2D block-cyclic), fan-both (computation maps, 2D —
//! the original symPACK algorithm of the paper's ref. [15]), fan-in
//! aggregates (1D) and the right-looking panel broadcast (PaStiX-like,
//! 1D), on the same problem.
//!
//! ```text
//! cargo run --release -p sympack-bench --bin taxonomy -- [--quick] [--matrix flan|bone|thermal]
//! ```

use sympack::{SolverOptions, SymPack};
use sympack_baseline::{
    baseline_factor_and_solve, fanboth_factor_and_solve, fanin_factor_and_solve, BaselineOptions,
};
use sympack_bench::{fmt_secs, render_table, Problem};
use sympack_sparse::vecops::test_rhs;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let problem = args
        .iter()
        .position(|a| a == "--matrix")
        .and_then(|i| args.get(i + 1))
        .map(|s| Problem::from_name(s).expect("unknown matrix"))
        .unwrap_or(Problem::Flan);
    let a = if quick {
        problem.matrix_quick()
    } else {
        problem.matrix()
    };
    let b = test_rhs(a.n());
    println!(
        "Taxonomy comparison on {} (n={}, nnz={})\n",
        problem.name(),
        a.n(),
        a.nnz_full()
    );
    let nodes_list: &[usize] = if quick { &[1, 4] } else { &[1, 4, 16] };
    let mut rows = vec![vec![
        "Nodes".to_string(),
        "fan-out facto".to_string(),
        "fan-both facto".to_string(),
        "fan-in facto".to_string(),
        "right-looking facto".to_string(),
        "fan-out msgs".to_string(),
        "fan-both msgs".to_string(),
        "fan-in msgs".to_string(),
        "right-looking msgs".to_string(),
    ]];
    for &nodes in nodes_list {
        let ppn = 2;
        let so = SolverOptions {
            n_nodes: nodes,
            ranks_per_node: ppn,
            ..Default::default()
        };
        let bo = BaselineOptions {
            n_nodes: nodes,
            ranks_per_node: ppn,
            ..Default::default()
        };
        let fo = SymPack::factor_and_solve(&a, &b, &so);
        let fb = fanboth_factor_and_solve(&a, &b, &bo);
        let rl = baseline_factor_and_solve(&a, &b, &bo);
        let fi = fanin_factor_and_solve(&a, &b, &bo);
        for r in [
            fo.relative_residual,
            fb.relative_residual,
            rl.relative_residual,
            fi.relative_residual,
        ] {
            assert!(r < 1e-8);
        }
        rows.push(vec![
            nodes.to_string(),
            fmt_secs(fo.factor_time),
            fmt_secs(fb.factor_time),
            fmt_secs(fi.factor_time),
            fmt_secs(rl.factor_time),
            fo.stats.rpcs.to_string(),
            fb.stats.rpcs.to_string(),
            fi.stats.rpcs.to_string(),
            rl.stats.rpcs.to_string(),
        ]);
    }
    println!("{}", render_table(&rows));
    println!("fan-out overlaps fine-grained tasks; fan-both trades factor broadcasts");
    println!("against aggregates via a computation map; fan-in coalesces updates into");
    println!("fewer, larger, later messages; right-looking serializes on whole panels.");
}
