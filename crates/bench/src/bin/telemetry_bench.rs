//! Telemetry-plane bench: proves the live instruments are free (in virtual
//! time), deterministic (byte-identical snapshots at a fixed seed and rank
//! count) and cheap (wall-clock sampling overhead within budget), and
//! records the evidence in `BENCH_telemetry.json`.
//!
//! ```text
//! cargo run --release -p sympack-bench --bin telemetry_bench             # full sweep → BENCH_telemetry.json
//! cargo run --release -p sympack-bench --bin telemetry_bench -- --quick  # determinism gates only (CI PR job)
//! cargo run --release -p sympack-bench --bin telemetry_bench -- --check  # gate vs committed JSON
//! ```
//!
//! Three row families:
//!
//! * `fanout` — a deterministic-lockstep factor+solve at P ranks, run once
//!   without telemetry and twice with it. Gates: the two telemetry
//!   snapshots are byte-identical, and the factor/solve makespans are
//!   bit-equal to the untelemetered run (instruments never touch a virtual
//!   clock). The row pins the snapshot length and FNV-1a fingerprint.
//! * `fleet` — a seeded tenant mix through `Fleet::telemetry_json`, run
//!   twice; same byte-identity gate, plus the watchdog/SLO document
//!   structure.
//! * `overhead` — wall-clock cost of the telemetry plane: repeated
//!   factor+solve with and without instruments, best-of-N each. The
//!   committed percentage is validated (≤ the budget) by `--check` without
//!   re-measuring, so the gate never flakes on machine noise.
//!
//! Deterministic rows print floats as full-precision scientific strings;
//! `--check` re-derives them and compares byte-for-byte against the
//! committed file.

use std::fmt::Write as _;
use sympack::{SolverOptions, SymPack};
use sympack_fleet::{Fleet, FleetConfig};
use sympack_sparse::gen::laplacian_2d;
use sympack_trace::telemetry::SloPolicy;

/// Wall-clock overhead budget for the telemetry plane, percent.
const OVERHEAD_BUDGET_PCT: f64 = 2.0;

/// FNV-1a over the snapshot bytes: a cheap deterministic fingerprint that
/// makes snapshot drift visible in the committed row without committing
/// the whole document.
fn fnv64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn solver_opts(p: usize, telemetry: bool) -> SolverOptions {
    SolverOptions {
        n_nodes: 1,
        ranks_per_node: p,
        deterministic: true,
        telemetry,
        ..Default::default()
    }
}

fn rhs(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i + 1) as f64 * 0.17).sin()).collect()
}

/// One deterministic factor+solve with telemetry, gated against its
/// untelemetered twin and its own replay. Returns the JSON row.
fn fanout_case(p: usize) -> String {
    let a = laplacian_2d(20, 20);
    let b = vec![rhs(a.n())];

    let base = SymPack::try_factor_and_solve_multi(&a, &b, &solver_opts(p, false))
        .expect("baseline solve");
    let run = |_: usize| {
        let (result, tel) = SymPack::try_factor_and_solve_observed(&a, &b, &solver_opts(p, true));
        let report = result.expect("telemetry solve");
        let tel = tel.expect("telemetry requested");
        (report, tel.to_json())
    };
    let (r1, doc1) = run(0);
    let (r2, doc2) = run(1);

    // Gate 1: snapshots replay byte-for-byte at a fixed seed and P.
    assert_eq!(doc1, doc2, "fanout p={p}: snapshot not deterministic");
    // Gate 2: telemetry never moves a virtual clock — modeled times are
    // bit-equal with instruments on, off, and on again.
    assert_eq!(
        base.factor_time.to_bits(),
        r1.factor_time.to_bits(),
        "fanout p={p}: telemetry changed the factor makespan"
    );
    assert_eq!(
        base.solve_times[0].to_bits(),
        r1.solve_times[0].to_bits(),
        "fanout p={p}: telemetry changed the solve makespan"
    );
    assert_eq!(r1.factor_time.to_bits(), r2.factor_time.to_bits());
    assert!(
        doc1.contains("sympack_sched_tasks_total"),
        "fanout p={p}: scheduler instruments missing"
    );

    format!(
        "{{\"case\":\"fanout\",\"ranks\":{p},\"factor_time\":\"{:.17e}\",\
         \"solve_time\":\"{:.17e}\",\"clock_invariant\":true,\
         \"snapshot_bytes\":{},\"snapshot_fnv\":\"{:016x}\"}}",
        r1.factor_time,
        r1.solve_times[0],
        doc1.len(),
        fnv64(&doc1),
    )
}

/// One seeded fleet mix; returns its telemetry document.
fn fleet_mix() -> String {
    let opts = solver_opts(2, false);
    let config = FleetConfig {
        shards: 2,
        factor_budget_bytes: 0,
        max_pending_per_tenant: 16,
        max_batch: 4,
        quantum: 2.0,
    };
    let mut fleet = Fleet::new(&opts, config);
    let a = laplacian_2d(8, 8);
    let small = laplacian_2d(6, 6);
    let mats = [&a, &small, &a, &small];
    let mut ids = Vec::new();
    for (i, m) in mats.iter().enumerate() {
        let id = fleet
            .admit(&format!("t{i}"), m, 1.0 + (i % 2) as f64)
            .expect("admit");
        // A tight-but-feasible objective on even tenants, an impossible one
        // on tenant 3 so the SLO/health machinery shows up in the document.
        let objective = if i == 3 { 1e-9 } else { 1.0 };
        fleet.set_slo(id, SloPolicy::new(objective, 0.99));
        ids.push((id, m.n()));
    }
    for round in 0..3 {
        for (t, &(id, n)) in ids.iter().enumerate() {
            for k in 0..(t % 2) + 1 {
                let at = round as f64 * 0.05 + k as f64 * 0.001 + t as f64 * 0.0001;
                fleet.submit_at(id, rhs(n), at).expect("submit");
            }
        }
        fleet.step().expect("step");
    }
    fleet.drain().expect("drain");
    fleet.telemetry_json()
}

/// The fleet determinism gate and its row.
fn fleet_case() -> String {
    let doc1 = fleet_mix();
    let doc2 = fleet_mix();
    assert_eq!(doc1, doc2, "fleet: telemetry document not deterministic");
    assert!(
        doc1.contains("\"kind\":\"fleet\""),
        "fleet: wrong document kind"
    );
    assert!(
        doc1.contains("\"slo_burn\""),
        "fleet: impossible objective must raise an SloBurn health event"
    );
    let health_events = doc1.matches("\"kind\":\"slo_burn\"").count();
    format!(
        "{{\"case\":\"fleet\",\"tenants\":4,\"slo_burn_events\":{health_events},\
         \"snapshot_bytes\":{},\"snapshot_fnv\":\"{:016x}\"}}",
        doc1.len(),
        fnv64(&doc1),
    )
}

/// Wall-clock overhead of the telemetry plane (full mode only; the value
/// is machine-dependent, so `--check` validates the committed number
/// against the budget instead of re-measuring).
fn overhead_case() -> String {
    let a = laplacian_2d(48, 48);
    let b = vec![rhs(a.n())];
    let runs = 9;
    let wall = |telemetry: bool| -> f64 {
        let opts = solver_opts(2, telemetry);
        (0..runs)
            .map(|_| {
                let t0 = std::time::Instant::now();
                let r = SymPack::try_factor_and_solve_multi(&a, &b, &opts).expect("solve");
                assert!(r.relative_residuals[0] < 1e-10);
                t0.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };
    // Interleave a warmup of each flavor before timing; best-of-N on a
    // problem large enough (~50ms) that scheduler jitter stays well under
    // the budget being measured.
    wall(false);
    wall(true);
    let base = wall(false);
    let tel = wall(true);
    let overhead_pct = ((tel / base - 1.0) * 100.0).max(0.0);
    println!("overhead: baseline {base:.4}s, telemetry {tel:.4}s ({overhead_pct:.2}%)");
    assert!(
        overhead_pct <= OVERHEAD_BUDGET_PCT,
        "telemetry overhead {overhead_pct:.2}% over the {OVERHEAD_BUDGET_PCT}% budget"
    );
    format!(
        "{{\"case\":\"overhead\",\"runs\":{runs},\"overhead_pct\":\"{overhead_pct:.2}\",\
         \"budget_pct\":\"{OVERHEAD_BUDGET_PCT:.2}\"}}"
    )
}

fn deterministic_rows() -> Vec<String> {
    let mut rows = Vec::new();
    for p in [1, 2, 4] {
        rows.push(fanout_case(p));
        println!("fanout p={p}: deterministic, clock-invariant");
    }
    rows.push(fleet_case());
    println!("fleet mix: deterministic, slo burn visible");
    rows
}

fn bench_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_telemetry.json")
}

fn render(rows: &[String]) -> String {
    let mut out = String::from("[\n");
    for (i, row) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(out, "{row}{sep}");
    }
    out.push_str("]\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");

    if quick {
        // CI PR smoke: every determinism/clock gate, no wall-clock
        // measurement (debug builds and shared runners are too noisy).
        deterministic_rows();
        println!("quick gate passed");
        return;
    }

    if check {
        let committed =
            std::fs::read_to_string(bench_path()).expect("BENCH_telemetry.json not committed");
        for row in deterministic_rows() {
            assert!(
                committed.contains(&row),
                "row drifted from committed BENCH_telemetry.json:\n{row}"
            );
        }
        // The committed overhead figure must be inside the budget. It was
        // measured by the full sweep; re-measuring here would flake.
        let tag = "{\"case\":\"overhead\"";
        let line = committed
            .lines()
            .find(|l| l.starts_with(tag))
            .expect("overhead row missing from BENCH_telemetry.json");
        let key = "\"overhead_pct\":\"";
        let at = line.find(key).expect("overhead_pct present") + key.len();
        let end = at + line[at..].find('"').expect("terminated");
        let pct: f64 = line[at..end].parse().expect("overhead percentage");
        assert!(
            pct <= OVERHEAD_BUDGET_PCT,
            "committed overhead {pct}% over the {OVERHEAD_BUDGET_PCT}% budget"
        );
        println!("check gate passed (committed overhead {pct}%)");
        return;
    }

    // Full sweep: deterministic rows plus the measured overhead.
    let mut rows = deterministic_rows();
    rows.push(overhead_case());
    std::fs::write(bench_path(), render(&rows)).expect("write BENCH_telemetry.json");
    println!("wrote {} rows to BENCH_telemetry.json", rows.len());
}
