//! Design-choice ablations called out in DESIGN.md:
//!
//! 1. **2D block-cyclic vs 1D mapping** (§3.3's stated motivation),
//! 2. **RTQ scheduling policies** (§6 future work: LIFO vs FIFO vs
//!    critical-path),
//! 3. **GPU offload thresholds** (§4.2/§6: hybrid vs CPU-only vs
//!    GPU-always),
//! 4. **memory kinds** (§5.1: native vs reference transfers inside the
//!    actual solver, not just the microbenchmark).
//!
//! The RTQ sweep runs on the fan-out solver *and* on the taxonomy baselines
//! — the shared task runtime makes the queue policy a parameter of every
//! engine, not just symPACK's.

use sympack::{ProcGrid, RtqPolicy, SolverOptions, SymPack};
use sympack_baseline::{baseline_factor_and_solve, fanboth_factor_and_solve, BaselineOptions};
use sympack_bench::{fmt_secs, render_table, Problem};
use sympack_gpu::OffloadThresholds;
use sympack_pgas::MemKindsMode;
use sympack_sparse::vecops::test_rhs;

/// Physical thread scheduling perturbs the virtual makespan by a few
/// percent run-to-run; take the best of three runs per configuration, as
/// the paper does across processes-per-node choices.
fn best_of<T>(mut run: impl FnMut() -> (f64, T)) -> (f64, T) {
    let mut best = run();
    for _ in 0..2 {
        let cand = run();
        if cand.0 < best.0 {
            best = cand;
        }
    }
    best
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let problem = Problem::Flan;
    let a = if quick {
        problem.matrix_quick()
    } else {
        problem.matrix()
    };
    let b = test_rhs(a.n());
    let nodes = 8;
    let base = SolverOptions {
        n_nodes: nodes,
        ranks_per_node: 2,
        ..Default::default()
    };
    println!(
        "Ablations on {} (n={}), {} nodes x {} ranks\n",
        problem.name(),
        a.n(),
        nodes,
        base.ranks_per_node
    );

    // 1. Mapping.
    let p = nodes * base.ranks_per_node;
    let mut rows = vec![vec!["Mapping".into(), "facto".into(), "solve".into()]];
    for (name, grid) in [
        ("2D block-cyclic (paper)", ProcGrid::squarest(p)),
        ("1D column-cyclic", ProcGrid::one_dimensional(p)),
    ] {
        let (_, r) = best_of(|| {
            let r = SymPack::factor_and_solve(
                &a,
                &b,
                &SolverOptions {
                    grid: Some(grid),
                    ..base.clone()
                },
            );
            assert!(r.relative_residual < 1e-8);
            (r.factor_time, r)
        });
        rows.push(vec![
            name.into(),
            fmt_secs(r.factor_time),
            fmt_secs(r.solve_time),
        ]);
    }
    println!("{}", render_table(&rows));

    // 2. RTQ policy.
    let mut rows = vec![vec!["RTQ policy".into(), "facto".into(), "solve".into()]];
    for (name, policy) in [
        ("LIFO (paper)", RtqPolicy::Lifo),
        ("FIFO", RtqPolicy::Fifo),
        ("critical-path", RtqPolicy::CriticalPath),
    ] {
        let (_, r) = best_of(|| {
            let r = SymPack::factor_and_solve(
                &a,
                &b,
                &SolverOptions {
                    rtq_policy: policy,
                    ..base.clone()
                },
            );
            assert!(r.relative_residual < 1e-8);
            (r.factor_time, r)
        });
        rows.push(vec![
            name.into(),
            fmt_secs(r.factor_time),
            fmt_secs(r.solve_time),
        ]);
    }
    println!("{}", render_table(&rows));

    // 2b. RTQ policy on the baselines (same runtime, different engines).
    let bbase = BaselineOptions {
        n_nodes: nodes,
        ranks_per_node: base.ranks_per_node,
        ..Default::default()
    };
    let mut rows = vec![vec![
        "RTQ policy (baselines)".into(),
        "right-looking facto".into(),
        "fan-both facto".into(),
    ]];
    for (name, policy) in [
        ("LIFO", RtqPolicy::Lifo),
        ("FIFO", RtqPolicy::Fifo),
        ("critical-path", RtqPolicy::CriticalPath),
    ] {
        let opts = BaselineOptions {
            rtq_policy: policy,
            ..bbase.clone()
        };
        let (rl_time, _) = best_of(|| {
            let r = baseline_factor_and_solve(&a, &b, &opts);
            assert!(r.relative_residual < 1e-8);
            (r.factor_time, ())
        });
        let (fb_time, _) = best_of(|| {
            let r = fanboth_factor_and_solve(&a, &b, &opts);
            assert!(r.relative_residual < 1e-8);
            (r.factor_time, ())
        });
        rows.push(vec![name.into(), fmt_secs(rl_time), fmt_secs(fb_time)]);
    }
    println!("{}", render_table(&rows));

    // 3. Offload thresholds.
    let mut rows = vec![vec![
        "Offload policy".into(),
        "facto".into(),
        "GPU calls (all ranks)".into(),
    ]];
    for (name, thresholds, gpu) in [
        ("hybrid, tuned thresholds (paper)", None, true),
        ("CPU only", None, false),
        (
            "GPU always (no thresholds)",
            Some(OffloadThresholds::gpu_always()),
            true,
        ),
        ("thresholds x4", Some(scaled_thresholds(4)), true),
        ("thresholds /4", Some(scaled_thresholds_div(4)), true),
    ] {
        let (_, r) = best_of(|| {
            let r = SymPack::factor_and_solve(
                &a,
                &b,
                &SolverOptions {
                    thresholds: thresholds.clone(),
                    gpu,
                    ..base.clone()
                },
            );
            assert!(r.relative_residual < 1e-8);
            (r.factor_time, r)
        });
        let gpu_calls: u64 = r
            .op_counts
            .iter()
            .map(|c| {
                sympack_gpu::Op::ALL
                    .iter()
                    .map(|&op| c.get(op).1)
                    .sum::<u64>()
            })
            .sum();
        rows.push(vec![
            name.into(),
            fmt_secs(r.factor_time),
            gpu_calls.to_string(),
        ]);
    }
    println!("{}", render_table(&rows));

    // 4. Memory kinds inside the solver.
    let mut rows = vec![vec!["Memory kinds".into(), "facto".into(), "solve".into()]];
    for (name, mode) in [
        ("native (GPUDirect RDMA)", MemKindsMode::Native),
        ("reference (host-staged)", MemKindsMode::Reference),
    ] {
        let mut opts = base.clone();
        opts.net.mode = mode;
        let (_, r) = best_of(|| {
            let r = SymPack::factor_and_solve(&a, &b, &opts);
            assert!(r.relative_residual < 1e-8);
            (r.factor_time, r)
        });
        rows.push(vec![
            name.into(),
            fmt_secs(r.factor_time),
            fmt_secs(r.solve_time),
        ]);
    }
    println!("{}", render_table(&rows));
}

fn scaled_thresholds(f: usize) -> OffloadThresholds {
    let t = OffloadThresholds::default();
    OffloadThresholds {
        potrf: t.potrf * f,
        trsm: t.trsm * f,
        syrk: t.syrk * f,
        gemm: t.gemm * f,
    }
}

fn scaled_thresholds_div(f: usize) -> OffloadThresholds {
    let t = OffloadThresholds::default();
    OffloadThresholds {
        potrf: t.potrf / f,
        trsm: t.trsm / f,
        syrk: t.syrk / f,
        gemm: t.gemm / f,
    }
}
