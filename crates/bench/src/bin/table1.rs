//! Table 1: characteristics of the evaluation matrices.
//!
//! The paper's table lists `n` and `nnz` of Flan_1565, boneS10 and thermal2;
//! this prints the same columns for the reproduction stand-ins (plus the
//! original values for reference), and the symbolic-factorization summary
//! the solvers will see.

use sympack::{SolverOptions, SymPack};
use sympack_bench::{render_table, Problem};

/// Original SuiteSparse values from the paper's Table 1.
fn paper_values(p: Problem) -> (u64, u64) {
    match p {
        Problem::Flan => (1_564_794, 114_165_372),
        Problem::Bone => (914_898, 40_878_708),
        Problem::Thermal => (1_228_045, 8_580_313),
        Problem::Audikw => (943_695, 77_651_847),
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut rows = vec![vec![
        "Name".to_string(),
        "Description".to_string(),
        "n".to_string(),
        "nnz".to_string(),
        "nnz/n".to_string(),
        "paper n".to_string(),
        "paper nnz".to_string(),
        "paper nnz/n".to_string(),
        "supernodes".to_string(),
        "nnz(L)".to_string(),
    ]];
    for p in Problem::ALL {
        let a = if quick { p.matrix_quick() } else { p.matrix() };
        let sf = SymPack::analyze_only(&a, &SolverOptions::default());
        let (pn, pnnz) = paper_values(p);
        rows.push(vec![
            p.name().to_string(),
            p.description().to_string(),
            a.n().to_string(),
            a.nnz_full().to_string(),
            format!("{:.1}", a.nnz_full() as f64 / a.n() as f64),
            pn.to_string(),
            pnnz.to_string(),
            format!("{:.1}", pnnz as f64 / pn as f64),
            sf.n_supernodes().to_string(),
            sf.l_nnz.to_string(),
        ]);
    }
    println!("Table 1: matrices used in the experiments (stand-ins vs paper originals)\n");
    println!("{}", render_table(&rows));
    println!("The stand-ins preserve the paper's structural contrast: the 3D problems");
    println!("(flan/bone) are an order of magnitude denser per row than thermal, which");
    println!("drives the fill, supernode-size and GPU-offload differences in Figs. 6-12.");
}
