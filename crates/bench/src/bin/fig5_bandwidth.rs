//! Fig. 5: RMA get flood bandwidth into GPU memory — native memory kinds
//! (GPUDirect RDMA) vs the reference (host-staged) implementation vs an
//! MPI-style path.
//!
//! Mirrors the paper's microbenchmark setup (§A.2.3): two nodes, one rank
//! each, windows of 64 in-flight gets from remote host memory into local
//! device memory, payloads from 16 B to 4 MiB. Bandwidths in MiB/s as in
//! the paper's plot, including the 25 GB/s limiting-wire-speed reference
//! line and the native/reference ratios the paper quotes (5.9x @ 8 KiB,
//! 2.3x ≥ 1 MiB).

use sympack_bench::render_table;
use sympack_pgas::{MemKind, MemKindsMode, NetModel};

const WINDOW: usize = 64;
const MIB: f64 = 1024.0 * 1024.0;

/// The MPI comparison series: CUDA-enabled Cray MPICH performs within 20% of
/// native memory kinds across the measured range (paper §5.1), modeled as a
/// slightly higher-latency native path.
fn mpi_model() -> NetModel {
    NetModel {
        net_latency: 3.0e-6,
        net_bandwidth: 22.0e9,
        ..NetModel::default()
    }
}

fn main() {
    let sizes: Vec<usize> = (4..=22).map(|p| 1usize << p).collect(); // 16 B .. 4 MiB
    let native = NetModel {
        mode: MemKindsMode::Native,
        ..NetModel::default()
    };
    let reference = NetModel {
        mode: MemKindsMode::Reference,
        ..NetModel::default()
    };
    let mpi = mpi_model();
    let mut rows = vec![vec![
        "Transfer size".to_string(),
        "Native MiB/s".to_string(),
        "Reference MiB/s".to_string(),
        "MPI MiB/s".to_string(),
        "Native/Reference".to_string(),
        "MPI/Native".to_string(),
    ]];
    let mut r8k = 0.0;
    let mut r_large = f64::NAN;
    for &bytes in &sizes {
        let bw = |m: &NetModel| {
            m.flood_bandwidth(bytes, WINDOW, false, MemKind::Host, MemKind::Device) / MIB
        };
        let (n, r, m) = (bw(&native), bw(&reference), bw(&mpi));
        if bytes == 8 << 10 {
            r8k = n / r;
        }
        if bytes == 4 << 20 {
            r_large = n / r;
        }
        rows.push(vec![
            fmt_size(bytes),
            format!("{n:.1}"),
            format!("{r:.1}"),
            format!("{m:.1}"),
            format!("{:.2}x", n / r),
            format!("{:.2}", m / n),
        ]);
    }
    println!("Fig. 5: RMA get flood bandwidth (remote host memory -> local GPU memory)");
    println!(
        "window = {WINDOW} gets, limiting wire speed 25 GB/s = {:.0} MiB/s\n",
        25.0e9 / MIB
    );
    println!("{}", render_table(&rows));
    println!("paper reference points: native/reference = 5.9x at 8 KiB (here {r8k:.1}x),");
    println!("2.3x for payloads over 1 MiB (here {r_large:.1}x); MPI within 20% of native.");
}

fn fmt_size(bytes: usize) -> String {
    if bytes >= 1 << 20 {
        format!("{} MiB", bytes >> 20)
    } else if bytes >= 1 << 10 {
        format!("{} KiB", bytes >> 10)
    } else {
        format!("{bytes} B")
    }
}
