//! Fig. 6: number of BLAS/LAPACK calls executed on the CPU vs the GPU for a
//! factorization and solve of the Flan stand-in, 4 ranks + 4 GPUs, default
//! offload thresholds, rank-0 data (as in the paper).

use sympack::{SolverOptions, SymPack};
use sympack_bench::{render_table, Problem};
use sympack_gpu::Op;
use sympack_sparse::vecops::test_rhs;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let p = Problem::Flan;
    let a = if quick { p.matrix_quick() } else { p.matrix() };
    let b = test_rhs(a.n());
    // Paper setup: 4 UPC++ processes, one node with 4 GPUs.
    let opts = SolverOptions {
        n_nodes: 1,
        ranks_per_node: 4,
        ..Default::default()
    };
    let r = SymPack::factor_and_solve(&a, &b, &opts);
    assert!(r.relative_residual < 1e-8);
    let rank0 = &r.op_counts[0];
    let mut rows = vec![vec![
        "Operation".to_string(),
        "CPU calls (rank 0)".to_string(),
        "GPU calls (rank 0)".to_string(),
        "GPU share".to_string(),
    ]];
    for op in Op::ALL {
        let (cpu, gpu) = rank0.get(op);
        let share = if cpu + gpu > 0 {
            100.0 * gpu as f64 / (cpu + gpu) as f64
        } else {
            0.0
        };
        rows.push(vec![
            op.name().to_string(),
            cpu.to_string(),
            gpu.to_string(),
            format!("{share:.1}%"),
        ]);
    }
    println!(
        "Fig. 6: CPU vs GPU calls, {} (n={}), 4 ranks + 4 GPUs, rank 0\n",
        p.name(),
        a.n()
    );
    println!("{}", render_table(&rows));
    // Paper observation: "for all four operation types, the majority of the
    // operations happen on the CPU" — verify and report.
    let mut all_majority_cpu = true;
    for op in Op::ALL {
        let (cpu, gpu) = rank0.get(op);
        if gpu > cpu {
            all_majority_cpu = false;
        }
    }
    println!(
        "majority of calls on CPU for every op (paper's observation): {}",
        if all_majority_cpu { "YES" } else { "NO" }
    );
    // And the aggregate across ranks for context.
    let mut total = sympack_gpu::OpCounts::default();
    for c in &r.op_counts {
        total.merge(c);
    }
    println!("total calls across all ranks: {}", total.total());
}
