//! Strong-scaling harness for the communication-aggregation layer:
//! per-destination signal coalescing + hierarchical (tree) broadcast
//! versus the historical flat fan-out, at large virtual rank counts.
//!
//! ```text
//! cargo run --release -p sympack-bench --bin scaling_bench            # full sweep → BENCH_scaling.json
//! cargo run --release -p sympack-bench --bin scaling_bench -- --quick # P=64 smoke + byte assertion (CI PR job)
//! cargo run --release -p sympack-bench --bin scaling_bench -- --check # regression gate vs committed JSON
//! ```
//!
//! Every run is deterministic lockstep with NIC-injection modeling on, so
//! the recorded makespans and byte counts are bit-stable: the full sweep
//! rewrites `BENCH_scaling.json` reproducibly, and `--check` re-derives
//! the cheap rows and compares them byte-for-byte against the committed
//! file (a `sympack-prof diff`-style gate) before validating the scaling
//! invariants on the expensive rows:
//!
//! * tree broadcast moves ≥ 2× fewer net bytes than flat at P = 256 on at
//!   least two zoo matrices, with makespan no worse (≤ 1.02×);
//! * comm-matrix byte totals equal `net_bytes + intra_bytes` exactly at
//!   every P (frame/rget conservation).

use std::fmt::Write as _;
use sympack::{BcastTopology, CoalesceConfig, ProcGrid, SolverOptions, SymPack};
use sympack_bench::Problem;
use sympack_pgas::NetModel;
use sympack_sparse::vecops::test_rhs;

/// Target ranks per node for the sweep: a dual-socket 128-core node, the
/// class of machine the paper's Perlmutter runs use per-node rank counts
/// toward. Fat nodes are what make node-grouped broadcast pay: the more
/// consumers share a node, the more remote fetches collapse into one
/// leader fetch plus intra-node forwards.
const RPN: usize = 128;

/// Node count for a sweep at `p` ranks: `p / RPN` nodes, floored at two
/// so even the small P = 64 row crosses a real network boundary instead
/// of degenerating to a single-node (all-intra) run.
fn nodes_for(p: usize) -> (usize, usize) {
    let n_nodes = (p / RPN).max(2);
    assert!(p.is_multiple_of(n_nodes));
    (n_nodes, p / n_nodes)
}

/// Tree fan-out per position.
const ARITY: usize = 4;

/// Coalescing quantum for the sweep. Longer than the library default: at
/// hundreds of ranks the fan-out bursts are deep enough that holding
/// sub-frames 20 µs packs several per frame (amortizing the per-message
/// envelope) without stalling the critical path.
const QUANTUM_SECS: f64 = 20.0e-6;

/// Makespan slack for the "no worse" gate: relay hops may add latency in
/// the pipeline tail, but never more than this factor.
const MAKESPAN_SLACK: f64 = 1.02;

/// One measured configuration (a row of `BENCH_scaling.json`).
struct Row {
    matrix: &'static str,
    p: usize,
    topology: &'static str,
    makespan: f64,
    net_bytes: u64,
    intra_bytes: u64,
    max_rank_net_bytes: u64,
    crit_len: f64,
    frames: u64,
    frame_subs: u64,
}

impl Row {
    /// Bit-stable JSON line: fixed field order, floats in full-precision
    /// scientific notation so identical f64 bits give identical text.
    fn to_json(&self) -> String {
        format!(
            "{{\"matrix\":\"{}\",\"p\":{},\"topology\":\"{}\",\"makespan\":\"{:.17e}\",\
             \"net_bytes\":{},\"intra_bytes\":{},\"max_rank_net_bytes\":{},\
             \"crit_len\":\"{:.17e}\",\"frames\":{},\"frame_subs\":{}}}",
            self.matrix,
            self.p,
            self.topology,
            self.makespan,
            self.net_bytes,
            self.intra_bytes,
            self.max_rank_net_bytes,
            self.crit_len,
            self.frames,
            self.frame_subs,
        )
    }
}

/// Run one factor+solve at `p` ranks under `topology`, collecting the
/// scaling metrics. Tree runs enable coalescing too — the full
/// aggregation layer — while flat is the historical wire pattern.
fn run_config(problem: Problem, p: usize, tree: bool) -> Row {
    run_config_grid(problem, p, tree, false)
}

fn run_config_grid(problem: Problem, p: usize, tree: bool, tiled: bool) -> Row {
    let a = problem.matrix_scaling();
    let b = test_rhs(a.n());
    let (n_nodes, rpn) = nodes_for(p);
    let opts = SolverOptions {
        n_nodes,
        ranks_per_node: rpn,
        net: NetModel {
            model_injection: true,
            ..NetModel::default()
        },
        deterministic: true,
        trace: true,
        bcast: if tree {
            BcastTopology::Tree { arity: ARITY }
        } else {
            BcastTopology::Flat
        },
        coalesce: tree.then(|| CoalesceConfig {
            quantum_secs: QUANTUM_SECS,
            ..CoalesceConfig::default()
        }),
        // Tree runs schedule comm-aware: tasks whose broadcasts fan widest
        // go first, so relay hops overlap with local factor work instead
        // of serializing behind it.
        rtq_policy: if tree {
            sympack::RtqPolicy::CommAware
        } else {
            SolverOptions::default().rtq_policy
        },
        // `--probe` ablation knob only: the committed sweep keeps the
        // historical row-major placement on both topologies so the flat →
        // tree delta is purely the comm layer, not a placement change.
        grid: tiled.then(|| ProcGrid::node_tiled(p, rpn)),
        ..Default::default()
    };
    let r = SymPack::factor_and_solve(&a, &b, &opts);
    assert!(
        r.relative_residual < 1e-8,
        "{} P={p} tree={tree}: residual {}",
        problem.name(),
        r.relative_residual
    );
    let profile = r.profile.as_ref().expect("trace enabled");
    // Byte conservation: the P×P comm matrix must account for every byte
    // the global counters saw, at every rank count.
    let matrix_total: u64 = profile.comm.bytes.iter().sum();
    assert_eq!(
        matrix_total,
        r.stats.net_bytes + r.stats.intra_bytes,
        "{} P={p} tree={tree}: comm matrix loses bytes",
        problem.name()
    );
    // Max per-rank *network* egress: the NIC-serialization hot spot the
    // tree exists to flatten.
    let node_of = |rank: usize| rank / rpn;
    let max_rank_net_bytes = (0..p)
        .map(|src| {
            (0..p)
                .filter(|&dst| node_of(dst) != node_of(src))
                .map(|dst| profile.comm.bytes_between(src, dst))
                .sum::<u64>()
        })
        .max()
        .unwrap_or(0);
    Row {
        matrix: problem.name(),
        p,
        topology: if tree { "tree" } else { "flat" },
        makespan: r.factor_time,
        net_bytes: r.stats.net_bytes,
        intra_bytes: r.stats.intra_bytes,
        max_rank_net_bytes,
        crit_len: profile.crit_len,
        frames: r.stats.frames,
        frame_subs: r.stats.frame_subs,
    }
}

/// Assert the headline gate on one (flat, tree) pair at P = 256:
/// ≥ 2× net-byte reduction with makespan no worse. Returns whether the
/// pair passed (the sweep requires ≥ 2 passing matrices).
fn gate_256(flat: &Row, tree: &Row) -> bool {
    assert_eq!((flat.matrix, flat.p), (tree.matrix, tree.p));
    let reduction = flat.net_bytes as f64 / tree.net_bytes.max(1) as f64;
    let makespan_ok = tree.makespan <= flat.makespan * MAKESPAN_SLACK;
    println!(
        "  gate {} P={}: net bytes {} -> {} ({reduction:.2}x), makespan {:.3e} -> {:.3e} ({})",
        flat.matrix,
        flat.p,
        flat.net_bytes,
        tree.net_bytes,
        flat.makespan,
        tree.makespan,
        if makespan_ok { "ok" } else { "WORSE" },
    );
    reduction >= 2.0 && makespan_ok
}

fn render(rows: &[Row]) -> String {
    let mut out = String::from("[\n");
    for (i, row) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(out, "{}{}", row.to_json(), sep);
    }
    out.push_str("]\n");
    out
}

fn bench_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_scaling.json")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");

    if let Some(at) = args.iter().position(|a| a == "--probe") {
        // Tuning aid: decompose topology vs placement on one matrix/P.
        let problem = Problem::from_name(&args[at + 1]).expect("matrix name");
        let p: usize = args[at + 2].parse().expect("rank count");
        for (tree, tiled) in [(false, false), (false, true), (true, false), (true, true)] {
            let r = run_config_grid(problem, p, tree, tiled);
            println!(
                "{} {}: makespan {:.3e}s net {} B intra {} B max-rank {} B frames {} subs {}",
                if tree { "tree" } else { "flat" },
                if tiled { "tiled" } else { "rowmaj" },
                r.makespan,
                r.net_bytes,
                r.intra_bytes,
                r.max_rank_net_bytes,
                r.frames,
                r.frame_subs,
            );
        }
        return;
    }

    if quick {
        // CI PR smoke: one matrix at P = 64, flat vs tree, bytes must drop.
        let flat = run_config(Problem::Thermal, 64, false);
        let tree = run_config(Problem::Thermal, 64, true);
        let reduction = flat.net_bytes as f64 / tree.net_bytes.max(1) as f64;
        println!(
            "quick P=64 thermal: net bytes {} -> {} ({reduction:.2}x), \
             makespan {:.3e} -> {:.3e}",
            flat.net_bytes, tree.net_bytes, flat.makespan, tree.makespan
        );
        assert!(
            tree.net_bytes < flat.net_bytes,
            "tree broadcast must reduce net bytes at P=64"
        );
        assert!(
            tree.frames > 0,
            "coalescing must have shipped framed messages"
        );
        println!("quick gate passed");
        return;
    }

    if check {
        // Regression gate: the committed file must exist, its cheap (P=64)
        // rows must reproduce bit-for-bit, and its P=256 rows must satisfy
        // the scaling invariants.
        let committed =
            std::fs::read_to_string(bench_path()).expect("BENCH_scaling.json not committed");
        let mut fresh: Vec<Row> = Vec::new();
        for problem in Problem::ALL {
            fresh.push(run_config(problem, 64, false));
            fresh.push(run_config(problem, 64, true));
        }
        for row in &fresh {
            assert!(
                committed.contains(&row.to_json()),
                "P=64 row drifted from committed BENCH_scaling.json:\n{}",
                row.to_json()
            );
        }
        // Parse the committed P=256 net-byte pairs per matrix (fixed field
        // order makes this a plain scan, no JSON parser needed).
        let mut passes = 0;
        for problem in Problem::ALL {
            let find = |topo: &str| -> Option<(u64, f64)> {
                let tag = format!(
                    "\"matrix\":\"{}\",\"p\":256,\"topology\":\"{topo}\"",
                    problem.name()
                );
                let line = committed.lines().find(|l| l.contains(&tag))?;
                let grab = |key: &str| -> &str {
                    let at = line.find(key).expect("field present") + key.len();
                    let rest = &line[at..];
                    let end = rest.find([',', '}']).expect("terminated");
                    rest[..end].trim_matches('"')
                };
                Some((
                    grab("\"net_bytes\":").parse().expect("u64"),
                    grab("\"makespan\":\"").parse().expect("f64"),
                ))
            };
            let (Some((fb, fm)), Some((tb, tm))) = (find("flat"), find("tree")) else {
                panic!(
                    "{}: P=256 rows missing from BENCH_scaling.json",
                    problem.name()
                );
            };
            let reduction = fb as f64 / tb.max(1) as f64;
            let ok = reduction >= 2.0 && tm <= fm * MAKESPAN_SLACK;
            println!(
                "  check {} P=256: {reduction:.2}x net-byte reduction, makespan {:.3e} -> {:.3e}",
                problem.name(),
                fm,
                tm
            );
            passes += ok as u32;
        }
        assert!(
            passes >= 2,
            "scaling gate: need >= 2 matrices with >= 2x reduction at P=256, got {passes}"
        );
        println!("check gate passed ({passes}/3 matrices at >= 2x)");
        return;
    }

    // Full sweep: rewrite BENCH_scaling.json and run the gates.
    let ps: [usize; 3] = [64, 256, 1024];
    let mut rows: Vec<Row> = Vec::new();
    for problem in Problem::ALL {
        for p in ps {
            for tree in [false, true] {
                let t0 = std::time::Instant::now();
                let row = run_config(problem, p, tree);
                println!(
                    "{} P={p} {}: makespan {:.3e}s net {} B intra {} B max-rank {} B \
                     crit {:.3e}s frames {} ({:.1}s wall)",
                    problem.name(),
                    row.topology,
                    row.makespan,
                    row.net_bytes,
                    row.intra_bytes,
                    row.max_rank_net_bytes,
                    row.crit_len,
                    row.frames,
                    t0.elapsed().as_secs_f64()
                );
                rows.push(row);
            }
        }
    }
    let mut passes = 0;
    for problem in Problem::ALL {
        let pair: Vec<&Row> = rows
            .iter()
            .filter(|r| r.matrix == problem.name() && r.p == 256)
            .collect();
        passes += gate_256(pair[0], pair[1]) as u32;
    }
    assert!(
        passes >= 2,
        "scaling gate: need >= 2 matrices with >= 2x reduction at P=256, got {passes}"
    );
    let json = render(&rows);
    std::fs::write(bench_path(), &json).expect("write BENCH_scaling.json");
    println!(
        "wrote {} rows to BENCH_scaling.json; gate passed ({passes}/3 matrices at >= 2x)",
        rows.len()
    );
}
