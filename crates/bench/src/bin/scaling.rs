//! Figs. 7–12: strong scaling of factorization and triangular solve,
//! symPACK-rs versus the right-looking baseline, on the three evaluation
//! problems.
//!
//! ```text
//! cargo run --release -p sympack-bench --bin scaling -- \
//!     [--matrix flan|bone|thermal] [--phase facto|solve|both] [--quick]
//! ```
//!
//! For each node count the harness, like the paper (§5.3), tries several
//! ranks-per-node configurations and reports the best time per solver.

use sympack::{SolverOptions, SymPack};
use sympack_baseline::{baseline_factor_and_solve, BaselineOptions};
use sympack_bench::{fmt_secs, render_table, Problem};
use sympack_sparse::vecops::test_rhs;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let matrix = args
        .iter()
        .position(|a| a == "--matrix")
        .and_then(|i| args.get(i + 1))
        .map(|s| Problem::from_name(s).expect("unknown matrix"));
    let phase = args
        .iter()
        .position(|a| a == "--phase")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "both".to_string());
    let problems: Vec<Problem> = match matrix {
        Some(p) => vec![p],
        None => Problem::ALL.to_vec(),
    };
    let nodes: &[usize] = if quick {
        &[1, 2, 4]
    } else {
        &[1, 2, 4, 8, 16, 32, 64]
    };
    // The paper reports the best over several processes-per-node choices;
    // on big node counts use 1 rank/node to bound thread counts.
    for problem in problems {
        let a = if quick {
            problem.matrix_quick()
        } else {
            problem.matrix()
        };
        let b = test_rhs(a.n());
        println!(
            "\n=== {} — n={}, nnz={} ===",
            problem.name(),
            a.n(),
            a.nnz_full()
        );
        let mut rows = vec![vec![
            "Nodes".to_string(),
            "symPACK facto".to_string(),
            "PaStiX-like facto".to_string(),
            "facto speedup".to_string(),
            "symPACK solve".to_string(),
            "PaStiX-like solve".to_string(),
            "solve speedup".to_string(),
        ]];
        for &n_nodes in nodes {
            let ppn_choices: &[usize] = if n_nodes <= 4 { &[1, 2, 4] } else { &[1, 2] };
            let mut best_sp: Option<(f64, f64)> = None;
            let mut best_bl: Option<(f64, f64)> = None;
            for &ppn in ppn_choices {
                if n_nodes * ppn > 96 {
                    continue;
                }
                let sp = SymPack::factor_and_solve(
                    &a,
                    &b,
                    &SolverOptions {
                        n_nodes,
                        ranks_per_node: ppn,
                        ..Default::default()
                    },
                );
                assert!(sp.relative_residual < 1e-8, "symPACK residual blew up");
                let cand = (sp.factor_time, sp.solve_time);
                if best_sp.is_none_or(|(f, _)| cand.0 < f) {
                    best_sp = Some(cand);
                }
                let bl = baseline_factor_and_solve(
                    &a,
                    &b,
                    &BaselineOptions {
                        n_nodes,
                        ranks_per_node: ppn,
                        ..Default::default()
                    },
                );
                assert!(bl.relative_residual < 1e-8, "baseline residual blew up");
                let cand = (bl.factor_time, bl.solve_time);
                if best_bl.is_none_or(|(f, _)| cand.0 < f) {
                    best_bl = Some(cand);
                }
            }
            let (spf, sps) = best_sp.expect("at least one configuration ran");
            let (blf, bls) = best_bl.expect("at least one configuration ran");
            rows.push(vec![
                n_nodes.to_string(),
                fmt_secs(spf),
                fmt_secs(blf),
                format!("{:.2}x", blf / spf),
                fmt_secs(sps),
                fmt_secs(bls),
                format!("{:.2}x", bls / sps),
            ]);
        }
        let _ = &phase;
        println!("{}", render_table(&rows));
    }
    println!("(times are modeled makespans from the calibrated cost model; see EXPERIMENTS.md)");
}
