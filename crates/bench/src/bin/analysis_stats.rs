//! Structural analysis report for the evaluation problems: supernode and
//! block shape distributions, elimination-tree height/width (available
//! parallelism) and critical-path flops (the strong-scaling ceiling) — the
//! quantities that explain the scaling differences in Figs. 7-12.

use sympack::{SolverOptions, SymPack};
use sympack_bench::{render_table, Problem};
use sympack_sparse::stats::matrix_stats;
use sympack_symbolic::analysis_stats;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // Structural statistics of the inputs themselves.
    let mut mrows = vec![vec![
        "matrix".to_string(),
        "n".to_string(),
        "nnz".to_string(),
        "nnz/row".to_string(),
        "bandwidth".to_string(),
        "profile".to_string(),
        "max degree".to_string(),
        "diag-dominant rows".to_string(),
    ]];
    for p in Problem::ALL {
        let a = if quick { p.matrix_quick() } else { p.matrix() };
        let st = matrix_stats(&a);
        mrows.push(vec![
            p.name().to_string(),
            st.n.to_string(),
            st.nnz_full.to_string(),
            format!("{:.1}", st.avg_nnz_per_row),
            st.bandwidth.to_string(),
            st.profile.to_string(),
            st.degree.2.to_string(),
            format!("{}/{}", st.diagonally_dominant_rows, st.n),
        ]);
    }
    println!(
        "Input-matrix structure
"
    );
    println!("{}", render_table(&mrows));

    let mut rows = vec![vec![
        "matrix".to_string(),
        "n".to_string(),
        "supernodes".to_string(),
        "avg width".to_string(),
        "max width".to_string(),
        "blocks".to_string(),
        "avg rows".to_string(),
        "tree height".to_string(),
        "max level width".to_string(),
        "critical/total flops".to_string(),
    ]];
    for p in Problem::ALL {
        let a = if quick { p.matrix_quick() } else { p.matrix() };
        let sf = SymPack::analyze_only(&a, &SolverOptions::default());
        let st = analysis_stats(&sf);
        rows.push(vec![
            p.name().to_string(),
            st.n.to_string(),
            st.n_supernodes.to_string(),
            format!("{:.1}", st.sn_width.1),
            st.sn_width.2.to_string(),
            st.n_blocks.to_string(),
            format!("{:.1}", st.block_rows.1),
            st.tree_height.to_string(),
            st.level_widths
                .iter()
                .copied()
                .max()
                .unwrap_or(0)
                .to_string(),
            format!(
                "{:.1}%",
                100.0 * st.critical_path_flops as f64 / st.flops as f64
            ),
        ]);
    }
    println!("Structural analysis of the evaluation problems\n");
    println!("{}", render_table(&rows));
    println!("thermal's tiny supernodes and tall tree explain why it is the most");
    println!("communication-bound problem — and why the fan-out design gains most there.");
}
