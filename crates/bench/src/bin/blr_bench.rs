//! Block low-rank (BLR) compression benchmark: residual, factorization
//! makespan, published bytes and factor memory across a tolerance sweep,
//! versus the exact dense factorization.
//!
//! ```text
//! cargo run --release -p sympack-bench --bin blr_bench            # full sweep → BENCH_blr.json
//! cargo run --release -p sympack-bench --bin blr_bench -- --quick # small-matrix smoke (CI PR job)
//! cargo run --release -p sympack-bench --bin blr_bench -- --check # regression gate vs committed JSON
//! ```
//!
//! Every run is deterministic lockstep, so the recorded makespans, byte
//! counts and residuals are bit-stable: the full sweep rewrites
//! `BENCH_blr.json` reproducibly, and `--check` re-derives the cheap rows
//! and compares them byte-for-byte against the committed file before
//! validating the headline gates on the committed rows:
//!
//! * at `tol = 1e-8`, BLR achieves ≥ 1.3× factorization speedup and ≥ 2×
//!   published-byte reduction vs dense on at least two zoo matrices at
//!   P = 4, with relative residual ≤ 10× tol;
//! * dense rows (`tol = 0`) publish zero compressed blocks.
//!
//! The zoo pairs the two vector-FEM problems whose factors carry real
//! low-rank structure (`boneS10`, `audikw_1`) with two weakly-compressible
//! controls (`Flan_1565`, `thermal2`) that exercise the decline path.

use std::fmt::Write as _;
use sympack::{BlrConfig, SolverOptions, SymPack};
use sympack_bench::Problem;
use sympack_sparse::gen;
use sympack_sparse::vecops::test_rhs;
use sympack_sparse::SparseSym;

/// Rank layout of every run: P = 4 as 2 nodes × 2 ranks, CPU execution.
/// BLR pays off on CPU ranks, where update flops price at CPU rates; on
/// GPU ranks the dense updates are already throughput-cheap and the win
/// is bytes, not time (§14 of DESIGN.md).
const N_NODES: usize = 2;
const RPN: usize = 2;

/// Analyze options of the sweep: wider supernodes + amalgamation grow the
/// off-diagonal panels past the compression floor.
const MAX_SN_WIDTH: usize = 192;
const AMALGAMATION: f64 = 0.3;

/// Compression floor: panels with either dimension below this stay dense.
const MIN_BLOCK: usize = 16;

/// Refinement steps in approximate mode (tol > 0). Dense rows keep the
/// paper's refinement-off configuration so their results stay bit-identical
/// to the exact solver.
const REFINE_STEPS: usize = 2;

/// The tolerance sweep (0 = exact dense mode).
const TOLS: [f64; 5] = [0.0, 1e-10, 1e-8, 1e-6, 1e-4];

/// Headline-gate thresholds at `GATE_TOL`.
const GATE_TOL: f64 = 1e-8;
const GATE_SPEEDUP: f64 = 1.3;
const GATE_BYTES: f64 = 2.0;
const GATE_RESID_FACTOR: f64 = 10.0;

/// One measured configuration (a row of `BENCH_blr.json`).
struct Row {
    matrix: &'static str,
    tol: f64,
    p: usize,
    factor_time: f64,
    solve_time: f64,
    residual: f64,
    /// Bytes actually published (compressed blocks at `[U|V]` size).
    published_bytes: u64,
    /// Dense-equivalent bytes of the same publications.
    published_dense_equiv: u64,
    /// Retained factor memory across ranks (stored block size).
    factor_bytes: u64,
    net_bytes: u64,
    lr_blocks: u64,
    dense_blocks: u64,
    compressed: u64,
    declined: u64,
    lr_updates: u64,
    recompressed: u64,
}

impl Row {
    /// Bit-stable JSON line: fixed field order, floats in full-precision
    /// scientific notation so identical f64 bits give identical text.
    fn to_json(&self) -> String {
        format!(
            "{{\"matrix\":\"{}\",\"tol\":\"{:e}\",\"p\":{},\"factor_time\":\"{:.17e}\",\
             \"solve_time\":\"{:.17e}\",\"residual\":\"{:.17e}\",\"published_bytes\":{},\
             \"published_dense_equiv\":{},\"factor_bytes\":{},\"net_bytes\":{},\
             \"lr_blocks\":{},\"dense_blocks\":{},\"compressed\":{},\"declined\":{},\
             \"lr_updates\":{},\"recompressed\":{}}}",
            self.matrix,
            self.tol,
            self.p,
            self.factor_time,
            self.solve_time,
            self.residual,
            self.published_bytes,
            self.published_dense_equiv,
            self.factor_bytes,
            self.net_bytes,
            self.lr_blocks,
            self.dense_blocks,
            self.compressed,
            self.declined,
            self.lr_updates,
            self.recompressed,
        )
    }
}

fn solver_options(tol: f64) -> SolverOptions {
    SolverOptions {
        n_nodes: N_NODES,
        ranks_per_node: RPN,
        deterministic: true,
        gpu: false,
        analyze: sympack_symbolic::AnalyzeOptions {
            max_sn_width: MAX_SN_WIDTH,
            amalgamation_ratio: AMALGAMATION,
        },
        blr: BlrConfig {
            tol,
            min_block: MIN_BLOCK,
            max_rank: usize::MAX,
        },
        refine_steps: if tol > 0.0 { REFINE_STEPS } else { 0 },
        ..Default::default()
    }
}

/// Run one factor+solve and collect the BLR metrics.
fn run_config(problem: Problem, a: &SparseSym, tol: f64) -> Row {
    let b = test_rhs(a.n());
    let opts = solver_options(tol);
    let r = SymPack::try_factor_and_solve(a, &b, &opts)
        .unwrap_or_else(|e| panic!("{} tol={tol:e}: {e}", problem.name()));
    let mut publish = sympack::PublishStats::default();
    for p in &r.publish {
        publish.merge(p);
    }
    let mut blr = sympack_gpu::BlrCounters::default();
    for c in &r.blr_counts {
        blr.merge(c);
    }
    Row {
        matrix: problem.name(),
        tol,
        p: N_NODES * RPN,
        factor_time: r.factor_time,
        solve_time: r.solve_time,
        residual: r.relative_residual,
        published_bytes: publish.published_bytes(),
        published_dense_equiv: publish.dense_bytes + publish.lr_dense_equiv_bytes,
        factor_bytes: r.factor_bytes,
        net_bytes: r.stats.net_bytes,
        lr_blocks: publish.lr_blocks,
        dense_blocks: publish.dense_blocks,
        compressed: blr.compressed,
        declined: blr.declined,
        lr_updates: blr.lr_updates,
        recompressed: blr.recompressed,
    }
}

/// Smaller instances for the CI smoke: same structure, a few seconds total.
fn quick_matrix(problem: Problem) -> SparseSym {
    match problem {
        Problem::Bone => gen::bone_like(10, 10, 10),
        Problem::Audikw => gen::audikw_like(8, 8, 8),
        Problem::Flan => gen::flan_like(10, 10, 10),
        Problem::Thermal => gen::thermal_like(48, 48, 0.35, 20230),
    }
}

/// Apply the headline gate to one (dense, blr) pair at `GATE_TOL`. Returns
/// whether the pair passed (the sweep requires ≥ 2 passing matrices).
fn gate(dense: &Row, blr: &Row) -> bool {
    assert_eq!(dense.matrix, blr.matrix);
    let speedup = dense.factor_time / blr.factor_time;
    let reduction = dense.published_bytes as f64 / blr.published_bytes.max(1) as f64;
    let resid_ok = blr.residual <= GATE_RESID_FACTOR * GATE_TOL;
    println!(
        "  gate {}: speedup {speedup:.2}x, published bytes {} -> {} ({reduction:.2}x), \
         residual {:.2e} ({})",
        dense.matrix,
        dense.published_bytes,
        blr.published_bytes,
        blr.residual,
        if resid_ok { "ok" } else { "TOO LARGE" },
    );
    speedup >= GATE_SPEEDUP && reduction >= GATE_BYTES && resid_ok
}

fn render(rows: &[Row]) -> String {
    let mut out = String::from("[\n");
    for (i, row) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(out, "{}{}", row.to_json(), sep);
    }
    out.push_str("]\n");
    out
}

fn bench_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_blr.json")
}

/// Pull a field out of a committed JSON row (fixed field order makes this a
/// plain scan, no JSON parser needed).
fn grab<'l>(line: &'l str, key: &str) -> &'l str {
    let at = line.find(key).expect("field present") + key.len();
    let rest = &line[at..];
    let end = rest.find([',', '}']).expect("terminated");
    rest[..end].trim_matches('"')
}

/// Find the committed row for (matrix, tol) and return
/// (factor_time, residual, published_bytes).
fn committed_row(committed: &str, matrix: &str, tol: f64) -> (f64, f64, u64) {
    let tag = format!("\"matrix\":\"{matrix}\",\"tol\":\"{tol:e}\"");
    let line = committed
        .lines()
        .find(|l| l.contains(&tag))
        .unwrap_or_else(|| panic!("{matrix} tol={tol:e}: row missing from BENCH_blr.json"));
    (
        grab(line, "\"factor_time\":\"").parse().expect("f64"),
        grab(line, "\"residual\":\"").parse().expect("f64"),
        grab(line, "\"published_bytes\":").parse().expect("u64"),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");

    if quick {
        // CI PR smoke: small instances, dense vs tol=1e-8. Compression must
        // engage on the two rank-structured problems and every residual must
        // clear the gate.
        for problem in Problem::BLR_ZOO {
            let a = quick_matrix(problem);
            let dense = run_config(problem, &a, 0.0);
            let blr = run_config(problem, &a, GATE_TOL);
            assert_eq!(dense.lr_blocks, 0, "dense mode must not compress");
            assert!(
                blr.residual <= GATE_RESID_FACTOR * GATE_TOL,
                "{}: quick residual {:.2e}",
                problem.name(),
                blr.residual
            );
            println!(
                "quick {}: published {} -> {} ({:.2}x), residual {:.2e}, {} lr blocks",
                problem.name(),
                dense.published_bytes,
                blr.published_bytes,
                dense.published_bytes as f64 / blr.published_bytes.max(1) as f64,
                blr.residual,
                blr.lr_blocks,
            );
            if matches!(problem, Problem::Bone | Problem::Audikw) {
                assert!(
                    blr.published_bytes < dense.published_bytes,
                    "{}: compression must reduce published bytes",
                    problem.name()
                );
                assert!(
                    blr.lr_blocks > 0,
                    "{}: no blocks compressed",
                    problem.name()
                );
            }
        }
        println!("quick gate passed");
        return;
    }

    if check {
        // Regression gate: the committed file must exist, the cheap control
        // rows must reproduce bit-for-bit, and the committed gate rows must
        // still satisfy the headline thresholds.
        let committed =
            std::fs::read_to_string(bench_path()).expect("BENCH_blr.json not committed");
        for problem in [Problem::Flan, Problem::Thermal] {
            let a = problem.matrix_blr();
            for tol in [0.0, GATE_TOL] {
                let row = run_config(problem, &a, tol);
                assert!(
                    committed.contains(&row.to_json()),
                    "row drifted from committed BENCH_blr.json:\n{}",
                    row.to_json()
                );
            }
        }
        let mut passes = 0;
        for problem in Problem::BLR_ZOO {
            let (df, _, db) = committed_row(&committed, problem.name(), 0.0);
            let (bf, br, bb) = committed_row(&committed, problem.name(), GATE_TOL);
            let speedup = df / bf;
            let reduction = db as f64 / bb.max(1) as f64;
            let ok = speedup >= GATE_SPEEDUP
                && reduction >= GATE_BYTES
                && br <= GATE_RESID_FACTOR * GATE_TOL;
            println!(
                "  check {}: speedup {speedup:.2}x, byte reduction {reduction:.2}x, \
                 residual {br:.2e}",
                problem.name()
            );
            passes += ok as u32;
        }
        assert!(
            passes >= 2,
            "BLR gate: need >= 2 matrices passing at tol={GATE_TOL:e}, got {passes}"
        );
        println!("check gate passed ({passes}/4 matrices)");
        return;
    }

    // Full sweep: rewrite BENCH_blr.json and run the gates.
    let mut rows: Vec<Row> = Vec::new();
    for problem in Problem::BLR_ZOO {
        let a = problem.matrix_blr();
        for tol in TOLS {
            let t0 = std::time::Instant::now();
            let row = run_config(problem, &a, tol);
            println!(
                "{} tol={tol:e}: factor {:.3e}s solve {:.3e}s resid {:.2e} \
                 published {} B (dense-equiv {} B) factor-mem {} B \
                 lr/dense blocks {}/{} ({:.1}s wall)",
                problem.name(),
                row.factor_time,
                row.solve_time,
                row.residual,
                row.published_bytes,
                row.published_dense_equiv,
                row.factor_bytes,
                row.lr_blocks,
                row.dense_blocks,
                t0.elapsed().as_secs_f64()
            );
            rows.push(row);
        }
    }
    let mut passes = 0;
    for problem in Problem::BLR_ZOO {
        let find = |tol: f64| {
            rows.iter()
                .find(|r| r.matrix == problem.name() && r.tol == tol)
                .expect("row recorded")
        };
        passes += gate(find(0.0), find(GATE_TOL)) as u32;
    }
    assert!(
        passes >= 2,
        "BLR gate: need >= 2 matrices with >= {GATE_SPEEDUP}x speedup and \
         >= {GATE_BYTES}x byte reduction at tol={GATE_TOL:e}, got {passes}"
    );
    let json = render(&rows);
    std::fs::write(bench_path(), &json).expect("write BENCH_blr.json");
    println!(
        "wrote {} rows to BENCH_blr.json; gate passed ({passes}/4 matrices)",
        rows.len()
    );
}
