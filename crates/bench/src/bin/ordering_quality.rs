//! Ordering-quality comparison: factor nnz/flops for each ordering strategy
//! on the three evaluation problems — the study motivating the paper's use
//! of a (multilevel) nested-dissection ordering.

use sympack_bench::{render_table, Problem};
use sympack_ordering::{
    metrics, min_degree, nested_dissection, rcm, NdOptions, Permutation, SeparatorStrategy,
};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    for p in Problem::ALL {
        let a = if quick { p.matrix_quick() } else { p.matrix() };
        println!("\n=== {} (n={}) ===", p.name(), a.n());
        let mut rows = vec![vec![
            "ordering".to_string(),
            "nnz(L)".to_string(),
            "flops".to_string(),
            "time".to_string(),
        ]];
        let t0 = std::time::Instant::now();
        let nat = Permutation::identity(a.n());
        rows.push(row("natural", &a, &nat, t0));
        let t0 = std::time::Instant::now();
        let r = rcm(&a);
        rows.push(row("RCM", &a, &r, t0));
        let t0 = std::time::Instant::now();
        let md = min_degree(&a);
        rows.push(row("minimum degree", &a, &md, t0));
        let t0 = std::time::Instant::now();
        let ls = nested_dissection(
            &a,
            &NdOptions {
                strategy: SeparatorStrategy::LevelSet,
                ..Default::default()
            },
        );
        rows.push(row("ND (level-set)", &a, &ls, t0));
        let t0 = std::time::Instant::now();
        let ml = nested_dissection(
            &a,
            &NdOptions {
                strategy: SeparatorStrategy::Multilevel,
                ..Default::default()
            },
        );
        rows.push(row("ND (multilevel, Scotch-like)", &a, &ml, t0));
        println!("{}", render_table(&rows));
    }
}

fn row(
    name: &str,
    a: &sympack_sparse::SparseSym,
    p: &Permutation,
    t0: std::time::Instant,
) -> Vec<String> {
    let nnz = metrics::factor_nnz(a, p);
    let fl = metrics::factor_flops(a, p);
    vec![
        name.to_string(),
        nnz.to_string(),
        format!("{:.3e}", fl as f64),
        format!("{:?}", t0.elapsed()),
    ]
}
