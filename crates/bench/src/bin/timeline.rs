//! Task-timeline export: run a traced factorization and write a
//! Chrome/Perfetto trace (`results/timeline.json`) plus the assembled
//! flight-recorder profile — critical path, per-rank wait attribution and
//! comm matrix — the observability view of the fan-out scheduler (which
//! tasks overlapped, where ranks idled, who talked to whom). The shared
//! task runtime traces the baselines too, so a right-looking timeline
//! (`results/timeline_baseline.json`) is emitted alongside for a
//! side-by-side of the two schedules.
//!
//! ```text
//! cargo run --release -p sympack-bench --bin timeline -- \
//!     [--quick] [--deterministic] [--out PATH] [--profile-json PATH]
//! ```
//!
//! `--profile-json PATH` writes the fan-out run's Profile JSON (schema
//! `sympack-profile-v1`) for `sympack-prof`; with `--deterministic` the
//! run uses the lockstep scheduler, so the document is bit-stable across
//! machines — how the committed `BENCH_profile.json` baseline was made.

use sympack::{SolverOptions, SymPack};
use sympack_baseline::{baseline_factor_and_solve, BaselineOptions};
use sympack_bench::{render_table, Problem};
use sympack_sparse::vecops::test_rhs;
use sympack_trace::TraceEvent;

/// Print busy fractions and the per-category kernel-time split of a trace.
fn summarize(trace: &[TraceEvent], makespan: f64, n_ranks: usize) {
    // Busy = task execution only; comm spans overlap exec spans and would
    // double-count.
    let exec: Vec<TraceEvent> = trace
        .iter()
        .filter(|e| e.kind == sympack_trace::SpanKind::Exec)
        .cloned()
        .collect();
    let busy = sympack_trace::busy_fractions(&exec, makespan, n_ranks);
    let mut rows = vec![vec!["rank".to_string(), "busy fraction".to_string()]];
    for (rk, f) in busy.iter().enumerate() {
        rows.push(vec![rk.to_string(), format!("{:.1}%", f * 100.0)]);
    }
    println!("{}", render_table(&rows));
    let mut rows = vec![vec!["kernel".to_string(), "total time".to_string()]];
    for (cat, t) in sympack_trace::time_by_category(trace) {
        if t > 0.0 {
            rows.push(vec![cat.label().to_string(), format!("{:.3} ms", t * 1e3)]);
        }
    }
    println!("{}", render_table(&rows));
}

/// Write `content` at `out`, creating parent directories.
fn write_file(out: &str, content: &str, what: &str) {
    if let Some(dir) = std::path::Path::new(out).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(out, content).expect("write output");
    println!("{what} written to {out}");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let deterministic = args.iter().any(|a| a == "--deterministic");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out = flag("--out").unwrap_or_else(|| "results/timeline.json".to_string());
    let profile_json = flag("--profile-json");
    let p = Problem::Bone;
    let a = if quick { p.matrix_quick() } else { p.matrix() };
    let b = test_rhs(a.n());
    let opts = SolverOptions {
        n_nodes: 4,
        ranks_per_node: 2,
        trace: true,
        deterministic,
        ..Default::default()
    };
    let r = SymPack::factor_and_solve(&a, &b, &opts);
    assert!(r.relative_residual < 1e-8);
    let n_ranks = opts.n_nodes * opts.ranks_per_node;
    println!(
        "fan-out: traced {} tasks over {} ranks, factorization makespan {:.3} ms\n",
        r.trace.len(),
        n_ranks,
        r.factor_time * 1e3
    );
    summarize(&r.trace, r.factor_time, n_ranks);
    write_file(
        &out,
        &sympack_trace::to_chrome_json(&r.trace),
        "Chrome trace (open in chrome://tracing or ui.perfetto.dev)",
    );
    let profile = r.profile.expect("trace: true assembles the profile");
    sympack_trace::profile::check_invariants(&profile).expect("profile invariants");
    println!("\n{}", profile.render_report(10));
    if let Some(path) = &profile_json {
        write_file(path, &profile.to_json(), "Profile JSON (for sympack-prof)");
    }

    // The right-looking baseline through the same traced runtime.
    let bopts = BaselineOptions {
        n_nodes: opts.n_nodes,
        ranks_per_node: opts.ranks_per_node,
        trace: true,
        deterministic,
        ..Default::default()
    };
    let br = baseline_factor_and_solve(&a, &b, &bopts);
    assert!(br.relative_residual < 1e-8);
    println!(
        "\nright-looking baseline: traced {} tasks over {} ranks, factorization makespan {:.3} ms\n",
        br.trace.len(),
        n_ranks,
        br.factor_time * 1e3
    );
    summarize(&br.trace, br.factor_time, n_ranks);
    let bout = if out.ends_with(".json") {
        format!("{}_baseline.json", out.trim_end_matches(".json"))
    } else {
        format!("{out}_baseline")
    };
    write_file(
        &bout,
        &sympack_trace::to_chrome_json(&br.trace),
        "Chrome trace (open in chrome://tracing or ui.perfetto.dev)",
    );
    let bprofile = br.profile.expect("trace: true assembles the profile");
    sympack_trace::profile::check_invariants(&bprofile).expect("baseline profile invariants");
    println!("\n{}", bprofile.render_report(10));
}
