//! Task-timeline export: run a traced factorization and write a
//! Chrome/Perfetto trace (`results/timeline.json`) plus a busy-fraction and
//! per-category time summary — the observability view of the fan-out
//! scheduler (which tasks overlapped, where ranks idled).
//!
//! ```text
//! cargo run --release -p sympack-bench --bin timeline -- [--quick] [--out PATH]
//! ```

use sympack::{SolverOptions, SymPack};
use sympack_bench::{render_table, Problem};
use sympack_sparse::vecops::test_rhs;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "results/timeline.json".to_string());
    let p = Problem::Bone;
    let a = if quick { p.matrix_quick() } else { p.matrix() };
    let b = test_rhs(a.n());
    let opts = SolverOptions { n_nodes: 4, ranks_per_node: 2, trace: true, ..Default::default() };
    let r = SymPack::factor_and_solve(&a, &b, &opts);
    assert!(r.relative_residual < 1e-8);
    let n_ranks = opts.n_nodes * opts.ranks_per_node;
    println!(
        "traced {} tasks over {} ranks, factorization makespan {:.3} ms\n",
        r.trace.len(),
        n_ranks,
        r.factor_time * 1e3
    );
    // Busy fractions per rank.
    let busy = sympack_trace::busy_fractions(&r.trace, r.factor_time, n_ranks);
    let mut rows = vec![vec!["rank".to_string(), "busy fraction".to_string()]];
    for (rk, f) in busy.iter().enumerate() {
        rows.push(vec![rk.to_string(), format!("{:.1}%", f * 100.0)]);
    }
    println!("{}", render_table(&rows));
    // Category split.
    let mut rows = vec![vec!["kernel".to_string(), "total time".to_string()]];
    for (cat, t) in sympack_trace::time_by_category(&r.trace) {
        if t > 0.0 {
            rows.push(vec![cat.label().to_string(), format!("{:.3} ms", t * 1e3)]);
        }
    }
    println!("{}", render_table(&rows));
    if let Some(dir) = std::path::Path::new(&out).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&out, sympack_trace::to_chrome_json(&r.trace)).expect("write trace");
    println!("Chrome trace written to {out} (open in chrome://tracing or ui.perfetto.dev)");
}
