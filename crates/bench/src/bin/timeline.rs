//! Task-timeline export: run a traced factorization and write a
//! Chrome/Perfetto trace (`results/timeline.json`) plus a busy-fraction and
//! per-category time summary — the observability view of the fan-out
//! scheduler (which tasks overlapped, where ranks idled). The shared task
//! runtime traces the baselines too, so a right-looking timeline
//! (`results/timeline_baseline.json`) is emitted alongside for a
//! side-by-side of the two schedules.
//!
//! ```text
//! cargo run --release -p sympack-bench --bin timeline -- [--quick] [--out PATH]
//! ```

use sympack::{SolverOptions, SymPack};
use sympack_baseline::{baseline_factor_and_solve, BaselineOptions};
use sympack_bench::{render_table, Problem};
use sympack_sparse::vecops::test_rhs;
use sympack_trace::TraceEvent;

/// Print busy fractions and the per-category kernel-time split of a trace.
fn summarize(trace: &[TraceEvent], makespan: f64, n_ranks: usize) {
    let busy = sympack_trace::busy_fractions(trace, makespan, n_ranks);
    let mut rows = vec![vec!["rank".to_string(), "busy fraction".to_string()]];
    for (rk, f) in busy.iter().enumerate() {
        rows.push(vec![rk.to_string(), format!("{:.1}%", f * 100.0)]);
    }
    println!("{}", render_table(&rows));
    let mut rows = vec![vec!["kernel".to_string(), "total time".to_string()]];
    for (cat, t) in sympack_trace::time_by_category(trace) {
        if t > 0.0 {
            rows.push(vec![cat.label().to_string(), format!("{:.3} ms", t * 1e3)]);
        }
    }
    println!("{}", render_table(&rows));
}

/// Write `trace` as a Chrome/Perfetto JSON file at `out`.
fn write_trace(out: &str, trace: &[TraceEvent]) {
    if let Some(dir) = std::path::Path::new(out).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(out, sympack_trace::to_chrome_json(trace)).expect("write trace");
    println!("Chrome trace written to {out} (open in chrome://tracing or ui.perfetto.dev)");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "results/timeline.json".to_string());
    let p = Problem::Bone;
    let a = if quick { p.matrix_quick() } else { p.matrix() };
    let b = test_rhs(a.n());
    let opts = SolverOptions {
        n_nodes: 4,
        ranks_per_node: 2,
        trace: true,
        ..Default::default()
    };
    let r = SymPack::factor_and_solve(&a, &b, &opts);
    assert!(r.relative_residual < 1e-8);
    let n_ranks = opts.n_nodes * opts.ranks_per_node;
    println!(
        "fan-out: traced {} tasks over {} ranks, factorization makespan {:.3} ms\n",
        r.trace.len(),
        n_ranks,
        r.factor_time * 1e3
    );
    summarize(&r.trace, r.factor_time, n_ranks);
    write_trace(&out, &r.trace);

    // The right-looking baseline through the same traced runtime.
    let bopts = BaselineOptions {
        n_nodes: opts.n_nodes,
        ranks_per_node: opts.ranks_per_node,
        trace: true,
        ..Default::default()
    };
    let br = baseline_factor_and_solve(&a, &b, &bopts);
    assert!(br.relative_residual < 1e-8);
    println!(
        "\nright-looking baseline: traced {} tasks over {} ranks, factorization makespan {:.3} ms\n",
        br.trace.len(),
        n_ranks,
        br.factor_time * 1e3
    );
    summarize(&br.trace, br.factor_time, n_ranks);
    let bout = if out.ends_with(".json") {
        format!("{}_baseline.json", out.trim_end_matches(".json"))
    } else {
        format!("{out}_baseline")
    };
    write_trace(&bout, &br.trace);
}
