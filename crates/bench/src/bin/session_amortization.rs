//! Serving-layer economics: what a persistent [`Session`] buys over the
//! one-shot driver.
//!
//! ```text
//! cargo run --release -p sympack-bench --bin session_amortization [--quick]
//! ```
//!
//! Three tables:
//!
//! 1. **Batched panel solve vs per-vector** — virtual time of one
//!    `solve_batch` over `nrhs ∈ {4, 16, 64}` right-hand sides against the
//!    same columns solved one at a time. A panel solve issues the same
//!    message and task count as a single-vector solve, so the win grows
//!    with `nrhs`.
//! 2. **Numeric refactorization vs fresh factor-and-solve** — wall-clock
//!    cost of [`Session::refactorize`] (numeric phase only, symbolic state
//!    reused) against a fresh `SymPack::factor_and_solve` on the same
//!    pattern (which re-runs ordering, analysis, mapping and task-graph
//!    construction every time).
//! 3. **Amortization curve** — amortized virtual cost per served job as a
//!    [`Server`] batches a growing job count, against the one-shot cost.

use std::time::Instant;
use sympack::{SolverOptions, SymPack};
use sympack_bench::{fmt_secs, render_table, Problem};
use sympack_service::{RhsPanel, Server, ServerConfig, Session};
use sympack_sparse::gen::{laplacian_3d, XorShift64};
use sympack_sparse::SparseSym;

fn rhs_columns(n: usize, nrhs: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = XorShift64::new(seed);
    (0..nrhs)
        .map(|_| (0..n).map(|_| rng.next_f64() * 2.0 - 1.0).collect())
        .collect()
}

fn lower_values(a: &SparseSym) -> Vec<f64> {
    let mut v = Vec::with_capacity(a.nnz());
    for c in 0..a.n() {
        v.extend_from_slice(a.col_values(c));
    }
    v
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let opts = SolverOptions {
        n_nodes: 2,
        ranks_per_node: 2,
        ..Default::default()
    };

    let (name, a) = if quick {
        ("laplacian_3d 8^3", laplacian_3d(8, 8, 8))
    } else {
        ("laplacian_3d 12^3", laplacian_3d(12, 12, 12))
    };
    println!(
        "=== {} — n={}, nnz={} — 4 ranks (2 nodes × 2) ===",
        name,
        a.n(),
        a.nnz_full()
    );
    let session = Session::new(&a, &opts).expect("SPD model problem factors");

    // Table 1: one panel solve vs nrhs single-vector solves.
    let mut rows = vec![vec![
        "nrhs".to_string(),
        "panel solve".to_string(),
        "per-vector".to_string(),
        "speedup".to_string(),
        "worst residual".to_string(),
    ]];
    for &nrhs in &[4usize, 16, 64] {
        let cols = rhs_columns(a.n(), nrhs, 7 + nrhs as u64);
        let panel = RhsPanel::from_columns(&cols);
        let batch = session.solve_batch(&[panel]).expect("panel solve");
        let mut per_vector = 0.0;
        let mut worst = 0.0f64;
        for (k, b) in cols.iter().enumerate() {
            let one = session
                .solve_batch(&[RhsPanel::from_vector(b)])
                .expect("vector solve");
            per_vector += one.solve_time;
            let r = a.relative_residual(batch.panels[0].column(k), b);
            worst = worst.max(r);
        }
        rows.push(vec![
            nrhs.to_string(),
            fmt_secs(batch.solve_time),
            fmt_secs(per_vector),
            format!("{:.2}x", per_vector / batch.solve_time),
            format!("{worst:.3e}"),
        ]);
    }
    println!("\n-- batched panel solve vs per-vector (virtual time) --");
    println!("{}", render_table(&rows));

    // Table 2: numeric refactorization vs fresh factor-and-solve, wall-clock.
    // Uses the bench problems so the analysis phase being skipped is
    // non-trivial work.
    let mut rows = vec![vec![
        "problem".to_string(),
        "refactorize (wall)".to_string(),
        "fresh factor_and_solve (wall)".to_string(),
        "refactor advantage".to_string(),
        "residual".to_string(),
    ]];
    let problems: Vec<(String, SparseSym)> = Problem::ALL
        .iter()
        .map(|p| (p.name().to_string(), p.matrix_quick()))
        .collect();
    let reps = if quick { 2 } else { 3 };
    for (pname, m) in &problems {
        let mut session = Session::new(m, &opts).expect("SPD model problem factors");
        let values = lower_values(m);
        let b: Vec<f64> = rhs_columns(m.n(), 1, 99).remove(0);
        // Warm-up once each, then time `reps` repetitions of both paths.
        session.refactorize(&values).expect("same pattern");
        let t0 = Instant::now();
        for _ in 0..reps {
            session.refactorize(&values).expect("same pattern");
        }
        let refactor_wall = t0.elapsed().as_secs_f64() / reps as f64;
        let x = session.solve(&b).expect("solve");
        let residual = m.relative_residual(&x, &b);
        let t0 = Instant::now();
        for _ in 0..reps {
            let r = SymPack::factor_and_solve(m, &b, &opts);
            assert!(r.relative_residual < 1e-8);
        }
        let fresh_wall = t0.elapsed().as_secs_f64() / reps as f64;
        rows.push(vec![
            pname.clone(),
            fmt_secs(refactor_wall),
            fmt_secs(fresh_wall),
            format!("{:.2}x", fresh_wall / refactor_wall),
            format!("{residual:.3e}"),
        ]);
    }
    println!("\n-- numeric refactorization vs fresh solve (wall-clock) --");
    println!("{}", render_table(&rows));

    // Table 3: amortized cost per job as the server batches more jobs.
    let session = Session::new(&a, &opts).expect("SPD model problem factors");
    let mut server = Server::new(
        session,
        ServerConfig {
            max_pending: 1 << 14,
            max_batch: 16,
        },
    );
    let mut rows = vec![vec![
        "jobs served".to_string(),
        "amortized cost/job".to_string(),
        "one-shot cost/job".to_string(),
        "advantage".to_string(),
    ]];
    let checkpoints: &[usize] = if quick { &[1, 8, 64] } else { &[1, 8, 64, 256] };
    let mut submitted = 0usize;
    let mut rng = XorShift64::new(4242);
    for &target in checkpoints {
        while submitted < target {
            let rhs: Vec<f64> = (0..a.n()).map(|_| rng.next_f64() * 2.0 - 1.0).collect();
            server
                .submit_at(rhs, submitted as f64 * 1e-4)
                .expect("queue sized for the workload");
            submitted += 1;
        }
        server.drain().expect("batch solve");
        let m = server.metrics();
        rows.push(vec![
            format!("{}", m.jobs_served),
            fmt_secs(m.amortized_cost_per_job()),
            fmt_secs(m.one_shot_cost_per_job()),
            format!(
                "{:.1}x",
                m.one_shot_cost_per_job() / m.amortized_cost_per_job()
            ),
        ]);
    }
    println!("\n-- amortization: session cost per job vs one-shot (virtual time) --");
    println!("{}", render_table(&rows));
    println!("(virtual times are modeled makespans; wall-clock rows are measured on this machine)");
}
