//! Multi-tenant fleet load generator: replays a seeded heavy-tailed tenant
//! mix over the matrix zoo through the `sympack-fleet` serving layer and
//! records plan-cache hit rates, LRU eviction churn and per-tenant latency
//! quantiles.
//!
//! ```text
//! cargo run --release -p sympack-bench --bin fleet_bench             # full sweep → BENCH_fleet.json
//! cargo run --release -p sympack-bench --bin fleet_bench -- --quick  # quick mix + gates (CI PR job)
//! cargo run --release -p sympack-bench --bin fleet_bench -- --check  # regression gate vs committed JSON
//! ```
//!
//! Optional artifacts (any mode): `--metrics-json PATH` dumps the last
//! fleet's cache + per-tenant metrics, `--telemetry-json PATH` dumps the
//! live-telemetry snapshot document (render or validate it with
//! `sympack-top --replay`), `--profile-json PATH` dumps a flight-recorder
//! profile of the per-request spans that `sympack-prof report` breaks down
//! by tenant.
//!
//! Every mix is seeded and runs entirely in the solver's virtual clocks:
//! tenant→pattern assignment, fairness weights, job counts and arrivals all
//! come from one `XorShift64` stream, and no wall-clock value reaches the
//! JSON, so the recorded rows are bit-stable. The full sweep rewrites
//! `BENCH_fleet.json` reproducibly; `--check` re-derives the quick-mix rows
//! and compares them byte-for-byte against the committed file, then
//! validates the serving invariants on the committed full-mix row:
//!
//! * repeated-pattern tenants admit as plan-cache hits (zero analysis);
//! * the LRU keeps the steady-state resident factor bytes under budget
//!   while evictions and re-materializations both actually happen.

use std::fmt::Write as _;
use sympack::SolverOptions;
use sympack_bench::Problem;
use sympack_fleet::{Fleet, FleetConfig, TenantId};
use sympack_service::Session;
use sympack_sparse::gen::XorShift64;
use sympack_sparse::SparseSym;
use sympack_trace::profile::{CommMatrix, Profile};

/// One replayable tenant mix. Heavy-tailed twice over: tenants are
/// Zipf-assigned to patterns (a hot pattern is shared by many tenants, so
/// the plan cache pays off) and to traffic classes (most tenants submit a
/// trickle, a few submit bursts at boosted fairness weight).
struct MixSpec {
    name: &'static str,
    seed: u64,
    tenants: usize,
    shards: usize,
    ranks_per_shard: usize,
    max_batch: usize,
    quantum: f64,
    /// Factor budget as a percentage of the summed per-tenant factor
    /// demand: < 100 guarantees LRU pressure.
    budget_pct: u64,
}

/// CI PR mix: small enough for a debug-build smoke run.
const QUICK: MixSpec = MixSpec {
    name: "quick",
    seed: 0x5eed_f1ee_0000_0001,
    tenants: 6,
    shards: 2,
    ranks_per_shard: 2,
    max_batch: 4,
    quantum: 2.0,
    budget_pct: 60,
};

/// Nightly mix: more tenants than the budget can keep resident, wider
/// shards, longer bursts.
const FULL: MixSpec = MixSpec {
    name: "full",
    seed: 0x5eed_f1ee_0000_0002,
    tenants: 12,
    shards: 3,
    ranks_per_shard: 4,
    max_batch: 8,
    quantum: 2.0,
    budget_pct: 55,
};

/// Heavy-tailed pick over `0..k`: P(i) ∝ 1/(i+1).
fn zipf(rng: &mut XorShift64, k: usize) -> usize {
    let h: f64 = (0..k).map(|i| 1.0 / (i + 1) as f64).sum();
    let mut u = rng.next_f64() * h;
    for i in 0..k {
        u -= 1.0 / (i + 1) as f64;
        if u <= 0.0 {
            return i;
        }
    }
    k - 1
}

/// Deterministic per-job right-hand side (recomputable for the residual
/// check without retaining every submitted vector).
fn rhs_for(tenant: usize, job: u64, n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| ((i + 1) as f64 * 0.13 + tenant as f64 * 0.71 + job as f64 * 0.37).sin())
        .collect()
}

/// The fleet-wide summary of one mix (a row of `BENCH_fleet.json`).
struct ScenarioRow {
    mix: &'static str,
    tenants: usize,
    patterns: usize,
    shards: usize,
    ranks_per_shard: usize,
    jobs: u64,
    plan_hits: u64,
    plan_misses: u64,
    evictions: u64,
    rematerializations: u64,
    budget_bytes: u64,
    high_water_bytes: u64,
    resident_bytes: u64,
    makespan: f64,
}

impl ScenarioRow {
    /// Bit-stable JSON line: fixed field order, floats in full-precision
    /// scientific notation so identical f64 bits give identical text.
    fn to_json(&self) -> String {
        format!(
            "{{\"mix\":\"{}\",\"tenants\":{},\"patterns\":{},\"shards\":{},\
             \"ranks_per_shard\":{},\"jobs\":{},\"plan_hits\":{},\"plan_misses\":{},\
             \"evictions\":{},\"rematerializations\":{},\"budget_bytes\":{},\
             \"high_water_bytes\":{},\"resident_bytes\":{},\"makespan\":\"{:.17e}\"}}",
            self.mix,
            self.tenants,
            self.patterns,
            self.shards,
            self.ranks_per_shard,
            self.jobs,
            self.plan_hits,
            self.plan_misses,
            self.evictions,
            self.rematerializations,
            self.budget_bytes,
            self.high_water_bytes,
            self.resident_bytes,
            self.makespan,
        )
    }
}

/// One tenant's serving outcome (a row of `BENCH_fleet.json`).
struct TenantRow {
    mix: &'static str,
    tenant: String,
    pattern: &'static str,
    shard: usize,
    weight: f64,
    plan_hit: bool,
    evictions: u64,
    jobs: u64,
    p50: f64,
    p99: f64,
}

impl TenantRow {
    fn to_json(&self) -> String {
        format!(
            "{{\"mix\":\"{}\",\"tenant\":\"{}\",\"pattern\":\"{}\",\"shard\":{},\
             \"weight\":\"{:.17e}\",\"plan_hit\":{},\"evictions\":{},\"jobs\":{},\
             \"p50\":\"{:.17e}\",\"p99\":\"{:.17e}\"}}",
            self.mix,
            self.tenant,
            self.pattern,
            self.shard,
            self.weight,
            self.plan_hit,
            self.evictions,
            self.jobs,
            self.p50,
            self.p99,
        )
    }
}

/// Replay one mix and assert the serving invariants. Returns the rows and
/// the finished fleet (for the metrics/profile artifacts).
fn run_mix(spec: &MixSpec) -> (ScenarioRow, Vec<TenantRow>, Fleet) {
    let mut rng = XorShift64::new(spec.seed);
    let zoo: Vec<SparseSym> = Problem::ALL.iter().map(|p| p.matrix_quick()).collect();

    // Seeded tenant population: pattern, fairness weight and burst length
    // are all heavy-tailed draws from the one stream.
    const WEIGHTS: [f64; 4] = [1.0, 1.0, 2.0, 4.0];
    const BURSTS: [usize; 4] = [4, 6, 10, 16];
    let assign: Vec<usize> = (0..spec.tenants)
        .map(|_| zipf(&mut rng, zoo.len()))
        .collect();
    let weights: Vec<f64> = (0..spec.tenants)
        .map(|_| WEIGHTS[zipf(&mut rng, WEIGHTS.len())])
        .collect();
    let bursts: Vec<usize> = (0..spec.tenants)
        .map(|_| BURSTS[zipf(&mut rng, BURSTS.len())])
        .collect();

    // Budget sized off probe factorizations of the distinct patterns in
    // play: a fixed fraction of the total per-tenant demand, so the LRU is
    // guaranteed to churn.
    let opts = SolverOptions {
        n_nodes: 1,
        ranks_per_node: spec.ranks_per_shard,
        deterministic: true,
        ..Default::default()
    };
    let mut pattern_bytes = vec![0u64; zoo.len()];
    for (k, a) in zoo.iter().enumerate() {
        if assign.contains(&k) {
            pattern_bytes[k] = Session::new(a, &opts)
                .expect("probe factorization")
                .factor_bytes();
        }
    }
    let demand: u64 = assign.iter().map(|&k| pattern_bytes[k]).sum();
    let budget = demand * spec.budget_pct / 100;

    let config = FleetConfig {
        shards: spec.shards,
        factor_budget_bytes: budget,
        max_pending_per_tenant: 64,
        max_batch: spec.max_batch,
        quantum: spec.quantum,
    };
    let mut fleet = Fleet::new(&opts, config);

    // Admission: plan-cache hits are exactly the repeated patterns, and a
    // hit tenant pays zero analysis — the acceptance signal.
    let mut seen = vec![false; zoo.len()];
    let mut hits = vec![false; spec.tenants];
    let ids: Vec<TenantId> = (0..spec.tenants)
        .map(|t| {
            let k = assign[t];
            hits[t] = seen[k];
            seen[k] = true;
            fleet
                .admit(&format!("t{t:02}"), &zoo[k], weights[t])
                .unwrap_or_else(|e| panic!("{}: admit t{t:02}: {e}", spec.name))
        })
        .collect();
    let distinct = seen.iter().filter(|&&s| s).count();
    let cache = fleet.cache_metrics();
    assert_eq!(
        cache.plan_misses as usize, distinct,
        "{}: misses",
        spec.name
    );
    assert_eq!(
        cache.plan_hits as usize,
        spec.tenants - distinct,
        "{}: hits",
        spec.name
    );
    for (t, &id) in ids.iter().enumerate() {
        if hits[t] {
            assert_eq!(
                fleet.tenant_analyze_wall_ms(id),
                0.0,
                "{}: t{t:02} hit must skip analysis",
                spec.name
            );
        }
    }

    // Submit every tenant's burst with seeded arrival jitter, then drain
    // under the fair scheduler.
    for (t, &id) in ids.iter().enumerate() {
        let n = zoo[assign[t]].n();
        for j in 0..bursts[t] {
            let arrival = j as f64 * 0.02 + rng.next_f64() * 0.01;
            fleet
                .submit_at(id, rhs_for(t, j as u64, n), arrival)
                .unwrap_or_else(|e| panic!("{}: submit t{t:02}/{j}: {e}", spec.name));
        }
    }
    let done = fleet
        .drain()
        .unwrap_or_else(|e| panic!("{}: drain: {e}", spec.name));
    let total_jobs: u64 = bursts.iter().map(|&b| b as u64).sum();
    assert_eq!(
        done.len() as u64,
        total_jobs,
        "{}: all jobs complete",
        spec.name
    );
    for c in &done {
        let a = &zoo[assign[c.tenant.0]];
        let b = rhs_for(c.tenant.0, c.id, a.n());
        let res = a.relative_residual(&c.x, &b);
        assert!(
            res < 1e-8,
            "{}: t{:02}/job-{} residual {res}",
            spec.name,
            c.tenant.0,
            c.id
        );
    }

    // Serving invariants: the budget forced eviction and transparent
    // re-materialization, yet steady-state residency never exceeded it.
    let cache = fleet.cache_metrics();
    assert!(cache.factor_evictions >= 1, "{}: no evictions", spec.name);
    assert!(
        cache.rematerializations >= 1,
        "{}: no rematerializations",
        spec.name
    );
    assert!(
        cache.resident_high_water_bytes <= budget,
        "{}: high-water {} over budget {budget}",
        spec.name,
        cache.resident_high_water_bytes
    );
    assert_eq!(
        fleet.request_spans().len() as u64,
        total_jobs,
        "{}: spans",
        spec.name
    );

    let scenario = ScenarioRow {
        mix: spec.name,
        tenants: spec.tenants,
        patterns: distinct,
        shards: spec.shards,
        ranks_per_shard: spec.ranks_per_shard,
        jobs: total_jobs,
        plan_hits: cache.plan_hits,
        plan_misses: cache.plan_misses,
        evictions: cache.factor_evictions,
        rematerializations: cache.rematerializations,
        budget_bytes: budget,
        high_water_bytes: cache.resident_high_water_bytes,
        resident_bytes: cache.resident_bytes,
        makespan: fleet.makespan(),
    };
    let tenant_rows: Vec<TenantRow> = ids
        .iter()
        .enumerate()
        .map(|(t, &id)| {
            let m = fleet.tenant_metrics(id);
            TenantRow {
                mix: spec.name,
                tenant: format!("t{t:02}"),
                pattern: Problem::ALL[assign[t]].name(),
                // Mirrors the fleet's round-robin shard pinning.
                shard: t % spec.shards,
                weight: weights[t],
                plan_hit: hits[t],
                evictions: fleet.tenant_evictions(id),
                jobs: m.jobs_served,
                p50: m.latency.p50(),
                p99: m.latency.p99(),
            }
        })
        .collect();
    (scenario, tenant_rows, fleet)
}

fn print_summary(s: &ScenarioRow) {
    println!(
        "{} mix: {} tenants / {} patterns on {}x{} ranks, {} jobs: \
         plan {}h/{}m, {} evictions, {} remats, high-water {}/{} B, makespan {:.3e}s",
        s.mix,
        s.tenants,
        s.patterns,
        s.shards,
        s.ranks_per_shard,
        s.jobs,
        s.plan_hits,
        s.plan_misses,
        s.evictions,
        s.rematerializations,
        s.high_water_bytes,
        s.budget_bytes,
        s.makespan,
    );
}

fn render(scenarios: &[ScenarioRow], tenants: &[TenantRow]) -> String {
    let mut out = String::from("[\n");
    let total = scenarios.len() + tenants.len();
    let mut i = 0;
    for row in scenarios
        .iter()
        .map(ScenarioRow::to_json)
        .chain(tenants.iter().map(TenantRow::to_json))
    {
        i += 1;
        let sep = if i == total { "" } else { "," };
        let _ = writeln!(out, "{row}{sep}");
    }
    out.push_str("]\n");
    out
}

fn bench_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_fleet.json")
}

/// Dump the optional `--metrics-json` / `--profile-json` artifacts from the
/// last fleet that ran.
fn write_artifacts(args: &[String], fleet: &Fleet, spec: &MixSpec) {
    if let Some(at) = args.iter().position(|a| a == "--metrics-json") {
        let path = &args[at + 1];
        std::fs::write(path, fleet.metrics_json() + "\n").expect("write metrics json");
        println!("wrote fleet metrics to {path}");
    }
    if let Some(at) = args.iter().position(|a| a == "--telemetry-json") {
        let path = &args[at + 1];
        std::fs::write(path, fleet.telemetry_json() + "\n").expect("write telemetry json");
        println!("wrote fleet telemetry snapshot to {path}");
    }
    if let Some(at) = args.iter().position(|a| a == "--profile-json") {
        let path = &args[at + 1];
        let profile = Profile::build(
            "fleet",
            fleet.request_spans(),
            fleet.makespan(),
            spec.shards,
            CommMatrix::empty(spec.shards),
        );
        std::fs::write(path, profile.to_json()).expect("write profile json");
        println!("wrote fleet request profile to {path}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");

    if quick {
        // CI PR smoke: the quick mix with all its gates, no file.
        let (scenario, _, fleet) = run_mix(&QUICK);
        print_summary(&scenario);
        write_artifacts(&args, &fleet, &QUICK);
        println!("quick gate passed");
        return;
    }

    if check {
        // Regression gate: the committed quick-mix rows must reproduce
        // bit-for-bit, and the committed full-mix row must satisfy the
        // serving invariants.
        let committed =
            std::fs::read_to_string(bench_path()).expect("BENCH_fleet.json not committed");
        let (scenario, tenant_rows, fleet) = run_mix(&QUICK);
        print_summary(&scenario);
        for row in
            std::iter::once(scenario.to_json()).chain(tenant_rows.iter().map(TenantRow::to_json))
        {
            assert!(
                committed.contains(&row),
                "quick-mix row drifted from committed BENCH_fleet.json:\n{row}"
            );
        }
        // Scan the committed full-mix scenario row (fixed field order makes
        // this a plain scan, no JSON parser needed).
        let tag = "{\"mix\":\"full\",\"tenants\":";
        let line = committed
            .lines()
            .find(|l| l.starts_with(tag))
            .expect("full-mix row missing from BENCH_fleet.json");
        let grab = |key: &str| -> u64 {
            let at = line.find(key).expect("field present") + key.len();
            let rest = &line[at..];
            let end = rest.find([',', '}']).expect("terminated");
            rest[..end].parse().expect("u64")
        };
        let (hits, misses) = (grab("\"plan_hits\":"), grab("\"plan_misses\":"));
        let evictions = grab("\"evictions\":");
        let remat = grab("\"rematerializations\":");
        let (budget, high) = (grab("\"budget_bytes\":"), grab("\"high_water_bytes\":"));
        assert!(
            hits >= 1 && misses >= 1,
            "full mix must exercise the plan cache"
        );
        assert!(evictions >= 1 && remat >= 1, "full mix must churn the LRU");
        assert!(
            high <= budget,
            "full mix high-water {high} over budget {budget}"
        );
        write_artifacts(&args, &fleet, &QUICK);
        println!(
            "check gate passed (full mix: {hits} hits, {evictions} evictions, \
             high-water {high}/{budget} B)"
        );
        return;
    }

    // Full sweep: rewrite BENCH_fleet.json with both mixes.
    let mut scenarios = Vec::new();
    let mut tenants = Vec::new();
    let mut last = None;
    for spec in [&QUICK, &FULL] {
        let t0 = std::time::Instant::now();
        let (scenario, tenant_rows, fleet) = run_mix(spec);
        print_summary(&scenario);
        println!("  ({:.1}s wall)", t0.elapsed().as_secs_f64());
        scenarios.push(scenario);
        tenants.extend(tenant_rows);
        last = Some(fleet);
    }
    let json = render(&scenarios, &tenants);
    std::fs::write(bench_path(), &json).expect("write BENCH_fleet.json");
    write_artifacts(&args, last.as_ref().unwrap(), &FULL);
    println!(
        "wrote {} rows to BENCH_fleet.json",
        scenarios.len() + tenants.len()
    );
}
