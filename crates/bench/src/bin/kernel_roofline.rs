//! Wall-clock roofline benchmark for the dense kernel engine.
//!
//! Sweeps the four factorization kernels (GEMM, POTRF, TRSM, SYRK) over
//! square and skinny supernode-shaped problems, reporting achieved Gflop/s
//! and arithmetic intensity (flops per byte of operand/result footprint —
//! the x-axis of a roofline plot) per shape and code path. For GEMM the
//! sweep covers three variants: the pre-packing loop nest
//! (`gemm_nt_unpacked_raw`, the pre-PR baseline), the packed
//! register-blocked engine, and the shared-A thread-parallel form.
//!
//! Two appendix sweeps justify the default dispatch thresholds in
//! `sympack_dense::KernelConfig`:
//!
//! * `--crossover`-style small-size scan: unpacked vs forced-packed GEMM
//!   around `pack_min_flops`,
//! * fork-join cost of a scoped worker set, the measurement behind
//!   `par_flop_threshold`.
//!
//! Config modes:
//!
//! * `--config k=v,...` — run the whole sweep under a non-default
//!   [`KernelConfig`] (field overrides by name, e.g. `mc=96,kc=192`).
//! * `--compare k=v,...` — benchmark the default config against the given
//!   override on a fixed shape set and write a tuning-comparison report
//!   (`BENCH_tuning.json`, or `--tuning-json <path>`) consumable by
//!   `sympack-tune diff`.
//!
//! Output: `BENCH_kernels.json` (a `sympack_trace::metrics::RooflineReport`)
//! and a human-readable table in `results/kernel_roofline.txt`. `--quick`
//! shrinks sizes and repetitions for the CI smoke job.

use std::fmt::Write as _;
use std::time::Instant;

use sympack_dense::config::KernelConfig;
use sympack_dense::gemm::{gemm_nt_packed_raw, gemm_nt_unpacked_raw};
use sympack_dense::microkernel;
use sympack_dense::par;
use sympack_dense::potrf::potrf_raw;
use sympack_dense::syrk::syrk_lower_raw;
use sympack_dense::trsm::trsm_right_lower_trans_raw;
use sympack_dense::{flops, Mat};
use sympack_trace::metrics::{KernelSample, RooflineReport};

/// Median wall-clock seconds per call: each sample loops `f` often enough to
/// exceed a minimum window, and the median over `samples` windows rejects
/// the scheduling outliers a shared host produces.
fn median_secs<F: FnMut()>(mut f: F, flop: u64, samples: usize) -> f64 {
    // Aim for ~8 ms windows assuming ≥ 2 Gflop/s; at least one call.
    let reps = ((0.008 * 2e9) as u64 / flop.max(1)).clamp(1, 10_000) as usize;
    f(); // warm caches, pack buffers and the ISA detector
    let mut times: Vec<f64> = (0..samples.max(1))
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..reps {
                f();
            }
            t0.elapsed().as_secs_f64() / reps as f64
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn fill(n: usize, seed: usize) -> Vec<f64> {
    (0..n)
        .map(|v| (((v * 13 + seed * 7) % 19) as f64) * 0.25 - 2.0)
        .collect()
}

/// SPD buffer for POTRF/TRSM inputs: diagonally dominant column-major n×n.
fn spd(n: usize) -> Vec<f64> {
    let mut a = fill(n * n, 3);
    for i in 0..n {
        a[i * n + i] = a[i * n + i].abs() + 4.0 * n as f64;
    }
    // Symmetrize.
    for j in 0..n {
        for i in 0..j {
            a[j * n + i] = a[i * n + j];
        }
    }
    a
}

/// Parse `k=v,...` field overrides on top of the default config; exits with
/// a usage message on unknown fields, bad values, or invalid combinations.
fn parse_config(spec: &str) -> KernelConfig {
    let mut cfg = KernelConfig::default();
    for pair in spec.split(',').filter(|p| !p.is_empty()) {
        let Some((name, value)) = pair.split_once('=') else {
            eprintln!("bad --config entry {pair:?}: expected field=value");
            std::process::exit(2);
        };
        let Ok(v) = value.trim().parse::<u64>() else {
            eprintln!("bad --config value in {pair:?}: expected an integer");
            std::process::exit(2);
        };
        if let Err(e) = cfg.set_field(name.trim(), v) {
            eprintln!("bad --config entry {pair:?}: {e}");
            std::process::exit(2);
        }
    }
    if let Err(e) = cfg.validate() {
        eprintln!("invalid --config: {e}");
        std::process::exit(2);
    }
    cfg
}

struct Ctx {
    report: RooflineReport,
    txt: String,
    samples: usize,
}

impl Ctx {
    #[allow(clippy::too_many_arguments)]
    fn record<F: FnMut()>(
        &mut self,
        kernel: &str,
        variant: &str,
        m: usize,
        n: usize,
        k: usize,
        flop: u64,
        bytes: u64,
        f: F,
    ) -> f64 {
        let secs = median_secs(f, flop, self.samples);
        let s = KernelSample {
            kernel: kernel.into(),
            variant: variant.into(),
            m,
            n,
            k,
            secs,
            flops: flop,
            bytes,
        };
        let gf = s.gflops();
        let _ = writeln!(
            self.txt,
            "{kernel:8} {variant:9} m={m:5} n={n:5} k={k:5}  {gf:7.2} GF/s  ai={ai:6.1}",
            ai = s.arithmetic_intensity()
        );
        self.report.push(s);
        gf
    }
}

/// The `--compare` shape set: tall-panel, square, and separator-ish shapes
/// spanning the regimes a calibrated config is meant to improve.
const COMPARE_SHAPES: &[(usize, usize, usize)] = &[
    (256, 256, 256),
    (512, 512, 512),
    (1024, 128, 128),
    (2048, 64, 64),
];

/// Benchmark packed GEMM throughput per shape under `cfg`.
fn compare_rates(cfg: &KernelConfig, shapes: &[(usize, usize, usize)], samples: usize) -> Vec<f64> {
    shapes
        .iter()
        .map(|&(m, n, k)| {
            let a = fill(m * k, 1);
            let b = fill(n * k, 2);
            let mut c = vec![0.0; m * n];
            let flop = flops::gemm(m, n, k);
            let secs = median_secs(
                || gemm_nt_packed_raw(cfg, &mut c, m, m, n, &a, m, &b, n, k),
                flop,
                samples,
            );
            flop as f64 / secs / 1e9
        })
        .collect()
}

/// `--compare` mode: default vs override config on the fixed shape set,
/// emitting the tuning-comparison JSON `sympack-tune diff` consumes.
fn run_compare(spec: &str, json_path: &str, quick: bool) {
    let candidate = parse_config(spec);
    let default = KernelConfig::default();
    let samples = if quick { 3 } else { 7 };
    let shapes: &[(usize, usize, usize)] = if quick {
        &COMPARE_SHAPES[..3]
    } else {
        COMPARE_SHAPES
    };
    let base = compare_rates(&default, shapes, samples);
    let cand = compare_rates(&candidate, shapes, samples);

    let mut json = String::from("{\n  \"schema\": \"sympack-tuning-compare-v1\",\n");
    let _ = writeln!(json, "  \"isa\": \"{}\",", microkernel::isa_name());
    let _ = writeln!(json, "  \"config\": \"{}\",", spec);
    json.push_str("  \"shapes\": [\n");
    println!("tuning comparison (packed gemm, candidate = {spec}):");
    for (i, &(m, n, k)) in shapes.iter().enumerate() {
        let speedup = cand[i] / base[i];
        println!(
            "  m={m:5} n={n:5} k={k:5}  default {b:7.2} GF/s  candidate {c:7.2} GF/s  {speedup:4.2}x",
            b = base[i],
            c = cand[i],
        );
        let _ = write!(
            json,
            "    {{\"m\": {m}, \"n\": {n}, \"k\": {k}, \"default_gflops\": {}, \"candidate_gflops\": {}, \"speedup\": {}}}",
            base[i], cand[i], speedup
        );
        json.push_str(if i + 1 < shapes.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(json_path, json).expect("write tuning json");
    println!("wrote {json_path}");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let arg_val = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    if let Some(spec) = arg_val("--compare") {
        let tuning_path = arg_val("--tuning-json").unwrap_or_else(|| "BENCH_tuning.json".into());
        run_compare(&spec, &tuning_path, quick);
        return;
    }
    let cfg = arg_val("--config")
        .map(|s| parse_config(&s))
        .unwrap_or_default();
    let json_path = arg_val("--json").unwrap_or_else(|| "BENCH_kernels.json".to_string());
    let txt_path = arg_val("--out").unwrap_or_else(|| "results/kernel_roofline.txt".to_string());
    let samples = if quick { 3 } else { 7 };

    let mut ctx = Ctx {
        report: RooflineReport::new(par::num_threads(), microkernel::isa_name()),
        txt: String::new(),
        samples,
    };
    let _ = writeln!(
        ctx.txt,
        "kernel roofline ({} mode): isa={} worker_budget={}\n\
         rates are median wall-clock over {samples} windows; ai = flops per\n\
         byte of operand/result footprint (8 bytes per f64, each matrix\n\
         counted once, destinations twice for read+write).\n",
        if quick { "quick" } else { "full" },
        microkernel::isa_name(),
        par::num_threads(),
    );

    // ---- GEMM: square and skinny supernode shapes, three variants. ----
    let square: &[usize] = if quick {
        &[64, 128, 256]
    } else {
        &[64, 128, 256, 512, 1024]
    };
    let skinny: &[(usize, usize, usize)] = if quick {
        &[(512, 64, 64)]
    } else {
        // Tall-panel × small-separator shapes typical of supernodal updates.
        &[(2048, 128, 128), (4096, 64, 64), (1024, 256, 64)]
    };
    let mut shapes: Vec<(usize, usize, usize)> = square.iter().map(|&s| (s, s, s)).collect();
    shapes.extend_from_slice(skinny);

    let mut gemm_512_packed = 0.0_f64;
    let mut best_packed = 0.0_f64;
    for &(m, n, k) in &shapes {
        let a = fill(m * k, 1);
        let b = fill(n * k, 2);
        let mut c = vec![0.0; m * n];
        let flop = flops::gemm(m, n, k);
        let bytes = 8 * (m * k + n * k + 2 * m * n) as u64;
        ctx.record("gemm_nt", "unpacked", m, n, k, flop, bytes, || {
            gemm_nt_unpacked_raw(&cfg, &mut c, m, m, n, &a, m, &b, n, k)
        });
        let gf = ctx.record("gemm_nt", "packed", m, n, k, flop, bytes, || {
            gemm_nt_packed_raw(&cfg, &mut c, m, m, n, &a, m, &b, n, k)
        });
        if (m, n, k) == (512, 512, 512) {
            gemm_512_packed = gf;
        }
        best_packed = best_packed.max(gf);
        let (am, bm) = (Mat::from_fn(m, k, |r, c| a[c * m + r]), {
            Mat::from_fn(n, k, |r, c| b[c * n + r])
        });
        let mut cm = Mat::zeros(m, n);
        ctx.record("gemm_nt", "par", m, n, k, flop, bytes, || {
            par::gemm_nt_par_cfg(&cfg, &mut cm, &am, &bm)
        });
    }

    // Headline speedups: packed engine vs the pre-PR unpacked loop nest.
    let _ = writeln!(ctx.txt, "\npacked speedup over unpacked baseline:");
    for &(m, n, k) in &shapes {
        let (Some(u), Some(p)) = (
            ctx.report.find("gemm_nt", "unpacked", m, n, k),
            ctx.report.find("gemm_nt", "packed", m, n, k),
        ) else {
            continue;
        };
        let _ = writeln!(
            ctx.txt,
            "  m={m:5} n={n:5} k={k:5}  {:4.2}x",
            p.gflops() / u.gflops()
        );
    }

    // ---- Factorization kernels. ----
    let factor_sizes: &[usize] = if quick { &[128, 256] } else { &[128, 256, 512] };
    for &n in factor_sizes {
        let l = spd(n);
        // POTRF (re-copies the SPD input each call; the copy is timed but is
        // O(n²) against the O(n³) factorization).
        let mut buf = l.clone();
        ctx.record(
            "potrf",
            "blocked",
            0,
            n,
            0,
            flops::potrf(n),
            8 * 2 * (n * n) as u64,
            || {
                buf.copy_from_slice(&l);
                potrf_raw(&cfg, &mut buf, n, n).unwrap();
            },
        );
        // TRSM: tall panel m = 4n against the factored diagonal block.
        let mut lf = l.clone();
        potrf_raw(&cfg, &mut lf, n, n).unwrap();
        let m = 4 * n;
        let b0 = fill(m * n, 5);
        let mut b = b0.clone();
        ctx.record(
            "trsm",
            "blocked",
            m,
            n,
            0,
            flops::trsm(m, n),
            8 * (2 * m * n + n * n / 2) as u64,
            || {
                b.copy_from_slice(&b0);
                trsm_right_lower_trans_raw(&cfg, &mut b, m, m, n, &lf, n);
            },
        );
        // SYRK: n×n lower update by an n×k panel, k = n.
        let k = n;
        let ap = fill(n * k, 6);
        let mut cs = vec![0.0; n * n];
        ctx.record(
            "syrk",
            "blocked",
            0,
            n,
            k,
            flops::syrk(n, k),
            8 * (n * k + n * n) as u64,
            || syrk_lower_raw(&cfg, &mut cs, n, n, &ap, n, k),
        );
    }

    // Factored-kernel efficiency against the packed GEMM rate at n = 512.
    if !quick && gemm_512_packed > 0.0 {
        let _ = writeln!(
            ctx.txt,
            "\nfactor-kernel rate vs packed gemm at n=512 ({gemm_512_packed:.2} GF/s):"
        );
        for (kernel, m, n, k) in [
            ("potrf", 0usize, 512usize, 0usize),
            ("trsm", 2048, 512, 0),
            ("syrk", 0, 512, 512),
        ] {
            if let Some(s) = ctx.report.find(kernel, "blocked", m, n, k) {
                let _ = writeln!(
                    ctx.txt,
                    "  {kernel:6} {:6.2} GF/s  ({:5.1}% of gemm)",
                    s.gflops(),
                    100.0 * s.gflops() / gemm_512_packed
                );
            }
        }
    }

    // ---- Appendix 1: pack/no-pack crossover scan (pack_min_flops). ----
    let _ = writeln!(
        ctx.txt,
        "\npack crossover scan (unpacked vs forced-packed; dispatch threshold \
         pack_min_flops = {}):",
        cfg.pack_min_flops
    );
    let scan: &[usize] = if quick {
        &[16, 24, 32]
    } else {
        &[8, 12, 16, 20, 24, 28, 32, 40, 48]
    };
    for &n in scan {
        let a = fill(n * n, 1);
        let b = fill(n * n, 2);
        let mut c = vec![0.0; n * n];
        let flop = flops::gemm(n, n, n);
        let bytes = 8 * 4 * (n * n) as u64;
        let gu = ctx.record("gemm_nt", "xover-unpacked", n, n, n, flop, bytes, || {
            gemm_nt_unpacked_raw(&cfg, &mut c, n, n, n, &a, n, &b, n, n)
        });
        let gp = ctx.record("gemm_nt", "xover-packed", n, n, n, flop, bytes, || {
            gemm_nt_packed_raw(&cfg, &mut c, n, n, n, &a, n, &b, n, n)
        });
        let _ = writeln!(
            ctx.txt,
            "  n={n:3} ({flop:7} flop): packed/unpacked = {:4.2}x",
            gp / gu
        );
    }

    // ---- Appendix 2: fork-join cost (par_flop_threshold). ----
    let workers = par::num_threads().max(2);
    let fork_join = median_secs(
        || {
            std::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|| std::hint::black_box(0u64));
                }
            });
        },
        1,
        samples,
    );
    let _ = writeln!(
        ctx.txt,
        "\nfork-join of {workers} scoped workers: {:.1} us \
         (par_flop_threshold = {} flop ~ {:.0} us of packed sequential work)",
        fork_join * 1e6,
        cfg.par_flop_threshold,
        // Quick mode never measures n=512, so fall back to the best packed
        // rate seen this run for the microseconds-of-work conversion.
        cfg.par_flop_threshold as f64 / (gemm_512_packed.max(best_packed).max(1.0) * 1e3),
    );

    print!("{}", ctx.txt);
    if let Some(dir) = std::path::Path::new(&txt_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&txt_path, &ctx.txt).expect("write text report");
    std::fs::write(&json_path, ctx.report.to_json()).expect("write json report");
    println!("\nwrote {txt_path} and {json_path}");
}
