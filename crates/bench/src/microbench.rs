//! Minimal wall-clock micro-benchmark harness for the `benches/` targets.
//!
//! Each measurement warms up, then runs timed batches until a time budget
//! is spent, reporting median/min per-iteration latency and (optionally)
//! throughput against a caller-supplied element or byte count.

use std::time::{Duration, Instant};

/// One benchmark measurement over `f`.
pub struct Sampler {
    /// Samples to collect (each sample times one call batch).
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: usize,
    /// Warm-up calls before measuring.
    pub warmup: usize,
}

impl Default for Sampler {
    fn default() -> Self {
        Sampler {
            samples: 10,
            iters_per_sample: 3,
            warmup: 2,
        }
    }
}

impl Sampler {
    /// Run `f` and print `<group>/<id>  median  min  [throughput]`.
    /// `work` is the per-iteration element count for the throughput column
    /// (0 to omit).
    pub fn run<R, F: FnMut() -> R>(&self, group: &str, id: &str, work: u64, mut f: F) {
        for _ in 0..self.warmup {
            std::hint::black_box(f());
        }
        let mut per_iter: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let t0 = Instant::now();
                for _ in 0..self.iters_per_sample {
                    std::hint::black_box(f());
                }
                t0.elapsed() / self.iters_per_sample as u32
            })
            .collect();
        per_iter.sort();
        let median = per_iter[per_iter.len() / 2];
        let min = per_iter[0];
        let mut line = format!("{group}/{id:<24} median {:>12?}  min {:>12?}", median, min);
        if work > 0 {
            let rate = work as f64 / median.as_secs_f64();
            line.push_str(&format!("  {:>10.3} Melem/s", rate / 1e6));
        }
        println!("{line}");
    }
}
