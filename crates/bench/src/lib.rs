//! Experiment harness shared by the paper-reproduction binaries.
//!
//! One binary per table/figure of the paper's §5 (see `DESIGN.md` for the
//! full experiment index):
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1` | Table 1 — matrix characteristics |
//! | `fig5_bandwidth` | Fig. 5 — RMA get flood bandwidth, native vs reference memory kinds vs MPI |
//! | `fig6_opcounts` | Fig. 6 — CPU vs GPU BLAS/LAPACK call distribution |
//! | `scaling` | Figs. 7–12 — strong scaling of factorization & solve, symPACK vs the right-looking baseline |
//! | `ablation` | §5.3/§6 design-choice studies: 2D vs 1D mapping, RTQ policies, offload thresholds, memory kinds |

use sympack_sparse::gen;
use sympack_sparse::SparseSym;

/// The paper's three evaluation matrices, at reproduction scale.
///
/// The originals are 0.9–1.6M rows; these generators (documented in
/// `DESIGN.md`) keep their structural contrasts at a size a single machine
/// factors in seconds. `EXPERIMENTS.md` records the scale substitution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Problem {
    /// `Flan_1565` stand-in: 3D 27-point brick — heavy fill, big supernodes.
    Flan,
    /// `boneS10` stand-in: 3D elasticity with 3 dof/node.
    Bone,
    /// `thermal2` stand-in: very sparse irregular 2D conduction.
    Thermal,
    /// `audikw_1` stand-in: 3D elasticity, 3 dof/node on a 27-point stencil.
    Audikw,
}

impl Problem {
    /// All problems in the paper's order. (`audikw_1` joins through
    /// [`Problem::BLR_ZOO`] only, so the committed scaling/profile
    /// benchmarks keep their historical row sets.)
    pub const ALL: [Problem; 3] = [Problem::Flan, Problem::Bone, Problem::Thermal];

    /// The block low-rank benchmark zoo: the two vector-FEM problems whose
    /// factors carry real low-rank structure (`boneS10`, `audikw_1`) plus
    /// the two weakly-compressible controls (`Flan_1565`, `thermal2`).
    pub const BLR_ZOO: [Problem; 4] = [
        Problem::Bone,
        Problem::Audikw,
        Problem::Flan,
        Problem::Thermal,
    ];

    /// Parse a CLI name.
    pub fn from_name(s: &str) -> Option<Problem> {
        match s.to_ascii_lowercase().as_str() {
            "flan" | "flan_1565" => Some(Problem::Flan),
            "bone" | "bones10" => Some(Problem::Bone),
            "thermal" | "thermal2" => Some(Problem::Thermal),
            "audikw" | "audikw_1" => Some(Problem::Audikw),
            _ => None,
        }
    }

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Problem::Flan => "Flan_1565 (flan_like)",
            Problem::Bone => "boneS10 (bone_like)",
            Problem::Thermal => "thermal2 (thermal_like)",
            Problem::Audikw => "audikw_1 (audikw_like)",
        }
    }

    /// Short description (Table 1 column).
    pub fn description(&self) -> &'static str {
        match self {
            Problem::Flan => "3D model of a steel flange (27-pt brick stand-in)",
            Problem::Bone => "3D trabecular bone (3-dof elasticity stand-in)",
            Problem::Thermal => "steady state thermal (irregular 2D stand-in)",
            Problem::Audikw => "automotive crankshaft (3-dof 27-pt elasticity stand-in)",
        }
    }

    /// Generate at full experiment scale.
    pub fn matrix(&self) -> SparseSym {
        match self {
            Problem::Flan => gen::flan_like(26, 26, 26),
            Problem::Bone => gen::bone_like(14, 14, 14),
            Problem::Thermal => gen::thermal_like(110, 110, 0.35, 20230),
            Problem::Audikw => gen::audikw_like(16, 16, 16),
        }
    }

    /// Generate at a reduced scale for quick smoke runs (`--quick`).
    pub fn matrix_quick(&self) -> SparseSym {
        match self {
            Problem::Flan => gen::flan_like(7, 7, 7),
            Problem::Bone => gen::bone_like(6, 6, 5),
            Problem::Thermal => gen::thermal_like(24, 24, 0.35, 20230),
            Problem::Audikw => gen::audikw_like(6, 6, 6),
        }
    }

    /// Generate at the strong-scaling benchmark scale: large enough that
    /// supernode blocks carry real bandwidth (so communication structure,
    /// not just latency, decides the outcome at P ≥ 256), small enough
    /// that a P = 1024 lockstep run stays interactive.
    pub fn matrix_scaling(&self) -> SparseSym {
        match self {
            Problem::Flan => gen::flan_like(13, 13, 13),
            Problem::Bone => gen::bone_like(14, 14, 14),
            Problem::Thermal => gen::thermal_like(72, 72, 0.35, 20230),
            Problem::Audikw => gen::audikw_like(12, 12, 12),
        }
    }

    /// Generate at the block low-rank benchmark scale: deep enough
    /// elimination trees that off-diagonal panels develop numerically
    /// low-rank structure at engineering tolerances.
    pub fn matrix_blr(&self) -> SparseSym {
        match self {
            Problem::Flan => gen::flan_like(20, 20, 20),
            Problem::Bone => gen::bone_like(20, 20, 20),
            Problem::Thermal => gen::thermal_like(110, 110, 0.35, 20230),
            Problem::Audikw => gen::audikw_like(18, 18, 18),
        }
    }
}

/// Format virtual seconds for the report tables.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

/// Render an aligned text table (first row = header).
pub fn render_table(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows[0].len();
    let mut widths = vec![0usize; cols];
    for r in rows {
        for (c, cell) in r.iter().enumerate() {
            widths[c] = widths[c].max(cell.len());
        }
    }
    let mut out = String::new();
    for (i, r) in rows.iter().enumerate() {
        for (c, cell) in r.iter().enumerate() {
            out.push_str(&format!("{:<w$}  ", cell, w = widths[c]));
        }
        out.push('\n');
        if i == 0 {
            for (c, w) in widths.iter().enumerate() {
                out.push_str(&"-".repeat(*w));
                if c + 1 < cols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn problems_parse_and_generate() {
        assert_eq!(Problem::from_name("FLAN"), Some(Problem::Flan));
        assert_eq!(Problem::from_name("thermal2"), Some(Problem::Thermal));
        assert_eq!(Problem::from_name("nope"), None);
        for p in Problem::ALL {
            let m = p.matrix_quick();
            assert!(m.n() > 100, "{p:?}");
        }
    }

    #[test]
    fn table_renders_aligned() {
        let t = render_table(&[
            vec!["a".into(), "long-header".into()],
            vec!["xxx".into(), "1".into()],
        ]);
        assert!(t.contains("a    long-header"));
        assert!(t.contains("---"));
    }

    #[test]
    fn fmt_secs_picks_units() {
        assert!(fmt_secs(2.5).ends_with(" s"));
        assert!(fmt_secs(0.002).ends_with(" ms"));
        assert!(fmt_secs(2.0e-6).ends_with(" µs"));
    }
}

pub mod microbench;
