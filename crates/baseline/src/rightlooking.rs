//! Right-looking supernodal factorization with 1D cyclic mapping.
//!
//! Scheduling runs through the shared [`sympack::sched::TaskEngine`]; the
//! baseline's character survives as *parameters* of that runtime: a
//! per-kernel submission overhead ([`RUNTIME_TASK_OVERHEAD`]) and a
//! two-sided blocking fetch with a rendezvous charge per receive
//! ([`FetchConfig::host_two_sided`]).

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use sympack::map2d::ProcGrid;
use sympack::sched::{self, CommLayer, FetchConfig, FetchMode, TaskEngine, TaskKind};
use sympack::storage::BlockStore;
use sympack::trisolve::{self, SolveParams};
use sympack::{RtqPolicy, SolverError};
use sympack_dense::Mat;
use sympack_gpu::{KernelEngine, OffloadThresholds, OomPolicy, OpCounts};
use sympack_ordering::{compute_ordering, OrderingKind};
use sympack_pgas::coalesce::{BcastTopology, CoalesceConfig};
use sympack_pgas::{
    FaultPlan, GlobalPtr, MemKind, NetModel, PgasConfig, Rank, RunReport, Runtime, StatsSnapshot,
};
use sympack_sparse::SparseSym;
use sympack_symbolic::{analyze, AnalyzeOptions, SymbolicFactor};
use sympack_trace::profile::Profile;
use sympack_trace::{TraceCat, TraceEvent, Tracer};

/// Per-receive rendezvous overhead of the two-sided protocol (seconds).
const RENDEZVOUS_OVERHEAD: f64 = 5.0e-6;

/// Per-kernel submission overhead of the baseline's dynamic runtime
/// scheduler (StarPU in the paper's PaStiX build): every task goes through
/// dependency tracking, worker selection and queue hand-off. Published
/// StarPU measurements put this at several microseconds per task.
const RUNTIME_TASK_OVERHEAD: f64 = 6.0e-6;

/// Modeled wire size of one panel/aggregate notification (global pointer
/// plus message metadata), charged per sub-frame when signals coalesce.
pub(crate) use sympack_pgas::coalesce::SIGNAL_WIRE_BYTES;

/// Baseline run configuration (mirrors [`sympack::SolverOptions`] minus the
/// choices the baseline doesn't have: mapping is 1D).
#[derive(Debug, Clone)]
pub struct BaselineOptions {
    /// Fill-reducing ordering — the paper uses the same Scotch ordering for
    /// both solvers, so default to nested dissection here too.
    pub ordering: OrderingKind,
    /// Supernode/amalgamation options (same defaults as symPACK-rs).
    pub analyze: AnalyzeOptions,
    /// Virtual nodes.
    pub n_nodes: usize,
    /// Ranks per node.
    pub ranks_per_node: usize,
    /// Communication cost model.
    pub net: NetModel,
    /// GPU offload on/off (PaStiX 6.2.2 is GPU-capable via StarPU/cuBLAS).
    pub gpu: bool,
    /// Optional threshold override.
    pub thresholds: Option<OffloadThresholds>,
    /// Ready-task-queue ordering policy of the shared runtime.
    pub rtq_policy: RtqPolicy,
    /// Collect a task timeline (factorization + solve).
    pub trace: bool,
    /// Device-OOM fallback policy on the fetch path (§4.2 semantics, shared
    /// with the fan-out solver).
    pub oom_policy: OomPolicy,
    /// Per-rank device-memory quota in bytes.
    pub device_quota: usize,
    /// Seeded network fault injection; `None` = reliable network.
    pub faults: Option<FaultPlan>,
    /// Run ranks in deterministic lockstep (reproducible schedules).
    pub deterministic: bool,
    /// Broadcast topology knob, accepted for option-surface parity with
    /// [`sympack::SolverOptions`]. The 1D-mapped baselines broadcast
    /// panel-granular messages to a handful of destinations, so `Tree`
    /// degrades to `Flat` here — only the fan-out engine relays.
    pub bcast: BcastTopology,
    /// Per-destination signal coalescing (shared comm layer); `None`
    /// keeps the historical one-RPC-per-signal wire pattern.
    pub coalesce: Option<CoalesceConfig>,
    /// A pre-computed symbolic factor to reuse (the plan-cache hit path):
    /// skips ordering + analysis entirely. Must have been analyzed for the
    /// same matrix pattern under the same `ordering`/`analyze` options —
    /// callers obtain it from a previous run's analysis or a fleet plan
    /// cache; with a mismatched factor the numeric phase produces garbage.
    pub symbolic: Option<Arc<SymbolicFactor>>,
}

impl Default for BaselineOptions {
    fn default() -> Self {
        BaselineOptions {
            ordering: OrderingKind::NestedDissection,
            analyze: AnalyzeOptions::default(),
            n_nodes: 1,
            ranks_per_node: 2,
            net: NetModel::default(),
            gpu: true,
            thresholds: None,
            rtq_policy: RtqPolicy::Lifo,
            trace: false,
            oom_policy: OomPolicy::CpuFallback,
            device_quota: usize::MAX,
            faults: None,
            deterministic: false,
            bcast: BcastTopology::Flat,
            coalesce: None,
            symbolic: None,
        }
    }
}

/// Result of a baseline run (same shape as the symPACK report, minus
/// solver-specific fields).
#[derive(Debug)]
pub struct BaselineReport {
    /// Solution in the original ordering.
    pub x: Vec<f64>,
    /// `‖A·x − b‖₂ / ‖b‖₂` against the original matrix.
    pub relative_residual: f64,
    /// Virtual factorization makespan (seconds).
    pub factor_time: f64,
    /// Virtual solve makespan (seconds).
    pub solve_time: f64,
    /// Per-rank kernel counts.
    pub op_counts: Vec<OpCounts>,
    /// Communication counters.
    pub stats: StatsSnapshot,
    /// Task timeline across ranks (empty unless [`BaselineOptions::trace`]).
    pub trace: Vec<TraceEvent>,
    /// Executed tasks per kind, summed over ranks (factorization + solve).
    pub task_counts: Vec<(String, u64)>,
    /// Assembled flight-recorder profile (None unless
    /// [`BaselineOptions::trace`]).
    pub profile: Option<Profile>,
}

/// What one rank reports back from a baseline run. Shared by the three
/// baseline families (same report shape).
pub(crate) struct RankOut {
    pub(crate) error: Option<SolverError>,
    pub(crate) factor_time: f64,
    pub(crate) solve_time: f64,
    pub(crate) counts: OpCounts,
    pub(crate) x_pieces: Vec<(usize, Vec<f64>)>,
    pub(crate) trace: Vec<TraceEvent>,
    pub(crate) tasks: Vec<(String, u64)>,
}

/// Assemble the cross-rank [`BaselineReport`] from per-rank outputs,
/// propagating the first per-rank error (rank order) if any. All three
/// baseline families route through here, so the flight-recorder profile
/// (critical path, wait attribution, comm matrix) is assembled in one place.
pub(crate) fn build_report(
    engine: &'static str,
    a: &SparseSym,
    b: &[f64],
    sf: &SymbolicFactor,
    run: RunReport<RankOut>,
    traced: bool,
) -> Result<BaselineReport, SolverError> {
    let RunReport {
        results: mut outs,
        makespan,
        final_clocks,
        stats,
        comm,
        ..
    } = run;
    if let Some(pos) = outs.iter().position(|o| o.error.is_some()) {
        return Err(outs.swap_remove(pos).error.expect("checked"));
    }
    let n = a.n();
    let mut xp = vec![0.0; n];
    for out in &outs {
        for (sn, piece) in &out.x_pieces {
            let first = sf.partition.first_col(*sn);
            xp[first..first + piece.len()].copy_from_slice(piece);
        }
    }
    let x = sf.perm.unapply_vec(&xp);
    let relative_residual = a.relative_residual(&x, b);
    let mut totals: BTreeMap<String, u64> = BTreeMap::new();
    for out in &outs {
        for (k, v) in &out.tasks {
            *totals.entry(k.clone()).or_insert(0) += v;
        }
    }
    let factor_time = outs.iter().map(|o| o.factor_time).fold(0.0, f64::max);
    let solve_time = outs.iter().map(|o| o.solve_time).fold(0.0, f64::max);
    let op_counts: Vec<OpCounts> = outs.iter().map(|o| o.counts).collect();
    let trace: Vec<TraceEvent> = outs.into_iter().flat_map(|o| o.trace).collect();
    let profile =
        traced.then(|| Profile::build(engine, &trace, makespan, final_clocks.len(), comm));
    Ok(BaselineReport {
        x,
        relative_residual,
        factor_time,
        solve_time,
        op_counts,
        stats,
        trace,
        task_counts: totals.into_iter().collect(),
        profile,
    })
}

/// Drain the rank-level comm tracer (empty when tracing is off).
pub(crate) fn comm_events(rank: &mut Rank) -> Vec<TraceEvent> {
    rank.take_tracer()
        .map(Tracer::into_events)
        .unwrap_or_default()
}

/// The two task species of the panel-granular right-looking algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum RlKey {
    /// POTRF + all TRSMs of owned supernode `j`, then the panel broadcast.
    Factor { j: usize },
    /// Apply every update of received panel `j` to this rank's supernodes.
    Apply { j: usize },
}

impl TaskKind for RlKey {
    fn priority_key(&self) -> (usize, usize) {
        match *self {
            RlKey::Factor { j } => (j, 0),
            RlKey::Apply { j } => (j, 1),
        }
    }
    fn seed_key(&self) -> (usize, usize, usize, usize) {
        match *self {
            RlKey::Factor { j } => (j, 0, 0, 0),
            RlKey::Apply { j } => (j, 1, 0, 0),
        }
    }
    fn kind_name(&self) -> &'static str {
        match self {
            RlKey::Factor { .. } => "factor_panel",
            RlKey::Apply { .. } => "apply_panel",
        }
    }
    fn trace_label(&self) -> String {
        match *self {
            RlKey::Factor { j } => format!("P({j})"),
            RlKey::Apply { j } => format!("A({j})"),
        }
    }
    fn trace_cat(&self) -> TraceCat {
        match self {
            RlKey::Factor { .. } => TraceCat::Potrf,
            RlKey::Apply { .. } => TraceCat::Gemm,
        }
    }
}

/// A broadcast panel notification: global pointer to the packed panel of
/// supernode `j` (diagonal block followed by the off-diagonal blocks in
/// layout order).
#[derive(Debug, Clone, Copy)]
struct PanelSignal {
    ptr: GlobalPtr,
    j: usize,
}

impl sched::Signal for PanelSignal {
    fn ptr(&self) -> GlobalPtr {
        self.ptr
    }

    fn describe(&self) -> String {
        format!("broadcast panel of supernode {}", self.j)
    }
}

/// A received (or locally produced) panel, unpacked.
struct Panel {
    blocks: Vec<Mat>,
}

fn owner_of(j: usize, p: usize) -> usize {
    j % p
}

/// Pack the factored panel of supernode `j` into one buffer.
fn pack_panel(sf: &SymbolicFactor, store: &BlockStore, j: usize) -> Vec<f64> {
    let mut out = Vec::new();
    out.extend_from_slice(store.get((j, j)).expect("diag owned").dense().as_slice());
    for b in sf.layout.blocks_of(j) {
        let blk = store.get((b.target, j)).expect("block owned").dense();
        out.extend_from_slice(blk.as_slice());
    }
    out
}

/// Unpack a packed panel into its off-diagonal blocks (the diagonal factor
/// is not needed by the update application).
fn unpack_panel(sf: &SymbolicFactor, j: usize, data: &[f64]) -> Panel {
    let w = sf.partition.width(j);
    let mut off = w * w;
    let mut blocks = Vec::new();
    for b in sf.layout.blocks_of(j) {
        let len = b.n_rows * w;
        blocks.push(Mat::from_col_major(
            b.n_rows,
            w,
            data[off..off + len].to_vec(),
        ));
        off += len;
    }
    Panel { blocks }
}

/// Per-rank right-looking engine, installed as the rank's user state.
struct RlEngine {
    sf: Arc<SymbolicFactor>,
    store: BlockStore,
    kernels: KernelEngine,
    /// The shared scheduling core: dep counters, RTQ, inbox, tracer.
    rt: TaskEngine<RlKey, PanelSignal>,
    /// Received (or self-broadcast) panels awaiting application.
    inputs: HashMap<usize, Panel>,
    fetch: FetchConfig,
    /// Per-destination signal coalescing (pass-through when off).
    comm: CommLayer,
    p: usize,
    me: usize,
}

impl RlEngine {
    #[allow(clippy::too_many_arguments)]
    fn new(
        sf: Arc<SymbolicFactor>,
        ap: &SparseSym,
        grid: &ProcGrid,
        rank: usize,
        p: usize,
        kernels: KernelEngine,
        opts: &BaselineOptions,
        abort: Arc<AtomicBool>,
    ) -> Self {
        let store = BlockStore::init(&sf, ap, grid, rank);
        let ns = sf.n_supernodes();
        let mut rt: TaskEngine<RlKey, PanelSignal> = TaskEngine::new(opts.rtq_policy, abort);
        rt.set_task_overhead(RUNTIME_TASK_OVERHEAD);
        if opts.trace {
            rt.tracer = Some(Tracer::new());
        }
        // Incoming panel counts per owned supernode, and one apply task per
        // panel this rank must process.
        let mut incoming: HashMap<usize, usize> = HashMap::new();
        for j in (0..ns).filter(|&j| owner_of(j, p) == rank) {
            incoming.insert(j, 0);
        }
        for j in 0..ns {
            let mut relevant = false;
            for bb in sf.layout.blocks_of(j) {
                if owner_of(bb.target, p) == rank {
                    relevant = true;
                    *incoming.get_mut(&bb.target).expect("owned") += 1;
                }
            }
            if relevant {
                rt.insert_task(RlKey::Apply { j }, 1);
            }
        }
        for (&j, &deps) in &incoming {
            rt.insert_task(RlKey::Factor { j }, deps);
        }
        rt.seed_ready();
        let fetch = FetchConfig {
            device_enabled: kernels.gpu_enabled,
            device_threshold: 64 * 64,
            oom_policy: opts.oom_policy,
            mode: FetchMode::Blocking {
                overhead: RENDEZVOUS_OVERHEAD,
            },
        };
        RlEngine {
            sf,
            store,
            kernels,
            rt,
            inputs: HashMap::new(),
            fetch,
            comm: CommLayer::new(opts.coalesce),
            p,
            me: rank,
        }
    }

    /// Resolve queued panel signals: blocking two-sided receives through the
    /// runtime's shared fetch path.
    fn drain_pending(&mut self, rank: &mut Rank) {
        let signals = self.rt.take_signals();
        if signals.is_empty() {
            return;
        }
        let cfg = self.fetch;
        let res = sched::drain_signals(rank, signals, &cfg, |_rank, s, data, ready_at| {
            self.inputs.insert(s.j, unpack_panel(&self.sf, s.j, &data));
            self.rt.dec(RlKey::Apply { j: s.j }, ready_at);
        });
        if let Err(err) = res {
            self.rt.fail(rank, err);
        }
    }

    fn step(&mut self, rank: &mut Rank) -> bool {
        self.drain_pending(rank);
        self.comm.tick(rank);
        let Some((key, ready_at)) = self.rt.pick() else {
            self.comm.flush_all(rank);
            return false;
        };
        self.rt.begin(rank, ready_at);
        match key {
            RlKey::Factor { j } => self.exec_factor(rank, j),
            RlKey::Apply { j } => self.exec_apply(rank, j),
        }
        self.rt.complete(key);
        true
    }

    /// POTRF + TRSMs of supernode `j`, then broadcast the whole panel to
    /// every rank owning a target (self included, without communication).
    fn exec_factor(&mut self, rank: &mut Rank, j: usize) {
        let key = RlKey::Factor { j };
        let mut diag = self.store.take((j, j)).expect("diag owned").into_dense();
        let (_, secs) = self
            .kernels
            .potrf(&mut diag)
            .expect("baseline requires SPD input");
        self.rt.charge(rank, key, secs);
        for bb in self.sf.layout.blocks_of(j).to_vec() {
            let mut blk = self
                .store
                .take((bb.target, j))
                .expect("block owned")
                .into_dense();
            let (_, secs) = self.kernels.trsm(&mut blk, &diag);
            self.rt.charge(rank, key, secs);
            self.store.put((bb.target, j), blk);
        }
        self.store.put((j, j), diag);
        let mut dests: Vec<usize> = self
            .sf
            .layout
            .blocks_of(j)
            .iter()
            .map(|bb| owner_of(bb.target, self.p))
            .collect();
        dests.sort_unstable();
        dests.dedup();
        if dests.is_empty() {
            return;
        }
        let packed = pack_panel(&self.sf, &self.store, j);
        let remote: Vec<usize> = dests.iter().copied().filter(|&d| d != self.me).collect();
        if !remote.is_empty() {
            let ptr = rank.alloc(MemKind::Host, packed.len()).expect("host alloc");
            rank.write_local(&ptr, &packed);
            for d in remote {
                let sig = PanelSignal { ptr, j };
                // Signals ride the droppable/duplicable path; the receiving
                // inbox deduplicates and the stall detector diagnoses drops.
                // try_with_state: a straggling duplicate may land after the
                // factorization state is torn down.
                self.comm.send(rank, d, SIGNAL_WIRE_BYTES, move |r| {
                    r.try_with_state::<RlEngine, _>(|_, st| {
                        st.rt.post_unique(sig);
                    });
                });
            }
        }
        if dests.contains(&self.me) {
            // Self-application without communication.
            self.inputs.insert(j, unpack_panel(&self.sf, j, &packed));
            let now = rank.now();
            self.rt.dec(RlKey::Apply { j }, now);
        }
    }

    /// Apply every update from panel `j` into this rank's supernodes and
    /// release the owned factor tasks whose last input this was.
    fn exec_apply(&mut self, rank: &mut Rank, j: usize) {
        let key = RlKey::Apply { j };
        let panel = self.inputs.remove(&j).expect("panel present");
        let blocks_meta = self.sf.layout.blocks_of(j).to_vec();
        let mut completed_targets = Vec::new();
        for (bi, bb) in blocks_meta.iter().enumerate() {
            let b = bb.target;
            if owner_of(b, self.p) != self.me {
                continue;
            }
            completed_targets.push(b);
            let first_b = self.sf.partition.first_col(b);
            let rows_b = self.sf.patterns[j][bb.row_offset..bb.row_offset + bb.n_rows].to_vec();
            let lb = &panel.blocks[bi];
            for (ai, ba) in blocks_meta.iter().enumerate().skip(bi) {
                let a = ba.target;
                let la = &panel.blocks[ai];
                if a == b {
                    // SYRK into the diagonal block of b.
                    let nb = lb.rows();
                    let mut temp = Mat::zeros(nb, nb);
                    let (_, secs) = self.kernels.syrk(&mut temp, lb);
                    self.rt.charge(rank, key, secs);
                    let target = self.store.get_mut((b, b)).expect("diag owned").dense_mut();
                    for (ci, &gc) in rows_b.iter().enumerate() {
                        let tc = gc - first_b;
                        for (ri, &gr) in rows_b.iter().enumerate().skip(ci) {
                            target[(gr - first_b, tc)] += temp[(ri, ci)];
                        }
                    }
                } else {
                    let rows_a = &self.sf.patterns[j][ba.row_offset..ba.row_offset + ba.n_rows];
                    let tinfo = self.sf.layout.find(a, b).expect("target block exists");
                    let target_rows =
                        &self.sf.patterns[b][tinfo.row_offset..tinfo.row_offset + tinfo.n_rows];
                    let row_map: Vec<usize> = rows_a
                        .iter()
                        .map(|r| target_rows.binary_search(r).expect("row containment"))
                        .collect();
                    let mut temp = Mat::zeros(la.rows(), lb.rows());
                    let (_, secs) = self.kernels.gemm(&mut temp, la, lb);
                    self.rt.charge(rank, key, secs);
                    let target = self
                        .store
                        .get_mut((a, b))
                        .expect("target block owned")
                        .dense_mut();
                    for (ci, &gc) in rows_b.iter().enumerate() {
                        let tc = gc - first_b;
                        for (ri, &tr) in row_map.iter().enumerate() {
                            target[(tr, tc)] += temp[(ri, ci)];
                        }
                    }
                }
            }
        }
        completed_targets.sort_unstable();
        completed_targets.dedup();
        let now = rank.now();
        for t in completed_targets {
            self.rt.dec(RlKey::Factor { j: t }, now);
        }
    }
}

/// Factor and solve with the right-looking baseline; panics on failure
/// (see [`try_baseline_factor_and_solve`] for the fallible form).
pub fn baseline_factor_and_solve(
    a: &SparseSym,
    b: &[f64],
    opts: &BaselineOptions,
) -> BaselineReport {
    try_baseline_factor_and_solve(a, b, opts).expect("baseline factorization failed")
}

/// The symbolic factor a baseline run works from: the caller-provided
/// shared one ([`BaselineOptions::symbolic`], the plan-cache hit path) or a
/// fresh ordering + analysis.
pub(crate) fn baseline_symbolic(a: &SparseSym, opts: &BaselineOptions) -> Arc<SymbolicFactor> {
    match &opts.symbolic {
        Some(sf) => Arc::clone(sf),
        None => {
            let ordering = compute_ordering(a, opts.ordering);
            Arc::new(analyze(a, &ordering, &opts.analyze))
        }
    }
}

/// Factor and solve with the right-looking baseline.
///
/// # Errors
/// [`SolverError::DeviceOom`] under the Abort OOM policy;
/// [`SolverError::FetchTimeout`] / [`SolverError::Stalled`] under fault
/// injection when the retry budget or the quiescence detector gives up.
pub fn try_baseline_factor_and_solve(
    a: &SparseSym,
    b: &[f64],
    opts: &BaselineOptions,
) -> Result<BaselineReport, SolverError> {
    assert_eq!(b.len(), a.n());
    let sf = baseline_symbolic(a, opts);
    let ap = Arc::new(a.permute(sf.perm.as_slice()));
    let bp = Arc::new(sf.perm.apply_vec(b));
    let p = opts.n_nodes * opts.ranks_per_node;
    let grid = ProcGrid::one_dimensional(p);
    let mut config = PgasConfig::multi_node(opts.n_nodes, opts.ranks_per_node);
    config.net = opts.net.clone();
    config.device_quota = opts.device_quota;
    config.faults = opts.faults;
    config.deterministic = opts.deterministic;
    let abort = Arc::new(AtomicBool::new(false));
    let opts2 = opts.clone();
    let report = Runtime::run(config, |rank| {
        run_rank(rank, &sf, &ap, &bp, grid, p, &opts2, &abort)
    });
    build_report("rightlooking", a, b, &sf, report, opts.trace)
}

#[allow(clippy::too_many_arguments)] // one-shot per-rank closure body
fn run_rank(
    rank: &mut Rank,
    sf: &Arc<SymbolicFactor>,
    ap: &SparseSym,
    bp: &[f64],
    grid: ProcGrid,
    p: usize,
    opts: &BaselineOptions,
    abort: &Arc<AtomicBool>,
) -> RankOut {
    let me = rank.id();
    if opts.trace {
        // Comm-layer spans (rget/rput/rpc/drain) for the profile.
        rank.set_tracer(Tracer::new());
    }
    let mut kernels = if opts.gpu {
        KernelEngine::new_gpu()
    } else {
        KernelEngine::new_cpu()
    };
    if let Some(t) = &opts.thresholds {
        kernels.thresholds = t.clone();
    }
    let engine = RlEngine::new(
        Arc::clone(sf),
        ap,
        &grid,
        me,
        p,
        kernels,
        opts,
        Arc::clone(abort),
    );
    let start = rank.now();
    let mut engine = sched::run_event_loop(
        rank,
        engine,
        |rank, st: &mut RlEngine| {
            while st.step(rank) {}
            st.rt.finished() || rank.job_aborted()
        },
        |rank, st| {
            let (done, total) = (st.rt.done_count(), st.rt.total());
            st.rt.fail(
                rank,
                SolverError::Stalled {
                    rank: rank.id(),
                    done,
                    total,
                    detail: "right-looking factorization quiesced with unfinished tasks \
                             (dropped panel broadcast suspected)"
                        .into(),
                },
            );
        },
    );
    let factor_time = rank.now() - start;
    let aborted = engine.rt.aborted() || rank.job_aborted();
    if !aborted {
        engine.rt.debug_assert_completed();
    }
    let mut trace = engine
        .rt
        .tracer
        .take()
        .map(Tracer::into_events)
        .unwrap_or_default();
    let mut tasks: Vec<(String, u64)> = engine
        .rt
        .task_counts()
        .iter()
        .map(|&(k, v)| (k.to_string(), v))
        .collect();
    if aborted {
        // Skip the solve collectively: the sticky job-abort flag makes every
        // rank take this early return, keeping the barriers aligned.
        trace.extend(comm_events(rank));
        return RankOut {
            error: engine.rt.error.take(),
            factor_time,
            solve_time: 0.0,
            counts: engine.kernels.counts,
            x_pieces: Vec::new(),
            trace,
            tasks,
        };
    }
    // Solve with the shared distributed algorithm, 1D grid + rendezvous
    // overhead per message.
    let solve_kernels = if opts.gpu {
        KernelEngine::new_gpu()
    } else {
        KernelEngine::new_cpu()
    };
    let params = SolveParams {
        policy: opts.rtq_policy,
        msg_overhead: RENDEZVOUS_OVERHEAD,
        trace: opts.trace,
    };
    let mut out = trisolve::solve(
        rank,
        Arc::clone(sf),
        grid,
        &engine.store,
        bp,
        solve_kernels,
        &params,
    );
    trace.extend(std::mem::take(&mut out.trace));
    trace.extend(comm_events(rank));
    tasks.extend(out.task_counts.iter().map(|&(k, v)| (k.to_string(), v)));
    RankOut {
        error: out.error.take(),
        factor_time,
        solve_time: out.elapsed,
        counts: engine.kernels.counts,
        x_pieces: out.x.into_iter().collect(),
        trace,
        tasks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sympack_sparse::gen::{laplacian_2d, random_spd};
    use sympack_sparse::vecops::test_rhs;

    #[test]
    fn multi_rank_baseline_matches_single_rank() {
        let a = random_spd(70, 5, 13);
        let b = test_rhs(70);
        let one = baseline_factor_and_solve(
            &a,
            &b,
            &BaselineOptions {
                n_nodes: 1,
                ranks_per_node: 1,
                ..Default::default()
            },
        );
        let four = baseline_factor_and_solve(
            &a,
            &b,
            &BaselineOptions {
                n_nodes: 2,
                ranks_per_node: 2,
                ..Default::default()
            },
        );
        assert!(one.relative_residual < 1e-10);
        assert!(four.relative_residual < 1e-10);
        let diff = sympack_sparse::vecops::max_abs_diff(&one.x, &four.x);
        assert!(diff < 1e-8, "solutions diverge: {diff}");
    }

    #[test]
    fn baseline_agrees_with_sympack() {
        let a = laplacian_2d(8, 7);
        let b = test_rhs(a.n());
        let base = baseline_factor_and_solve(&a, &b, &BaselineOptions::default());
        let sp = sympack::SymPack::factor_and_solve(&a, &b, &sympack::SolverOptions::default());
        let diff = sympack_sparse::vecops::max_abs_diff(&base.x, &sp.x);
        assert!(diff < 1e-8, "solvers disagree: {diff}");
    }

    #[test]
    fn one_dimensional_map_serializes_columns() {
        // Structural sanity: with the 1D map every block of supernode j has
        // the same owner.
        let g = ProcGrid::one_dimensional(5);
        for j in 0..30 {
            for i in j..30 {
                assert_eq!(g.map(i, j), j % 5);
            }
        }
    }

    #[test]
    fn baseline_trace_and_counts_cover_both_phases() {
        let a = laplacian_2d(7, 7);
        let b = test_rhs(a.n());
        let r = baseline_factor_and_solve(
            &a,
            &b,
            &BaselineOptions {
                trace: true,
                ..Default::default()
            },
        );
        assert!(
            !r.trace.is_empty(),
            "tracer wired through the shared runtime"
        );
        let kinds: Vec<&str> = r.task_counts.iter().map(|(k, _)| k.as_str()).collect();
        for expected in ["factor_panel", "apply_panel", "fwd_diag", "bwd_diag"] {
            assert!(
                kinds.contains(&expected),
                "missing task kind {expected}: {kinds:?}"
            );
        }
    }
}
