//! Right-looking supernodal factorization with 1D cyclic mapping.

use std::collections::HashMap;
use std::sync::Arc;
use sympack::map2d::ProcGrid;
use sympack::storage::BlockStore;
use sympack::trisolve;
use sympack_dense::Mat;
use sympack_gpu::{KernelEngine, OffloadThresholds, OpCounts};
use sympack_ordering::{compute_ordering, OrderingKind};
use sympack_pgas::{GlobalPtr, MemKind, NetModel, PgasConfig, Rank, Runtime, StatsSnapshot};
use sympack_sparse::SparseSym;
use sympack_symbolic::{analyze, AnalyzeOptions, SymbolicFactor};

/// Per-receive rendezvous overhead of the two-sided protocol (seconds).
const RENDEZVOUS_OVERHEAD: f64 = 5.0e-6;

/// Per-kernel submission overhead of the baseline's dynamic runtime
/// scheduler (StarPU in the paper's PaStiX build): every task goes through
/// dependency tracking, worker selection and queue hand-off. Published
/// StarPU measurements put this at several microseconds per task.
const RUNTIME_TASK_OVERHEAD: f64 = 6.0e-6;

/// Baseline run configuration (mirrors [`sympack::SolverOptions`] minus the
/// choices the baseline doesn't have: mapping is 1D, scheduling is in-order).
#[derive(Debug, Clone)]
pub struct BaselineOptions {
    /// Fill-reducing ordering — the paper uses the same Scotch ordering for
    /// both solvers, so default to nested dissection here too.
    pub ordering: OrderingKind,
    /// Supernode/amalgamation options (same defaults as symPACK-rs).
    pub analyze: AnalyzeOptions,
    /// Virtual nodes.
    pub n_nodes: usize,
    /// Ranks per node.
    pub ranks_per_node: usize,
    /// Communication cost model.
    pub net: NetModel,
    /// GPU offload on/off (PaStiX 6.2.2 is GPU-capable via StarPU/cuBLAS).
    pub gpu: bool,
    /// Optional threshold override.
    pub thresholds: Option<OffloadThresholds>,
}

impl Default for BaselineOptions {
    fn default() -> Self {
        BaselineOptions {
            ordering: OrderingKind::NestedDissection,
            analyze: AnalyzeOptions::default(),
            n_nodes: 1,
            ranks_per_node: 2,
            net: NetModel::default(),
            gpu: true,
            thresholds: None,
        }
    }
}

/// Result of a baseline run (same shape as the symPACK report, minus
/// solver-specific fields).
#[derive(Debug)]
pub struct BaselineReport {
    /// Solution in the original ordering.
    pub x: Vec<f64>,
    /// `‖A·x − b‖₂ / ‖b‖₂` against the original matrix.
    pub relative_residual: f64,
    /// Virtual factorization makespan (seconds).
    pub factor_time: f64,
    /// Virtual solve makespan (seconds).
    pub solve_time: f64,
    /// Per-rank kernel counts.
    pub op_counts: Vec<OpCounts>,
    /// Communication counters.
    pub stats: StatsSnapshot,
}

/// A broadcast panel notification: global pointer to the packed panel of
/// supernode `j` (diagonal block followed by the off-diagonal blocks in
/// layout order).
#[derive(Debug, Clone, Copy)]
struct PanelSignal {
    ptr: GlobalPtr,
    j: usize,
}

/// Rank-local state installed while the factorization runs.
struct RlState {
    pending: Vec<PanelSignal>,
}

/// A received (or locally produced) panel, unpacked.
struct Panel {
    blocks: Vec<Mat>,
}

fn owner_of(j: usize, p: usize) -> usize {
    j % p
}

/// Pack the factored panel of supernode `j` into one buffer.
fn pack_panel(sf: &SymbolicFactor, store: &BlockStore, j: usize) -> Vec<f64> {
    let mut out = Vec::new();
    out.extend_from_slice(store.get((j, j)).expect("diag owned").as_slice());
    for b in sf.layout.blocks_of(j) {
        out.extend_from_slice(store.get((b.target, j)).expect("block owned").as_slice());
    }
    out
}

/// Unpack a packed panel into (diag, blocks-in-layout-order).
fn unpack_panel(sf: &SymbolicFactor, j: usize, data: &[f64]) -> (Mat, Panel) {
    let w = sf.partition.width(j);
    let diag = Mat::from_col_major(w, w, data[..w * w].to_vec());
    let mut off = w * w;
    let mut blocks = Vec::new();
    for b in sf.layout.blocks_of(j) {
        let len = b.n_rows * w;
        blocks.push(Mat::from_col_major(b.n_rows, w, data[off..off + len].to_vec()));
        off += len;
    }
    (diag, Panel { blocks })
}

/// Apply every update from panel `j` into this rank's supernodes; returns
/// the owned targets whose incoming count should drop.
#[allow(clippy::too_many_arguments)]
fn apply_panel(
    sf: &SymbolicFactor,
    store: &mut BlockStore,
    kernels: &mut KernelEngine,
    rank: &mut Rank,
    p: usize,
    me: usize,
    j: usize,
    panel: &Panel,
) -> Vec<usize> {
    let blocks_meta = sf.layout.blocks_of(j);
    let mut completed_targets = Vec::new();
    for (bi, bb) in blocks_meta.iter().enumerate() {
        let b = bb.target;
        if owner_of(b, p) != me {
            continue;
        }
        completed_targets.push(b);
        let first_b = sf.partition.first_col(b);
        let rows_b =
            &sf.patterns[j][bb.row_offset..bb.row_offset + bb.n_rows];
        let lb = &panel.blocks[bi];
        for (ai, ba) in blocks_meta.iter().enumerate().skip(bi) {
            let a = ba.target;
            let la = &panel.blocks[ai];
            if a == b {
                // SYRK into the diagonal block of b.
                let nb = lb.rows();
                let mut temp = Mat::zeros(nb, nb);
                let (_, secs) = kernels.syrk(&mut temp, lb);
                rank.advance(secs + RUNTIME_TASK_OVERHEAD);
                let target = store.get_mut((b, b)).expect("diag owned");
                for (ci, &gc) in rows_b.iter().enumerate() {
                    let tc = gc - first_b;
                    for (ri, &gr) in rows_b.iter().enumerate().skip(ci) {
                        target[(gr - first_b, tc)] += temp[(ri, ci)];
                    }
                }
            } else {
                let rows_a =
                    &sf.patterns[j][ba.row_offset..ba.row_offset + ba.n_rows];
                let tinfo = sf.layout.find(a, b).expect("target block exists");
                let target_rows =
                    &sf.patterns[b][tinfo.row_offset..tinfo.row_offset + tinfo.n_rows];
                let row_map: Vec<usize> = rows_a
                    .iter()
                    .map(|r| target_rows.binary_search(r).expect("row containment"))
                    .collect();
                let mut temp = Mat::zeros(la.rows(), lb.rows());
                let (_, secs) = kernels.gemm(&mut temp, la, lb);
                rank.advance(secs + RUNTIME_TASK_OVERHEAD);
                let target = store.get_mut((a, b)).expect("target block owned");
                for (ci, &gc) in rows_b.iter().enumerate() {
                    let tc = gc - first_b;
                    for (ri, &tr) in row_map.iter().enumerate() {
                        target[(tr, tc)] += temp[(ri, ci)];
                    }
                }
            }
        }
    }
    completed_targets.sort_unstable();
    completed_targets.dedup();
    completed_targets
}

/// Factor and solve with the right-looking baseline.
pub fn baseline_factor_and_solve(
    a: &SparseSym,
    b: &[f64],
    opts: &BaselineOptions,
) -> BaselineReport {
    assert_eq!(b.len(), a.n());
    let ordering = compute_ordering(a, opts.ordering);
    let sf = Arc::new(analyze(a, &ordering, &opts.analyze));
    let ap = Arc::new(a.permute(sf.perm.as_slice()));
    let bp = Arc::new(sf.perm.apply_vec(b));
    let p = opts.n_nodes * opts.ranks_per_node;
    let grid = ProcGrid::one_dimensional(p);
    let mut config = PgasConfig::multi_node(opts.n_nodes, opts.ranks_per_node);
    config.net = opts.net.clone();
    let opts2 = opts.clone();
    let report = Runtime::run(config, |rank| {
        run_rank(rank, &sf, &ap, &bp, grid, p, &opts2)
    });
    let outs = report.results;
    let n = a.n();
    let mut xp = vec![0.0; n];
    for out in &outs {
        for (sn, piece) in &out.x_pieces {
            let first = sf.partition.first_col(*sn);
            xp[first..first + piece.len()].copy_from_slice(piece);
        }
    }
    let x = sf.perm.unapply_vec(&xp);
    let relative_residual = a.relative_residual(&x, b);
    BaselineReport {
        x,
        relative_residual,
        factor_time: outs.iter().map(|o| o.factor_time).fold(0.0, f64::max),
        solve_time: outs.iter().map(|o| o.solve_time).fold(0.0, f64::max),
        op_counts: outs.iter().map(|o| o.counts).collect(),
        stats: report.stats,
    }
}

struct RankOut {
    factor_time: f64,
    solve_time: f64,
    counts: OpCounts,
    x_pieces: Vec<(usize, Vec<f64>)>,
}

fn run_rank(
    rank: &mut Rank,
    sf: &Arc<SymbolicFactor>,
    ap: &SparseSym,
    bp: &[f64],
    grid: ProcGrid,
    p: usize,
    opts: &BaselineOptions,
) -> RankOut {
    let me = rank.id();
    let ns = sf.n_supernodes();
    let mut kernels =
        if opts.gpu { KernelEngine::new_gpu() } else { KernelEngine::new_cpu() };
    if let Some(t) = &opts.thresholds {
        kernels.thresholds = t.clone();
    }
    let mut store = BlockStore::init(sf, ap, &grid, me);
    // Incoming panel counts per owned supernode, and the set of panels this
    // rank must process.
    let mut incoming: HashMap<usize, usize> = HashMap::new();
    let mut panels_expected = 0usize;
    let owned: Vec<usize> = (0..ns).filter(|&j| owner_of(j, p) == me).collect();
    for &j in &owned {
        incoming.insert(j, 0);
    }
    for j in 0..ns {
        let mut relevant = false;
        for bb in sf.layout.blocks_of(j) {
            if owner_of(bb.target, p) == me {
                relevant = true;
                *incoming.get_mut(&bb.target).expect("owned") += 1;
            }
        }
        if relevant {
            panels_expected += 1;
        }
    }
    let mut inputs: HashMap<usize, (Mat, Panel)> = HashMap::new();
    let mut factored: HashMap<usize, bool> = owned.iter().map(|&j| (j, false)).collect();
    let mut factored_count = 0usize;
    let mut processed = 0usize;
    let start = rank.now();
    rank.set_state(RlState { pending: Vec::new() });
    loop {
        rank.progress();
        // Receive panels synchronously (two-sided flavor): block the virtual
        // clock on the transfer plus a rendezvous overhead.
        let signals =
            rank.with_state::<RlState, _>(|_, st| std::mem::take(&mut st.pending));
        for s in signals {
            let h = rank.rget(&s.ptr);
            let data = h.wait(rank);
            rank.advance(RENDEZVOUS_OVERHEAD);
            inputs.insert(s.j, unpack_panel(sf, s.j, &data));
        }
        // Apply any unapplied received panels.
        let ready_panels: Vec<usize> = inputs.keys().copied().collect();
        for j in ready_panels {
            let (_, panel) = inputs.remove(&j).expect("present");
            let targets = apply_panel(sf, &mut store, &mut kernels, rank, p, me, j, &panel);
            for t in targets {
                *incoming.get_mut(&t).expect("owned target") -= 1;
            }
            processed += 1;
        }
        // Factor every owned supernode whose updates are all in.
        let ready: Vec<usize> = owned
            .iter()
            .copied()
            .filter(|j| !factored[j] && incoming[&{ *j }] == 0)
            .collect();
        for j in ready {
            let mut diag = store.take((j, j)).expect("diag owned");
            let (_, secs) = kernels.potrf(&mut diag).expect("baseline requires SPD input");
            rank.advance(secs + RUNTIME_TASK_OVERHEAD);
            for bb in sf.layout.blocks_of(j) {
                let mut blk = store.take((bb.target, j)).expect("block owned");
                let (_, secs) = kernels.trsm(&mut blk, &diag);
                rank.advance(secs + RUNTIME_TASK_OVERHEAD);
                store.put((bb.target, j), blk);
            }
            store.put((j, j), diag);
            *factored.get_mut(&j).expect("owned") = true;
            factored_count += 1;
            // Broadcast the whole panel to every rank owning a target.
            let mut dests: Vec<usize> =
                sf.layout.blocks_of(j).iter().map(|bb| owner_of(bb.target, p)).collect();
            dests.sort_unstable();
            dests.dedup();
            if dests.is_empty() {
                continue;
            }
            let packed = pack_panel(sf, &store, j);
            let ptr = rank.alloc(MemKind::Host, packed.len()).expect("host alloc");
            rank.write_local(&ptr, &packed);
            for d in dests {
                if d == me {
                    // Self-application without communication.
                    let (_, panel) = unpack_panel(sf, j, &packed);
                    let targets =
                        apply_panel(sf, &mut store, &mut kernels, rank, p, me, j, &panel);
                    for t in targets {
                        *incoming.get_mut(&t).expect("owned target") -= 1;
                    }
                    processed += 1;
                } else {
                    let sig = PanelSignal { ptr, j };
                    rank.rpc(d, move |r| {
                        r.with_state::<RlState, _>(|_, st| st.pending.push(sig));
                    });
                }
            }
        }
        if factored_count == owned.len() && processed == panels_expected {
            break;
        }
        std::thread::yield_now();
    }
    rank.barrier();
    let factor_time = rank.now() - start;
    let _ = rank.take_state::<RlState>();
    // Solve with the shared distributed algorithm, 1D grid + rendezvous
    // overhead per message.
    let solve_kernels =
        if opts.gpu { KernelEngine::new_gpu() } else { KernelEngine::new_cpu() };
    let (x_map, solve_time) = trisolve::solve_with_overhead(
        rank,
        Arc::clone(sf),
        grid,
        &store,
        bp,
        solve_kernels,
        RENDEZVOUS_OVERHEAD,
    );
    RankOut {
        factor_time,
        solve_time,
        counts: kernels.counts,
        x_pieces: x_map.into_iter().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sympack_sparse::gen::{laplacian_2d, random_spd};
    use sympack_sparse::vecops::test_rhs;

    #[test]
    fn multi_rank_baseline_matches_single_rank() {
        let a = random_spd(70, 5, 13);
        let b = test_rhs(70);
        let one = baseline_factor_and_solve(
            &a,
            &b,
            &BaselineOptions { n_nodes: 1, ranks_per_node: 1, ..Default::default() },
        );
        let four = baseline_factor_and_solve(
            &a,
            &b,
            &BaselineOptions { n_nodes: 2, ranks_per_node: 2, ..Default::default() },
        );
        assert!(one.relative_residual < 1e-10);
        assert!(four.relative_residual < 1e-10);
        let diff = sympack_sparse::vecops::max_abs_diff(&one.x, &four.x);
        assert!(diff < 1e-8, "solutions diverge: {diff}");
    }

    #[test]
    fn baseline_agrees_with_sympack() {
        let a = laplacian_2d(8, 7);
        let b = test_rhs(a.n());
        let base = baseline_factor_and_solve(&a, &b, &BaselineOptions::default());
        let sp = sympack::SymPack::factor_and_solve(
            &a,
            &b,
            &sympack::SolverOptions::default(),
        );
        let diff = sympack_sparse::vecops::max_abs_diff(&base.x, &sp.x);
        assert!(diff < 1e-8, "solvers disagree: {diff}");
    }

    #[test]
    fn one_dimensional_map_serializes_columns() {
        // Structural sanity: with the 1D map every block of supernode j has
        // the same owner.
        let g = ProcGrid::one_dimensional(5);
        for j in 0..30 {
            for i in j..30 {
                assert_eq!(g.map(i, j), j % 5);
            }
        }
    }
}
