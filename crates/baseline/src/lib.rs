//! The comparison baseline: a right-looking supernodal solver in the style
//! of PaStiX (the solver the paper benchmarks against).
//!
//! Same substrates as symPACK-rs — the same symbolic analysis, dense
//! kernels, GPU cost model and PGAS runtime — but with the algorithmic
//! structure of a classical right-looking distributed solver:
//!
//! * **1D cyclic mapping**: supernode `j` (diagonal block *and* every
//!   off-diagonal block below it) lives on rank `j mod P`, so a big
//!   separator supernode serializes on one rank (the bottleneck the paper's
//!   2D block-cyclic map removes, §3.3);
//! * **panel granularity**: a supernode is factored as one unit (POTRF +
//!   all TRSMs back-to-back) and broadcast as one message, so no dependent
//!   work can start until the whole panel is finished and transferred;
//! * **eager right-looking updates**: a received panel is applied to *all*
//!   local target supernodes immediately — correct, but without the
//!   task-level overlap of the fan-out RTQ scheduler;
//! * **two-sided flavored communication**: receives pay an extra rendezvous
//!   overhead per message, as an MPI-style matched send/recv does.
//!
//! Numerically this produces the identical factor (same analysis, same
//! kernels), which the cross-solver tests exploit.
//!
//! [`fanin`] adds the third family of §2.3's taxonomy: a fan-in solver that
//! computes updates at the source owner and ships aggregate buffers.

pub mod fanboth;
pub mod fanin;
pub mod rightlooking;

pub use fanboth::{fanboth_factor_and_solve, try_fanboth_factor_and_solve};
pub use fanin::{fanin_factor_and_solve, try_fanin_factor_and_solve};
pub use rightlooking::{
    baseline_factor_and_solve, try_baseline_factor_and_solve, BaselineOptions, BaselineReport,
};

#[cfg(test)]
mod tests {
    use super::*;
    use sympack_sparse::gen::laplacian_2d;
    use sympack_sparse::vecops::test_rhs;

    #[test]
    fn baseline_is_numerically_correct() {
        let a = laplacian_2d(9, 8);
        let b = test_rhs(a.n());
        let r = baseline_factor_and_solve(&a, &b, &BaselineOptions::default());
        assert!(
            r.relative_residual < 1e-10,
            "residual {}",
            r.relative_residual
        );
    }
}
