//! Fan-both supernodal factorization — the third family of Ashcraft's
//! taxonomy (§2.3) and the algorithm of the original symPACK paper the
//! authors cite as [15] (Jacquelin et al., "An Asynchronous Task-based
//! Fan-Both Sparse Cholesky Solver").
//!
//! Fan-both generalizes fan-out and fan-in through a **computation map**:
//! update `U(a,j,b)` may execute on *any* rank, so both kinds of messages
//! flow — *factors* travel from their owners to the compute ranks, and
//! *aggregates* travel from compute ranks to the target owners. This
//! implementation uses the natural 2D computation map
//! `cmap(a,j,b) = map(a,j)` (the owner of the source block `L(a,j)`), so:
//!
//! * a factored block `L(b,j)` is sent only **down its grid column** (to the
//!   owners of blocks `(a,j)`, `a ≥ b`) — `pr` destinations instead of the
//!   fan-out's scattered target owners;
//! * each rank accumulates all of its products for a target block `(a,b)`
//!   in one aggregation buffer and ships it **once** — the fan-in economy.
//!
//! Everything else matches the fan-out solver: 2D block-cyclic ownership,
//! asynchronous signal + one-sided get transport, and the same task species
//! — fan-both schedules the fan-out's own [`TaskKey`] through the shared
//! [`sympack::sched::TaskEngine`], so the comparison in the `taxonomy`
//! bench isolates the communication family.

use std::collections::HashMap;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use sympack::map2d::ProcGrid;
use sympack::sched::{self, CommLayer, FetchConfig, FetchMode, TaskEngine};
use sympack::storage::BlockStore;
use sympack::trisolve::{self, SolveParams};
use sympack::{SolverError, TaskKey};
use sympack_dense::Mat;
use sympack_gpu::KernelEngine;
use sympack_pgas::{GlobalPtr, MemKind, PgasConfig, Rank, Runtime};
use sympack_sparse::SparseSym;
use sympack_symbolic::SymbolicFactor;
use sympack_trace::Tracer;

use crate::rightlooking::{
    build_report, comm_events, BaselineOptions, BaselineReport, RankOut, SIGNAL_WIRE_BYTES,
};

/// Incoming notifications.
#[derive(Debug, Clone, Copy)]
enum Msg {
    /// A factored block `L(i,j)` is available at `ptr`.
    Factor {
        ptr: GlobalPtr,
        i: usize,
        j: usize,
        rows: usize,
        cols: usize,
    },
    /// An aggregate for target block `(a,b)` is available at `ptr`.
    Aggregate {
        ptr: GlobalPtr,
        a: usize,
        b: usize,
        rows: usize,
        cols: usize,
    },
}

impl sched::Signal for Msg {
    fn ptr(&self) -> GlobalPtr {
        match self {
            Msg::Factor { ptr, .. } | Msg::Aggregate { ptr, .. } => *ptr,
        }
    }

    fn describe(&self) -> String {
        match self {
            Msg::Factor { i, j, .. } => format!("factored block L({i},{j})"),
            Msg::Aggregate { a, b, .. } => format!("aggregate update for block ({a},{b})"),
        }
    }
}

/// Per-rank fan-both engine, installed as the rank's user state.
struct FbEngine {
    sf: Arc<SymbolicFactor>,
    grid: ProcGrid,
    store: BlockStore,
    kernels: KernelEngine,
    /// The shared scheduling core: dep counters, RTQ, inbox, tracer.
    rt: TaskEngine<TaskKey, Msg>,
    /// Factored blocks available locally (own or fetched).
    inputs: HashMap<(usize, usize), Mat>,
    /// Aggregation buffers per target block.
    aggs: HashMap<(usize, usize), Mat>,
    /// For each input factor block `(i,j)`, the owned tasks consuming it
    /// (updates computing here, and — for diagonal factors — owned panels).
    consumers: HashMap<(usize, usize), Vec<TaskKey>>,
    /// Outstanding local update contributions per target block.
    my_contribs: HashMap<(usize, usize), usize>,
    fetch: FetchConfig,
    /// Per-destination signal coalescing (pass-through when off).
    comm: CommLayer,
    me: usize,
}

impl FbEngine {
    fn new(
        sf: Arc<SymbolicFactor>,
        ap: &SparseSym,
        grid: ProcGrid,
        rank: usize,
        kernels: KernelEngine,
        opts: &BaselineOptions,
        abort: Arc<AtomicBool>,
    ) -> Self {
        let store = BlockStore::init(&sf, ap, &grid, rank);
        let ns = sf.n_supernodes();
        let mut rt: TaskEngine<TaskKey, Msg> = TaskEngine::new(opts.rtq_policy, abort);
        if opts.trace {
            rt.tracer = Some(Tracer::new());
        }
        // Static task analysis. For each pair (a >= b) of targets of
        // supernode j, the update computes on cmap = map(a, j) and lands on
        // map(a, b). contrib_ranks[(a,b)] collects the distinct compute
        // ranks, which become the target-side dependency counts.
        let mut contrib_ranks: HashMap<(usize, usize), std::collections::HashSet<usize>> =
            HashMap::new();
        let mut consumers: HashMap<(usize, usize), Vec<TaskKey>> = HashMap::new();
        let mut my_contribs: HashMap<(usize, usize), usize> = HashMap::new();
        for j in 0..ns {
            let blocks = sf.layout.blocks_of(j);
            for (bi, bb) in blocks.iter().enumerate() {
                for ba in &blocks[bi..] {
                    let (a, b) = (ba.target, bb.target);
                    let cmap = grid.map(a, j);
                    contrib_ranks.entry((a, b)).or_default().insert(cmap);
                    if cmap == rank {
                        let key = TaskKey::Update { j, a, b };
                        rt.insert_task(key, if a == b { 1 } else { 2 });
                        consumers.entry((a, j)).or_default().push(key);
                        if a != b {
                            consumers.entry((b, j)).or_default().push(key);
                        }
                        *my_contribs.entry((a, b)).or_default() += 1;
                    }
                }
            }
        }
        // D/F tasks owned by me: a diagonal task waits for its incoming
        // aggregates; a panel task additionally waits for its diagonal
        // factor.
        for j in 0..ns {
            if grid.map(j, j) == rank {
                rt.insert_task(
                    TaskKey::Diag { j },
                    contrib_ranks.get(&(j, j)).map_or(0, |s| s.len()),
                );
            }
            for bb in sf.layout.blocks_of(j) {
                let i = bb.target;
                if grid.map(i, j) == rank {
                    rt.insert_task(
                        TaskKey::Panel { i, j },
                        1 + contrib_ranks.get(&(i, j)).map_or(0, |s| s.len()),
                    );
                    consumers
                        .entry((j, j))
                        .or_default()
                        .push(TaskKey::Panel { i, j });
                }
            }
        }
        rt.seed_ready();
        let fetch = FetchConfig {
            device_enabled: kernels.gpu_enabled,
            device_threshold: 64 * 64,
            oom_policy: opts.oom_policy,
            mode: FetchMode::NonBlocking,
        };
        FbEngine {
            sf,
            grid,
            store,
            kernels,
            rt,
            inputs: HashMap::new(),
            aggs: HashMap::new(),
            consumers,
            my_contribs,
            fetch,
            comm: CommLayer::new(opts.coalesce),
            me: rank,
        }
    }

    /// Resolve queued notifications through the runtime's shared one-sided
    /// fetch path. Fan-both does not track transfer completion times (its
    /// tasks start whenever picked), so the fetch `ready_at` is ignored.
    fn drain_pending(&mut self, rank: &mut Rank) {
        let signals = self.rt.take_signals();
        if signals.is_empty() {
            return;
        }
        let cfg = self.fetch;
        let res = sched::drain_signals(rank, signals, &cfg, |rank, msg, data, _ready_at| {
            let now = rank.now();
            match msg {
                Msg::Factor {
                    i, j, rows, cols, ..
                } => {
                    self.inputs
                        .insert((i, j), Mat::from_col_major(rows, cols, data));
                    if let Some(keys) = self.consumers.get(&(i, j)).cloned() {
                        for k in keys {
                            self.rt.dec(k, now);
                        }
                    }
                }
                Msg::Aggregate {
                    a, b, rows, cols, ..
                } => {
                    let buf = Mat::from_col_major(rows, cols, data);
                    absorb(&mut self.store, a, b, &buf);
                    self.dec_target(a, b, now);
                }
            }
        });
        if let Err(err) = res {
            self.rt.fail(rank, err);
        }
    }

    /// Release the target-side dependency of `(a,b)` after an aggregate
    /// lands.
    fn dec_target(&mut self, a: usize, b: usize, now: f64) {
        let key = if a == b {
            TaskKey::Diag { j: b }
        } else {
            TaskKey::Panel { i: a, j: b }
        };
        self.rt.dec(key, now);
    }

    fn step(&mut self, rank: &mut Rank) -> bool {
        self.drain_pending(rank);
        self.comm.tick(rank);
        let Some((key, ready_at)) = self.rt.pick() else {
            self.comm.flush_all(rank);
            return false;
        };
        self.rt.begin(rank, ready_at);
        match key {
            TaskKey::Diag { j } => self.exec_diag(rank, j),
            TaskKey::Panel { i, j } => self.exec_panel(rank, i, j),
            TaskKey::Update { j, a, b } => self.exec_update(rank, j, a, b),
        }
        self.rt.complete(key);
        true
    }

    fn exec_diag(&mut self, rank: &mut Rank, j: usize) {
        let mut diag = self.store.take((j, j)).expect("diag owned").into_dense();
        let (_, secs) = self
            .kernels
            .potrf(&mut diag)
            .expect("fan-both requires SPD input");
        self.rt.charge(rank, TaskKey::Diag { j }, secs);
        // Fan L(j,j) to the panel owners down the grid column.
        let mut dests: Vec<usize> = self
            .sf
            .layout
            .blocks_of(j)
            .iter()
            .map(|bb| self.grid.map(bb.target, j))
            .collect();
        dests.sort_unstable();
        dests.dedup();
        self.publish_factor(rank, &diag, j, j, &dests);
        // L(j,j) is also an input to this rank's own panel tasks.
        self.consume_local(rank, j, j);
        self.inputs.insert((j, j), diag.clone());
        self.store.put((j, j), diag);
    }

    fn exec_panel(&mut self, rank: &mut Rank, i: usize, j: usize) {
        let mut blk = self.store.take((i, j)).expect("panel owned").into_dense();
        let ldiag = self.inputs.get(&(j, j)).expect("diagonal factor present");
        let (_, secs) = self.kernels.trsm(&mut blk, ldiag);
        self.rt.charge(rank, TaskKey::Panel { i, j }, secs);
        // Fan L(i,j) to the compute ranks of updates that use it:
        // U(a,j,i) at map(a,j) for a >= i, and U(i,j,b) at map(i,j) = me.
        let mut dests: Vec<usize> = self
            .sf
            .layout
            .blocks_of(j)
            .iter()
            .filter(|bb| bb.target >= i)
            .map(|bb| self.grid.map(bb.target, j))
            .collect();
        dests.sort_unstable();
        dests.dedup();
        self.publish_factor(rank, &blk, i, j, &dests);
        self.consume_local(rank, i, j);
        self.inputs.insert((i, j), blk.clone());
        self.store.put((i, j), blk);
    }

    /// Release this rank's own consumers of a locally produced factor block.
    fn consume_local(&mut self, rank: &mut Rank, i: usize, j: usize) {
        let now = rank.now();
        if let Some(keys) = self.consumers.get(&(i, j)).cloned() {
            for k in keys {
                self.rt.dec(k, now);
            }
        }
    }

    /// Publish a factored block: place it in the shared heap and signal the
    /// remote destinations.
    fn publish_factor(&mut self, rank: &mut Rank, data: &Mat, i: usize, j: usize, dests: &[usize]) {
        let remote: Vec<usize> = dests.iter().copied().filter(|&d| d != self.me).collect();
        if remote.is_empty() {
            return;
        }
        let ptr = rank
            .alloc(MemKind::Host, data.rows() * data.cols())
            .expect("host alloc");
        rank.write_local(&ptr, data.as_slice());
        let (rows, cols) = (data.rows(), data.cols());
        for d in remote {
            let msg = Msg::Factor {
                ptr,
                i,
                j,
                rows,
                cols,
            };
            // Factor notifications ride the droppable/duplicable signal
            // path; the inbox deduplicates and the stall detector diagnoses
            // drops. try_with_state: a straggling duplicate may land after
            // the state is torn down.
            self.comm.send(rank, d, SIGNAL_WIRE_BYTES, move |r| {
                r.try_with_state::<FbEngine, _>(|_, st| {
                    st.rt.post_unique(msg);
                });
            });
        }
    }

    /// Run one update product into the aggregation buffer for `(a, b)`; ship
    /// or absorb the buffer once this rank's last contribution lands.
    fn exec_update(&mut self, rank: &mut Rank, j: usize, a: usize, b: usize) {
        let key = TaskKey::Update { j, a, b };
        let binfo_j = self.sf.layout.find(b, j).expect("source block");
        let rows_b =
            self.sf.patterns[j][binfo_j.row_offset..binfo_j.row_offset + binfo_j.n_rows].to_vec();
        let first_b = self.sf.partition.first_col(b);
        let lb = self.inputs.get(&(b, j)).expect("L(b,j) present");
        if a == b {
            let nb = lb.rows();
            let mut temp = Mat::zeros(nb, nb);
            let (_, secs) = self.kernels.syrk(&mut temp, lb);
            self.rt.charge(rank, key, secs);
            let w = self.sf.partition.width(b);
            let agg = self.aggs.entry((b, b)).or_insert_with(|| Mat::zeros(w, w));
            for (ci, &gc) in rows_b.iter().enumerate() {
                let tc = gc - first_b;
                for (ri, &gr) in rows_b.iter().enumerate().skip(ci) {
                    agg[(gr - first_b, tc)] += temp[(ri, ci)];
                }
            }
        } else {
            let la = self.inputs.get(&(a, j)).expect("L(a,j) present");
            let ainfo_j = self.sf.layout.find(a, j).expect("source block");
            let rows_a =
                &self.sf.patterns[j][ainfo_j.row_offset..ainfo_j.row_offset + ainfo_j.n_rows];
            let tinfo = self.sf.layout.find(a, b).expect("target block exists");
            let target_rows =
                &self.sf.patterns[b][tinfo.row_offset..tinfo.row_offset + tinfo.n_rows];
            let row_map: Vec<usize> = rows_a
                .iter()
                .map(|r| target_rows.binary_search(r).expect("row containment"))
                .collect();
            let mut temp = Mat::zeros(la.rows(), lb.rows());
            let lb = self.inputs.get(&(b, j)).expect("L(b,j) present");
            let la = self.inputs.get(&(a, j)).expect("L(a,j) present");
            let (_, secs) = self.kernels.gemm(&mut temp, la, lb);
            self.rt.charge(rank, key, secs);
            let w = self.sf.partition.width(b);
            let agg = self
                .aggs
                .entry((a, b))
                .or_insert_with(|| Mat::zeros(tinfo.n_rows, w));
            for (ci, &gc) in rows_b.iter().enumerate() {
                let tc = gc - first_b;
                for (ri, &tr) in row_map.iter().enumerate() {
                    agg[(tr, tc)] += temp[(ri, ci)];
                }
            }
        }
        // Last contribution to (a,b) from this rank? Ship or absorb.
        let c = self.my_contribs.get_mut(&(a, b)).expect("contrib counted");
        *c -= 1;
        if *c == 0 {
            let buf = self.aggs.remove(&(a, b)).expect("aggregate exists");
            let owner = self.grid.map(a, b);
            if owner == self.me {
                absorb(&mut self.store, a, b, &buf);
                let now = rank.now();
                self.dec_target(a, b, now);
            } else {
                let ptr = rank
                    .alloc(MemKind::Host, buf.rows() * buf.cols())
                    .expect("host alloc");
                rank.write_local(&ptr, buf.as_slice());
                let (rows, cols) = (buf.rows(), buf.cols());
                let msg = Msg::Aggregate {
                    ptr,
                    a,
                    b,
                    rows,
                    cols,
                };
                self.comm.send(rank, owner, SIGNAL_WIRE_BYTES, move |r| {
                    r.try_with_state::<FbEngine, _>(|_, st| {
                        st.rt.post_unique(msg);
                    });
                });
            }
        }
    }
}

/// Fold an aggregate into the owned target block.
fn absorb(store: &mut BlockStore, a: usize, b: usize, buf: &Mat) {
    let m = store.get_mut((a, b)).expect("target owned").dense_mut();
    if a == b {
        for c in 0..buf.cols() {
            for r in c..buf.rows() {
                m[(r, c)] += buf[(r, c)];
            }
        }
    } else {
        for c in 0..buf.cols() {
            for r in 0..buf.rows() {
                m[(r, c)] += buf[(r, c)];
            }
        }
    }
}

/// Factor and solve with the fan-both algorithm on a 2D grid; panics on
/// failure (see [`try_fanboth_factor_and_solve`] for the fallible form).
pub fn fanboth_factor_and_solve(
    a: &SparseSym,
    b: &[f64],
    opts: &BaselineOptions,
) -> BaselineReport {
    try_fanboth_factor_and_solve(a, b, opts).expect("fan-both factorization failed")
}

/// Factor and solve with the fan-both algorithm on a 2D grid.
///
/// # Errors
/// [`SolverError::DeviceOom`] under the Abort OOM policy;
/// [`SolverError::FetchTimeout`] / [`SolverError::Stalled`] under fault
/// injection when the retry budget or the quiescence detector gives up.
pub fn try_fanboth_factor_and_solve(
    a: &SparseSym,
    b: &[f64],
    opts: &BaselineOptions,
) -> Result<BaselineReport, SolverError> {
    assert_eq!(b.len(), a.n());
    let sf = crate::rightlooking::baseline_symbolic(a, opts);
    let ap = Arc::new(a.permute(sf.perm.as_slice()));
    let bp = Arc::new(sf.perm.apply_vec(b));
    let p = opts.n_nodes * opts.ranks_per_node;
    let grid = ProcGrid::squarest(p);
    let mut config = PgasConfig::multi_node(opts.n_nodes, opts.ranks_per_node);
    config.net = opts.net.clone();
    config.device_quota = opts.device_quota;
    config.faults = opts.faults;
    config.deterministic = opts.deterministic;
    let abort = Arc::new(AtomicBool::new(false));
    let opts2 = opts.clone();
    let report = Runtime::run(config, |rank| {
        run_rank(rank, &sf, &ap, &bp, grid, &opts2, &abort)
    });
    build_report("fanboth", a, b, &sf, report, opts.trace)
}

fn run_rank(
    rank: &mut Rank,
    sf: &Arc<SymbolicFactor>,
    ap: &SparseSym,
    bp: &[f64],
    grid: ProcGrid,
    opts: &BaselineOptions,
    abort: &Arc<AtomicBool>,
) -> RankOut {
    let me = rank.id();
    if opts.trace {
        // Comm-layer spans (rget/rput/rpc/drain) for the profile.
        rank.set_tracer(Tracer::new());
    }
    let mut kernels = if opts.gpu {
        KernelEngine::new_gpu()
    } else {
        KernelEngine::new_cpu()
    };
    if let Some(t) = &opts.thresholds {
        kernels.thresholds = t.clone();
    }
    let engine = FbEngine::new(
        Arc::clone(sf),
        ap,
        grid,
        me,
        kernels,
        opts,
        Arc::clone(abort),
    );
    let start = rank.now();
    let mut engine = sched::run_event_loop(
        rank,
        engine,
        |rank, st: &mut FbEngine| {
            while st.step(rank) {}
            st.rt.finished() || rank.job_aborted()
        },
        |rank, st| {
            let (done, total) = (st.rt.done_count(), st.rt.total());
            st.rt.fail(
                rank,
                SolverError::Stalled {
                    rank: rank.id(),
                    done,
                    total,
                    detail: "fan-both factorization quiesced with unfinished tasks \
                             (dropped factor or aggregate suspected)"
                        .into(),
                },
            );
        },
    );
    let factor_time = rank.now() - start;
    let aborted = engine.rt.aborted() || rank.job_aborted();
    if !aborted {
        engine.rt.debug_assert_completed();
    }
    let mut trace = engine
        .rt
        .tracer
        .take()
        .map(Tracer::into_events)
        .unwrap_or_default();
    let mut tasks: Vec<(String, u64)> = engine
        .rt
        .task_counts()
        .iter()
        .map(|&(k, v)| (k.to_string(), v))
        .collect();
    if aborted {
        // Skip the solve collectively (sticky job-abort keeps every rank's
        // barrier sequence aligned).
        trace.extend(comm_events(rank));
        return RankOut {
            error: engine.rt.error.take(),
            factor_time,
            solve_time: 0.0,
            counts: engine.kernels.counts,
            x_pieces: Vec::new(),
            trace,
            tasks,
        };
    }
    let solve_kernels = if opts.gpu {
        KernelEngine::new_gpu()
    } else {
        KernelEngine::new_cpu()
    };
    let params = SolveParams {
        policy: opts.rtq_policy,
        msg_overhead: 0.0,
        trace: opts.trace,
    };
    let mut out = trisolve::solve(
        rank,
        Arc::clone(sf),
        grid,
        &engine.store,
        bp,
        solve_kernels,
        &params,
    );
    trace.extend(std::mem::take(&mut out.trace));
    trace.extend(comm_events(rank));
    tasks.extend(out.task_counts.iter().map(|&(k, v)| (k.to_string(), v)));
    RankOut {
        error: out.error.take(),
        factor_time,
        solve_time: out.elapsed,
        counts: engine.kernels.counts,
        x_pieces: out.x.into_iter().collect(),
        trace,
        tasks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sympack_sparse::gen::{laplacian_2d, random_spd};
    use sympack_sparse::vecops::{max_abs_diff, test_rhs};

    #[test]
    fn fanboth_is_numerically_correct() {
        let a = laplacian_2d(9, 8);
        let b = test_rhs(a.n());
        let r = fanboth_factor_and_solve(&a, &b, &BaselineOptions::default());
        assert!(
            r.relative_residual < 1e-10,
            "residual {}",
            r.relative_residual
        );
    }

    #[test]
    fn fanboth_matches_fanout_across_rank_counts() {
        let a = random_spd(80, 5, 27);
        let b = test_rhs(80);
        let reference =
            sympack::SymPack::factor_and_solve(&a, &b, &sympack::SolverOptions::default());
        for (nodes, ppn) in [(1, 1), (2, 2), (3, 2), (2, 4)] {
            let r = fanboth_factor_and_solve(
                &a,
                &b,
                &BaselineOptions {
                    n_nodes: nodes,
                    ranks_per_node: ppn,
                    ..Default::default()
                },
            );
            assert!(r.relative_residual < 1e-10, "nodes={nodes} ppn={ppn}");
            let d = max_abs_diff(&r.x, &reference.x);
            assert!(d < 1e-8, "nodes={nodes} ppn={ppn}: diverges by {d}");
        }
    }

    #[test]
    fn fanboth_message_count_sits_between_families() {
        // Fan-both trades factor broadcasts against aggregate volume; on a
        // multi-rank grid it must not exceed the fan-out's message count.
        let a = laplacian_2d(14, 14);
        let b = test_rhs(a.n());
        let bo = BaselineOptions {
            n_nodes: 4,
            ranks_per_node: 1,
            ..Default::default()
        };
        let so = sympack::SolverOptions {
            n_nodes: 4,
            ranks_per_node: 1,
            ..Default::default()
        };
        let fb = fanboth_factor_and_solve(&a, &b, &bo);
        let fo = sympack::SymPack::factor_and_solve(&a, &b, &so);
        assert!(
            fb.stats.rpcs <= fo.stats.rpcs,
            "fan-both rpcs {} vs fan-out {}",
            fb.stats.rpcs,
            fo.stats.rpcs
        );
    }
}
