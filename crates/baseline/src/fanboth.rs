//! Fan-both supernodal factorization — the third family of Ashcraft's
//! taxonomy (§2.3) and the algorithm of the original symPACK paper the
//! authors cite as [15] (Jacquelin et al., "An Asynchronous Task-based
//! Fan-Both Sparse Cholesky Solver").
//!
//! Fan-both generalizes fan-out and fan-in through a **computation map**:
//! update `U(a,j,b)` may execute on *any* rank, so both kinds of messages
//! flow — *factors* travel from their owners to the compute ranks, and
//! *aggregates* travel from compute ranks to the target owners. This
//! implementation uses the natural 2D computation map
//! `cmap(a,j,b) = map(a,j)` (the owner of the source block `L(a,j)`), so:
//!
//! * a factored block `L(b,j)` is sent only **down its grid column** (to the
//!   owners of blocks `(a,j)`, `a ≥ b`) — `pr` destinations instead of the
//!   fan-out's scattered target owners;
//! * each rank accumulates all of its products for a target block `(a,b)`
//!   in one aggregation buffer and ships it **once** — the fan-in economy.
//!
//! Everything else (2D block-cyclic ownership of blocks and of the `D`/`F`
//! tasks, asynchronous signal + one-sided get transport) matches the
//! fan-out solver, so the comparison in the `taxonomy` bench isolates the
//! communication family.

use std::collections::HashMap;
use std::sync::Arc;
use sympack::map2d::ProcGrid;
use sympack::storage::BlockStore;
use sympack::trisolve;
use sympack_dense::Mat;
use sympack_gpu::KernelEngine;
use sympack_pgas::{GlobalPtr, MemKind, PgasConfig, Rank, Runtime};
use sympack_ordering::compute_ordering;
use sympack_sparse::SparseSym;
use sympack_symbolic::{analyze, SymbolicFactor};

use crate::rightlooking::{BaselineOptions, BaselineReport};

/// Incoming notifications.
enum Msg {
    /// A factored block `L(i,j)` is available at `ptr` (rows × cols known
    /// from the layout).
    Factor { ptr: GlobalPtr, i: usize, j: usize, rows: usize, cols: usize },
    /// An aggregate for target block `(a,b)` is available at `ptr`.
    Aggregate { ptr: GlobalPtr, a: usize, b: usize, rows: usize, cols: usize },
}

struct FbState {
    pending: Vec<Msg>,
}

struct RankOut {
    factor_time: f64,
    solve_time: f64,
    counts: sympack_gpu::OpCounts,
    x_pieces: Vec<(usize, Vec<f64>)>,
}

/// Factor and solve with the fan-both algorithm on a 2D grid.
pub fn fanboth_factor_and_solve(
    a: &SparseSym,
    b: &[f64],
    opts: &BaselineOptions,
) -> BaselineReport {
    assert_eq!(b.len(), a.n());
    let ordering = compute_ordering(a, opts.ordering);
    let sf = Arc::new(analyze(a, &ordering, &opts.analyze));
    let ap = Arc::new(a.permute(sf.perm.as_slice()));
    let bp = Arc::new(sf.perm.apply_vec(b));
    let p = opts.n_nodes * opts.ranks_per_node;
    let grid = ProcGrid::squarest(p);
    let mut config = PgasConfig::multi_node(opts.n_nodes, opts.ranks_per_node);
    config.net = opts.net.clone();
    let opts2 = opts.clone();
    let report = Runtime::run(config, |rank| run_rank(rank, &sf, &ap, &bp, grid, &opts2));
    let outs = report.results;
    let n = a.n();
    let mut xp = vec![0.0; n];
    for out in &outs {
        for (sn, piece) in &out.x_pieces {
            let first = sf.partition.first_col(*sn);
            xp[first..first + piece.len()].copy_from_slice(piece);
        }
    }
    let x = sf.perm.unapply_vec(&xp);
    let relative_residual = a.relative_residual(&x, b);
    BaselineReport {
        x,
        relative_residual,
        factor_time: outs.iter().map(|o| o.factor_time).fold(0.0, f64::max),
        solve_time: outs.iter().map(|o| o.solve_time).fold(0.0, f64::max),
        op_counts: outs.iter().map(|o| o.counts).collect(),
        stats: report.stats,
    }
}

#[allow(clippy::too_many_lines)]
fn run_rank(
    rank: &mut Rank,
    sf: &Arc<SymbolicFactor>,
    ap: &SparseSym,
    bp: &[f64],
    grid: ProcGrid,
    opts: &BaselineOptions,
) -> RankOut {
    let me = rank.id();
    let ns = sf.n_supernodes();
    let mut kernels =
        if opts.gpu { KernelEngine::new_gpu() } else { KernelEngine::new_cpu() };
    if let Some(t) = &opts.thresholds {
        kernels.thresholds = t.clone();
    }
    let mut store = BlockStore::init(sf, ap, &grid, me);

    // ---- static task analysis ----------------------------------------
    // For each pair (a >= b) of targets of supernode j, the update computes
    // on cmap = map(a, j) and lands on map(a, b).
    // contrib_ranks[(a,b)]: distinct compute ranks -> target dep counts.
    // my_updates grouped by source block (a, j) and by needed factor (b, j).
    let mut contrib_ranks: HashMap<(usize, usize), std::collections::HashSet<usize>> =
        HashMap::new();
    // (j, a, b) tasks assigned to me.
    #[derive(Clone, Copy)]
    struct Upd {
        j: usize,
        a: usize,
        b: usize,
        deps: usize,
    }
    let mut my_updates: Vec<Upd> = Vec::new();
    // For each input factor block (i, j), the indices of my updates using it.
    let mut consumers: HashMap<(usize, usize), Vec<usize>> = HashMap::new();
    let mut my_contribs: HashMap<(usize, usize), usize> = HashMap::new();
    for j in 0..ns {
        let blocks = sf.layout.blocks_of(j);
        for (bi, bb) in blocks.iter().enumerate() {
            for ba in &blocks[bi..] {
                let (a, b) = (ba.target, bb.target);
                let cmap = grid.map(a, j);
                contrib_ranks.entry((a, b)).or_default().insert(cmap);
                if cmap == me {
                    let deps = if a == b { 1 } else { 2 };
                    let idx = my_updates.len();
                    my_updates.push(Upd { j, a, b, deps });
                    consumers.entry((a, j)).or_default().push(idx);
                    if a != b {
                        consumers.entry((b, j)).or_default().push(idx);
                    }
                    *my_contribs.entry((a, b)).or_default() += 1;
                }
            }
        }
    }
    // D/F tasks owned by me with dependency counters.
    let mut diag_deps: HashMap<usize, usize> = HashMap::new();
    let mut panel_deps: HashMap<(usize, usize), usize> = HashMap::new();
    let mut my_tasks_total = my_updates.len();
    for j in 0..ns {
        if grid.map(j, j) == me {
            diag_deps.insert(j, contrib_ranks.get(&(j, j)).map_or(0, |s| s.len()));
            my_tasks_total += 1;
        }
        for bb in sf.layout.blocks_of(j) {
            let i = bb.target;
            if grid.map(i, j) == me {
                panel_deps
                    .insert((i, j), 1 + contrib_ranks.get(&(i, j)).map_or(0, |s| s.len()));
                my_tasks_total += 1;
            }
        }
    }
    let aggs_to_send = my_contribs.len();

    // ---- runtime state -------------------------------------------------
    // Factored blocks available locally (own or fetched).
    let mut inputs: HashMap<(usize, usize), Mat> = HashMap::new();
    // Aggregation buffers per target block.
    let mut aggs: HashMap<(usize, usize), Mat> = HashMap::new();
    let mut tasks_done = 0usize;
    let mut aggs_sent = 0usize;
    let mut ready_updates: Vec<usize> = Vec::new();
    let mut ready_diags: Vec<usize> =
        diag_deps.iter().filter(|(_, &d)| d == 0).map(|(&j, _)| j).collect();
    ready_diags.sort_unstable();
    let mut ready_panels: Vec<(usize, usize)> = Vec::new();
    let start = rank.now();
    rank.set_state(FbState { pending: Vec::new() });

    // Helper closures are impossible with this much shared state; use a
    // plain event loop instead.
    loop {
        rank.progress();
        let msgs = rank.with_state::<FbState, _>(|_, st| std::mem::take(&mut st.pending));
        for m in msgs {
            match m {
                Msg::Factor { ptr, i, j, rows, cols } => {
                    let h = rank.rget(&ptr);
                    let data = Mat::from_col_major(rows, cols, h.into_data());
                    inputs.insert((i, j), data);
                    if i == j {
                        // A diagonal factor unlocks this rank's panel tasks
                        // of supernode j.
                        for bb in sf.layout.blocks_of(j) {
                            let t = bb.target;
                            if let Some(d) = panel_deps.get_mut(&(t, j)) {
                                *d -= 1;
                                if *d == 0 {
                                    ready_panels.push((t, j));
                                }
                            }
                        }
                    }
                    if let Some(list) = consumers.get(&(i, j)) {
                        for &idx in list {
                            my_updates[idx].deps -= 1;
                            if my_updates[idx].deps == 0 {
                                ready_updates.push(idx);
                            }
                        }
                    }
                }
                Msg::Aggregate { ptr, a, b, rows, cols } => {
                    let h = rank.rget(&ptr);
                    let buf = Mat::from_col_major(rows, cols, h.into_data());
                    absorb(&mut store, a, b, &buf);
                    dec_target(
                        &mut diag_deps,
                        &mut panel_deps,
                        &mut ready_diags,
                        &mut ready_panels,
                        a,
                        b,
                    );
                }
            }
        }
        // Execute one ready task (diagonals first: they unlock panels).
        if let Some(j) = ready_diags.pop() {
            let mut diag = store.take((j, j)).expect("diag owned");
            let (_, secs) = kernels.potrf(&mut diag).expect("fan-both requires SPD input");
            rank.advance(secs);
            // Fan L(j,j) to panel owners.
            let mut dests: Vec<usize> =
                sf.layout.blocks_of(j).iter().map(|bb| grid.map(bb.target, j)).collect();
            dests.sort_unstable();
            dests.dedup();
            publish_factor(rank, sf, &grid, me, &diag, j, j, &dests);
            if grid.map(j, j) == me {
                // L(j,j) is also an input to local panel tasks.
                for bb in sf.layout.blocks_of(j) {
                    let i = bb.target;
                    if grid.map(i, j) == me {
                        let d = panel_deps.get_mut(&(i, j)).expect("panel task");
                        *d -= 1;
                        if *d == 0 {
                            ready_panels.push((i, j));
                        }
                    }
                }
            }
            inputs.insert((j, j), diag.clone());
            store.put((j, j), diag);
            tasks_done += 1;
        } else if let Some((i, j)) = ready_panels.pop() {
            let mut blk = store.take((i, j)).expect("panel owned");
            let ldiag = inputs.get(&(j, j)).expect("diagonal factor present");
            let (_, secs) = kernels.trsm(&mut blk, ldiag);
            rank.advance(secs);
            // Fan L(i,j) to the compute ranks of updates that use it:
            // U(a,j,i) at map(a,j) for a >= i, and U(i,j,b) at map(i,j)=me.
            let mut dests: Vec<usize> = sf
                .layout
                .blocks_of(j)
                .iter()
                .filter(|bb| bb.target >= i)
                .map(|bb| grid.map(bb.target, j))
                .collect();
            dests.sort_unstable();
            dests.dedup();
            publish_factor(rank, sf, &grid, me, &blk, i, j, &dests);
            // Local consumption.
            if let Some(list) = consumers.get(&(i, j)) {
                for &idx in list.clone().iter() {
                    my_updates[idx].deps -= 1;
                    if my_updates[idx].deps == 0 {
                        ready_updates.push(idx);
                    }
                }
            }
            inputs.insert((i, j), blk.clone());
            store.put((i, j), blk);
            tasks_done += 1;
        } else if let Some(idx) = ready_updates.pop() {
            let Upd { j, a, b, .. } = my_updates[idx];
            exec_update(sf, &mut aggs, &inputs, &mut kernels, rank, j, a, b);
            tasks_done += 1;
            // Last contribution to (a,b) from this rank? Ship or absorb.
            let c = my_contribs.get_mut(&(a, b)).expect("contrib counted");
            *c -= 1;
            if *c == 0 {
                let buf = aggs.remove(&(a, b)).expect("aggregate exists");
                let owner = grid.map(a, b);
                aggs_sent += 1;
                if owner == me {
                    absorb(&mut store, a, b, &buf);
                    dec_target(
                        &mut diag_deps,
                        &mut panel_deps,
                        &mut ready_diags,
                        &mut ready_panels,
                        a,
                        b,
                    );
                } else {
                    let ptr = rank
                        .alloc(MemKind::Host, buf.rows() * buf.cols())
                        .expect("host alloc");
                    rank.write_local(&ptr, buf.as_slice());
                    let (rows, cols) = (buf.rows(), buf.cols());
                    rank.rpc(owner, move |r| {
                        r.with_state::<FbState, _>(|_, st| {
                            st.pending.push(Msg::Aggregate { ptr, a, b, rows, cols })
                        });
                    });
                }
            }
        } else if tasks_done == my_tasks_total && aggs_sent == aggs_to_send {
            break;
        } else {
            std::thread::yield_now();
        }
    }
    rank.barrier();
    let factor_time = rank.now() - start;
    let _ = rank.take_state::<FbState>();
    let solve_kernels =
        if opts.gpu { KernelEngine::new_gpu() } else { KernelEngine::new_cpu() };
    let (x_map, solve_time) =
        trisolve::solve(rank, Arc::clone(sf), grid, &store, bp, solve_kernels);
    RankOut {
        factor_time,
        solve_time,
        counts: kernels.counts,
        x_pieces: x_map.into_iter().collect(),
    }
}

/// Publish a factored block: place it in the shared heap and signal `dests`.
fn publish_factor(
    rank: &mut Rank,
    _sf: &SymbolicFactor,
    _grid: &ProcGrid,
    me: usize,
    data: &Mat,
    i: usize,
    j: usize,
    dests: &[usize],
) {
    let remote: Vec<usize> = dests.iter().copied().filter(|&d| d != me).collect();
    if remote.is_empty() {
        return;
    }
    let ptr = rank.alloc(MemKind::Host, data.rows() * data.cols()).expect("host alloc");
    rank.write_local(&ptr, data.as_slice());
    let (rows, cols) = (data.rows(), data.cols());
    for d in remote {
        rank.rpc(d, move |r| {
            r.with_state::<FbState, _>(|_, st| {
                st.pending.push(Msg::Factor { ptr, i, j, rows, cols })
            });
        });
    }
}

/// Run one update product into the aggregation buffer for `(a, b)`.
fn exec_update(
    sf: &SymbolicFactor,
    aggs: &mut HashMap<(usize, usize), Mat>,
    inputs: &HashMap<(usize, usize), Mat>,
    kernels: &mut KernelEngine,
    rank: &mut Rank,
    j: usize,
    a: usize,
    b: usize,
) {
    let binfo_j = sf.layout.find(b, j).expect("source block");
    let rows_b = &sf.patterns[j][binfo_j.row_offset..binfo_j.row_offset + binfo_j.n_rows];
    let first_b = sf.partition.first_col(b);
    let lb = inputs.get(&(b, j)).expect("L(b,j) present");
    if a == b {
        let nb = lb.rows();
        let mut temp = Mat::zeros(nb, nb);
        let (_, secs) = kernels.syrk(&mut temp, lb);
        rank.advance(secs);
        let w = sf.partition.width(b);
        let agg = aggs.entry((b, b)).or_insert_with(|| Mat::zeros(w, w));
        for (ci, &gc) in rows_b.iter().enumerate() {
            let tc = gc - first_b;
            for (ri, &gr) in rows_b.iter().enumerate().skip(ci) {
                agg[(gr - first_b, tc)] += temp[(ri, ci)];
            }
        }
    } else {
        let la = inputs.get(&(a, j)).expect("L(a,j) present");
        let ainfo_j = sf.layout.find(a, j).expect("source block");
        let rows_a = &sf.patterns[j][ainfo_j.row_offset..ainfo_j.row_offset + ainfo_j.n_rows];
        let tinfo = sf.layout.find(a, b).expect("target block exists");
        let target_rows = &sf.patterns[b][tinfo.row_offset..tinfo.row_offset + tinfo.n_rows];
        let row_map: Vec<usize> = rows_a
            .iter()
            .map(|r| target_rows.binary_search(r).expect("row containment"))
            .collect();
        let mut temp = Mat::zeros(la.rows(), lb.rows());
        let (_, secs) = kernels.gemm(&mut temp, la, lb);
        rank.advance(secs);
        let w = sf.partition.width(b);
        let agg = aggs
            .entry((a, b))
            .or_insert_with(|| Mat::zeros(tinfo.n_rows, w));
        for (ci, &gc) in rows_b.iter().enumerate() {
            let tc = gc - first_b;
            for (ri, &tr) in row_map.iter().enumerate() {
                agg[(tr, tc)] += temp[(ri, ci)];
            }
        }
    }
}

/// Fold an aggregate into the owned target block.
fn absorb(store: &mut BlockStore, a: usize, b: usize, buf: &Mat) {
    let m = store.get_mut((a, b)).expect("target owned");
    if a == b {
        for c in 0..buf.cols() {
            for r in c..buf.rows() {
                m[(r, c)] += buf[(r, c)];
            }
        }
    } else {
        for c in 0..buf.cols() {
            for r in 0..buf.rows() {
                m[(r, c)] += buf[(r, c)];
            }
        }
    }
}

/// Decrement the target-side dependency of `(a,b)` after an aggregate lands.
fn dec_target(
    diag_deps: &mut HashMap<usize, usize>,
    panel_deps: &mut HashMap<(usize, usize), usize>,
    ready_diags: &mut Vec<usize>,
    ready_panels: &mut Vec<(usize, usize)>,
    a: usize,
    b: usize,
) {
    if a == b {
        let d = diag_deps.get_mut(&b).expect("diag task owned");
        *d -= 1;
        if *d == 0 {
            ready_diags.push(b);
        }
    } else {
        let d = panel_deps.get_mut(&(a, b)).expect("panel task owned");
        *d -= 1;
        if *d == 0 {
            ready_panels.push((a, b));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sympack_sparse::gen::{laplacian_2d, random_spd};
    use sympack_sparse::vecops::{max_abs_diff, test_rhs};

    #[test]
    fn fanboth_is_numerically_correct() {
        let a = laplacian_2d(9, 8);
        let b = test_rhs(a.n());
        let r = fanboth_factor_and_solve(&a, &b, &BaselineOptions::default());
        assert!(r.relative_residual < 1e-10, "residual {}", r.relative_residual);
    }

    #[test]
    fn fanboth_matches_fanout_across_rank_counts() {
        let a = random_spd(80, 5, 27);
        let b = test_rhs(80);
        let reference =
            sympack::SymPack::factor_and_solve(&a, &b, &sympack::SolverOptions::default());
        for (nodes, ppn) in [(1, 1), (2, 2), (3, 2), (2, 4)] {
            let r = fanboth_factor_and_solve(
                &a,
                &b,
                &BaselineOptions { n_nodes: nodes, ranks_per_node: ppn, ..Default::default() },
            );
            assert!(r.relative_residual < 1e-10, "nodes={nodes} ppn={ppn}");
            let d = max_abs_diff(&r.x, &reference.x);
            assert!(d < 1e-8, "nodes={nodes} ppn={ppn}: diverges by {d}");
        }
    }

    #[test]
    fn fanboth_message_count_sits_between_families() {
        // Fan-both trades factor broadcasts against aggregate volume; on a
        // multi-rank grid it must not exceed the fan-out's message count.
        let a = laplacian_2d(14, 14);
        let b = test_rhs(a.n());
        let bo = BaselineOptions { n_nodes: 4, ranks_per_node: 1, ..Default::default() };
        let so = sympack::SolverOptions { n_nodes: 4, ranks_per_node: 1, ..Default::default() };
        let fb = fanboth_factor_and_solve(&a, &b, &bo);
        let fo = sympack::SymPack::factor_and_solve(&a, &b, &so);
        assert!(
            fb.stats.rpcs <= fo.stats.rpcs,
            "fan-both rpcs {} vs fan-out {}",
            fb.stats.rpcs,
            fo.stats.rpcs
        );
    }
}
