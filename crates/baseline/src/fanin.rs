//! Fan-in supernodal factorization — the other family in Ashcraft's
//! taxonomy the paper recounts in §2.3.
//!
//! Where the fan-out algorithm broadcasts *factors* and computes updates at
//! the owner of the **target**, the fan-in algorithm computes updates at the
//! owner of the **source** column and ships *aggregate vectors*: each rank
//! accumulates all of its updates to a remote target supernode in a local
//! aggregation buffer and sends the buffer once, when its last local
//! contribution has been folded in. Messages are fewer but larger and later
//! — the latency/volume trade the taxonomy is about.
//!
//! Mapping is the same 1D supernode-cyclic distribution as the
//! right-looking baseline, so the three solvers (fan-out 2D symPACK,
//! right-looking 1D, fan-in 1D) isolate the communication-family effect.

use std::collections::HashMap;
use std::sync::Arc;
use sympack::map2d::ProcGrid;
use sympack::storage::BlockStore;
use sympack::trisolve;
use sympack_dense::Mat;
use sympack_gpu::KernelEngine;
use sympack_pgas::{GlobalPtr, MemKind, PgasConfig, Rank, Runtime};
use sympack_sparse::SparseSym;
use sympack_ordering::compute_ordering;
use sympack_symbolic::{analyze, SymbolicFactor};

use crate::rightlooking::{BaselineOptions, BaselineReport};

/// Per-receive synchronization cost (same two-sided flavor as the
/// right-looking baseline).
const RENDEZVOUS_OVERHEAD: f64 = 5.0e-6;

fn owner_of(j: usize, p: usize) -> usize {
    j % p
}

/// An aggregation buffer for one remote target supernode: the diagonal
/// update plus one dense block per off-diagonal block of the target.
struct AggBuffer {
    diag: Mat,
    blocks: Vec<Mat>,
}

impl AggBuffer {
    fn new(sf: &SymbolicFactor, b: usize) -> Self {
        let w = sf.partition.width(b);
        let blocks = sf
            .layout
            .blocks_of(b)
            .iter()
            .map(|info| Mat::zeros(info.n_rows, w))
            .collect();
        AggBuffer { diag: Mat::zeros(w, w), blocks }
    }

    fn pack(&self) -> Vec<f64> {
        let mut out = Vec::new();
        out.extend_from_slice(self.diag.as_slice());
        for b in &self.blocks {
            out.extend_from_slice(b.as_slice());
        }
        out
    }

    fn unpack(sf: &SymbolicFactor, b: usize, data: &[f64]) -> Self {
        let w = sf.partition.width(b);
        let diag = Mat::from_col_major(w, w, data[..w * w].to_vec());
        let mut off = w * w;
        let mut blocks = Vec::new();
        for info in sf.layout.blocks_of(b) {
            let len = info.n_rows * w;
            blocks.push(Mat::from_col_major(info.n_rows, w, data[off..off + len].to_vec()));
            off += len;
        }
        AggBuffer { diag, blocks }
    }
}

/// A received aggregate: pointer to the packed buffer of target `b`.
#[derive(Clone, Copy)]
struct AggSignal {
    ptr: GlobalPtr,
    target: usize,
}

struct FanInState {
    pending: Vec<AggSignal>,
}

/// Apply the update pairs of factored supernode `j` into either the local
/// store (owned targets) or the aggregation buffers (remote targets).
#[allow(clippy::too_many_arguments)]
fn scatter_updates(
    sf: &SymbolicFactor,
    store: &mut BlockStore,
    aggs: &mut HashMap<usize, AggBuffer>,
    kernels: &mut KernelEngine,
    rank: &mut Rank,
    p: usize,
    me: usize,
    j: usize,
) -> Vec<usize> {
    let blocks_meta = sf.layout.blocks_of(j).to_vec();
    let mut touched = Vec::new();
    for (bi, bb) in blocks_meta.iter().enumerate() {
        let b = bb.target;
        let local = owner_of(b, p) == me;
        touched.push(b);
        let first_b = sf.partition.first_col(b);
        let rows_b = sf.patterns[j][bb.row_offset..bb.row_offset + bb.n_rows].to_vec();
        let lb = store.get((b, j)).expect("factored block local").clone();
        for ba in blocks_meta.iter().skip(bi) {
            let a = ba.target;
            let la = store.get((a, j)).expect("factored block local").clone();
            if a == b {
                let nb = lb.rows();
                let mut temp = Mat::zeros(nb, nb);
                let (_, secs) = kernels.syrk(&mut temp, &lb);
                rank.advance(secs);
                let target: &mut Mat = if local {
                    store.get_mut((b, b)).expect("diag owned")
                } else {
                    &mut aggs.entry(b).or_insert_with(|| AggBuffer::new(sf, b)).diag
                };
                for (ci, &gc) in rows_b.iter().enumerate() {
                    let tc = gc - first_b;
                    for (ri, &gr) in rows_b.iter().enumerate().skip(ci) {
                        target[(gr - first_b, tc)] += temp[(ri, ci)];
                    }
                }
            } else {
                let rows_a = &sf.patterns[j][ba.row_offset..ba.row_offset + ba.n_rows];
                let tinfo = sf.layout.find(a, b).expect("target block exists");
                let target_rows =
                    &sf.patterns[b][tinfo.row_offset..tinfo.row_offset + tinfo.n_rows];
                let row_map: Vec<usize> = rows_a
                    .iter()
                    .map(|r| target_rows.binary_search(r).expect("row containment"))
                    .collect();
                let mut temp = Mat::zeros(la.rows(), lb.rows());
                let (_, secs) = kernels.gemm(&mut temp, &la, &lb);
                rank.advance(secs);
                // Which block of the target supernode does (a,b) map to?
                let bidx = sf
                    .layout
                    .blocks_of(b)
                    .iter()
                    .position(|i2| i2.target == a)
                    .expect("block index");
                let target: &mut Mat = if local {
                    store.get_mut((a, b)).expect("target block owned")
                } else {
                    &mut aggs.entry(b).or_insert_with(|| AggBuffer::new(sf, b)).blocks[bidx]
                };
                for (ci, &gc) in rows_b.iter().enumerate() {
                    let tc = gc - first_b;
                    for (ri, &tr) in row_map.iter().enumerate() {
                        target[(tr, tc)] += temp[(ri, ci)];
                    }
                }
            }
        }
    }
    touched.sort_unstable();
    touched.dedup();
    touched
}

/// Add a received (or locally finished) aggregate into the owned blocks.
fn absorb_aggregate(sf: &SymbolicFactor, store: &mut BlockStore, b: usize, agg: &AggBuffer) {
    {
        let diag = store.get_mut((b, b)).expect("diag owned");
        for c in 0..agg.diag.cols() {
            for r in c..agg.diag.rows() {
                diag[(r, c)] += agg.diag[(r, c)];
            }
        }
    }
    for (info, buf) in sf.layout.blocks_of(b).iter().zip(&agg.blocks) {
        let m = store.get_mut((info.target, b)).expect("block owned");
        for c in 0..buf.cols() {
            for r in 0..buf.rows() {
                m[(r, c)] += buf[(r, c)];
            }
        }
    }
}

/// Factor and solve with the fan-in algorithm.
pub fn fanin_factor_and_solve(a: &SparseSym, b: &[f64], opts: &BaselineOptions) -> BaselineReport {
    assert_eq!(b.len(), a.n());
    let ordering = compute_ordering(a, opts.ordering);
    let sf = Arc::new(analyze(a, &ordering, &opts.analyze));
    let ap = Arc::new(a.permute(sf.perm.as_slice()));
    let bp = Arc::new(sf.perm.apply_vec(b));
    let p = opts.n_nodes * opts.ranks_per_node;
    let grid = ProcGrid::one_dimensional(p);
    let mut config = PgasConfig::multi_node(opts.n_nodes, opts.ranks_per_node);
    config.net = opts.net.clone();
    let opts2 = opts.clone();
    let report = Runtime::run(config, |rank| {
        run_rank(rank, &sf, &ap, &bp, grid, p, &opts2)
    });
    let outs = report.results;
    let n = a.n();
    let mut xp = vec![0.0; n];
    for out in &outs {
        for (sn, piece) in &out.x_pieces {
            let first = sf.partition.first_col(*sn);
            xp[first..first + piece.len()].copy_from_slice(piece);
        }
    }
    let x = sf.perm.unapply_vec(&xp);
    let relative_residual = a.relative_residual(&x, b);
    BaselineReport {
        x,
        relative_residual,
        factor_time: outs.iter().map(|o| o.factor_time).fold(0.0, f64::max),
        solve_time: outs.iter().map(|o| o.solve_time).fold(0.0, f64::max),
        op_counts: outs.iter().map(|o| o.counts).collect(),
        stats: report.stats,
    }
}

struct RankOut {
    factor_time: f64,
    solve_time: f64,
    counts: sympack_gpu::OpCounts,
    x_pieces: Vec<(usize, Vec<f64>)>,
}

fn run_rank(
    rank: &mut Rank,
    sf: &Arc<SymbolicFactor>,
    ap: &SparseSym,
    bp: &[f64],
    grid: ProcGrid,
    p: usize,
    opts: &BaselineOptions,
) -> RankOut {
    let me = rank.id();
    let ns = sf.n_supernodes();
    let mut kernels =
        if opts.gpu { KernelEngine::new_gpu() } else { KernelEngine::new_cpu() };
    if let Some(t) = &opts.thresholds {
        kernels.thresholds = t.clone();
    }
    let mut store = BlockStore::init(sf, ap, &grid, me);
    // Dependency accounting.
    // remaining[b] (owned b) = #own earlier supernodes contributing to b
    //                        + #remote ranks contributing to b.
    // my_contribs[b] (remote b) = #own supernodes contributing to b.
    let mut remaining: HashMap<usize, usize> = HashMap::new();
    let mut my_contribs: HashMap<usize, usize> = HashMap::new();
    let owned: Vec<usize> = (0..ns).filter(|&j| owner_of(j, p) == me).collect();
    for &j in &owned {
        remaining.insert(j, 0);
    }
    let mut contributing_ranks: HashMap<usize, std::collections::HashSet<usize>> = HashMap::new();
    for j in 0..ns {
        let src_owner = owner_of(j, p);
        for bb in sf.layout.blocks_of(j) {
            let b = bb.target;
            let dst_owner = owner_of(b, p);
            if dst_owner == me {
                if src_owner == me {
                    *remaining.get_mut(&b).expect("owned") += 1;
                } else {
                    contributing_ranks.entry(b).or_default().insert(src_owner);
                }
            } else if src_owner == me {
                *my_contribs.entry(b).or_default() += 1;
            }
        }
    }
    for (b, ranks) in &contributing_ranks {
        *remaining.get_mut(b).expect("owned") += ranks.len();
    }
    let aggs_to_send = my_contribs.len();
    let mut aggs: HashMap<usize, AggBuffer> = HashMap::new();
    let mut factored = 0usize;
    let mut is_factored: HashMap<usize, bool> = owned.iter().map(|&j| (j, false)).collect();
    let mut sent = 0usize;
    let start = rank.now();
    rank.set_state(FanInState { pending: Vec::new() });
    loop {
        rank.progress();
        // Receive aggregates (two-sided flavor: block on the transfer).
        let signals =
            rank.with_state::<FanInState, _>(|_, st| std::mem::take(&mut st.pending));
        for s in signals {
            let h = rank.rget(&s.ptr);
            let data = h.wait(rank);
            rank.advance(RENDEZVOUS_OVERHEAD);
            let agg = AggBuffer::unpack(sf, s.target, &data);
            absorb_aggregate(sf, &mut store, s.target, &agg);
            *remaining.get_mut(&s.target).expect("owned target") -= 1;
        }
        // Factor ready supernodes and fan their updates in.
        let ready: Vec<usize> = owned
            .iter()
            .copied()
            .filter(|j| !is_factored[j] && remaining[j] == 0)
            .collect();
        for j in ready {
            let mut diag = store.take((j, j)).expect("diag owned");
            let (_, secs) = kernels.potrf(&mut diag).expect("fan-in requires SPD input");
            rank.advance(secs);
            for bb in sf.layout.blocks_of(j) {
                let mut blk = store.take((bb.target, j)).expect("block owned");
                let (_, secs) = kernels.trsm(&mut blk, &diag);
                rank.advance(secs);
                store.put((bb.target, j), blk);
            }
            store.put((j, j), diag);
            *is_factored.get_mut(&j).expect("owned") = true;
            factored += 1;
            // Compute this supernode's updates at the source (fan-in).
            let touched = scatter_updates(sf, &mut store, &mut aggs, &mut kernels, rank, p, me, j);
            for b in touched {
                if owner_of(b, p) == me {
                    *remaining.get_mut(&b).expect("owned target") -= 1;
                } else {
                    let c = my_contribs.get_mut(&b).expect("contrib counted");
                    *c -= 1;
                    if *c == 0 {
                        // Last local contribution folded in: ship the
                        // aggregate once.
                        let agg = aggs.remove(&b).expect("aggregate exists");
                        let packed = agg.pack();
                        let ptr = rank.alloc(MemKind::Host, packed.len()).expect("host alloc");
                        rank.write_local(&ptr, &packed);
                        let sig = AggSignal { ptr, target: b };
                        let dest = owner_of(b, p);
                        rank.rpc(dest, move |r| {
                            r.with_state::<FanInState, _>(|_, st| st.pending.push(sig));
                        });
                        sent += 1;
                    }
                }
            }
        }
        if factored == owned.len() && sent == aggs_to_send {
            break;
        }
        std::thread::yield_now();
    }
    rank.barrier();
    let factor_time = rank.now() - start;
    let _ = rank.take_state::<FanInState>();
    let solve_kernels =
        if opts.gpu { KernelEngine::new_gpu() } else { KernelEngine::new_cpu() };
    let (x_map, solve_time) = trisolve::solve_with_overhead(
        rank,
        Arc::clone(sf),
        grid,
        &store,
        bp,
        solve_kernels,
        RENDEZVOUS_OVERHEAD,
    );
    RankOut {
        factor_time,
        solve_time,
        counts: kernels.counts,
        x_pieces: x_map.into_iter().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sympack_sparse::gen::{laplacian_2d, random_spd};
    use sympack_sparse::vecops::{max_abs_diff, test_rhs};

    #[test]
    fn fanin_is_numerically_correct() {
        let a = laplacian_2d(9, 8);
        let b = test_rhs(a.n());
        let r = fanin_factor_and_solve(&a, &b, &BaselineOptions::default());
        assert!(r.relative_residual < 1e-10, "residual {}", r.relative_residual);
    }

    #[test]
    fn fanin_matches_fanout_across_rank_counts() {
        let a = random_spd(80, 5, 19);
        let b = test_rhs(80);
        let reference = sympack::SymPack::factor_and_solve(
            &a,
            &b,
            &sympack::SolverOptions::default(),
        );
        for (nodes, ppn) in [(1, 1), (2, 2), (3, 2)] {
            let r = fanin_factor_and_solve(
                &a,
                &b,
                &BaselineOptions { n_nodes: nodes, ranks_per_node: ppn, ..Default::default() },
            );
            assert!(r.relative_residual < 1e-10);
            let d = max_abs_diff(&r.x, &reference.x);
            assert!(d < 1e-8, "nodes={nodes} ppn={ppn}: diverges by {d}");
        }
    }

    #[test]
    fn fanin_sends_fewer_messages_than_rightlooking_broadcasts() {
        // The taxonomy's point: aggregates coalesce what the panel
        // broadcast sends piecemeal. Compare RPC counts on a problem with
        // many supernodes.
        let a = laplacian_2d(16, 16);
        let b = test_rhs(a.n());
        let opts = BaselineOptions { n_nodes: 4, ranks_per_node: 1, ..Default::default() };
        let fi = fanin_factor_and_solve(&a, &b, &opts);
        let rl = crate::rightlooking::baseline_factor_and_solve(&a, &b, &opts);
        assert!(
            fi.stats.rpcs < rl.stats.rpcs,
            "fan-in rpcs {} vs right-looking {}",
            fi.stats.rpcs,
            rl.stats.rpcs
        );
    }
}
