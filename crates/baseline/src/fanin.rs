//! Fan-in supernodal factorization — the other family in Ashcraft's
//! taxonomy the paper recounts in §2.3.
//!
//! Where the fan-out algorithm broadcasts *factors* and computes updates at
//! the owner of the **target**, the fan-in algorithm computes updates at the
//! owner of the **source** column and ships *aggregate vectors*: each rank
//! accumulates all of its updates to a remote target supernode in a local
//! aggregation buffer and sends the buffer once, when its last local
//! contribution has been folded in. Messages are fewer but larger and later
//! — the latency/volume trade the taxonomy is about.
//!
//! Mapping is the same 1D supernode-cyclic distribution as the
//! right-looking baseline, so the three solvers (fan-out 2D symPACK,
//! right-looking 1D, fan-in 1D) isolate the communication-family effect.
//! Scheduling runs through the shared [`sympack::sched::TaskEngine`]; the
//! two-sided flavor survives as the runtime's blocking-fetch rendezvous
//! charge.

use std::collections::HashMap;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use sympack::map2d::ProcGrid;
use sympack::sched::{self, CommLayer, FetchConfig, FetchMode, TaskEngine, TaskKind};
use sympack::storage::BlockStore;
use sympack::trisolve::{self, SolveParams};
use sympack::SolverError;
use sympack_dense::Mat;
use sympack_gpu::KernelEngine;
use sympack_pgas::{GlobalPtr, MemKind, PgasConfig, Rank, Runtime};
use sympack_sparse::SparseSym;
use sympack_symbolic::SymbolicFactor;
use sympack_trace::{TraceCat, Tracer};

use crate::rightlooking::{
    build_report, comm_events, BaselineOptions, BaselineReport, RankOut, SIGNAL_WIRE_BYTES,
};

/// Per-receive synchronization cost (same two-sided flavor as the
/// right-looking baseline).
const RENDEZVOUS_OVERHEAD: f64 = 5.0e-6;

fn owner_of(j: usize, p: usize) -> usize {
    j % p
}

/// The single task species of the fan-in algorithm: factor owned supernode
/// `j` (POTRF + TRSMs) and immediately compute every update it sources,
/// folding them into local targets or aggregation buffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct FiKey {
    j: usize,
}

impl TaskKind for FiKey {
    fn priority_key(&self) -> (usize, usize) {
        (self.j, 0)
    }
    fn seed_key(&self) -> (usize, usize, usize, usize) {
        (self.j, 0, 0, 0)
    }
    fn kind_name(&self) -> &'static str {
        "factor_scatter"
    }
    fn trace_label(&self) -> String {
        format!("S({})", self.j)
    }
    fn trace_cat(&self) -> TraceCat {
        TraceCat::Potrf
    }
}

/// An aggregation buffer for one remote target supernode: the diagonal
/// update plus one dense block per off-diagonal block of the target.
struct AggBuffer {
    diag: Mat,
    blocks: Vec<Mat>,
}

impl AggBuffer {
    fn new(sf: &SymbolicFactor, b: usize) -> Self {
        let w = sf.partition.width(b);
        let blocks = sf
            .layout
            .blocks_of(b)
            .iter()
            .map(|info| Mat::zeros(info.n_rows, w))
            .collect();
        AggBuffer {
            diag: Mat::zeros(w, w),
            blocks,
        }
    }

    fn pack(&self) -> Vec<f64> {
        let mut out = Vec::new();
        out.extend_from_slice(self.diag.as_slice());
        for b in &self.blocks {
            out.extend_from_slice(b.as_slice());
        }
        out
    }

    fn unpack(sf: &SymbolicFactor, b: usize, data: &[f64]) -> Self {
        let w = sf.partition.width(b);
        let diag = Mat::from_col_major(w, w, data[..w * w].to_vec());
        let mut off = w * w;
        let mut blocks = Vec::new();
        for info in sf.layout.blocks_of(b) {
            let len = info.n_rows * w;
            blocks.push(Mat::from_col_major(
                info.n_rows,
                w,
                data[off..off + len].to_vec(),
            ));
            off += len;
        }
        AggBuffer { diag, blocks }
    }
}

/// A received aggregate: pointer to the packed buffer of target `b`.
#[derive(Debug, Clone, Copy)]
struct AggSignal {
    ptr: GlobalPtr,
    target: usize,
}

impl sched::Signal for AggSignal {
    fn ptr(&self) -> GlobalPtr {
        self.ptr
    }

    fn describe(&self) -> String {
        format!("aggregate update for supernode {}", self.target)
    }
}

/// Add a received (or locally finished) aggregate into the owned blocks.
fn absorb_aggregate(sf: &SymbolicFactor, store: &mut BlockStore, b: usize, agg: &AggBuffer) {
    {
        let diag = store.get_mut((b, b)).expect("diag owned").dense_mut();
        for c in 0..agg.diag.cols() {
            for r in c..agg.diag.rows() {
                diag[(r, c)] += agg.diag[(r, c)];
            }
        }
    }
    for (info, buf) in sf.layout.blocks_of(b).iter().zip(&agg.blocks) {
        let m = store
            .get_mut((info.target, b))
            .expect("block owned")
            .dense_mut();
        for c in 0..buf.cols() {
            for r in 0..buf.rows() {
                m[(r, c)] += buf[(r, c)];
            }
        }
    }
}

/// Per-rank fan-in engine, installed as the rank's user state.
struct FiEngine {
    sf: Arc<SymbolicFactor>,
    store: BlockStore,
    kernels: KernelEngine,
    /// The shared scheduling core: dep counters, RTQ, inbox, tracer.
    rt: TaskEngine<FiKey, AggSignal>,
    /// Aggregation buffers for remote targets, keyed by target supernode.
    aggs: HashMap<usize, AggBuffer>,
    /// Outstanding local contributions per remote target.
    my_contribs: HashMap<usize, usize>,
    fetch: FetchConfig,
    /// Per-destination signal coalescing (pass-through when off).
    comm: CommLayer,
    p: usize,
    me: usize,
}

impl FiEngine {
    #[allow(clippy::too_many_arguments)]
    fn new(
        sf: Arc<SymbolicFactor>,
        ap: &SparseSym,
        grid: &ProcGrid,
        rank: usize,
        p: usize,
        kernels: KernelEngine,
        opts: &BaselineOptions,
        abort: Arc<AtomicBool>,
    ) -> Self {
        let store = BlockStore::init(&sf, ap, grid, rank);
        let ns = sf.n_supernodes();
        let mut rt: TaskEngine<FiKey, AggSignal> = TaskEngine::new(opts.rtq_policy, abort);
        if opts.trace {
            rt.tracer = Some(Tracer::new());
        }
        // Dependency accounting.
        // deps[j] (owned j) = #own earlier supernodes contributing to j
        //                   + #remote ranks contributing to j (one aggregate
        //                     message each).
        // my_contribs[b] (remote b) = #own supernodes contributing to b.
        let mut remaining: HashMap<usize, usize> = HashMap::new();
        let mut my_contribs: HashMap<usize, usize> = HashMap::new();
        for j in (0..ns).filter(|&j| owner_of(j, p) == rank) {
            remaining.insert(j, 0);
        }
        let mut contributing_ranks: HashMap<usize, std::collections::HashSet<usize>> =
            HashMap::new();
        for j in 0..ns {
            let src_owner = owner_of(j, p);
            for bb in sf.layout.blocks_of(j) {
                let b = bb.target;
                let dst_owner = owner_of(b, p);
                if dst_owner == rank {
                    if src_owner == rank {
                        *remaining.get_mut(&b).expect("owned") += 1;
                    } else {
                        contributing_ranks.entry(b).or_default().insert(src_owner);
                    }
                } else if src_owner == rank {
                    *my_contribs.entry(b).or_default() += 1;
                }
            }
        }
        for (b, ranks) in &contributing_ranks {
            *remaining.get_mut(b).expect("owned") += ranks.len();
        }
        for (&j, &deps) in &remaining {
            rt.insert_task(FiKey { j }, deps);
        }
        rt.seed_ready();
        let fetch = FetchConfig {
            device_enabled: kernels.gpu_enabled,
            device_threshold: 64 * 64,
            oom_policy: opts.oom_policy,
            mode: FetchMode::Blocking {
                overhead: RENDEZVOUS_OVERHEAD,
            },
        };
        FiEngine {
            sf,
            store,
            kernels,
            rt,
            aggs: HashMap::new(),
            my_contribs,
            fetch,
            comm: CommLayer::new(opts.coalesce),
            p,
            me: rank,
        }
    }

    /// Resolve queued aggregate signals: blocking two-sided receives, then
    /// fold each aggregate into the owned target and release its factor
    /// task.
    fn drain_pending(&mut self, rank: &mut Rank) {
        let signals = self.rt.take_signals();
        if signals.is_empty() {
            return;
        }
        let cfg = self.fetch;
        let res = sched::drain_signals(rank, signals, &cfg, |_rank, s, data, ready_at| {
            let agg = AggBuffer::unpack(&self.sf, s.target, &data);
            absorb_aggregate(&self.sf, &mut self.store, s.target, &agg);
            self.rt.dec(FiKey { j: s.target }, ready_at);
        });
        if let Err(err) = res {
            self.rt.fail(rank, err);
        }
    }

    fn step(&mut self, rank: &mut Rank) -> bool {
        self.drain_pending(rank);
        self.comm.tick(rank);
        let Some((key, ready_at)) = self.rt.pick() else {
            self.comm.flush_all(rank);
            return false;
        };
        self.rt.begin(rank, ready_at);
        self.exec_factor(rank, key);
        self.rt.complete(key);
        true
    }

    /// Factor supernode `j` and fan its updates in: owned targets are
    /// updated in place, remote targets accumulate into aggregation buffers
    /// shipped once the last local contribution lands.
    fn exec_factor(&mut self, rank: &mut Rank, key: FiKey) {
        let j = key.j;
        let mut diag = self.store.take((j, j)).expect("diag owned").into_dense();
        let (_, secs) = self
            .kernels
            .potrf(&mut diag)
            .expect("fan-in requires SPD input");
        self.rt.charge(rank, key, secs);
        for bb in self.sf.layout.blocks_of(j).to_vec() {
            let mut blk = self
                .store
                .take((bb.target, j))
                .expect("block owned")
                .into_dense();
            let (_, secs) = self.kernels.trsm(&mut blk, &diag);
            self.rt.charge(rank, key, secs);
            self.store.put((bb.target, j), blk);
        }
        self.store.put((j, j), diag);
        // Compute this supernode's updates at the source (fan-in).
        let touched = self.scatter_updates(rank, key);
        let now = rank.now();
        for b in touched {
            if owner_of(b, self.p) == self.me {
                self.rt.dec(FiKey { j: b }, now);
            } else {
                let c = self.my_contribs.get_mut(&b).expect("contrib counted");
                *c -= 1;
                if *c == 0 {
                    // Last local contribution folded in: ship the aggregate
                    // once.
                    let agg = self.aggs.remove(&b).expect("aggregate exists");
                    let packed = agg.pack();
                    let ptr = rank.alloc(MemKind::Host, packed.len()).expect("host alloc");
                    rank.write_local(&ptr, &packed);
                    let sig = AggSignal { ptr, target: b };
                    let dest = owner_of(b, self.p);
                    // Aggregates ride the droppable/duplicable signal path;
                    // the inbox deduplicates and the stall detector
                    // diagnoses drops. try_with_state: a straggling
                    // duplicate may land after the state is torn down.
                    self.comm.send(rank, dest, SIGNAL_WIRE_BYTES, move |r| {
                        r.try_with_state::<FiEngine, _>(|_, st| {
                            st.rt.post_unique(sig);
                        });
                    });
                }
            }
        }
    }

    /// Apply the update pairs of factored supernode `j` into either the
    /// local store (owned targets) or the aggregation buffers (remote
    /// targets). Returns the distinct targets touched.
    fn scatter_updates(&mut self, rank: &mut Rank, key: FiKey) -> Vec<usize> {
        let j = key.j;
        let blocks_meta = self.sf.layout.blocks_of(j).to_vec();
        let mut touched = Vec::new();
        for (bi, bb) in blocks_meta.iter().enumerate() {
            let b = bb.target;
            let local = owner_of(b, self.p) == self.me;
            touched.push(b);
            let first_b = self.sf.partition.first_col(b);
            let rows_b = self.sf.patterns[j][bb.row_offset..bb.row_offset + bb.n_rows].to_vec();
            let lb = self
                .store
                .get((b, j))
                .expect("factored block local")
                .to_dense();
            for ba in blocks_meta.iter().skip(bi) {
                let a = ba.target;
                let la = self
                    .store
                    .get((a, j))
                    .expect("factored block local")
                    .to_dense();
                if a == b {
                    let nb = lb.rows();
                    let mut temp = Mat::zeros(nb, nb);
                    let (_, secs) = self.kernels.syrk(&mut temp, &lb);
                    self.rt.charge(rank, key, secs);
                    let sf = &self.sf;
                    let target: &mut Mat = if local {
                        self.store.get_mut((b, b)).expect("diag owned").dense_mut()
                    } else {
                        &mut self
                            .aggs
                            .entry(b)
                            .or_insert_with(|| AggBuffer::new(sf, b))
                            .diag
                    };
                    for (ci, &gc) in rows_b.iter().enumerate() {
                        let tc = gc - first_b;
                        for (ri, &gr) in rows_b.iter().enumerate().skip(ci) {
                            target[(gr - first_b, tc)] += temp[(ri, ci)];
                        }
                    }
                } else {
                    let rows_a =
                        self.sf.patterns[j][ba.row_offset..ba.row_offset + ba.n_rows].to_vec();
                    let tinfo = self.sf.layout.find(a, b).expect("target block exists");
                    let target_rows =
                        &self.sf.patterns[b][tinfo.row_offset..tinfo.row_offset + tinfo.n_rows];
                    let row_map: Vec<usize> = rows_a
                        .iter()
                        .map(|r| target_rows.binary_search(r).expect("row containment"))
                        .collect();
                    let mut temp = Mat::zeros(la.rows(), lb.rows());
                    let (_, secs) = self.kernels.gemm(&mut temp, &la, &lb);
                    self.rt.charge(rank, key, secs);
                    // Which block of the target supernode does (a,b) map to?
                    let bidx = self
                        .sf
                        .layout
                        .blocks_of(b)
                        .iter()
                        .position(|i2| i2.target == a)
                        .expect("block index");
                    let sf = &self.sf;
                    let target: &mut Mat = if local {
                        self.store
                            .get_mut((a, b))
                            .expect("target block owned")
                            .dense_mut()
                    } else {
                        &mut self
                            .aggs
                            .entry(b)
                            .or_insert_with(|| AggBuffer::new(sf, b))
                            .blocks[bidx]
                    };
                    for (ci, &gc) in rows_b.iter().enumerate() {
                        let tc = gc - first_b;
                        for (ri, &tr) in row_map.iter().enumerate() {
                            target[(tr, tc)] += temp[(ri, ci)];
                        }
                    }
                }
            }
        }
        touched.sort_unstable();
        touched.dedup();
        touched
    }
}

/// Factor and solve with the fan-in algorithm; panics on failure (see
/// [`try_fanin_factor_and_solve`] for the fallible form).
pub fn fanin_factor_and_solve(a: &SparseSym, b: &[f64], opts: &BaselineOptions) -> BaselineReport {
    try_fanin_factor_and_solve(a, b, opts).expect("fan-in factorization failed")
}

/// Factor and solve with the fan-in algorithm.
///
/// # Errors
/// [`SolverError::DeviceOom`] under the Abort OOM policy;
/// [`SolverError::FetchTimeout`] / [`SolverError::Stalled`] under fault
/// injection when the retry budget or the quiescence detector gives up.
pub fn try_fanin_factor_and_solve(
    a: &SparseSym,
    b: &[f64],
    opts: &BaselineOptions,
) -> Result<BaselineReport, SolverError> {
    assert_eq!(b.len(), a.n());
    let sf = crate::rightlooking::baseline_symbolic(a, opts);
    let ap = Arc::new(a.permute(sf.perm.as_slice()));
    let bp = Arc::new(sf.perm.apply_vec(b));
    let p = opts.n_nodes * opts.ranks_per_node;
    let grid = ProcGrid::one_dimensional(p);
    let mut config = PgasConfig::multi_node(opts.n_nodes, opts.ranks_per_node);
    config.net = opts.net.clone();
    config.device_quota = opts.device_quota;
    config.faults = opts.faults;
    config.deterministic = opts.deterministic;
    let abort = Arc::new(AtomicBool::new(false));
    let opts2 = opts.clone();
    let report = Runtime::run(config, |rank| {
        run_rank(rank, &sf, &ap, &bp, grid, p, &opts2, &abort)
    });
    build_report("fanin", a, b, &sf, report, opts.trace)
}

#[allow(clippy::too_many_arguments)] // one-shot per-rank closure body
fn run_rank(
    rank: &mut Rank,
    sf: &Arc<SymbolicFactor>,
    ap: &SparseSym,
    bp: &[f64],
    grid: ProcGrid,
    p: usize,
    opts: &BaselineOptions,
    abort: &Arc<AtomicBool>,
) -> RankOut {
    let me = rank.id();
    if opts.trace {
        // Comm-layer spans (rget/rput/rpc/drain) for the profile.
        rank.set_tracer(Tracer::new());
    }
    let mut kernels = if opts.gpu {
        KernelEngine::new_gpu()
    } else {
        KernelEngine::new_cpu()
    };
    if let Some(t) = &opts.thresholds {
        kernels.thresholds = t.clone();
    }
    let engine = FiEngine::new(
        Arc::clone(sf),
        ap,
        &grid,
        me,
        p,
        kernels,
        opts,
        Arc::clone(abort),
    );
    let start = rank.now();
    let mut engine = sched::run_event_loop(
        rank,
        engine,
        |rank, st: &mut FiEngine| {
            while st.step(rank) {}
            st.rt.finished() || rank.job_aborted()
        },
        |rank, st| {
            let (done, total) = (st.rt.done_count(), st.rt.total());
            st.rt.fail(
                rank,
                SolverError::Stalled {
                    rank: rank.id(),
                    done,
                    total,
                    detail: "fan-in factorization quiesced with unfinished tasks \
                             (dropped aggregate suspected)"
                        .into(),
                },
            );
        },
    );
    let factor_time = rank.now() - start;
    let aborted = engine.rt.aborted() || rank.job_aborted();
    if !aborted {
        engine.rt.debug_assert_completed();
    }
    let mut trace = engine
        .rt
        .tracer
        .take()
        .map(Tracer::into_events)
        .unwrap_or_default();
    let mut tasks: Vec<(String, u64)> = engine
        .rt
        .task_counts()
        .iter()
        .map(|&(k, v)| (k.to_string(), v))
        .collect();
    if aborted {
        // Skip the solve collectively (sticky job-abort keeps every rank's
        // barrier sequence aligned).
        trace.extend(comm_events(rank));
        return RankOut {
            error: engine.rt.error.take(),
            factor_time,
            solve_time: 0.0,
            counts: engine.kernels.counts,
            x_pieces: Vec::new(),
            trace,
            tasks,
        };
    }
    let solve_kernels = if opts.gpu {
        KernelEngine::new_gpu()
    } else {
        KernelEngine::new_cpu()
    };
    let params = SolveParams {
        policy: opts.rtq_policy,
        msg_overhead: RENDEZVOUS_OVERHEAD,
        trace: opts.trace,
    };
    let mut out = trisolve::solve(
        rank,
        Arc::clone(sf),
        grid,
        &engine.store,
        bp,
        solve_kernels,
        &params,
    );
    trace.extend(std::mem::take(&mut out.trace));
    trace.extend(comm_events(rank));
    tasks.extend(out.task_counts.iter().map(|&(k, v)| (k.to_string(), v)));
    RankOut {
        error: out.error.take(),
        factor_time,
        solve_time: out.elapsed,
        counts: engine.kernels.counts,
        x_pieces: out.x.into_iter().collect(),
        trace,
        tasks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sympack_sparse::gen::{laplacian_2d, random_spd};
    use sympack_sparse::vecops::{max_abs_diff, test_rhs};

    #[test]
    fn fanin_is_numerically_correct() {
        let a = laplacian_2d(9, 8);
        let b = test_rhs(a.n());
        let r = fanin_factor_and_solve(&a, &b, &BaselineOptions::default());
        assert!(
            r.relative_residual < 1e-10,
            "residual {}",
            r.relative_residual
        );
    }

    #[test]
    fn fanin_matches_fanout_across_rank_counts() {
        let a = random_spd(80, 5, 19);
        let b = test_rhs(80);
        let reference =
            sympack::SymPack::factor_and_solve(&a, &b, &sympack::SolverOptions::default());
        for (nodes, ppn) in [(1, 1), (2, 2), (3, 2)] {
            let r = fanin_factor_and_solve(
                &a,
                &b,
                &BaselineOptions {
                    n_nodes: nodes,
                    ranks_per_node: ppn,
                    ..Default::default()
                },
            );
            assert!(r.relative_residual < 1e-10);
            let d = max_abs_diff(&r.x, &reference.x);
            assert!(d < 1e-8, "nodes={nodes} ppn={ppn}: diverges by {d}");
        }
    }

    #[test]
    fn fanin_sends_fewer_messages_than_rightlooking_broadcasts() {
        // The taxonomy's point: aggregates coalesce what the panel
        // broadcast sends piecemeal. Compare RPC counts on a problem with
        // many supernodes.
        let a = laplacian_2d(16, 16);
        let b = test_rhs(a.n());
        let opts = BaselineOptions {
            n_nodes: 4,
            ranks_per_node: 1,
            ..Default::default()
        };
        let fi = fanin_factor_and_solve(&a, &b, &opts);
        let rl = crate::rightlooking::baseline_factor_and_solve(&a, &b, &opts);
        assert!(
            fi.stats.rpcs < rl.stats.rpcs,
            "fan-in rpcs {} vs right-looking {}",
            fi.stats.rpcs,
            rl.stats.rpcs
        );
    }
}
