//! Seeded property tests for the trace crate: Chrome export always emits
//! valid JSON (checked with the crate's own parser), `merge` is a stable
//! sort by start time, and profiles built from random synthetic schedules
//! uphold the structural invariants (critical path bounded by the makespan,
//! per-rank time classes summing to the makespan) and round-trip through
//! the profile JSON codec bit-identically.

use sympack_trace::metrics::Histogram;
use sympack_trace::profile::{check_invariants, CommMatrix, Profile};
use sympack_trace::telemetry::{LogHistogram, Telemetry};
use sympack_trace::{json, merge, to_chrome_json, SpanKind, TraceCat, TraceEvent};

/// xorshift64* — deterministic, no external crates.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

const CATS: [TraceCat; 7] = [
    TraceCat::Potrf,
    TraceCat::Trsm,
    TraceCat::Syrk,
    TraceCat::Gemm,
    TraceCat::Comm,
    TraceCat::Solve,
    TraceCat::Other,
];

/// Names that stress the JSON escaper: quotes, backslashes, control
/// characters, unicode, empty.
const NASTY_NAMES: [&str; 7] = [
    "D(3)",
    "panel \"q\"",
    "back\\slash",
    "",
    "π-λ-Ж",
    "ctrl\n\ttab",
    "U(1,2,3)",
];

fn random_event(rng: &mut Rng) -> TraceEvent {
    let start = rng.f64() * 1e-3;
    let dur = rng.f64() * 1e-4;
    let mut e = TraceEvent::basic(
        rng.below(8),
        NASTY_NAMES[rng.below(NASTY_NAMES.len())].to_string(),
        CATS[rng.below(CATS.len())],
        start,
        dur,
    );
    e.kind = [
        SpanKind::Exec,
        SpanKind::Rget,
        SpanKind::Rput,
        SpanKind::Copy,
        SpanKind::Rpc,
        SpanKind::Request,
    ][rng.below(6)];
    if rng.below(2) == 0 {
        e.bytes = rng.next() % (1 << 20);
    }
    if rng.below(3) == 0 {
        e.peer = Some(rng.below(8));
    }
    if e.kind == SpanKind::Exec && rng.below(2) == 0 {
        e.kernel = dur * rng.f64();
        e.overhead = dur - e.kernel;
    }
    e
}

#[test]
fn chrome_export_is_valid_json_for_random_timelines() {
    for seed in 0..50 {
        let mut rng = Rng::new(seed);
        let n = rng.below(40);
        let events: Vec<TraceEvent> = (0..n).map(|_| random_event(&mut rng)).collect();
        let doc = to_chrome_json(&events);
        let parsed = json::parse(&doc).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let rows = parsed
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .unwrap_or_else(|| panic!("seed {seed}: no traceEvents array"));
        assert_eq!(rows.len(), events.len(), "seed {seed}");
        for (row, ev) in rows.iter().zip(&events) {
            let name = row.get("name").and_then(|v| v.as_str()).expect("name");
            assert_eq!(name, ev.name, "seed {seed}: name must survive escaping");
            let kind = row
                .get("args")
                .and_then(|a| a.get("kind"))
                .and_then(|v| v.as_str())
                .expect("args.kind");
            assert_eq!(kind, ev.kind.label(), "seed {seed}");
        }
    }
}

#[test]
fn chrome_export_of_empty_timeline_is_valid_json() {
    let doc = to_chrome_json(&[]);
    let parsed = json::parse(&doc).expect("empty timeline parses");
    let rows = parsed
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents");
    assert!(rows.is_empty());
}

#[test]
fn merge_sorts_by_start_and_keeps_equal_starts_stable() {
    for seed in 0..30 {
        let mut rng = Rng::new(1000 + seed);
        let n_lists = 1 + rng.below(5);
        let lists: Vec<Vec<TraceEvent>> = (0..n_lists)
            .map(|rank| {
                (0..rng.below(30))
                    .map(|i| {
                        let mut e = random_event(&mut rng);
                        // Quantized starts force plenty of exact ties.
                        e.start = (rng.below(10) as f64) * 1e-4;
                        e.rank = rank;
                        e.name = format!("r{rank}-{i}");
                        e
                    })
                    .collect()
            })
            .collect();
        let flat_order: Vec<String> = lists
            .iter()
            .flatten()
            .map(|e| e.name.clone())
            .collect::<Vec<_>>();
        let merged = merge(lists);
        for w in merged.windows(2) {
            assert!(w[0].start <= w[1].start, "seed {seed}: not sorted");
        }
        // Stability: within an equal-start group, events keep the flattened
        // input order.
        let pos = |name: &str| flat_order.iter().position(|n| n == name).unwrap();
        for w in merged.windows(2) {
            if w[0].start == w[1].start {
                assert!(
                    pos(&w[0].name) < pos(&w[1].name),
                    "seed {seed}: tie between {} and {} reordered",
                    w[0].name,
                    w[1].name
                );
            }
        }
    }
}

/// A random but well-formed schedule: per rank a chain of non-overlapping
/// Exec spans (random gaps, ready times and preds) plus comm spans, the
/// shape real engine traces have.
fn random_schedule(rng: &mut Rng) -> (Vec<TraceEvent>, f64, usize, CommMatrix) {
    let n_ranks = 1 + rng.below(4);
    let mut events = Vec::new();
    let mut makespan = 0.0f64;
    let mut comm = CommMatrix::empty(n_ranks);
    for rank in 0..n_ranks {
        let mut t = rng.f64() * 1e-5;
        let n_tasks = 1 + rng.below(25);
        for i in 0..n_tasks {
            let gap = rng.f64() * 2e-5;
            let start = t + gap;
            // Ready anywhere in the gap (dep wait), or before the previous
            // task ended (resource wait).
            let ready_at = t - rng.f64() * 1e-5 + rng.f64() * (gap + 1e-5);
            let dur = 1e-7 + rng.f64() * 3e-5;
            let mut e = TraceEvent::basic(
                rank,
                format!("T({rank},{i})"),
                CATS[rng.below(4)],
                start,
                dur,
            );
            e.ready_at = ready_at.max(0.0);
            e.overhead = dur * rng.f64() * 0.3;
            e.kernel = dur - e.overhead;
            e.rtq_depth = rng.below(20) as u32;
            e.bytes = rng.next() % (1 << 16);
            if i > 0 && rng.below(2) == 0 {
                // Dep label pointing at some earlier task on a random rank.
                e.pred = Some(format!("T({},{})", rng.below(n_ranks), rng.below(i)));
            }
            if rng.below(3) == 0 {
                // A comm span somewhere inside the dep gap.
                let peer = rng.below(n_ranks);
                let cdur = rng.f64() * gap;
                let mut c = TraceEvent::basic(
                    rank,
                    "rget".to_string(),
                    TraceCat::Comm,
                    t + (gap - cdur) * rng.f64(),
                    cdur,
                );
                c.kind = SpanKind::Rget;
                c.peer = Some(peer);
                c.bytes = rng.next() % (1 << 12);
                comm.bytes[peer * n_ranks + rank] += c.bytes;
                comm.msgs[peer * n_ranks + rank] += 1;
                events.push(c);
            }
            events.push(e);
            t = start + dur;
        }
        makespan = makespan.max(t);
    }
    // Sometimes the makespan extends past the last task (barrier tail).
    if rng.below(2) == 0 {
        makespan += rng.f64() * 1e-5;
    }
    (events, makespan, n_ranks, comm)
}

#[test]
fn random_schedules_uphold_profile_invariants() {
    for seed in 0..60 {
        let mut rng = Rng::new(31 * seed + 7);
        let (events, makespan, n_ranks, comm) = random_schedule(&mut rng);
        let p = Profile::build("prop", &events, makespan, n_ranks, comm);
        check_invariants(&p).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert!(p.crit_len <= p.makespan + 1e-12 + 1e-9 * p.makespan);
        assert!(!p.crit.is_empty());
    }
}

#[test]
fn random_profiles_roundtrip_through_json_bit_identically() {
    for seed in 0..20 {
        let mut rng = Rng::new(97 * seed + 13);
        let (mut events, makespan, n_ranks, comm) = random_schedule(&mut rng);
        // Inject escaper-hostile names into some spans.
        for (i, e) in events.iter_mut().enumerate() {
            if i % 5 == 0 {
                e.name = NASTY_NAMES[i % NASTY_NAMES.len()].to_string();
            }
        }
        let p = Profile::build("prop \"escaped\"", &events, makespan, n_ranks, comm);
        let doc = p.to_json();
        let p2 = Profile::from_json(&doc).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(doc, p2.to_json(), "seed {seed}: roundtrip not stable");
        assert_eq!(p.n_ranks, p2.n_ranks);
        assert_eq!(p.spans.len(), p2.spans.len());
        check_invariants(&p2).unwrap_or_else(|e| panic!("seed {seed} reparsed: {e}"));
    }
}

/// Random latency-like samples: mostly small positive values with the
/// occasional large outlier, zero, and exact repeats — the shapes that
/// stress bucket-edge interpolation.
fn random_samples(rng: &mut Rng, n: usize) -> Vec<f64> {
    (0..n)
        .map(|_| match rng.below(8) {
            0 => 0.0,
            1 => rng.f64() * 1e3,         // outlier
            2 => 1e-6,                    // exact repeat magnet
            _ => 1e-6 + rng.f64() * 1e-2, // typical latency
        })
        .collect()
}

#[test]
fn exact_histogram_quantiles_are_monotone_and_bounded() {
    for seed in 0..60 {
        let mut rng = Rng::new(211 * seed + 5);
        let mut h = Histogram::new();
        let n = 1 + rng.below(200);
        let samples = random_samples(&mut rng, n);
        for &s in &samples {
            h.record(s);
        }
        let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=100 {
            let q = i as f64 / 100.0;
            let v = h.quantile(q);
            assert!(
                v >= prev,
                "seed {seed}: quantile({q}) = {v} < quantile({}) = {prev}",
                (i as f64 - 1.0) / 100.0
            );
            assert!(
                (lo..=hi).contains(&v),
                "seed {seed}: quantile({q}) = {v} outside observed [{lo}, {hi}]"
            );
            prev = v;
        }
    }
}

#[test]
fn log_histogram_quantiles_are_monotone_and_bounded() {
    for seed in 0..60 {
        let mut rng = Rng::new(389 * seed + 11);
        let mut h = LogHistogram::new();
        let n = 1 + rng.below(200);
        let samples = random_samples(&mut rng, n);
        for &s in &samples {
            h.record(s);
        }
        let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=100 {
            let q = i as f64 / 100.0;
            let v = h.quantile(q);
            assert!(v >= prev, "seed {seed}: quantile({q}) = {v} not monotone");
            // Interpolated values are clamped to the observed range, never
            // a raw bucket edge outside it.
            assert!(
                v >= lo - 1e-12 && v <= hi + 1e-12,
                "seed {seed}: quantile({q}) = {v} outside observed [{lo}, {hi}]"
            );
            prev = v;
        }
        assert_eq!(h.quantile(0.0), lo, "seed {seed}: q=0 is the minimum");
        assert_eq!(h.quantile(1.0), hi, "seed {seed}: q=1 is the maximum");
    }
}

#[test]
fn empty_histograms_quantile_to_zero_not_nan() {
    let h = Histogram::new();
    assert_eq!(h.p50(), 0.0);
    assert_eq!(h.p99(), 0.0);
    assert_eq!(h.quantile(0.25), 0.0);
    let lh = LogHistogram::new();
    assert_eq!(lh.p50(), 0.0);
    assert_eq!(lh.p99(), 0.0);
    assert_eq!(lh.quantile(0.0), 0.0);
    assert_eq!(lh.quantile(1.0), 0.0);
}

#[test]
fn log_histogram_merge_matches_recording_the_union() {
    for seed in 0..30 {
        let mut rng = Rng::new(577 * seed + 3);
        let na = rng.below(100);
        let a = random_samples(&mut rng, na);
        let nb = rng.below(100);
        let b = random_samples(&mut rng, nb);
        let mut ha = LogHistogram::new();
        let mut hb = LogHistogram::new();
        let mut hu = LogHistogram::new();
        for &s in &a {
            ha.record(s);
            hu.record(s);
        }
        for &s in &b {
            hb.record(s);
            hu.record(s);
        }
        ha.merge_from(&hb);
        assert_eq!(ha.count(), hu.count(), "seed {seed}");
        // Bucketized shape is exactly the union; the mean may differ by an
        // ULP because merging regroups the floating-point sum.
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(
                ha.quantile(q).to_bits(),
                hu.quantile(q).to_bits(),
                "seed {seed}: quantile({q}) merge != union"
            );
        }
        assert_eq!(ha.min().to_bits(), hu.min().to_bits(), "seed {seed}");
        assert_eq!(ha.max().to_bits(), hu.max().to_bits(), "seed {seed}");
        assert!(
            (ha.mean() - hu.mean()).abs() <= 1e-12 * hu.mean().abs().max(1.0),
            "seed {seed}: merged mean {} far from union mean {}",
            ha.mean(),
            hu.mean()
        );
    }
}

#[test]
fn telemetry_snapshot_json_roundtrips_through_the_writer() {
    for seed in 0..20 {
        let mut rng = Rng::new(733 * seed + 17);
        let mut tel = Telemetry::new();
        let c = tel.counter("prop_total", &[("rank", "0")]);
        let g = tel.gauge("prop_depth", &[]);
        let h = tel.histogram("prop_latency_seconds", &[("tenant", "π \"q\"")]);
        for tick in 0..rng.below(20) {
            tel.inc(c, rng.next() % 100);
            tel.set(g, rng.f64() * 50.0);
            let n = rng.below(10);
            for &s in &random_samples(&mut rng, n) {
                tel.observe(h, s);
            }
            tel.sample(tick as f64 * 1e-3);
        }
        let doc = tel.snapshot().to_json();
        let v = json::parse(&doc).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let v2 = json::parse(&json::write(&v)).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(v, v2, "seed {seed}: writer round-trip changed the tree");
    }
}
