//! A minimal hand-rolled JSON reader, in the same zero-dependency spirit as
//! the writers in [`crate::metrics`] and [`crate::profile`].
//!
//! It parses the full JSON grammar (objects, arrays, strings with escapes,
//! numbers, booleans, null) into a [`JsonValue`] tree. It exists so the
//! profiler can load `Profile` JSON back (for `sympack-prof report`/`diff`)
//! and so the property tests can verify that our writers emit valid JSON
//! without reaching for an external crate.

/// A parsed JSON value. Object keys keep insertion order (a `Vec`, not a
/// map) — profiles are small and order-preserving output is nice for diffs.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// Numeric value truncated to u64 (counters, byte counts).
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().map(|x| x as u64)
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

// ----- writer -----
//
// The reverse direction: every metrics/telemetry document in the workspace
// (`ServiceMetrics`, `FleetCacheMetrics`, roofline samples, telemetry
// snapshots) is emitted through these two builders instead of hand-rolled
// `format!` strings, so the formatting rules live in exactly one place:
// numbers use Rust's shortest-roundtrip `Display` (bit-deterministic for a
// given value), strings go through `json_escape`, and no whitespace is ever
// emitted (committed artifacts are byte-compared in CI).

/// Format an `f64` the way every writer in this crate does: `Display`
/// (shortest roundtrip). Non-finite values have no JSON spelling; callers
/// are expected to keep them out (empty-distribution quantiles are defined
/// as 0.0 for exactly this reason).
pub fn fmt_f64(v: f64) -> String {
    debug_assert!(v.is_finite(), "non-finite value in a JSON document");
    format!("{v}")
}

/// Builder for a JSON object: `Obj::new().u64("a", 1).finish()` →
/// `{"a":1}`. Field order is emission order; keys are escaped.
#[derive(Debug, Default)]
pub struct Obj {
    out: String,
}

impl Obj {
    /// Start an empty object.
    pub fn new() -> Self {
        Obj { out: String::new() }
    }

    fn key(&mut self, k: &str) {
        if !self.out.is_empty() {
            self.out.push(',');
        }
        self.out.push('"');
        self.out.push_str(&crate::json_escape(k));
        self.out.push_str("\":");
    }

    /// Unsigned integer field.
    pub fn u64(mut self, k: &str, v: u64) -> Self {
        self.key(k);
        self.out.push_str(&v.to_string());
        self
    }

    /// Float field (`Display` formatting, matching every writer here).
    pub fn f64(mut self, k: &str, v: f64) -> Self {
        self.key(k);
        self.out.push_str(&fmt_f64(v));
        self
    }

    /// Boolean field.
    pub fn bool(mut self, k: &str, v: bool) -> Self {
        self.key(k);
        self.out.push_str(if v { "true" } else { "false" });
        self
    }

    /// Escaped string field.
    pub fn str(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        self.out.push('"');
        self.out.push_str(&crate::json_escape(v));
        self.out.push('"');
        self
    }

    /// Pre-rendered JSON field (a nested object/array built separately).
    pub fn raw(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        self.out.push_str(v);
        self
    }

    /// Close the object.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.out)
    }
}

/// Builder for a JSON array of pre-rendered elements.
#[derive(Debug, Default)]
pub struct Arr {
    items: Vec<String>,
}

impl Arr {
    /// Start an empty array.
    pub fn new() -> Self {
        Arr::default()
    }

    /// Append one pre-rendered JSON element.
    pub fn raw(mut self, v: impl Into<String>) -> Self {
        self.items.push(v.into());
        self
    }

    /// Append one pre-rendered element in place (loop-friendly).
    pub fn push(&mut self, v: impl Into<String>) {
        self.items.push(v.into());
    }

    /// Append one float element.
    pub fn f64(mut self, v: f64) -> Self {
        self.items.push(fmt_f64(v));
        self
    }

    /// Close the array.
    pub fn finish(self) -> String {
        format!("[{}]", self.items.join(","))
    }
}

/// Render a parsed [`JsonValue`] back to compact JSON (numbers via
/// [`fmt_f64`], strings escaped). `parse(write(v)) == v` for any finite
/// tree; used by `sympack-top --replay` to normalize snapshots.
pub fn write(v: &JsonValue) -> String {
    match v {
        JsonValue::Null => "null".to_string(),
        JsonValue::Bool(b) => b.to_string(),
        JsonValue::Num(x) => fmt_f64(*x),
        JsonValue::Str(s) => format!("\"{}\"", crate::json_escape(s)),
        JsonValue::Arr(items) => {
            let mut a = Arr::new();
            for it in items {
                a.push(write(it));
            }
            a.finish()
        }
        JsonValue::Obj(fields) => {
            let mut o = Obj::new();
            for (k, val) in fields {
                o = o.raw(k, &write(val));
            }
            o.finish()
        }
    }
}

/// Parse error with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub pos: usize,
    pub msg: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parse a complete JSON document (exactly one value plus whitespace).
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            pos: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&cp) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid codepoint"))?
                            };
                            out.push(c);
                            continue; // hex4 advanced pos already
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid; copy the whole scalar through).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Read 4 hex digits starting at `pos` (the character after `u`),
    /// leaving `pos` one past the last digit.
    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a' + 10) as u32,
                Some(c @ b'A'..=b'F') => (c - b'A' + 10) as u32,
                _ => return Err(self.err("expected 4 hex digits")),
            };
            cp = cp * 16 + d;
            self.pos += 1;
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v =
            parse(r#"{"a": [1, 2.5, -3e-2], "b": {"c": "x\ny", "d": null}, "e": true}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_f64().unwrap(),
            -0.03
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&JsonValue::Null));
        assert_eq!(v.get("e"), Some(&JsonValue::Bool(true)));
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse(r#""q\"b\\sAé😀""#).unwrap();
        assert_eq!(v.as_str(), Some("q\"b\\sAé😀"));
        let v = parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
        let v = parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("😀"));
        assert!(parse("\"\\ud83d\"").is_err());
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse("01a").is_err());
    }

    #[test]
    fn obj_and_arr_builders_emit_parseable_json() {
        let doc = Obj::new()
            .u64("count", 3)
            .f64("mean", 2.5)
            .bool("ok", true)
            .str("name", "weird\"quote\\slash\n")
            .raw("nested", &Obj::new().f64("x", -0.25).finish())
            .raw("list", &Arr::new().f64(1.0).f64(2.0).finish())
            .finish();
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("count").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("mean").unwrap().as_f64(), Some(2.5));
        assert_eq!(v.get("ok"), Some(&JsonValue::Bool(true)));
        assert_eq!(
            v.get("name").unwrap().as_str(),
            Some("weird\"quote\\slash\n")
        );
        assert_eq!(
            v.get("nested").unwrap().get("x").unwrap().as_f64(),
            Some(-0.25)
        );
        assert_eq!(v.get("list").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(Obj::new().finish(), "{}");
        assert_eq!(Arr::new().finish(), "[]");
    }

    #[test]
    fn write_roundtrips_parsed_trees() {
        let doc = r#"{"a":[1,2.5,-0.03],"b":{"c":"x\ny","d":null},"e":true}"#;
        let v = parse(doc).unwrap();
        let out = write(&v);
        assert_eq!(parse(&out).unwrap(), v);
        // Idempotent: writing the reparse reproduces the same bytes.
        assert_eq!(write(&parse(&out).unwrap()), out);
    }

    #[test]
    fn roundtrips_escaped_writer_output() {
        let s = "weird\"name\\with\ncontrols\u{1}";
        let doc = format!("{{\"k\":\"{}\"}}", crate::json_escape(s));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(s));
    }
}
