//! Serving-layer metrics: counters, virtual-time latency distributions and
//! amortization figures for a solver session, exportable as JSON (same
//! hand-rolled, zero-dependency style as the Chrome-trace exporter).
//!
//! The `sympack-service` server records one [`ServiceMetrics`] per session:
//! jobs admitted/rejected/served, how many jobs each panel solve coalesced,
//! per-job virtual-time latency (p50/p99), and the amortized cost per job —
//! the session's one factorization plus all panel solves divided by jobs
//! served, against the one-shot cost a fresh factor-and-solve would pay per
//! job.

/// A sample distribution with exact quantiles (samples are kept; serving
/// sessions record thousands of jobs, not millions).
#[derive(Debug, Default, Clone)]
pub struct Histogram {
    samples: Vec<f64>,
}

impl Histogram {
    /// New empty distribution.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one sample.
    pub fn record(&mut self, v: f64) {
        self.samples.push(v);
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean of the samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> f64 {
        self.samples.iter().fold(0.0, |a, &b| a.max(b))
    }

    /// Exact quantile `q ∈ [0, 1]` by nearest-rank on the sorted samples
    /// (0 when empty).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(f64::total_cmp);
        let idx = ((q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64).round()) as usize;
        sorted[idx]
    }

    /// Median.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 99th percentile.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// JSON object with count/mean/p50/p99/max.
    pub fn to_json(&self) -> String {
        crate::json::Obj::new()
            .u64("count", self.count() as u64)
            .f64("mean", self.mean())
            .f64("p50", self.p50())
            .f64("p99", self.p99())
            .f64("max", self.max())
            .finish()
    }
}

/// Per-session serving metrics. All times are virtual seconds from the
/// solver's cost model; wall-clock milliseconds appear only in the
/// explicitly named `*_wall_ms` fields.
#[derive(Debug, Default, Clone)]
pub struct ServiceMetrics {
    /// Jobs accepted into the queue.
    pub jobs_submitted: u64,
    /// Jobs rejected by admission control (queue full).
    pub jobs_rejected: u64,
    /// Jobs completed by a panel solve.
    pub jobs_served: u64,
    /// Panel solves executed.
    pub batches: u64,
    /// Jobs that shared a panel solve with at least one other job
    /// (Σ max(batch − 1, 0) over batches) — nonzero means batching coalesced.
    pub coalesced_jobs: u64,
    /// Numeric re-factorizations performed on the session.
    pub refactorizations: u64,
    /// Jobs per batch.
    pub batch_sizes: Histogram,
    /// Per-job virtual-time latency: completion − arrival.
    pub latency: Histogram,
    /// Virtual seconds spent in panel solves (summed).
    pub solve_virtual_total: f64,
    /// Virtual seconds of the session's factorization(s), including
    /// re-factorizations.
    pub factor_virtual_total: f64,
    /// Virtual cost of one fresh factorization (the session's first) — the
    /// per-job factor cost an unbatched one-shot driver would pay.
    pub one_shot_factor_cost: f64,
    /// Wall-clock milliseconds of ordering + symbolic analysis (paid once).
    pub analyze_wall_ms: f64,
}

impl ServiceMetrics {
    /// New zeroed metrics.
    pub fn new() -> Self {
        ServiceMetrics::default()
    }

    /// Record one executed batch: `size` jobs served by one panel solve of
    /// virtual makespan `solve_time`.
    pub fn record_batch(&mut self, size: usize, solve_time: f64) {
        self.batches += 1;
        self.jobs_served += size as u64;
        self.coalesced_jobs += (size as u64).saturating_sub(1);
        self.batch_sizes.record(size as f64);
        self.solve_virtual_total += solve_time;
    }

    /// Amortized virtual cost per served job: all factorizations plus all
    /// panel solves, divided by jobs served (0 when no jobs ran).
    pub fn amortized_cost_per_job(&self) -> f64 {
        if self.jobs_served == 0 {
            0.0
        } else {
            (self.factor_virtual_total + self.solve_virtual_total) / self.jobs_served as f64
        }
    }

    /// Virtual cost per job of the one-shot alternative: a fresh
    /// factorization plus a mean solve for every job.
    pub fn one_shot_cost_per_job(&self) -> f64 {
        let mean_solve = if self.batches == 0 {
            0.0
        } else {
            self.solve_virtual_total / self.batches as f64
        };
        self.one_shot_factor_cost + mean_solve
    }

    /// Serialize as a JSON object.
    pub fn to_json(&self) -> String {
        crate::json::Obj::new()
            .u64("jobs_submitted", self.jobs_submitted)
            .u64("jobs_rejected", self.jobs_rejected)
            .u64("jobs_served", self.jobs_served)
            .u64("batches", self.batches)
            .u64("coalesced_jobs", self.coalesced_jobs)
            .u64("refactorizations", self.refactorizations)
            .raw("batch_sizes", &self.batch_sizes.to_json())
            .raw("latency_virtual_secs", &self.latency.to_json())
            .f64("solve_virtual_total", self.solve_virtual_total)
            .f64("factor_virtual_total", self.factor_virtual_total)
            .f64("amortized_cost_per_job", self.amortized_cost_per_job())
            .f64("one_shot_cost_per_job", self.one_shot_cost_per_job())
            .f64("analyze_wall_ms", self.analyze_wall_ms)
            .finish()
    }
}

/// Fleet-level cache counters: the symbolic plan cache (a hit skips
/// ordering + analysis + mapping for a pattern already seen) and the LRU
/// numeric-factor cache that evicts cold tenants' factors under a byte
/// budget. Byte figures are steady-state (sampled after budget
/// enforcement), so `resident_high_water_bytes ≤ factor_budget_bytes`
/// whenever every single factor fits the budget on its own.
#[derive(Debug, Default, Clone)]
pub struct FleetCacheMetrics {
    /// Tenant admissions whose pattern (under identical analysis/layout
    /// options) was already in the plan cache — no analysis ran.
    pub plan_hits: u64,
    /// Tenant admissions that had to run ordering + analysis + mapping.
    pub plan_misses: u64,
    /// Numeric factors dropped by the LRU under budget pressure.
    pub factor_evictions: u64,
    /// Evicted factors rebuilt on demand before a solve.
    pub rematerializations: u64,
    /// Configured byte budget for resident numeric factors (0 = unlimited).
    pub factor_budget_bytes: u64,
    /// Bytes of currently resident numeric factors.
    pub resident_bytes: u64,
    /// Largest steady-state resident total observed.
    pub resident_high_water_bytes: u64,
}

impl FleetCacheMetrics {
    /// Plan-cache hit rate over all admissions (0 when none).
    pub fn plan_hit_rate(&self) -> f64 {
        let total = self.plan_hits + self.plan_misses;
        if total == 0 {
            0.0
        } else {
            self.plan_hits as f64 / total as f64
        }
    }

    /// Serialize as a JSON object.
    pub fn to_json(&self) -> String {
        crate::json::Obj::new()
            .u64("plan_hits", self.plan_hits)
            .u64("plan_misses", self.plan_misses)
            .f64("plan_hit_rate", self.plan_hit_rate())
            .u64("factor_evictions", self.factor_evictions)
            .u64("rematerializations", self.rematerializations)
            .u64("factor_budget_bytes", self.factor_budget_bytes)
            .u64("resident_bytes", self.resident_bytes)
            .u64("resident_high_water_bytes", self.resident_high_water_bytes)
            .finish()
    }
}

/// One wall-clock measurement of a dense kernel at one problem shape, as
/// recorded by the `kernel_roofline` benchmark.
#[derive(Debug, Clone)]
pub struct KernelSample {
    /// Kernel name (`gemm_nt`, `potrf`, `trsm`, `syrk`, ...).
    pub kernel: String,
    /// Code-path variant (`unpacked`, `packed`, `par`, ...).
    pub variant: String,
    /// Problem shape; unused dimensions are 0.
    pub m: usize,
    pub n: usize,
    pub k: usize,
    /// Median wall-clock seconds per call.
    pub secs: f64,
    /// Exact flop count of one call.
    pub flops: u64,
    /// Bytes of matrix data touched at least once (operand + result
    /// footprints, not cache-aware traffic).
    pub bytes: u64,
}

impl KernelSample {
    /// Achieved rate in Gflop/s.
    pub fn gflops(&self) -> f64 {
        if self.secs > 0.0 {
            self.flops as f64 / self.secs / 1e9
        } else {
            0.0
        }
    }

    /// Arithmetic intensity in flops per byte of footprint — the x-axis of a
    /// roofline plot.
    pub fn arithmetic_intensity(&self) -> f64 {
        if self.bytes > 0 {
            self.flops as f64 / self.bytes as f64
        } else {
            0.0
        }
    }

    /// Serialize as a JSON object.
    pub fn to_json(&self) -> String {
        crate::json::Obj::new()
            .str("kernel", &self.kernel)
            .str("variant", &self.variant)
            .u64("m", self.m as u64)
            .u64("n", self.n as u64)
            .u64("k", self.k as u64)
            .f64("secs", self.secs)
            .u64("flops", self.flops)
            .u64("bytes", self.bytes)
            .f64("gflops", self.gflops())
            .f64("ai", self.arithmetic_intensity())
            .finish()
    }
}

/// A full roofline benchmark run: machine context plus every sample.
/// Serialized to `BENCH_kernels.json` by the `kernel_roofline` binary.
#[derive(Debug, Clone, Default)]
pub struct RooflineReport {
    /// Worker budget of the parallel kernel variants during the run.
    pub threads: usize,
    /// Instruction set the microkernel dispatched to (`avx2+fma`, ...).
    pub isa: String,
    /// All recorded samples, in measurement order.
    pub samples: Vec<KernelSample>,
}

impl RooflineReport {
    /// New empty report.
    pub fn new(threads: usize, isa: &str) -> Self {
        RooflineReport {
            threads,
            isa: isa.to_string(),
            samples: Vec::new(),
        }
    }

    /// Record one sample.
    pub fn push(&mut self, s: KernelSample) {
        self.samples.push(s);
    }

    /// The sample for `(kernel, variant)` at shape `(m, n, k)`, if recorded.
    pub fn find(
        &self,
        kernel: &str,
        variant: &str,
        m: usize,
        n: usize,
        k: usize,
    ) -> Option<&KernelSample> {
        self.samples.iter().find(|s| {
            s.kernel == kernel && s.variant == variant && s.m == m && s.n == n && s.k == k
        })
    }

    /// Serialize as a JSON object.
    pub fn to_json(&self) -> String {
        let mut samples = crate::json::Arr::new();
        for s in &self.samples {
            samples.push(s.to_json());
        }
        crate::json::Obj::new()
            .u64("threads", self.threads as u64)
            .str("isa", &self.isa)
            .raw("samples", &samples.finish())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_on_known_samples() {
        let mut h = Histogram::new();
        for v in 1..=100 {
            h.record(v as f64);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.mean(), 50.5);
        assert_eq!(h.max(), 100.0);
        assert_eq!(h.p50(), 51.0); // nearest rank on 0-based index 49.5 → 50
        assert_eq!(h.p99(), 99.0);
        assert_eq!(h.quantile(0.0), 1.0);
        assert_eq!(h.quantile(1.0), 100.0);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.p50(), 0.0);
        assert_eq!(h.p99(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert!(h.is_empty());
    }

    #[test]
    fn batch_recording_accumulates_coalescing() {
        let mut m = ServiceMetrics::new();
        m.record_batch(1, 0.5);
        m.record_batch(4, 1.0);
        m.record_batch(3, 0.5);
        assert_eq!(m.batches, 3);
        assert_eq!(m.jobs_served, 8);
        assert_eq!(m.coalesced_jobs, 5); // (1-1) + (4-1) + (3-1)
        assert_eq!(m.solve_virtual_total, 2.0);
    }

    #[test]
    fn amortization_beats_one_shot_once_jobs_accumulate() {
        let mut m = ServiceMetrics::new();
        m.factor_virtual_total = 10.0;
        m.one_shot_factor_cost = 10.0;
        for _ in 0..8 {
            m.record_batch(4, 1.0);
        }
        // Amortized: (10 + 8) / 32 ≈ 0.56 ≪ one-shot 10 + 1 = 11.
        assert!(m.amortized_cost_per_job() < 1.0);
        assert!(m.one_shot_cost_per_job() > 10.0);
    }

    #[test]
    fn kernel_sample_rates_and_json() {
        let s = KernelSample {
            kernel: "gemm_nt".into(),
            variant: "packed".into(),
            m: 256,
            n: 256,
            k: 256,
            secs: 0.001,
            flops: 2 * 256 * 256 * 256,
            bytes: 8 * 3 * 256 * 256 + 8 * 256 * 256,
        };
        assert!((s.gflops() - 33.554432).abs() < 1e-9);
        assert!(s.arithmetic_intensity() > 10.0);
        let json = s.to_json();
        assert!(json.contains("\"kernel\":\"gemm_nt\""));
        assert!(json.contains("\"variant\":\"packed\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn roofline_report_find_and_json_balance() {
        let mut r = RooflineReport::new(4, "avx2+fma");
        r.push(KernelSample {
            kernel: "potrf".into(),
            variant: "blocked".into(),
            m: 0,
            n: 128,
            k: 0,
            secs: 0.5,
            flops: 1000,
            bytes: 800,
        });
        r.push(KernelSample {
            kernel: "potrf".into(),
            variant: "blocked".into(),
            m: 0,
            n: 256,
            k: 0,
            secs: 0.25,
            flops: 2000,
            bytes: 1600,
        });
        assert!(r.find("potrf", "blocked", 0, 256, 0).is_some());
        assert!(r.find("potrf", "naive", 0, 256, 0).is_none());
        let json = r.to_json();
        assert!(json.contains("\"threads\":4"));
        assert!(json.contains("\"isa\":\"avx2+fma\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn zero_time_and_zero_bytes_are_guarded() {
        let s = KernelSample {
            kernel: "x".into(),
            variant: "y".into(),
            m: 0,
            n: 0,
            k: 0,
            secs: 0.0,
            flops: 10,
            bytes: 0,
        };
        assert_eq!(s.gflops(), 0.0);
        assert_eq!(s.arithmetic_intensity(), 0.0);
    }

    #[test]
    fn fleet_cache_metrics_rates_and_json() {
        let mut c = FleetCacheMetrics::default();
        assert_eq!(c.plan_hit_rate(), 0.0);
        c.plan_hits = 3;
        c.plan_misses = 1;
        c.factor_evictions = 5;
        c.resident_bytes = 1024;
        c.resident_high_water_bytes = 2048;
        assert_eq!(c.plan_hit_rate(), 0.75);
        let json = c.to_json();
        assert!(json.contains("\"plan_hits\":3"));
        assert!(json.contains("\"factor_evictions\":5"));
        assert!(json.contains("\"resident_high_water_bytes\":2048"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn json_export_is_balanced_and_contains_fields() {
        let mut m = ServiceMetrics::new();
        m.jobs_submitted = 7;
        m.jobs_rejected = 2;
        m.record_batch(5, 0.25);
        m.latency.record(1.5);
        let json = m.to_json();
        assert!(json.contains("\"jobs_submitted\":7"));
        assert!(json.contains("\"coalesced_jobs\":4"));
        assert!(json.contains("\"latency_virtual_secs\":{"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
