//! Serving-layer metrics: counters, virtual-time latency distributions and
//! amortization figures for a solver session, exportable as JSON (same
//! hand-rolled, zero-dependency style as the Chrome-trace exporter).
//!
//! The `sympack-service` server records one [`ServiceMetrics`] per session:
//! jobs admitted/rejected/served, how many jobs each panel solve coalesced,
//! per-job virtual-time latency (p50/p99), and the amortized cost per job —
//! the session's one factorization plus all panel solves divided by jobs
//! served, against the one-shot cost a fresh factor-and-solve would pay per
//! job.

/// A sample distribution with exact quantiles (samples are kept; serving
/// sessions record thousands of jobs, not millions).
#[derive(Debug, Default, Clone)]
pub struct Histogram {
    samples: Vec<f64>,
}

impl Histogram {
    /// New empty distribution.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one sample.
    pub fn record(&mut self, v: f64) {
        self.samples.push(v);
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean of the samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> f64 {
        self.samples.iter().fold(0.0, |a, &b| a.max(b))
    }

    /// Exact quantile `q ∈ [0, 1]` by nearest-rank on the sorted samples
    /// (0 when empty).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(f64::total_cmp);
        let idx = ((q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64).round()) as usize;
        sorted[idx]
    }

    /// Median.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 99th percentile.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// JSON object with count/mean/p50/p99/max.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\":{},\"mean\":{},\"p50\":{},\"p99\":{},\"max\":{}}}",
            self.count(),
            self.mean(),
            self.p50(),
            self.p99(),
            self.max()
        )
    }
}

/// Per-session serving metrics. All times are virtual seconds from the
/// solver's cost model; wall-clock milliseconds appear only in the
/// explicitly named `*_wall_ms` fields.
#[derive(Debug, Default, Clone)]
pub struct ServiceMetrics {
    /// Jobs accepted into the queue.
    pub jobs_submitted: u64,
    /// Jobs rejected by admission control (queue full).
    pub jobs_rejected: u64,
    /// Jobs completed by a panel solve.
    pub jobs_served: u64,
    /// Panel solves executed.
    pub batches: u64,
    /// Jobs that shared a panel solve with at least one other job
    /// (Σ max(batch − 1, 0) over batches) — nonzero means batching coalesced.
    pub coalesced_jobs: u64,
    /// Numeric re-factorizations performed on the session.
    pub refactorizations: u64,
    /// Jobs per batch.
    pub batch_sizes: Histogram,
    /// Per-job virtual-time latency: completion − arrival.
    pub latency: Histogram,
    /// Virtual seconds spent in panel solves (summed).
    pub solve_virtual_total: f64,
    /// Virtual seconds of the session's factorization(s), including
    /// re-factorizations.
    pub factor_virtual_total: f64,
    /// Virtual cost of one fresh factorization (the session's first) — the
    /// per-job factor cost an unbatched one-shot driver would pay.
    pub one_shot_factor_cost: f64,
    /// Wall-clock milliseconds of ordering + symbolic analysis (paid once).
    pub analyze_wall_ms: f64,
}

impl ServiceMetrics {
    /// New zeroed metrics.
    pub fn new() -> Self {
        ServiceMetrics::default()
    }

    /// Record one executed batch: `size` jobs served by one panel solve of
    /// virtual makespan `solve_time`.
    pub fn record_batch(&mut self, size: usize, solve_time: f64) {
        self.batches += 1;
        self.jobs_served += size as u64;
        self.coalesced_jobs += (size as u64).saturating_sub(1);
        self.batch_sizes.record(size as f64);
        self.solve_virtual_total += solve_time;
    }

    /// Amortized virtual cost per served job: all factorizations plus all
    /// panel solves, divided by jobs served (0 when no jobs ran).
    pub fn amortized_cost_per_job(&self) -> f64 {
        if self.jobs_served == 0 {
            0.0
        } else {
            (self.factor_virtual_total + self.solve_virtual_total) / self.jobs_served as f64
        }
    }

    /// Virtual cost per job of the one-shot alternative: a fresh
    /// factorization plus a mean solve for every job.
    pub fn one_shot_cost_per_job(&self) -> f64 {
        let mean_solve = if self.batches == 0 {
            0.0
        } else {
            self.solve_virtual_total / self.batches as f64
        };
        self.one_shot_factor_cost + mean_solve
    }

    /// Serialize as a JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"jobs_submitted\":{},\"jobs_rejected\":{},\"jobs_served\":{},\
             \"batches\":{},\"coalesced_jobs\":{},\"refactorizations\":{},\
             \"batch_sizes\":{},\"latency_virtual_secs\":{},\
             \"solve_virtual_total\":{},\"factor_virtual_total\":{},\
             \"amortized_cost_per_job\":{},\"one_shot_cost_per_job\":{},\
             \"analyze_wall_ms\":{}}}",
            self.jobs_submitted,
            self.jobs_rejected,
            self.jobs_served,
            self.batches,
            self.coalesced_jobs,
            self.refactorizations,
            self.batch_sizes.to_json(),
            self.latency.to_json(),
            self.solve_virtual_total,
            self.factor_virtual_total,
            self.amortized_cost_per_job(),
            self.one_shot_cost_per_job(),
            self.analyze_wall_ms
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_on_known_samples() {
        let mut h = Histogram::new();
        for v in 1..=100 {
            h.record(v as f64);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.mean(), 50.5);
        assert_eq!(h.max(), 100.0);
        assert_eq!(h.p50(), 51.0); // nearest rank on 0-based index 49.5 → 50
        assert_eq!(h.p99(), 99.0);
        assert_eq!(h.quantile(0.0), 1.0);
        assert_eq!(h.quantile(1.0), 100.0);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.p50(), 0.0);
        assert_eq!(h.p99(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert!(h.is_empty());
    }

    #[test]
    fn batch_recording_accumulates_coalescing() {
        let mut m = ServiceMetrics::new();
        m.record_batch(1, 0.5);
        m.record_batch(4, 1.0);
        m.record_batch(3, 0.5);
        assert_eq!(m.batches, 3);
        assert_eq!(m.jobs_served, 8);
        assert_eq!(m.coalesced_jobs, 5); // (1-1) + (4-1) + (3-1)
        assert_eq!(m.solve_virtual_total, 2.0);
    }

    #[test]
    fn amortization_beats_one_shot_once_jobs_accumulate() {
        let mut m = ServiceMetrics::new();
        m.factor_virtual_total = 10.0;
        m.one_shot_factor_cost = 10.0;
        for _ in 0..8 {
            m.record_batch(4, 1.0);
        }
        // Amortized: (10 + 8) / 32 ≈ 0.56 ≪ one-shot 10 + 1 = 11.
        assert!(m.amortized_cost_per_job() < 1.0);
        assert!(m.one_shot_cost_per_job() > 10.0);
    }

    #[test]
    fn json_export_is_balanced_and_contains_fields() {
        let mut m = ServiceMetrics::new();
        m.jobs_submitted = 7;
        m.jobs_rejected = 2;
        m.record_batch(5, 0.25);
        m.latency.record(1.5);
        let json = m.to_json();
        assert!(json.contains("\"jobs_submitted\":7"));
        assert!(json.contains("\"coalesced_jobs\":4"));
        assert!(json.contains("\"latency_virtual_secs\":{"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
