//! Execution tracing for the solvers: per-rank task timelines in virtual
//! time, exportable as a Chrome/Perfetto trace (`chrome://tracing`,
//! `ui.perfetto.dev`) for visualizing the fan-out schedule — which tasks
//! overlapped, where ranks idled, how communication hid behind compute.
//!
//! The [`metrics`] module adds serving-layer observability: counters,
//! latency distributions and amortization figures for `sympack-service`
//! sessions, exported as JSON in the same zero-dependency style.
//!
//! The [`profile`] module turns a span timeline into an analyzable
//! [`profile::Profile`]: critical path over the executed task DAG, per-rank
//! wait attribution, P×P communication matrix and queue/memory series —
//! the input format of the `sympack-prof` CLI. [`json`] is the minimal
//! hand-rolled JSON reader (and, since the telemetry plane, the single
//! shared writer) those profiles (and tests) parse with.
//!
//! The [`telemetry`] module is the *live* counterpart to the post-hoc
//! profile: a lock-cheap instrument registry (counters / gauges /
//! log-bucketed histograms) sampled into time-series rings on the virtual
//! clock, and [`health`] is the rule-based watchdog that turns those
//! signals into typed `HealthEvent`s (stalls, queue saturation, eviction
//! thrash, SLO burn) — the data plane behind `sympack-top`.

pub mod health;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod telemetry;

/// Category of a traced interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceCat {
    /// Diagonal factorization (POTRF).
    Potrf,
    /// Panel factorization (TRSM).
    Trsm,
    /// Symmetric update (SYRK).
    Syrk,
    /// General update (GEMM).
    Gemm,
    /// Communication (get/copy wait).
    Comm,
    /// Triangular-solve work.
    Solve,
    /// Anything else.
    Other,
}

impl TraceCat {
    /// Stable lowercase label used in exports.
    pub fn label(&self) -> &'static str {
        match self {
            TraceCat::Potrf => "potrf",
            TraceCat::Trsm => "trsm",
            TraceCat::Syrk => "syrk",
            TraceCat::Gemm => "gemm",
            TraceCat::Comm => "comm",
            TraceCat::Solve => "solve",
            TraceCat::Other => "other",
        }
    }
}

/// What kind of interval a [`TraceEvent`] describes. `Exec` spans are task
/// executions on a rank's virtual clock; the comm kinds are one-sided
/// transfers issued by that rank; `Request` spans are serving-layer jobs
/// (arrival → completion).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A scheduled task execution (the `charge` path).
    Exec,
    /// A one-sided get (blocking fetch or retry window).
    Rget,
    /// A one-sided put.
    Rput,
    /// A host↔device or host↔host copy.
    Copy,
    /// An active message (signal or payload RPC).
    Rpc,
    /// A serving-layer request (arrival to completion).
    Request,
}

impl SpanKind {
    /// Stable lowercase label used in exports.
    pub fn label(&self) -> &'static str {
        match self {
            SpanKind::Exec => "exec",
            SpanKind::Rget => "rget",
            SpanKind::Rput => "rput",
            SpanKind::Copy => "copy",
            SpanKind::Rpc => "rpc",
            SpanKind::Request => "request",
        }
    }

    /// Inverse of [`SpanKind::label`].
    pub fn parse(s: &str) -> Option<SpanKind> {
        Some(match s {
            "exec" => SpanKind::Exec,
            "rget" => SpanKind::Rget,
            "rput" => SpanKind::Rput,
            "copy" => SpanKind::Copy,
            "rpc" => SpanKind::Rpc,
            "request" => SpanKind::Request,
            _ => return None,
        })
    }
}

impl TraceCat {
    /// Inverse of [`TraceCat::label`].
    pub fn parse(s: &str) -> Option<TraceCat> {
        Some(match s {
            "potrf" => TraceCat::Potrf,
            "trsm" => TraceCat::Trsm,
            "syrk" => TraceCat::Syrk,
            "gemm" => TraceCat::Gemm,
            "comm" => TraceCat::Comm,
            "solve" => TraceCat::Solve,
            "other" => TraceCat::Other,
            _ => return None,
        })
    }
}

/// One traced interval on one rank, in virtual seconds.
///
/// Beyond the flat (`rank`, `name`, `cat`, `start`, `dur`) timeline the
/// event carries the typed-span fields the profiler consumes. Every field
/// past `dur` has a neutral default (see [`TraceEvent::basic`]) so flat
/// producers keep working unchanged.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Rank the interval executed on.
    pub rank: usize,
    /// Human-readable label, e.g. `D(12)` or `U(3,7,5)`.
    pub name: String,
    /// Category for coloring/filtering.
    pub cat: TraceCat,
    /// Kind of span (task execution, one-sided transfer, request).
    pub kind: SpanKind,
    /// Virtual start time (seconds).
    pub start: f64,
    /// Duration (seconds).
    pub dur: f64,
    /// Kernel sub-span within an `Exec` interval (seconds of modeled
    /// compute; `dur - kernel` before `overhead` is other charged work).
    pub kernel: f64,
    /// Runtime overhead sub-span within the interval (seconds).
    pub overhead: f64,
    /// When the task became runnable (last dependency arrival). For comm
    /// spans this equals `start`.
    pub ready_at: f64,
    /// Label of the producer whose arrival made the task runnable, when
    /// the runtime knows it (dependency edge for the critical-path walk).
    pub pred: Option<String>,
    /// Peer rank for comm spans (`src` for gets, `dst` for puts/rpc).
    pub peer: Option<usize>,
    /// Payload bytes for comm spans; resident input-buffer bytes sampled
    /// at completion for `Exec` spans (memory high-water series).
    pub bytes: u64,
    /// Ready-queue depth sampled when the task finished (`Exec` only).
    pub rtq_depth: u32,
}

impl TraceEvent {
    /// A flat event with neutral span fields: an `Exec` interval whose
    /// kernel time is the whole duration and that was ready at `start`.
    pub fn basic(rank: usize, name: String, cat: TraceCat, start: f64, dur: f64) -> TraceEvent {
        TraceEvent {
            rank,
            name,
            cat,
            kind: SpanKind::Exec,
            start,
            dur,
            kernel: dur,
            overhead: 0.0,
            ready_at: start,
            pred: None,
            peer: None,
            bytes: 0,
            rtq_depth: 0,
        }
    }

    /// End of the interval.
    pub fn end(&self) -> f64 {
        self.start + self.dur
    }
}

/// A per-rank event collector.
#[derive(Debug, Default, Clone)]
pub struct Tracer {
    events: Vec<TraceEvent>,
}

impl Tracer {
    /// New empty tracer.
    pub fn new() -> Self {
        Tracer::default()
    }

    /// Record one flat interval (neutral span fields, see
    /// [`TraceEvent::basic`]).
    pub fn record(
        &mut self,
        rank: usize,
        name: impl Into<String>,
        cat: TraceCat,
        start: f64,
        dur: f64,
    ) {
        self.events
            .push(TraceEvent::basic(rank, name.into(), cat, start, dur));
    }

    /// Record a fully-specified span.
    pub fn push(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Consume into the event list.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }
}

/// Merge per-rank event lists into one timeline sorted by start time.
pub fn merge(mut lists: Vec<Vec<TraceEvent>>) -> Vec<TraceEvent> {
    let mut all: Vec<TraceEvent> = lists.drain(..).flatten().collect();
    all.sort_by(|a, b| a.start.total_cmp(&b.start));
    all
}

/// Escape a string for inclusion in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serialize a timeline as Chrome trace-event JSON (phase `X` complete
/// events; virtual seconds mapped to microseconds; one "process" per rank,
/// with task executions on thread 0, comm spans on thread 1 and serving
/// requests on thread 2 so the lanes do not overlap in the viewer).
pub fn to_chrome_json(events: &[TraceEvent]) -> String {
    let rows: Vec<String> = events
        .iter()
        .map(|e| {
            let tid = match e.kind {
                SpanKind::Exec => 0,
                SpanKind::Request => 2,
                _ => 1,
            };
            let mut args = format!("\"kind\":\"{}\"", e.kind.label());
            if e.bytes > 0 {
                args.push_str(&format!(",\"bytes\":{}", e.bytes));
            }
            if let Some(p) = e.peer {
                args.push_str(&format!(",\"peer\":{p}"));
            }
            if e.kind == SpanKind::Exec && e.kernel != e.dur {
                args.push_str(&format!(",\"kernel_us\":{}", e.kernel * 1e6));
            }
            format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},\"args\":{{{}}}}}",
                json_escape(&e.name),
                e.cat.label(),
                e.start * 1e6,
                e.dur * 1e6,
                e.rank,
                tid,
                args,
            )
        })
        .collect();
    format!("{{\"traceEvents\":[\n{}\n]}}", rows.join(",\n"))
}

/// Per-rank busy-time summary from a timeline.
pub fn busy_fractions(events: &[TraceEvent], makespan: f64, n_ranks: usize) -> Vec<f64> {
    let mut busy = vec![0.0f64; n_ranks];
    for e in events {
        if e.rank < n_ranks {
            busy[e.rank] += e.dur;
        }
    }
    busy.iter()
        .map(|b| if makespan > 0.0 { b / makespan } else { 0.0 })
        .collect()
}

/// Total time per category (seconds).
pub fn time_by_category(events: &[TraceEvent]) -> Vec<(TraceCat, f64)> {
    let cats = [
        TraceCat::Potrf,
        TraceCat::Trsm,
        TraceCat::Syrk,
        TraceCat::Gemm,
        TraceCat::Comm,
        TraceCat::Solve,
        TraceCat::Other,
    ];
    cats.iter()
        .map(|&c| (c, events.iter().filter(|e| e.cat == c).map(|e| e.dur).sum()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_merge_sorts_by_start() {
        let mut t0 = Tracer::new();
        t0.record(0, "D(1)", TraceCat::Potrf, 2.0, 0.5);
        let mut t1 = Tracer::new();
        t1.record(1, "U(1,2,3)", TraceCat::Gemm, 1.0, 0.25);
        let merged = merge(vec![t0.into_events(), t1.into_events()]);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].name, "U(1,2,3)");
        assert_eq!(merged[1].name, "D(1)");
    }

    #[test]
    fn chrome_json_is_valid_shape() {
        let mut t = Tracer::new();
        t.record(0, "D(0)", TraceCat::Potrf, 0.0, 1e-6);
        t.record(3, "F(1,0)", TraceCat::Trsm, 1e-6, 2e-6);
        let json = to_chrome_json(&t.into_events());
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"D(0)\""));
        assert!(json.contains("\"cat\":\"potrf\""));
        assert!(json.contains("\"pid\":3"));
        assert!(json.trim_end().ends_with("]}"));
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn json_escapes_special_characters() {
        let mut t = Tracer::new();
        t.record(0, "weird\"name\\x", TraceCat::Other, 0.0, 1.0);
        let json = to_chrome_json(&t.into_events());
        assert!(json.contains("weird\\\"name\\\\x"));
    }

    #[test]
    fn busy_fractions_sum_durations() {
        let mut t = Tracer::new();
        t.record(0, "a", TraceCat::Gemm, 0.0, 2.0);
        t.record(0, "b", TraceCat::Gemm, 2.0, 2.0);
        t.record(1, "c", TraceCat::Gemm, 0.0, 1.0);
        let f = busy_fractions(&t.into_events(), 8.0, 2);
        assert_eq!(f, vec![0.5, 0.125]);
    }

    #[test]
    fn category_totals() {
        let mut t = Tracer::new();
        t.record(0, "a", TraceCat::Gemm, 0.0, 2.0);
        t.record(1, "b", TraceCat::Potrf, 0.0, 1.5);
        t.record(0, "c", TraceCat::Gemm, 2.0, 1.0);
        let by_cat = time_by_category(&t.into_events());
        let gemm = by_cat.iter().find(|(c, _)| *c == TraceCat::Gemm).unwrap().1;
        let potrf = by_cat
            .iter()
            .find(|(c, _)| *c == TraceCat::Potrf)
            .unwrap()
            .1;
        assert_eq!(gemm, 3.0);
        assert_eq!(potrf, 1.5);
    }
}
