//! Rule-based health watchdog over the telemetry plane.
//!
//! A [`Watchdog`] consumes periodic [`WatchSample`]s (fleet/service
//! sampling ticks) and idle-poll notifications (the task engines' event
//! loop), evaluates a small set of [`WatchRules`], and emits typed
//! [`HealthEvent`]s — *observations*, never interventions: the watchdog
//! raises `Stalled` strictly before the engine's own quiescence abort
//! threshold so an operator (or `sympack-top`) sees the condition while the
//! runtime is still deciding, but recovery/abort stays the runtime's job.
//!
//! Events are edge-triggered: one event per episode per subject, so a
//! saturated queue that stays saturated for a thousand ticks produces one
//! `QueueSaturated` event, and a second event only after it drains and
//! saturates again. All timestamps are virtual-clock seconds, which makes
//! the event stream bit-deterministic under the lockstep scheduler.

use crate::json::{Arr, Obj};
use crate::{TraceCat, TraceEvent};

/// How urgent a health event is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Info,
    Warning,
    Critical,
}

impl Severity {
    /// Stable lowercase label (JSON / exposition).
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Critical => "critical",
        }
    }
}

/// The condition classes the watchdog knows how to detect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthKind {
    /// Work remains but nothing is progressing (dropped notification,
    /// starved subtree). Raised from idle-poll counts or sampling ticks,
    /// below the engine's own quiescence-abort threshold.
    Stalled,
    /// A bounded admission queue is at or above the saturation fraction —
    /// the next submit bursts will be rejected.
    QueueSaturated,
    /// The LRU factor cache is evicting faster than the thrash limit —
    /// tenants keep re-materializing each other's factors.
    EvictionThrash,
    /// A tenant is burning SLO error budget faster than allowed.
    SloBurn,
}

impl HealthKind {
    /// Stable label (JSON / exposition / trace-event names).
    pub fn label(self) -> &'static str {
        match self {
            HealthKind::Stalled => "stalled",
            HealthKind::QueueSaturated => "queue_saturated",
            HealthKind::EvictionThrash => "eviction_thrash",
            HealthKind::SloBurn => "slo_burn",
        }
    }
}

/// One typed health observation.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthEvent {
    pub kind: HealthKind,
    pub severity: Severity,
    /// Virtual-clock time the condition was detected.
    pub at: f64,
    /// What the condition is about (`rank3`, a tenant name, `fleet`).
    pub subject: String,
    /// Human-readable diagnosis with the triggering numbers.
    pub detail: String,
}

impl HealthEvent {
    /// Serialize as a JSON object (via the shared `trace::json` writer).
    pub fn to_json(&self) -> String {
        Obj::new()
            .str("kind", self.kind.label())
            .str("severity", self.severity.label())
            .f64("at", self.at)
            .str("subject", &self.subject)
            .str("detail", &self.detail)
            .finish()
    }

    /// Render as a zero-duration marker span for the trace stream, so
    /// health events land in Chrome exports next to the work they diagnose.
    pub fn to_trace_event(&self, rank: usize) -> TraceEvent {
        TraceEvent::basic(
            rank,
            format!("health/{}/{}", self.kind.label(), self.subject),
            TraceCat::Other,
            self.at,
            0.0,
        )
    }
}

/// Serialize a slice of events as a JSON array.
pub fn health_events_json(events: &[HealthEvent]) -> String {
    let mut arr = Arr::new();
    for e in events {
        arr.push(e.to_json());
    }
    arr.finish()
}

/// Thresholds the watchdog evaluates. Defaults are deliberately ahead of
/// the runtime's own limits: `stall_idle_polls = 16` fires a quarter of the
/// way to the deterministic engine's quiescence abort (64 idle polls), so
/// the health stream always names a stall before the run dies of it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WatchRules {
    /// Idle event-loop polls (no progress, queue empty) before `Stalled`
    /// is raised from the engine path.
    pub stall_idle_polls: u64,
    /// Consecutive sampling ticks with backlog but zero progress before
    /// `Stalled` is raised from the sampling path.
    pub stall_ticks: u64,
    /// Queue fill fraction (depth / capacity) at which `QueueSaturated`
    /// is raised.
    pub queue_saturation: f64,
    /// Evictions within one sampling tick at which `EvictionThrash` is
    /// raised.
    pub eviction_thrash: u64,
    /// SLO burn rate (observed bad fraction / allowed bad fraction) at
    /// which `SloBurn` is raised; 1.0 = burning exactly the error budget.
    pub slo_burn_limit: f64,
}

impl Default for WatchRules {
    fn default() -> Self {
        WatchRules {
            stall_idle_polls: 16,
            stall_ticks: 3,
            queue_saturation: 0.9,
            eviction_thrash: 4,
            slo_burn_limit: 1.0,
        }
    }
}

/// One sampling-tick observation handed to [`Watchdog::observe`].
/// Counters (`progress`, `evictions`) are cumulative; the watchdog
/// differences them internally.
#[derive(Debug, Clone)]
pub struct WatchSample<'a> {
    /// Virtual-clock time of this tick.
    pub now: f64,
    /// Cumulative units of completed work (jobs served, tasks done).
    pub progress: u64,
    /// Work currently waiting (queued jobs / unfinished tasks).
    pub backlog: u64,
    /// Fill fraction of the fullest bounded queue, 0..=1.
    pub queue_frac: f64,
    /// Cumulative factor-cache evictions.
    pub evictions: u64,
    /// Per-subject SLO burn rates (tenant name, burn).
    pub burn: &'a [(&'a str, f64)],
}

/// The watchdog itself: owns the rules, the per-condition episode state,
/// and the emitted events.
#[derive(Debug, Clone)]
pub struct Watchdog {
    rules: WatchRules,
    events: Vec<HealthEvent>,
    // Episode state (edge triggering).
    last_progress: u64,
    stall_ticks: u64,
    tick_stalled: bool,
    idle_stalled: bool,
    saturated: bool,
    last_evictions: u64,
    thrashing: bool,
    burning: Vec<String>,
}

impl Default for Watchdog {
    fn default() -> Self {
        Watchdog::new(WatchRules::default())
    }
}

impl Watchdog {
    /// New watchdog with the given rules.
    pub fn new(rules: WatchRules) -> Self {
        Watchdog {
            rules,
            events: Vec::new(),
            last_progress: 0,
            stall_ticks: 0,
            tick_stalled: false,
            idle_stalled: false,
            saturated: false,
            last_evictions: 0,
            thrashing: false,
            burning: Vec::new(),
        }
    }

    /// The rules in force.
    pub fn rules(&self) -> &WatchRules {
        &self.rules
    }

    /// Evaluate every tick-based rule against one sample.
    pub fn observe(&mut self, s: &WatchSample<'_>) {
        // Stalled progress: backlog exists but the progress counter froze.
        if s.backlog > 0 && s.progress == self.last_progress {
            self.stall_ticks += 1;
            if !self.tick_stalled && self.stall_ticks >= self.rules.stall_ticks {
                self.tick_stalled = true;
                self.push(
                    HealthKind::Stalled,
                    Severity::Critical,
                    s.now,
                    "scheduler".to_string(),
                    format!(
                        "{} backlog items, no progress for {} ticks",
                        s.backlog, self.stall_ticks
                    ),
                );
            }
        } else {
            self.stall_ticks = 0;
            self.tick_stalled = false;
        }
        self.last_progress = s.progress;

        // Queue saturation.
        if s.queue_frac >= self.rules.queue_saturation {
            if !self.saturated {
                self.saturated = true;
                self.push(
                    HealthKind::QueueSaturated,
                    Severity::Warning,
                    s.now,
                    "admission".to_string(),
                    format!("fullest queue at {:.0}% of capacity", s.queue_frac * 100.0),
                );
            }
        } else {
            self.saturated = false;
        }

        // Eviction thrash (per-tick delta of a cumulative counter).
        let delta = s.evictions.saturating_sub(self.last_evictions);
        self.last_evictions = s.evictions;
        if delta >= self.rules.eviction_thrash {
            if !self.thrashing {
                self.thrashing = true;
                self.push(
                    HealthKind::EvictionThrash,
                    Severity::Warning,
                    s.now,
                    "factor_cache".to_string(),
                    format!("{delta} evictions in one tick"),
                );
            }
        } else {
            self.thrashing = false;
        }

        // SLO burn, per subject.
        for &(subject, burn) in s.burn {
            let pos = self.burning.iter().position(|b| b == subject);
            if burn >= self.rules.slo_burn_limit {
                if pos.is_none() {
                    self.burning.push(subject.to_string());
                    self.push(
                        HealthKind::SloBurn,
                        Severity::Critical,
                        s.now,
                        subject.to_string(),
                        format!("error budget burning at {burn:.2}x the allowed rate"),
                    );
                }
            } else if let Some(p) = pos {
                self.burning.remove(p);
            }
        }
    }

    /// Engine-loop path: called with the event loop's consecutive idle-poll
    /// count. Raises one `Stalled` event per idle episode once the count
    /// reaches `stall_idle_polls` — strictly below the engine's own
    /// quiescence-abort threshold, so the diagnosis precedes the abort.
    pub fn observe_idle(&mut self, now: f64, idle_polls: u64, subject: &str) {
        if idle_polls == 0 {
            self.idle_stalled = false;
            return;
        }
        if !self.idle_stalled && idle_polls >= self.rules.stall_idle_polls {
            self.idle_stalled = true;
            self.push(
                HealthKind::Stalled,
                Severity::Critical,
                now,
                subject.to_string(),
                format!("no progress for {idle_polls} consecutive idle polls"),
            );
        }
    }

    fn push(
        &mut self,
        kind: HealthKind,
        severity: Severity,
        at: f64,
        subject: String,
        detail: String,
    ) {
        self.events.push(HealthEvent {
            kind,
            severity,
            at,
            subject,
            detail,
        });
    }

    /// Events emitted so far.
    pub fn events(&self) -> &[HealthEvent] {
        &self.events
    }

    /// Consume the watchdog, returning its events.
    pub fn into_events(self) -> Vec<HealthEvent> {
        self.events
    }

    /// True if any emitted event has this kind.
    pub fn has(&self, kind: HealthKind) -> bool {
        self.events.iter().any(|e| e.kind == kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tick(now: f64, progress: u64, backlog: u64) -> WatchSample<'static> {
        WatchSample {
            now,
            progress,
            backlog,
            queue_frac: 0.0,
            evictions: 0,
            burn: &[],
        }
    }

    #[test]
    fn stall_is_edge_triggered_on_frozen_progress() {
        let mut w = Watchdog::default();
        w.observe(&tick(0.0, 5, 3));
        for i in 1..10 {
            w.observe(&tick(i as f64, 5, 3));
        }
        let stalls: Vec<_> = w
            .events()
            .iter()
            .filter(|e| e.kind == HealthKind::Stalled)
            .collect();
        assert_eq!(stalls.len(), 1, "one event per episode");
        assert_eq!(stalls[0].at, 3.0);
        // Progress resumes, then freezes again: second episode, second event.
        w.observe(&tick(10.0, 6, 2));
        for i in 11..15 {
            w.observe(&tick(i as f64, 6, 2));
        }
        assert_eq!(
            w.events()
                .iter()
                .filter(|e| e.kind == HealthKind::Stalled)
                .count(),
            2
        );
    }

    #[test]
    fn empty_backlog_never_stalls() {
        let mut w = Watchdog::default();
        for i in 0..20 {
            w.observe(&tick(i as f64, 7, 0));
        }
        assert!(!w.has(HealthKind::Stalled));
    }

    #[test]
    fn idle_poll_stall_fires_once_per_episode_and_before_64() {
        let mut w = Watchdog::default();
        for polls in 1..=63 {
            w.observe_idle(polls as f64, polls, "rank2");
        }
        let stalls: Vec<_> = w
            .events()
            .iter()
            .filter(|e| e.kind == HealthKind::Stalled)
            .collect();
        assert_eq!(stalls.len(), 1);
        // Raised at the rule threshold — well before the deterministic
        // engine's quiescence abort at 64 idle polls.
        assert_eq!(stalls[0].at, WatchRules::default().stall_idle_polls as f64);
        assert!(WatchRules::default().stall_idle_polls < 64);
        assert_eq!(stalls[0].subject, "rank2");
    }

    #[test]
    fn saturation_thrash_and_burn_detect_and_clear() {
        let mut w = Watchdog::default();
        let mut s = tick(1.0, 1, 1);
        s.queue_frac = 0.95;
        s.evictions = 6;
        s.burn = &[("alice", 2.5), ("bob", 0.1)];
        w.observe(&s);
        assert!(w.has(HealthKind::QueueSaturated));
        assert!(w.has(HealthKind::EvictionThrash));
        let burns: Vec<_> = w
            .events()
            .iter()
            .filter(|e| e.kind == HealthKind::SloBurn)
            .collect();
        assert_eq!(burns.len(), 1);
        assert_eq!(burns[0].subject, "alice");
        // Conditions persist next tick: no new events (edge triggering).
        let n = w.events().len();
        let mut s2 = tick(2.0, 2, 1);
        s2.queue_frac = 0.95;
        s2.evictions = 12;
        s2.burn = &[("alice", 2.5)];
        w.observe(&s2);
        assert_eq!(w.events().len(), n);
    }

    #[test]
    fn events_serialize_as_json_array() {
        let mut w = Watchdog::default();
        w.observe_idle(0.5, 99, "rank0");
        let json = health_events_json(w.events());
        let v = crate::json::parse(&json).unwrap();
        let arr = v.as_array().unwrap();
        assert_eq!(arr.len(), 1);
        assert_eq!(arr[0].get("kind").unwrap().as_str(), Some("stalled"));
        assert_eq!(arr[0].get("severity").unwrap().as_str(), Some("critical"));
        assert_eq!(arr[0].get("at").unwrap().as_f64(), Some(0.5));
    }

    #[test]
    fn trace_marker_carries_kind_and_subject() {
        let e = HealthEvent {
            kind: HealthKind::SloBurn,
            severity: Severity::Critical,
            at: 2.0,
            subject: "carol".to_string(),
            detail: String::new(),
        };
        let ev = e.to_trace_event(1);
        assert_eq!(ev.name, "health/slo_burn/carol");
        assert_eq!(ev.rank, 1);
        assert_eq!(ev.dur, 0.0);
    }
}
