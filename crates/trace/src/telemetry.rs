//! Live telemetry plane: a lock-cheap instrument registry sampled into
//! fixed-capacity time-series rings on the virtual clock.
//!
//! Where [`crate::profile`] reconstructs a run *after* it completes, this
//! module is the *during*: counters, gauges and log-bucketed histograms
//! that the pgas layer, the task engines, the server and the fleet update
//! inline, plus periodic ring samples so `sympack-top` can show queue
//! depth, bytes in flight and SLO burn as time series.
//!
//! Design rules:
//!
//! - **Lock-cheap.** A [`Telemetry`] registry is owned by exactly one
//!   component (a rank's engine, a server, a fleet) — the same single-owner
//!   discipline as [`crate::Tracer`] — so every update is a plain
//!   `Vec`-indexed add with zero synchronization. Cross-owner aggregation
//!   happens on immutable [`TelemetrySnapshot`]s, which merge.
//! - **Virtual clocks only.** Sampling records `(virtual_time, value)`
//!   pairs and never advances any clock, so enabling telemetry cannot
//!   perturb a schedule, and snapshots from deterministic runs are
//!   bit-identical across repeats.
//! - **Deterministic buckets.** [`LogHistogram`] derives its bucket index
//!   from the f64 bit pattern (exponent + top two mantissa bits — four
//!   sub-buckets per octave), not from `log2`, so bucketing is exact bit
//!   math on every platform.

use crate::health::HealthEvent;
use crate::json::{Arr, Obj};

/// Schema tag stamped on every snapshot document.
pub const SNAPSHOT_SCHEMA: &str = "sympack-telemetry-v1";

// ----- log-bucketed histogram -----

/// A log-bucketed histogram: ~19% relative bucket width (4 sub-buckets per
/// power of two), sparse storage, mergeable, with exact min/max/sum/count.
///
/// Unlike [`crate::metrics::Histogram`] (which keeps every sample for exact
/// quantiles in serving-metrics documents), this is the live-plane
/// distribution: constant memory no matter how many samples, and quantiles
/// by linear interpolation *within* a bucket, clamped to the exact observed
/// min/max so interpolation can never escape the data range at the bucket
/// edges. Quantiles of an empty histogram are 0.0, never NaN.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LogHistogram {
    buckets: std::collections::BTreeMap<u16, u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

/// Bucket index for a sample: 0 for anything ≤ 0 (and NaN), 1 for
/// subnormals, then `2 + 4·(biased_exponent − 1) + top-2-mantissa-bits`.
fn log_bucket(v: f64) -> u16 {
    if v.is_nan() || v <= 0.0 {
        return 0;
    }
    let bits = v.to_bits();
    let exp = (bits >> 52) & 0x7ff;
    if exp == 0 {
        return 1; // subnormal
    }
    let sub = (bits >> 50) & 0x3;
    (2 + (exp - 1) * 4 + sub) as u16
}

/// Inclusive-lower / exclusive-upper bounds of a bucket.
fn log_bucket_bounds(idx: u16) -> (f64, f64) {
    match idx {
        0 => (0.0, 0.0),
        1 => (0.0, f64::MIN_POSITIVE),
        _ => {
            let k = (idx - 2) as u64;
            let (exp, sub) = (k / 4 + 1, k % 4);
            let lo = f64::from_bits((exp << 52) | (sub << 50));
            let hi = if sub == 3 {
                f64::from_bits((exp + 1) << 52)
            } else {
                f64::from_bits((exp << 52) | ((sub + 1) << 50))
            };
            (lo, hi)
        }
    }
}

impl LogHistogram {
    /// New empty histogram.
    pub fn new() -> Self {
        LogHistogram::default()
    }

    /// Record one sample.
    pub fn record(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        *self.buckets.entry(log_bucket(v)).or_insert(0) += 1;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Exact smallest sample (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Exact largest sample (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Quantile `q ∈ [0, 1]`: walk the cumulative bucket counts to the
    /// bucket containing rank `q·count`, interpolate linearly inside it,
    /// and clamp to the exact observed `[min, max]` — so `quantile(0)` is
    /// the true minimum, `quantile(1)` the true maximum, and interpolation
    /// at a bucket edge can never leave the data range. Returns 0.0 (not
    /// NaN) when empty. Monotone in `q` by construction.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cum = 0u64;
        for (&idx, &c) in &self.buckets {
            let prev = cum;
            cum += c;
            if cum as f64 >= target {
                let (lo, hi) = log_bucket_bounds(idx);
                let frac = if c == 0 {
                    0.0
                } else {
                    ((target - prev as f64) / c as f64).clamp(0.0, 1.0)
                };
                return (lo + frac * (hi - lo)).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 99th percentile.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Fold another histogram into this one.
    pub fn merge_from(&mut self, other: &LogHistogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum += other.sum;
        for (&idx, &c) in &other.buckets {
            *self.buckets.entry(idx).or_insert(0) += c;
        }
    }

    /// JSON object: summary stats plus the sparse `[bucket, count]` pairs
    /// (enough to reconstruct and re-merge the distribution).
    pub fn to_json(&self) -> String {
        let mut buckets = Arr::new();
        for (&idx, &c) in &self.buckets {
            buckets.push(format!("[{idx},{c}]"));
        }
        Obj::new()
            .u64("count", self.count)
            .f64("mean", self.mean())
            .f64("p50", self.p50())
            .f64("p99", self.p99())
            .f64("min", self.min())
            .f64("max", self.max())
            .raw("buckets", &buckets.finish())
            .finish()
    }
}

// ----- time-series ring -----

/// A fixed-capacity ring of `(virtual_time, value)` samples: the newest
/// `cap` samples survive, older ones fall off the front. Pushing a sample
/// at the same timestamp as the newest one overwrites it (one value per
/// instant).
#[derive(Debug, Clone)]
pub struct SeriesRing {
    cap: usize,
    data: std::collections::VecDeque<(f64, f64)>,
}

impl SeriesRing {
    /// New ring holding at most `cap` samples.
    pub fn new(cap: usize) -> Self {
        SeriesRing {
            cap: cap.max(1),
            data: std::collections::VecDeque::new(),
        }
    }

    /// Record `(t, v)`, evicting the oldest sample at capacity.
    pub fn push(&mut self, t: f64, v: f64) {
        if let Some(last) = self.data.back_mut() {
            if last.0 == t {
                last.1 = v;
                return;
            }
        }
        if self.data.len() == self.cap {
            self.data.pop_front();
        }
        self.data.push_back((t, v));
    }

    /// Samples, oldest first.
    pub fn points(&self) -> Vec<(f64, f64)> {
        self.data.iter().copied().collect()
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing was sampled.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

// ----- instrument registry -----

/// Identity of one instrument: metric name plus label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct InstrumentKey {
    pub name: String,
    pub labels: Vec<(String, String)>,
}

impl InstrumentKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        InstrumentKey {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }

    /// Prometheus-style rendering: `name{k="v",...}` (bare name when no
    /// labels). `extra` label pairs are appended (quantile labels).
    pub fn render(&self, extra: &[(&str, &str)]) -> String {
        if self.labels.is_empty() && extra.is_empty() {
            return self.name.clone();
        }
        let mut parts: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", crate::json_escape(v)))
            .collect();
        parts.extend(
            extra
                .iter()
                .map(|(k, v)| format!("{k}=\"{}\"", crate::json_escape(v))),
        );
        format!("{}{{{}}}", self.name, parts.join(","))
    }

    fn labels_json(&self) -> String {
        let mut o = Obj::new();
        for (k, v) in &self.labels {
            o = o.str(k, v);
        }
        o.finish()
    }
}

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy)]
pub struct CounterId(usize);
/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy)]
pub struct GaugeId(usize);
/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy)]
pub struct HistId(usize);

#[derive(Debug, Clone)]
struct CounterSlot {
    key: InstrumentKey,
    value: u64,
    ring: SeriesRing,
}

#[derive(Debug, Clone)]
struct GaugeSlot {
    key: InstrumentKey,
    value: f64,
    ring: SeriesRing,
}

#[derive(Debug, Clone)]
struct HistSlot {
    key: InstrumentKey,
    hist: LogHistogram,
    /// Ring of the sample count over time — observation throughput.
    ring: SeriesRing,
}

/// The registry: typed instruments addressed by copyable ids, updated by a
/// single owner with plain indexed stores (no locks anywhere), sampled
/// into per-instrument [`SeriesRing`]s on the owner's virtual clock.
#[derive(Debug, Clone)]
pub struct Telemetry {
    counters: Vec<CounterSlot>,
    gauges: Vec<GaugeSlot>,
    hists: Vec<HistSlot>,
    ring_cap: usize,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

impl Telemetry {
    /// New registry with the default ring capacity (256 samples).
    pub fn new() -> Self {
        Telemetry::with_ring_capacity(256)
    }

    /// New registry whose rings keep the newest `cap` samples.
    pub fn with_ring_capacity(cap: usize) -> Self {
        Telemetry {
            counters: Vec::new(),
            gauges: Vec::new(),
            hists: Vec::new(),
            ring_cap: cap,
        }
    }

    /// Register (or look up) a counter.
    pub fn counter(&mut self, name: &str, labels: &[(&str, &str)]) -> CounterId {
        let key = InstrumentKey::new(name, labels);
        if let Some(i) = self.counters.iter().position(|s| s.key == key) {
            return CounterId(i);
        }
        self.counters.push(CounterSlot {
            key,
            value: 0,
            ring: SeriesRing::new(self.ring_cap),
        });
        CounterId(self.counters.len() - 1)
    }

    /// Register (or look up) a gauge.
    pub fn gauge(&mut self, name: &str, labels: &[(&str, &str)]) -> GaugeId {
        let key = InstrumentKey::new(name, labels);
        if let Some(i) = self.gauges.iter().position(|s| s.key == key) {
            return GaugeId(i);
        }
        self.gauges.push(GaugeSlot {
            key,
            value: 0.0,
            ring: SeriesRing::new(self.ring_cap),
        });
        GaugeId(self.gauges.len() - 1)
    }

    /// Register (or look up) a histogram.
    pub fn histogram(&mut self, name: &str, labels: &[(&str, &str)]) -> HistId {
        let key = InstrumentKey::new(name, labels);
        if let Some(i) = self.hists.iter().position(|s| s.key == key) {
            return HistId(i);
        }
        self.hists.push(HistSlot {
            key,
            hist: LogHistogram::new(),
            ring: SeriesRing::new(self.ring_cap),
        });
        HistId(self.hists.len() - 1)
    }

    /// Add to a counter.
    pub fn inc(&mut self, id: CounterId, by: u64) {
        self.counters[id.0].value += by;
    }

    /// Ingest an externally maintained cumulative total (monotone: the
    /// stored value never decreases).
    pub fn set_counter_total(&mut self, id: CounterId, total: u64) {
        let slot = &mut self.counters[id.0];
        slot.value = slot.value.max(total);
    }

    /// Current counter value.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0].value
    }

    /// Set a gauge.
    pub fn set(&mut self, id: GaugeId, v: f64) {
        self.gauges[id.0].value = v;
    }

    /// Current gauge value.
    pub fn gauge_value(&self, id: GaugeId) -> f64 {
        self.gauges[id.0].value
    }

    /// Record a histogram observation.
    pub fn observe(&mut self, id: HistId, v: f64) {
        self.hists[id.0].hist.record(v);
    }

    /// The histogram behind an id.
    pub fn hist(&self, id: HistId) -> &LogHistogram {
        &self.hists[id.0].hist
    }

    /// Sampling tick: record every instrument's current value into its
    /// ring at virtual time `now`. Never touches any clock.
    pub fn sample(&mut self, now: f64) {
        for s in &mut self.counters {
            s.ring.push(now, s.value as f64);
        }
        for s in &mut self.gauges {
            s.ring.push(now, s.value);
        }
        for s in &mut self.hists {
            s.ring.push(now, s.hist.count() as f64);
        }
    }

    /// Immutable snapshot, instruments sorted by key.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut snap = TelemetrySnapshot::default();
        for s in &self.counters {
            snap.counters.push((s.key.clone(), s.value));
            snap.series.push((s.key.clone(), s.ring.points()));
        }
        for s in &self.gauges {
            snap.gauges.push((s.key.clone(), s.value));
            snap.series.push((s.key.clone(), s.ring.points()));
        }
        for s in &self.hists {
            snap.hists.push((s.key.clone(), s.hist.clone()));
            snap.series.push((s.key.clone(), s.ring.points()));
        }
        snap.sort();
        snap
    }

    /// Prometheus-style text exposition of the current state.
    pub fn render_text(&self) -> String {
        self.snapshot().render_text()
    }
}

// ----- snapshots -----

/// An immutable, mergeable copy of a registry's state: counters, gauges,
/// histograms and the sampled time series, each keyed by
/// [`InstrumentKey`] and sorted for deterministic output.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySnapshot {
    pub counters: Vec<(InstrumentKey, u64)>,
    pub gauges: Vec<(InstrumentKey, f64)>,
    pub hists: Vec<(InstrumentKey, LogHistogram)>,
    pub series: Vec<(InstrumentKey, Vec<(f64, f64)>)>,
}

impl TelemetrySnapshot {
    fn sort(&mut self) {
        self.counters.sort_by(|a, b| a.0.cmp(&b.0));
        self.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        self.hists.sort_by(|a, b| a.0.cmp(&b.0));
        self.series.sort_by(|a, b| a.0.cmp(&b.0));
    }

    /// Merge another snapshot in: same-key counters add, same-key gauges
    /// keep the maximum, same-key histograms merge bucketwise, same-key
    /// series interleave sorted by time. Distinctly labeled instruments
    /// (the per-rank case) simply concatenate.
    pub fn merge_from(&mut self, other: &TelemetrySnapshot) {
        for (k, v) in &other.counters {
            match self.counters.iter_mut().find(|(sk, _)| sk == k) {
                Some((_, sv)) => *sv += v,
                None => self.counters.push((k.clone(), *v)),
            }
        }
        for (k, v) in &other.gauges {
            match self.gauges.iter_mut().find(|(sk, _)| sk == k) {
                Some((_, sv)) => *sv = sv.max(*v),
                None => self.gauges.push((k.clone(), *v)),
            }
        }
        for (k, h) in &other.hists {
            match self.hists.iter_mut().find(|(sk, _)| sk == k) {
                Some((_, sh)) => sh.merge_from(h),
                None => self.hists.push((k.clone(), h.clone())),
            }
        }
        for (k, pts) in &other.series {
            match self.series.iter_mut().find(|(sk, _)| sk == k) {
                Some((_, sp)) => {
                    sp.extend(pts.iter().copied());
                    sp.sort_by(|a, b| a.0.total_cmp(&b.0));
                }
                None => self.series.push((k.clone(), pts.clone())),
            }
        }
        self.sort();
    }

    /// Merge a sequence of snapshots (per-rank fan-in).
    pub fn merged(snaps: impl IntoIterator<Item = TelemetrySnapshot>) -> TelemetrySnapshot {
        let mut out = TelemetrySnapshot::default();
        for s in snaps {
            out.merge_from(&s);
        }
        out
    }

    /// Prometheus-style text exposition: `# TYPE` headers, one line per
    /// instrument, histograms as summaries with quantile labels.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let mut last_name = "";
        for (k, v) in &self.counters {
            if k.name != last_name {
                out.push_str(&format!("# TYPE {} counter\n", k.name));
                last_name = &k.name;
            }
            out.push_str(&format!("{} {v}\n", k.render(&[])));
        }
        last_name = "";
        for (k, v) in &self.gauges {
            if k.name != last_name {
                out.push_str(&format!("# TYPE {} gauge\n", k.name));
                last_name = &k.name;
            }
            out.push_str(&format!("{} {}\n", k.render(&[]), crate::json::fmt_f64(*v)));
        }
        last_name = "";
        for (k, h) in &self.hists {
            if k.name != last_name {
                out.push_str(&format!("# TYPE {} summary\n", k.name));
                last_name = &k.name;
            }
            for (q, label) in [(0.5, "0.5"), (0.99, "0.99")] {
                out.push_str(&format!(
                    "{} {}\n",
                    k.render(&[("quantile", label)]),
                    crate::json::fmt_f64(h.quantile(q))
                ));
            }
            let sum_key = InstrumentKey {
                name: format!("{}_sum", k.name),
                labels: k.labels.clone(),
            };
            let count_key = InstrumentKey {
                name: format!("{}_count", k.name),
                labels: k.labels.clone(),
            };
            out.push_str(&format!(
                "{} {}\n",
                sum_key.render(&[]),
                crate::json::fmt_f64(h.mean() * h.count() as f64)
            ));
            out.push_str(&format!("{} {}\n", count_key.render(&[]), h.count()));
        }
        out
    }

    /// JSON object with `counters` / `gauges` / `histograms` / `series`
    /// sections (no schema header — wrap with [`TelemetryReport::to_json`]
    /// or a fleet document for a complete snapshot file).
    pub fn to_json(&self) -> String {
        let mut counters = Arr::new();
        for (k, v) in &self.counters {
            counters.push(
                Obj::new()
                    .str("name", &k.name)
                    .raw("labels", &k.labels_json())
                    .u64("value", *v)
                    .finish(),
            );
        }
        let mut gauges = Arr::new();
        for (k, v) in &self.gauges {
            gauges.push(
                Obj::new()
                    .str("name", &k.name)
                    .raw("labels", &k.labels_json())
                    .f64("value", *v)
                    .finish(),
            );
        }
        let mut hists = Arr::new();
        for (k, h) in &self.hists {
            hists.push(
                Obj::new()
                    .str("name", &k.name)
                    .raw("labels", &k.labels_json())
                    .raw("hist", &h.to_json())
                    .finish(),
            );
        }
        let mut series = Arr::new();
        for (k, pts) in &self.series {
            let mut points = Arr::new();
            for (t, v) in pts {
                points.push(format!(
                    "[{},{}]",
                    crate::json::fmt_f64(*t),
                    crate::json::fmt_f64(*v)
                ));
            }
            series.push(
                Obj::new()
                    .str("name", &k.name)
                    .raw("labels", &k.labels_json())
                    .raw("points", &points.finish())
                    .finish(),
            );
        }
        Obj::new()
            .raw("counters", &counters.finish())
            .raw("gauges", &gauges.finish())
            .raw("histograms", &hists.finish())
            .raw("series", &series.finish())
            .finish()
    }
}

// ----- SLO tracking -----

/// A latency objective: `target` fraction of requests must finish within
/// `objective_secs` (virtual). The default is effectively "no objective"
/// (infinite latency allowed), so tenants opt in explicitly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloPolicy {
    /// Latency objective in virtual seconds.
    pub objective_secs: f64,
    /// Required fraction of requests within the objective (e.g. 0.99).
    pub target: f64,
}

impl Default for SloPolicy {
    fn default() -> Self {
        SloPolicy {
            objective_secs: f64::MAX,
            target: 0.99,
        }
    }
}

impl SloPolicy {
    /// A concrete objective.
    pub fn new(objective_secs: f64, target: f64) -> Self {
        SloPolicy {
            objective_secs,
            target: target.clamp(0.0, 1.0),
        }
    }
}

/// Tracks one subject's compliance against an [`SloPolicy`]: every
/// recorded latency is classified good/bad, and the burn rate compares the
/// observed bad fraction against the allowed error budget.
#[derive(Debug, Clone)]
pub struct SloTracker {
    policy: SloPolicy,
    good: u64,
    bad: u64,
}

impl SloTracker {
    /// New tracker under `policy`.
    pub fn new(policy: SloPolicy) -> Self {
        SloTracker {
            policy,
            good: 0,
            bad: 0,
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> SloPolicy {
        self.policy
    }

    /// Classify one request latency; returns true when within objective.
    pub fn record(&mut self, latency_secs: f64) -> bool {
        let good = latency_secs <= self.policy.objective_secs;
        if good {
            self.good += 1;
        } else {
            self.bad += 1;
        }
        good
    }

    /// Requests recorded.
    pub fn total(&self) -> u64 {
        self.good + self.bad
    }

    /// Fraction of requests within objective (1.0 when no traffic).
    pub fn compliance(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            1.0
        } else {
            self.good as f64 / total as f64
        }
    }

    /// Error-budget burn rate: observed bad fraction over the allowed bad
    /// fraction `1 − target`. 1.0 means burning exactly the budget; > 1
    /// means the objective will be missed if the rate holds. 0 when no
    /// traffic.
    pub fn burn_rate(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let bad_frac = self.bad as f64 / total as f64;
        let budget = (1.0 - self.policy.target).max(1e-12);
        bad_frac / budget
    }

    /// JSON object with the policy and the derived figures.
    pub fn to_json(&self) -> String {
        Obj::new()
            .f64("objective_secs", self.policy.objective_secs)
            .f64("target", self.policy.target)
            .u64("good", self.good)
            .u64("bad", self.bad)
            .f64("compliance", self.compliance())
            .f64("burn_rate", self.burn_rate())
            .finish()
    }
}

// ----- typed instrument bundles -----

/// A deterministic per-rank view of the comm layer, maintained by the pgas
/// `Rank` itself (single-threaded writes, so lockstep runs reproduce it
/// bit-for-bit — unlike the global atomic `Stats`, which other ranks race
/// on). `inflight_*` are the queue depth/bytes observed at the most recent
/// inbox drain.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommSample {
    /// RPC messages this rank sent (all flavors).
    pub msgs_sent: u64,
    /// Wire bytes this rank sent.
    pub bytes_sent: u64,
    /// Messages the fault plan dropped at send time.
    pub sends_dropped: u64,
    /// rget attempts that timed out and were retried.
    pub rget_retries: u64,
    /// Messages delivered to this rank's inbox (executed by `progress`).
    pub delivered_msgs: u64,
    /// Wire bytes delivered to this rank's inbox.
    pub delivered_bytes: u64,
    /// Messages found in flight at the last inbox drain.
    pub inflight_msgs: u64,
    /// Wire bytes found in flight at the last inbox drain.
    pub inflight_bytes: u64,
}

/// The scheduler-side instrument bundle one task engine owns: task
/// throughput, dependency wait, ready-queue depth, resident bytes, and the
/// rank's comm counters, all labeled `rank="N"` and sampled at task
/// boundaries.
#[derive(Debug, Clone)]
pub struct SchedTelemetry {
    tel: Telemetry,
    tasks: CounterId,
    dep_wait: HistId,
    task_secs: HistId,
    rtq: GaugeId,
    mem: GaugeId,
    sent_msgs: CounterId,
    sent_bytes: CounterId,
    dropped: CounterId,
    retries: CounterId,
    inflight_msgs: GaugeId,
    inflight_bytes: GaugeId,
}

impl SchedTelemetry {
    /// New bundle for one rank.
    pub fn new(rank: usize) -> Self {
        let mut tel = Telemetry::new();
        let r = rank.to_string();
        let labels: &[(&str, &str)] = &[("rank", r.as_str())];
        SchedTelemetry {
            tasks: tel.counter("sympack_sched_tasks_total", labels),
            dep_wait: tel.histogram("sympack_sched_dep_wait_seconds", labels),
            task_secs: tel.histogram("sympack_sched_task_seconds", labels),
            rtq: tel.gauge("sympack_sched_rtq_depth", labels),
            mem: tel.gauge("sympack_sched_mem_bytes", labels),
            sent_msgs: tel.counter("sympack_pgas_msgs_sent_total", labels),
            sent_bytes: tel.counter("sympack_pgas_bytes_sent_total", labels),
            dropped: tel.counter("sympack_pgas_sends_dropped_total", labels),
            retries: tel.counter("sympack_pgas_rget_retries_total", labels),
            inflight_msgs: tel.gauge("sympack_pgas_inflight_msgs", labels),
            inflight_bytes: tel.gauge("sympack_pgas_inflight_bytes", labels),
            tel,
        }
    }

    /// Task-boundary hook: one task of `secs` virtual seconds just
    /// finished at `now` after waiting `dep_wait` past readiness, with
    /// `rtq_depth` tasks still ready and `mem_bytes` resident. `comm` is
    /// the rank's current comm view. Samples every ring at `now`.
    pub fn on_task(
        &mut self,
        now: f64,
        secs: f64,
        dep_wait: f64,
        rtq_depth: usize,
        mem_bytes: u64,
        comm: CommSample,
    ) {
        self.tel.inc(self.tasks, 1);
        self.tel.observe(self.task_secs, secs);
        self.tel.observe(self.dep_wait, dep_wait);
        self.tel.set(self.rtq, rtq_depth as f64);
        self.tel.set(self.mem, mem_bytes as f64);
        self.tel.set_counter_total(self.sent_msgs, comm.msgs_sent);
        self.tel.set_counter_total(self.sent_bytes, comm.bytes_sent);
        self.tel.set_counter_total(self.dropped, comm.sends_dropped);
        self.tel.set_counter_total(self.retries, comm.rget_retries);
        self.tel.set(self.inflight_msgs, comm.inflight_msgs as f64);
        self.tel
            .set(self.inflight_bytes, comm.inflight_bytes as f64);
        self.tel.sample(now);
    }

    /// The registry (read access for exposition).
    pub fn telemetry(&self) -> &Telemetry {
        &self.tel
    }

    /// Snapshot the current state.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        self.tel.snapshot()
    }
}

/// The serving-side instrument bundle a `Server` owns: admission counters,
/// queue depth, batch sizes and solve latency, sampled on the server's
/// virtual clock.
#[derive(Debug, Clone)]
pub struct ServiceTelemetry {
    tel: Telemetry,
    submitted: CounterId,
    rejected: CounterId,
    served: CounterId,
    queue: GaugeId,
    batch: HistId,
    latency: HistId,
}

impl Default for ServiceTelemetry {
    fn default() -> Self {
        ServiceTelemetry::new()
    }
}

impl ServiceTelemetry {
    /// New bundle.
    pub fn new() -> Self {
        let mut tel = Telemetry::new();
        ServiceTelemetry {
            submitted: tel.counter("sympack_service_jobs_submitted_total", &[]),
            rejected: tel.counter("sympack_service_jobs_rejected_total", &[]),
            served: tel.counter("sympack_service_jobs_served_total", &[]),
            queue: tel.gauge("sympack_service_queue_depth", &[]),
            batch: tel.histogram("sympack_service_batch_size", &[]),
            latency: tel.histogram("sympack_service_latency_seconds", &[]),
            tel,
        }
    }

    /// A job was admitted; `depth` is the queue depth after.
    pub fn on_submit(&mut self, now: f64, depth: usize) {
        self.tel.inc(self.submitted, 1);
        self.tel.set(self.queue, depth as f64);
        self.tel.sample(now);
    }

    /// A job was rejected by admission control.
    pub fn on_reject(&mut self, now: f64, depth: usize) {
        self.tel.inc(self.rejected, 1);
        self.tel.set(self.queue, depth as f64);
        self.tel.sample(now);
    }

    /// A batch of `size` jobs completed; `latencies` are per-job virtual
    /// latencies; `depth` is the queue depth after.
    pub fn on_batch(&mut self, now: f64, size: usize, latencies: &[f64], depth: usize) {
        self.tel.inc(self.served, size as u64);
        self.tel.observe(self.batch, size as f64);
        for &l in latencies {
            self.tel.observe(self.latency, l);
        }
        self.tel.set(self.queue, depth as f64);
        self.tel.sample(now);
    }

    /// The registry (read access for exposition).
    pub fn telemetry(&self) -> &Telemetry {
        &self.tel
    }

    /// Snapshot the current state.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        self.tel.snapshot()
    }
}

// ----- whole-run report -----

/// Everything a telemetry-enabled solver run hands back: the per-rank
/// snapshots merged into one, plus the health events the watchdogs raised.
/// Returned even when the run itself failed (a stalled run's telemetry is
/// the most interesting kind).
#[derive(Debug, Clone, Default)]
pub struct TelemetryReport {
    pub snapshot: TelemetrySnapshot,
    pub health: Vec<HealthEvent>,
}

impl TelemetryReport {
    /// Merge per-rank snapshots and health streams into one report.
    /// Health events sort by (time, subject, kind label) for deterministic
    /// output.
    pub fn from_ranks(
        snaps: impl IntoIterator<Item = TelemetrySnapshot>,
        health: impl IntoIterator<Item = HealthEvent>,
    ) -> Self {
        let mut h: Vec<HealthEvent> = health.into_iter().collect();
        h.sort_by(|a, b| {
            a.at.total_cmp(&b.at)
                .then_with(|| a.subject.cmp(&b.subject))
                .then_with(|| a.kind.label().cmp(b.kind.label()))
        });
        TelemetryReport {
            snapshot: TelemetrySnapshot::merged(snaps),
            health: h,
        }
    }

    /// Complete snapshot document (schema header, kind `solver`).
    pub fn to_json(&self) -> String {
        Obj::new()
            .str("schema", SNAPSHOT_SCHEMA)
            .str("kind", "solver")
            .raw("telemetry", &self.snapshot.to_json())
            .raw("health", &crate::health::health_events_json(&self.health))
            .finish()
    }

    /// Prometheus-style text exposition.
    pub fn render_text(&self) -> String {
        self.snapshot.render_text()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_buckets_contain_their_samples() {
        // Deterministic pseudo-random walk over many magnitudes.
        let mut x = 0x9e3779b97f4a7c15u64;
        for _ in 0..4000 {
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            let v = (x >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
            let scaled = v * 10f64.powi((x % 37) as i32 - 18);
            if scaled <= 0.0 {
                continue;
            }
            let idx = log_bucket(scaled);
            let (lo, hi) = log_bucket_bounds(idx);
            assert!(
                lo <= scaled && scaled < hi,
                "sample {scaled:e} outside bucket {idx} [{lo:e},{hi:e})"
            );
        }
        assert_eq!(log_bucket(0.0), 0);
        assert_eq!(log_bucket(-3.0), 0);
        assert_eq!(log_bucket(f64::MIN_POSITIVE / 2.0), 1);
    }

    #[test]
    fn log_histogram_quantiles_interpolate_within_data_range() {
        let mut h = LogHistogram::new();
        for v in 1..=1000 {
            h.record(v as f64);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.quantile(0.0), 1.0); // clamped to exact min
        assert_eq!(h.quantile(1.0), 1000.0); // clamped to exact max
        let p50 = h.p50();
        assert!(
            (400.0..=600.0).contains(&p50),
            "p50 {p50} far from true median 500 (19% bucket width)"
        );
        let p99 = h.p99();
        assert!((900.0..=1000.0).contains(&p99), "p99 {p99}");
        // Relative error of a log-bucketed quantile is bounded by the
        // bucket width (one octave / 4 sub-buckets ≈ 19%).
        assert!((p50 - 500.0).abs() / 500.0 < 0.2);
    }

    #[test]
    fn empty_log_histogram_is_zero_not_nan() {
        let h = LogHistogram::new();
        assert_eq!(h.p50(), 0.0);
        assert_eq!(h.p99(), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert!(!h.p50().is_nan());
    }

    #[test]
    fn log_histogram_merge_matches_combined_recording() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut both = LogHistogram::new();
        for i in 1..=50 {
            a.record(i as f64 * 0.1);
            both.record(i as f64 * 0.1);
        }
        for i in 1..=30 {
            b.record(i as f64 * 10.0);
            both.record(i as f64 * 10.0);
        }
        a.merge_from(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn series_ring_caps_and_collapses_same_instant() {
        let mut r = SeriesRing::new(4);
        for i in 0..10 {
            r.push(i as f64, (i * i) as f64);
        }
        let pts = r.points();
        assert_eq!(pts.len(), 4);
        assert_eq!(pts[0], (6.0, 36.0));
        assert_eq!(pts[3], (9.0, 81.0));
        r.push(9.0, 100.0); // same instant: overwrite, not append
        assert_eq!(r.points().len(), 4);
        assert_eq!(r.points()[3], (9.0, 100.0));
    }

    #[test]
    fn registry_roundtrip_and_dedup() {
        let mut t = Telemetry::new();
        let c = t.counter("x_total", &[("rank", "0")]);
        let c2 = t.counter("x_total", &[("rank", "0")]);
        assert_eq!(c.0, c2.0);
        let c_other = t.counter("x_total", &[("rank", "1")]);
        assert_ne!(c.0, c_other.0);
        t.inc(c, 3);
        t.set_counter_total(c, 2); // monotone: no decrease
        assert_eq!(t.counter_value(c), 3);
        t.set_counter_total(c, 7);
        assert_eq!(t.counter_value(c), 7);
        let g = t.gauge("depth", &[]);
        t.set(g, 4.5);
        assert_eq!(t.gauge_value(g), 4.5);
        let h = t.histogram("lat", &[]);
        t.observe(h, 0.25);
        assert_eq!(t.hist(h).count(), 1);
    }

    #[test]
    fn snapshot_merges_per_rank_and_same_key() {
        let mut a = Telemetry::new();
        let ca = a.counter("t_total", &[("rank", "0")]);
        a.inc(ca, 5);
        a.sample(1.0);
        let mut b = Telemetry::new();
        let cb = b.counter("t_total", &[("rank", "1")]);
        b.inc(cb, 7);
        b.sample(2.0);
        let merged = TelemetrySnapshot::merged([a.snapshot(), b.snapshot()]);
        assert_eq!(merged.counters.len(), 2);
        // Same-key merge: counters add.
        let again = TelemetrySnapshot::merged([merged.clone(), merged.clone()]);
        assert_eq!(again.counters[0].1, 10);
        assert_eq!(again.counters[1].1, 14);
    }

    #[test]
    fn render_text_is_prometheus_shaped() {
        let mut t = Telemetry::new();
        let c = t.counter("sympack_tasks_total", &[("rank", "0")]);
        t.inc(c, 42);
        let g = t.gauge("sympack_depth", &[]);
        t.set(g, 3.0);
        let h = t.histogram("sympack_lat_seconds", &[("tenant", "a")]);
        t.observe(h, 0.5);
        let text = t.render_text();
        assert!(text.contains("# TYPE sympack_tasks_total counter"));
        assert!(text.contains("sympack_tasks_total{rank=\"0\"} 42"));
        assert!(text.contains("# TYPE sympack_depth gauge"));
        assert!(text.contains("sympack_depth 3"));
        assert!(text.contains("# TYPE sympack_lat_seconds summary"));
        assert!(text.contains("sympack_lat_seconds{tenant=\"a\",quantile=\"0.5\"}"));
        assert!(text.contains("sympack_lat_seconds_count{tenant=\"a\"} 1"));
    }

    #[test]
    fn snapshot_json_parses_and_has_sections() {
        let mut t = Telemetry::new();
        let c = t.counter("c_total", &[]);
        t.inc(c, 1);
        let h = t.histogram("h_seconds", &[]);
        t.observe(h, 2.0);
        t.sample(0.5);
        t.sample(1.5);
        let json = t.snapshot().to_json();
        let v = crate::json::parse(&json).unwrap();
        assert_eq!(v.get("counters").unwrap().as_array().unwrap().len(), 1);
        assert_eq!(v.get("histograms").unwrap().as_array().unwrap().len(), 1);
        let series = v.get("series").unwrap().as_array().unwrap();
        assert_eq!(series.len(), 2);
        let pts = series[0].get("points").unwrap().as_array().unwrap();
        assert_eq!(pts.len(), 2);
    }

    #[test]
    fn slo_tracker_burn_math() {
        let mut s = SloTracker::new(SloPolicy::new(1.0, 0.99));
        assert_eq!(s.burn_rate(), 0.0);
        assert_eq!(s.compliance(), 1.0);
        for _ in 0..98 {
            s.record(0.5);
        }
        s.record(2.0);
        s.record(3.0);
        // 2 bad / 100 total = 2% bad against a 1% budget → burn 2.0.
        assert!((s.burn_rate() - 2.0).abs() < 1e-12);
        assert!((s.compliance() - 0.98).abs() < 1e-12);
        let v = crate::json::parse(&s.to_json()).unwrap();
        assert_eq!(v.get("bad").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn sched_bundle_records_and_snapshots() {
        let mut st = SchedTelemetry::new(3);
        st.on_task(
            1.0,
            0.1,
            0.02,
            5,
            1024,
            CommSample {
                msgs_sent: 4,
                bytes_sent: 512,
                inflight_msgs: 2,
                inflight_bytes: 256,
                ..Default::default()
            },
        );
        st.on_task(2.0, 0.2, 0.0, 4, 2048, CommSample::default());
        let snap = st.snapshot();
        let tasks = snap
            .counters
            .iter()
            .find(|(k, _)| k.name == "sympack_sched_tasks_total")
            .unwrap();
        assert_eq!(tasks.1, 2);
        assert_eq!(tasks.0.labels, vec![("rank".to_string(), "3".to_string())]);
        // Monotone counters ingested from the comm sample never decrease.
        let sent = snap
            .counters
            .iter()
            .find(|(k, _)| k.name == "sympack_pgas_msgs_sent_total")
            .unwrap();
        assert_eq!(sent.1, 4);
    }

    #[test]
    fn report_json_has_schema_and_sorted_health() {
        use crate::health::{HealthEvent, HealthKind, Severity};
        let ev = |at: f64, subject: &str| HealthEvent {
            kind: HealthKind::Stalled,
            severity: Severity::Critical,
            at,
            subject: subject.to_string(),
            detail: String::new(),
        };
        let r = TelemetryReport::from_ranks(
            [TelemetrySnapshot::default()],
            [ev(2.0, "rank1"), ev(1.0, "rank0")],
        );
        assert_eq!(r.health[0].at, 1.0);
        let v = crate::json::parse(&r.to_json()).unwrap();
        assert_eq!(v.get("schema").unwrap().as_str(), Some(SNAPSHOT_SCHEMA));
        assert_eq!(v.get("kind").unwrap().as_str(), Some("solver"));
        assert_eq!(v.get("health").unwrap().as_array().unwrap().len(), 2);
    }
}
