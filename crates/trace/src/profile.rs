//! Post-mortem analysis of a span timeline: the solver flight recorder.
//!
//! A [`Profile`] is assembled from one run's merged [`TraceEvent`] spans
//! plus the runtime's communication matrix and makespan. It computes:
//!
//! * the **critical path** over the *executed* task DAG — a backward walk
//!   from the last-finishing task, following resource edges (the task sat
//!   ready while its rank ran something else → blame the previous task on
//!   that rank) and dependency edges (the task waited for an input → blame
//!   the producer named in `pred`, or, lacking a label, the latest task
//!   finishing before the ready time). Path intervals are non-overlapping
//!   by construction, so the path length is a lower bound on the makespan;
//! * **per-rank wait attribution** — every second of `[0, makespan]` on a
//!   rank is classified as kernel-busy, runtime overhead, dep-wait,
//!   fetch-wait (the part of a dependency gap covered by that rank's own
//!   comm spans) or queue-idle, and the five classes sum back to the
//!   makespan exactly (asserted in tests to 1e-9);
//! * the **P×P communication matrix** and queue-depth / resident-bytes
//!   series sampled at task boundaries.
//!
//! Profiles serialize to a self-contained JSON document (schema
//! `sympack-profile-v1`, hand-rolled writer, parsed back by
//! [`crate::json`]) consumed by the `sympack-prof` CLI: `report` renders
//! the text summary, `chrome` exports the span lanes, `diff` compares two
//! profiles with thresholds for CI regression gating.

use std::collections::{BTreeMap, HashMap, HashSet};

use crate::json::{self, JsonValue};
use crate::{json_escape, SpanKind, TraceCat, TraceEvent};

/// Schema tag written into every profile document.
pub const SCHEMA: &str = "sympack-profile-v1";

/// P×P communication matrix in row-major (src·n + dst) order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CommMatrix {
    /// Number of ranks (matrix is `n × n`).
    pub n: usize,
    /// Bytes moved src→dst.
    pub bytes: Vec<u64>,
    /// Messages sent src→dst (signals, payload RPCs, transfers).
    pub msgs: Vec<u64>,
}

impl CommMatrix {
    /// An all-zero `n × n` matrix.
    pub fn empty(n: usize) -> CommMatrix {
        CommMatrix {
            n,
            bytes: vec![0; n * n],
            msgs: vec![0; n * n],
        }
    }

    /// Bytes moved from `src` to `dst` (0 when out of range).
    pub fn bytes_between(&self, src: usize, dst: usize) -> u64 {
        if src < self.n && dst < self.n {
            self.bytes[src * self.n + dst]
        } else {
            0
        }
    }

    /// Messages sent from `src` to `dst` (0 when out of range).
    pub fn msgs_between(&self, src: usize, dst: usize) -> u64 {
        if src < self.n && dst < self.n {
            self.msgs[src * self.n + dst]
        } else {
            0
        }
    }

    /// Total bytes over all pairs.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Total messages over all pairs.
    pub fn total_msgs(&self) -> u64 {
        self.msgs.iter().sum()
    }

    /// Pairs sorted by descending byte volume, excluding zero entries.
    pub fn top_pairs(&self, k: usize) -> Vec<(usize, usize, u64, u64)> {
        let mut pairs: Vec<(usize, usize, u64, u64)> = (0..self.n)
            .flat_map(|s| (0..self.n).map(move |d| (s, d)))
            .filter_map(|(s, d)| {
                let b = self.bytes[s * self.n + d];
                let m = self.msgs[s * self.n + d];
                (b > 0 || m > 0).then_some((s, d, b, m))
            })
            .collect();
        pairs.sort_by(|a, b| b.2.cmp(&a.2).then(b.3.cmp(&a.3)).then(a.0.cmp(&b.0)));
        pairs.truncate(k);
        pairs
    }
}

/// Why a task is on the critical path (the edge that led to it from its
/// successor in the walk).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CritEdge {
    /// First task of the path (no blocking predecessor found).
    Seed,
    /// Successor waited on this task's output (dependency edge).
    Dep,
    /// Successor was ready but its rank was running this task
    /// (resource edge).
    Resource,
}

impl CritEdge {
    /// Stable lowercase label used in exports.
    pub fn label(&self) -> &'static str {
        match self {
            CritEdge::Seed => "seed",
            CritEdge::Dep => "dep",
            CritEdge::Resource => "resource",
        }
    }

    /// Inverse of [`CritEdge::label`].
    pub fn parse(s: &str) -> Option<CritEdge> {
        Some(match s {
            "seed" => CritEdge::Seed,
            "dep" => CritEdge::Dep,
            "resource" => CritEdge::Resource,
            _ => return None,
        })
    }
}

/// One task on the critical path, in execution order.
#[derive(Debug, Clone)]
pub struct CritTask {
    pub name: String,
    pub rank: usize,
    pub cat: TraceCat,
    pub start: f64,
    pub dur: f64,
    /// How the walk reached this task from its successor on the path.
    pub edge: CritEdge,
}

/// Exhaustive per-rank classification of `[0, makespan]`.
#[derive(Debug, Clone, Default)]
pub struct RankBreakdown {
    pub rank: usize,
    /// Seconds in task kernels (charged work minus runtime overhead).
    pub busy: f64,
    /// Seconds of runtime overhead inside task intervals.
    pub overhead: f64,
    /// Seconds waiting on dependencies not covered by own comm spans.
    pub dep_wait: f64,
    /// Seconds of dependency gaps covered by this rank's comm spans
    /// (blocking fetches, retry windows).
    pub fetch_wait: f64,
    /// Seconds with an empty ready queue and nothing in flight.
    pub idle: f64,
    /// Number of task executions.
    pub tasks: usize,
    /// Maximum ready-queue depth sampled at task boundaries.
    pub peak_rtq: u32,
    /// Maximum resident input-buffer bytes sampled at task boundaries.
    pub peak_bytes: u64,
}

impl RankBreakdown {
    /// Sum of all five time classes (should equal the makespan).
    pub fn total(&self) -> f64 {
        self.busy + self.overhead + self.dep_wait + self.fetch_wait + self.idle
    }
}

/// Per-rank block-publication byte accounting in BLR mode: what each rank
/// shipped dense vs compressed, and what the compressed publications would
/// have cost dense (the basis of the compression ratio).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlrRank {
    pub rank: usize,
    /// Payload bytes of dense block publications.
    pub dense_bytes: u64,
    /// Payload bytes of compressed (`[U|V]`) block publications.
    pub lr_bytes: u64,
    /// Dense-equivalent bytes of the compressed publications.
    pub lr_dense_equiv_bytes: u64,
    /// Blocks published dense.
    pub dense_blocks: u64,
    /// Blocks published compressed.
    pub lr_blocks: u64,
}

impl BlrRank {
    /// Total payload bytes this rank actually published (any form).
    pub fn published(&self) -> u64 {
        self.dense_bytes + self.lr_bytes
    }

    /// What the same publications would have cost with every block dense.
    pub fn dense_equiv(&self) -> u64 {
        self.dense_bytes + self.lr_dense_equiv_bytes
    }
}

/// A complete per-run profile: the analyzable flight-recorder output.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Engine the run used (`fanout`, `rightlooking`, `fanin`, ...).
    pub engine: String,
    pub n_ranks: usize,
    /// Achieved makespan (virtual seconds).
    pub makespan: f64,
    /// Critical path tasks in execution order.
    pub crit: Vec<CritTask>,
    /// Sum of durations along the critical path (lower bound on makespan).
    pub crit_len: f64,
    /// Critical-path time per category.
    pub crit_by_cat: Vec<(TraceCat, f64)>,
    /// Per-rank time attribution, indexed by rank.
    pub ranks: Vec<RankBreakdown>,
    /// P×P communication matrix.
    pub comm: CommMatrix,
    /// Per-rank publication accounting — populated (by the driver) only
    /// when the run used BLR compression, so dense-mode profile documents
    /// are byte-identical to their pre-BLR form.
    pub blr: Vec<BlrRank>,
    /// The full span list (sorted by start), for Chrome export and series.
    pub spans: Vec<TraceEvent>,
}

/// Comparison slack: absolute + relative to the run's makespan.
fn eps_for(makespan: f64) -> f64 {
    1e-12 + 1e-9 * makespan.abs()
}

impl Profile {
    /// Assemble a profile from one run's merged span list.
    pub fn build(
        engine: &str,
        events: &[TraceEvent],
        makespan: f64,
        n_ranks: usize,
        comm: CommMatrix,
    ) -> Profile {
        let mut spans: Vec<TraceEvent> = events.to_vec();
        spans.sort_by(|a, b| {
            a.start
                .total_cmp(&b.start)
                .then(a.end().total_cmp(&b.end()))
        });
        let eps = eps_for(makespan);
        let (crit, crit_len, crit_by_cat) = critical_path(&spans, eps);
        let ranks = (0..n_ranks)
            .map(|r| rank_breakdown(r, &spans, makespan))
            .collect();
        Profile {
            engine: engine.to_string(),
            n_ranks,
            makespan,
            crit,
            crit_len,
            crit_by_cat,
            ranks,
            comm,
            blr: Vec::new(),
            spans,
        }
    }

    /// Queue-depth series for one rank: `(task end time, rtq depth)`
    /// sampled at task boundaries.
    pub fn queue_series(&self, rank: usize) -> Vec<(f64, u32)> {
        self.spans
            .iter()
            .filter(|e| e.kind == SpanKind::Exec && e.rank == rank)
            .map(|e| (e.end(), e.rtq_depth))
            .collect()
    }

    /// Resident input-buffer series for one rank: `(task end time, bytes)`.
    pub fn mem_series(&self, rank: usize) -> Vec<(f64, u64)> {
        self.spans
            .iter()
            .filter(|e| e.kind == SpanKind::Exec && e.rank == rank)
            .map(|e| (e.end(), e.bytes))
            .collect()
    }
}

/// Backward critical-path walk over the executed DAG. Returns the path in
/// execution order, its length, and per-category totals.
fn critical_path(spans: &[TraceEvent], eps: f64) -> (Vec<CritTask>, f64, Vec<(TraceCat, f64)>) {
    let execs: Vec<usize> = (0..spans.len())
        .filter(|&i| spans[i].kind == SpanKind::Exec)
        .collect();
    if execs.is_empty() {
        return (Vec::new(), 0.0, Vec::new());
    }

    // Index: per-rank exec spans and per-label exec spans, both ascending
    // by end time (spans are already sorted by start; re-sort by end).
    let mut by_rank: HashMap<usize, Vec<usize>> = HashMap::new();
    let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
    let mut by_end: Vec<usize> = execs.clone();
    by_end.sort_by(|&a, &b| spans[a].end().total_cmp(&spans[b].end()));
    for &i in &by_end {
        by_rank.entry(spans[i].rank).or_default().push(i);
        by_name.entry(spans[i].name.as_str()).or_default().push(i);
    }

    // Latest event in `ids` (ascending by end) ending at or before `t`,
    // excluding `not`.
    let last_before = |ids: &[usize], t: f64, not: usize| -> Option<usize> {
        ids.iter()
            .rev()
            .find(|&&i| i != not && spans[i].end() <= t + eps)
            .copied()
    };

    let mut cur = *by_end.last().unwrap();
    let mut visited: HashSet<usize> = HashSet::new();
    // (span index, edge explaining why this task waited: how it connects
    // to its predecessor on the path)
    let mut path: Vec<(usize, CritEdge)> = Vec::new();
    for _ in 0..=execs.len() {
        if !visited.insert(cur) {
            break; // eps slop on zero-duration spans could cycle; stop
        }
        let e = &spans[cur];
        // Decide the predecessor and the edge kind before recording.
        let step = if e.start > e.ready_at + eps {
            // Ready before it started: the rank was busy (resource edge).
            last_before(&by_rank[&e.rank], e.start, cur).map(|p| (p, CritEdge::Resource))
        } else {
            // Started as soon as ready: waiting on the producer. Try the
            // labeled dependency first; lacking one (flat producers),
            // blame the latest task finishing before the ready time.
            e.pred
                .as_ref()
                .and_then(|pred| by_name.get(pred.as_str()))
                .and_then(|ids| last_before(ids, e.ready_at.min(e.start), cur))
                .or_else(|| last_before(&by_end, e.ready_at.min(e.start), cur))
                .map(|p| (p, CritEdge::Dep))
        };
        match step {
            Some((p, edge)) => {
                path.push((cur, edge));
                cur = p;
            }
            None => {
                path.push((cur, CritEdge::Seed));
                break;
            }
        }
    }

    path.reverse();
    let tasks: Vec<CritTask> = path
        .iter()
        .map(|&(i, edge)| {
            let e = &spans[i];
            CritTask {
                name: e.name.clone(),
                rank: e.rank,
                cat: e.cat,
                start: e.start,
                dur: e.dur,
                edge,
            }
        })
        .collect();
    let len = tasks.iter().map(|t| t.dur).sum();
    let mut by_cat: HashMap<&str, (TraceCat, f64)> = HashMap::new();
    for t in &tasks {
        by_cat.entry(t.cat.label()).or_insert((t.cat, 0.0)).1 += t.dur;
    }
    let mut by_cat: Vec<(TraceCat, f64)> = by_cat.into_values().collect();
    by_cat.sort_by(|a, b| b.1.total_cmp(&a.1));
    (tasks, len, by_cat)
}

/// Classify every second of `[0, makespan]` on `rank`. The five classes
/// sum to the makespan exactly (up to fp rounding).
fn rank_breakdown(rank: usize, spans: &[TraceEvent], makespan: f64) -> RankBreakdown {
    let mut out = RankBreakdown {
        rank,
        ..RankBreakdown::default()
    };

    // Union of this rank's comm intervals (merged, ascending) — the part
    // of a dependency gap they cover is fetch-wait, not dep-wait.
    let mut comm: Vec<(f64, f64)> = spans
        .iter()
        .filter(|e| e.rank == rank && !matches!(e.kind, SpanKind::Exec | SpanKind::Request))
        .map(|e| (e.start, e.end()))
        .collect();
    comm.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut comm_union: Vec<(f64, f64)> = Vec::with_capacity(comm.len());
    for (s, e) in comm {
        match comm_union.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => comm_union.push((s, e)),
        }
    }
    let overlap = |a: f64, b: f64| -> f64 {
        comm_union
            .iter()
            .map(|&(s, e)| (e.min(b) - s.max(a)).max(0.0))
            .sum()
    };

    let mut prev_end = 0.0f64;
    for e in spans {
        if e.rank != rank || e.kind != SpanKind::Exec {
            continue;
        }
        out.tasks += 1;
        out.peak_rtq = out.peak_rtq.max(e.rtq_depth);
        out.peak_bytes = out.peak_bytes.max(e.bytes);
        let gap = (e.start - prev_end).max(0.0);
        if gap > 0.0 {
            // The leading part of the gap up to the ready time is waiting
            // on inputs; split it by comm coverage. The rest is idle.
            let dep_raw = (e.ready_at - prev_end).clamp(0.0, gap);
            let fetch = overlap(prev_end, prev_end + dep_raw).min(dep_raw);
            out.fetch_wait += fetch;
            out.dep_wait += dep_raw - fetch;
            out.idle += gap - dep_raw;
        }
        let covered = e.end() - e.start.max(prev_end);
        if covered > 0.0 {
            let ov = e.overhead.clamp(0.0, covered);
            out.overhead += ov;
            out.busy += covered - ov;
        }
        prev_end = prev_end.max(e.end());
    }
    out.idle += (makespan - prev_end).max(0.0);
    out
}

// ---------------------------------------------------------------------------
// JSON serialization
// ---------------------------------------------------------------------------

/// Shortest-roundtrip f64 formatting (Rust's `Display` is exact).
fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "0".to_string()
    }
}

fn u64_list(xs: &[u64]) -> String {
    let items: Vec<String> = xs.iter().map(|x| x.to_string()).collect();
    format!("[{}]", items.join(","))
}

impl Profile {
    /// Serialize as a self-contained JSON document (schema
    /// [`SCHEMA`]), parseable by [`Profile::from_json`].
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096 + 160 * self.spans.len());
        s.push_str(&format!(
            "{{\n\"schema\":\"{}\",\n\"engine\":\"{}\",\n\"n_ranks\":{},\n\"makespan\":{},\n",
            SCHEMA,
            json_escape(&self.engine),
            self.n_ranks,
            num(self.makespan)
        ));
        // Critical path.
        let tasks: Vec<String> = self
            .crit
            .iter()
            .map(|t| {
                format!(
                    "{{\"name\":\"{}\",\"rank\":{},\"cat\":\"{}\",\"start\":{},\"dur\":{},\"edge\":\"{}\"}}",
                    json_escape(&t.name),
                    t.rank,
                    t.cat.label(),
                    num(t.start),
                    num(t.dur),
                    t.edge.label()
                )
            })
            .collect();
        let by_cat: Vec<String> = self
            .crit_by_cat
            .iter()
            .map(|(c, secs)| format!("[\"{}\",{}]", c.label(), num(*secs)))
            .collect();
        s.push_str(&format!(
            "\"critical_path\":{{\"length\":{},\"by_cat\":[{}],\"tasks\":[\n{}\n]}},\n",
            num(self.crit_len),
            by_cat.join(","),
            tasks.join(",\n")
        ));
        // Per-rank attribution.
        let ranks: Vec<String> = self
            .ranks
            .iter()
            .map(|r| {
                format!(
                    "{{\"rank\":{},\"busy\":{},\"overhead\":{},\"dep_wait\":{},\"fetch_wait\":{},\"idle\":{},\"tasks\":{},\"peak_rtq\":{},\"peak_bytes\":{}}}",
                    r.rank,
                    num(r.busy),
                    num(r.overhead),
                    num(r.dep_wait),
                    num(r.fetch_wait),
                    num(r.idle),
                    r.tasks,
                    r.peak_rtq,
                    r.peak_bytes
                )
            })
            .collect();
        s.push_str(&format!("\"ranks\":[\n{}\n],\n", ranks.join(",\n")));
        // Comm matrix.
        s.push_str(&format!(
            "\"comm\":{{\"n\":{},\"bytes\":{},\"msgs\":{}}},\n",
            self.comm.n,
            u64_list(&self.comm.bytes),
            u64_list(&self.comm.msgs)
        ));
        // BLR publication accounting — only present for compressed runs,
        // keeping dense-mode documents byte-identical to the old schema.
        if !self.blr.is_empty() {
            let rows: Vec<String> = self
                .blr
                .iter()
                .map(|b| {
                    format!(
                        "{{\"rank\":{},\"dense_bytes\":{},\"lr_bytes\":{},\"lr_dense_equiv_bytes\":{},\"dense_blocks\":{},\"lr_blocks\":{}}}",
                        b.rank,
                        b.dense_bytes,
                        b.lr_bytes,
                        b.lr_dense_equiv_bytes,
                        b.dense_blocks,
                        b.lr_blocks
                    )
                })
                .collect();
            s.push_str(&format!("\"blr\":[\n{}\n],\n", rows.join(",\n")));
        }
        // Spans.
        let spans: Vec<String> = self.spans.iter().map(span_to_json).collect();
        s.push_str(&format!("\"spans\":[\n{}\n]\n}}\n", spans.join(",\n")));
        s
    }

    /// Parse a document produced by [`Profile::to_json`].
    pub fn from_json(text: &str) -> Result<Profile, String> {
        let doc = json::parse(text).map_err(|e| e.to_string())?;
        let schema = doc
            .get("schema")
            .and_then(|v| v.as_str())
            .ok_or("missing schema")?;
        if schema != SCHEMA {
            return Err(format!("unsupported schema '{schema}' (want {SCHEMA})"));
        }
        let engine = doc
            .get("engine")
            .and_then(|v| v.as_str())
            .unwrap_or("unknown")
            .to_string();
        let n_ranks = doc
            .get("n_ranks")
            .and_then(|v| v.as_u64())
            .ok_or("missing n_ranks")? as usize;
        let makespan = doc
            .get("makespan")
            .and_then(|v| v.as_f64())
            .ok_or("missing makespan")?;
        let cp = doc.get("critical_path").ok_or("missing critical_path")?;
        let crit_len = cp
            .get("length")
            .and_then(|v| v.as_f64())
            .ok_or("missing critical_path.length")?;
        let crit_by_cat = cp
            .get("by_cat")
            .and_then(|v| v.as_array())
            .unwrap_or(&[])
            .iter()
            .filter_map(|pair| {
                let items = pair.as_array()?;
                let cat = TraceCat::parse(items.first()?.as_str()?)?;
                Some((cat, items.get(1)?.as_f64()?))
            })
            .collect();
        let crit = cp
            .get("tasks")
            .and_then(|v| v.as_array())
            .unwrap_or(&[])
            .iter()
            .filter_map(|t| {
                Some(CritTask {
                    name: t.get("name")?.as_str()?.to_string(),
                    rank: t.get("rank")?.as_u64()? as usize,
                    cat: TraceCat::parse(t.get("cat")?.as_str()?)?,
                    start: t.get("start")?.as_f64()?,
                    dur: t.get("dur")?.as_f64()?,
                    edge: CritEdge::parse(t.get("edge")?.as_str()?)?,
                })
            })
            .collect();
        let ranks = doc
            .get("ranks")
            .and_then(|v| v.as_array())
            .unwrap_or(&[])
            .iter()
            .filter_map(|r| {
                Some(RankBreakdown {
                    rank: r.get("rank")?.as_u64()? as usize,
                    busy: r.get("busy")?.as_f64()?,
                    overhead: r.get("overhead")?.as_f64()?,
                    dep_wait: r.get("dep_wait")?.as_f64()?,
                    fetch_wait: r.get("fetch_wait")?.as_f64()?,
                    idle: r.get("idle")?.as_f64()?,
                    tasks: r.get("tasks")?.as_u64()? as usize,
                    peak_rtq: r.get("peak_rtq")?.as_u64()? as u32,
                    peak_bytes: r.get("peak_bytes")?.as_u64()?,
                })
            })
            .collect();
        let comm = match doc.get("comm") {
            Some(c) => CommMatrix {
                n: c.get("n").and_then(|v| v.as_u64()).unwrap_or(0) as usize,
                bytes: u64s(c.get("bytes")),
                msgs: u64s(c.get("msgs")),
            },
            None => CommMatrix::default(),
        };
        let blr = doc
            .get("blr")
            .and_then(|v| v.as_array())
            .unwrap_or(&[])
            .iter()
            .filter_map(|b| {
                Some(BlrRank {
                    rank: b.get("rank")?.as_u64()? as usize,
                    dense_bytes: b.get("dense_bytes")?.as_u64()?,
                    lr_bytes: b.get("lr_bytes")?.as_u64()?,
                    lr_dense_equiv_bytes: b.get("lr_dense_equiv_bytes")?.as_u64()?,
                    dense_blocks: b.get("dense_blocks")?.as_u64()?,
                    lr_blocks: b.get("lr_blocks")?.as_u64()?,
                })
            })
            .collect();
        let spans = doc
            .get("spans")
            .and_then(|v| v.as_array())
            .unwrap_or(&[])
            .iter()
            .filter_map(span_from_json)
            .collect();
        Ok(Profile {
            engine,
            n_ranks,
            makespan,
            crit,
            crit_len,
            crit_by_cat,
            ranks,
            comm,
            blr,
            spans,
        })
    }
}

fn u64s(v: Option<&JsonValue>) -> Vec<u64> {
    v.and_then(|v| v.as_array())
        .unwrap_or(&[])
        .iter()
        .filter_map(|x| x.as_u64())
        .collect()
}

fn span_to_json(e: &TraceEvent) -> String {
    let mut s = format!(
        "{{\"rank\":{},\"name\":\"{}\",\"cat\":\"{}\",\"kind\":\"{}\",\"start\":{},\"dur\":{},\"kernel\":{},\"overhead\":{},\"ready\":{}",
        e.rank,
        json_escape(&e.name),
        e.cat.label(),
        e.kind.label(),
        num(e.start),
        num(e.dur),
        num(e.kernel),
        num(e.overhead),
        num(e.ready_at)
    );
    if let Some(p) = &e.pred {
        s.push_str(&format!(",\"pred\":\"{}\"", json_escape(p)));
    }
    if let Some(p) = e.peer {
        s.push_str(&format!(",\"peer\":{p}"));
    }
    if e.bytes > 0 {
        s.push_str(&format!(",\"bytes\":{}", e.bytes));
    }
    if e.rtq_depth > 0 {
        s.push_str(&format!(",\"rtq\":{}", e.rtq_depth));
    }
    s.push('}');
    s
}

fn span_from_json(v: &JsonValue) -> Option<TraceEvent> {
    Some(TraceEvent {
        rank: v.get("rank")?.as_u64()? as usize,
        name: v.get("name")?.as_str()?.to_string(),
        cat: TraceCat::parse(v.get("cat")?.as_str()?)?,
        kind: SpanKind::parse(v.get("kind")?.as_str()?)?,
        start: v.get("start")?.as_f64()?,
        dur: v.get("dur")?.as_f64()?,
        kernel: v.get("kernel")?.as_f64()?,
        overhead: v.get("overhead")?.as_f64()?,
        ready_at: v.get("ready")?.as_f64()?,
        pred: v.get("pred").and_then(|p| p.as_str()).map(str::to_string),
        peer: v.get("peer").and_then(|p| p.as_u64()).map(|p| p as usize),
        bytes: v.get("bytes").and_then(|b| b.as_u64()).unwrap_or(0),
        rtq_depth: v.get("rtq").and_then(|b| b.as_u64()).unwrap_or(0) as u32,
    })
}

// ---------------------------------------------------------------------------
// Text report + diff
// ---------------------------------------------------------------------------

/// Human-scale time formatting.
fn fmt_time(secs: f64) -> String {
    let a = secs.abs();
    if a >= 1.0 {
        format!("{secs:.3} s")
    } else if a >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else {
        format!("{:.2} us", secs * 1e6)
    }
}

/// Human-scale byte formatting.
fn fmt_bytes(b: u64) -> String {
    let b = b as f64;
    if b >= 1e9 {
        format!("{:.2} GB", b / 1e9)
    } else if b >= 1e6 {
        format!("{:.2} MB", b / 1e6)
    } else if b >= 1e3 {
        format!("{:.1} KB", b / 1e3)
    } else {
        format!("{b:.0} B")
    }
}

fn pct(part: f64, whole: f64) -> f64 {
    if whole > 0.0 {
        100.0 * part / whole
    } else {
        0.0
    }
}

impl Profile {
    /// Render the text report: headline, critical path (top-k tasks by
    /// duration), per-rank wait attribution, imbalance and comm hotspots.
    pub fn render_report(&self, top_k: usize) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "== sympack profile: engine={} ranks={} ==\n",
            self.engine, self.n_ranks
        ));
        s.push_str(&format!(
            "makespan {}   critical path {} ({:.1}% of makespan, {} tasks)\n",
            fmt_time(self.makespan),
            fmt_time(self.crit_len),
            pct(self.crit_len, self.makespan),
            self.crit.len()
        ));
        if self.crit_len > 0.0 {
            let by_cat: Vec<String> = self
                .crit_by_cat
                .iter()
                .map(|(c, secs)| format!("{} {:.1}%", c.label(), pct(*secs, self.crit_len)))
                .collect();
            s.push_str(&format!(
                "critical path by category: {}\n",
                by_cat.join("  ")
            ));
        }

        s.push_str(&format!(
            "\ntop {} critical-path tasks by duration:\n",
            top_k
        ));
        let mut by_dur: Vec<&CritTask> = self.crit.iter().collect();
        by_dur.sort_by(|a, b| b.dur.total_cmp(&a.dur));
        for t in by_dur.iter().take(top_k) {
            s.push_str(&format!(
                "  rank {:<3} {:<16} {:<6} {:>12}  ({:.1}% of path)  [{}]\n",
                t.rank,
                t.name,
                t.cat.label(),
                fmt_time(t.dur),
                pct(t.dur, self.crit_len),
                t.edge.label()
            ));
        }

        s.push_str(
            "\nper-rank time attribution (% of makespan):\n\
             rank     busy overhead dep-wait fetch-wait   idle  tasks  rtq-peak   mem-peak\n",
        );
        for r in &self.ranks {
            s.push_str(&format!(
                "{:>4} {:>7.1}% {:>7.1}% {:>7.1}% {:>9.1}% {:>5.1}% {:>6} {:>9} {:>10}\n",
                r.rank,
                pct(r.busy, self.makespan),
                pct(r.overhead, self.makespan),
                pct(r.dep_wait, self.makespan),
                pct(r.fetch_wait, self.makespan),
                pct(r.idle, self.makespan),
                r.tasks,
                r.peak_rtq,
                fmt_bytes(r.peak_bytes)
            ));
        }
        let busies: Vec<f64> = self.ranks.iter().map(|r| r.busy).collect();
        if !busies.is_empty() {
            let max = busies.iter().cloned().fold(0.0f64, f64::max);
            let mean = busies.iter().sum::<f64>() / busies.len() as f64;
            if mean > 0.0 {
                s.push_str(&format!(
                    "imbalance: max busy / mean busy = {:.2}\n",
                    max / mean
                ));
            }
        }

        s.push_str(&format!(
            "\ncomm matrix: {} total in {} messages\n",
            fmt_bytes(self.comm.total_bytes()),
            self.comm.total_msgs()
        ));
        if self.comm.n > 0 && self.comm.n <= 16 {
            s.push_str("bytes src→dst:\n        ");
            for d in 0..self.comm.n {
                s.push_str(&format!("{:>10}", format!("d{d}")));
            }
            s.push('\n');
            for src in 0..self.comm.n {
                s.push_str(&format!("  s{src:<4} "));
                for dst in 0..self.comm.n {
                    s.push_str(&format!(
                        "{:>10}",
                        fmt_bytes(self.comm.bytes_between(src, dst))
                    ));
                }
                s.push('\n');
            }
        }
        let hot = self.comm.top_pairs(3);
        if !hot.is_empty() {
            s.push_str("hottest pairs: ");
            let items: Vec<String> = hot
                .iter()
                .map(|(src, dst, b, m)| format!("r{src}→r{dst} {} ({m} msgs)", fmt_bytes(*b)))
                .collect();
            s.push_str(&items.join("  "));
            s.push('\n');
        }

        // BLR compression summary (only present for compressed runs).
        if !self.blr.is_empty() {
            s.push_str(
                "\nblock publications (dense vs low-rank):\n\
                 rank  dense-blocks  lr-blocks  dense-bytes     lr-bytes  dense-equiv  ratio\n",
            );
            let mut tot = BlrRank::default();
            for b in &self.blr {
                let ratio = b.dense_equiv() as f64 / b.published().max(1) as f64;
                s.push_str(&format!(
                    "{:>4} {:>13} {:>10} {:>12} {:>12} {:>12} {:>5.2}x\n",
                    b.rank,
                    b.dense_blocks,
                    b.lr_blocks,
                    fmt_bytes(b.dense_bytes),
                    fmt_bytes(b.lr_bytes),
                    fmt_bytes(b.dense_equiv()),
                    ratio
                ));
                tot.dense_bytes += b.dense_bytes;
                tot.lr_bytes += b.lr_bytes;
                tot.lr_dense_equiv_bytes += b.lr_dense_equiv_bytes;
                tot.dense_blocks += b.dense_blocks;
                tot.lr_blocks += b.lr_blocks;
            }
            s.push_str(&format!(
                "total published {} vs {} dense-equivalent: {:.2}x compression\n",
                fmt_bytes(tot.published()),
                fmt_bytes(tot.dense_equiv()),
                tot.dense_equiv() as f64 / tot.published().max(1) as f64
            ));
        }

        // Serving workloads: attribute request latency to tenants, not just
        // ranks. Request spans are named `{tenant}/job-{id}` (the fleet
        // layer) with `kernel` carrying the service portion, so the
        // remainder of each span is queue/scheduling wait charged to the
        // tenant that suffered it.
        #[derive(Default)]
        struct TenantAgg {
            latencies: Vec<f64>,
            service: f64,
            wait: f64,
        }
        let mut tenants: BTreeMap<&str, TenantAgg> = BTreeMap::new();
        for e in self.spans.iter().filter(|e| e.kind == SpanKind::Request) {
            let tenant = e.name.split_once('/').map_or("-", |(t, _)| t);
            let agg = tenants.entry(tenant).or_default();
            agg.latencies.push(e.dur);
            agg.service += e.kernel;
            agg.wait += (e.dur - e.kernel).max(0.0);
        }
        if !tenants.is_empty() {
            let quantile = |sorted: &[f64], q: f64| -> f64 {
                let idx = (q * (sorted.len() - 1) as f64).round() as usize;
                sorted[idx]
            };
            s.push_str(
                "\nper-tenant requests (latency = completion − arrival, \
                 wait = latency − service):\n\
                 tenant           reqs      p50-lat      p99-lat      service         wait\n",
            );
            for (tenant, agg) in &tenants {
                let mut lat = agg.latencies.clone();
                lat.sort_by(f64::total_cmp);
                s.push_str(&format!(
                    "{:<14} {:>6} {:>12} {:>12} {:>12} {:>12}\n",
                    tenant,
                    lat.len(),
                    fmt_time(quantile(&lat, 0.50)),
                    fmt_time(quantile(&lat, 0.99)),
                    fmt_time(agg.service),
                    fmt_time(agg.wait),
                ));
            }
        }
        s
    }
}

/// Regression thresholds for [`diff`], in percent growth.
#[derive(Debug, Clone, Copy)]
pub struct DiffThresholds {
    /// Allowed makespan growth (%) before the diff counts as a regression.
    pub makespan_pct: f64,
    /// Allowed critical-path growth (%).
    pub crit_pct: f64,
    /// Allowed published-byte growth (%) — gated only when both profiles
    /// carry BLR publication accounting, so dense-vs-dense diffs are
    /// unaffected.
    pub published_pct: f64,
}

impl Default for DiffThresholds {
    fn default() -> Self {
        DiffThresholds {
            makespan_pct: 5.0,
            crit_pct: 5.0,
            published_pct: 10.0,
        }
    }
}

/// Result of comparing two profiles.
#[derive(Debug, Clone)]
pub struct ProfileDiff {
    /// Rendered comparison table.
    pub report: String,
    /// True when makespan or critical-path growth exceeded its threshold.
    pub regressed: bool,
}

fn growth_pct(old: f64, new: f64) -> f64 {
    if old > 0.0 {
        100.0 * (new - old) / old
    } else {
        0.0
    }
}

/// Compare two profiles; `new` regresses when its makespan or critical
/// path grew beyond the thresholds relative to `old`.
pub fn diff(old: &Profile, new: &Profile, thr: &DiffThresholds) -> ProfileDiff {
    let mut s = String::new();
    let mut regressed = false;
    s.push_str(&format!(
        "profile diff: {} ({} ranks) → {} ({} ranks)\n",
        old.engine, old.n_ranks, new.engine, new.n_ranks
    ));
    let mut line = |label: &str, o: f64, n: f64, thr_pct: Option<f64>| {
        let g = growth_pct(o, n);
        let mut row = format!(
            "  {:<14} {:>12} → {:<12} ({:+.2}%)",
            label,
            fmt_time(o),
            fmt_time(n),
            g
        );
        if let Some(t) = thr_pct {
            if g > t {
                row.push_str(&format!("  REGRESSED (> {t:.1}%)"));
                regressed = true;
            }
        }
        row.push('\n');
        s.push_str(&row);
    };
    line(
        "makespan",
        old.makespan,
        new.makespan,
        Some(thr.makespan_pct),
    );
    line(
        "critical path",
        old.crit_len,
        new.crit_len,
        Some(thr.crit_pct),
    );
    let mean_busy = |p: &Profile| {
        if p.ranks.is_empty() {
            0.0
        } else {
            p.ranks.iter().map(|r| r.busy).sum::<f64>() / p.ranks.len() as f64
        }
    };
    line("mean busy", mean_busy(old), mean_busy(new), None);
    s.push_str(&format!(
        "  {:<14} {:>12} → {:<12} ({:+.2}%)\n",
        "comm bytes",
        fmt_bytes(old.comm.total_bytes()),
        fmt_bytes(new.comm.total_bytes()),
        growth_pct(old.comm.total_bytes() as f64, new.comm.total_bytes() as f64)
    ));
    // Published-byte gate: compare BLR publication accounting when both
    // runs recorded it (compressed runs). A compression regression shows
    // up as published-byte growth even when the makespan holds steady.
    if !old.blr.is_empty() && !new.blr.is_empty() {
        let pub_of = |p: &Profile| p.blr.iter().map(|b| b.published()).sum::<u64>() as f64;
        let ratio_of = |p: &Profile| {
            let de: u64 = p.blr.iter().map(|b| b.dense_equiv()).sum();
            let pb: u64 = p.blr.iter().map(|b| b.published()).sum();
            de as f64 / pb.max(1) as f64
        };
        let (po, pn) = (pub_of(old), pub_of(new));
        let g = growth_pct(po, pn);
        let mut row = format!(
            "  {:<14} {:>12} → {:<12} ({:+.2}%)  compression {:.2}x → {:.2}x",
            "published",
            fmt_bytes(po as u64),
            fmt_bytes(pn as u64),
            g,
            ratio_of(old),
            ratio_of(new)
        );
        if g > thr.published_pct {
            row.push_str(&format!("  REGRESSED (> {:.1}%)", thr.published_pct));
            regressed = true;
        }
        row.push('\n');
        s.push_str(&row);
    }
    s.push_str(if regressed {
        "verdict: REGRESSION past threshold\n"
    } else {
        "verdict: within thresholds\n"
    });
    ProfileDiff {
        report: s,
        regressed,
    }
}

/// Assert the profile's structural invariants; returns an error string
/// naming the first violation. Used by tests and by `sympack-prof report`.
pub fn check_invariants(p: &Profile) -> Result<(), String> {
    let tol = 1e-9 * p.makespan.abs() + 1e-9;
    if p.crit_len > p.makespan + tol {
        return Err(format!(
            "critical path {} exceeds makespan {}",
            p.crit_len, p.makespan
        ));
    }
    // Path intervals must be non-overlapping and in time order.
    for w in p.crit.windows(2) {
        if w[1].start + tol < w[0].start + w[0].dur {
            return Err(format!(
                "critical path overlaps: {} ends {} after {} starts {}",
                w[0].name,
                w[0].start + w[0].dur,
                w[1].name,
                w[1].start
            ));
        }
    }
    for r in &p.ranks {
        let total = r.total();
        if (total - p.makespan).abs() > tol.max(1e-9 * total.abs()) {
            return Err(format!(
                "rank {} time identity broken: busy+overhead+waits+idle = {} vs makespan {}",
                r.rank, total, p.makespan
            ));
        }
        if r.busy < -tol
            || r.overhead < -tol
            || r.dep_wait < -tol
            || r.fetch_wait < -tol
            || r.idle < -tol
        {
            return Err(format!("rank {} has a negative time class", r.rank));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(
        rank: usize,
        name: &str,
        start: f64,
        dur: f64,
        ready: f64,
        pred: Option<&str>,
    ) -> TraceEvent {
        let mut e = TraceEvent::basic(rank, name.to_string(), TraceCat::Gemm, start, dur);
        e.ready_at = ready;
        e.pred = pred.map(str::to_string);
        e
    }

    /// Chain a(0..1) on r0 → b(1..2) on r1 → c(2..3) on r0: the path must
    /// recover all three via dep edges.
    #[test]
    fn critical_path_follows_dep_chain() {
        let events = vec![
            ev(0, "a", 0.0, 1.0, 0.0, None),
            ev(1, "b", 1.0, 1.0, 1.0, Some("a")),
            ev(0, "c", 2.0, 1.0, 2.0, Some("b")),
        ];
        let p = Profile::build("test", &events, 3.0, 2, CommMatrix::empty(2));
        let names: Vec<&str> = p.crit.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
        assert_eq!(p.crit[1].edge, CritEdge::Dep);
        assert!((p.crit_len - 3.0).abs() < 1e-12);
        check_invariants(&p).unwrap();
    }

    /// A task ready at t=0 but run second (rank busy) must produce a
    /// resource edge to the task that occupied the rank.
    #[test]
    fn critical_path_takes_resource_edge() {
        let events = vec![
            ev(0, "first", 0.0, 2.0, 0.0, None),
            ev(0, "second", 2.0, 1.0, 0.0, None),
        ];
        let p = Profile::build("test", &events, 3.0, 1, CommMatrix::empty(1));
        let names: Vec<&str> = p.crit.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names, vec!["first", "second"]);
        assert_eq!(p.crit[1].edge, CritEdge::Resource);
        check_invariants(&p).unwrap();
    }

    #[test]
    fn rank_identity_classifies_gaps() {
        // r0: task at [0,1] (ready 0), comm span [1,1.5], task at [2,3]
        // ready at 1.8 → gap [1,2] = fetch 0.5 + dep 0.3 + idle 0.2.
        let mut comm = TraceEvent::basic(0, "rget".into(), TraceCat::Comm, 1.0, 0.5);
        comm.kind = SpanKind::Rget;
        let events = vec![
            ev(0, "a", 0.0, 1.0, 0.0, None),
            comm,
            ev(0, "b", 2.0, 1.0, 1.8, Some("a")),
        ];
        let p = Profile::build("test", &events, 3.0, 1, CommMatrix::empty(1));
        let r = &p.ranks[0];
        assert!((r.fetch_wait - 0.5).abs() < 1e-12, "fetch {}", r.fetch_wait);
        assert!((r.dep_wait - 0.3).abs() < 1e-12, "dep {}", r.dep_wait);
        assert!((r.idle - 0.2).abs() < 1e-12, "idle {}", r.idle);
        assert!((r.busy - 2.0).abs() < 1e-12);
        check_invariants(&p).unwrap();
    }

    #[test]
    fn json_roundtrip_preserves_profile() {
        let mut e = ev(0, "weird\"name\\", 0.0, 1.0, 0.0, Some("p\"q"));
        e.bytes = 42;
        e.peer = Some(3);
        let events = vec![e, ev(1, "b", 1.0, 0.5, 1.0, None)];
        let mut comm = CommMatrix::empty(2);
        comm.bytes[1] = 100; // 0→1
        comm.msgs[1] = 2;
        let p = Profile::build("fanout", &events, 1.5, 2, comm);
        let q = Profile::from_json(&p.to_json()).unwrap();
        assert_eq!(q.engine, p.engine);
        assert_eq!(q.n_ranks, p.n_ranks);
        assert_eq!(q.makespan, p.makespan);
        assert_eq!(q.crit_len, p.crit_len);
        assert_eq!(q.spans.len(), p.spans.len());
        assert_eq!(q.spans[0].name, p.spans[0].name);
        assert_eq!(q.spans[0].bytes, p.spans[0].bytes);
        assert_eq!(q.comm.bytes_between(0, 1), 100);
        assert_eq!(q.ranks.len(), 2);
        assert_eq!(q.ranks[0].tasks, 1);
        check_invariants(&q).unwrap();
    }

    #[test]
    fn diff_flags_makespan_regression() {
        let events = vec![ev(0, "a", 0.0, 1.0, 0.0, None)];
        let old = Profile::build("t", &events, 1.0, 1, CommMatrix::empty(1));
        let mut new = old.clone();
        new.makespan *= 1.2;
        let d = diff(&old, &new, &DiffThresholds::default());
        assert!(d.regressed, "{}", d.report);
        let d2 = diff(&old, &old, &DiffThresholds::default());
        assert!(!d2.regressed, "{}", d2.report);
    }

    #[test]
    fn report_contains_sections() {
        let events = vec![
            ev(0, "a", 0.0, 1.0, 0.0, None),
            ev(1, "b", 1.0, 1.0, 1.0, Some("a")),
        ];
        let mut comm = CommMatrix::empty(2);
        comm.bytes[1] = 512;
        comm.msgs[1] = 1;
        let p = Profile::build("fanout", &events, 2.0, 2, comm);
        let rep = p.render_report(5);
        assert!(rep.contains("critical path"), "{rep}");
        assert!(rep.contains("per-rank time attribution"), "{rep}");
        assert!(rep.contains("comm matrix"), "{rep}");
        assert!(rep.contains("r0→r1"), "{rep}");
    }

    #[test]
    fn report_breaks_requests_down_by_tenant() {
        // Two tenants' request spans plus one background exec span: the
        // per-tenant section must appear, group by the name prefix, and
        // split latency into service (kernel) vs wait (the remainder).
        let mut alice0 = TraceEvent::basic(0, "alice/job-0".into(), TraceCat::Solve, 0.0, 2.0);
        alice0.kind = SpanKind::Request;
        alice0.kernel = 0.5; // 1.5 of wait
        let mut alice1 = TraceEvent::basic(0, "alice/job-1".into(), TraceCat::Solve, 1.0, 4.0);
        alice1.kind = SpanKind::Request;
        alice1.kernel = 1.0;
        let mut bob = TraceEvent::basic(1, "bob/job-0".into(), TraceCat::Solve, 0.0, 1.0);
        bob.kind = SpanKind::Request;
        bob.kernel = 1.0; // pure service, no wait
        let events = vec![alice0, alice1, bob, ev(0, "a", 0.0, 1.0, 0.0, None)];
        let p = Profile::build("fleet", &events, 5.0, 2, CommMatrix::empty(2));
        let rep = p.render_report(5);
        assert!(rep.contains("per-tenant requests"), "{rep}");
        // BTreeMap ordering: alice before bob, one row each.
        let alice_at = rep.find("alice").unwrap();
        let bob_at = rep.find("bob").unwrap();
        assert!(alice_at < bob_at, "{rep}");
        let alice_row = rep.lines().find(|l| l.starts_with("alice")).unwrap();
        // 2 requests, p50 = p99 = 4s (nearest rank over [2,4] rounds up),
        // service 0.5+1.0, wait 1.5+3.0.
        assert!(alice_row.contains(" 2 "), "{alice_row}");
        assert!(alice_row.contains("4.000 s"), "{alice_row}");
        assert!(alice_row.contains("1.500 s"), "{alice_row}");
        assert!(alice_row.contains("4.500 s"), "{alice_row}");
        let bob_row = rep.lines().find(|l| l.starts_with("bob")).unwrap();
        assert!(bob_row.contains("0.00 us"), "zero wait: {bob_row}");
        // A profile with no request spans keeps the section out entirely.
        let plain = Profile::build(
            "fanout",
            &[ev(0, "a", 0.0, 1.0, 0.0, None)],
            1.0,
            1,
            CommMatrix::empty(1),
        );
        assert!(!plain.render_report(5).contains("per-tenant requests"));
    }

    #[test]
    fn blr_section_roundtrips_and_renders() {
        let events = vec![ev(0, "a", 0.0, 1.0, 0.0, None)];
        let mut p = Profile::build("fanout", &events, 1.0, 2, CommMatrix::empty(2));
        // Dense runs leave the section out entirely: the document must be
        // byte-identical to the pre-BLR schema and the report silent.
        assert!(!p.to_json().contains("\"blr\""));
        assert!(!p.render_report(5).contains("block publications"));
        p.blr = vec![
            BlrRank {
                rank: 0,
                dense_bytes: 8_000,
                lr_bytes: 2_000,
                lr_dense_equiv_bytes: 10_000,
                dense_blocks: 4,
                lr_blocks: 6,
            },
            BlrRank {
                rank: 1,
                dense_bytes: 1_000,
                lr_bytes: 0,
                lr_dense_equiv_bytes: 0,
                dense_blocks: 2,
                lr_blocks: 0,
            },
        ];
        let q = Profile::from_json(&p.to_json()).unwrap();
        assert_eq!(q.blr, p.blr);
        let rep = p.render_report(5);
        assert!(rep.contains("block publications"), "{rep}");
        // total published 11 KB vs 19 KB dense-equivalent → 1.73x.
        assert!(rep.contains("1.73x compression"), "{rep}");
    }

    #[test]
    fn diff_gates_published_bytes() {
        let events = vec![ev(0, "a", 0.0, 1.0, 0.0, None)];
        let mut old = Profile::build("t", &events, 1.0, 1, CommMatrix::empty(1));
        old.blr = vec![BlrRank {
            rank: 0,
            dense_bytes: 1_000,
            lr_bytes: 1_000,
            lr_dense_equiv_bytes: 5_000,
            dense_blocks: 1,
            lr_blocks: 1,
        }];
        let mut new = old.clone();
        // Compression got worse: same makespan, 50% more published bytes.
        new.blr[0].lr_bytes = 2_000;
        let d = diff(&old, &new, &DiffThresholds::default());
        assert!(d.regressed, "{}", d.report);
        assert!(d.report.contains("published"), "{}", d.report);
        let same = diff(&old, &old, &DiffThresholds::default());
        assert!(!same.regressed, "{}", same.report);
        // Profiles without the section (dense runs) are never gated on it.
        let plain = Profile::build("t", &events, 1.0, 1, CommMatrix::empty(1));
        let d2 = diff(&plain, &plain, &DiffThresholds::default());
        assert!(!d2.report.contains("published"), "{}", d2.report);
    }

    #[test]
    fn empty_profile_is_well_formed() {
        let p = Profile::build("t", &[], 0.0, 2, CommMatrix::empty(2));
        assert!(p.crit.is_empty());
        assert_eq!(p.crit_len, 0.0);
        check_invariants(&p).unwrap();
        let q = Profile::from_json(&p.to_json()).unwrap();
        assert_eq!(q.n_ranks, 2);
    }
}
