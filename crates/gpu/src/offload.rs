//! The offload heuristic: where should a kernel run?
//!
//! Paper §4.2: "a simple heuristic based on buffer size … each operation has
//! a different size threshold … thresholds have default values that were
//! determined via a simple brute-force manual tuning effort, but … symPACK
//! also allows the user to specify each threshold manually."

use crate::Op;

/// Where a kernel executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Loc {
    /// Host CPU.
    Cpu,
    /// The simulated GPU.
    Gpu,
}

/// What to do when a device allocation fails (paper §4.2 "fallback options").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OomPolicy {
    /// Perform the computation on the CPU instead (default behavior).
    CpuFallback,
    /// Abort the factorization with an error so the user can rerun with a
    /// larger per-process device quota.
    Abort,
}

/// Per-operation element-count thresholds: a kernel is offloaded when the
/// total number of matrix elements it touches reaches the threshold.
#[derive(Debug, Clone)]
pub struct OffloadThresholds {
    /// Minimum elements (n²) of a diagonal block for GPU POTRF.
    pub potrf: usize,
    /// Minimum elements (panel m·n + diag n²) for GPU TRSM.
    pub trsm: usize,
    /// Minimum elements (n·k input + n² output) for GPU SYRK.
    pub syrk: usize,
    /// Minimum elements (m·k + n·k + m·n) for GPU GEMM.
    pub gemm: usize,
}

impl Default for OffloadThresholds {
    fn default() -> Self {
        // Defaults hand-tuned against CostModel::default(), mirroring the
        // paper's brute-force tuning: GEMM/SYRK amortize launches soonest,
        // TRSM later, POTRF last.
        OffloadThresholds {
            potrf: 112 * 112,
            trsm: 96 * 96,
            syrk: 64 * 64,
            gemm: 48 * 48,
        }
    }
}

impl OffloadThresholds {
    /// Thresholds that keep every kernel on the CPU (GPU mode off).
    pub fn cpu_only() -> Self {
        OffloadThresholds {
            potrf: usize::MAX,
            trsm: usize::MAX,
            syrk: usize::MAX,
            gemm: usize::MAX,
        }
    }

    /// Thresholds that push every kernel to the GPU (a deliberately bad
    /// "GPU-only" configuration; the ablation bench shows why the paper's
    /// hybrid beats it).
    pub fn gpu_always() -> Self {
        OffloadThresholds {
            potrf: 0,
            trsm: 0,
            syrk: 0,
            gemm: 0,
        }
    }

    /// The threshold for `op`.
    pub fn for_op(&self, op: Op) -> usize {
        match op {
            Op::Potrf => self.potrf,
            Op::Trsm => self.trsm,
            Op::Syrk => self.syrk,
            Op::Gemm => self.gemm,
        }
    }

    /// Decide placement from the total element count a kernel touches.
    pub fn place(&self, op: Op, elements: usize) -> Loc {
        if elements >= self.for_op(op) {
            Loc::Gpu
        } else {
            Loc::Cpu
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_routes_small_to_cpu_large_to_gpu() {
        let t = OffloadThresholds::default();
        assert_eq!(t.place(Op::Gemm, 10), Loc::Cpu);
        assert_eq!(t.place(Op::Gemm, 1_000_000), Loc::Gpu);
        assert_eq!(t.place(Op::Potrf, 100 * 100), Loc::Cpu);
        assert_eq!(t.place(Op::Potrf, 150 * 150), Loc::Gpu);
    }

    #[test]
    fn cpu_only_never_offloads() {
        let t = OffloadThresholds::cpu_only();
        for op in Op::ALL {
            assert_eq!(t.place(op, usize::MAX - 1), Loc::Cpu);
        }
    }

    #[test]
    fn gpu_always_always_offloads() {
        let t = OffloadThresholds::gpu_always();
        for op in Op::ALL {
            assert_eq!(t.place(op, 0), Loc::Gpu);
        }
    }

    #[test]
    fn per_op_thresholds_are_ordered_like_the_crossovers() {
        // POTRF needs the biggest blocks, GEMM the smallest.
        let t = OffloadThresholds::default();
        assert!(t.potrf > t.trsm);
        assert!(t.trsm > t.syrk);
        assert!(t.syrk >= t.gemm);
    }
}
