//! Kernel execution-time model.
//!
//! Times follow `T = overhead + flops / rate`, with per-operation rates:
//! GEMM runs closest to peak on both architectures; TRSM and POTRF have
//! lower arithmetic intensity and more serialization, hence lower sustained
//! rates — this per-op difference is exactly why the paper needs *separate*
//! offload thresholds per operation (§4.2).

use crate::Op;

/// Calibrated rates (flops/second) and overheads (seconds).
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Sustained CPU rates per op for one flat-MPI rank (one Milan core).
    pub cpu_gemm: f64,
    pub cpu_syrk: f64,
    pub cpu_trsm: f64,
    pub cpu_potrf: f64,
    /// Sustained GPU rates per op (A100-class fp64).
    pub gpu_gemm: f64,
    pub gpu_syrk: f64,
    pub gpu_trsm: f64,
    pub gpu_potrf: f64,
    /// Fixed cost of launching + synchronizing one GPU kernel.
    pub kernel_launch: f64,
    /// Fixed per-call CPU (BLAS dispatch) overhead.
    pub cpu_call: f64,
    /// Sustained per-rank memory bandwidth (bytes/second). Feeds the
    /// roofline term of [`CostModel::cpu_task_time`]: low-intensity tasks
    /// (small blocks streamed from DRAM) are bandwidth-bound, not
    /// flop-bound, and a pure `flops / rate` estimate undercosts them.
    pub mem_bandwidth: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            cpu_gemm: 8.0e9,
            cpu_syrk: 7.0e9,
            cpu_trsm: 5.0e9,
            cpu_potrf: 3.5e9,
            gpu_gemm: 5.0e12,
            gpu_syrk: 3.5e12,
            gpu_trsm: 1.2e12,
            gpu_potrf: 0.6e12,
            kernel_launch: 10.0e-6,
            cpu_call: 0.3e-6,
            mem_bandwidth: 2.0e10,
        }
    }
}

impl CostModel {
    /// CPU execution time for `flops` of operation `op`.
    pub fn cpu_time(&self, op: Op, flops: u64) -> f64 {
        let rate = match op {
            Op::Gemm => self.cpu_gemm,
            Op::Syrk => self.cpu_syrk,
            Op::Trsm => self.cpu_trsm,
            Op::Potrf => self.cpu_potrf,
        };
        self.cpu_call + flops as f64 / rate
    }

    /// GPU execution time for `flops` of operation `op`, including launch
    /// and synchronization overhead. Small kernels also run below the
    /// asymptotic rate (not enough blocks to fill the SMs), modeled by a
    /// square-root efficiency ramp.
    ///
    /// Composite routines launch more than one kernel: cuSolver `potrf` is a
    /// blocked algorithm issuing a panel/TRSM/SYRK sequence (≈8 launches for
    /// the block sizes seen here), and `trsm` typically splits into a couple
    /// of sweeps — which is precisely why the paper needs *later* offload
    /// thresholds for those ops.
    pub fn gpu_time(&self, op: Op, flops: u64) -> f64 {
        let (rate, launches) = match op {
            Op::Gemm => (self.gpu_gemm, 1.0),
            Op::Syrk => (self.gpu_syrk, 1.0),
            Op::Trsm => (self.gpu_trsm, 2.0),
            Op::Potrf => (self.gpu_potrf, 8.0),
        };
        // Efficiency ramp: reaches ~70% at 100 Mflop, ~full rate at 1 Gflop.
        let f = flops as f64;
        let eff = (f / (f + 5.0e7)).max(0.02);
        self.kernel_launch * launches + f / (rate * eff)
    }

    /// Roofline CPU estimate for a whole task: `flops` of operation `op`
    /// touching `bytes` of operand/result memory. The task takes at least
    /// as long as its compute (`flops / rate`) and at least as long as its
    /// memory traffic (`bytes / mem_bandwidth`) — the max of the two, plus
    /// the fixed dispatch cost. For compute-bound shapes this reduces
    /// exactly to [`CostModel::cpu_time`]; for thin blocks the bandwidth
    /// term dominates and raises the estimate. Used by the scheduler's
    /// per-task cost estimates, not by the execution-time accounting (which
    /// keeps the legacy model so modeled makespans stay comparable).
    pub fn cpu_task_time(&self, op: Op, flops: u64, bytes: u64) -> f64 {
        let rate = match op {
            Op::Gemm => self.cpu_gemm,
            Op::Syrk => self.cpu_syrk,
            Op::Trsm => self.cpu_trsm,
            Op::Potrf => self.cpu_potrf,
        };
        let compute = flops as f64 / rate;
        let traffic = bytes as f64 / self.mem_bandwidth;
        self.cpu_call + compute.max(traffic)
    }

    /// Flop count at which the GPU starts beating the CPU for `op`
    /// (by bisection on the two time models; used to sanity-check and to
    /// derive default offload thresholds).
    pub fn crossover_flops(&self, op: Op) -> u64 {
        let (mut lo, mut hi) = (1u64, 1u64 << 40);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.gpu_time(op, mid) < self.cpu_time(op, mid) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_loses_small_wins_big() {
        let m = CostModel::default();
        for op in Op::ALL {
            let small = 10_000; // tiny kernel
            assert!(
                m.gpu_time(op, small) > m.cpu_time(op, small),
                "{op:?}: GPU should lose on tiny kernels"
            );
            let big = 10_000_000_000; // 10 Gflop
            assert!(
                m.gpu_time(op, big) < m.cpu_time(op, big),
                "{op:?}: GPU should win on huge kernels"
            );
        }
    }

    #[test]
    fn crossover_is_monotone_in_overhead() {
        let base = CostModel::default();
        let mut slow_launch = CostModel::default();
        slow_launch.kernel_launch *= 4.0;
        for op in Op::ALL {
            assert!(slow_launch.crossover_flops(op) > base.crossover_flops(op));
        }
    }

    #[test]
    fn crossover_brackets_decision() {
        let m = CostModel::default();
        for op in Op::ALL {
            let x = m.crossover_flops(op);
            assert!(m.gpu_time(op, x) <= m.cpu_time(op, x));
            if x > 1 {
                assert!(m.gpu_time(op, x - 1) > m.cpu_time(op, x - 1));
            }
        }
    }

    #[test]
    fn task_time_reduces_to_cpu_time_when_compute_bound() {
        let m = CostModel::default();
        // 1 Gflop over 1 KB: compute term dominates by orders of magnitude.
        let flops = 1_000_000_000;
        assert_eq!(
            m.cpu_task_time(Op::Gemm, flops, 1024),
            m.cpu_time(Op::Gemm, flops)
        );
    }

    #[test]
    fn task_time_is_bandwidth_bound_for_thin_blocks() {
        let m = CostModel::default();
        // 1 Kflop over 100 MB: the traffic term must dominate.
        let est = m.cpu_task_time(Op::Gemm, 1_000, 100_000_000);
        let flop_only = m.cpu_time(Op::Gemm, 1_000);
        assert!(
            est > 10.0 * flop_only,
            "est {est:e} vs flop-only {flop_only:e}"
        );
        let traffic = 100_000_000f64 / m.mem_bandwidth;
        assert!((est - (m.cpu_call + traffic)).abs() < 1e-12);
    }

    #[test]
    fn potrf_crosses_over_at_larger_blocks_than_gemm() {
        // Per-op thresholds exist because crossover happens at different
        // *block sizes* per op. Convert flop crossovers to the square-block
        // edge length n that generates them: POTRF (n³/3 flops on an n×n
        // buffer, poor GPU rate) needs a much larger block than GEMM
        // (2n³ flops over 3n² elements, near-peak GPU rate).
        let m = CostModel::default();
        let gemm_n = (m.crossover_flops(Op::Gemm) as f64 / 2.0).cbrt();
        let potrf_n = (m.crossover_flops(Op::Potrf) as f64 * 3.0).cbrt();
        assert!(
            potrf_n > gemm_n,
            "potrf block edge {potrf_n:.0} should exceed gemm's {gemm_n:.0}"
        );
    }
}
