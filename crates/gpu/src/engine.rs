//! The kernel engine: real math, modeled time, per-location call counts.

use crate::cost::CostModel;
use crate::offload::{Loc, OffloadThresholds};
use crate::Op;
use sympack_dense::{flops, ConfigError, KernelConfig, Mat};

/// CPU/GPU call counters per operation — the data behind the paper's Fig. 6.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    pub potrf_cpu: u64,
    pub potrf_gpu: u64,
    pub trsm_cpu: u64,
    pub trsm_gpu: u64,
    pub syrk_cpu: u64,
    pub syrk_gpu: u64,
    pub gemm_cpu: u64,
    pub gemm_gpu: u64,
}

impl OpCounts {
    /// `(cpu, gpu)` counts for `op`.
    pub fn get(&self, op: Op) -> (u64, u64) {
        match op {
            Op::Potrf => (self.potrf_cpu, self.potrf_gpu),
            Op::Trsm => (self.trsm_cpu, self.trsm_gpu),
            Op::Syrk => (self.syrk_cpu, self.syrk_gpu),
            Op::Gemm => (self.gemm_cpu, self.gemm_gpu),
        }
    }

    fn bump(&mut self, op: Op, loc: Loc) {
        let slot = match (op, loc) {
            (Op::Potrf, Loc::Cpu) => &mut self.potrf_cpu,
            (Op::Potrf, Loc::Gpu) => &mut self.potrf_gpu,
            (Op::Trsm, Loc::Cpu) => &mut self.trsm_cpu,
            (Op::Trsm, Loc::Gpu) => &mut self.trsm_gpu,
            (Op::Syrk, Loc::Cpu) => &mut self.syrk_cpu,
            (Op::Syrk, Loc::Gpu) => &mut self.syrk_gpu,
            (Op::Gemm, Loc::Cpu) => &mut self.gemm_cpu,
            (Op::Gemm, Loc::Gpu) => &mut self.gemm_gpu,
        };
        *slot += 1;
    }

    /// Merge another counter set into this one (rank aggregation).
    pub fn merge(&mut self, other: &OpCounts) {
        self.potrf_cpu += other.potrf_cpu;
        self.potrf_gpu += other.potrf_gpu;
        self.trsm_cpu += other.trsm_cpu;
        self.trsm_gpu += other.trsm_gpu;
        self.syrk_cpu += other.syrk_cpu;
        self.syrk_gpu += other.syrk_gpu;
        self.gemm_cpu += other.gemm_cpu;
        self.gemm_gpu += other.gemm_gpu;
    }

    /// Total calls across both locations.
    pub fn total(&self) -> u64 {
        Op::ALL
            .iter()
            .map(|&op| {
                let (c, g) = self.get(op);
                c + g
            })
            .sum()
    }
}

/// Executes factorization kernels: the arithmetic is always done for real
/// (so the factor is exact); the returned `f64` is the *modeled* execution
/// time at the location the offload heuristic picked.
#[derive(Debug, Clone)]
pub struct KernelEngine {
    /// Execution-time model.
    pub cost: CostModel,
    /// Per-op offload thresholds.
    pub thresholds: OffloadThresholds,
    /// CPU/GPU call counts so far.
    pub counts: OpCounts,
    /// When false, everything runs on the CPU regardless of thresholds
    /// (the paper's non-GPU build).
    pub gpu_enabled: bool,
    /// Use the thread-parallel kernel variants for CPU work (the
    /// shared-memory single-rank execution path). Safe to leave on under
    /// flat-MPI too: the `sympack_dense::par` worker budget divides the
    /// hardware threads by the live rank count registered via
    /// `sympack_dense::par::rank_scope`, falling back to the sequential
    /// packed kernels when the per-rank budget is one thread.
    pub intra_parallel: bool,
    /// Blocking, dispatch-threshold, and ISA configuration threaded into
    /// every dense kernel call this engine makes. Always validated: the
    /// constructors start from [`KernelConfig::default`] and
    /// [`KernelEngine::with_config`] rejects invalid replacements.
    pub config: KernelConfig,
}

impl KernelEngine {
    /// Engine with GPU offload enabled and default calibration.
    pub fn new_gpu() -> Self {
        KernelEngine {
            cost: CostModel::default(),
            thresholds: OffloadThresholds::default(),
            counts: OpCounts::default(),
            gpu_enabled: true,
            intra_parallel: false,
            config: KernelConfig::default(),
        }
    }

    /// CPU-only engine.
    pub fn new_cpu() -> Self {
        KernelEngine {
            gpu_enabled: false,
            ..Self::new_gpu()
        }
    }

    /// Replace the kernel configuration, validating it first.
    ///
    /// # Errors
    /// Returns the [`ConfigError`] describing the first violated invariant;
    /// on error the engine keeps its previous (valid) config.
    pub fn with_config(mut self, config: KernelConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        self.config = config;
        Ok(self)
    }

    /// Decide where an `op` touching `elements` matrix entries runs.
    pub fn place(&self, op: Op, elements: usize) -> Loc {
        if !self.gpu_enabled {
            return Loc::Cpu;
        }
        self.thresholds.place(op, elements)
    }

    fn time_for(&mut self, op: Op, loc: Loc, fl: u64) -> f64 {
        self.counts.bump(op, loc);
        match loc {
            Loc::Cpu => self.cost.cpu_time(op, fl),
            Loc::Gpu => self.cost.gpu_time(op, fl),
        }
    }

    /// Factor a diagonal block in place (lower Cholesky). Returns
    /// `(location, modeled seconds)`.
    ///
    /// # Errors
    /// Propagates [`sympack_dense::DenseError::NotPositiveDefinite`].
    pub fn potrf(&mut self, a: &mut Mat) -> Result<(Loc, f64), sympack_dense::DenseError> {
        let n = a.rows();
        let loc = self.place(Op::Potrf, n * n);
        sympack_dense::potrf_cfg(&self.config, a)?;
        Ok((loc, self.time_for(Op::Potrf, loc, flops::potrf(n))))
    }

    /// Panel solve `B ← B·L⁻ᵀ` in place. Returns `(location, seconds)`.
    pub fn trsm(&mut self, b: &mut Mat, l: &Mat) -> (Loc, f64) {
        let (m, n) = (b.rows(), b.cols());
        let loc = self.place(Op::Trsm, m * n + n * n);
        if self.intra_parallel {
            sympack_dense::par::trsm_right_lower_trans_par_cfg(&self.config, b, l);
        } else {
            sympack_dense::trsm_right_lower_trans_cfg(&self.config, b, l);
        }
        (loc, self.time_for(Op::Trsm, loc, flops::trsm(m, n)))
    }

    /// Symmetric update `C ← C − A·Aᵀ` (lower). Returns `(location, seconds)`.
    pub fn syrk(&mut self, c: &mut Mat, a: &Mat) -> (Loc, f64) {
        let (n, k) = (c.rows(), a.cols());
        let loc = self.place(Op::Syrk, n * k + n * n);
        if self.intra_parallel {
            sympack_dense::par::syrk_lower_par_cfg(&self.config, c, a);
        } else {
            sympack_dense::syrk_lower_cfg(&self.config, c, a);
        }
        (loc, self.time_for(Op::Syrk, loc, flops::syrk(n, k)))
    }

    /// General update `C ← C − A·Bᵀ`. Returns `(location, seconds)`.
    pub fn gemm(&mut self, c: &mut Mat, a: &Mat, b: &Mat) -> (Loc, f64) {
        let (m, n, k) = (c.rows(), c.cols(), a.cols());
        let loc = self.place(Op::Gemm, m * k + n * k + m * n);
        if self.intra_parallel {
            sympack_dense::par::gemm_nt_par_cfg(&self.config, c, a, b);
        } else {
            sympack_dense::gemm_nt_cfg(&self.config, c, a, b);
        }
        (loc, self.time_for(Op::Gemm, loc, flops::gemm(m, n, k)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn potrf_is_numerically_real() {
        let a0 = Mat::spd_from(30, |r, c| ((r * 7 + c) % 5) as f64 - 2.0);
        let mut a = a0.clone();
        let mut eng = KernelEngine::new_gpu();
        let (_, secs) = eng.potrf(&mut a).unwrap();
        assert!(secs > 0.0);
        a.zero_upper();
        let recon = a.matmul(&a.transpose());
        assert!(recon.max_abs_diff(&a0) < 1e-9);
        assert_eq!(eng.counts.total(), 1);
    }

    #[test]
    fn placement_counts_split_by_size() {
        let mut eng = KernelEngine::new_gpu();
        // Small gemm -> CPU.
        let mut c = Mat::zeros(4, 4);
        let a = Mat::from_fn(4, 4, |r, _| r as f64);
        let b = Mat::from_fn(4, 4, |_, c| c as f64);
        let (loc, _) = eng.gemm(&mut c, &a, &b);
        assert_eq!(loc, Loc::Cpu);
        // Large gemm -> GPU.
        let mut c = Mat::zeros(96, 96);
        let a = Mat::from_fn(96, 32, |r, _| (r % 3) as f64);
        let b = Mat::from_fn(96, 32, |_, c| (c % 5) as f64);
        let (loc, _) = eng.gemm(&mut c, &a, &b);
        assert_eq!(loc, Loc::Gpu);
        assert_eq!(eng.counts.gemm_cpu, 1);
        assert_eq!(eng.counts.gemm_gpu, 1);
    }

    #[test]
    fn cpu_engine_never_offloads() {
        let mut eng = KernelEngine::new_cpu();
        let mut c = Mat::zeros(128, 128);
        let a = Mat::from_fn(128, 64, |r, _| (r % 7) as f64 * 0.1);
        let b = Mat::from_fn(128, 64, |_, c| (c % 3) as f64 * 0.1);
        let (loc, _) = eng.gemm(&mut c, &a, &b);
        assert_eq!(loc, Loc::Cpu);
    }

    #[test]
    fn gpu_time_reflects_launch_overhead_for_small_kernels() {
        let mut eng = KernelEngine::new_gpu();
        eng.thresholds = OffloadThresholds::gpu_always();
        let mut c = Mat::zeros(2, 2);
        let a = Mat::from_fn(2, 2, |_, _| 1.0);
        let b = Mat::from_fn(2, 2, |_, _| 1.0);
        let (loc, secs) = eng.gemm(&mut c, &a, &b);
        assert_eq!(loc, Loc::Gpu);
        assert!(secs >= eng.cost.kernel_launch);
    }

    #[test]
    fn with_config_rejects_invalid_and_keeps_numerics_for_valid() {
        // Invalid: mc not a multiple of MR.
        let bad = KernelConfig {
            mc: sympack_dense::microkernel::MR + 1,
            ..Default::default()
        };
        assert!(KernelEngine::new_cpu().with_config(bad).is_err());
        // Valid non-default config: factor must still be exact.
        let cfg = KernelConfig {
            pb: 16,
            ib: 4,
            kc: 64,
            ..Default::default()
        };
        let mut eng = KernelEngine::new_cpu().with_config(cfg.clone()).unwrap();
        assert_eq!(eng.config, cfg);
        let a0 = Mat::spd_from(40, |r, c| ((r * 5 + c) % 7) as f64 - 3.0);
        let mut a = a0.clone();
        eng.potrf(&mut a).unwrap();
        a.zero_upper();
        let recon = a.matmul(&a.transpose());
        assert!(recon.max_abs_diff(&a0) < 1e-9);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = OpCounts {
            gemm_cpu: 2,
            ..Default::default()
        };
        let b = OpCounts {
            gemm_cpu: 3,
            potrf_gpu: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.gemm_cpu, 5);
        assert_eq!(a.potrf_gpu, 1);
        assert_eq!(a.total(), 6);
    }
}
