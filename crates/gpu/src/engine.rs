//! The kernel engine: real math, modeled time, per-location call counts.

use crate::cost::CostModel;
use crate::offload::{Loc, OffloadThresholds};
use crate::Op;
use sympack_dense::lowrank::{self, BlockRef, BlrConfig, LowRankMat};
use sympack_dense::{
    flops, gemm_nn_acc_cfg, gemm_nt_cfg, gemm_tn_acc_cfg, ConfigError, KernelConfig, Mat,
};

/// CPU/GPU call counters per operation — the data behind the paper's Fig. 6.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    pub potrf_cpu: u64,
    pub potrf_gpu: u64,
    pub trsm_cpu: u64,
    pub trsm_gpu: u64,
    pub syrk_cpu: u64,
    pub syrk_gpu: u64,
    pub gemm_cpu: u64,
    pub gemm_gpu: u64,
}

impl OpCounts {
    /// `(cpu, gpu)` counts for `op`.
    pub fn get(&self, op: Op) -> (u64, u64) {
        match op {
            Op::Potrf => (self.potrf_cpu, self.potrf_gpu),
            Op::Trsm => (self.trsm_cpu, self.trsm_gpu),
            Op::Syrk => (self.syrk_cpu, self.syrk_gpu),
            Op::Gemm => (self.gemm_cpu, self.gemm_gpu),
        }
    }

    fn bump(&mut self, op: Op, loc: Loc) {
        let slot = match (op, loc) {
            (Op::Potrf, Loc::Cpu) => &mut self.potrf_cpu,
            (Op::Potrf, Loc::Gpu) => &mut self.potrf_gpu,
            (Op::Trsm, Loc::Cpu) => &mut self.trsm_cpu,
            (Op::Trsm, Loc::Gpu) => &mut self.trsm_gpu,
            (Op::Syrk, Loc::Cpu) => &mut self.syrk_cpu,
            (Op::Syrk, Loc::Gpu) => &mut self.syrk_gpu,
            (Op::Gemm, Loc::Cpu) => &mut self.gemm_cpu,
            (Op::Gemm, Loc::Gpu) => &mut self.gemm_gpu,
        };
        *slot += 1;
    }

    /// Merge another counter set into this one (rank aggregation).
    pub fn merge(&mut self, other: &OpCounts) {
        self.potrf_cpu += other.potrf_cpu;
        self.potrf_gpu += other.potrf_gpu;
        self.trsm_cpu += other.trsm_cpu;
        self.trsm_gpu += other.trsm_gpu;
        self.syrk_cpu += other.syrk_cpu;
        self.syrk_gpu += other.syrk_gpu;
        self.gemm_cpu += other.gemm_cpu;
        self.gemm_gpu += other.gemm_gpu;
    }

    /// Total calls across both locations.
    pub fn total(&self) -> u64 {
        Op::ALL
            .iter()
            .map(|&op| {
                let (c, g) = self.get(op);
                c + g
            })
            .sum()
    }
}

/// Counters of the block low-rank path (all zero in dense mode).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlrCounters {
    /// Factored panels stored (and published) in compressed form.
    pub compressed: u64,
    /// Eligible panels that stayed dense (tolerance rank too high or the
    /// factored form not smaller).
    pub declined: u64,
    /// GEMM/SYRK updates executed with at least one low-rank operand.
    pub lr_updates: u64,
    /// Low-rank products re-truncated to a lower rank before materializing.
    pub recompressed: u64,
}

impl BlrCounters {
    /// Merge another counter set into this one (rank aggregation).
    pub fn merge(&mut self, other: &BlrCounters) {
        self.compressed += other.compressed;
        self.declined += other.declined;
        self.lr_updates += other.lr_updates;
        self.recompressed += other.recompressed;
    }
}

/// Executes factorization kernels: the arithmetic is always done for real
/// (so the factor is exact); the returned `f64` is the *modeled* execution
/// time at the location the offload heuristic picked.
#[derive(Debug, Clone)]
pub struct KernelEngine {
    /// Execution-time model.
    pub cost: CostModel,
    /// Per-op offload thresholds.
    pub thresholds: OffloadThresholds,
    /// CPU/GPU call counts so far.
    pub counts: OpCounts,
    /// When false, everything runs on the CPU regardless of thresholds
    /// (the paper's non-GPU build).
    pub gpu_enabled: bool,
    /// Use the thread-parallel kernel variants for CPU work (the
    /// shared-memory single-rank execution path). Safe to leave on under
    /// flat-MPI too: the `sympack_dense::par` worker budget divides the
    /// hardware threads by the live rank count registered via
    /// `sympack_dense::par::rank_scope`, falling back to the sequential
    /// packed kernels when the per-rank budget is one thread.
    pub intra_parallel: bool,
    /// Blocking, dispatch-threshold, and ISA configuration threaded into
    /// every dense kernel call this engine makes. Always validated: the
    /// constructors start from [`KernelConfig::default`] and
    /// [`KernelEngine::with_config`] rejects invalid replacements.
    pub config: KernelConfig,
    /// Block low-rank compression knobs. The default (`tol = 0`) disables
    /// the compressed paths entirely: [`KernelEngine::compress_block`] is
    /// never called and [`KernelEngine::gemm_any`]/[`KernelEngine::syrk_any`]
    /// only ever see dense operands, so dense-mode results stay bit-identical
    /// to the pre-BLR engine.
    pub blr: BlrConfig,
    /// Global Frobenius scale of the problem (`‖A‖_F`), set by the engine at
    /// factorization start. When positive, truncation uses the absolute
    /// threshold `blr.tol · blr_scale` (the global-threshold BLR criterion);
    /// when zero, truncation is relative to each block's own norm.
    pub blr_scale: f64,
    /// Call counters of the block low-rank path.
    pub blr_counts: BlrCounters,
}

impl KernelEngine {
    /// Engine with GPU offload enabled and default calibration.
    pub fn new_gpu() -> Self {
        KernelEngine {
            cost: CostModel::default(),
            thresholds: OffloadThresholds::default(),
            counts: OpCounts::default(),
            gpu_enabled: true,
            intra_parallel: false,
            config: KernelConfig::default(),
            blr: BlrConfig::default(),
            blr_scale: 0.0,
            blr_counts: BlrCounters::default(),
        }
    }

    /// CPU-only engine.
    pub fn new_cpu() -> Self {
        KernelEngine {
            gpu_enabled: false,
            ..Self::new_gpu()
        }
    }

    /// Replace the kernel configuration, validating it first.
    ///
    /// # Errors
    /// Returns the [`ConfigError`] describing the first violated invariant;
    /// on error the engine keeps its previous (valid) config.
    pub fn with_config(mut self, config: KernelConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        self.config = config;
        Ok(self)
    }

    /// Decide where an `op` touching `elements` matrix entries runs.
    pub fn place(&self, op: Op, elements: usize) -> Loc {
        if !self.gpu_enabled {
            return Loc::Cpu;
        }
        self.thresholds.place(op, elements)
    }

    fn time_for(&mut self, op: Op, loc: Loc, fl: u64) -> f64 {
        self.counts.bump(op, loc);
        match loc {
            Loc::Cpu => self.cost.cpu_time(op, fl),
            Loc::Gpu => self.cost.gpu_time(op, fl),
        }
    }

    /// Factor a diagonal block in place (lower Cholesky). Returns
    /// `(location, modeled seconds)`.
    ///
    /// # Errors
    /// Propagates [`sympack_dense::DenseError::NotPositiveDefinite`].
    pub fn potrf(&mut self, a: &mut Mat) -> Result<(Loc, f64), sympack_dense::DenseError> {
        let n = a.rows();
        let loc = self.place(Op::Potrf, n * n);
        sympack_dense::potrf_cfg(&self.config, a)?;
        Ok((loc, self.time_for(Op::Potrf, loc, flops::potrf(n))))
    }

    /// Panel solve `B ← B·L⁻ᵀ` in place. Returns `(location, seconds)`.
    pub fn trsm(&mut self, b: &mut Mat, l: &Mat) -> (Loc, f64) {
        let (m, n) = (b.rows(), b.cols());
        let loc = self.place(Op::Trsm, m * n + n * n);
        if self.intra_parallel {
            sympack_dense::par::trsm_right_lower_trans_par_cfg(&self.config, b, l);
        } else {
            sympack_dense::trsm_right_lower_trans_cfg(&self.config, b, l);
        }
        (loc, self.time_for(Op::Trsm, loc, flops::trsm(m, n)))
    }

    /// Symmetric update `C ← C − A·Aᵀ` (lower). Returns `(location, seconds)`.
    pub fn syrk(&mut self, c: &mut Mat, a: &Mat) -> (Loc, f64) {
        let (n, k) = (c.rows(), a.cols());
        let loc = self.place(Op::Syrk, n * k + n * n);
        if self.intra_parallel {
            sympack_dense::par::syrk_lower_par_cfg(&self.config, c, a);
        } else {
            sympack_dense::syrk_lower_cfg(&self.config, c, a);
        }
        (loc, self.time_for(Op::Syrk, loc, flops::syrk(n, k)))
    }

    /// General update `C ← C − A·Bᵀ`. Returns `(location, seconds)`.
    pub fn gemm(&mut self, c: &mut Mat, a: &Mat, b: &Mat) -> (Loc, f64) {
        let (m, n, k) = (c.rows(), c.cols(), a.cols());
        let loc = self.place(Op::Gemm, m * k + n * k + m * n);
        if self.intra_parallel {
            sympack_dense::par::gemm_nt_par_cfg(&self.config, c, a, b);
        } else {
            sympack_dense::gemm_nt_cfg(&self.config, c, a, b);
        }
        (loc, self.time_for(Op::Gemm, loc, flops::gemm(m, n, k)))
    }

    /// Try to compress a factored off-diagonal panel. Returns the low-rank
    /// form (or `None` when the panel is ineligible or compression does not
    /// pay) plus the modeled seconds spent on the truncated factorization.
    ///
    /// Compression arithmetic is charged as GEMM time at the same placement
    /// the panel's kernels use: the pivoted Gram–Schmidt sweep is a sequence
    /// of rank-1 panel products with the same roofline behaviour, and runs
    /// wherever the freshly factored panel lives (device-resident truncation
    /// when the panel was offloaded).
    pub fn compress_block(&mut self, a: &Mat) -> (Option<LowRankMat>, f64) {
        let (m, n) = (a.rows(), a.cols());
        if !self.blr.eligible(m, n) {
            return (None, 0.0);
        }
        let lr = if self.blr_scale > 0.0 {
            lowrank::compress_raw_abs(
                a.as_slice(),
                m,
                n,
                a.ld(),
                self.blr.tol * self.blr_scale,
                self.blr.max_rank,
            )
        } else {
            lowrank::compress(a, self.blr.tol, self.blr.max_rank)
        };
        let sweep_rank = match &lr {
            Some(lr) => lr.rank(),
            // A declined panel paid for the sweep up to the profitability
            // bound (or the configured cap), where `compress` aborts.
            None => self.blr.max_rank.min((m * n) / (m + n).max(1)),
        };
        let loc = self.place(Op::Gemm, m * n);
        let secs = self.time_for(Op::Gemm, loc, lowrank::compress_flops(m, n, sweep_rank));
        match &lr {
            Some(_) => self.blr_counts.compressed += 1,
            None => self.blr_counts.declined += 1,
        }
        (lr, secs)
    }

    /// Symmetric update `C ← C − A·Aᵀ` where `A` may be stored low-rank.
    /// Dense operands take the exact [`KernelEngine::syrk`] path (bit-identical
    /// to pre-BLR); a rank-`r` operand runs the factored form
    /// `G = Vᵀ·V`, `W = U·G`, `C ← C − W·Uᵀ` and is charged its actual flops.
    pub fn syrk_any(&mut self, c: &mut Mat, a: BlockRef<'_>) -> (Loc, f64) {
        let lr = match a {
            BlockRef::Dense(a) => return self.syrk(c, a),
            BlockRef::LowRank(lr) => lr,
        };
        self.blr_counts.lr_updates += 1;
        let (n, k, r) = (c.rows(), lr.cols(), lr.rank());
        let loc = self.place(Op::Syrk, (n + k) * r + n * n);
        if r > 0 {
            let mut g = Mat::zeros(r, r);
            gemm_tn_acc_cfg(&self.config, &mut g, lr.v(), lr.v());
            let mut w = Mat::zeros(n, r);
            gemm_nn_acc_cfg(&self.config, &mut w, lr.u(), &g);
            gemm_nt_cfg(&self.config, c, &w, lr.u());
        }
        let fl = 2 * (k as u64) * (r as u64) * (r as u64)
            + 2 * (n as u64) * (r as u64) * (r as u64)
            + 2 * (n as u64) * (n as u64) * (r as u64);
        (loc, self.time_for(Op::Syrk, loc, fl))
    }

    /// General update `C ← C − A·Bᵀ` where either operand may be stored
    /// low-rank. Dense×dense takes the exact [`KernelEngine::gemm`] path
    /// (bit-identical to pre-BLR); compressed operands run in factored form
    /// and are charged their actual flops. When both operands are compressed
    /// and the product rank is large relative to the destination, the product
    /// is re-truncated before materializing.
    pub fn gemm_any(&mut self, c: &mut Mat, a: BlockRef<'_>, b: BlockRef<'_>) -> (Loc, f64) {
        let (ma, nb) = (c.rows(), c.cols());
        match (a, b) {
            (BlockRef::Dense(a), BlockRef::Dense(b)) => self.gemm(c, a, b),
            (BlockRef::LowRank(la), BlockRef::Dense(b)) => {
                // C ← C − Ua·(B·Va)ᵀ.
                self.blr_counts.lr_updates += 1;
                let (k, r) = (la.cols(), la.rank());
                let loc = self.place(Op::Gemm, la.payload_len() + nb * k + ma * nb);
                if r > 0 {
                    let mut p = Mat::zeros(nb, r);
                    gemm_nn_acc_cfg(&self.config, &mut p, b, la.v());
                    gemm_nt_cfg(&self.config, c, la.u(), &p);
                }
                let fl = 2 * (nb as u64) * (k as u64) * (r as u64)
                    + 2 * (ma as u64) * (nb as u64) * (r as u64);
                (loc, self.time_for(Op::Gemm, loc, fl))
            }
            (BlockRef::Dense(a), BlockRef::LowRank(lb)) => {
                // C ← C − (A·Vb)·Ubᵀ.
                self.blr_counts.lr_updates += 1;
                let (k, r) = (lb.cols(), lb.rank());
                let loc = self.place(Op::Gemm, ma * k + lb.payload_len() + ma * nb);
                if r > 0 {
                    let mut p = Mat::zeros(ma, r);
                    gemm_nn_acc_cfg(&self.config, &mut p, a, lb.v());
                    gemm_nt_cfg(&self.config, c, &p, lb.u());
                }
                let fl = 2 * (ma as u64) * (k as u64) * (r as u64)
                    + 2 * (ma as u64) * (nb as u64) * (r as u64);
                (loc, self.time_for(Op::Gemm, loc, fl))
            }
            (BlockRef::LowRank(la), BlockRef::LowRank(lb)) => {
                // S = Vaᵀ·Vb, W = Ua·S, C ← C − W·Ubᵀ.
                self.blr_counts.lr_updates += 1;
                let (k, ra, rb) = (la.cols(), la.rank(), lb.rank());
                let loc = self.place(Op::Gemm, la.payload_len() + lb.payload_len() + ma * nb);
                let mut fl = 2 * (k as u64) * (ra as u64) * (rb as u64)
                    + 2 * (ma as u64) * (ra as u64) * (rb as u64);
                if ra > 0 && rb > 0 {
                    let mut s = Mat::zeros(ra, rb);
                    gemm_tn_acc_cfg(&self.config, &mut s, la.v(), lb.v());
                    let mut w = Mat::zeros(ma, rb);
                    gemm_nn_acc_cfg(&self.config, &mut w, la.u(), &s);
                    // The product has rank ≤ min(ra, rb); when the carrier
                    // rank rb overshoots the destination badly, re-truncate
                    // (W, Ub) before paying the 2·ma·nb·rb materialization.
                    let mut mat_rank = rb;
                    if 2 * rb >= ma.min(nb) && self.blr.enabled() {
                        fl += lowrank::recompress_flops(ma, nb, rb, rb);
                        let t = if self.blr_scale > 0.0 {
                            lowrank::recompress_abs(
                                &w,
                                lb.u(),
                                self.blr.tol * self.blr_scale,
                                self.blr.max_rank,
                            )
                        } else {
                            lowrank::recompress(&w, lb.u(), self.blr.tol, self.blr.max_rank)
                        };
                        if let Some(t) = t {
                            if t.rank() < rb {
                                self.blr_counts.recompressed += 1;
                                mat_rank = t.rank();
                                if mat_rank > 0 {
                                    gemm_nt_cfg(&self.config, c, t.u(), t.v());
                                }
                            } else {
                                gemm_nt_cfg(&self.config, c, &w, lb.u());
                            }
                        } else {
                            gemm_nt_cfg(&self.config, c, &w, lb.u());
                        }
                    } else {
                        gemm_nt_cfg(&self.config, c, &w, lb.u());
                    }
                    fl += 2 * (ma as u64) * (nb as u64) * (mat_rank as u64);
                }
                (loc, self.time_for(Op::Gemm, loc, fl))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn potrf_is_numerically_real() {
        let a0 = Mat::spd_from(30, |r, c| ((r * 7 + c) % 5) as f64 - 2.0);
        let mut a = a0.clone();
        let mut eng = KernelEngine::new_gpu();
        let (_, secs) = eng.potrf(&mut a).unwrap();
        assert!(secs > 0.0);
        a.zero_upper();
        let recon = a.matmul(&a.transpose());
        assert!(recon.max_abs_diff(&a0) < 1e-9);
        assert_eq!(eng.counts.total(), 1);
    }

    #[test]
    fn placement_counts_split_by_size() {
        let mut eng = KernelEngine::new_gpu();
        // Small gemm -> CPU.
        let mut c = Mat::zeros(4, 4);
        let a = Mat::from_fn(4, 4, |r, _| r as f64);
        let b = Mat::from_fn(4, 4, |_, c| c as f64);
        let (loc, _) = eng.gemm(&mut c, &a, &b);
        assert_eq!(loc, Loc::Cpu);
        // Large gemm -> GPU.
        let mut c = Mat::zeros(96, 96);
        let a = Mat::from_fn(96, 32, |r, _| (r % 3) as f64);
        let b = Mat::from_fn(96, 32, |_, c| (c % 5) as f64);
        let (loc, _) = eng.gemm(&mut c, &a, &b);
        assert_eq!(loc, Loc::Gpu);
        assert_eq!(eng.counts.gemm_cpu, 1);
        assert_eq!(eng.counts.gemm_gpu, 1);
    }

    #[test]
    fn cpu_engine_never_offloads() {
        let mut eng = KernelEngine::new_cpu();
        let mut c = Mat::zeros(128, 128);
        let a = Mat::from_fn(128, 64, |r, _| (r % 7) as f64 * 0.1);
        let b = Mat::from_fn(128, 64, |_, c| (c % 3) as f64 * 0.1);
        let (loc, _) = eng.gemm(&mut c, &a, &b);
        assert_eq!(loc, Loc::Cpu);
    }

    #[test]
    fn gpu_time_reflects_launch_overhead_for_small_kernels() {
        let mut eng = KernelEngine::new_gpu();
        eng.thresholds = OffloadThresholds::gpu_always();
        let mut c = Mat::zeros(2, 2);
        let a = Mat::from_fn(2, 2, |_, _| 1.0);
        let b = Mat::from_fn(2, 2, |_, _| 1.0);
        let (loc, secs) = eng.gemm(&mut c, &a, &b);
        assert_eq!(loc, Loc::Gpu);
        assert!(secs >= eng.cost.kernel_launch);
    }

    #[test]
    fn with_config_rejects_invalid_and_keeps_numerics_for_valid() {
        // Invalid: mc not a multiple of MR.
        let bad = KernelConfig {
            mc: sympack_dense::microkernel::MR + 1,
            ..Default::default()
        };
        assert!(KernelEngine::new_cpu().with_config(bad).is_err());
        // Valid non-default config: factor must still be exact.
        let cfg = KernelConfig {
            pb: 16,
            ib: 4,
            kc: 64,
            ..Default::default()
        };
        let mut eng = KernelEngine::new_cpu().with_config(cfg.clone()).unwrap();
        assert_eq!(eng.config, cfg);
        let a0 = Mat::spd_from(40, |r, c| ((r * 5 + c) % 7) as f64 - 3.0);
        let mut a = a0.clone();
        eng.potrf(&mut a).unwrap();
        a.zero_upper();
        let recon = a.matmul(&a.transpose());
        assert!(recon.max_abs_diff(&a0) < 1e-9);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = OpCounts {
            gemm_cpu: 2,
            ..Default::default()
        };
        let b = OpCounts {
            gemm_cpu: 3,
            potrf_gpu: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.gemm_cpu, 5);
        assert_eq!(a.potrf_gpu, 1);
        assert_eq!(a.total(), 6);
    }
}
