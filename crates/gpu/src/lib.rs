//! Simulated GPU substrate.
//!
//! The paper offloads sufficiently large POTRF/TRSM/SYRK/GEMM calls to an
//! NVIDIA A100 via cuSolver/cuBLAS (§4). Without CUDA, this crate models the
//! device with the two properties that drive the paper's offload heuristic:
//!
//! 1. **fixed kernel-launch overhead** — invoking and synchronizing a CUDA
//!    kernel costs ~10 µs regardless of problem size (§4.2: "overheads …
//!    significant and relatively insensitive to problem size"), and
//! 2. **far higher asymptotic throughput** — an A100 sustains a few TFLOP/s
//!    of fp64 BLAS-3 versus a few GFLOP/s for the single CPU core a flat-MPI
//!    rank owns.
//!
//! [`KernelEngine`] executes every kernel *numerically for real* (through
//! `sympack-dense`) and returns the *modeled* execution time for the chosen
//! location; [`OffloadThresholds`] implements the per-operation buffer-size
//! heuristic of §4.2, and [`OpCounts`] records the CPU/GPU call distribution
//! that Fig. 6 plots.

pub mod analytic;
pub mod cost;
pub mod engine;
pub mod offload;

pub use analytic::{analytical_thresholds, autotune, KernelSample};
pub use cost::CostModel;
pub use engine::{BlrCounters, KernelEngine, OpCounts};
pub use offload::{Loc, OffloadThresholds, OomPolicy};

/// The four dense operations of the factorization (paper Fig. 6 categories).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Dense Cholesky of a diagonal block (cuSolver `potrf`).
    Potrf,
    /// Triangular solve of a panel (cuBLAS `trsm`).
    Trsm,
    /// Symmetric rank-k update (cuBLAS `syrk`).
    Syrk,
    /// General update (cuBLAS `gemm`).
    Gemm,
}

impl Op {
    /// All operations, in the order Fig. 6 lists them.
    pub const ALL: [Op; 4] = [Op::Syrk, Op::Gemm, Op::Trsm, Op::Potrf];

    /// Display name matching the paper's figure labels.
    pub fn name(&self) -> &'static str {
        match self {
            Op::Potrf => "POTRF",
            Op::Trsm => "TRSM",
            Op::Syrk => "SYRK",
            Op::Gemm => "GEMM",
        }
    }
}
