//! Analytical and auto-tuned offload thresholds — the paper's §6 future
//! work: "a hardware-agnostic analytical framework for determining the
//! optimal GPU threshold sizes for each operation, and … the potential use
//! and benefits of autotuning in this area."
//!
//! The analytical framework inverts the cost model: for each operation it
//! finds the flop count at which the modeled GPU time undercuts the CPU
//! time ([`crate::CostModel::crossover_flops`]) and converts it into the
//! element-count threshold the offload heuristic uses, assuming the
//! square-ish block shapes the supernodal factorization produces. The
//! autotuner then refines those analytical seeds by measuring (under the
//! same cost model) a sweep of scale factors on a caller-supplied probe.

use crate::cost::CostModel;
use crate::offload::OffloadThresholds;
use crate::Op;

/// Convert a flop crossover into an element threshold for `op`, assuming
/// square blocks of edge `n`:
///
/// * POTRF: `n³/3` flops on `n²` elements,
/// * TRSM (`m = n`): `n³` flops on `2n²` elements,
/// * SYRK (`k = n`): `n²(n+1) ≈ n³` flops on `2n²` elements,
/// * GEMM (`m = n = k`): `2n³` flops on `3n²` elements.
fn elements_at_crossover(op: Op, flops: u64) -> usize {
    let f = flops as f64;
    match op {
        Op::Potrf => {
            let n = (3.0 * f).cbrt();
            (n * n) as usize
        }
        Op::Trsm => {
            let n = f.cbrt();
            (2.0 * n * n) as usize
        }
        Op::Syrk => {
            let n = f.cbrt();
            (2.0 * n * n) as usize
        }
        Op::Gemm => {
            let n = (f / 2.0).cbrt();
            (3.0 * n * n) as usize
        }
    }
}

/// Derive per-op thresholds analytically from a hardware cost model.
///
/// Hardware-agnostic in the §6 sense: feed it the cost model of any device
/// (see [`CostModel`] presets) and it produces matching thresholds without
/// any brute-force tuning runs.
pub fn analytical_thresholds(cost: &CostModel) -> OffloadThresholds {
    OffloadThresholds {
        potrf: elements_at_crossover(Op::Potrf, cost.crossover_flops(Op::Potrf)),
        trsm: elements_at_crossover(Op::Trsm, cost.crossover_flops(Op::Trsm)),
        syrk: elements_at_crossover(Op::Syrk, cost.crossover_flops(Op::Syrk)),
        gemm: elements_at_crossover(Op::Gemm, cost.crossover_flops(Op::Gemm)),
    }
}

/// One (op, elements, flops) kernel record from a probe workload.
#[derive(Debug, Clone, Copy)]
pub struct KernelSample {
    pub op: Op,
    pub elements: usize,
    pub flops: u64,
}

/// Total modeled time of a kernel trace under given thresholds.
pub fn trace_time(cost: &CostModel, thresholds: &OffloadThresholds, trace: &[KernelSample]) -> f64 {
    trace
        .iter()
        .map(|s| match thresholds.place(s.op, s.elements) {
            crate::Loc::Cpu => cost.cpu_time(s.op, s.flops),
            crate::Loc::Gpu => cost.gpu_time(s.op, s.flops),
        })
        .sum()
}

/// Autotune: scale the analytical thresholds over a grid of factors and keep
/// the scale minimizing the modeled time of `trace` (a kernel trace recorded
/// from a representative factorization). Returns the tuned thresholds and
/// the winning scale.
pub fn autotune(cost: &CostModel, trace: &[KernelSample]) -> (OffloadThresholds, f64) {
    let seed = analytical_thresholds(cost);
    let mut best = (seed.clone(), 1.0);
    let mut best_t = trace_time(cost, &seed, trace);
    for &scale in &[0.25, 0.35, 0.5, 0.7, 1.0, 1.4, 2.0, 2.8, 4.0] {
        let cand = OffloadThresholds {
            potrf: (seed.potrf as f64 * scale) as usize,
            trsm: (seed.trsm as f64 * scale) as usize,
            syrk: (seed.syrk as f64 * scale) as usize,
            gemm: (seed.gemm as f64 * scale) as usize,
        };
        let t = trace_time(cost, &cand, trace);
        if t < best_t {
            best_t = t;
            best = (cand, scale);
        }
    }
    best
}

impl CostModel {
    /// NVIDIA A100-class device (the paper's Perlmutter GPUs) — the default.
    pub fn nvidia_a100() -> Self {
        CostModel::default()
    }

    /// AMD MI250X-class device: higher peak fp64, slightly higher launch
    /// latency through HIP — the §6 "support for AMD GPUs" data point.
    pub fn amd_mi250x() -> Self {
        CostModel {
            gpu_gemm: 7.0e12,
            gpu_syrk: 4.5e12,
            gpu_trsm: 1.5e12,
            gpu_potrf: 0.7e12,
            kernel_launch: 14.0e-6,
            ..CostModel::default()
        }
    }

    /// Intel Max-class device via SYCL/oneMKL.
    pub fn intel_max1550() -> Self {
        CostModel {
            gpu_gemm: 4.0e12,
            gpu_syrk: 2.8e12,
            gpu_trsm: 1.0e12,
            gpu_potrf: 0.5e12,
            kernel_launch: 12.0e-6,
            ..CostModel::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Vec<KernelSample> {
        // A mix of small and large kernels like a real factorization.
        let mut t = Vec::new();
        for n in [8usize, 16, 32, 64, 128, 256] {
            for _ in 0..4 {
                t.push(KernelSample {
                    op: Op::Gemm,
                    elements: 3 * n * n,
                    flops: 2 * (n as u64).pow(3),
                });
                t.push(KernelSample {
                    op: Op::Potrf,
                    elements: n * n,
                    flops: (n as u64).pow(3) / 3,
                });
            }
        }
        t
    }

    #[test]
    fn analytical_thresholds_are_consistent_with_crossovers() {
        let cost = CostModel::default();
        let t = analytical_thresholds(&cost);
        // At exactly the threshold element count, GPU time should not be
        // dramatically worse than CPU time (within the shape approximation).
        for op in Op::ALL {
            let x = cost.crossover_flops(op);
            assert!(t.for_op(op) > 0);
            assert!(
                cost.gpu_time(op, x) <= cost.cpu_time(op, x),
                "{op:?} crossover violated"
            );
        }
    }

    #[test]
    fn analytical_ordering_matches_hand_tuned_defaults() {
        // The hand-tuned defaults order potrf > trsm >= syrk >= gemm;
        // the analytical derivation must reproduce that ordering.
        let t = analytical_thresholds(&CostModel::default());
        assert!(t.potrf > t.gemm, "potrf {} vs gemm {}", t.potrf, t.gemm);
        assert!(t.trsm >= t.syrk || t.trsm >= t.gemm);
    }

    #[test]
    fn autotune_never_loses_to_seed() {
        let cost = CostModel::default();
        let trace = sample_trace();
        let seed_t = trace_time(&cost, &analytical_thresholds(&cost), &trace);
        let (tuned, _scale) = autotune(&cost, &trace);
        let tuned_t = trace_time(&cost, &tuned, &trace);
        assert!(tuned_t <= seed_t);
    }

    #[test]
    fn autotune_beats_extreme_policies_on_mixed_trace() {
        let cost = CostModel::default();
        let trace = sample_trace();
        let (tuned, _) = autotune(&cost, &trace);
        let tuned_t = trace_time(&cost, &tuned, &trace);
        let cpu_t = trace_time(&cost, &OffloadThresholds::cpu_only(), &trace);
        let gpu_t = trace_time(&cost, &OffloadThresholds::gpu_always(), &trace);
        assert!(tuned_t <= cpu_t, "tuned {tuned_t} vs cpu {cpu_t}");
        assert!(tuned_t <= gpu_t, "tuned {tuned_t} vs gpu {gpu_t}");
    }

    #[test]
    fn vendor_presets_differ_in_crossovers() {
        let a100 = CostModel::nvidia_a100();
        let mi = CostModel::amd_mi250x();
        // Higher launch overhead pushes MI250X crossovers later for
        // launch-bound ops despite higher peak rates.
        assert!(mi.crossover_flops(Op::Potrf) != a100.crossover_flops(Op::Potrf));
        let t = analytical_thresholds(&mi);
        assert!(t.gemm > 0 && t.potrf > 0);
    }
}
