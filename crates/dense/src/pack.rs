//! Operand packing for the register-blocked GEMM core.
//!
//! The packed kernel engine (see [`crate::microkernel`]) never reads matrix
//! operands through their leading dimensions inside the flop loop. Instead,
//! each cache block is first *packed* into a contiguous layout aligned with
//! the register tile:
//!
//! * the `A` operand is packed into **MR-row strips**: for each strip of
//!   [`MR`] consecutive rows, the `kb` columns of the current k-block are
//!   stored contiguously (`dst[strip][p][r]`, `r < MR`), so the microkernel
//!   streams `A` with unit stride regardless of `lda`;
//! * the `B` operand is packed into **NR-column strips** with the symmetric
//!   layout (`dst[strip][p][j]`, `j < NR`).
//!
//! Strips whose row/column count is short (matrix edge) are zero-padded to
//! the full `MR`/`NR` width, so the microkernel always runs the full register
//! tile and the write-back masks the padding. Packing happens once per cache
//! block and is amortized over the `O(MC·NC·KC)` flops of the block.
//!
//! Pack buffers are **thread-local and reusable**: hot factorization loops
//! call the packed kernels thousands of times without touching the
//! allocator. Each of the four operand orientations used by the solver
//! (`A`, `Aᵀ`, `B`, `Bᵀ`) has its own packer so GEMM, SYRK, TRSM and the
//! panel solves all share one microkernel.

use crate::microkernel::{MR, NR};
use std::cell::RefCell;

thread_local! {
    /// Reusable (packed-A, packed-B) scratch for the blocked GEMM core.
    static PACK_BUFS: RefCell<(Vec<f64>, Vec<f64>)> = const { RefCell::new((Vec::new(), Vec::new())) };
}

/// Run `f` with the calling thread's reusable pack buffers.
///
/// Not reentrant: `f` must not call back into `with_buffers` (the packed
/// GEMM core is the only caller and never nests).
pub(crate) fn with_buffers<R>(f: impl FnOnce(&mut Vec<f64>, &mut Vec<f64>) -> R) -> R {
    PACK_BUFS.with(|cell| {
        let mut bufs = cell.borrow_mut();
        let (pa, pb) = &mut *bufs;
        f(pa, pb)
    })
}

/// Resize `dst` for `strips` strips of `width × kb` without zero-filling the
/// payload (every slot is either copied over or explicitly zero-padded by the
/// packers below).
#[inline]
fn reserve(dst: &mut Vec<f64>, strips: usize, width: usize, kb: usize) {
    dst.resize(strips * width * kb, 0.0);
}

/// Pack the `mb × kb` block of a no-transpose `A` operand (column-major,
/// leading dimension `lda`) starting at row `i0`, column `p0`, into MR strips.
pub(crate) fn pack_a_nt(
    dst: &mut Vec<f64>,
    a: &[f64],
    lda: usize,
    i0: usize,
    mb: usize,
    p0: usize,
    kb: usize,
) {
    let strips = mb.div_ceil(MR);
    reserve(dst, strips, MR, kb);
    for s in 0..strips {
        let i = i0 + s * MR;
        let rows = MR.min(mb - s * MR);
        let base = s * kb * MR;
        for p in 0..kb {
            let src = (p0 + p) * lda + i;
            let d = &mut dst[base + p * MR..base + p * MR + MR];
            d[..rows].copy_from_slice(&a[src..src + rows]);
            for v in &mut d[rows..] {
                *v = 0.0;
            }
        }
    }
}

/// Pack the `mb × kb` block of a **transposed** `A` operand: the operand is
/// `Aᵀ` where the source `a` is `k × m` column-major with leading dimension
/// `lda`, so operand element `(i, p)` lives at `a[i·lda + p]`.
pub(crate) fn pack_a_tn(
    dst: &mut Vec<f64>,
    a: &[f64],
    lda: usize,
    i0: usize,
    mb: usize,
    p0: usize,
    kb: usize,
) {
    let strips = mb.div_ceil(MR);
    reserve(dst, strips, MR, kb);
    for s in 0..strips {
        let rows = MR.min(mb - s * MR);
        let base = s * kb * MR;
        for r in 0..rows {
            let col = &a[(i0 + s * MR + r) * lda + p0..];
            for p in 0..kb {
                dst[base + p * MR + r] = col[p];
            }
        }
        for r in rows..MR {
            for p in 0..kb {
                dst[base + p * MR + r] = 0.0;
            }
        }
    }
}

/// Pack the `kb × nb` block of a **transposed** `B` operand: the operand is
/// `Bᵀ` where the source `b` is `n × k` column-major with leading dimension
/// `ldb`, so operand element `(p, j)` lives at `b[p·ldb + j]` — an NR-long
/// contiguous run per `(strip, p)` pair.
pub(crate) fn pack_b_t(
    dst: &mut Vec<f64>,
    b: &[f64],
    ldb: usize,
    j0: usize,
    nb: usize,
    p0: usize,
    kb: usize,
) {
    let strips = nb.div_ceil(NR);
    reserve(dst, strips, NR, kb);
    for s in 0..strips {
        let j = j0 + s * NR;
        let cols = NR.min(nb - s * NR);
        let base = s * kb * NR;
        for p in 0..kb {
            let src = (p0 + p) * ldb + j;
            let d = &mut dst[base + p * NR..base + p * NR + NR];
            d[..cols].copy_from_slice(&b[src..src + cols]);
            for v in &mut d[cols..] {
                *v = 0.0;
            }
        }
    }
}

/// Pack the `kb × nb` block of a no-transpose `B` operand (`k × n`
/// column-major, leading dimension `ldb`): operand element `(p, j)` lives at
/// `b[j·ldb + p]`.
pub(crate) fn pack_b_nn(
    dst: &mut Vec<f64>,
    b: &[f64],
    ldb: usize,
    j0: usize,
    nb: usize,
    p0: usize,
    kb: usize,
) {
    let strips = nb.div_ceil(NR);
    reserve(dst, strips, NR, kb);
    for s in 0..strips {
        let cols = NR.min(nb - s * NR);
        let base = s * kb * NR;
        for j in 0..cols {
            let col = &b[(j0 + s * NR + j) * ldb + p0..];
            for p in 0..kb {
                dst[base + p * NR + j] = col[p];
            }
        }
        for j in cols..NR {
            for p in 0..kb {
                dst[base + p * NR + j] = 0.0;
            }
        }
    }
}

/// A fully packed no-transpose `A` operand (`m × k`), packed **once** and
/// shared read-only across the column-panel workers of the parallel GEMM.
///
/// Layout: k-blocks of at most `kc` columns (the `kc` of the
/// [`crate::config::KernelConfig`] the pack was built with — consumers must
/// run under the same config), outer to inner: block → MR-strip → column →
/// row; [`Self::block_strips`] hands the macro-kernel the exact same strip
/// layout [`pack_a_nt`] produces per block.
pub(crate) struct ApackFull {
    buf: Vec<f64>,
    strips: usize,
    /// `(p0, kb, offset)` per k-block.
    blocks: Vec<(usize, usize, usize)>,
}

impl ApackFull {
    /// Pack all of `a` (`m × k`, leading dimension `lda`) in k-blocks of at
    /// most `kc` columns.
    pub fn pack_nt(a: &[f64], lda: usize, m: usize, k: usize, kc: usize) -> Self {
        let strips = m.div_ceil(MR);
        let mut blocks = Vec::with_capacity(k.div_ceil(kc).max(1));
        let mut buf = vec![0.0; strips * MR * k];
        let mut off = 0;
        for p0 in (0..k).step_by(kc) {
            let kb = kc.min(k - p0);
            blocks.push((p0, kb, off));
            for s in 0..strips {
                let i = s * MR;
                let rows = MR.min(m - i);
                let base = off + s * kb * MR;
                for p in 0..kb {
                    let src = (p0 + p) * lda + i;
                    buf[base + p * MR..base + p * MR + rows].copy_from_slice(&a[src..src + rows]);
                }
            }
            off += strips * kb * MR;
        }
        ApackFull {
            buf,
            strips,
            blocks,
        }
    }

    /// Total MR strips covering the row dimension.
    pub fn strips(&self) -> usize {
        self.strips
    }

    /// The `(p0, kb)` extents of each k-block, in order.
    pub fn blocks(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.blocks.iter().map(|&(p0, kb, _)| (p0, kb))
    }

    /// The packed strips `[s0, s1)` of k-block `q`, laid out exactly like a
    /// [`pack_a_nt`] buffer of `s1 - s0` strips.
    pub fn block_strips(&self, q: usize, s0: usize, s1: usize) -> &[f64] {
        let (_, kb, off) = self.blocks[q];
        &self.buf[off + s0 * kb * MR..off + s1 * kb * MR]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_a_nt_strips_and_pads() {
        // 5×3 block out of a 7-row buffer: two MR strips (MR >= 2), padding
        // in the last strip must be zero.
        let lda = 7;
        let a: Vec<f64> = (0..lda * 3).map(|v| v as f64).collect();
        let mut dst = vec![99.0; 1]; // stale content must not leak
        pack_a_nt(&mut dst, &a, lda, 1, 5, 0, 3);
        let strips = 5usize.div_ceil(MR);
        assert_eq!(dst.len(), strips * MR * 3);
        for s in 0..strips {
            let rows = MR.min(5 - s * MR);
            for p in 0..3 {
                for r in 0..MR {
                    let got = dst[s * 3 * MR + p * MR + r];
                    if r < rows {
                        assert_eq!(got, a[p * lda + 1 + s * MR + r]);
                    } else {
                        assert_eq!(got, 0.0, "padding at strip {s} p {p} r {r}");
                    }
                }
            }
        }
    }

    #[test]
    fn pack_b_t_matches_transposed_elements() {
        // b is 5×4 column-major (n=5, k=4); operand Bᵀ is 4×5.
        let ldb = 6;
        let b: Vec<f64> = (0..ldb * 4).map(|v| (v * 3 % 17) as f64).collect();
        let mut dst = Vec::new();
        pack_b_t(&mut dst, &b, ldb, 0, 5, 1, 3);
        let strips = 5usize.div_ceil(NR);
        for s in 0..strips {
            let cols = NR.min(5 - s * NR);
            for p in 0..3 {
                for j in 0..NR {
                    let got = dst[s * 3 * NR + p * NR + j];
                    if j < cols {
                        assert_eq!(got, b[(1 + p) * ldb + s * NR + j]);
                    } else {
                        assert_eq!(got, 0.0);
                    }
                }
            }
        }
    }

    #[test]
    fn gather_packers_match_contiguous_packers_on_transposed_data() {
        // pack_a_tn of Xᵀ must equal pack_a_nt of X (same operand, two
        // storage orientations).
        let (m, k) = (9, 5);
        let x: Vec<f64> = (0..m * k).map(|v| (v * 7 % 23) as f64 - 11.0).collect();
        // xt is k×m column-major holding Xᵀ: xt[i·k + p] = x[p·m + i].
        let mut xt = vec![0.0; k * m];
        for i in 0..m {
            for p in 0..k {
                xt[i * k + p] = x[p * m + i];
            }
        }
        let (mut d1, mut d2) = (Vec::new(), Vec::new());
        pack_a_nt(&mut d1, &x, m, 0, m, 0, k);
        pack_a_tn(&mut d2, &xt, k, 0, m, 0, k);
        assert_eq!(d1, d2);
        // pack_b_nn of Y must equal pack_b_t of Yᵀ.
        let (kk, n) = (6, 7);
        let y: Vec<f64> = (0..kk * n).map(|v| (v * 5 % 19) as f64).collect();
        let mut yt = vec![0.0; n * kk];
        for p in 0..kk {
            for j in 0..n {
                yt[p * n + j] = y[j * kk + p];
            }
        }
        let (mut d3, mut d4) = (Vec::new(), Vec::new());
        pack_b_nn(&mut d3, &y, kk, 0, n, 0, kk);
        pack_b_t(&mut d4, &yt, n, 0, n, 0, kk);
        assert_eq!(d3, d4);
    }

    #[test]
    fn apack_full_blocks_match_block_packer() {
        let kc = 256;
        let (m, k) = (21, kc + 7); // forces two k-blocks
        let lda = m + 3;
        let a: Vec<f64> = (0..lda * k).map(|v| (v % 29) as f64 - 14.0).collect();
        let full = ApackFull::pack_nt(&a, lda, m, k, kc);
        let mut expect = Vec::new();
        for (q, (p0, kb)) in full.blocks().enumerate() {
            pack_a_nt(&mut expect, &a, lda, 0, m, p0, kb);
            assert_eq!(
                full.block_strips(q, 0, full.strips()),
                &expect[..],
                "block {q}"
            );
        }
    }
}
