//! Blocked general matrix multiply `C ← C − A·Bᵀ`.
//!
//! This is the exact operation performed by the paper's *Update* tasks
//! `U(i,j,k)` with an off-diagonal target block: the target `C` is updated by
//! the product of two factored panels `A` and `B` from the same supernode.
//!
//! The kernel operates on raw column-major slices with explicit leading
//! dimensions so the solver can apply it directly to sub-panels of supernode
//! buffers. Large problems run through the packed register-blocked core
//! ([`crate::microkernel`]); tiny problems — where packing cannot amortize —
//! keep the direct two-column loop nest, preserved in
//! [`gemm_nt_unpacked_raw`] (also the measured "pre-PR" baseline of the
//! `kernel_roofline` benchmark). The dispatch point and every tile size come
//! from the caller's [`KernelConfig`] (`pack_min_flops`, `nb`, `kb`).

use crate::config::KernelConfig;
use crate::mat::Mat;
use crate::microkernel;
use crate::pack;

/// Compute `C ← C − A · Bᵀ` on raw column-major buffers under `cfg`.
///
/// * `c`: `m × n` with leading dimension `ldc`
/// * `a`: `m × k` with leading dimension `lda`
/// * `b`: `n × k` with leading dimension `ldb`
///
/// Dispatches to the packed register-blocked core when the problem is large
/// enough to amortize packing (`cfg.pack_min_flops`), and to
/// [`gemm_nt_unpacked_raw`] otherwise.
///
/// # Panics
/// Panics (via debug assertions and slice bounds) when the buffers are too
/// small for the given dimensions.
#[allow(clippy::too_many_arguments)] // BLAS-style raw interface: (buffer, ld) per operand
pub fn gemm_nt_raw(
    cfg: &KernelConfig,
    c: &mut [f64],
    ldc: usize,
    m: usize,
    n: usize,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    k: usize,
) {
    debug_assert!(ldc >= m.max(1) && lda >= m.max(1) && ldb >= n.max(1));
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    if crate::flops::gemm(m, n, k) < cfg.pack_min_flops {
        gemm_nt_unpacked_raw(cfg, c, ldc, m, n, a, lda, b, ldb, k);
        return;
    }
    gemm_nt_packed_raw(cfg, c, ldc, m, n, a, lda, b, ldb, k);
}

/// The packed register-blocked path, unconditionally — no size dispatch.
///
/// [`gemm_nt_raw`] is the entry point the solver uses; this one exists so
/// the `kernel_roofline` benchmark can measure the packed engine on both
/// sides of `cfg.pack_min_flops` (the crossover sweep that threshold's
/// default is derived from).
#[allow(clippy::too_many_arguments)] // BLAS-style raw interface: (buffer, ld) per operand
pub fn gemm_nt_packed_raw(
    cfg: &KernelConfig,
    c: &mut [f64],
    ldc: usize,
    m: usize,
    n: usize,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    k: usize,
) {
    debug_assert!(ldc >= m.max(1) && lda >= m.max(1) && ldb >= n.max(1));
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    microkernel::gemm_packed(
        cfg,
        c,
        ldc,
        m,
        n,
        k,
        |dst, i0, mb, p0, kb| pack::pack_a_nt(dst, a, lda, i0, mb, p0, kb),
        |dst, j0, nb, p0, kb| pack::pack_b_t(dst, b, ldb, j0, nb, p0, kb),
        true,
    );
}

/// The pre-packing two-column loop nest: `C ← C − A · Bᵀ` reading operands
/// in place through their leading dimensions, tiled by `cfg.nb`/`cfg.kb`.
///
/// Kept (a) as the small-problem fast path — no packing traffic, which wins
/// below `cfg.pack_min_flops` — and (b) as the measured baseline the
/// `kernel_roofline` benchmark compares the packed engine against.
#[allow(clippy::too_many_arguments)] // BLAS-style raw interface: (buffer, ld) per operand
pub fn gemm_nt_unpacked_raw(
    cfg: &KernelConfig,
    c: &mut [f64],
    ldc: usize,
    m: usize,
    n: usize,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    k: usize,
) {
    debug_assert!(ldc >= m.max(1) && lda >= m.max(1) && ldb >= n.max(1));
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let (nb, kb) = (cfg.nb, cfg.kb);
    // Loop order: jj (n tiles) -> kk (k strips) -> 2-column register
    // microkernel over j -> p -> i. Updating two C columns per k-strip pass
    // reuses every loaded A column twice, which roughly doubles arithmetic
    // intensity versus a plain rank-1 sweep; the inner i-loops stay
    // contiguous so LLVM vectorizes them.
    //
    // No skip-zero guards anywhere: factored supernode panels are dense, so
    // a `b == 0.0` test almost never fires after the first panel while its
    // branch sits inside the hot loop nest. The remainder column used to
    // guard and the main path did not; `kernel_roofline` measured the
    // guarded variant no faster on dense operands (within noise at n = 256),
    // so both paths now uniformly skip the test — which also keeps the
    // remainder column's rounding behavior identical to the main path's.
    for jj in (0..n).step_by(nb) {
        let jend = (jj + nb).min(n);
        for kk in (0..k).step_by(kb) {
            let kend = (kk + kb).min(k);
            let mut j = jj;
            while j + 1 < jend {
                // Two destination columns, split without overlap.
                let (head, tail) = c.split_at_mut((j + 1) * ldc);
                let cj0 = &mut head[j * ldc..j * ldc + m];
                let cj1 = &mut tail[..m];
                let mut p = kk;
                while p + 1 < kend {
                    let b00 = b[p * ldb + j];
                    let b01 = b[p * ldb + j + 1];
                    let b10 = b[(p + 1) * ldb + j];
                    let b11 = b[(p + 1) * ldb + j + 1];
                    let a0 = &a[p * lda..p * lda + m];
                    let a1 = &a[(p + 1) * lda..(p + 1) * lda + m];
                    for i in 0..m {
                        let (x0, x1) = (a0[i], a1[i]);
                        cj0[i] -= x0 * b00 + x1 * b10;
                        cj1[i] -= x0 * b01 + x1 * b11;
                    }
                    p += 2;
                }
                if p < kend {
                    let b0 = b[p * ldb + j];
                    let b1 = b[p * ldb + j + 1];
                    let ap = &a[p * lda..p * lda + m];
                    for i in 0..m {
                        let x = ap[i];
                        cj0[i] -= x * b0;
                        cj1[i] -= x * b1;
                    }
                }
                j += 2;
            }
            // Remainder column.
            if j < jend {
                let cj = &mut c[j * ldc..j * ldc + m];
                let mut p = kk;
                while p + 1 < kend {
                    let bj0 = b[p * ldb + j];
                    let bj1 = b[(p + 1) * ldb + j];
                    let a0 = &a[p * lda..p * lda + m];
                    let a1 = &a[(p + 1) * lda..(p + 1) * lda + m];
                    for i in 0..m {
                        cj[i] -= a0[i] * bj0 + a1[i] * bj1;
                    }
                    p += 2;
                }
                if p < kend {
                    let bjp = b[p * ldb + j];
                    let ap = &a[p * lda..p * lda + m];
                    for i in 0..m {
                        cj[i] -= ap[i] * bjp;
                    }
                }
            }
        }
    }
}

/// Matrix-level wrapper with an explicit config: `C ← C − A·Bᵀ`.
///
/// # Panics
/// Panics if `A.cols() != B.cols()`, `C.rows() != A.rows()`, or
/// `C.cols() != B.rows()`.
pub fn gemm_nt_cfg(cfg: &KernelConfig, c: &mut Mat, a: &Mat, b: &Mat) {
    assert_eq!(a.cols(), b.cols(), "gemm_nt: inner dimensions differ");
    assert_eq!(c.rows(), a.rows(), "gemm_nt: row dimensions differ");
    assert_eq!(c.cols(), b.rows(), "gemm_nt: column dimensions differ");
    let (m, n, k) = (c.rows(), c.cols(), a.cols());
    let (ldc, lda, ldb) = (c.ld(), a.ld(), b.ld());
    gemm_nt_raw(
        cfg,
        c.as_mut_slice(),
        ldc,
        m,
        n,
        a.as_slice(),
        lda,
        b.as_slice(),
        ldb,
        k,
    );
}

/// Matrix-level wrapper under the default config: `C ← C − A·Bᵀ`.
///
/// # Panics
/// Same as [`gemm_nt_cfg`].
pub fn gemm_nt(c: &mut Mat, a: &Mat, b: &Mat) {
    gemm_nt_cfg(&KernelConfig::default(), c, a, b);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::gemm_ref;

    fn check(m: usize, n: usize, k: usize) {
        let a = Mat::from_fn(m, k, |r, c| ((r * 13 + c * 7) % 9) as f64 - 4.0);
        let b = Mat::from_fn(n, k, |r, c| ((r * 5 + c * 11) % 13) as f64 * 0.5 - 3.0);
        let mut c1 = Mat::from_fn(m, n, |r, c| (r + c) as f64);
        let mut c2 = c1.clone();
        gemm_nt(&mut c1, &a, &b);
        gemm_ref(&mut c2, &a, &b);
        assert!(c1.max_abs_diff(&c2) < 1e-10, "m={m} n={n} k={k}");
    }

    #[test]
    fn matches_reference_on_small_shapes() {
        for &(m, n, k) in &[(1, 1, 1), (2, 3, 4), (5, 5, 5), (7, 1, 3), (1, 7, 3)] {
            check(m, n, k);
        }
    }

    #[test]
    fn matches_reference_across_tile_boundaries() {
        // Spans the unpacked tile sizes, the packed dispatch threshold and
        // the packed cache blocks.
        for &(m, n, k) in &[
            (65, 64, 129),
            (63, 65, 127),
            (100, 70, 130),
            (129, 2, 1),
            (260, 140, 300),
        ] {
            check(m, n, k);
        }
    }

    #[test]
    fn unpacked_baseline_matches_reference() {
        let cfg = KernelConfig::default();
        for &(m, n, k) in &[(5, 3, 4), (65, 64, 129), (100, 70, 130)] {
            let a = Mat::from_fn(m, k, |r, c| ((r * 13 + c * 7) % 9) as f64 - 4.0);
            let b = Mat::from_fn(n, k, |r, c| ((r * 5 + c * 11) % 13) as f64 * 0.5 - 3.0);
            let mut c1 = Mat::from_fn(m, n, |r, c| (r + c) as f64);
            let mut c2 = c1.clone();
            gemm_nt_unpacked_raw(
                &cfg,
                c1.as_mut_slice(),
                m,
                m,
                n,
                a.as_slice(),
                m,
                b.as_slice(),
                n,
                k,
            );
            gemm_ref(&mut c2, &a, &b);
            assert!(c1.max_abs_diff(&c2) < 1e-10, "m={m} n={n} k={k}");
        }
    }

    #[test]
    fn degenerate_dimensions_are_noops() {
        let a = Mat::zeros(3, 0);
        let b = Mat::zeros(2, 0);
        let mut c = Mat::from_fn(3, 2, |r, _| r as f64);
        let before = c.clone();
        gemm_nt(&mut c, &a, &b);
        assert_eq!(c, before);
    }

    #[test]
    fn raw_kernel_respects_leading_dimension() {
        // Embed a 2x2 C in a 4-row buffer; rows 2..4 must stay untouched.
        let mut c = vec![1.0; 8];
        let a = [1.0, 2.0, 9.0, 9.0]; // 2x1, lda=4 would overrun; use lda=2 here
        let b = [3.0, 4.0];
        gemm_nt_raw(
            &KernelConfig::default(),
            &mut c,
            4,
            2,
            2,
            &a[..2],
            2,
            &b,
            2,
            1,
        );
        // C[0,0] = 1 - 1*3, C[1,0] = 1 - 2*3, C[0,1] = 1 - 1*4, C[1,1] = 1 - 2*4
        assert_eq!(&c, &[-2.0, -5.0, 1.0, 1.0, -3.0, -7.0, 1.0, 1.0]);
    }

    #[test]
    fn dispatch_threshold_is_config_driven() {
        // With pack_min_flops = 0 every call takes the packed path; with
        // u64::MAX every call stays unpacked. Both must match the oracle.
        let (m, n, k) = (40, 30, 25);
        let a = Mat::from_fn(m, k, |r, c| ((r * 13 + c * 7) % 9) as f64 - 4.0);
        let b = Mat::from_fn(n, k, |r, c| ((r * 5 + c * 11) % 13) as f64 * 0.5 - 3.0);
        let mut want = Mat::from_fn(m, n, |r, c| (r + c) as f64);
        gemm_ref(&mut want, &a, &b);
        for pack_min_flops in [0, u64::MAX] {
            let cfg = KernelConfig {
                pack_min_flops,
                ..Default::default()
            };
            let mut c = Mat::from_fn(m, n, |r, c| (r + c) as f64);
            gemm_nt_cfg(&cfg, &mut c, &a, &b);
            assert!(c.max_abs_diff(&want) < 1e-10);
        }
    }
}
