//! Blocked lower-triangular Cholesky factorization (LAPACK `POTRF`).
//!
//! Used by *Diagonal Factorization* tasks `D(i)`: the dense diagonal block of
//! supernode `i` is factored in place into its lower Cholesky factor. The
//! blocked algorithm is the classical right-looking panel scheme — factor a
//! diagonal panel, TRSM the sub-panel, SYRK the trailing submatrix — so that
//! almost all flops run through the level-3 kernels in this crate. The outer
//! panel width `pb` and the inner diagonal-tile width `ib` come from the
//! caller's [`KernelConfig`].

use crate::config::KernelConfig;
use crate::error::DenseError;
use crate::mat::Mat;
use crate::syrk::syrk_lower_raw;
use crate::trsm::trsm_right_lower_trans_raw;

/// Unblocked in-place lower Cholesky of the leading `n × n` of `a`
/// (leading dimension `lda`). Only the lower triangle is read and written.
fn potrf_unblocked(a: &mut [f64], lda: usize, n: usize, col0: usize) -> Result<(), DenseError> {
    for j in 0..n {
        let mut d = a[j * lda + j];
        // d -= sum_k a[j,k]^2 was already folded in by the caller's SYRK;
        // within the panel we still need the left-of-j columns of the panel.
        for k in 0..j {
            let v = a[k * lda + j];
            d -= v * v;
        }
        if d <= 0.0 || !d.is_finite() {
            return Err(DenseError::NotPositiveDefinite { column: col0 + j });
        }
        let djj = d.sqrt();
        a[j * lda + j] = djj;
        let inv = 1.0 / djj;
        for i in j + 1..n {
            let mut s = a[j * lda + i];
            for k in 0..j {
                s -= a[k * lda + i] * a[k * lda + j];
            }
            a[j * lda + i] = s * inv;
        }
    }
    Ok(())
}

/// Right-looking factorization of one `n × n` diagonal tile (`n ≤ cfg.pb`)
/// in `cfg.ib`-column steps: scalar-factor the ib×ib corner, TRSM the rows
/// below it, SYRK the trailing part of the tile. `a` points at the tile's
/// diagonal element; `tile` is caller-owned scratch (the corner interleaves
/// with the strip it solves in the same columns, so it is copied out to keep
/// the borrows disjoint). Without this second level the scalar tile factor
/// is ~pb²/n² of the flops but runs an order of magnitude below the packed
/// rate, which made it ~a quarter of the total wall time.
fn potrf_tile(
    cfg: &KernelConfig,
    a: &mut [f64],
    lda: usize,
    n: usize,
    col0: usize,
    tile: &mut Vec<f64>,
) -> Result<(), DenseError> {
    let mut j = 0;
    while j < n {
        let ib = cfg.ib.min(n - j);
        potrf_unblocked(&mut a[j * lda + j..], lda, ib, col0 + j)?;
        let m = n - j - ib;
        if m > 0 {
            tile.resize(ib * ib, 0.0);
            for c in 0..ib {
                let src = (j + c) * lda + j;
                tile[c * ib..c * ib + ib].copy_from_slice(&a[src..src + ib]);
            }
            trsm_right_lower_trans_raw(cfg, &mut a[j * lda + j + ib..], lda, m, ib, tile, ib);
            // The sub-corner strip (cols j..j+ib, rows j+ib..) lies entirely
            // before column j+ib in memory, so it splits off borrow-disjoint
            // from the trailing target — SYRK reads it strided in place.
            let (lo, hi) = a.split_at_mut((j + ib) * lda);
            syrk_lower_raw(
                cfg,
                &mut hi[j + ib..],
                lda,
                m,
                &lo[j * lda + j + ib..],
                lda,
                ib,
            );
        }
        j += ib;
    }
    Ok(())
}

/// In-place blocked lower Cholesky on a raw column-major buffer under `cfg`.
///
/// On success the lower triangle of `a` holds `L` with `A = L·Lᵀ`; the strict
/// upper triangle is left unmodified. On failure the buffer contents are
/// unspecified and the error reports the offending global column.
pub fn potrf_raw(
    cfg: &KernelConfig,
    a: &mut [f64],
    lda: usize,
    n: usize,
) -> Result<(), DenseError> {
    // Workspace for the jb×jb diagonal-tile copy, reused across all panels:
    // one allocation per call keeps the right-looking panel loop itself
    // allocation-free. The level-3 interior — the strip TRSM and the
    // trailing SYRK — runs on the packed register-blocked GEMM core via
    // those kernels.
    let mut tile: Vec<f64> = Vec::new();
    let mut j = 0;
    while j < n {
        let jb = cfg.pb.min(n - j);
        // Factor panel A[j.., j..j+jb]: first the jb x jb diagonal tile
        // (itself ib-blocked; the scratch vec is free for reuse below).
        {
            let panel = &mut a[j * lda..];
            potrf_tile(cfg, &mut panel[j..], lda, jb, j, &mut tile)?;
        }
        let m = n - j - jb;
        if m > 0 {
            // ... then the sub-diagonal strip: solve X * Ljj^T = A[j+jb.., j..j+jb].
            // The diagonal tile and the strip live interleaved in the same
            // columns, so pack the (small) jb x jb tile into the scratch
            // buffer to keep the borrows disjoint.
            tile.resize(jb * jb, 0.0);
            for c in 0..jb {
                let src = (j + c) * lda + j;
                tile[c * jb..c * jb + jb].copy_from_slice(&a[src..src + jb]);
            }
            {
                // Strided view of the strip: rows j+jb..n of columns j..j+jb.
                // Solve in place column panel with ld = lda.
                let off = j * lda + j + jb;
                trsm_right_lower_trans_raw(cfg, &mut a[off..], lda, m, jb, &tile, jb);
            }
            // Trailing update: A[j+jb.., j+jb..] -= strip * strip^T (SYRK).
            // The strip (cols j..j+jb, rows j+jb..n) lies entirely before
            // column j+jb in memory, so it splits off borrow-disjoint from
            // the trailing target; SYRK reads it strided in place — its own
            // internal pack is the only copy the strip takes per panel.
            let (lo, hi) = a.split_at_mut((j + jb) * lda);
            syrk_lower_raw(
                cfg,
                &mut hi[j + jb..],
                lda,
                m,
                &lo[j * lda + j + jb..],
                lda,
                jb,
            );
        }
        j += jb;
    }
    Ok(())
}

/// In-place blocked lower Cholesky of a [`Mat`] with an explicit config.
///
/// On success the lower triangle of `a` holds `L`; the strict upper triangle
/// is untouched (call [`Mat::zero_upper`] if a clean `L` is needed).
///
/// # Errors
/// [`DenseError::NotPositiveDefinite`] when a non-positive pivot appears.
pub fn potrf_cfg(cfg: &KernelConfig, a: &mut Mat) -> Result<(), DenseError> {
    assert_eq!(a.rows(), a.cols(), "potrf requires a square matrix");
    let n = a.rows();
    let lda = a.ld();
    potrf_raw(cfg, a.as_mut_slice(), lda, n)
}

/// In-place blocked lower Cholesky of a [`Mat`] under the default config.
///
/// # Errors
/// Same as [`potrf_cfg`].
pub fn potrf(a: &mut Mat) -> Result<(), DenseError> {
    potrf_cfg(&KernelConfig::default(), a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::potrf_ref;

    fn check(n: usize) {
        let a0 = Mat::spd_from(n, |r, c| ((r * 17 + c * 9) % 23) as f64 * 0.25 - 2.5);
        let mut a = a0.clone();
        potrf(&mut a).unwrap();
        a.zero_upper();
        let expect = potrf_ref(&a0).unwrap();
        assert!(
            a.max_abs_diff(&expect) < 1e-8,
            "n={n} diff={}",
            a.max_abs_diff(&expect)
        );
        let recon = a.matmul(&a.transpose());
        assert!(recon.max_abs_diff(&a0) < 1e-7, "n={n} reconstruction");
    }

    #[test]
    fn matches_reference_small() {
        for n in [1, 2, 3, 5, 8, 13] {
            check(n);
        }
    }

    #[test]
    fn matches_reference_across_panel_boundaries() {
        for n in [47, 48, 49, 96, 97, 150] {
            check(n);
        }
    }

    #[test]
    fn detects_indefinite_matrix_at_correct_column() {
        let mut a = Mat::eye(100);
        a[(73, 73)] = -4.0;
        match potrf(&mut a) {
            Err(DenseError::NotPositiveDefinite { column }) => assert_eq!(column, 73),
            other => panic!("expected failure, got {other:?}"),
        }
    }

    #[test]
    fn detects_semidefinite_matrix() {
        // Rank-1 matrix: ones everywhere — fails at column 1.
        let mut a = Mat::from_fn(5, 5, |_, _| 1.0);
        match potrf(&mut a) {
            Err(DenseError::NotPositiveDefinite { column }) => assert_eq!(column, 1),
            other => panic!("expected failure, got {other:?}"),
        }
    }

    #[test]
    fn upper_triangle_preserved() {
        let mut a = Mat::spd_from(10, |r, c| (r + c % 3) as f64);
        // Stamp a sentinel into the strict upper triangle.
        for j in 1..10 {
            for i in 0..j {
                a[(i, j)] = 777.0;
            }
        }
        // Mirror lower values so the matrix used is the lower triangle.
        potrf(&mut a).unwrap();
        for j in 1..10 {
            for i in 0..j {
                assert_eq!(a[(i, j)], 777.0);
            }
        }
    }

    #[test]
    fn non_default_panels_match_reference() {
        let cfg = KernelConfig {
            pb: 16,
            ib: 4,
            ..Default::default()
        };
        cfg.validate().unwrap();
        for n in [49, 97] {
            let a0 = Mat::spd_from(n, |r, c| ((r * 17 + c * 9) % 23) as f64 * 0.25 - 2.5);
            let mut a = a0.clone();
            potrf_cfg(&cfg, &mut a).unwrap();
            a.zero_upper();
            let expect = potrf_ref(&a0).unwrap();
            assert!(a.max_abs_diff(&expect) < 1e-8, "n={n}");
        }
    }
}
