//! Error type shared by the dense kernels.

use std::fmt;

/// Errors produced by dense factorization kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DenseError {
    /// The matrix is not (numerically) symmetric positive definite: a
    /// non-positive pivot was encountered at the given local column index.
    NotPositiveDefinite {
        /// Zero-based column index (within the block being factored) at which
        /// the non-positive pivot appeared.
        column: usize,
    },
    /// Mismatched operand dimensions, with a human-readable description.
    DimensionMismatch(String),
}

impl fmt::Display for DenseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DenseError::NotPositiveDefinite { column } => {
                write!(
                    f,
                    "matrix is not positive definite (pivot at column {column})"
                )
            }
            DenseError::DimensionMismatch(msg) => write!(f, "dimension mismatch: {msg}"),
        }
    }
}

impl std::error::Error for DenseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = DenseError::NotPositiveDefinite { column: 3 };
        assert!(e.to_string().contains("column 3"));
        let e = DenseError::DimensionMismatch("a vs b".into());
        assert!(e.to_string().contains("a vs b"));
    }
}
