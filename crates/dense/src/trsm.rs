//! Triangular solve `X · Lᵀ = B` (BLAS `TRSM`, side=right, uplo=lower,
//! trans=T, diag=non-unit).
//!
//! This is the operation performed by *Factorization* tasks `F(i,j)`: given
//! the factored diagonal block `L(j,j)` of supernode `j`, each off-diagonal
//! block `B(i,j)` of the supernode is turned into a factor block by solving
//! `L(i,j) · L(j,j)ᵀ = B(i,j)` in place.
//!
//! Panel blocking comes from the caller's [`KernelConfig`]:
//!
//! * `jb` — outer column-panel width. Wide, so the trailing update — the
//!   GEMM that dominates the flops — runs with inner dimension `jb` and
//!   streams the trailing columns of `B` only `n/jb` times. Narrowing it
//!   makes the scalar in-panel share smaller but multiplies those
//!   memory-bound passes over `C`; 64 measured best on the `kernel_roofline`
//!   sweep (see `results/kernel_roofline.txt`).
//! * `sj` — inner sub-block width within a panel. The scalar triangular
//!   sweep is confined to `sj` columns at a time; the rest of the in-panel
//!   work runs on the GEMM path, so the truly-scalar flop share is O(sj/n).
//! * `rs` — row-strip height for the scalar triangular sweep. Row strips of
//!   the solve are independent (row `i` of column `j` depends only on row
//!   `i` of earlier columns), so the sweep runs strip-by-strip: an rs×sj
//!   strip of `B` stays L1-resident across the whole k-loop instead of
//!   streaming every full column from L2 per AXPY. Each element still sees
//!   the identical k-ascending update sequence, so results are bit-identical
//!   to the unstripped sweep.

use crate::config::KernelConfig;
use crate::gemm::gemm_nt_raw;
use crate::mat::Mat;

/// Solve `X · Lᵀ = B` in place on raw column-major buffers under `cfg`.
///
/// * `l`: `n × n` lower-triangular, leading dimension `ldl`
/// * `b`: `m × n`, leading dimension `ldb`; overwritten with `X`
///
/// The strict upper triangle of `l` is never read.
pub fn trsm_right_lower_trans_raw(
    cfg: &KernelConfig,
    b: &mut [f64],
    ldb: usize,
    m: usize,
    n: usize,
    l: &[f64],
    ldl: usize,
) {
    if m == 0 || n == 0 {
        return;
    }
    let (jbw, sjw, rs) = (cfg.jb, cfg.sj, cfg.rs);
    // Right-looking blocked sweep over column panels of B. For panel
    // J = [jj, jend):
    //   1. solve the small triangular system against L[J, J] (all updates
    //      from earlier panels have already been applied),
    //   2. update the trailing columns:
    //      B[:, jend..] -= B[:, J] * (L[jend.., J])^T   (GEMM).
    // Right-looking keeps the GEMM's A operand at a fixed jb columns — the
    // just-solved panel, packed once — instead of the left-looking form
    // whose A operand is *all* solved columns, re-packed on every panel
    // (O(m·n²/jb) packing traffic against O(m·n²) flops).
    for jj in (0..n).step_by(jbw) {
        let jend = (jj + jbw).min(n);
        let jb = jend - jj;
        // In-panel solve, itself blocked: scalar-solve sj columns, then push
        // their contribution into the remaining panel columns as a GEMM.
        for sj in (jj..jend).step_by(sjw) {
            let send = (sj + sjw).min(jend);
            // Unblocked solve of columns sj..send against L[sj..send, sj..send],
            // strip-mined over rows (`cfg.rs`).
            for i0 in (0..m).step_by(rs) {
                let rows = rs.min(m - i0);
                for j in sj..send {
                    for k in sj..j {
                        let ljk = l[k * ldl + j];
                        if ljk != 0.0 {
                            let (bk, bj) = {
                                let (lo, hi) = b.split_at_mut(j * ldb + i0);
                                (&lo[k * ldb + i0..k * ldb + i0 + rows], &mut hi[..rows])
                            };
                            for i in 0..rows {
                                bj[i] -= bk[i] * ljk;
                            }
                        }
                    }
                    let d = l[j * ldl + j];
                    let inv = 1.0 / d;
                    for v in &mut b[j * ldb + i0..j * ldb + i0 + rows] {
                        *v *= inv;
                    }
                }
            }
            if send < jend {
                // B[:, send..jend] -= B[:, sj..send] * (L[send..jend, sj..send])^T
                let (done, rest) = b.split_at_mut(send * ldb);
                gemm_nt_raw(
                    cfg,
                    rest,
                    ldb,
                    m,
                    jend - send,
                    &done[sj * ldb..],
                    ldb,
                    &l[sj * ldl + send..],
                    ldl,
                    send - sj,
                );
            }
        }
        if jend < n {
            // B[:, jend..] -= B[:, jj..jend] * (L[jend.., jj..jend])^T
            let (done, rest) = b.split_at_mut(jend * ldb);
            gemm_nt_raw(
                cfg,
                rest,
                ldb,
                m,
                n - jend,
                &done[jj * ldb..],
                ldb,
                &l[jj * ldl + jend..],
                ldl,
                jb,
            );
        }
    }
}

/// Matrix-level wrapper with an explicit config: overwrite `B` with the
/// solution `X` of `X·Lᵀ = B`.
///
/// # Panics
/// Panics if `L` is not square or `B.cols() != L.rows()`.
pub fn trsm_right_lower_trans_cfg(cfg: &KernelConfig, b: &mut Mat, l: &Mat) {
    assert_eq!(l.rows(), l.cols(), "trsm: L must be square");
    assert_eq!(
        b.cols(),
        l.rows(),
        "trsm: B column count must match L order"
    );
    let (m, n) = (b.rows(), b.cols());
    let (ldb, ldl) = (b.ld(), l.ld());
    trsm_right_lower_trans_raw(cfg, b.as_mut_slice(), ldb, m, n, l.as_slice(), ldl);
}

/// Matrix-level wrapper under the default config.
///
/// # Panics
/// Same as [`trsm_right_lower_trans_cfg`].
pub fn trsm_right_lower_trans(b: &mut Mat, l: &Mat) {
    trsm_right_lower_trans_cfg(&KernelConfig::default(), b, l);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::{potrf_ref, trsm_ref};

    fn check(m: usize, n: usize) {
        let a = Mat::spd_from(n, |r, c| ((r * 7 + c * 5) % 11) as f64 - 5.0);
        let l = potrf_ref(&a).unwrap();
        let b0 = Mat::from_fn(m, n, |r, c| ((r * 3 + c) % 13) as f64 - 6.0);
        let mut b = b0.clone();
        trsm_right_lower_trans(&mut b, &l);
        let expect = trsm_ref(&l, &b0);
        assert!(b.max_abs_diff(&expect) < 1e-9, "m={m} n={n}");
        // X * L^T must reproduce B0.
        let recon = b.matmul(&l.transpose());
        assert!(recon.max_abs_diff(&b0) < 1e-8, "m={m} n={n} reconstruction");
    }

    #[test]
    fn matches_reference_small() {
        for &(m, n) in &[(1, 1), (3, 2), (4, 4), (2, 7)] {
            check(m, n);
        }
    }

    #[test]
    fn matches_reference_across_panel_boundaries() {
        for &(m, n) in &[(10, 47), (10, 48), (10, 49), (5, 97), (33, 96)] {
            check(m, n);
        }
    }

    #[test]
    fn upper_triangle_of_l_is_ignored() {
        let a = Mat::spd_from(5, |r, c| (r * 2 + c) as f64);
        let mut l = potrf_ref(&a).unwrap();
        let b0 = Mat::from_fn(3, 5, |r, c| (r + c) as f64);
        let mut b1 = b0.clone();
        trsm_right_lower_trans(&mut b1, &l);
        // Poison the strict upper triangle; result must not change.
        for j in 1..5 {
            for i in 0..j {
                l[(i, j)] = f64::NAN;
            }
        }
        let mut b2 = b0.clone();
        trsm_right_lower_trans(&mut b2, &l);
        assert_eq!(b1.max_abs_diff(&b2), 0.0);
    }

    #[test]
    fn identity_l_is_noop() {
        let l = Mat::eye(6);
        let b0 = Mat::from_fn(4, 6, |r, c| (r * 6 + c) as f64);
        let mut b = b0.clone();
        trsm_right_lower_trans(&mut b, &l);
        assert_eq!(b, b0);
    }

    #[test]
    fn non_default_panels_match_reference() {
        let cfg = KernelConfig {
            jb: 24,
            sj: 5,
            rs: 32,
            ..Default::default()
        };
        cfg.validate().unwrap();
        for &(m, n) in &[(10, 49), (33, 96)] {
            let a = Mat::spd_from(n, |r, c| ((r * 7 + c * 5) % 11) as f64 - 5.0);
            let l = potrf_ref(&a).unwrap();
            let b0 = Mat::from_fn(m, n, |r, c| ((r * 3 + c) % 13) as f64 - 6.0);
            let mut b = b0.clone();
            trsm_right_lower_trans_cfg(&cfg, &mut b, &l);
            let expect = trsm_ref(&l, &b0);
            assert!(b.max_abs_diff(&expect) < 1e-9, "m={m} n={n}");
        }
    }
}
