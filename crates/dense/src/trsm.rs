//! Triangular solve `X · Lᵀ = B` (BLAS `TRSM`, side=right, uplo=lower,
//! trans=T, diag=non-unit).
//!
//! This is the operation performed by *Factorization* tasks `F(i,j)`: given
//! the factored diagonal block `L(j,j)` of supernode `j`, each off-diagonal
//! block `B(i,j)` of the supernode is turned into a factor block by solving
//! `L(i,j) · L(j,j)ᵀ = B(i,j)` in place.

use crate::gemm::gemm_nt_raw;
use crate::mat::Mat;

/// Column-block width for the blocked TRSM.
const JB: usize = 48;

/// Solve `X · Lᵀ = B` in place on raw column-major buffers.
///
/// * `l`: `n × n` lower-triangular, leading dimension `ldl`
/// * `b`: `m × n`, leading dimension `ldb`; overwritten with `X`
///
/// The strict upper triangle of `l` is never read.
pub fn trsm_right_lower_trans_raw(
    b: &mut [f64],
    ldb: usize,
    m: usize,
    n: usize,
    l: &[f64],
    ldl: usize,
) {
    if m == 0 || n == 0 {
        return;
    }
    // Blocked forward sweep over column panels of B. For panel J = [jj, jend):
    //   1. update: B[:, J] -= B[:, 0..jj] * L[J, 0..jj]^T   (GEMM)
    //   2. solve the small triangular system against L[J, J].
    for jj in (0..n).step_by(JB) {
        let jend = (jj + JB).min(n);
        let jb = jend - jj;
        if jj > 0 {
            // B[:, jj..jend] -= B[:, 0..jj] * (L[jj..jend, 0..jj])^T
            let (done, rest) = b.split_at_mut(jj * ldb);
            gemm_nt_raw(rest, ldb, m, jb, done, ldb, &l[jj..], ldl, jj);
        }
        // Unblocked solve within the panel.
        for j in jj..jend {
            for k in jj..j {
                let ljk = l[k * ldl + j];
                if ljk != 0.0 {
                    let (bk, bj) = {
                        let (lo, hi) = b.split_at_mut(j * ldb);
                        (&lo[k * ldb..k * ldb + m], &mut hi[..m])
                    };
                    for i in 0..m {
                        bj[i] -= bk[i] * ljk;
                    }
                }
            }
            let d = l[j * ldl + j];
            let inv = 1.0 / d;
            for v in &mut b[j * ldb..j * ldb + m] {
                *v *= inv;
            }
        }
    }
}

/// Matrix-level wrapper: overwrite `B` with the solution `X` of `X·Lᵀ = B`.
///
/// # Panics
/// Panics if `L` is not square or `B.cols() != L.rows()`.
pub fn trsm_right_lower_trans(b: &mut Mat, l: &Mat) {
    assert_eq!(l.rows(), l.cols(), "trsm: L must be square");
    assert_eq!(
        b.cols(),
        l.rows(),
        "trsm: B column count must match L order"
    );
    let (m, n) = (b.rows(), b.cols());
    let (ldb, ldl) = (b.ld(), l.ld());
    trsm_right_lower_trans_raw(b.as_mut_slice(), ldb, m, n, l.as_slice(), ldl);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::{potrf_ref, trsm_ref};

    fn check(m: usize, n: usize) {
        let a = Mat::spd_from(n, |r, c| ((r * 7 + c * 5) % 11) as f64 - 5.0);
        let l = potrf_ref(&a).unwrap();
        let b0 = Mat::from_fn(m, n, |r, c| ((r * 3 + c) % 13) as f64 - 6.0);
        let mut b = b0.clone();
        trsm_right_lower_trans(&mut b, &l);
        let expect = trsm_ref(&l, &b0);
        assert!(b.max_abs_diff(&expect) < 1e-9, "m={m} n={n}");
        // X * L^T must reproduce B0.
        let recon = b.matmul(&l.transpose());
        assert!(recon.max_abs_diff(&b0) < 1e-8, "m={m} n={n} reconstruction");
    }

    #[test]
    fn matches_reference_small() {
        for &(m, n) in &[(1, 1), (3, 2), (4, 4), (2, 7)] {
            check(m, n);
        }
    }

    #[test]
    fn matches_reference_across_panel_boundaries() {
        for &(m, n) in &[(10, 47), (10, 48), (10, 49), (5, 97), (33, 96)] {
            check(m, n);
        }
    }

    #[test]
    fn upper_triangle_of_l_is_ignored() {
        let a = Mat::spd_from(5, |r, c| (r * 2 + c) as f64);
        let mut l = potrf_ref(&a).unwrap();
        let b0 = Mat::from_fn(3, 5, |r, c| (r + c) as f64);
        let mut b1 = b0.clone();
        trsm_right_lower_trans(&mut b1, &l);
        // Poison the strict upper triangle; result must not change.
        for j in 1..5 {
            for i in 0..j {
                l[(i, j)] = f64::NAN;
            }
        }
        let mut b2 = b0.clone();
        trsm_right_lower_trans(&mut b2, &l);
        assert_eq!(b1.max_abs_diff(&b2), 0.0);
    }

    #[test]
    fn identity_l_is_noop() {
        let l = Mat::eye(6);
        let b0 = Mat::from_fn(4, 6, |r, c| (r * 6 + c) as f64);
        let mut b = b0.clone();
        trsm_right_lower_trans(&mut b, &l);
        assert_eq!(b, b0);
    }
}
