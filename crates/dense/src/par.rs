//! Thread-parallel variants of the dense kernels.
//!
//! The distributed solver runs one PGAS rank per thread, so its kernels stay
//! sequential. The *shared-memory* execution path (one rank, many cores — the
//! paper's single-node configuration) instead uses these variants, which
//! split the target matrix into independent column panels and update them on
//! scoped `std::thread` workers. Data-race freedom is structural: each panel
//! is a disjoint `&mut` chunk of the column-major buffer handed to exactly
//! one worker.

use crate::gemm::gemm_nt_raw;
use crate::mat::Mat;

/// Minimum per-task flop count before parallelism pays for itself.
const PAR_FLOP_THRESHOLD: u64 = 256 * 1024;

/// Worker count for the shared-memory kernels.
fn num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Split `buf` into chunks of `chunk_len` elements and run `f` on each chunk
/// concurrently. `f` receives `(chunk_index, chunk)`; the last chunk may be
/// short. Equivalent to `par_chunks_mut(..).enumerate().for_each(..)`.
fn par_chunks_mut<F>(buf: &mut [f64], chunk_len: usize, f: F)
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    std::thread::scope(|s| {
        for (idx, chunk) in buf.chunks_mut(chunk_len).enumerate() {
            let f = &f;
            s.spawn(move || f(idx, chunk));
        }
    });
}

/// Parallel `C ← C − A·Bᵀ`: column panels of `C` are updated concurrently.
pub fn gemm_nt_par(c: &mut Mat, a: &Mat, b: &Mat) {
    assert_eq!(a.cols(), b.cols(), "gemm_nt_par: inner dimensions differ");
    assert_eq!(c.rows(), a.rows(), "gemm_nt_par: row dimensions differ");
    assert_eq!(c.cols(), b.rows(), "gemm_nt_par: column dimensions differ");
    let (m, n, k) = (c.rows(), c.cols(), a.cols());
    if crate::flops::gemm(m, n, k) < PAR_FLOP_THRESHOLD || n < 2 {
        crate::gemm::gemm_nt(c, a, b);
        return;
    }
    let ldc = c.ld();
    let (lda, ldb) = (a.ld(), b.ld());
    let nchunks = num_threads().min(n);
    let cols_per = n.div_ceil(nchunks);
    par_chunks_mut(c.as_mut_slice(), cols_per * ldc, |chunk, cpanel| {
        let j0 = chunk * cols_per;
        let jn = cols_per.min(n - j0);
        // Panel of C covers columns j0..j0+jn; the matching operand is
        // rows j0..j0+jn of B.
        gemm_nt_raw(
            cpanel,
            ldc,
            m,
            jn,
            a.as_slice(),
            lda,
            &b.as_slice()[j0..],
            ldb,
            k,
        );
    });
}

/// Parallel `C ← C − A·Aᵀ` (lower triangle): the triangle is split into
/// column panels whose below-diagonal parts are independent.
pub fn syrk_lower_par(c: &mut Mat, a: &Mat) {
    assert_eq!(c.rows(), c.cols(), "syrk_lower_par: C must be square");
    assert_eq!(a.rows(), c.rows(), "syrk_lower_par: A rows must match C");
    let (n, k) = (c.rows(), a.cols());
    if crate::flops::syrk(n, k) < PAR_FLOP_THRESHOLD || n < 2 {
        crate::syrk::syrk_lower(c, a);
        return;
    }
    let ldc = c.ld();
    let lda = a.ld();
    let nchunks = num_threads().min(n);
    let cols_per = n.div_ceil(nchunks);
    par_chunks_mut(c.as_mut_slice(), cols_per * ldc, |chunk, cpanel| {
        let j0 = chunk * cols_per;
        let jn = cols_per.min(n - j0);
        // Columns j0..j0+jn of the lower triangle: rows j0..n.
        // Work on the sub-triangle starting at (j0, j0): within the panel
        // buffer, the (j0 + i)-th row of column j lives at offset
        // j_local * ldc + row. Use the sequential SYRK on the diagonal
        // part and GEMM for the strictly-below rows, both via raw calls.
        // Diagonal jn x jn sub-triangle at rows j0..j0+jn:
        crate::syrk::syrk_lower_raw(&mut cpanel[j0..], ldc, jn, &a.as_slice()[j0..], lda, k);
        // Rows j0+jn..n of this panel: full GEMM block.
        let m = n - j0 - jn;
        if m > 0 {
            gemm_nt_raw(
                &mut cpanel[j0 + jn..],
                ldc,
                m,
                jn,
                &a.as_slice()[j0 + jn..],
                lda,
                &a.as_slice()[j0..],
                lda,
                k,
            );
        }
    });
}

/// Parallel `X · Lᵀ = B` in place: the rows of `B` are independent, so the
/// row dimension is split across threads (each thread runs the sequential
/// blocked TRSM on its horizontal strip).
pub fn trsm_right_lower_trans_par(b: &mut Mat, l: &Mat) {
    assert_eq!(l.rows(), l.cols(), "trsm_par: L must be square");
    assert_eq!(b.cols(), l.rows(), "trsm_par: B columns must match L order");
    let (m, n) = (b.rows(), b.cols());
    if crate::flops::trsm(m, n) < PAR_FLOP_THRESHOLD || m < 2 {
        crate::trsm::trsm_right_lower_trans(b, l);
        return;
    }
    // Rows are independent but interleaved in column-major storage, so we
    // split by copying horizontal strips out, solving, and copying back.
    let nthreads = num_threads().min(m);
    let rows_per = m.div_ceil(nthreads);
    let ldb = b.ld();
    let bslice = b.as_mut_slice();
    // Gather strips.
    let mut strips: Vec<(usize, Vec<f64>)> = (0..m)
        .step_by(rows_per)
        .map(|r0| {
            let rn = rows_per.min(m - r0);
            let mut s = vec![0.0; rn * n];
            for j in 0..n {
                s[j * rn..j * rn + rn].copy_from_slice(&bslice[j * ldb + r0..j * ldb + r0 + rn]);
            }
            (r0, s)
        })
        .collect();
    std::thread::scope(|scope| {
        for (r0, s) in strips.iter_mut() {
            let rn = rows_per.min(m - *r0);
            scope.spawn(move || {
                crate::trsm::trsm_right_lower_trans_raw(s, rn, rn, n, l.as_slice(), l.ld());
            });
        }
    });
    for (r0, s) in strips {
        let rn = rows_per.min(m - r0);
        for j in 0..n {
            bslice[j * ldb + r0..j * ldb + r0 + rn].copy_from_slice(&s[j * rn..j * rn + rn]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::{gemm_ref, potrf_ref, syrk_ref, trsm_ref};

    #[test]
    fn gemm_par_matches_reference() {
        for &(m, n, k) in &[(3, 5, 4), (80, 90, 70), (257, 129, 65)] {
            let a = Mat::from_fn(m, k, |r, c| ((r * 3 + c) % 7) as f64 - 3.0);
            let b = Mat::from_fn(n, k, |r, c| ((r + c * 2) % 5) as f64 - 2.0);
            let mut c1 = Mat::from_fn(m, n, |r, c| (r + c) as f64);
            let mut c2 = c1.clone();
            gemm_nt_par(&mut c1, &a, &b);
            gemm_ref(&mut c2, &a, &b);
            assert!(c1.max_abs_diff(&c2) < 1e-9, "m={m} n={n} k={k}");
        }
    }

    #[test]
    fn syrk_par_matches_reference() {
        for &(n, k) in &[(5, 3), (90, 40), (200, 64)] {
            let a = Mat::from_fn(n, k, |r, c| ((r * 5 + c) % 9) as f64 - 4.0);
            let mut c1 = Mat::from_fn(n, n, |r, c| (r * 2 + c) as f64 * 0.5);
            let mut c2 = c1.clone();
            syrk_lower_par(&mut c1, &a);
            syrk_ref(&mut c2, &a);
            for j in 0..n {
                for i in j..n {
                    assert!(
                        (c1[(i, j)] - c2[(i, j)]).abs() < 1e-9,
                        "n={n} k={k} ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn trsm_par_matches_reference() {
        for &(m, n) in &[(4, 3), (120, 60), (301, 97)] {
            let spd = Mat::spd_from(n, |r, c| ((r + c * 3) % 7) as f64);
            let l = potrf_ref(&spd).unwrap();
            let b0 = Mat::from_fn(m, n, |r, c| ((r * 2 + c) % 11) as f64 - 5.0);
            let mut b = b0.clone();
            trsm_right_lower_trans_par(&mut b, &l);
            let expect = trsm_ref(&l, &b0);
            assert!(b.max_abs_diff(&expect) < 1e-8, "m={m} n={n}");
        }
    }
}
