//! Thread-parallel variants of the dense kernels.
//!
//! The distributed solver runs one PGAS rank per thread, so its kernels stay
//! sequential. The *shared-memory* execution path (one rank, many cores — the
//! paper's single-node configuration) instead uses these variants, which
//! split the target matrix into independent column panels and update them on
//! scoped `std::thread` workers. Data-race freedom is structural: each panel
//! is a disjoint `&mut` chunk of the column-major buffer handed to exactly
//! one worker.
//!
//! The sequential-fallback decision — below how many flops forking workers
//! loses to just running the packed sequential kernel — comes from the
//! caller's [`KernelConfig::par_flop_threshold`] (default 2 Mflop, measured
//! on the `kernel_roofline` sweep; see `results/kernel_roofline.txt`).
//!
//! Two rules bound the live thread count:
//!
//! 1. At most [`num_threads`] workers exist per kernel call — chunk lists are
//!    statically partitioned across a fixed worker set, never spawned
//!    one-thread-per-chunk.
//! 2. The budget is *rank-aware*: `sympack_pgas::Runtime` registers its rank
//!    threads through [`rank_scope`], and [`num_threads`] divides the
//!    hardware parallelism by the number of live ranks, so a distributed run
//!    whose engine also enables intra-task parallelism never oversubscribes
//!    the machine.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::config::KernelConfig;
use crate::gemm::gemm_nt_raw;
use crate::mat::Mat;
use crate::microkernel;
use crate::pack;

/// Count of PGAS rank threads currently live (see [`rank_scope`]).
static ACTIVE_RANKS: AtomicUsize = AtomicUsize::new(0);

/// RAII guard registering `n` live rank threads; see [`rank_scope`].
pub struct RankScope {
    n: usize,
}

impl Drop for RankScope {
    fn drop(&mut self) {
        ACTIVE_RANKS.fetch_sub(self.n, Ordering::Relaxed);
    }
}

/// Register `nranks` concurrently running rank threads for the lifetime of
/// the returned guard. While any ranks are registered, [`num_threads`]
/// divides the hardware thread budget evenly among them so nested kernel
/// parallelism cannot oversubscribe the machine. Scopes nest additively
/// (two concurrent runtimes simply add their rank counts).
pub fn rank_scope(nranks: usize) -> RankScope {
    ACTIVE_RANKS.fetch_add(nranks, Ordering::Relaxed);
    RankScope { n: nranks }
}

/// Worker budget for the shared-memory kernels: hardware parallelism divided
/// by the number of live PGAS ranks (at least 1).
pub fn num_threads() -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let ranks = ACTIVE_RANKS.load(Ordering::Relaxed).max(1);
    (hw / ranks).max(1)
}

/// Split `buf` into chunks of `chunk_len` elements and run `f` on each chunk
/// from a pool of at most `nworkers` scoped threads. `f` receives
/// `(chunk_index, chunk)`; the last chunk may be short. Unlike a naive
/// spawn-per-chunk loop, the live thread count is bounded by `nworkers`
/// regardless of how many chunks the split produces.
fn par_chunks_mut<F>(buf: &mut [f64], chunk_len: usize, nworkers: usize, f: F)
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    if nworkers <= 1 {
        for (idx, chunk) in buf.chunks_mut(chunk_len).enumerate() {
            f(idx, chunk);
        }
        return;
    }
    let mut chunks: Vec<(usize, &mut [f64])> = buf.chunks_mut(chunk_len).enumerate().collect();
    let per_worker = chunks.len().div_ceil(nworkers);
    std::thread::scope(|s| {
        for run in chunks.chunks_mut(per_worker) {
            let f = &f;
            s.spawn(move || {
                for (idx, chunk) in run.iter_mut() {
                    f(*idx, chunk);
                }
            });
        }
    });
}

/// Parallel `C ← C − A·Bᵀ` under an explicit config: column panels of `C`
/// are updated concurrently.
///
/// The `A` operand is packed **once** into MR-strip format
/// ([`pack::ApackFull`], built with the same `cfg.kc` the consumers run
/// under) and shared read-only by every column-panel worker, instead of each
/// worker re-packing the same `A` block inside its own sequential GEMM.
/// Per-element accumulation order (ascending `k`, one `cfg.kc`-block at a
/// time) is identical to the sequential packed kernel and independent of the
/// worker count.
pub fn gemm_nt_par_cfg(cfg: &KernelConfig, c: &mut Mat, a: &Mat, b: &Mat) {
    assert_eq!(a.cols(), b.cols(), "gemm_nt_par: inner dimensions differ");
    assert_eq!(c.rows(), a.rows(), "gemm_nt_par: row dimensions differ");
    assert_eq!(c.cols(), b.rows(), "gemm_nt_par: column dimensions differ");
    gemm_nt_par_impl(cfg, c, a, b, num_threads());
}

/// Parallel `C ← C − A·Bᵀ` under the default config.
pub fn gemm_nt_par(c: &mut Mat, a: &Mat, b: &Mat) {
    gemm_nt_par_cfg(&KernelConfig::default(), c, a, b);
}

fn gemm_nt_par_impl(cfg: &KernelConfig, c: &mut Mat, a: &Mat, b: &Mat, nworkers: usize) {
    let (m, n, k) = (c.rows(), c.cols(), a.cols());
    if crate::flops::gemm(m, n, k) < cfg.par_flop_threshold || n < 2 || nworkers < 2 {
        crate::gemm::gemm_nt_cfg(cfg, c, a, b);
        return;
    }
    let ldc = c.ld();
    let (lda, ldb) = (a.ld(), b.ld());
    let apack = pack::ApackFull::pack_nt(a.as_slice(), lda, m, k, cfg.kc);
    let nchunks = nworkers.min(n);
    let cols_per = n.div_ceil(nchunks);
    par_chunks_mut(
        c.as_mut_slice(),
        cols_per * ldc,
        nworkers,
        |chunk, cpanel| {
            let j0 = chunk * cols_per;
            let jn = cols_per.min(n - j0);
            // Panel of C covers columns j0..j0+jn; the matching operand is
            // rows j0..j0+jn of B.
            microkernel::gemm_packed_shared_a(
                cfg,
                cpanel,
                ldc,
                m,
                jn,
                &apack,
                |dst, jj, nb, p0, kb| pack::pack_b_t(dst, b.as_slice(), ldb, j0 + jj, nb, p0, kb),
                true,
            );
        },
    );
}

/// Parallel `C ← C − A·Aᵀ` (lower triangle) under an explicit config: the
/// triangle is split into column panels whose below-diagonal parts are
/// independent.
pub fn syrk_lower_par_cfg(cfg: &KernelConfig, c: &mut Mat, a: &Mat) {
    assert_eq!(c.rows(), c.cols(), "syrk_lower_par: C must be square");
    assert_eq!(a.rows(), c.rows(), "syrk_lower_par: A rows must match C");
    syrk_lower_par_impl(cfg, c, a, num_threads());
}

/// Parallel `C ← C − A·Aᵀ` (lower triangle) under the default config.
pub fn syrk_lower_par(c: &mut Mat, a: &Mat) {
    syrk_lower_par_cfg(&KernelConfig::default(), c, a);
}

fn syrk_lower_par_impl(cfg: &KernelConfig, c: &mut Mat, a: &Mat, nworkers: usize) {
    let (n, k) = (c.rows(), a.cols());
    if crate::flops::syrk(n, k) < cfg.par_flop_threshold || n < 2 || nworkers < 2 {
        crate::syrk::syrk_lower_cfg(cfg, c, a);
        return;
    }
    let ldc = c.ld();
    let lda = a.ld();
    let nchunks = nworkers.min(n);
    let cols_per = n.div_ceil(nchunks);
    par_chunks_mut(
        c.as_mut_slice(),
        cols_per * ldc,
        nworkers,
        |chunk, cpanel| {
            let j0 = chunk * cols_per;
            let jn = cols_per.min(n - j0);
            // Columns j0..j0+jn of the lower triangle: rows j0..n.
            // Work on the sub-triangle starting at (j0, j0): within the panel
            // buffer, the (j0 + i)-th row of column j lives at offset
            // j_local * ldc + row. Use the sequential SYRK on the diagonal
            // part and GEMM for the strictly-below rows, both via raw calls.
            // Diagonal jn x jn sub-triangle at rows j0..j0+jn:
            crate::syrk::syrk_lower_raw(
                cfg,
                &mut cpanel[j0..],
                ldc,
                jn,
                &a.as_slice()[j0..],
                lda,
                k,
            );
            // Rows j0+jn..n of this panel: full GEMM block.
            let m = n - j0 - jn;
            if m > 0 {
                gemm_nt_raw(
                    cfg,
                    &mut cpanel[j0 + jn..],
                    ldc,
                    m,
                    jn,
                    &a.as_slice()[j0 + jn..],
                    lda,
                    &a.as_slice()[j0..],
                    lda,
                    k,
                );
            }
        },
    );
}

/// Parallel `X · Lᵀ = B` in place under an explicit config: the rows of `B`
/// are independent, so the row dimension is split across threads (each
/// thread runs the sequential blocked TRSM on its horizontal strip).
pub fn trsm_right_lower_trans_par_cfg(cfg: &KernelConfig, b: &mut Mat, l: &Mat) {
    assert_eq!(l.rows(), l.cols(), "trsm_par: L must be square");
    assert_eq!(b.cols(), l.rows(), "trsm_par: B columns must match L order");
    trsm_right_lower_trans_par_impl(cfg, b, l, num_threads());
}

/// Parallel `X · Lᵀ = B` in place under the default config.
pub fn trsm_right_lower_trans_par(b: &mut Mat, l: &Mat) {
    trsm_right_lower_trans_par_cfg(&KernelConfig::default(), b, l);
}

fn trsm_right_lower_trans_par_impl(cfg: &KernelConfig, b: &mut Mat, l: &Mat, nworkers: usize) {
    let (m, n) = (b.rows(), b.cols());
    if crate::flops::trsm(m, n) < cfg.par_flop_threshold || m < 2 || nworkers < 2 {
        crate::trsm::trsm_right_lower_trans_cfg(cfg, b, l);
        return;
    }
    // Rows are independent but interleaved in column-major storage, so we
    // split by copying horizontal strips out, solving, and copying back.
    // At most `nworkers` strips exist, so the spawn loop below is bounded.
    let nthreads = nworkers.min(m);
    let rows_per = m.div_ceil(nthreads);
    let ldb = b.ld();
    let bslice = b.as_mut_slice();
    // Gather strips.
    let mut strips: Vec<(usize, Vec<f64>)> = (0..m)
        .step_by(rows_per)
        .map(|r0| {
            let rn = rows_per.min(m - r0);
            let mut s = vec![0.0; rn * n];
            for j in 0..n {
                s[j * rn..j * rn + rn].copy_from_slice(&bslice[j * ldb + r0..j * ldb + r0 + rn]);
            }
            (r0, s)
        })
        .collect();
    std::thread::scope(|scope| {
        for (r0, s) in strips.iter_mut() {
            let rn = rows_per.min(m - *r0);
            scope.spawn(move || {
                crate::trsm::trsm_right_lower_trans_raw(cfg, s, rn, rn, n, l.as_slice(), l.ld());
            });
        }
    });
    for (r0, s) in strips {
        let rn = rows_per.min(m - r0);
        for j in 0..n {
            bslice[j * ldb + r0..j * ldb + r0 + rn].copy_from_slice(&s[j * rn..j * rn + rn]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::{gemm_ref, potrf_ref, syrk_ref, trsm_ref};

    #[test]
    fn gemm_par_matches_reference() {
        for &(m, n, k) in &[(3, 5, 4), (80, 90, 70), (257, 129, 65)] {
            let a = Mat::from_fn(m, k, |r, c| ((r * 3 + c) % 7) as f64 - 3.0);
            let b = Mat::from_fn(n, k, |r, c| ((r + c * 2) % 5) as f64 - 2.0);
            let mut c1 = Mat::from_fn(m, n, |r, c| (r + c) as f64);
            let mut c2 = c1.clone();
            gemm_nt_par(&mut c1, &a, &b);
            gemm_ref(&mut c2, &a, &b);
            assert!(c1.max_abs_diff(&c2) < 1e-9, "m={m} n={n} k={k}");
        }
    }

    #[test]
    fn gemm_par_multi_worker_matches_reference_and_is_deterministic() {
        // Force the multi-worker shared-A path regardless of the host's core
        // count; the result must match the oracle and be bit-identical to
        // the sequential packed kernel (same per-element accumulation order).
        let cfg = KernelConfig::default();
        let (m, n, k) = (160, 120, 140);
        let a = Mat::from_fn(m, k, |r, c| ((r * 3 + c) % 7) as f64 - 3.0);
        let b = Mat::from_fn(n, k, |r, c| ((r + c * 2) % 5) as f64 - 2.0);
        let c0 = Mat::from_fn(m, n, |r, c| (r + c) as f64);
        let mut cpar = c0.clone();
        gemm_nt_par_impl(&cfg, &mut cpar, &a, &b, 4);
        let mut cref = c0.clone();
        gemm_ref(&mut cref, &a, &b);
        assert!(cpar.max_abs_diff(&cref) < 1e-9);
        let mut cseq = c0.clone();
        crate::gemm::gemm_nt(&mut cseq, &a, &b);
        assert_eq!(cpar.as_slice(), cseq.as_slice(), "par != seq bitwise");
        let mut cpar3 = c0.clone();
        gemm_nt_par_impl(&cfg, &mut cpar3, &a, &b, 3);
        assert_eq!(
            cpar.as_slice(),
            cpar3.as_slice(),
            "worker count changed bits"
        );
    }

    #[test]
    fn gemm_par_non_default_config_matches_sequential_bitwise() {
        // A non-default (but same-kc) blocking must stay bit-identical
        // between the parallel shared-A path and the sequential packed
        // kernel under the same config.
        let cfg = KernelConfig {
            mc: 5 * microkernel::MR,
            nc: 9 * microkernel::NR,
            par_flop_threshold: 1,
            ..Default::default()
        };
        cfg.validate().unwrap();
        let (m, n, k) = (150, 110, 130);
        let a = Mat::from_fn(m, k, |r, c| ((r * 3 + c) % 7) as f64 - 3.0);
        let b = Mat::from_fn(n, k, |r, c| ((r + c * 2) % 5) as f64 - 2.0);
        let c0 = Mat::from_fn(m, n, |r, c| (r + c) as f64);
        let mut cpar = c0.clone();
        gemm_nt_par_impl(&cfg, &mut cpar, &a, &b, 4);
        let mut cseq = c0.clone();
        crate::gemm::gemm_nt_cfg(&cfg, &mut cseq, &a, &b);
        assert_eq!(cpar.as_slice(), cseq.as_slice(), "par != seq bitwise");
    }

    #[test]
    fn syrk_par_matches_reference() {
        for &(n, k) in &[(5, 3), (90, 40), (200, 64)] {
            let a = Mat::from_fn(n, k, |r, c| ((r * 5 + c) % 9) as f64 - 4.0);
            let mut c1 = Mat::from_fn(n, n, |r, c| (r * 2 + c) as f64 * 0.5);
            let mut c2 = c1.clone();
            syrk_lower_par(&mut c1, &a);
            syrk_ref(&mut c2, &a);
            for j in 0..n {
                for i in j..n {
                    assert!(
                        (c1[(i, j)] - c2[(i, j)]).abs() < 1e-9,
                        "n={n} k={k} ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn syrk_par_multi_worker_matches_reference() {
        let cfg = KernelConfig::default();
        let (n, k) = (220, 80);
        let a = Mat::from_fn(n, k, |r, c| ((r * 5 + c) % 9) as f64 - 4.0);
        let mut c1 = Mat::from_fn(n, n, |r, c| (r * 2 + c) as f64 * 0.5);
        let mut c2 = c1.clone();
        syrk_lower_par_impl(&cfg, &mut c1, &a, 4);
        syrk_ref(&mut c2, &a);
        for j in 0..n {
            for i in j..n {
                assert!((c1[(i, j)] - c2[(i, j)]).abs() < 1e-9, "({i},{j})");
            }
        }
    }

    #[test]
    fn trsm_par_matches_reference() {
        for &(m, n) in &[(4, 3), (120, 60), (301, 97)] {
            let spd = Mat::spd_from(n, |r, c| ((r + c * 3) % 7) as f64);
            let l = potrf_ref(&spd).unwrap();
            let b0 = Mat::from_fn(m, n, |r, c| ((r * 2 + c) % 11) as f64 - 5.0);
            let mut b = b0.clone();
            trsm_right_lower_trans_par(&mut b, &l);
            let expect = trsm_ref(&l, &b0);
            assert!(b.max_abs_diff(&expect) < 1e-8, "m={m} n={n}");
        }
    }

    #[test]
    fn trsm_par_multi_worker_matches_reference() {
        let cfg = KernelConfig::default();
        let (m, n) = (310, 100);
        let spd = Mat::spd_from(n, |r, c| ((r + c * 3) % 7) as f64);
        let l = potrf_ref(&spd).unwrap();
        let b0 = Mat::from_fn(m, n, |r, c| ((r * 2 + c) % 11) as f64 - 5.0);
        let mut b = b0.clone();
        trsm_right_lower_trans_par_impl(&cfg, &mut b, &l, 4);
        let expect = trsm_ref(&l, &b0);
        assert!(b.max_abs_diff(&expect) < 1e-8);
    }

    #[test]
    fn rank_scope_divides_thread_budget() {
        let base = num_threads();
        {
            // Registering more ranks than cores floors the budget at 1.
            let _guard = rank_scope(1024);
            assert_eq!(num_threads(), 1);
            {
                let _inner = rank_scope(2);
                assert_eq!(num_threads(), 1, "nested scopes add");
            }
        }
        assert_eq!(num_threads(), base, "guard drop restores the budget");
    }

    #[test]
    fn par_chunks_mut_bounds_workers_and_visits_every_chunk() {
        let mut buf = vec![0.0; 103];
        // 11 chunks, 3 workers: every chunk must be visited exactly once.
        par_chunks_mut(&mut buf, 10, 3, |idx, chunk| {
            for v in chunk.iter_mut() {
                *v += 1.0 + idx as f64;
            }
        });
        for (i, v) in buf.iter().enumerate() {
            assert_eq!(*v, 1.0 + (i / 10) as f64, "element {i}");
        }
    }
}
