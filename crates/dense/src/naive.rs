//! Straightforward reference implementations of the dense kernels.
//!
//! These are textbook triple-loop versions used (a) as oracles in the unit
//! and property tests of the optimized kernels and (b) for tiny blocks where
//! blocking buys nothing.

use crate::{DenseError, Mat};

/// Reference lower-triangular Cholesky: returns `L` with `A = L·Lᵀ`.
pub fn potrf_ref(a: &Mat) -> Result<Mat, DenseError> {
    let n = a.rows();
    assert_eq!(n, a.cols(), "potrf_ref requires a square matrix");
    let mut l = Mat::zeros(n, n);
    for j in 0..n {
        let mut d = a[(j, j)];
        for k in 0..j {
            d -= l[(j, k)] * l[(j, k)];
        }
        if d <= 0.0 || !d.is_finite() {
            return Err(DenseError::NotPositiveDefinite { column: j });
        }
        let djj = d.sqrt();
        l[(j, j)] = djj;
        for i in j + 1..n {
            let mut s = a[(i, j)];
            for k in 0..j {
                s -= l[(i, k)] * l[(j, k)];
            }
            l[(i, j)] = s / djj;
        }
    }
    Ok(l)
}

/// Reference solve of `X · Lᵀ = B` for lower-triangular `L` (`X` returned).
pub fn trsm_ref(l: &Mat, b: &Mat) -> Mat {
    let n = l.rows();
    assert_eq!(n, l.cols());
    assert_eq!(b.cols(), n, "B must have as many columns as L has rows");
    let m = b.rows();
    let mut x = b.clone();
    // X L^T = B  =>  column j of X: x_j = (b_j - sum_{k<j} x_k * L[j,k]) / L[j,j]
    for j in 0..n {
        for k in 0..j {
            let ljk = l[(j, k)];
            if ljk != 0.0 {
                for i in 0..m {
                    let v = x[(i, k)] * ljk;
                    x[(i, j)] -= v;
                }
            }
        }
        let d = l[(j, j)];
        for i in 0..m {
            x[(i, j)] /= d;
        }
    }
    x
}

/// Reference symmetric rank-k update `C ← C − A·Aᵀ` (lower triangle only).
pub fn syrk_ref(c: &mut Mat, a: &Mat) {
    let n = c.rows();
    assert_eq!(n, c.cols());
    assert_eq!(a.rows(), n);
    let k = a.cols();
    for j in 0..n {
        for i in j..n {
            let mut s = 0.0;
            for p in 0..k {
                s += a[(i, p)] * a[(j, p)];
            }
            c[(i, j)] -= s;
        }
    }
}

/// Reference general update `C ← C − A·Bᵀ`.
pub fn gemm_ref(c: &mut Mat, a: &Mat, b: &Mat) {
    assert_eq!(a.cols(), b.cols(), "inner dimension mismatch");
    assert_eq!(c.rows(), a.rows());
    assert_eq!(c.cols(), b.rows());
    let k = a.cols();
    for j in 0..c.cols() {
        for i in 0..c.rows() {
            let mut s = 0.0;
            for p in 0..k {
                s += a[(i, p)] * b[(j, p)];
            }
            c[(i, j)] -= s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn potrf_ref_reconstructs() {
        let a = Mat::spd_from(6, |r, c| ((r * 5 + c * 3) % 11) as f64 - 5.0);
        let l = potrf_ref(&a).unwrap();
        let rec = l.matmul(&l.transpose());
        assert!(
            rec.max_abs_diff(&a) < 1e-10,
            "diff={}",
            rec.max_abs_diff(&a)
        );
    }

    #[test]
    fn potrf_ref_rejects_indefinite() {
        let mut a = Mat::eye(3);
        a[(1, 1)] = -1.0;
        match potrf_ref(&a) {
            Err(DenseError::NotPositiveDefinite { column }) => assert_eq!(column, 1),
            other => panic!("expected NotPositiveDefinite, got {other:?}"),
        }
    }

    #[test]
    fn trsm_ref_inverts_multiplication() {
        let a = Mat::spd_from(5, |r, c| ((r + 2 * c) % 5) as f64);
        let l = potrf_ref(&a).unwrap();
        let x = Mat::from_fn(3, 5, |r, c| (r * 5 + c) as f64 * 0.25 - 2.0);
        let b = x.matmul(&l.transpose());
        let solved = trsm_ref(&l, &b);
        assert!(solved.max_abs_diff(&x) < 1e-10);
    }

    #[test]
    fn syrk_ref_matches_gemm_on_lower_triangle() {
        let a = Mat::from_fn(4, 3, |r, c| (r as f64 - c as f64) * 0.5);
        let mut c1 = Mat::spd_from(4, |r, c| (r + c) as f64);
        let mut c2 = c1.clone();
        syrk_ref(&mut c1, &a);
        gemm_ref(&mut c2, &a, &a);
        for j in 0..4 {
            for i in j..4 {
                assert!((c1[(i, j)] - c2[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn gemm_ref_known_values() {
        // C (2x2) -= A (2x1) * B^T (1x2)
        let mut c = Mat::zeros(2, 2);
        let a = Mat::from_row_major(2, 1, vec![1.0, 2.0]);
        let b = Mat::from_row_major(2, 1, vec![3.0, 4.0]);
        gemm_ref(&mut c, &a, &b);
        assert_eq!(c, Mat::from_row_major(2, 2, vec![-3.0, -4.0, -6.0, -8.0]));
    }
}
