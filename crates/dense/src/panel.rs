//! Panel kernels for the blocked multi-NRHS triangular solve.
//!
//! The distributed solve in `sympack::trisolve` operates on dense column
//! panels `B` of shape `n × nrhs` (one column per right-hand side) instead of
//! single vectors. Its four task bodies map onto four kernels:
//!
//! * [`trsm_left_lower_notrans`] — `L · Y = B` (forward substitution on a
//!   panel; BLAS `TRSM` side=left, trans=N),
//! * [`trsm_left_lower_trans`] — `Lᵀ · X = B` (backward substitution on a
//!   panel; side=left, trans=T),
//! * [`gemm_nn_acc`] — `C ← C + A·B` (a block's forward contribution),
//! * [`gemm_tn_acc`] — `C ← C + Aᵀ·B` (a block's backward contribution).
//!
//! Accumulation is *additive* here (the solve subtracts contributions at the
//! owning accumulator), in contrast to [`crate::gemm::gemm_nt`]'s built-in
//! subtraction. With `nrhs = 1` the substitution kernels perform exactly the
//! arithmetic of the scalar `forward_subst`/`backward_subst` routines, column
//! sweep for column sweep, so the single-vector solve path is unchanged.

use crate::mat::Mat;

/// Solve `L · Y = B` in place on raw column-major buffers.
///
/// * `l`: `n × n` lower-triangular, leading dimension `ldl`
/// * `b`: `n × nrhs`, leading dimension `ldb`; overwritten with `Y`
///
/// The strict upper triangle of `l` is never read.
pub fn trsm_left_lower_notrans_raw(
    b: &mut [f64],
    ldb: usize,
    n: usize,
    nrhs: usize,
    l: &[f64],
    ldl: usize,
) {
    if n == 0 || nrhs == 0 {
        return;
    }
    for c in 0..n {
        let lc = &l[c * ldl..c * ldl + n];
        let d = lc[c];
        for k in 0..nrhs {
            let col = &mut b[k * ldb..k * ldb + n];
            let yc = col[c] / d;
            col[c] = yc;
            for r in c + 1..n {
                col[r] -= lc[r] * yc;
            }
        }
    }
}

/// Solve `Lᵀ · X = B` in place on raw column-major buffers.
///
/// Same shapes as [`trsm_left_lower_notrans_raw`]; `b` is overwritten with
/// `X`. The strict upper triangle of `l` is never read.
pub fn trsm_left_lower_trans_raw(
    b: &mut [f64],
    ldb: usize,
    n: usize,
    nrhs: usize,
    l: &[f64],
    ldl: usize,
) {
    if n == 0 || nrhs == 0 {
        return;
    }
    for c in (0..n).rev() {
        let lc = &l[c * ldl..c * ldl + n];
        let d = lc[c];
        for k in 0..nrhs {
            let col = &mut b[k * ldb..k * ldb + n];
            let mut v = col[c];
            for r in c + 1..n {
                v -= lc[r] * col[r];
            }
            col[c] = v / d;
        }
    }
}

/// Matrix-level wrapper: overwrite `B` with the solution `Y` of `L·Y = B`.
///
/// # Panics
/// Panics if `L` is not square or `B.rows() != L.rows()`.
pub fn trsm_left_lower_notrans(b: &mut Mat, l: &Mat) {
    assert_eq!(l.rows(), l.cols(), "trsm: L must be square");
    assert_eq!(b.rows(), l.rows(), "trsm: B row count must match L order");
    let (n, nrhs) = (b.rows(), b.cols());
    let (ldb, ldl) = (b.ld(), l.ld());
    trsm_left_lower_notrans_raw(b.as_mut_slice(), ldb, n, nrhs, l.as_slice(), ldl);
}

/// Matrix-level wrapper: overwrite `B` with the solution `X` of `Lᵀ·X = B`.
///
/// # Panics
/// Panics if `L` is not square or `B.rows() != L.rows()`.
pub fn trsm_left_lower_trans(b: &mut Mat, l: &Mat) {
    assert_eq!(l.rows(), l.cols(), "trsm: L must be square");
    assert_eq!(b.rows(), l.rows(), "trsm: B row count must match L order");
    let (n, nrhs) = (b.rows(), b.cols());
    let (ldb, ldl) = (b.ld(), l.ld());
    trsm_left_lower_trans_raw(b.as_mut_slice(), ldb, n, nrhs, l.as_slice(), ldl);
}

/// Compute `C ← C + A · B` on raw column-major buffers.
///
/// * `c`: `m × n`, leading dimension `ldc`
/// * `a`: `m × k`, leading dimension `lda`
/// * `b`: `k × n`, leading dimension `ldb`
#[allow(clippy::too_many_arguments)] // BLAS-style raw interface: (buffer, ld) per operand
pub fn gemm_nn_acc_raw(
    c: &mut [f64],
    ldc: usize,
    m: usize,
    n: usize,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    k: usize,
) {
    debug_assert!(ldc >= m.max(1) && lda >= m.max(1) && ldb >= k.max(1));
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    for j in 0..n {
        let cj = &mut c[j * ldc..j * ldc + m];
        let bj = &b[j * ldb..j * ldb + k];
        for p in 0..k {
            let bpj = bj[p];
            if bpj != 0.0 {
                let ap = &a[p * lda..p * lda + m];
                for i in 0..m {
                    cj[i] += ap[i] * bpj;
                }
            }
        }
    }
}

/// Compute `C ← C + Aᵀ · B` on raw column-major buffers.
///
/// * `c`: `m × n`, leading dimension `ldc`
/// * `a`: `k × m`, leading dimension `lda` (transposed operand)
/// * `b`: `k × n`, leading dimension `ldb`
#[allow(clippy::too_many_arguments)] // BLAS-style raw interface: (buffer, ld) per operand
pub fn gemm_tn_acc_raw(
    c: &mut [f64],
    ldc: usize,
    m: usize,
    n: usize,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    k: usize,
) {
    debug_assert!(ldc >= m.max(1) && lda >= k.max(1) && ldb >= k.max(1));
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    for j in 0..n {
        let bj = &b[j * ldb..j * ldb + k];
        let cj = &mut c[j * ldc..j * ldc + m];
        for i in 0..m {
            let ai = &a[i * lda..i * lda + k];
            let mut s = 0.0;
            for p in 0..k {
                s += ai[p] * bj[p];
            }
            cj[i] += s;
        }
    }
}

/// Matrix-level wrapper: `C ← C + A·B`.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn gemm_nn_acc(c: &mut Mat, a: &Mat, b: &Mat) {
    assert_eq!(a.cols(), b.rows(), "gemm_nn: inner dimensions differ");
    assert_eq!(c.rows(), a.rows(), "gemm_nn: row dimensions differ");
    assert_eq!(c.cols(), b.cols(), "gemm_nn: column dimensions differ");
    let (m, n, k) = (c.rows(), c.cols(), a.cols());
    let (ldc, lda, ldb) = (c.ld(), a.ld(), b.ld());
    gemm_nn_acc_raw(
        c.as_mut_slice(),
        ldc,
        m,
        n,
        a.as_slice(),
        lda,
        b.as_slice(),
        ldb,
        k,
    );
}

/// Matrix-level wrapper: `C ← C + Aᵀ·B`.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn gemm_tn_acc(c: &mut Mat, a: &Mat, b: &Mat) {
    assert_eq!(a.rows(), b.rows(), "gemm_tn: inner dimensions differ");
    assert_eq!(c.rows(), a.cols(), "gemm_tn: row dimensions differ");
    assert_eq!(c.cols(), b.cols(), "gemm_tn: column dimensions differ");
    let (m, n, k) = (c.rows(), c.cols(), a.rows());
    let (ldc, lda, ldb) = (c.ld(), a.ld(), b.ld());
    gemm_tn_acc_raw(
        c.as_mut_slice(),
        ldc,
        m,
        n,
        a.as_slice(),
        lda,
        b.as_slice(),
        ldb,
        k,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::potrf_ref;

    fn spd_factor(n: usize) -> Mat {
        let a = Mat::spd_from(n, |r, c| ((r * 7 + c * 5) % 11) as f64 - 5.0);
        potrf_ref(&a).unwrap()
    }

    fn panel(n: usize, nrhs: usize) -> Mat {
        Mat::from_fn(n, nrhs, |r, c| ((r * 3 + c * 5) % 13) as f64 - 6.0)
    }

    #[test]
    fn left_notrans_solves_each_column() {
        for &(n, nrhs) in &[(1, 1), (4, 1), (5, 3), (9, 8), (17, 16)] {
            let l = spd_factor(n);
            let b0 = panel(n, nrhs);
            let mut y = b0.clone();
            trsm_left_lower_notrans(&mut y, &l);
            // L·Y must reproduce B0.
            let recon = l.matmul(&y);
            assert!(recon.max_abs_diff(&b0) < 1e-9, "n={n} nrhs={nrhs}");
        }
    }

    #[test]
    fn left_trans_solves_each_column() {
        for &(n, nrhs) in &[(1, 1), (4, 1), (5, 3), (9, 8), (17, 16)] {
            let l = spd_factor(n);
            let b0 = panel(n, nrhs);
            let mut x = b0.clone();
            trsm_left_lower_trans(&mut x, &l);
            let recon = l.transpose().matmul(&x);
            assert!(recon.max_abs_diff(&b0) < 1e-9, "n={n} nrhs={nrhs}");
        }
    }

    #[test]
    fn single_column_matches_scalar_substitution() {
        // nrhs = 1 must be arithmetically identical to the scalar routines
        // the vector solve path used (bit-equality, not just tolerance).
        let l = spd_factor(11);
        let b0 = panel(11, 1);
        let mut fwd_panel = b0.clone();
        trsm_left_lower_notrans(&mut fwd_panel, &l);
        let mut fwd_scalar: Vec<f64> = b0.as_slice().to_vec();
        for c in 0..11 {
            let yc = fwd_scalar[c] / l[(c, c)];
            fwd_scalar[c] = yc;
            for r in c + 1..11 {
                fwd_scalar[r] -= l[(r, c)] * yc;
            }
        }
        assert_eq!(fwd_panel.as_slice(), &fwd_scalar[..]);
    }

    #[test]
    fn upper_triangle_of_l_is_ignored() {
        let mut l = spd_factor(6);
        let b0 = panel(6, 4);
        let mut y1 = b0.clone();
        trsm_left_lower_notrans(&mut y1, &l);
        let mut x1 = b0.clone();
        trsm_left_lower_trans(&mut x1, &l);
        for j in 1..6 {
            for i in 0..j {
                l[(i, j)] = f64::NAN;
            }
        }
        let mut y2 = b0.clone();
        trsm_left_lower_notrans(&mut y2, &l);
        let mut x2 = b0.clone();
        trsm_left_lower_trans(&mut x2, &l);
        assert_eq!(y1.max_abs_diff(&y2), 0.0);
        assert_eq!(x1.max_abs_diff(&x2), 0.0);
    }

    #[test]
    fn gemm_nn_acc_matches_matmul() {
        for &(m, n, k) in &[(1, 1, 1), (3, 2, 4), (7, 5, 3), (16, 9, 11)] {
            let a = Mat::from_fn(m, k, |r, c| ((r * 13 + c * 7) % 9) as f64 - 4.0);
            let b = Mat::from_fn(k, n, |r, c| ((r * 5 + c * 11) % 13) as f64 * 0.5 - 3.0);
            let c0 = Mat::from_fn(m, n, |r, c| (r + c) as f64);
            let mut c1 = c0.clone();
            gemm_nn_acc(&mut c1, &a, &b);
            let mut expect = a.matmul(&b);
            for (e, base) in expect.as_mut_slice().iter_mut().zip(c0.as_slice()) {
                *e += base;
            }
            assert!(c1.max_abs_diff(&expect) < 1e-10, "m={m} n={n} k={k}");
        }
    }

    #[test]
    fn gemm_tn_acc_matches_matmul() {
        for &(m, n, k) in &[(1, 1, 1), (3, 2, 4), (7, 5, 3), (16, 9, 11)] {
            let a = Mat::from_fn(k, m, |r, c| ((r * 13 + c * 7) % 9) as f64 - 4.0);
            let b = Mat::from_fn(k, n, |r, c| ((r * 5 + c * 11) % 13) as f64 * 0.5 - 3.0);
            let c0 = Mat::from_fn(m, n, |r, c| (2 * r + c) as f64);
            let mut c1 = c0.clone();
            gemm_tn_acc(&mut c1, &a, &b);
            let mut expect = a.transpose().matmul(&b);
            for (e, base) in expect.as_mut_slice().iter_mut().zip(c0.as_slice()) {
                *e += base;
            }
            assert!(c1.max_abs_diff(&expect) < 1e-10, "m={m} n={n} k={k}");
        }
    }

    #[test]
    fn raw_kernels_respect_leading_dimensions() {
        // Embed a 2×2 C in a 4-row buffer; rows 2..4 of each column must stay
        // untouched by both accumulating kernels.
        let mut c = vec![1.0; 8];
        let a = [1.0, 2.0]; // 2×1, lda = 2
        let b = [3.0, 4.0]; // 1×2, ldb = 1
        gemm_nn_acc_raw(&mut c, 4, 2, 2, &a, 2, &b, 1, 1);
        assert_eq!(&c, &[4.0, 7.0, 1.0, 1.0, 5.0, 9.0, 1.0, 1.0]);
        let mut c = vec![0.0; 8];
        let at = [1.0, 2.0]; // 2×1 transposed operand (k=2, m=1), lda = 2
        let bt = [3.0, 4.0, 5.0, 6.0]; // 2×2, ldb = 2
        gemm_tn_acc_raw(&mut c, 4, 1, 2, &at, 2, &bt, 2, 2);
        assert_eq!(&c, &[11.0, 0.0, 0.0, 0.0, 17.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn degenerate_dimensions_are_noops() {
        let mut empty: Vec<f64> = Vec::new();
        trsm_left_lower_notrans_raw(&mut empty, 1, 0, 3, &[], 1);
        trsm_left_lower_trans_raw(&mut empty, 1, 4, 0, &[1.0; 16], 4);
        let mut c = vec![7.0; 4];
        gemm_nn_acc_raw(&mut c, 2, 2, 2, &[], 2, &[], 1, 0);
        gemm_tn_acc_raw(&mut c, 2, 2, 2, &[], 1, &[], 1, 0);
        assert_eq!(&c, &[7.0; 4]);
    }
}
