//! Panel kernels for the blocked multi-NRHS triangular solve.
//!
//! The distributed solve in `sympack::trisolve` operates on dense column
//! panels `B` of shape `n × nrhs` (one column per right-hand side) instead of
//! single vectors. Its four task bodies map onto four kernels:
//!
//! * [`trsm_left_lower_notrans`] — `L · Y = B` (forward substitution on a
//!   panel; BLAS `TRSM` side=left, trans=N),
//! * [`trsm_left_lower_trans`] — `Lᵀ · X = B` (backward substitution on a
//!   panel; side=left, trans=T),
//! * [`gemm_nn_acc`] — `C ← C + A·B` (a block's forward contribution),
//! * [`gemm_tn_acc`] — `C ← C + Aᵀ·B` (a block's backward contribution).
//!
//! Accumulation is *additive* here (the solve subtracts contributions at the
//! owning accumulator), in contrast to [`crate::gemm::gemm_nt`]'s built-in
//! subtraction. With `nrhs = 1` the substitution kernels perform exactly the
//! arithmetic of the scalar `forward_subst`/`backward_subst` routines, column
//! sweep for column sweep, so the single-vector solve path is unchanged.
//!
//! The solve-block width for the blocked left TRSMs comes from the caller's
//! [`KernelConfig::sb`]: problems with `n <= cfg.sb` run the original
//! unblocked substitution sweep unchanged — the `nrhs = 1` case must stay
//! arithmetically identical to the scalar `forward_subst`/`backward_subst`
//! routines, and small panels gain nothing from blocking.

use crate::config::KernelConfig;
use crate::mat::Mat;
use crate::microkernel;
use crate::pack;

/// Unblocked forward substitution sweep over rows `0..n` (the pre-blocking
/// kernel, kept verbatim as the within-panel solve).
fn trsm_left_notrans_unblocked(
    b: &mut [f64],
    ldb: usize,
    n: usize,
    nrhs: usize,
    l: &[f64],
    ldl: usize,
) {
    for c in 0..n {
        let lc = &l[c * ldl..c * ldl + n];
        let d = lc[c];
        for k in 0..nrhs {
            let col = &mut b[k * ldb..k * ldb + n];
            let yc = col[c] / d;
            col[c] = yc;
            for r in c + 1..n {
                col[r] -= lc[r] * yc;
            }
        }
    }
}

/// Unblocked backward substitution sweep over rows `0..n`.
fn trsm_left_trans_unblocked(
    b: &mut [f64],
    ldb: usize,
    n: usize,
    nrhs: usize,
    l: &[f64],
    ldl: usize,
) {
    for c in (0..n).rev() {
        let lc = &l[c * ldl..c * ldl + n];
        let d = lc[c];
        for k in 0..nrhs {
            let col = &mut b[k * ldb..k * ldb + n];
            let mut v = col[c];
            for r in c + 1..n {
                v -= lc[r] * col[r];
            }
            col[c] = v / d;
        }
    }
}

/// Solve `L · Y = B` in place on raw column-major buffers under `cfg`.
///
/// * `l`: `n × n` lower-triangular, leading dimension `ldl`
/// * `b`: `n × nrhs`, leading dimension `ldb`; overwritten with `Y`
///
/// The strict upper triangle of `l` is never read. For `n > cfg.sb` the
/// solve is blocked: an unblocked sweep on each `sb`-column diagonal block
/// followed by a rank-`sb` GEMM update of the rows below, so the bulk of the
/// flops run through the packed register-blocked core.
pub fn trsm_left_lower_notrans_raw(
    cfg: &KernelConfig,
    b: &mut [f64],
    ldb: usize,
    n: usize,
    nrhs: usize,
    l: &[f64],
    ldl: usize,
) {
    if n == 0 || nrhs == 0 {
        return;
    }
    let sb = cfg.sb;
    if n <= sb {
        trsm_left_notrans_unblocked(b, ldb, n, nrhs, l, ldl);
        return;
    }
    // Scratch copy of the solved diagonal-block rows: each column of `b`
    // interleaves solved (read) and trailing (written) rows, so the GEMM
    // operands cannot be split borrows of `b` itself. The copy is
    // O(sb · nrhs) per block — sb× below the update's flop count.
    let mut ysolved: Vec<f64> = Vec::new();
    let mut c0 = 0;
    while c0 < n {
        let cb = sb.min(n - c0);
        // Solve the cb × cb diagonal block in place on rows c0..c0+cb.
        {
            let lblock = &l[c0 * ldl + c0..];
            trsm_left_notrans_unblocked(&mut b[c0..], ldb, cb, nrhs, lblock, ldl);
        }
        let rows_below = n - c0 - cb;
        if rows_below > 0 {
            ysolved.resize(cb * nrhs, 0.0);
            for k in 0..nrhs {
                let src = k * ldb + c0;
                ysolved[k * cb..k * cb + cb].copy_from_slice(&b[src..src + cb]);
            }
            // B[c0+cb.., :] -= L[c0+cb.., c0..c0+cb] · Y[c0..c0+cb, :].
            gemm_nn_raw_impl(
                cfg,
                &mut b[c0 + cb..],
                ldb,
                rows_below,
                nrhs,
                &l[c0 * ldl + c0 + cb..],
                ldl,
                &ysolved,
                cb,
                cb,
                true,
            );
        }
        c0 += cb;
    }
}

/// Solve `Lᵀ · X = B` in place on raw column-major buffers under `cfg`.
///
/// Same shapes as [`trsm_left_lower_notrans_raw`]; `b` is overwritten with
/// `X`. The strict upper triangle of `l` is never read. For `n > cfg.sb` the
/// solve is blocked bottom-up: each diagonal block first absorbs the
/// contribution of the already-solved rows below it through a packed
/// `Aᵀ·B` GEMM, then runs the unblocked sweep.
pub fn trsm_left_lower_trans_raw(
    cfg: &KernelConfig,
    b: &mut [f64],
    ldb: usize,
    n: usize,
    nrhs: usize,
    l: &[f64],
    ldl: usize,
) {
    if n == 0 || nrhs == 0 {
        return;
    }
    let sb = cfg.sb;
    if n <= sb {
        trsm_left_trans_unblocked(b, ldb, n, nrhs, l, ldl);
        return;
    }
    // Scratch copy of the already-solved rows below the current block (same
    // borrow-splitting constraint as the notrans case).
    let mut xsolved: Vec<f64> = Vec::new();
    let nblocks = n.div_ceil(sb);
    for blk in (0..nblocks).rev() {
        let c0 = blk * sb;
        let cb = sb.min(n - c0);
        let rows_below = n - c0 - cb;
        if rows_below > 0 {
            xsolved.resize(rows_below * nrhs, 0.0);
            for k in 0..nrhs {
                let src = k * ldb + c0 + cb;
                xsolved[k * rows_below..(k + 1) * rows_below]
                    .copy_from_slice(&b[src..src + rows_below]);
            }
            // B[c0..c0+cb, :] -= L[c0+cb.., c0..c0+cb]ᵀ · X[c0+cb.., :].
            gemm_tn_raw_impl(
                cfg,
                &mut b[c0..],
                ldb,
                cb,
                nrhs,
                &l[c0 * ldl + c0 + cb..],
                ldl,
                &xsolved,
                rows_below,
                rows_below,
                true,
            );
        }
        let lblock = &l[c0 * ldl + c0..];
        trsm_left_trans_unblocked(&mut b[c0..], ldb, cb, nrhs, lblock, ldl);
    }
}

/// Matrix-level wrapper with an explicit config: overwrite `B` with the
/// solution `Y` of `L·Y = B`.
///
/// # Panics
/// Panics if `L` is not square or `B.rows() != L.rows()`.
pub fn trsm_left_lower_notrans_cfg(cfg: &KernelConfig, b: &mut Mat, l: &Mat) {
    assert_eq!(l.rows(), l.cols(), "trsm: L must be square");
    assert_eq!(b.rows(), l.rows(), "trsm: B row count must match L order");
    let (n, nrhs) = (b.rows(), b.cols());
    let (ldb, ldl) = (b.ld(), l.ld());
    trsm_left_lower_notrans_raw(cfg, b.as_mut_slice(), ldb, n, nrhs, l.as_slice(), ldl);
}

/// Matrix-level wrapper under the default config: overwrite `B` with the
/// solution `Y` of `L·Y = B`.
///
/// # Panics
/// Same as [`trsm_left_lower_notrans_cfg`].
pub fn trsm_left_lower_notrans(b: &mut Mat, l: &Mat) {
    trsm_left_lower_notrans_cfg(&KernelConfig::default(), b, l);
}

/// Matrix-level wrapper with an explicit config: overwrite `B` with the
/// solution `X` of `Lᵀ·X = B`.
///
/// # Panics
/// Panics if `L` is not square or `B.rows() != L.rows()`.
pub fn trsm_left_lower_trans_cfg(cfg: &KernelConfig, b: &mut Mat, l: &Mat) {
    assert_eq!(l.rows(), l.cols(), "trsm: L must be square");
    assert_eq!(b.rows(), l.rows(), "trsm: B row count must match L order");
    let (n, nrhs) = (b.rows(), b.cols());
    let (ldb, ldl) = (b.ld(), l.ld());
    trsm_left_lower_trans_raw(cfg, b.as_mut_slice(), ldb, n, nrhs, l.as_slice(), ldl);
}

/// Matrix-level wrapper under the default config: overwrite `B` with the
/// solution `X` of `Lᵀ·X = B`.
///
/// # Panics
/// Same as [`trsm_left_lower_trans_cfg`].
pub fn trsm_left_lower_trans(b: &mut Mat, l: &Mat) {
    trsm_left_lower_trans_cfg(&KernelConfig::default(), b, l);
}

/// Shared `C ← C ± A · B` body: packed register-blocked core when the
/// problem amortizes packing (per `cfg.pack_min_flops`), the direct loop
/// nest otherwise. `sub` selects subtraction (used by the blocked forward
/// solve's trailing update).
#[allow(clippy::too_many_arguments)] // BLAS-style raw interface: (buffer, ld) per operand
fn gemm_nn_raw_impl(
    cfg: &KernelConfig,
    c: &mut [f64],
    ldc: usize,
    m: usize,
    n: usize,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    k: usize,
    sub: bool,
) {
    debug_assert!(ldc >= m.max(1) && lda >= m.max(1) && ldb >= k.max(1));
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    if crate::flops::gemm(m, n, k) >= cfg.pack_min_flops {
        microkernel::gemm_packed(
            cfg,
            c,
            ldc,
            m,
            n,
            k,
            |dst, i0, mb, p0, kb| pack::pack_a_nt(dst, a, lda, i0, mb, p0, kb),
            |dst, j0, nb, p0, kb| pack::pack_b_nn(dst, b, ldb, j0, nb, p0, kb),
            sub,
        );
        return;
    }
    // Small path. Negating `b` instead of branching on `sub` in the inner
    // loop is exact (multiplication by ±1.0 never rounds), so the add and
    // subtract variants share one loop nest with identical rounding. No
    // skip-zero guard, matching `gemm::gemm_nt_unpacked_raw`'s choice: solve
    // panels are dense once a supernode has been visited.
    let sign = if sub { -1.0 } else { 1.0 };
    for j in 0..n {
        let cj = &mut c[j * ldc..j * ldc + m];
        let bj = &b[j * ldb..j * ldb + k];
        for p in 0..k {
            let bpj = sign * bj[p];
            let ap = &a[p * lda..p * lda + m];
            for i in 0..m {
                cj[i] += ap[i] * bpj;
            }
        }
    }
}

/// Shared `C ← C ± Aᵀ · B` body; see [`gemm_nn_raw_impl`].
#[allow(clippy::too_many_arguments)] // BLAS-style raw interface: (buffer, ld) per operand
fn gemm_tn_raw_impl(
    cfg: &KernelConfig,
    c: &mut [f64],
    ldc: usize,
    m: usize,
    n: usize,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    k: usize,
    sub: bool,
) {
    debug_assert!(ldc >= m.max(1) && lda >= k.max(1) && ldb >= k.max(1));
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    if crate::flops::gemm(m, n, k) >= cfg.pack_min_flops {
        microkernel::gemm_packed(
            cfg,
            c,
            ldc,
            m,
            n,
            k,
            |dst, i0, mb, p0, kb| pack::pack_a_tn(dst, a, lda, i0, mb, p0, kb),
            |dst, j0, nb, p0, kb| pack::pack_b_nn(dst, b, ldb, j0, nb, p0, kb),
            sub,
        );
        return;
    }
    for j in 0..n {
        let bj = &b[j * ldb..j * ldb + k];
        let cj = &mut c[j * ldc..j * ldc + m];
        for i in 0..m {
            let ai = &a[i * lda..i * lda + k];
            let mut s = 0.0;
            for p in 0..k {
                s += ai[p] * bj[p];
            }
            if sub {
                cj[i] -= s;
            } else {
                cj[i] += s;
            }
        }
    }
}

/// Compute `C ← C + A · B` on raw column-major buffers under `cfg`.
///
/// * `c`: `m × n`, leading dimension `ldc`
/// * `a`: `m × k`, leading dimension `lda`
/// * `b`: `k × n`, leading dimension `ldb`
#[allow(clippy::too_many_arguments)] // BLAS-style raw interface: (buffer, ld) per operand
pub fn gemm_nn_acc_raw(
    cfg: &KernelConfig,
    c: &mut [f64],
    ldc: usize,
    m: usize,
    n: usize,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    k: usize,
) {
    gemm_nn_raw_impl(cfg, c, ldc, m, n, a, lda, b, ldb, k, false);
}

/// Compute `C ← C + Aᵀ · B` on raw column-major buffers under `cfg`.
///
/// * `c`: `m × n`, leading dimension `ldc`
/// * `a`: `k × m`, leading dimension `lda` (transposed operand)
/// * `b`: `k × n`, leading dimension `ldb`
#[allow(clippy::too_many_arguments)] // BLAS-style raw interface: (buffer, ld) per operand
pub fn gemm_tn_acc_raw(
    cfg: &KernelConfig,
    c: &mut [f64],
    ldc: usize,
    m: usize,
    n: usize,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    k: usize,
) {
    gemm_tn_raw_impl(cfg, c, ldc, m, n, a, lda, b, ldb, k, false);
}

/// Matrix-level wrapper with an explicit config: `C ← C + A·B`.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn gemm_nn_acc_cfg(cfg: &KernelConfig, c: &mut Mat, a: &Mat, b: &Mat) {
    assert_eq!(a.cols(), b.rows(), "gemm_nn: inner dimensions differ");
    assert_eq!(c.rows(), a.rows(), "gemm_nn: row dimensions differ");
    assert_eq!(c.cols(), b.cols(), "gemm_nn: column dimensions differ");
    let (m, n, k) = (c.rows(), c.cols(), a.cols());
    let (ldc, lda, ldb) = (c.ld(), a.ld(), b.ld());
    gemm_nn_acc_raw(
        cfg,
        c.as_mut_slice(),
        ldc,
        m,
        n,
        a.as_slice(),
        lda,
        b.as_slice(),
        ldb,
        k,
    );
}

/// Matrix-level wrapper under the default config: `C ← C + A·B`.
///
/// # Panics
/// Same as [`gemm_nn_acc_cfg`].
pub fn gemm_nn_acc(c: &mut Mat, a: &Mat, b: &Mat) {
    gemm_nn_acc_cfg(&KernelConfig::default(), c, a, b);
}

/// Matrix-level wrapper with an explicit config: `C ← C + Aᵀ·B`.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn gemm_tn_acc_cfg(cfg: &KernelConfig, c: &mut Mat, a: &Mat, b: &Mat) {
    assert_eq!(a.rows(), b.rows(), "gemm_tn: inner dimensions differ");
    assert_eq!(c.rows(), a.cols(), "gemm_tn: row dimensions differ");
    assert_eq!(c.cols(), b.cols(), "gemm_tn: column dimensions differ");
    let (m, n, k) = (c.rows(), c.cols(), a.rows());
    let (ldc, lda, ldb) = (c.ld(), a.ld(), b.ld());
    gemm_tn_acc_raw(
        cfg,
        c.as_mut_slice(),
        ldc,
        m,
        n,
        a.as_slice(),
        lda,
        b.as_slice(),
        ldb,
        k,
    );
}

/// Matrix-level wrapper under the default config: `C ← C + Aᵀ·B`.
///
/// # Panics
/// Same as [`gemm_tn_acc_cfg`].
pub fn gemm_tn_acc(c: &mut Mat, a: &Mat, b: &Mat) {
    gemm_tn_acc_cfg(&KernelConfig::default(), c, a, b);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::potrf_ref;

    fn spd_factor(n: usize) -> Mat {
        let a = Mat::spd_from(n, |r, c| ((r * 7 + c * 5) % 11) as f64 - 5.0);
        potrf_ref(&a).unwrap()
    }

    fn panel(n: usize, nrhs: usize) -> Mat {
        Mat::from_fn(n, nrhs, |r, c| ((r * 3 + c * 5) % 13) as f64 - 6.0)
    }

    #[test]
    fn left_notrans_solves_each_column() {
        for &(n, nrhs) in &[(1, 1), (4, 1), (5, 3), (9, 8), (17, 16)] {
            let l = spd_factor(n);
            let b0 = panel(n, nrhs);
            let mut y = b0.clone();
            trsm_left_lower_notrans(&mut y, &l);
            // L·Y must reproduce B0.
            let recon = l.matmul(&y);
            assert!(recon.max_abs_diff(&b0) < 1e-9, "n={n} nrhs={nrhs}");
        }
    }

    #[test]
    fn left_trans_solves_each_column() {
        for &(n, nrhs) in &[(1, 1), (4, 1), (5, 3), (9, 8), (17, 16)] {
            let l = spd_factor(n);
            let b0 = panel(n, nrhs);
            let mut x = b0.clone();
            trsm_left_lower_trans(&mut x, &l);
            let recon = l.transpose().matmul(&x);
            assert!(recon.max_abs_diff(&b0) < 1e-9, "n={n} nrhs={nrhs}");
        }
    }

    #[test]
    fn single_column_matches_scalar_substitution() {
        // nrhs = 1 must be arithmetically identical to the scalar routines
        // the vector solve path used (bit-equality, not just tolerance).
        let l = spd_factor(11);
        let b0 = panel(11, 1);
        let mut fwd_panel = b0.clone();
        trsm_left_lower_notrans(&mut fwd_panel, &l);
        let mut fwd_scalar: Vec<f64> = b0.as_slice().to_vec();
        for c in 0..11 {
            let yc = fwd_scalar[c] / l[(c, c)];
            fwd_scalar[c] = yc;
            for r in c + 1..11 {
                fwd_scalar[r] -= l[(r, c)] * yc;
            }
        }
        assert_eq!(fwd_panel.as_slice(), &fwd_scalar[..]);
    }

    #[test]
    fn upper_triangle_of_l_is_ignored() {
        let mut l = spd_factor(6);
        let b0 = panel(6, 4);
        let mut y1 = b0.clone();
        trsm_left_lower_notrans(&mut y1, &l);
        let mut x1 = b0.clone();
        trsm_left_lower_trans(&mut x1, &l);
        for j in 1..6 {
            for i in 0..j {
                l[(i, j)] = f64::NAN;
            }
        }
        let mut y2 = b0.clone();
        trsm_left_lower_notrans(&mut y2, &l);
        let mut x2 = b0.clone();
        trsm_left_lower_trans(&mut x2, &l);
        assert_eq!(y1.max_abs_diff(&y2), 0.0);
        assert_eq!(x1.max_abs_diff(&x2), 0.0);
    }

    #[test]
    fn gemm_nn_acc_matches_matmul() {
        for &(m, n, k) in &[(1, 1, 1), (3, 2, 4), (7, 5, 3), (16, 9, 11)] {
            let a = Mat::from_fn(m, k, |r, c| ((r * 13 + c * 7) % 9) as f64 - 4.0);
            let b = Mat::from_fn(k, n, |r, c| ((r * 5 + c * 11) % 13) as f64 * 0.5 - 3.0);
            let c0 = Mat::from_fn(m, n, |r, c| (r + c) as f64);
            let mut c1 = c0.clone();
            gemm_nn_acc(&mut c1, &a, &b);
            let mut expect = a.matmul(&b);
            for (e, base) in expect.as_mut_slice().iter_mut().zip(c0.as_slice()) {
                *e += base;
            }
            assert!(c1.max_abs_diff(&expect) < 1e-10, "m={m} n={n} k={k}");
        }
    }

    #[test]
    fn gemm_tn_acc_matches_matmul() {
        for &(m, n, k) in &[(1, 1, 1), (3, 2, 4), (7, 5, 3), (16, 9, 11)] {
            let a = Mat::from_fn(k, m, |r, c| ((r * 13 + c * 7) % 9) as f64 - 4.0);
            let b = Mat::from_fn(k, n, |r, c| ((r * 5 + c * 11) % 13) as f64 * 0.5 - 3.0);
            let c0 = Mat::from_fn(m, n, |r, c| (2 * r + c) as f64);
            let mut c1 = c0.clone();
            gemm_tn_acc(&mut c1, &a, &b);
            let mut expect = a.transpose().matmul(&b);
            for (e, base) in expect.as_mut_slice().iter_mut().zip(c0.as_slice()) {
                *e += base;
            }
            assert!(c1.max_abs_diff(&expect) < 1e-10, "m={m} n={n} k={k}");
        }
    }

    #[test]
    fn blocked_solves_match_unblocked_across_sb_boundary() {
        // n spans the default sb = 64 solve-block boundary; the blocked path
        // must agree with the unblocked sweep to rounding.
        for &(n, nrhs) in &[(63, 5), (64, 5), (65, 5), (130, 3), (200, 8), (200, 1)] {
            let l = spd_factor(n);
            let b0 = panel(n, nrhs);
            let mut blocked = b0.clone();
            trsm_left_lower_notrans(&mut blocked, &l);
            let mut sweep = b0.clone();
            {
                let (ldb, ldl) = (sweep.ld(), l.ld());
                trsm_left_notrans_unblocked(sweep.as_mut_slice(), ldb, n, nrhs, l.as_slice(), ldl);
            }
            assert!(
                blocked.max_abs_diff(&sweep) < 1e-8,
                "notrans n={n} nrhs={nrhs}"
            );
            let mut blocked = b0.clone();
            trsm_left_lower_trans(&mut blocked, &l);
            let mut sweep = b0.clone();
            {
                let (ldb, ldl) = (sweep.ld(), l.ld());
                trsm_left_trans_unblocked(sweep.as_mut_slice(), ldb, n, nrhs, l.as_slice(), ldl);
            }
            assert!(
                blocked.max_abs_diff(&sweep) < 1e-8,
                "trans n={n} nrhs={nrhs}"
            );
        }
    }

    #[test]
    fn non_default_solve_block_matches_unblocked() {
        // A small sb forces the blocked path onto many more block steps; it
        // must still agree with the plain sweep to rounding.
        let cfg = KernelConfig {
            sb: 24,
            ..Default::default()
        };
        cfg.validate().unwrap();
        for &(n, nrhs) in &[(65, 5), (130, 3)] {
            let l = spd_factor(n);
            let b0 = panel(n, nrhs);
            let mut blocked = b0.clone();
            trsm_left_lower_notrans_cfg(&cfg, &mut blocked, &l);
            let mut sweep = b0.clone();
            {
                let (ldb, ldl) = (sweep.ld(), l.ld());
                trsm_left_notrans_unblocked(sweep.as_mut_slice(), ldb, n, nrhs, l.as_slice(), ldl);
            }
            assert!(blocked.max_abs_diff(&sweep) < 1e-8, "notrans n={n}");
            let mut blocked = b0.clone();
            trsm_left_lower_trans_cfg(&cfg, &mut blocked, &l);
            let mut sweep = b0.clone();
            {
                let (ldb, ldl) = (sweep.ld(), l.ld());
                trsm_left_trans_unblocked(sweep.as_mut_slice(), ldb, n, nrhs, l.as_slice(), ldl);
            }
            assert!(blocked.max_abs_diff(&sweep) < 1e-8, "trans n={n}");
        }
    }

    #[test]
    fn accumulating_gemms_match_matmul_above_pack_threshold() {
        // Shapes large enough to take the packed register-blocked path.
        for &(m, n, k) in &[(150, 40, 90), (257, 33, 129)] {
            let a = Mat::from_fn(m, k, |r, c| ((r * 13 + c * 7) % 9) as f64 - 4.0);
            let b = Mat::from_fn(k, n, |r, c| ((r * 5 + c * 11) % 13) as f64 * 0.5 - 3.0);
            let c0 = Mat::from_fn(m, n, |r, c| (r + c) as f64);
            let mut c1 = c0.clone();
            gemm_nn_acc(&mut c1, &a, &b);
            let mut expect = a.matmul(&b);
            for (e, base) in expect.as_mut_slice().iter_mut().zip(c0.as_slice()) {
                *e += base;
            }
            assert!(c1.max_abs_diff(&expect) < 1e-9, "nn m={m} n={n} k={k}");

            let at = Mat::from_fn(k, m, |r, c| ((r * 13 + c * 7) % 9) as f64 - 4.0);
            let mut c1 = c0.clone();
            gemm_tn_acc(&mut c1, &at, &b);
            let mut expect = at.transpose().matmul(&b);
            for (e, base) in expect.as_mut_slice().iter_mut().zip(c0.as_slice()) {
                *e += base;
            }
            assert!(c1.max_abs_diff(&expect) < 1e-9, "tn m={m} n={n} k={k}");
        }
    }

    #[test]
    fn raw_kernels_respect_leading_dimensions() {
        // Embed a 2×2 C in a 4-row buffer; rows 2..4 of each column must stay
        // untouched by both accumulating kernels.
        let cfg = KernelConfig::default();
        let mut c = vec![1.0; 8];
        let a = [1.0, 2.0]; // 2×1, lda = 2
        let b = [3.0, 4.0]; // 1×2, ldb = 1
        gemm_nn_acc_raw(&cfg, &mut c, 4, 2, 2, &a, 2, &b, 1, 1);
        assert_eq!(&c, &[4.0, 7.0, 1.0, 1.0, 5.0, 9.0, 1.0, 1.0]);
        let mut c = vec![0.0; 8];
        let at = [1.0, 2.0]; // 2×1 transposed operand (k=2, m=1), lda = 2
        let bt = [3.0, 4.0, 5.0, 6.0]; // 2×2, ldb = 2
        gemm_tn_acc_raw(&cfg, &mut c, 4, 1, 2, &at, 2, &bt, 2, 2);
        assert_eq!(&c, &[11.0, 0.0, 0.0, 0.0, 17.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn degenerate_dimensions_are_noops() {
        let cfg = KernelConfig::default();
        let mut empty: Vec<f64> = Vec::new();
        trsm_left_lower_notrans_raw(&cfg, &mut empty, 1, 0, 3, &[], 1);
        trsm_left_lower_trans_raw(&cfg, &mut empty, 1, 4, 0, &[1.0; 16], 4);
        let mut c = vec![7.0; 4];
        gemm_nn_acc_raw(&cfg, &mut c, 2, 2, 2, &[], 2, &[], 1, 0);
        gemm_tn_acc_raw(&cfg, &mut c, 2, 2, 2, &[], 1, &[], 1, 0);
        assert_eq!(&c, &[7.0; 4]);
    }
}
