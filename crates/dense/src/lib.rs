//! Dense linear-algebra kernels for the symPACK-rs sparse Cholesky solver.
//!
//! The paper's numeric factorization performs all of its arithmetic through
//! four dense routines applied to supernode blocks:
//!
//! * [`potrf`] — Cholesky factorization of a dense diagonal block
//!   (LAPACK `POTRF`), used by *Diagonal Factorization* tasks `D(i)`.
//! * [`trsm_right_lower_trans`] — triangular solve `X · Lᵀ = B`
//!   (BLAS `TRSM`), used by *Factorization* tasks `F(i,j)`.
//! * [`syrk_lower`] — symmetric rank-k update `C ← C − A·Aᵀ` (BLAS `SYRK`),
//!   used by *Update* tasks `U(i,j,k)` whose target is a diagonal block.
//! * [`gemm_nt`] — general update `C ← C − A·Bᵀ` (BLAS `GEMM`), used by
//!   *Update* tasks with off-diagonal targets.
//!
//! The blocked multi-NRHS triangular solve adds the [`panel`] kernels:
//! left-side substitutions `L·Y = B` / `Lᵀ·X = B` and the accumulating
//! products `C += A·B` / `C += Aᵀ·B` over dense right-hand-side panels.
//!
//! All matrices are stored **column-major** (Fortran/BLAS convention) so that
//! supernode panels — tall dense column blocks — are contiguous per column.
//!
//! Large problems run on a BLIS-style packed engine: [`pack`] copies
//! operands into MR/NR-strip tile-major buffers and [`microkernel`] drives
//! an 8×4 register-tile FMA kernel under runtime mc/kc/nc cache blocking,
//! with the AVX2+FMA instantiation selected once at runtime. Problems too
//! small to amortize packing keep direct loop nests ([`naive`] remains the
//! correctness oracle). [`par`] adds scoped-thread parallel variants whose
//! worker count is bounded by the hardware budget divided across registered
//! PGAS ranks ([`par::num_threads`]), bit-identical to the sequential path.
//!
//! Every blocking parameter, dispatch threshold, and the ISA selection live
//! in one validated [`KernelConfig`] value. Each kernel exists in two forms:
//! a `*_cfg` entry point taking `&KernelConfig` explicitly, and the
//! historical name which runs under [`KernelConfig::default()`] — whose
//! field values equal the constants the kernels previously compiled in, so
//! default-config results are bit-identical to earlier releases. Only the
//! register-tile shape ([`microkernel::MR`] × [`microkernel::NR`]) remains
//! compile-time.

pub mod config;
pub mod error;
pub mod gemm;
pub mod lowrank;
pub mod mat;
pub mod microkernel;
pub mod naive;
pub mod pack;
pub mod panel;
pub mod par;
pub mod potrf;
pub mod syrk;
pub mod trsm;

pub use config::{ConfigError, IsaSelect, KernelConfig};
pub use error::DenseError;
pub use gemm::{gemm_nt, gemm_nt_cfg};
pub use lowrank::{compress, recompress, BlockRef, BlrConfig, LowRankMat};
pub use mat::Mat;
pub use panel::{
    gemm_nn_acc, gemm_nn_acc_cfg, gemm_tn_acc, gemm_tn_acc_cfg, trsm_left_lower_notrans,
    trsm_left_lower_notrans_cfg, trsm_left_lower_trans, trsm_left_lower_trans_cfg,
};
pub use potrf::{potrf, potrf_cfg};
pub use syrk::{syrk_lower, syrk_lower_cfg};
pub use trsm::{trsm_right_lower_trans, trsm_right_lower_trans_cfg};

/// Floating-point operation counts for the four kernels, used by the
/// simulated-time cost model in `sympack-gpu` and `sympack-pgas`.
///
/// The counts are the standard LAPACK working-note formulas and are exact
/// for the dense case (multiplications + additions).
pub mod flops {
    /// Flops for a Cholesky factorization of an `n × n` block.
    #[inline]
    pub fn potrf(n: usize) -> u64 {
        // n³/3 + n²/2 + n/6 = n(n+1)(2n+1)/6, computed exactly in integers.
        let n = n as u64;
        n * (n + 1) * (2 * n + 1) / 6
    }

    /// Flops for a triangular solve of an `m × n` right-hand side against an
    /// `n × n` triangular block (`X · Lᵀ = B`).
    #[inline]
    pub fn trsm(m: usize, n: usize) -> u64 {
        m as u64 * (n as u64) * (n as u64)
    }

    /// Flops for a symmetric rank-k update of an `n × n` lower triangle by an
    /// `n × k` panel.
    #[inline]
    pub fn syrk(n: usize, k: usize) -> u64 {
        (n as u64) * (n as u64 + 1) * (k as u64)
    }

    /// Flops for a general `m × n × k` matrix multiply-accumulate.
    #[inline]
    pub fn gemm(m: usize, n: usize, k: usize) -> u64 {
        2 * m as u64 * n as u64 * k as u64
    }
}

#[cfg(test)]
mod tests {
    use super::flops;

    #[test]
    fn flop_formulas_are_monotone() {
        assert!(flops::potrf(8) < flops::potrf(9));
        assert!(flops::trsm(4, 8) < flops::trsm(5, 8));
        assert!(flops::syrk(4, 8) < flops::syrk(4, 9));
        assert!(flops::gemm(2, 3, 4) == 48);
    }

    #[test]
    fn potrf_flops_match_closed_form_small() {
        // n=1: one sqrt ~ counted as 1.
        assert_eq!(flops::potrf(1), 1);
        // n=2: 1/3*8 + 1/2*4 + 2/6 = 2.67+2+0.33 = 5
        assert_eq!(flops::potrf(2), 5);
    }
}
