//! Runtime kernel configuration.
//!
//! Every blocking parameter above the register microkernel is data: the
//! BLIS cache blocking (`mc/kc/nc`), the panel blocking of the factorization
//! kernels (`jb/sj/rs/pb/ib/sb/db`, `nb/kb` for the unpacked loop nests) and
//! the two dispatch thresholds (`pack_min_flops`, `par_flop_threshold`) live
//! in one [`KernelConfig`] value that callers construct once, validate, and
//! thread explicitly through every dense entry point. Only the register tile
//! [`MR`]×[`NR`] stays a compile-time constant — the microkernel is
//! register-allocated around it.
//!
//! [`KernelConfig::default`] reproduces the previously hardcoded constants
//! exactly, so default-config results are bit-identical to the historical
//! kernels; the deterministic test suites pin the default config. Calibrated
//! configs come from the `sympack-tune` sweep (see `crates/tune`).

use crate::microkernel::{Isa, MR, NR};
use std::fmt;

/// Instruction-set selection policy for the microkernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IsaSelect {
    /// Detect the best available ISA once per process (the default; a pure
    /// function of the hardware, so results stay reproducible per machine).
    Auto,
    /// Force the baseline scalar/SSE2 code path.
    Portable,
    /// Require AVX2+FMA; validation fails where the features are missing.
    Avx2Fma,
}

/// Typed rejection of an invalid [`KernelConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A blocking parameter is zero.
    ZeroBlock {
        /// Name of the offending field.
        field: &'static str,
    },
    /// A cache block is not a whole number of register tiles.
    NotMultiple {
        /// Name of the offending field.
        field: &'static str,
        /// The rejected value.
        value: usize,
        /// The required divisor (`MR` or `NR`).
        of: usize,
    },
    /// The requested ISA is not available on this machine.
    IsaUnavailable {
        /// Name of the requested ISA.
        requested: &'static str,
    },
    /// A block low-rank compression parameter is out of range
    /// (see [`crate::lowrank::BlrConfig::validate`]).
    InvalidBlr {
        /// Name of the offending field.
        field: &'static str,
        /// Why the value was rejected.
        why: &'static str,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroBlock { field } => {
                write!(f, "kernel config: `{field}` must be nonzero")
            }
            ConfigError::NotMultiple { field, value, of } => write!(
                f,
                "kernel config: `{field}` = {value} must be a multiple of {of}"
            ),
            ConfigError::IsaUnavailable { requested } => write!(
                f,
                "kernel config: ISA `{requested}` is not available on this machine"
            ),
            ConfigError::InvalidBlr { field, why } => {
                write!(f, "blr config: `{field}` {why}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Runtime blocking and dispatch configuration for the dense kernels.
///
/// Construct (or start from [`KernelConfig::default`]), adjust fields, then
/// [`validate`](KernelConfig::validate) before handing the value to a kernel
/// engine. All dense `_cfg` entry points assume a validated config; the
/// convenience wrappers without a config argument use the default.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelConfig {
    /// Row cache block of the packed GEMM core: the packed `mc × kc` A panel
    /// stays L2-resident. Must be a multiple of [`MR`].
    pub mc: usize,
    /// Inner-product cache block: one packed A strip (`MR × kc`) plus one
    /// packed B strip (`kc × NR`) should fit in L1 together.
    pub kc: usize,
    /// Column cache block bounding the packed B panel (`kc × nc`). Must be a
    /// multiple of [`NR`].
    pub nc: usize,
    /// Column tile of the *unpacked* small-GEMM loop nest.
    pub nb: usize,
    /// Inner-product tile of the unpacked loop nest.
    pub kb: usize,
    /// SYRK diagonal-tile edge; must be a multiple of [`MR`] (the packed
    /// SYRK runs diagonal tiles as whole-strip ranges of the shared A pack).
    pub db: usize,
    /// TRSM outer panel width (right-looking blocked solve).
    pub jb: usize,
    /// TRSM in-panel sub-block width.
    pub sj: usize,
    /// TRSM row-strip length of the scalar substitution sweep.
    pub rs: usize,
    /// POTRF outer panel width.
    pub pb: usize,
    /// POTRF inner (unblocked) tile width.
    pub ib: usize,
    /// Panel-solve (left TRSM) diagonal sub-block width.
    pub sb: usize,
    /// Below this flop count a GEMM-shaped call runs the unpacked loop nest
    /// (packing would not amortize).
    pub pack_min_flops: u64,
    /// Below this flop count the `par` entry points stay sequential (fork
    /// and pack-sharing would not amortize).
    pub par_flop_threshold: u64,
    /// Microkernel instruction-set selection.
    pub isa: IsaSelect,
}

impl Default for KernelConfig {
    fn default() -> Self {
        // These are the historical compile-time constants; the deterministic
        // test suites pin them (default-config results are bit-identical to
        // the pre-config kernels).
        KernelConfig {
            mc: 128,
            kc: 256,
            nc: 512,
            nb: 64,
            kb: 128,
            db: 48,
            jb: 64,
            sj: 16,
            rs: 128,
            pb: 48,
            ib: 8,
            sb: 64,
            pack_min_flops: 28 * 1024,
            par_flop_threshold: 2 * 1024 * 1024,
            isa: IsaSelect::Auto,
        }
    }
}

impl KernelConfig {
    /// Check the blocking invariants the kernels rely on.
    ///
    /// # Errors
    /// [`ConfigError::ZeroBlock`] for any zero parameter,
    /// [`ConfigError::NotMultiple`] when `mc`/`db` is not a multiple of
    /// [`MR`] or `nc` of [`NR`], and [`ConfigError::IsaUnavailable`] when a
    /// forced ISA is missing on this machine.
    pub fn validate(&self) -> Result<(), ConfigError> {
        for (field, v) in [
            ("mc", self.mc),
            ("kc", self.kc),
            ("nc", self.nc),
            ("nb", self.nb),
            ("kb", self.kb),
            ("db", self.db),
            ("jb", self.jb),
            ("sj", self.sj),
            ("rs", self.rs),
            ("pb", self.pb),
            ("ib", self.ib),
            ("sb", self.sb),
        ] {
            if v == 0 {
                return Err(ConfigError::ZeroBlock { field });
            }
        }
        if !self.mc.is_multiple_of(MR) {
            return Err(ConfigError::NotMultiple {
                field: "mc",
                value: self.mc,
                of: MR,
            });
        }
        if !self.nc.is_multiple_of(NR) {
            return Err(ConfigError::NotMultiple {
                field: "nc",
                value: self.nc,
                of: NR,
            });
        }
        if !self.db.is_multiple_of(MR) {
            return Err(ConfigError::NotMultiple {
                field: "db",
                value: self.db,
                of: MR,
            });
        }
        self.resolve_isa().map(|_| ())
    }

    /// Resolve the ISA selection policy to a concrete microkernel ISA.
    ///
    /// # Errors
    /// [`ConfigError::IsaUnavailable`] when a forced ISA is missing.
    pub fn resolve_isa(&self) -> Result<Isa, ConfigError> {
        match self.isa {
            IsaSelect::Auto => Ok(crate::microkernel::isa()),
            IsaSelect::Portable => Ok(Isa::Portable),
            IsaSelect::Avx2Fma => {
                #[cfg(target_arch = "x86_64")]
                {
                    if crate::microkernel::isa() == Isa::Avx2Fma {
                        return Ok(Isa::Avx2Fma);
                    }
                }
                Err(ConfigError::IsaUnavailable {
                    requested: "avx2+fma",
                })
            }
        }
    }

    /// The resolved ISA of a *validated* config.
    ///
    /// # Panics
    /// Panics when a forced ISA is unavailable — call
    /// [`validate`](KernelConfig::validate) first.
    #[inline]
    pub(crate) fn isa(&self) -> Isa {
        self.resolve_isa().expect("validated config")
    }

    /// `(name, value)` pairs of every blocking/threshold field, in a fixed
    /// order — the serialization and table-printing order of the tuning
    /// profile.
    pub fn fields(&self) -> [(&'static str, u64); 14] {
        [
            ("mc", self.mc as u64),
            ("kc", self.kc as u64),
            ("nc", self.nc as u64),
            ("nb", self.nb as u64),
            ("kb", self.kb as u64),
            ("db", self.db as u64),
            ("jb", self.jb as u64),
            ("sj", self.sj as u64),
            ("rs", self.rs as u64),
            ("pb", self.pb as u64),
            ("ib", self.ib as u64),
            ("sb", self.sb as u64),
            ("pack_min_flops", self.pack_min_flops),
            ("par_flop_threshold", self.par_flop_threshold),
        ]
    }

    /// Set a field by its [`fields`](KernelConfig::fields) name (profile
    /// deserialization and `--config k=v` command lines). Unknown names are
    /// rejected so typos cannot silently tune nothing.
    ///
    /// # Errors
    /// A human-readable message for unknown field names.
    pub fn set_field(&mut self, name: &str, value: u64) -> Result<(), String> {
        let v = value as usize;
        match name {
            "mc" => self.mc = v,
            "kc" => self.kc = v,
            "nc" => self.nc = v,
            "nb" => self.nb = v,
            "kb" => self.kb = v,
            "db" => self.db = v,
            "jb" => self.jb = v,
            "sj" => self.sj = v,
            "rs" => self.rs = v,
            "pb" => self.pb = v,
            "ib" => self.ib = v,
            "sb" => self.sb = v,
            "pack_min_flops" => self.pack_min_flops = value,
            "par_flop_threshold" => self.par_flop_threshold = value,
            other => return Err(format!("unknown kernel config field `{other}`")),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_matches_historical_constants() {
        let c = KernelConfig::default();
        c.validate().unwrap();
        assert_eq!((c.mc, c.kc, c.nc), (128, 256, 512));
        assert_eq!((c.nb, c.kb, c.db), (64, 128, 48));
        assert_eq!((c.jb, c.sj, c.rs), (64, 16, 128));
        assert_eq!((c.pb, c.ib, c.sb), (48, 8, 64));
        assert_eq!(c.pack_min_flops, 28 * 1024);
        assert_eq!(c.par_flop_threshold, 2 * 1024 * 1024);
    }

    #[test]
    fn zero_blocks_are_rejected_with_typed_error() {
        for field in [
            "mc", "kc", "nc", "nb", "kb", "db", "jb", "sj", "rs", "pb", "ib", "sb",
        ] {
            let mut c = KernelConfig::default();
            c.set_field(field, 0).unwrap();
            match c.validate() {
                Err(ConfigError::ZeroBlock { field: f }) => assert_eq!(f, field),
                other => panic!("{field}=0: expected ZeroBlock, got {other:?}"),
            }
        }
    }

    #[test]
    fn misaligned_cache_blocks_are_rejected() {
        let c = KernelConfig {
            mc: MR + 1,
            ..Default::default()
        };
        match c.validate() {
            Err(ConfigError::NotMultiple {
                field: "mc", of, ..
            }) => assert_eq!(of, MR),
            other => panic!("expected NotMultiple(mc), got {other:?}"),
        }
        let c = KernelConfig {
            nc: NR + 1,
            ..Default::default()
        };
        assert!(matches!(
            c.validate(),
            Err(ConfigError::NotMultiple { field: "nc", .. })
        ));
        let c = KernelConfig {
            db: MR + 2,
            ..Default::default()
        };
        assert!(matches!(
            c.validate(),
            Err(ConfigError::NotMultiple { field: "db", .. })
        ));
    }

    #[test]
    fn portable_isa_is_always_available() {
        let c = KernelConfig {
            isa: IsaSelect::Portable,
            ..Default::default()
        };
        c.validate().unwrap();
        assert_eq!(c.resolve_isa().unwrap(), Isa::Portable);
    }

    #[test]
    fn field_roundtrip_covers_every_field() {
        let mut c = KernelConfig::default();
        for (name, v) in KernelConfig::default().fields() {
            c.set_field(name, v + MR as u64).unwrap();
        }
        for ((_, got), (_, orig)) in c.fields().iter().zip(KernelConfig::default().fields()) {
            assert_eq!(*got, orig + MR as u64);
        }
        assert!(c.set_field("bogus", 1).is_err());
    }

    #[test]
    fn error_display_names_the_field() {
        let e = ConfigError::ZeroBlock { field: "kc" };
        assert!(e.to_string().contains("kc"));
        let e = ConfigError::NotMultiple {
            field: "mc",
            value: 9,
            of: 8,
        };
        assert!(e.to_string().contains("multiple of 8"));
    }
}
