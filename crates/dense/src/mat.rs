//! Column-major dense matrix container.
//!
//! [`Mat`] is the owning container used throughout the solver for supernode
//! block payloads. The raw kernels in this crate operate on `&[f64]`/`&mut
//! [f64]` slices with an explicit leading dimension (BLAS style) so that they
//! can also run on sub-panels of a larger supernode buffer; `Mat` provides
//! safe construction, indexing and comparison on top.

use std::fmt;

/// A dense column-major `rows × cols` matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// Create a zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create an identity matrix of order `n`.
    pub fn eye(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Create a matrix from a column-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_col_major(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "column-major buffer length mismatch"
        );
        Mat { rows, cols, data }
    }

    /// Create a matrix from a row-major data vector (convenient in tests).
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_row_major(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "row-major buffer length mismatch");
        let mut m = Mat::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = data[r * cols + c];
            }
        }
        m
    }

    /// Build a matrix by evaluating `f(row, col)` at every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Mat::zeros(rows, cols);
        for c in 0..cols {
            for r in 0..rows {
                m[(r, c)] = f(r, c);
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Leading dimension of the underlying storage (equals `rows`).
    #[inline]
    pub fn ld(&self) -> usize {
        self.rows
    }

    /// Borrow the column-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the column-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume into the column-major storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// The transpose of this matrix.
    pub fn transpose(&self) -> Mat {
        Mat::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Naive dense product `self * other` (test/reference use only).
    pub fn matmul(&self, other: &Mat) -> Mat {
        assert_eq!(self.cols, other.rows, "matmul inner dimension mismatch");
        let mut out = Mat::zeros(self.rows, other.cols);
        for j in 0..other.cols {
            for k in 0..self.cols {
                let bkj = other[(k, j)];
                if bkj == 0.0 {
                    continue;
                }
                for i in 0..self.rows {
                    out[(i, j)] += self[(i, k)] * bkj;
                }
            }
        }
        out
    }

    /// Zero out the strict upper triangle (useful after a lower Cholesky,
    /// whose kernels leave the upper triangle untouched).
    pub fn zero_upper(&mut self) {
        let n = self.cols.min(self.rows);
        for c in 1..n {
            for r in 0..c.min(self.rows) {
                self[(r, c)] = 0.0;
            }
        }
    }

    /// Max-absolute-difference between two equally-sized matrices.
    pub fn max_abs_diff(&self, other: &Mat) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Frobenius norm.
    pub fn fro_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Make a symmetric positive definite matrix `G·Gᵀ + n·I` from a seed
    /// generator closure producing entries of `G` (test helper).
    pub fn spd_from(n: usize, mut g: impl FnMut(usize, usize) -> f64) -> Mat {
        let gm = Mat::from_fn(n, n, &mut g);
        let mut a = gm.matmul(&gm.transpose());
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        a
    }
}

impl std::ops::Index<(usize, usize)> for Mat {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[c * self.rows + r]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[c * self.rows + r]
    }
}

impl fmt::Debug for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(12) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(12) {
                write!(f, "{:>10.4} ", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Mat::from_row_major(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 1)], 5.0);
        // column-major layout: first column is [1,4]
        assert_eq!(&m.as_slice()[..2], &[1.0, 4.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Mat::from_fn(3, 5, |r, c| (r * 7 + c) as f64);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_identity() {
        let m = Mat::from_fn(4, 4, |r, c| (r + 2 * c) as f64);
        let i = Mat::eye(4);
        assert_eq!(m.matmul(&i), m);
        assert_eq!(i.matmul(&m), m);
    }

    #[test]
    fn matmul_known_values() {
        let a = Mat::from_row_major(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Mat::from_row_major(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b);
        assert_eq!(c, Mat::from_row_major(2, 2, vec![19.0, 22.0, 43.0, 50.0]));
    }

    #[test]
    fn zero_upper_clears_strict_upper_triangle() {
        let mut m = Mat::from_fn(3, 3, |_, _| 1.0);
        m.zero_upper();
        assert_eq!(m[(0, 1)], 0.0);
        assert_eq!(m[(0, 2)], 0.0);
        assert_eq!(m[(1, 2)], 0.0);
        assert_eq!(m[(1, 0)], 1.0);
        assert_eq!(m[(2, 2)], 1.0);
    }

    #[test]
    fn spd_from_is_symmetric_with_heavy_diagonal() {
        let a = Mat::spd_from(5, |r, c| ((r * 3 + c * 5) % 7) as f64 - 3.0);
        for i in 0..5 {
            for j in 0..5 {
                assert_eq!(a[(i, j)], a[(j, i)]);
            }
            assert!(a[(i, i)] >= 5.0);
        }
    }

    #[test]
    fn fro_norm_matches_hand_computation() {
        let m = Mat::from_row_major(1, 2, vec![3.0, 4.0]);
        assert!((m.fro_norm() - 5.0).abs() < 1e-15);
    }
}
