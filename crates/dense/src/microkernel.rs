//! Register-blocked GEMM core: MR×NR microkernel plus cache-level blocking.
//!
//! This is the single flop engine behind every level-3 kernel in the crate
//! (GEMM, SYRK, TRSM updates, the blocked POTRF trailing update and the
//! panel-solve accumulations). The structure is the classical BLIS
//! decomposition, with the cache blocks `mc/kc/nc` supplied at runtime by a
//! [`crate::config::KernelConfig`]:
//!
//! ```text
//! for jc in 0..n step nc            // B panel       (stays in L3)
//!   for pc in 0..k step kc          // pack B(pc,jc) (stays in L2)
//!     for ic in 0..m step mc        // pack A(ic,pc) (stays in L2/L1)
//!       for jr in 0..nb step NR     //   macro-kernel over register tiles
//!         for ir in 0..mb step MR
//!           C[ir:ir+MR, jr:jr+NR] ∓= Apack · Bpack   // microkernel
//! ```
//!
//! The microkernel holds an MR×NR tile of `C` in registers across the entire
//! `kb`-long inner product — the inner loop performs `MR·NR` fused
//! multiply-adds per iteration with **no loads or stores of `C`** — and reads
//! its operands from the contiguous zero-padded strips produced by
//! [`crate::pack`], so edge tiles take the same code path as interior tiles.
//! Only the register tile stays compile-time: the microkernel is
//! register-allocated around `MR`/`NR`.
//!
//! Accumulation order per element of `C` is fixed (k ascending, one k-block
//! at a time) and independent of the surrounding blocking, so results are
//! bit-deterministic run to run and identical between the sequential path
//! and the column-partitioned parallel path.

use crate::config::KernelConfig;
use crate::pack;

/// Register-tile rows. An 8×4 tile holds eight 4-lane AVX2 accumulators
/// (two `ymm` per C column) plus the two A vectors and one broadcast B value
/// in the sixteen x86-64 vector registers without spilling; measured best of
/// 4×4 / 8×4 / 12×4 / 8×6 in `results/kernel_roofline.txt`.
pub const MR: usize = 8;
/// Register-tile columns.
pub const NR: usize = 4;

/// Instruction set the microkernel was compiled for. Detected once per
/// process; the choice is a pure function of the hardware, so kernel results
/// stay bit-reproducible run to run on a given machine.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Isa {
    /// Baseline codegen (SSE2 on x86-64).
    Portable,
    /// AVX2 + FMA via runtime feature detection.
    #[cfg(target_arch = "x86_64")]
    Avx2Fma,
}

/// Detect the best microkernel ISA available on this machine.
pub fn isa() -> Isa {
    #[cfg(target_arch = "x86_64")]
    {
        use std::sync::OnceLock;
        static DETECTED: OnceLock<Isa> = OnceLock::new();
        *DETECTED.get_or_init(|| {
            if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
            {
                Isa::Avx2Fma
            } else {
                Isa::Portable
            }
        })
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        Isa::Portable
    }
}

/// Human-readable ISA name (for the roofline benchmark report).
pub fn isa_name() -> &'static str {
    match isa() {
        Isa::Portable => "portable",
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2Fma => "avx2+fma",
    }
}

/// The MR×NR register microkernel body: `acc[j][i] += Σ_p a[p][i] · b[p][j]`
/// over `kc` packed positions. `acc` is column-major (`acc[j]` is a C column
/// fragment) so the write-back and the i-direction vectorize together. The
/// explicit leading sub-slices let LLVM hoist the bounds checks and keep the
/// tile in registers for the whole loop.
#[inline(always)]
fn microkernel_body(kc: usize, ap: &[f64], bp: &[f64], acc: &mut [[f64; MR]; NR]) {
    let ap = &ap[..kc * MR];
    let bp = &bp[..kc * NR];
    for (a, b) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)) {
        for j in 0..NR {
            let bj = b[j];
            for i in 0..MR {
                acc[j][i] += a[i] * bj;
            }
        }
    }
}

/// AVX2+FMA instantiation of the microkernel: identical Rust body, compiled
/// with 4-lane `ymm` vectors and fused multiply-add.
///
/// # Safety
/// Requires the `avx2` and `fma` CPU features (guaranteed by the
/// [`Isa::Avx2Fma`] dispatch, which only selects this after runtime
/// detection).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn microkernel_avx2(kc: usize, ap: &[f64], bp: &[f64], acc: &mut [[f64; MR]; NR]) {
    microkernel_body(kc, ap, bp, acc);
}

/// Dispatch one register-tile accumulation to the selected ISA.
#[inline(always)]
fn microkernel(isa: Isa, kc: usize, ap: &[f64], bp: &[f64], acc: &mut [[f64; MR]; NR]) {
    match isa {
        Isa::Portable => microkernel_body(kc, ap, bp, acc),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Isa::Avx2Fma is only produced after
        // is_x86_feature_detected!("avx2") && ("fma") both passed (either by
        // isa() or by KernelConfig::resolve_isa validation).
        Isa::Avx2Fma => unsafe { microkernel_avx2(kc, ap, bp, acc) },
    }
}

/// Apply an accumulated register tile to `C`: `C[i0.., j0..] ∓= acc`,
/// masked to the `mv × nv` valid region (edge tiles).
#[inline]
#[allow(clippy::too_many_arguments)] // BLAS-style raw interface: (buffer, ld) per operand
fn writeback(
    c: &mut [f64],
    ldc: usize,
    i0: usize,
    j0: usize,
    mv: usize,
    nv: usize,
    acc: &[[f64; MR]; NR],
    sub: bool,
) {
    for j in 0..nv {
        let col = &mut c[(j0 + j) * ldc + i0..(j0 + j) * ldc + i0 + mv];
        if sub {
            for (ci, &av) in col.iter_mut().zip(&acc[j][..mv]) {
                *ci -= av;
            }
        } else {
            for (ci, &av) in col.iter_mut().zip(&acc[j][..mv]) {
                *ci += av;
            }
        }
    }
}

/// Macro-kernel: sweep register tiles over one packed `(mb × kb)` A block ×
/// `(kb × nb)` B block, updating `C` at offset `(i0, j0)`.
#[allow(clippy::too_many_arguments)]
fn macro_kernel(
    isa: Isa,
    c: &mut [f64],
    ldc: usize,
    i0: usize,
    j0: usize,
    mb: usize,
    nb: usize,
    kb: usize,
    pa: &[f64],
    pb: &[f64],
    sub: bool,
) {
    let a_strips = mb.div_ceil(MR);
    let b_strips = nb.div_ceil(NR);
    for js in 0..b_strips {
        let bstrip = &pb[js * kb * NR..(js + 1) * kb * NR];
        let nv = NR.min(nb - js * NR);
        for is in 0..a_strips {
            let astrip = &pa[is * kb * MR..(is + 1) * kb * MR];
            let mv = MR.min(mb - is * MR);
            let mut acc = [[0.0; MR]; NR];
            microkernel(isa, kb, astrip, bstrip, &mut acc);
            writeback(c, ldc, i0 + is * MR, j0 + js * NR, mv, nv, &acc, sub);
        }
    }
}

/// Blocked packed GEMM: `C ∓= op(A)·op(B)` on an `m × n × k` problem under
/// the cache blocking of `cfg`.
///
/// The operand orientations are abstracted behind the two block packers
/// (`pack_a(dst, i0, mb, p0, kb)` / `pack_b(dst, j0, nb, p0, kb)`), so the
/// same core serves `A·Bᵀ` (factorization updates), `A·B` (forward panel
/// solve) and `Aᵀ·B` (backward panel solve). `sub` selects `-=` vs `+=`.
#[allow(clippy::too_many_arguments)] // BLAS-style raw interface: (buffer, ld) per operand
pub(crate) fn gemm_packed<PA, PB>(
    cfg: &KernelConfig,
    c: &mut [f64],
    ldc: usize,
    m: usize,
    n: usize,
    k: usize,
    pack_a: PA,
    pack_b: PB,
    sub: bool,
) where
    PA: Fn(&mut Vec<f64>, usize, usize, usize, usize),
    PB: Fn(&mut Vec<f64>, usize, usize, usize, usize),
{
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let isa = cfg.isa();
    let (mc, kc, nc) = (cfg.mc, cfg.kc, cfg.nc);
    pack::with_buffers(|pa, pb| {
        for jc in (0..n).step_by(nc) {
            let nb = nc.min(n - jc);
            for pc in (0..k).step_by(kc) {
                let kb = kc.min(k - pc);
                pack_b(pb, jc, nb, pc, kb);
                for ic in (0..m).step_by(mc) {
                    let mb = mc.min(m - ic);
                    pack_a(pa, ic, mb, pc, kb);
                    macro_kernel(isa, c, ldc, ic, jc, mb, nb, kb, pa, pb, sub);
                }
            }
        }
    });
}

/// Blocked packed GEMM against a pre-packed shared `A` operand
/// ([`pack::ApackFull`]): used by the parallel path, where `A` is packed
/// once and read concurrently by every column-panel worker while each worker
/// packs only its own `B` strips into thread-local scratch.
///
/// `c` is an `m × n` panel (leading dimension `ldc`) and `pack_b` receives
/// panel-relative column offsets. The pack must have been built with the
/// same `cfg.kc` (its k-block layout is keyed on it).
#[allow(clippy::too_many_arguments)] // BLAS-style raw interface: (buffer, ld) per operand
pub(crate) fn gemm_packed_shared_a<PB>(
    cfg: &KernelConfig,
    c: &mut [f64],
    ldc: usize,
    m: usize,
    n: usize,
    apack: &pack::ApackFull,
    pack_b: PB,
    sub: bool,
) where
    PB: Fn(&mut Vec<f64>, usize, usize, usize, usize),
{
    gemm_packed_shared_a_rows(cfg, c, ldc, 0, m, n, apack, pack_b, sub);
}

/// Row-ranged form of [`gemm_packed_shared_a`]: use rows `row0..row0+m` of
/// the pre-packed `A` operand. `row0` must be MR-aligned (the packed strips
/// cannot be split mid-strip); row 0 of `c` corresponds to packed row
/// `row0`. This lets one [`pack::ApackFull`] serve several sub-problems —
/// SYRK packs its panel once and runs every diagonal tile and sub-diagonal
/// block against strip subranges instead of re-packing per tile.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_packed_shared_a_rows<PB>(
    cfg: &KernelConfig,
    c: &mut [f64],
    ldc: usize,
    row0: usize,
    m: usize,
    n: usize,
    apack: &pack::ApackFull,
    pack_b: PB,
    sub: bool,
) where
    PB: Fn(&mut Vec<f64>, usize, usize, usize, usize),
{
    if m == 0 || n == 0 {
        return;
    }
    assert!(row0.is_multiple_of(MR), "row0 must be a whole packed strip");
    let s_begin = row0 / MR;
    let s_end = (row0 + m).div_ceil(MR);
    debug_assert!(s_end <= apack.strips());
    let isa = cfg.isa();
    let (mc, nc) = (cfg.mc, cfg.nc);
    pack::with_buffers(|_pa, pb| {
        for jc in (0..n).step_by(nc) {
            let nb = nc.min(n - jc);
            for (q, (p0, kb)) in apack.blocks().enumerate() {
                pack_b(pb, jc, nb, p0, kb);
                // mc blocking over the shared strips keeps the L2 footprint
                // identical to the thread-local path. mc % MR == 0 is a
                // validated config invariant.
                let strips_per_mc = mc / MR;
                let mut s0 = s_begin;
                while s0 < s_end {
                    let s1 = (s0 + strips_per_mc).min(s_end);
                    let ic = (s0 - s_begin) * MR;
                    let mb = ((s1 - s_begin) * MR).min(m) - ic;
                    macro_kernel(
                        isa,
                        c,
                        ldc,
                        ic,
                        jc,
                        mb,
                        nb,
                        kb,
                        apack.block_strips(q, s0, s1),
                        pb,
                        sub,
                    );
                    s0 = s1;
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dense reference for `C -= A·Bᵀ` on raw buffers.
    fn gemm_nt_ref(c: &mut [f64], ldc: usize, m: usize, n: usize, a: &[f64], b: &[f64], k: usize) {
        for j in 0..n {
            for i in 0..m {
                let mut s = 0.0;
                for p in 0..k {
                    s += a[p * m + i] * b[p * n + j];
                }
                c[j * ldc + i] -= s;
            }
        }
    }

    fn check(m: usize, n: usize, k: usize) {
        let cfg = KernelConfig::default();
        let a: Vec<f64> = (0..m * k).map(|v| ((v * 13) % 9) as f64 - 4.0).collect();
        let b: Vec<f64> = (0..n * k)
            .map(|v| ((v * 7) % 11) as f64 * 0.5 - 2.0)
            .collect();
        let mut c1: Vec<f64> = (0..m * n).map(|v| (v % 5) as f64).collect();
        let mut c2 = c1.clone();
        gemm_packed(
            &cfg,
            &mut c1,
            m.max(1),
            m,
            n,
            k,
            |dst, i0, mb, p0, kb| pack::pack_a_nt(dst, &a, m, i0, mb, p0, kb),
            |dst, j0, nb, p0, kb| pack::pack_b_t(dst, &b, n, j0, nb, p0, kb),
            true,
        );
        gemm_nt_ref(&mut c2, m.max(1), m, n, &a, &b, k);
        for (i, (x, y)) in c1.iter().zip(&c2).enumerate() {
            assert!(
                (x - y).abs() < 1e-10,
                "m={m} n={n} k={k} idx={i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn packed_core_matches_reference_across_tile_edges() {
        let cfg = KernelConfig::default();
        for &(m, n, k) in &[
            (1, 1, 1),
            (MR - 1, NR - 1, 3),
            (MR + 1, NR + 1, cfg.kc + 1),
            (2 * MR + 3, 2 * NR + 1, 17),
            (cfg.mc + 5, cfg.nc.min(70) + 3, cfg.kc + 9),
            (130, 70, 130),
        ] {
            check(m, n, k);
        }
    }

    #[test]
    fn shared_a_path_is_bit_identical_to_thread_local_path() {
        let cfg = KernelConfig::default();
        let (m, n, k) = (67, 41, cfg.kc + 19);
        let a: Vec<f64> = (0..m * k).map(|v| ((v * 3) % 13) as f64 - 6.0).collect();
        let b: Vec<f64> = (0..n * k).map(|v| ((v * 5) % 7) as f64 - 3.0).collect();
        let c0: Vec<f64> = (0..m * n).map(|v| (v % 11) as f64 * 0.25).collect();
        let mut c1 = c0.clone();
        gemm_packed(
            &cfg,
            &mut c1,
            m,
            m,
            n,
            k,
            |dst, i0, mb, p0, kb| pack::pack_a_nt(dst, &a, m, i0, mb, p0, kb),
            |dst, j0, nb, p0, kb| pack::pack_b_t(dst, &b, n, j0, nb, p0, kb),
            true,
        );
        let apack = pack::ApackFull::pack_nt(&a, m, m, k, cfg.kc);
        let mut c2 = c0.clone();
        gemm_packed_shared_a(
            &cfg,
            &mut c2,
            m,
            m,
            n,
            &apack,
            |dst, j0, nb, p0, kb| pack::pack_b_t(dst, &b, n, j0, nb, p0, kb),
            true,
        );
        assert!(
            c1.iter().zip(&c2).all(|(x, y)| x.to_bits() == y.to_bits()),
            "shared-A packing must not change the accumulation order"
        );
    }

    #[test]
    fn row_ranged_shared_a_matches_full_product_rows() {
        let cfg = KernelConfig::default();
        let (m, n, k) = (61, 23, cfg.kc + 7);
        let a: Vec<f64> = (0..m * k).map(|v| ((v * 3) % 13) as f64 - 6.0).collect();
        let b: Vec<f64> = (0..n * k).map(|v| ((v * 5) % 7) as f64 - 3.0).collect();
        let mut cfull = vec![0.0; m * n];
        gemm_packed(
            &cfg,
            &mut cfull,
            m,
            m,
            n,
            k,
            |dst, i0, mb, p0, kb| pack::pack_a_nt(dst, &a, m, i0, mb, p0, kb),
            |dst, j0, nb, p0, kb| pack::pack_b_t(dst, &b, n, j0, nb, p0, kb),
            true,
        );
        let apack = pack::ApackFull::pack_nt(&a, m, m, k, cfg.kc);
        // Sub-ranges: an interior MR-aligned window and the padded tail.
        for (row0, mm) in [(16usize, 24usize), (40, m - 40), (0, m)] {
            let mut csub = vec![0.0; mm * n];
            gemm_packed_shared_a_rows(
                &cfg,
                &mut csub,
                mm,
                row0,
                mm,
                n,
                &apack,
                |dst, j0, nb, p0, kb| pack::pack_b_t(dst, &b, n, j0, nb, p0, kb),
                true,
            );
            for j in 0..n {
                for i in 0..mm {
                    assert_eq!(
                        csub[j * mm + i].to_bits(),
                        cfull[j * m + row0 + i].to_bits(),
                        "row0={row0} mm={mm} ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn non_default_blocking_matches_reference() {
        // Same problem under a deliberately odd (but valid) blocking: the
        // accumulation order is k-ascending regardless of mc/nc, so results
        // agree with the reference to the bit for the packed core.
        let (m, n, k) = (77, 53, 90);
        let a: Vec<f64> = (0..m * k).map(|v| ((v * 13) % 9) as f64 - 4.0).collect();
        let b: Vec<f64> = (0..n * k).map(|v| ((v * 7) % 11) as f64 - 5.0).collect();
        let run = |cfg: &KernelConfig| {
            let mut c = vec![0.0; m * n];
            gemm_packed(
                cfg,
                &mut c,
                m,
                m,
                n,
                k,
                |dst, i0, mb, p0, kb| pack::pack_a_nt(dst, &a, m, i0, mb, p0, kb),
                |dst, j0, nb, p0, kb| pack::pack_b_t(dst, &b, n, j0, nb, p0, kb),
                true,
            );
            c
        };
        let base = run(&KernelConfig::default());
        let small = KernelConfig {
            mc: 2 * MR,
            kc: 96,
            nc: 3 * NR,
            ..Default::default()
        };
        small.validate().unwrap();
        let alt = run(&small);
        // Different kc splits the k loop differently, so allow rounding: the
        // two must agree to GEMM accuracy, and bit-exactly when kc matches.
        for (x, y) in base.iter().zip(&alt) {
            assert!((x - y).abs() < 1e-10);
        }
        let same_kc = KernelConfig {
            mc: 2 * MR,
            nc: 3 * NR,
            ..Default::default()
        };
        same_kc.validate().unwrap();
        let alt2 = run(&same_kc);
        assert!(base
            .iter()
            .zip(&alt2)
            .all(|(x, y)| x.to_bits() == y.to_bits()));
    }
}
