//! Symmetric rank-k update `C ← C − A·Aᵀ` (lower triangle).
//!
//! Used by *Update* tasks `U(i,j,i)` whose target block sits on the diagonal
//! of the matrix: the update of a diagonal block by a factored panel is
//! symmetric, so only the lower triangle is computed — this halves the work
//! relative to GEMM, exactly as BLAS `SYRK` does. The diagonal-tile width
//! `db` and the packed-dispatch threshold come from the caller's
//! [`KernelConfig`]; `db` must be a multiple of [`microkernel::MR`] so tile
//! boundaries land on packed-strip boundaries (a validated config invariant).

use crate::config::KernelConfig;
use crate::gemm::gemm_nt_raw;
use crate::mat::Mat;
use crate::microkernel;
use crate::pack;

/// Compute `C ← C − A·Aᵀ` updating only the lower triangle, on raw
/// column-major buffers under `cfg`. `c` is `n × n` (leading dimension
/// `ldc`), `a` is `n × k` (leading dimension `lda`).
pub fn syrk_lower_raw(
    cfg: &KernelConfig,
    c: &mut [f64],
    ldc: usize,
    n: usize,
    a: &[f64],
    lda: usize,
    k: usize,
) {
    if n == 0 || k == 0 {
        return;
    }
    if crate::flops::syrk(n, k) >= cfg.pack_min_flops {
        syrk_lower_packed(cfg, c, ldc, n, a, lda, k);
        return;
    }
    let db = cfg.db;
    // Small problem: tile the diagonal; each diagonal db×db tile gets a
    // triangular update and the panel below it a plain GEMM.
    for jj in (0..n).step_by(db) {
        let jend = (jj + db).min(n);
        let jb = jend - jj;
        for j in jj..jend {
            for p in 0..k {
                let ajp = a[p * lda + j];
                if ajp == 0.0 {
                    continue;
                }
                let col = &mut c[j * ldc..j * ldc + jend];
                let ap = &a[p * lda..p * lda + jend];
                for i in j..jend {
                    col[i] -= ap[i] * ajp;
                }
            }
        }
        // Rectangular panel below the diagonal tile: rows jend..n, cols jj..jend.
        let m = n - jend;
        if m > 0 {
            // C[jend.., jj..jend] -= A[jend.., :] * A[jj..jend, :]^T
            let c_off = jj * ldc + jend;
            gemm_nt_raw(
                cfg,
                &mut c[c_off..],
                ldc,
                m,
                jb,
                &a[jend..],
                lda,
                &a[jj..],
                lda,
                k,
            );
        }
    }
}

/// Packed-core SYRK: the `n × k` panel is packed into MR-strip format
/// **once** ([`pack::ApackFull`], built with the same `cfg.kc` the consumers
/// run under), then every diagonal tile and every sub-diagonal block runs
/// against strip subranges of that shared pack — the per-tile GEMM calls of
/// the naive tiling would otherwise re-pack the same `A` rows `n/db` times
/// over.
///
/// Diagonal tiles compute the *full* db×db product on the packed core into
/// a zeroed scratch and fold in only its lower half: the redundant upper
/// half costs jb²k extra flops, but at the packed rate that beats running
/// the needed half on a scalar triangular loop — and the doubling is
/// confined to a db/n fraction of the whole update.
fn syrk_lower_packed(
    cfg: &KernelConfig,
    c: &mut [f64],
    ldc: usize,
    n: usize,
    a: &[f64],
    lda: usize,
    k: usize,
) {
    let apack = pack::ApackFull::pack_nt(a, lda, n, k, cfg.kc);
    let db = cfg.db;
    let mut tile: Vec<f64> = Vec::new();
    for jj in (0..n).step_by(db) {
        let jend = (jj + db).min(n);
        let jb = jend - jj;
        // Full jb×jb diagonal-tile product, lower half folded into C.
        tile.clear();
        tile.resize(jb * jb, 0.0);
        microkernel::gemm_packed_shared_a_rows(
            cfg,
            &mut tile,
            jb,
            jj,
            jb,
            jb,
            &apack,
            |dst, j0, nb, p0, kb| pack::pack_b_t(dst, a, lda, jj + j0, nb, p0, kb),
            true,
        );
        for j in 0..jb {
            let col = &mut c[(jj + j) * ldc + jj..(jj + j) * ldc + jend];
            let tcol = &tile[j * jb..j * jb + jb];
            for i in j..jb {
                col[i] += tcol[i];
            }
        }
        // Rectangular panel below the diagonal tile: rows jend..n, cols jj..jend.
        let m = n - jend;
        if m > 0 {
            // C[jend.., jj..jend] -= A[jend.., :] * A[jj..jend, :]^T
            microkernel::gemm_packed_shared_a_rows(
                cfg,
                &mut c[jj * ldc + jend..],
                ldc,
                jend,
                m,
                jb,
                &apack,
                |dst, j0, nb, p0, kb| pack::pack_b_t(dst, a, lda, jj + j0, nb, p0, kb),
                true,
            );
        }
    }
}

/// Matrix-level wrapper with an explicit config: `C ← C − A·Aᵀ`, lower
/// triangle only.
///
/// The strict upper triangle of `C` is left untouched.
///
/// # Panics
/// Panics if `C` is not square or `A.rows() != C.rows()`.
pub fn syrk_lower_cfg(cfg: &KernelConfig, c: &mut Mat, a: &Mat) {
    assert_eq!(c.rows(), c.cols(), "syrk_lower: C must be square");
    assert_eq!(a.rows(), c.rows(), "syrk_lower: A rows must match C");
    let (n, k) = (c.rows(), a.cols());
    let (ldc, lda) = (c.ld(), a.ld());
    syrk_lower_raw(cfg, c.as_mut_slice(), ldc, n, a.as_slice(), lda, k);
}

/// Matrix-level wrapper under the default config: `C ← C − A·Aᵀ`, lower
/// triangle only.
///
/// # Panics
/// Same as [`syrk_lower_cfg`].
pub fn syrk_lower(c: &mut Mat, a: &Mat) {
    syrk_lower_cfg(&KernelConfig::default(), c, a);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::syrk_ref;

    fn check(n: usize, k: usize) {
        let a = Mat::from_fn(n, k, |r, c| ((r * 11 + c * 3) % 7) as f64 - 3.0);
        let mut c1 = Mat::from_fn(n, n, |r, c| (r * n + c) as f64 * 0.125);
        let mut c2 = c1.clone();
        syrk_lower(&mut c1, &a);
        syrk_ref(&mut c2, &a);
        for j in 0..n {
            for i in j..n {
                assert!(
                    (c1[(i, j)] - c2[(i, j)]).abs() < 1e-10,
                    "n={n} k={k} at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn matches_reference_small() {
        for &(n, k) in &[(1, 1), (2, 3), (5, 4), (8, 8)] {
            check(n, k);
        }
    }

    #[test]
    fn matches_reference_across_tile_boundaries() {
        for &(n, k) in &[(47, 10), (48, 10), (49, 10), (97, 33), (130, 5)] {
            check(n, k);
        }
    }

    #[test]
    fn upper_triangle_untouched() {
        let a = Mat::from_fn(6, 4, |r, c| (r + c) as f64);
        let mut c = Mat::from_fn(6, 6, |_, _| 42.0);
        syrk_lower(&mut c, &a);
        for j in 1..6 {
            for i in 0..j {
                assert_eq!(c[(i, j)], 42.0, "upper entry ({i},{j}) modified");
            }
        }
    }

    #[test]
    fn zero_k_is_noop() {
        let a = Mat::zeros(4, 0);
        let mut c = Mat::eye(4);
        syrk_lower(&mut c, &a);
        assert_eq!(c, Mat::eye(4));
    }

    #[test]
    fn non_default_tile_matches_reference() {
        let cfg = KernelConfig {
            db: 2 * microkernel::MR,
            kc: 64,
            ..Default::default()
        };
        cfg.validate().unwrap();
        for &(n, k) in &[(49, 20), (97, 33)] {
            let a = Mat::from_fn(n, k, |r, c| ((r * 11 + c * 3) % 7) as f64 - 3.0);
            let mut c1 = Mat::from_fn(n, n, |r, c| (r * n + c) as f64 * 0.125);
            let mut c2 = c1.clone();
            syrk_lower_cfg(&cfg, &mut c1, &a);
            syrk_ref(&mut c2, &a);
            for j in 0..n {
                for i in j..n {
                    assert!((c1[(i, j)] - c2[(i, j)]).abs() < 1e-10);
                }
            }
        }
    }
}
