//! Block low-rank (BLR) compression: truncated factorizations of
//! off-diagonal supernode blocks.
//!
//! A dense `m × n` block `A` is replaced by `U·Vᵀ` (`U: m × r`, `V: n × r`)
//! whenever a rank-`r` approximation satisfies the relative Frobenius
//! tolerance `‖A − U·Vᵀ‖_F ≤ tol·‖A‖_F` *and* the factored form is actually
//! smaller (`r·(m+n) < m·n`, `r ≤ max_rank`). The truncation kernel is a
//! column-pivoted modified Gram–Schmidt QR on the residual matrix: each step
//! picks the residual column of largest norm, orthogonalizes, and downdates
//! every remaining column, so the maintained residual *is* the approximation
//! error and the stopping test is exact. The pivot order is a deterministic
//! function of the input (largest norm, lowest index on ties), which keeps
//! the compressed path bit-reproducible run to run.
//!
//! Sums of low-rank products are re-truncated without an SVD:
//! `U·Vᵀ = Qu·(Ru·Rvᵀ)·Qvᵀ` reduces the problem to the small `k × k` core
//! `Ru·Rvᵀ`, which goes back through the same pivoted truncation
//! ([`recompress`]).

use crate::config::ConfigError;
use crate::mat::Mat;

/// Validated knobs of the block low-rank factorization mode.
///
/// `tol == 0.0` disables compression entirely — every block stays dense and
/// the factorization is bit-identical to the exact path. That is the
/// default, so existing callers are untouched unless they opt in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlrConfig {
    /// Relative Frobenius truncation tolerance; `0.0` = exact/dense mode.
    pub tol: f64,
    /// Blocks with `min(rows, cols)` below this stay dense (compression
    /// overhead would not amortize on small blocks).
    pub min_block: usize,
    /// Hard cap on the stored rank; a block whose tolerance-satisfying rank
    /// exceeds the cap stays dense rather than losing accuracy.
    pub max_rank: usize,
}

impl Default for BlrConfig {
    fn default() -> Self {
        BlrConfig {
            tol: 0.0,
            min_block: 48,
            max_rank: usize::MAX,
        }
    }
}

impl BlrConfig {
    /// True when compression is on (`tol > 0`).
    pub fn enabled(&self) -> bool {
        self.tol > 0.0
    }

    /// True when a `rows × cols` factored panel is a compression candidate
    /// under this config (the tolerance still decides whether it actually
    /// compresses).
    pub fn eligible(&self, rows: usize, cols: usize) -> bool {
        self.enabled() && rows.min(cols) >= self.min_block
    }

    /// Reject nonsensical configurations before any numeric work.
    ///
    /// # Errors
    /// [`ConfigError::InvalidBlr`] naming the offending field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !self.tol.is_finite() || self.tol < 0.0 {
            return Err(ConfigError::InvalidBlr {
                field: "tol",
                why: "must be finite and non-negative",
            });
        }
        if self.tol >= 1.0 {
            return Err(ConfigError::InvalidBlr {
                field: "tol",
                why: "must be below 1 (a rank-0 factor already achieves it)",
            });
        }
        if self.enabled() && self.min_block < 2 {
            return Err(ConfigError::InvalidBlr {
                field: "min_block",
                why: "must be at least 2 when compression is enabled",
            });
        }
        if self.enabled() && self.max_rank == 0 {
            return Err(ConfigError::InvalidBlr {
                field: "max_rank",
                why: "must be at least 1 when compression is enabled",
            });
        }
        Ok(())
    }
}

/// A block stored in truncated-factorization form: `A ≈ U·Vᵀ` with
/// `U: rows × rank` and `V: cols × rank`. Rank 0 represents the zero block.
#[derive(Debug, Clone, PartialEq)]
pub struct LowRankMat {
    u: Mat,
    v: Mat,
}

impl LowRankMat {
    /// Pair two factors (`u.cols() == v.cols()` is the shared rank).
    ///
    /// # Panics
    /// Panics when the factor ranks disagree.
    pub fn from_parts(u: Mat, v: Mat) -> LowRankMat {
        assert_eq!(u.cols(), v.cols(), "factor ranks must agree");
        LowRankMat { u, v }
    }

    /// Row count of the represented block.
    pub fn rows(&self) -> usize {
        self.u.rows()
    }

    /// Column count of the represented block.
    pub fn cols(&self) -> usize {
        self.v.rows()
    }

    /// Stored rank.
    pub fn rank(&self) -> usize {
        self.u.cols()
    }

    /// The left factor `U` (`rows × rank`, orthonormal columns as produced
    /// by [`compress`]).
    pub fn u(&self) -> &Mat {
        &self.u
    }

    /// The right factor `V` (`cols × rank`).
    pub fn v(&self) -> &Mat {
        &self.v
    }

    /// Stored payload elements: `(rows + cols) · rank`.
    pub fn payload_len(&self) -> usize {
        (self.rows() + self.cols()) * self.rank()
    }

    /// Stored payload bytes (f64 entries).
    pub fn bytes(&self) -> u64 {
        (self.payload_len() * std::mem::size_of::<f64>()) as u64
    }

    /// Materialize the dense block `U·Vᵀ`.
    pub fn to_dense(&self) -> Mat {
        let (m, n, r) = (self.rows(), self.cols(), self.rank());
        let mut out = Mat::zeros(m, n);
        let (us, vs, os) = (self.u.as_slice(), self.v.as_slice(), out.as_mut_slice());
        for k in 0..r {
            let uk = &us[k * m..(k + 1) * m];
            for c in 0..n {
                let vkc = vs[k * n + c];
                if vkc == 0.0 {
                    continue;
                }
                let col = &mut os[c * m..(c + 1) * m];
                for (o, &u) in col.iter_mut().zip(uk) {
                    *o += u * vkc;
                }
            }
        }
        out
    }

    /// Serialize to the wire payload `[u | v]` (both factors column-major,
    /// `(rows + cols) · rank` f64 values).
    pub fn to_payload(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.payload_len());
        out.extend_from_slice(self.u.as_slice());
        out.extend_from_slice(self.v.as_slice());
        out
    }

    /// Rebuild from a wire payload produced by [`LowRankMat::to_payload`].
    ///
    /// # Panics
    /// Panics when `data.len() != (rows + cols) · rank`.
    pub fn from_payload(rows: usize, cols: usize, rank: usize, data: &[f64]) -> LowRankMat {
        assert_eq!(data.len(), (rows + cols) * rank, "payload length");
        let u = Mat::from_col_major(rows, rank, data[..rows * rank].to_vec());
        let v = Mat::from_col_major(cols, rank, data[rows * rank..].to_vec());
        LowRankMat { u, v }
    }
}

/// Either representation of a stored block, borrowed for a kernel call.
#[derive(Debug, Clone, Copy)]
pub enum BlockRef<'a> {
    /// The classical dense representation.
    Dense(&'a Mat),
    /// The truncated-factorization representation.
    LowRank(&'a LowRankMat),
}

impl BlockRef<'_> {
    /// Row count of the represented block.
    pub fn rows(&self) -> usize {
        match self {
            BlockRef::Dense(m) => m.rows(),
            BlockRef::LowRank(l) => l.rows(),
        }
    }

    /// Column count of the represented block.
    pub fn cols(&self) -> usize {
        match self {
            BlockRef::Dense(m) => m.cols(),
            BlockRef::LowRank(l) => l.cols(),
        }
    }
}

/// Truncate a column-major `m × n` panel (leading dimension `ld ≥ m`) to
/// the lowest rank meeting `‖A − U·Vᵀ‖_F ≤ tol·‖A‖_F`, by column-pivoted
/// modified Gram–Schmidt on the residual. Returns `None` when no admissible
/// rank is *profitable*: the tolerance-satisfying rank exceeds `max_rank`,
/// or the factored form would not be smaller than the dense block — callers
/// keep such blocks dense, so accuracy is never silently degraded.
///
/// # Panics
/// Panics when `ld < m` or the slice is too short for the panel.
pub fn compress_raw(
    a: &[f64],
    m: usize,
    n: usize,
    ld: usize,
    tol: f64,
    max_rank: usize,
) -> Option<LowRankMat> {
    compress_raw_thresh(a, m, n, ld, Thresh::Rel(tol), max_rank)
}

/// [`compress_raw`] with an *absolute* Frobenius threshold: truncation stops
/// once the residual norm drops below `abs_tol`, independent of the block's
/// own norm. This is the global-threshold criterion of BLR solvers — a far
/// off-diagonal block with a tiny norm truncates to a much lower rank than
/// the block-relative rule allows, while the overall backward error stays
/// bounded by the threshold times the block count.
pub fn compress_raw_abs(
    a: &[f64],
    m: usize,
    n: usize,
    ld: usize,
    abs_tol: f64,
    max_rank: usize,
) -> Option<LowRankMat> {
    compress_raw_thresh(a, m, n, ld, Thresh::Abs(abs_tol), max_rank)
}

fn compress_raw_thresh(
    a: &[f64],
    m: usize,
    n: usize,
    ld: usize,
    thresh: Thresh,
    max_rank: usize,
) -> Option<LowRankMat> {
    // A rank at or past the storage break-even point `m·n / (m+n)` can never
    // be profitable, so the pivoted sweep is capped there: a block that will
    // be declined aborts after ~one GEMM-equivalent of work instead of
    // sweeping to full rank. Accepted blocks are unaffected — any admissible
    // rank lies strictly below the cap.
    let cap = max_rank.min((m * n) / (m + n).max(1));
    let lr = truncate_raw(a, m, n, ld, thresh, cap)?;
    // Profitability: the factored form must actually shrink the block.
    if lr.rank() * (m + n) >= m * n {
        return None;
    }
    Some(lr)
}

/// Truncation threshold: relative to the block's own Frobenius norm, or an
/// absolute residual-norm target (the global-threshold BLR criterion).
#[derive(Debug, Clone, Copy)]
enum Thresh {
    Rel(f64),
    Abs(f64),
}

/// The tolerance-only truncation behind [`compress_raw`]: returns the
/// lowest-rank factorization meeting `tol` (or `None` past `max_rank`)
/// without the storage-profitability policy — [`recompress`] applies it to
/// small cores where the factored form is never smaller.
fn truncate_raw(
    a: &[f64],
    m: usize,
    n: usize,
    ld: usize,
    thresh: Thresh,
    max_rank: usize,
) -> Option<LowRankMat> {
    assert!(ld >= m.max(1), "leading dimension too small");
    if n > 0 {
        assert!(a.len() >= ld * (n - 1) + m, "panel slice too short");
    }
    // Residual copy (compacted to ld == m) and exact column norms.
    let mut work = vec![0.0f64; m * n];
    for c in 0..n {
        work[c * m..(c + 1) * m].copy_from_slice(&a[c * ld..c * ld + m]);
    }
    let col_norm2 =
        |w: &[f64], c: usize| -> f64 { w[c * m..(c + 1) * m].iter().map(|x| x * x).sum() };
    // Column residual norms are maintained incrementally (the xGEQP3
    // downdate `‖c‖² ← ‖c‖² − ⟨c,q⟩²`) instead of being recomputed each
    // step, so one accepted rank costs ~2·m·n flops, not 4·m·n. A column
    // whose downdated norm has lost most of its original magnitude is
    // recomputed exactly to guard against cancellation.
    let mut norm2: Vec<f64> = (0..n).map(|c| col_norm2(&work, c)).collect();
    let orig2 = norm2.clone();
    let total2: f64 = norm2.iter().sum();
    let thresh2 = match thresh {
        Thresh::Rel(tol) => tol * tol * total2,
        Thresh::Abs(abs) => abs * abs,
    };
    let cap = max_rank.min(m).min(n);

    let mut u = Vec::new(); // r columns of length m
    let mut v = vec![0.0f64; 0]; // filled as r grows: v[k*n + c]
    let mut r = 0usize;
    let mut remaining2 = total2;
    while remaining2 > thresh2 {
        if r == cap {
            return None; // tolerance not met within the rank cap
        }
        // Deterministic pivot: largest residual column norm, lowest index.
        let mut p = 0usize;
        let mut best = -1.0f64;
        for (c, &s) in norm2.iter().enumerate() {
            if s > best {
                best = s;
                p = c;
            }
        }
        if best <= 0.0 {
            break; // residual is exactly zero despite the float sum above
        }
        let norm = col_norm2(&work, p).sqrt();
        if norm <= 0.0 {
            break; // downdated estimate drifted from an exactly-zero column
        }
        let q: Vec<f64> = work[p * m..(p + 1) * m].iter().map(|x| x / norm).collect();
        // Project every residual column onto q and downdate.
        let mut vrow = vec![0.0f64; n];
        for c in 0..n {
            let col = &mut work[c * m..(c + 1) * m];
            let dot: f64 = col.iter().zip(&q).map(|(x, y)| x * y).sum();
            vrow[c] = dot;
            if dot != 0.0 {
                for (x, &y) in col.iter_mut().zip(&q) {
                    *x -= dot * y;
                }
            }
            let down = norm2[c] - dot * dot;
            norm2[c] = if down <= 1e-12 * orig2[c] {
                col_norm2(&work, c) // cancellation guard: recompute exactly
            } else {
                down
            };
        }
        // The pivot column's residual is exactly zero by construction.
        work[p * m..(p + 1) * m].fill(0.0);
        norm2[p] = 0.0;
        u.extend_from_slice(&q);
        v.extend_from_slice(&vrow);
        r += 1;
        remaining2 = norm2.iter().sum();
    }
    let u = Mat::from_col_major(m, r, u);
    // v was built row-major (one rank row per step): transpose into n × r.
    let mut vt = vec![0.0f64; n * r];
    for k in 0..r {
        for c in 0..n {
            vt[k * n + c] = v[k * n + c];
        }
    }
    let v = Mat::from_col_major(n, r, vt);
    Some(LowRankMat { u, v })
}

/// [`compress_raw`] over a whole [`Mat`].
pub fn compress(a: &Mat, tol: f64, max_rank: usize) -> Option<LowRankMat> {
    compress_raw(a.as_slice(), a.rows(), a.cols(), a.ld(), tol, max_rank)
}

/// Modeled flop count of one [`compress`] call that stopped at rank `r`:
/// per accepted rank the kernel projects and downdates every residual
/// column (`2·m·n`), with column norms maintained incrementally (O(n) per
/// step); one extra `m·n` pass covers the initial norm computation.
pub fn compress_flops(m: usize, n: usize, r: usize) -> u64 {
    (2 * m * n * r.max(1) + m * n) as u64
}

/// Plain (unpivoted) MGS thin QR of `a` (`m × k`): returns `(Q, R)` with
/// `Q: m × k`, `R: k × k` upper triangular and `A = Q·R`. Rank-deficient
/// columns yield zero `Q` columns (the downstream core truncation drops
/// them), keeping the factor exact.
fn mgs_qr(a: &Mat) -> (Mat, Mat) {
    let (m, k) = (a.rows(), a.cols());
    let mut q = a.as_slice().to_vec();
    let mut rr = vec![0.0f64; k * k];
    for j in 0..k {
        for i in 0..j {
            let dot: f64 = (0..m).map(|t| q[i * m + t] * q[j * m + t]).sum();
            rr[j * k + i] = dot;
            if dot != 0.0 {
                for t in 0..m {
                    q[j * m + t] -= dot * q[i * m + t];
                }
            }
        }
        let norm: f64 = (0..m)
            .map(|t| q[j * m + t] * q[j * m + t])
            .sum::<f64>()
            .sqrt();
        rr[j * k + j] = norm;
        if norm > 0.0 {
            for t in 0..m {
                q[j * m + t] /= norm;
            }
        }
    }
    (Mat::from_col_major(m, k, q), Mat::from_col_major(k, k, rr))
}

/// Re-truncate an accumulated low-rank sum `U·Vᵀ` (rank `k`, typically the
/// concatenation of several rank-`rᵢ` terms) back to the lowest rank meeting
/// `tol`: thin-QR both factors, truncate the small `k × k` core `Ru·Rvᵀ`
/// with the same pivoted kernel, and fold the core factors back in. Returns
/// `None` when the truncated form would not be admissible ([`compress_raw`]'s
/// rules applied to the full block shape).
pub fn recompress(u: &Mat, v: &Mat, tol: f64, max_rank: usize) -> Option<LowRankMat> {
    recompress_thresh(u, v, Thresh::Rel(tol), max_rank)
}

/// [`recompress`] with an absolute residual-norm threshold (the
/// global-threshold criterion of [`compress_raw_abs`]).
pub fn recompress_abs(u: &Mat, v: &Mat, abs_tol: f64, max_rank: usize) -> Option<LowRankMat> {
    recompress_thresh(u, v, Thresh::Abs(abs_tol), max_rank)
}

fn recompress_thresh(u: &Mat, v: &Mat, thresh: Thresh, max_rank: usize) -> Option<LowRankMat> {
    assert_eq!(u.cols(), v.cols(), "factor ranks must agree");
    let (m, n, k) = (u.rows(), v.rows(), u.cols());
    if k == 0 {
        return Some(LowRankMat {
            u: Mat::zeros(m, 0),
            v: Mat::zeros(n, 0),
        });
    }
    let (qu, ru) = mgs_qr(u);
    let (qv, rv) = mgs_qr(v);
    // Core C = Ru · Rvᵀ (k × k); tolerance-only truncation — profitability
    // is judged against the full block shape below, not the tiny core.
    let core = ru.matmul(&rv.transpose());
    let c = truncate_raw(core.as_slice(), k, k, k, thresh, max_rank.min(k))?;
    let r = c.rank();
    if r * (m + n) >= m * n || r > max_rank {
        return None;
    }
    Some(LowRankMat {
        u: qu.matmul(c.u()),
        v: qv.matmul(c.v()),
    })
}

/// Modeled flop count of one [`recompress`] call collapsing rank `k` to
/// rank `r` on an `m × n` block: two thin QRs (`2(m+n)k²`), the `k³` core
/// products, and the two fold-back GEMMs (`2(m+n)kr`).
pub fn recompress_flops(m: usize, n: usize, k: usize, r: usize) -> u64 {
    let mn = m + n;
    (2 * mn * k * k + 2 * k * k * k + 2 * mn * k * r.max(1)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rank_k(m: usize, n: usize, k: usize, seed: u64) -> Mat {
        let f = |i: usize, j: usize, s: u64| {
            (((i * 31 + j * 17 + s as usize * 7) % 13) as f64 - 6.0) * 0.21
        };
        let u = Mat::from_fn(m, k, |r, c| f(r, c, seed));
        let v = Mat::from_fn(n, k, |r, c| f(r, c, seed + 1));
        u.matmul(&v.transpose())
    }

    #[test]
    fn exact_rank_recovered_and_error_bounded() {
        let a = rank_k(40, 24, 3, 5);
        let lr = compress(&a, 1e-12, usize::MAX).expect("rank-3 block compresses");
        assert!(lr.rank() <= 3 + 1);
        let err = lr.to_dense().max_abs_diff(&a);
        assert!(err < 1e-10 * a.fro_norm().max(1.0), "err {err}");
    }

    #[test]
    fn zero_block_compresses_to_rank_zero() {
        let a = Mat::zeros(20, 12);
        let lr = compress(&a, 1e-8, usize::MAX).unwrap();
        assert_eq!(lr.rank(), 0);
        assert_eq!(lr.to_dense().max_abs_diff(&a), 0.0);
        assert_eq!(lr.payload_len(), 0);
    }

    #[test]
    fn full_rank_block_declines_compression() {
        // Identity-dominated block: numerical rank = min(m, n).
        let a = Mat::from_fn(16, 16, |r, c| if r == c { 1.0 } else { 0.0 });
        assert!(compress(&a, 1e-10, usize::MAX).is_none());
    }

    #[test]
    fn rank_cap_declines_rather_than_degrades() {
        let a = rank_k(30, 30, 6, 9);
        assert!(compress(&a, 1e-12, 2).is_none());
    }

    #[test]
    fn payload_roundtrip_is_bitwise() {
        let a = rank_k(25, 18, 2, 3);
        let lr = compress(&a, 1e-10, usize::MAX).unwrap();
        let p = lr.to_payload();
        let back = LowRankMat::from_payload(lr.rows(), lr.cols(), lr.rank(), &p);
        assert_eq!(back.u().as_slice(), lr.u().as_slice());
        assert_eq!(back.v().as_slice(), lr.v().as_slice());
    }

    #[test]
    fn recompress_sums_within_tolerance() {
        let a = rank_k(32, 20, 2, 1);
        let b = rank_k(32, 20, 2, 8);
        let la = compress(&a, 1e-12, usize::MAX).unwrap();
        let lb = compress(&b, 1e-12, usize::MAX).unwrap();
        // Stack factors: [Ua | Ub]·[Va | Vb]ᵀ = A + B.
        let mut us = la.u().as_slice().to_vec();
        us.extend_from_slice(lb.u().as_slice());
        let mut vs = la.v().as_slice().to_vec();
        vs.extend_from_slice(lb.v().as_slice());
        let u = Mat::from_col_major(32, la.rank() + lb.rank(), us);
        let v = Mat::from_col_major(20, la.rank() + lb.rank(), vs);
        let sum = recompress(&u, &v, 1e-10, usize::MAX).expect("sum stays low-rank");
        let dense_sum = {
            let mut s = a.clone();
            for (x, y) in s.as_mut_slice().iter_mut().zip(b.as_slice()) {
                *x += y;
            }
            s
        };
        assert!(sum.rank() <= la.rank() + lb.rank());
        let err = sum.to_dense().max_abs_diff(&dense_sum);
        assert!(err < 1e-8 * dense_sum.fro_norm().max(1.0), "err {err}");
    }

    #[test]
    fn config_validation() {
        assert!(BlrConfig::default().validate().is_ok());
        assert!(BlrConfig {
            tol: 1e-8,
            ..Default::default()
        }
        .validate()
        .is_ok());
        assert!(BlrConfig {
            tol: -1.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(BlrConfig {
            tol: f64::NAN,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(BlrConfig {
            tol: 1.5,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(BlrConfig {
            tol: 1e-8,
            min_block: 1,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(BlrConfig {
            tol: 1e-8,
            max_rank: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(!BlrConfig::default().enabled());
        assert!(!BlrConfig::default().eligible(100, 100));
        let on = BlrConfig {
            tol: 1e-8,
            min_block: 16,
            ..Default::default()
        };
        assert!(on.eligible(16, 16) && !on.eligible(15, 64));
    }
}
