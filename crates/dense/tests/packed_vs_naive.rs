//! Property tests for the packed register-blocked engine against the naive
//! oracle (`sympack_dense::naive` and plain triple loops).
//!
//! The shape set is adversarial around the microkernel geometry: every
//! dimension sweeps `{0, 1, MR−1, MR, MR+1, 2·MR+3, …}` so each test hits
//! empty problems, single-element tiles, full register tiles, one-past
//! boundaries, and ragged edge strips in both the `m` (MR) and `n` (NR)
//! directions, as well as shapes that cross the mc/kc/nc cache blocks.
//!
//! Every call runs on a sub-panel of a larger buffer: leading dimensions are
//! strictly greater than the logical dimension and the operand starts at a
//! nonzero offset, so any kernel that confuses `ld` with the row count or
//! writes outside its panel trips the sentinel checks here.
//!
//! The sweeps run both under [`KernelConfig::default()`] and under a set of
//! deliberately skewed configs (tiny cache blocks, odd panel widths, forced
//! packed dispatch): every validated config must stay within 1e-13 of the
//! oracle and be bitwise deterministic run-to-run.

use sympack_dense::config::KernelConfig;
use sympack_dense::gemm::{gemm_nt_packed_raw, gemm_nt_raw};
use sympack_dense::microkernel::{MR, NR};
use sympack_dense::panel::{gemm_nn_acc_raw, gemm_tn_acc_raw};
use sympack_dense::syrk::syrk_lower_raw;
use sympack_dense::trsm::trsm_right_lower_trans_raw;

/// Adversarial sizes for the `m`/`n`/`k` dimensions (MR = 8, NR = 4: the
/// NR-critical values 3/4/5 are covered by MR−1 = 7 edges plus 2·MR+3 = 19,
/// which is ≡ 3 mod 4).
const DIMS: &[usize] = &[0, 1, MR - 1, MR, MR + 1, 2 * MR + 3, 61];

/// Larger sizes that cross the default cache-blocking boundaries
/// (mc = 128, kc = 256); kept to a few so the full sweep stays fast.
fn big_dims() -> [usize; 2] {
    let cfg = KernelConfig::default();
    [cfg.mc + 5, cfg.kc + 9]
}

/// Non-default configs every kernel sweep must also pass under: tiny cache
/// blocks (many mc/kc/nc iterations even on small shapes), odd panel widths,
/// and a forced-packed dispatch (`pack_min_flops = 0`). All must validate.
fn skewed_configs() -> Vec<KernelConfig> {
    let cfgs = vec![
        // Tiny cache blocks: several blocking iterations on modest shapes.
        KernelConfig {
            mc: 2 * MR,
            kc: 16,
            nc: 3 * NR,
            db: MR,
            pack_min_flops: 0,
            ..Default::default()
        },
        // Odd panel widths everywhere; default cache blocks.
        KernelConfig {
            jb: 24,
            sj: 5,
            rs: 32,
            pb: 16,
            ib: 4,
            sb: 24,
            db: 2 * MR,
            ..Default::default()
        },
        // Packed core forced on for every shape, skewed blocks.
        KernelConfig {
            mc: 3 * MR,
            kc: 48,
            nc: 7 * NR,
            nb: 16,
            kb: 32,
            pack_min_flops: 0,
            ..Default::default()
        },
    ];
    for cfg in &cfgs {
        cfg.validate().expect("skewed test config must validate");
    }
    cfgs
}

const SENTINEL: f64 = -777.25;

fn deterministic_fill(buf: &mut [f64], salt: u64) {
    for (i, x) in buf.iter_mut().enumerate() {
        let h = (i as u64)
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(salt)
            .wrapping_mul(0x2545F4914F6CDD1D);
        // Values in [-1, 1): keeps products O(k), so 1e-13 relative slack
        // is many ulps of headroom without hiding real blunders.
        *x = ((h >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0;
    }
}

/// Max relative difference |x−y| / max(1, |y|) over two equal-length slices.
fn max_rel_diff(got: &[f64], want: &[f64]) -> f64 {
    got.iter()
        .zip(want)
        .map(|(g, w)| (g - w).abs() / w.abs().max(1.0))
        .fold(0.0, f64::max)
}

/// A column-major operand embedded in an oversized buffer: `ld > rows`
/// strictly, nonzero starting offset, sentinel-filled padding.
struct Panel {
    buf: Vec<f64>,
    off: usize,
    ld: usize,
    rows: usize,
    cols: usize,
}

impl Panel {
    fn new(rows: usize, cols: usize, salt: u64) -> Self {
        // ld strictly greater than rows, misaligned w.r.t. MR on purpose.
        let ld = rows + 3 + (salt as usize % 5);
        let off = 2 + (salt as usize % 7);
        let buf = vec![SENTINEL; off + ld * cols.max(1) + 4];
        let mut p = Panel {
            buf,
            off,
            ld,
            rows,
            cols,
        };
        // Fill only the logical rows of each column; padding rows keep the
        // sentinel so out-of-panel writes are detectable.
        let mut col = vec![0.0; rows];
        for j in 0..cols {
            deterministic_fill(&mut col, salt.wrapping_add(j as u64));
            let base = p.off + j * p.ld;
            p.buf[base..base + rows].copy_from_slice(&col);
        }
        p
    }

    fn slice(&self) -> &[f64] {
        &self.buf[self.off..]
    }

    fn slice_mut(&mut self) -> &mut [f64] {
        &mut self.buf[self.off..]
    }

    /// Dense `rows × cols` copy of the logical panel.
    fn dense(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.rows * self.cols];
        for j in 0..self.cols {
            for i in 0..self.rows {
                out[j * self.rows + i] = self.buf[self.off + j * self.ld + i];
            }
        }
        out
    }

    /// Panics if any padding element (before the offset, past the logical
    /// rows of a column, or after the last column) was modified.
    fn assert_padding_intact(&self, what: &str) {
        for (i, &v) in self.buf[..self.off].iter().enumerate() {
            assert_eq!(v, SENTINEL, "{what}: prefix padding [{i}] clobbered");
        }
        for j in 0..self.cols {
            let base = self.off + j * self.ld;
            for r in self.rows..self.ld {
                let idx = base + r;
                if idx < self.buf.len() {
                    assert_eq!(
                        self.buf[idx], SENTINEL,
                        "{what}: padding row {r} of column {j} clobbered"
                    );
                }
            }
        }
        let tail = self.off + self.ld * self.cols.max(1);
        for (i, &v) in self.buf[tail..].iter().enumerate() {
            assert_eq!(v, SENTINEL, "{what}: suffix padding [{i}] clobbered");
        }
    }
}

/// Oracle: `C ← C − A·Bᵀ` by the definitional triple loop on dense copies.
fn gemm_nt_oracle(c: &mut [f64], m: usize, n: usize, a: &[f64], b: &[f64], k: usize) {
    for j in 0..n {
        for i in 0..m {
            let mut acc = 0.0;
            for p in 0..k {
                acc += a[p * m + i] * b[p * n + j];
            }
            c[j * m + i] -= acc;
        }
    }
}

fn shape_sweep(mut body: impl FnMut(usize, usize, usize)) {
    let [big_m, big_k] = big_dims();
    for &m in DIMS {
        for &n in DIMS {
            for &k in DIMS {
                body(m, n, k);
            }
        }
    }
    // A few cache-block crossers (full cartesian product would be slow).
    for &m in &[big_m, big_k] {
        body(m, NR + 1, big_k);
        body(m, 2 * MR + 3, MR - 1);
    }
    body(MR + 1, big_m, big_k);
    body(2 * MR + 3, big_k, big_m);
}

#[test]
fn gemm_dispatch_and_forced_packed_match_oracle_on_subpanels() {
    let cfg = KernelConfig::default();
    shape_sweep(|m, n, k| {
        let a = Panel::new(m, k, 11);
        let b = Panel::new(n, k, 23);
        let mut want = Panel::new(m, n, 37).dense();
        gemm_nt_oracle(&mut want, m, n, &a.dense(), &b.dense(), k);

        for forced in [false, true] {
            let mut c = Panel::new(m, n, 37);
            let (ldc, lda, ldb) = (c.ld, a.ld, b.ld);
            if forced {
                gemm_nt_packed_raw(
                    &cfg,
                    c.slice_mut(),
                    ldc,
                    m,
                    n,
                    a.slice(),
                    lda,
                    b.slice(),
                    ldb,
                    k,
                );
            } else {
                gemm_nt_raw(
                    &cfg,
                    c.slice_mut(),
                    ldc,
                    m,
                    n,
                    a.slice(),
                    lda,
                    b.slice(),
                    ldb,
                    k,
                );
            }
            let rel = max_rel_diff(&c.dense(), &want);
            assert!(
                rel <= 1e-13,
                "gemm m={m} n={n} k={k} forced={forced}: rel diff {rel:e}"
            );
            c.assert_padding_intact("gemm C");
        }
        a.assert_padding_intact("gemm A");
        b.assert_padding_intact("gemm B");
    });
}

#[test]
fn gemm_is_bitwise_deterministic_run_to_run() {
    let cfg = KernelConfig::default();
    shape_sweep(|m, n, k| {
        let a = Panel::new(m, k, 5);
        let b = Panel::new(n, k, 7);
        let mut c1 = Panel::new(m, n, 9);
        let mut c2 = Panel::new(m, n, 9);
        let (lda, ldb) = (a.ld, b.ld);
        let ldc = c1.ld;
        gemm_nt_raw(
            &cfg,
            c1.slice_mut(),
            ldc,
            m,
            n,
            a.slice(),
            lda,
            b.slice(),
            ldb,
            k,
        );
        gemm_nt_raw(
            &cfg,
            c2.slice_mut(),
            ldc,
            m,
            n,
            a.slice(),
            lda,
            b.slice(),
            ldb,
            k,
        );
        assert_eq!(
            c1.buf, c2.buf,
            "gemm m={m} n={n} k={k}: runs differ bitwise"
        );
    });
}

#[test]
fn gemm_under_skewed_configs_matches_oracle_and_is_deterministic() {
    // Every skewed (but validated) config must stay within the same oracle
    // tolerance as the default config and remain bitwise run-to-run
    // deterministic — changing blocking must never change correctness.
    for (ci, cfg) in skewed_configs().iter().enumerate() {
        shape_sweep(|m, n, k| {
            let a = Panel::new(m, k, 11);
            let b = Panel::new(n, k, 23);
            let mut want = Panel::new(m, n, 37).dense();
            gemm_nt_oracle(&mut want, m, n, &a.dense(), &b.dense(), k);

            let mut c1 = Panel::new(m, n, 37);
            let mut c2 = Panel::new(m, n, 37);
            let (ldc, lda, ldb) = (c1.ld, a.ld, b.ld);
            gemm_nt_raw(
                cfg,
                c1.slice_mut(),
                ldc,
                m,
                n,
                a.slice(),
                lda,
                b.slice(),
                ldb,
                k,
            );
            gemm_nt_raw(
                cfg,
                c2.slice_mut(),
                ldc,
                m,
                n,
                a.slice(),
                lda,
                b.slice(),
                ldb,
                k,
            );
            let rel = max_rel_diff(&c1.dense(), &want);
            assert!(
                rel <= 1e-13,
                "gemm cfg#{ci} m={m} n={n} k={k}: rel diff {rel:e}"
            );
            assert_eq!(c1.buf, c2.buf, "gemm cfg#{ci} m={m} n={n} k={k}: bits");
            c1.assert_padding_intact("gemm C (skewed cfg)");
        });
    }
}

#[test]
fn syrk_matches_gemm_oracle_lower_triangle_on_subpanels() {
    let default_cfg = KernelConfig::default();
    let skewed = skewed_configs();
    let mut configs: Vec<&KernelConfig> = vec![&default_cfg];
    configs.extend(skewed.iter());
    for (ci, cfg) in configs.iter().enumerate() {
        for &n in DIMS {
            for &k in DIMS.iter().chain(&big_dims()) {
                let a = Panel::new(n, k, 13);
                // Oracle: full C ← C − A·Aᵀ, then compare lower halves.
                let mut want = Panel::new(n, n, 17).dense();
                gemm_nt_oracle(&mut want, n, n, &a.dense(), &a.dense(), k);

                let mut c = Panel::new(n, n, 17);
                let (ldc, lda) = (c.ld, a.ld);
                syrk_lower_raw(cfg, c.slice_mut(), ldc, n, a.slice(), lda, k);
                let got = c.dense();
                let orig = Panel::new(n, n, 17).dense();
                for j in 0..n {
                    for i in 0..n {
                        let (g, w) = (got[j * n.max(1) + i], want[j * n.max(1) + i]);
                        if i >= j {
                            let rel = (g - w).abs() / w.abs().max(1.0);
                            assert!(
                                rel <= 1e-13,
                                "syrk cfg#{ci} n={n} k={k} at ({i},{j}): {rel:e}"
                            );
                        } else {
                            // Strict upper triangle must be untouched.
                            assert_eq!(g, orig[j * n.max(1) + i], "syrk upper ({i},{j})");
                        }
                    }
                }
                c.assert_padding_intact("syrk C");
                a.assert_padding_intact("syrk A");
            }
        }
    }
}

#[test]
fn trsm_reconstructs_rhs_on_subpanels() {
    let default_cfg = KernelConfig::default();
    let skewed = skewed_configs();
    let mut configs: Vec<&KernelConfig> = vec![&default_cfg];
    configs.extend(skewed.iter());
    for (ci, cfg) in configs.iter().enumerate() {
        for &m in DIMS {
            for &n in DIMS.iter().chain(&big_dims()) {
                // Well-conditioned lower-triangular L with unit-ish diagonal.
                let mut l = Panel::new(n, n, 29);
                for j in 0..n {
                    for i in 0..j {
                        l.buf[l.off + j * l.ld + i] = f64::NAN; // never read
                    }
                    l.buf[l.off + j * l.ld + j] = 2.0 + (j % 3) as f64 * 0.25;
                    for i in j + 1..n {
                        l.buf[l.off + j * l.ld + i] *= 0.5;
                    }
                }
                let b0 = Panel::new(m, n, 31);
                let mut b = Panel::new(m, n, 31);
                let (ldb, ldl) = (b.ld, l.ld);
                trsm_right_lower_trans_raw(cfg, b.slice_mut(), ldb, m, n, l.slice(), ldl);
                // Check X·Lᵀ = B0:   B0[i,j] = Σ_{p≤j} X[i,p]·L[j,p].
                let x = b.dense();
                let want = b0.dense();
                let ld = l.dense();
                let mut maxrel: f64 = 0.0;
                for j in 0..n {
                    for i in 0..m {
                        let mut acc = 0.0;
                        for p in 0..=j {
                            acc += x[p * m + i] * ld[p * n + j];
                        }
                        maxrel = maxrel
                            .max((acc - want[j * m + i]).abs() / want[j * m + i].abs().max(1.0));
                    }
                }
                assert!(
                    maxrel <= 1e-12,
                    "trsm cfg#{ci} m={m} n={n}: reconstruction {maxrel:e}"
                );
                b.assert_padding_intact("trsm B");
            }
        }
    }
}

#[test]
fn panel_accumulating_gemms_match_oracle_on_subpanels() {
    let cfg = KernelConfig::default();
    // C += A·B (nn) and C += Aᵀ·B (tn) over the same adversarial sweep.
    shape_sweep(|m, n, k| {
        let ann = Panel::new(m, k, 41);
        let atn = Panel::new(k, m, 43);
        let b = Panel::new(k, n, 47);
        let (bd, annd, atnd) = (b.dense(), ann.dense(), atn.dense());

        let mut want_nn = Panel::new(m, n, 53).dense();
        let mut want_tn = want_nn.clone();
        for j in 0..n {
            for i in 0..m {
                let mut s_nn = 0.0;
                let mut s_tn = 0.0;
                for p in 0..k {
                    s_nn += annd[p * m + i] * bd[j * k + p];
                    s_tn += atnd[i * k + p] * bd[j * k + p];
                }
                want_nn[j * m + i] += s_nn;
                want_tn[j * m + i] += s_tn;
            }
        }

        let mut c = Panel::new(m, n, 53);
        let (ldc, lda, ldb) = (c.ld, ann.ld, b.ld);
        gemm_nn_acc_raw(
            &cfg,
            c.slice_mut(),
            ldc,
            m,
            n,
            ann.slice(),
            lda,
            b.slice(),
            ldb,
            k,
        );
        let rel = max_rel_diff(&c.dense(), &want_nn);
        assert!(rel <= 1e-13, "gemm_nn_acc m={m} n={n} k={k}: {rel:e}");
        c.assert_padding_intact("gemm_nn_acc C");

        let mut c = Panel::new(m, n, 53);
        let (ldc, lda, ldb) = (c.ld, atn.ld, b.ld);
        gemm_tn_acc_raw(
            &cfg,
            c.slice_mut(),
            ldc,
            m,
            n,
            atn.slice(),
            lda,
            b.slice(),
            ldb,
            k,
        );
        let rel = max_rel_diff(&c.dense(), &want_tn);
        assert!(rel <= 1e-13, "gemm_tn_acc m={m} n={n} k={k}: {rel:e}");
        c.assert_padding_intact("gemm_tn_acc C");
    });
}
