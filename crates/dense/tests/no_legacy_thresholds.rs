//! Guard against the dispatch thresholds re-growing compile-time homes.
//!
//! The packed-dispatch and parallel-dispatch thresholds used to be the pub
//! consts `GEMM_PACK_MIN_FLOPS` and `PAR_FLOP_THRESHOLD`; both now live in
//! `KernelConfig` (`pack_min_flops`, `par_flop_threshold`) and are threaded
//! through every call. This test scans the whole workspace source tree and
//! fails if either identifier reappears anywhere — no caller can reach a
//! constant that does not exist, and this keeps it that way.

use std::path::{Path, PathBuf};

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).expect("readable dir") {
        let path = entry.expect("dir entry").path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name != "target" && !name.starts_with('.') {
                rust_sources(&path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

#[test]
fn legacy_threshold_constants_do_not_exist_anywhere() {
    // crates/dense/tests -> workspace root is two levels up.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let mut files = Vec::new();
    rust_sources(&root.join("crates"), &mut files);
    assert!(
        files.len() > 20,
        "scan looks wrong: only {} source files under {}",
        files.len(),
        root.display()
    );
    let me = Path::new(file!())
        .file_name()
        .expect("test file name")
        .to_owned();
    let mut offenders = Vec::new();
    for f in files {
        if f.file_name() == Some(me.as_os_str()) {
            continue; // the identifiers above are the only allowed mentions
        }
        let text = std::fs::read_to_string(&f).expect("readable source");
        for needle in ["GEMM_PACK_MIN_FLOPS", "PAR_FLOP_THRESHOLD"] {
            if text.contains(needle) {
                offenders.push(format!("{}: {needle}", f.display()));
            }
        }
    }
    assert!(
        offenders.is_empty(),
        "legacy threshold constants resurfaced:\n{}",
        offenders.join("\n")
    );
}
