//! Randomized properties of the block low-rank truncation kernels: the
//! truncation error bound against a dense oracle, adversarial shapes
//! (exact ranks 0/1/full, strided panels with `ld > m`), recompression of
//! low-rank sums, the storage-profitability policy, the absolute
//! (global-threshold) criterion, and bit determinism of the whole path.

use sympack_dense::lowrank::{compress, compress_raw, compress_raw_abs, recompress, LowRankMat};
use sympack_dense::Mat;

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1)
    }
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545F4914F6CDD1D)
    }
    fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() % (hi - lo) as u64) as usize
    }
    fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
    /// Exactly rank-`k` matrix with decaying term magnitudes, so truncated
    /// ranks below `k` are also meaningful.
    fn rank_k(&mut self, m: usize, n: usize, k: usize) -> Mat {
        let mut a = Mat::zeros(m, n);
        for t in 0..k {
            let scale = 0.4f64.powi(t as i32);
            let u: Vec<f64> = (0..m).map(|_| self.f64_in(-1.0, 1.0) * scale).collect();
            let v: Vec<f64> = (0..n).map(|_| self.f64_in(-1.0, 1.0)).collect();
            let s = a.as_mut_slice();
            for c in 0..n {
                for r in 0..m {
                    s[c * m + r] += u[r] * v[c];
                }
            }
        }
        a
    }
}

const CASES: u64 = 48;

fn fro(a: &Mat) -> f64 {
    a.as_slice().iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// `‖A − U·Vᵀ‖_F` against the dense oracle.
fn resid_fro(a: &Mat, lr: &LowRankMat) -> f64 {
    let d = lr.to_dense();
    a.as_slice()
        .iter()
        .zip(d.as_slice())
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Random shapes and ranks: whenever compression succeeds, the Frobenius
/// truncation error obeys `‖A − U·Vᵀ‖_F ≤ tol·‖A‖_F` (dense oracle), the
/// rank respects the storage-profitability bound, and rank never exceeds
/// the cap.
#[test]
fn truncation_error_bounded_by_tolerance() {
    for case in 0..CASES {
        let mut rng = Rng::new(case);
        let m = rng.usize_in(4, 50);
        let n = rng.usize_in(4, 50);
        let k = rng.usize_in(0, m.min(n) + 1);
        let a = rng.rank_k(m, n, k);
        for tol in [1e-12, 1e-8, 1e-4, 1e-2] {
            if let Some(lr) = compress(&a, tol, usize::MAX) {
                // The pivoted MGS stopping test maintains the residual in
                // floating point; allow a small slack over the bound.
                assert!(
                    resid_fro(&a, &lr) <= tol * fro(&a) * (1.0 + 1e-9) + 1e-13,
                    "case {case} tol {tol}: err {} > {}",
                    resid_fro(&a, &lr),
                    tol * fro(&a)
                );
                assert!(lr.rank() * (m + n) < m * n, "unprofitable rank accepted");
            }
        }
    }
}

/// Adversarial exact ranks: 0 (zero block), 1, and full rank. Zero blocks
/// compress to rank 0, rank-1 blocks to rank 1, and full-rank blocks with a
/// flat spectrum are declined rather than approximated.
#[test]
fn adversarial_ranks_zero_one_full() {
    for case in 0..CASES {
        let mut rng = Rng::new(1000 + case);
        let m = rng.usize_in(8, 40);
        let n = rng.usize_in(8, 40);

        let zero = Mat::zeros(m, n);
        let lr = compress(&zero, 1e-10, usize::MAX).expect("zero block compresses");
        assert_eq!(lr.rank(), 0);
        assert_eq!(lr.payload_len(), 0);

        let one = rng.rank_k(m, n, 1);
        if fro(&one) > 0.0 {
            let lr = compress(&one, 1e-10, usize::MAX).expect("rank-1 block compresses");
            assert_eq!(lr.rank(), 1, "case {case}");
            assert!(resid_fro(&one, &lr) <= 1e-9 * fro(&one));
        }

        // Scaled identity padded into m × n: every nonzero singular value
        // equals 1, so no admissible rank below min(m, n) exists.
        let full = Mat::from_fn(m, n, |r, c| if r == c { 3.0 } else { 0.0 });
        assert!(
            compress(&full, 1e-10, usize::MAX).is_none(),
            "case {case}: flat-spectrum block must decline"
        );
    }
}

/// `compress_raw` on a strided panel (`ld > m`) must see exactly the
/// `m × n` window: compressing the strided view and the compacted copy
/// gives bit-identical factors.
#[test]
fn strided_panels_match_compacted() {
    for case in 0..CASES {
        let mut rng = Rng::new(2000 + case);
        let m = rng.usize_in(4, 30);
        let n = rng.usize_in(4, 30);
        let ld = m + rng.usize_in(1, 20);
        let k = rng.usize_in(1, 4);
        // Build the strided panel: window rows are a rank-k block, the
        // padding rows below are garbage that must never be read.
        let win = rng.rank_k(m, n, k);
        let mut strided = vec![f64::NAN; ld * n];
        for c in 0..n {
            strided[c * ld..c * ld + m].copy_from_slice(&win.as_slice()[c * m..(c + 1) * m]);
        }
        let a = compress_raw(&strided, m, n, ld, 1e-10, usize::MAX);
        let b = compress(&win, 1e-10, usize::MAX);
        match (a, b) {
            (Some(x), Some(y)) => {
                assert_eq!(x.u().as_slice(), y.u().as_slice(), "case {case}");
                assert_eq!(x.v().as_slice(), y.v().as_slice(), "case {case}");
            }
            (None, None) => {}
            (x, y) => panic!(
                "case {case}: strided/compacted disagree ({:?} vs {:?})",
                x.map(|l| l.rank()),
                y.map(|l| l.rank())
            ),
        }
    }
}

/// The absolute (global-threshold) criterion: with `abs_tol = tol·‖A‖_F`
/// it matches the relative error bound, and a block whose norm is far
/// below the threshold truncates to rank 0.
#[test]
fn absolute_threshold_criterion() {
    for case in 0..CASES {
        let mut rng = Rng::new(3000 + case);
        let m = rng.usize_in(8, 40);
        let n = rng.usize_in(8, 40);
        let k = rng.usize_in(1, 6);
        let a = rng.rank_k(m, n, k);
        let norm = fro(&a);
        if norm == 0.0 {
            continue;
        }
        let abs = 1e-8 * norm;
        if let Some(lr) = compress_raw_abs(a.as_slice(), m, n, a.ld(), abs, usize::MAX) {
            assert!(
                resid_fro(&a, &lr) <= abs * (1.0 + 1e-9) + 1e-13,
                "case {case}: abs criterion violated"
            );
        }
        // A tiny block under a loose absolute threshold vanishes entirely —
        // the behavior that lets far off-diagonal blocks truncate hard.
        let tiny = compress_raw_abs(a.as_slice(), m, n, a.ld(), 10.0 * norm, usize::MAX)
            .expect("tiny-norm block compresses under a loose absolute threshold");
        assert_eq!(tiny.rank(), 0, "case {case}");
    }
}

/// Recompression of sums: stacking the factors of two low-rank blocks and
/// re-truncating stays within tolerance of the dense sum and never grows
/// the rank past the concatenation.
#[test]
fn recompression_of_sums_bounded() {
    for case in 0..CASES {
        let mut rng = Rng::new(4000 + case);
        let m = rng.usize_in(12, 48);
        let n = rng.usize_in(12, 48);
        let ka = rng.usize_in(1, 4);
        let kb = rng.usize_in(1, 4);
        let a = rng.rank_k(m, n, ka);
        let b = rng.rank_k(m, n, kb);
        let (Some(la), Some(lb)) = (
            compress(&a, 1e-12, usize::MAX),
            compress(&b, 1e-12, usize::MAX),
        ) else {
            continue;
        };
        let k = la.rank() + lb.rank();
        let mut us = la.u().as_slice().to_vec();
        us.extend_from_slice(lb.u().as_slice());
        let mut vs = la.v().as_slice().to_vec();
        vs.extend_from_slice(lb.v().as_slice());
        let u = Mat::from_col_major(m, k, us);
        let v = Mat::from_col_major(n, k, vs);
        let Some(sum) = recompress(&u, &v, 1e-9, usize::MAX) else {
            continue; // sum crossed the profitability bound — legal decline
        };
        let dense_sum = {
            let mut s = a.clone();
            for (x, y) in s.as_mut_slice().iter_mut().zip(b.as_slice()) {
                *x += y;
            }
            s
        };
        assert!(sum.rank() <= k, "case {case}: recompression grew the rank");
        let err = resid_fro(&dense_sum, &sum);
        // The stacked factorization itself carries ~1e-12 of error from the
        // two compressions; fold that into the bound.
        assert!(
            err <= 1e-9 * fro(&dense_sum) * (1.0 + 1e-6) + 1e-10,
            "case {case}: err {err}"
        );
    }
}

/// Bit determinism: the entire compress → payload → recompress path gives
/// bit-identical results across repeated runs on identical input, including
/// through the wire payload roundtrip.
#[test]
fn compression_is_bit_deterministic() {
    for case in 0..8 {
        let mut rng = Rng::new(5000 + case);
        let m = rng.usize_in(16, 48);
        let n = rng.usize_in(16, 48);
        let a = rng.rank_k(m, n, 5);
        let one = compress(&a, 1e-9, usize::MAX).expect("rank-5 block compresses");
        for _ in 0..3 {
            let again = compress(&a, 1e-9, usize::MAX).unwrap();
            assert_eq!(one.u().as_slice(), again.u().as_slice());
            assert_eq!(one.v().as_slice(), again.v().as_slice());
            let wire = LowRankMat::from_payload(m, n, again.rank(), &again.to_payload());
            assert_eq!(one.u().as_slice(), wire.u().as_slice());
            assert_eq!(one.v().as_slice(), wire.v().as_slice());
            let re = recompress(wire.u(), wire.v(), 1e-9, usize::MAX);
            let re2 = recompress(one.u(), one.v(), 1e-9, usize::MAX);
            match (re, re2) {
                (Some(x), Some(y)) => {
                    assert_eq!(x.u().as_slice(), y.u().as_slice());
                    assert_eq!(x.v().as_slice(), y.v().as_slice());
                }
                (None, None) => {}
                _ => panic!("case {case}: recompress determinism broken"),
            }
        }
    }
}
