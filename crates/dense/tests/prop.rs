//! Property-based tests for the dense kernels: random shapes and contents,
//! checked against the naive reference implementations and against algebraic
//! identities (reconstruction, inverse-of-multiply).

use proptest::prelude::*;
use sympack_dense::naive::{gemm_ref, potrf_ref, syrk_ref, trsm_ref};
use sympack_dense::par::{gemm_nt_par, syrk_lower_par, trsm_right_lower_trans_par};
use sympack_dense::{gemm_nt, potrf, syrk_lower, trsm_right_lower_trans, Mat};

fn mat_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Mat> {
    prop::collection::vec(-10.0f64..10.0, rows * cols)
        .prop_map(move |v| Mat::from_col_major(rows, cols, v))
}

fn spd_strategy(n: usize) -> impl Strategy<Value = Mat> {
    // G·Gᵀ + n·I is SPD for any G.
    mat_strategy(n, n).prop_map(move |g| {
        let mut a = g.matmul(&g.transpose());
        for i in 0..n {
            a[(i, i)] += n as f64 * 10.0 + 1.0;
        }
        a
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn potrf_reconstructs_random_spd(n in 1usize..60, seedmat in mat_strategy(60, 60)) {
        let g = Mat::from_fn(n, n, |r, c| seedmat[(r, c)]);
        let mut a = g.matmul(&g.transpose());
        for i in 0..n { a[(i,i)] += n as f64 * 10.0 + 1.0; }
        let a0 = a.clone();
        potrf(&mut a).unwrap();
        a.zero_upper();
        let recon = a.matmul(&a.transpose());
        let scale = a0.fro_norm().max(1.0);
        prop_assert!(recon.max_abs_diff(&a0) / scale < 1e-10);
    }

    #[test]
    fn blocked_potrf_agrees_with_reference(a in spd_strategy(37)) {
        let mut blocked = a.clone();
        potrf(&mut blocked).unwrap();
        blocked.zero_upper();
        let reference = potrf_ref(&a).unwrap();
        prop_assert!(blocked.max_abs_diff(&reference) < 1e-8);
    }

    #[test]
    fn gemm_agrees_with_reference(
        m in 1usize..40, n in 1usize..40, k in 1usize..40,
        a in mat_strategy(40, 40), b in mat_strategy(40, 40), c0 in mat_strategy(40, 40),
    ) {
        let a = Mat::from_fn(m, k, |r, c| a[(r, c)]);
        let b = Mat::from_fn(n, k, |r, c| b[(r, c)]);
        let mut c1 = Mat::from_fn(m, n, |r, c| c0[(r, c)]);
        let mut c2 = c1.clone();
        let mut c3 = c1.clone();
        gemm_nt(&mut c1, &a, &b);
        gemm_ref(&mut c2, &a, &b);
        gemm_nt_par(&mut c3, &a, &b);
        prop_assert!(c1.max_abs_diff(&c2) < 1e-9);
        prop_assert!(c3.max_abs_diff(&c2) < 1e-9);
    }

    #[test]
    fn syrk_agrees_with_reference(
        n in 1usize..40, k in 1usize..40,
        a in mat_strategy(40, 40), c0 in mat_strategy(40, 40),
    ) {
        let a = Mat::from_fn(n, k, |r, c| a[(r, c)]);
        let mut c1 = Mat::from_fn(n, n, |r, c| c0[(r, c)]);
        let mut c2 = c1.clone();
        let mut c3 = c1.clone();
        syrk_lower(&mut c1, &a);
        syrk_ref(&mut c2, &a);
        syrk_lower_par(&mut c3, &a);
        for j in 0..n {
            for i in j..n {
                prop_assert!((c1[(i, j)] - c2[(i, j)]).abs() < 1e-9);
                prop_assert!((c3[(i, j)] - c2[(i, j)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn trsm_inverts_multiplication(
        m in 1usize..30, n in 1usize..30,
        g in mat_strategy(30, 30), x0 in mat_strategy(30, 30),
    ) {
        let g = Mat::from_fn(n, n, |r, c| g[(r, c)]);
        let mut spd = g.matmul(&g.transpose());
        for i in 0..n { spd[(i, i)] += n as f64 * 10.0 + 1.0; }
        let l = potrf_ref(&spd).unwrap();
        let x = Mat::from_fn(m, n, |r, c| x0[(r, c)]);
        let b = x.matmul(&l.transpose());
        let mut solved = b.clone();
        trsm_right_lower_trans(&mut solved, &l);
        let mut solved_par = b.clone();
        trsm_right_lower_trans_par(&mut solved_par, &l);
        let reference = trsm_ref(&l, &b);
        let scale = x.fro_norm().max(1.0);
        prop_assert!(solved.max_abs_diff(&x) / scale < 1e-8);
        prop_assert!(solved.max_abs_diff(&reference) < 1e-8);
        prop_assert!(solved_par.max_abs_diff(&reference) < 1e-8);
    }
}
