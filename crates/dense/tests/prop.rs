//! Randomized tests for the dense kernels: seeded random shapes and
//! contents, checked against the naive reference implementations and
//! against algebraic identities (reconstruction, inverse-of-multiply).

use sympack_dense::naive::{gemm_ref, potrf_ref, syrk_ref, trsm_ref};
use sympack_dense::par::{gemm_nt_par, syrk_lower_par, trsm_right_lower_trans_par};
use sympack_dense::{gemm_nt, potrf, syrk_lower, trsm_right_lower_trans, Mat};

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1)
    }
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545F4914F6CDD1D)
    }
    fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() % (hi - lo) as u64) as usize
    }
    fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
    fn mat(&mut self, rows: usize, cols: usize) -> Mat {
        let v: Vec<f64> = (0..rows * cols).map(|_| self.f64_in(-10.0, 10.0)).collect();
        Mat::from_col_major(rows, cols, v)
    }
}

const CASES: u64 = 48;

#[test]
fn potrf_reconstructs_random_spd() {
    for case in 0..CASES {
        let mut rng = Rng::new(case);
        let n = rng.usize_in(1, 60);
        let g = rng.mat(n, n);
        let mut a = g.matmul(&g.transpose());
        for i in 0..n {
            a[(i, i)] += n as f64 * 10.0 + 1.0;
        }
        let a0 = a.clone();
        potrf(&mut a).unwrap();
        a.zero_upper();
        let recon = a.matmul(&a.transpose());
        let scale = a0.fro_norm().max(1.0);
        assert!(recon.max_abs_diff(&a0) / scale < 1e-10);
    }
}

#[test]
fn blocked_potrf_agrees_with_reference() {
    for case in 0..CASES {
        let mut rng = Rng::new(case);
        let n = 37;
        // G·Gᵀ + n·I is SPD for any G.
        let g = rng.mat(n, n);
        let mut a = g.matmul(&g.transpose());
        for i in 0..n {
            a[(i, i)] += n as f64 * 10.0 + 1.0;
        }
        let mut blocked = a.clone();
        potrf(&mut blocked).unwrap();
        blocked.zero_upper();
        let reference = potrf_ref(&a).unwrap();
        assert!(blocked.max_abs_diff(&reference) < 1e-8);
    }
}

#[test]
fn gemm_agrees_with_reference() {
    for case in 0..CASES {
        let mut rng = Rng::new(case);
        let m = rng.usize_in(1, 40);
        let n = rng.usize_in(1, 40);
        let k = rng.usize_in(1, 40);
        let a = rng.mat(m, k);
        let b = rng.mat(n, k);
        let mut c1 = rng.mat(m, n);
        let mut c2 = c1.clone();
        let mut c3 = c1.clone();
        gemm_nt(&mut c1, &a, &b);
        gemm_ref(&mut c2, &a, &b);
        gemm_nt_par(&mut c3, &a, &b);
        assert!(c1.max_abs_diff(&c2) < 1e-9);
        assert!(c3.max_abs_diff(&c2) < 1e-9);
    }
}

#[test]
fn syrk_agrees_with_reference() {
    for case in 0..CASES {
        let mut rng = Rng::new(case);
        let n = rng.usize_in(1, 40);
        let k = rng.usize_in(1, 40);
        let a = rng.mat(n, k);
        let mut c1 = rng.mat(n, n);
        let mut c2 = c1.clone();
        let mut c3 = c1.clone();
        syrk_lower(&mut c1, &a);
        syrk_ref(&mut c2, &a);
        syrk_lower_par(&mut c3, &a);
        for j in 0..n {
            for i in j..n {
                assert!((c1[(i, j)] - c2[(i, j)]).abs() < 1e-9);
                assert!((c3[(i, j)] - c2[(i, j)]).abs() < 1e-9);
            }
        }
    }
}

#[test]
fn trsm_inverts_multiplication() {
    for case in 0..CASES {
        let mut rng = Rng::new(case);
        let m = rng.usize_in(1, 30);
        let n = rng.usize_in(1, 30);
        let g = rng.mat(n, n);
        let mut spd = g.matmul(&g.transpose());
        for i in 0..n {
            spd[(i, i)] += n as f64 * 10.0 + 1.0;
        }
        let l = potrf_ref(&spd).unwrap();
        let x = rng.mat(m, n);
        let b = x.matmul(&l.transpose());
        let mut solved = b.clone();
        trsm_right_lower_trans(&mut solved, &l);
        let mut solved_par = b.clone();
        trsm_right_lower_trans_par(&mut solved_par, &l);
        let reference = trsm_ref(&l, &b);
        let scale = x.fro_norm().max(1.0);
        assert!(solved.max_abs_diff(&x) / scale < 1e-8);
        assert!(solved.max_abs_diff(&reference) < 1e-8);
        assert!(solved_par.max_abs_diff(&reference) < 1e-8);
    }
}
