//! Permutation vectors.
//!
//! Convention throughout the workspace: `perm[new] = old` — the permutation
//! lists original indices in their new order, so applying it to a matrix
//! gives `P·A·Pᵀ` where row `new` of the permuted matrix is row `perm[new]`
//! of the original.

/// A permutation of `0..n`, stored as `perm[new] = old`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    perm: Vec<usize>,
}

impl Permutation {
    /// The identity permutation of length `n`.
    pub fn identity(n: usize) -> Self {
        Permutation {
            perm: (0..n).collect(),
        }
    }

    /// Wrap an existing `perm[new] = old` vector.
    ///
    /// # Panics
    /// Panics if the vector is not a permutation of `0..len`.
    pub fn from_vec(perm: Vec<usize>) -> Self {
        let p = Permutation { perm };
        p.validate().expect("not a permutation");
        p
    }

    /// Length `n`.
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// True for the empty permutation.
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }

    /// The raw `perm[new] = old` slice.
    pub fn as_slice(&self) -> &[usize] {
        &self.perm
    }

    /// Old index at new position `new`.
    pub fn old_of(&self, new: usize) -> usize {
        self.perm[new]
    }

    /// The inverse permutation: `inv[old] = new`.
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0usize; self.perm.len()];
        for (new, &old) in self.perm.iter().enumerate() {
            inv[old] = new;
        }
        Permutation { perm: inv }
    }

    /// Compose: apply `self` after `first` (`result[new] = first[self[new]]`).
    pub fn compose(&self, first: &Permutation) -> Permutation {
        assert_eq!(self.len(), first.len());
        Permutation {
            perm: self.perm.iter().map(|&m| first.perm[m]).collect(),
        }
    }

    /// Verify this is a bijection on `0..n`.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.perm.len();
        let mut seen = vec![false; n];
        for &o in &self.perm {
            if o >= n {
                return Err(format!("index {o} out of range for length {n}"));
            }
            if seen[o] {
                return Err(format!("index {o} appears twice"));
            }
            seen[o] = true;
        }
        Ok(())
    }

    /// Permute a dense vector from old ordering to new: `out[new] = x[perm[new]]`.
    pub fn apply_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.perm.len());
        self.perm.iter().map(|&old| x[old]).collect()
    }

    /// Undo [`Permutation::apply_vec`]: `out[perm[new]] = x[new]`.
    pub fn unapply_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.perm.len());
        let mut out = vec![0.0; x.len()];
        for (new, &old) in self.perm.iter().enumerate() {
            out[old] = x[new];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_roundtrip() {
        let p = Permutation::identity(4);
        assert_eq!(p.as_slice(), &[0, 1, 2, 3]);
        assert_eq!(p.inverse(), p);
    }

    #[test]
    fn inverse_composes_to_identity() {
        let p = Permutation::from_vec(vec![2, 0, 3, 1]);
        let id = p.compose(&p.inverse());
        // compose(self, first): result[new] = first[self[new]];
        // with first = inverse: inv[p[new]] = new.
        assert_eq!(id, Permutation::identity(4));
    }

    #[test]
    fn apply_unapply_roundtrip() {
        let p = Permutation::from_vec(vec![3, 1, 0, 2]);
        let x = vec![10.0, 11.0, 12.0, 13.0];
        let y = p.apply_vec(&x);
        assert_eq!(y, vec![13.0, 11.0, 10.0, 12.0]);
        assert_eq!(p.unapply_vec(&y), x);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn from_vec_rejects_duplicates() {
        Permutation::from_vec(vec![0, 0, 1]);
    }

    #[test]
    fn validate_reports_out_of_range() {
        let p = Permutation { perm: vec![0, 5] };
        assert!(p.validate().is_err());
    }
}
