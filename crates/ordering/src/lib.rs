//! Fill-reducing orderings for sparse Cholesky.
//!
//! The paper applies a nested-dissection ordering computed by Scotch to every
//! matrix before factorization (§5: "a fill-reducing ordering computed using
//! Scotch is applied to the original matrix"). Scotch itself is a large
//! external C library; this crate implements the underlying algorithms from
//! scratch:
//!
//! * [`nested_dissection`] — recursive vertex-separator dissection (George's
//!   algorithm, the one Scotch implements), using level-set separators from
//!   pseudo-peripheral vertices,
//! * [`min_degree`] — a quotient-graph minimum-degree ordering (used for the
//!   small sub-blocks at the dissection leaves, and standalone),
//! * [`rcm`] — reverse Cuthill-McKee (bandwidth-reducing; used as a
//!   comparison point),
//! * [`metrics`] — fill-in and factor-flop estimates for comparing orderings,
//!   matching the paper's motivation for using nested dissection at all.

pub mod metrics;
pub mod minimum_degree;
pub mod multilevel;
pub mod nd;
pub mod perm;
pub mod rcm;

pub use minimum_degree::min_degree;
pub use nd::{nested_dissection, NdOptions, SeparatorStrategy};
pub use perm::Permutation;
pub use rcm::rcm;

use sympack_sparse::SparseSym;

/// Which fill-reducing ordering to apply before factorization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderingKind {
    /// Leave the matrix in its natural order.
    Natural,
    /// Reverse Cuthill-McKee (bandwidth reduction).
    Rcm,
    /// Quotient-graph minimum degree.
    MinDegree,
    /// Recursive vertex-separator nested dissection (the paper's choice,
    /// via Scotch).
    NestedDissection,
}

/// Compute the requested ordering for a symmetric matrix.
pub fn compute_ordering(a: &SparseSym, kind: OrderingKind) -> Permutation {
    match kind {
        OrderingKind::Natural => Permutation::identity(a.n()),
        OrderingKind::Rcm => rcm(a),
        OrderingKind::MinDegree => min_degree(a),
        OrderingKind::NestedDissection => nested_dissection(a, &NdOptions::default()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sympack_sparse::gen::laplacian_2d;

    #[test]
    fn all_kinds_produce_valid_permutations() {
        let a = laplacian_2d(7, 6);
        for kind in [
            OrderingKind::Natural,
            OrderingKind::Rcm,
            OrderingKind::MinDegree,
            OrderingKind::NestedDissection,
        ] {
            let p = compute_ordering(&a, kind);
            assert_eq!(p.len(), a.n(), "{kind:?}");
            p.validate().unwrap();
        }
    }

    #[test]
    fn natural_is_identity() {
        let a = laplacian_2d(3, 3);
        let p = compute_ordering(&a, OrderingKind::Natural);
        assert_eq!(p.as_slice(), &[0, 1, 2, 3, 4, 5, 6, 7, 8]);
    }
}
